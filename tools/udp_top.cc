/**
 * @file
 * udp_top — live fleet dashboard for a distributed sweep
 * (docs/OBSERVABILITY.md). Polls the coordinator's status surface — an
 * OpStatus RPC for "tcp:HOST:PORT" endpoints, "<dir>/status.json" for
 * shared-queue directories — and renders sweep progress, ETA, per-job
 * states and per-worker health (leases, retries, stragglers, heartbeats).
 *
 *   udp_top tcp:127.0.0.1:7777              # refreshing dashboard
 *   udp_top /shared/q --interval 1
 *   udp_top tcp:127.0.0.1:7777 --once       # one snapshot, human form
 *   udp_top /shared/q --once --json         # one raw status JSON line
 *
 * Exit codes: 0 snapshot fetched (or dashboard interrupted), 1 status
 * unavailable in --once mode, 2 usage error.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/status.h"
#include "sim/workqueue.h"

using namespace udp;

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void
stopHandler(int)
{
    g_stop = 1;
}

void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s ENDPOINT [--interval SEC] [--timeout SEC] "
                 "[--once] [--json]\n"
                 "  ENDPOINT: tcp:HOST:PORT or a queue directory\n",
                 argv0);
}

std::string
fmtDur(double sec)
{
    if (sec < 0.0) {
        return "?";
    }
    char buf[32];
    if (sec < 90.0) {
        std::snprintf(buf, sizeof buf, "%.0fs", sec);
    } else if (sec < 5400.0) {
        std::snprintf(buf, sizeof buf, "%.1fm", sec / 60.0);
    } else {
        std::snprintf(buf, sizeof buf, "%.1fh", sec / 3600.0);
    }
    return buf;
}

/** Renders one status snapshot as the multi-line dashboard body. */
std::string
render(const obs::SweepStatus& s)
{
    std::string out;
    char buf[256];

    std::snprintf(buf, sizeof buf,
                  "sweep \"%s\" (%s)  elapsed %s  eta %s\n",
                  s.name.c_str(), s.transport.c_str(),
                  fmtDur(s.elapsedSec).c_str(), fmtDur(s.etaSec).c_str());
    out += buf;

    std::snprintf(
        buf, sizeof buf,
        "jobs: %llu/%llu done, %llu failed, %llu leased, %llu pending"
        " (%llu resumed)\n",
        static_cast<unsigned long long>(s.done),
        static_cast<unsigned long long>(s.total),
        static_cast<unsigned long long>(s.failed),
        static_cast<unsigned long long>(s.leased),
        static_cast<unsigned long long>(s.pending),
        static_cast<unsigned long long>(s.resumed));
    out += buf;

    // Progress bar over finals (successes + failures).
    const int width = 40;
    double frac = s.total == 0
                      ? 0.0
                      : static_cast<double>(s.finals()) /
                            static_cast<double>(s.total);
    int fill = static_cast<int>(frac * width + 0.5);
    out += "[";
    for (int i = 0; i < width; ++i) {
        out += i < fill ? '#' : '.';
    }
    std::snprintf(buf, sizeof buf, "] %3.0f%%\n", frac * 100.0);
    out += buf;

    if (!s.jobStates.empty() && s.jobStates.size() <= 120) {
        out += "states: " + s.jobStates + "\n";
    }

    if (!s.workers.empty()) {
        std::snprintf(buf, sizeof buf,
                      "%-14s %5s %6s %5s %5s %6s %6s %6s %7s %6s\n",
                      "WORKER", "ACT", "CLAIM", "DONE", "FAIL", "RETRY",
                      "STRAG", "RENEW", "EXPIRE", "SEEN");
        out += buf;
        for (const obs::WorkerStatusRow& w : s.workers) {
            std::snprintf(
                buf, sizeof buf,
                "%-14s %5llu %6llu %5llu %5llu %6llu %6llu %6llu %7llu"
                " %6s\n",
                w.name.c_str(),
                static_cast<unsigned long long>(w.activeLeases),
                static_cast<unsigned long long>(w.claims),
                static_cast<unsigned long long>(w.completed),
                static_cast<unsigned long long>(w.failed),
                static_cast<unsigned long long>(w.retries),
                static_cast<unsigned long long>(w.stragglers),
                static_cast<unsigned long long>(w.renewals),
                static_cast<unsigned long long>(w.expirations),
                w.lastSeenSec < 0.0 ? "?"
                                    : fmtDur(w.lastSeenSec).c_str());
            out += buf;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string endpoint;
    double intervalSec = 2.0;
    double timeoutSec = 5.0;
    bool once = false;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto val = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--interval") {
            intervalSec = std::strtod(val(), nullptr);
        } else if (arg == "--timeout") {
            timeoutSec = std::strtod(val(), nullptr);
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--json") {
            json = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
            return 2;
        } else if (endpoint.empty()) {
            endpoint = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (endpoint.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (intervalSec < 0.1) {
        intervalSec = 0.1;
    }

    std::signal(SIGINT, stopHandler);
    std::signal(SIGTERM, stopHandler);

    while (g_stop == 0) {
        std::string raw;
        std::string err;
        bool ok = queryQueueStatus(endpoint, timeoutSec, &raw, &err);
        if (once) {
            if (!ok) {
                std::fprintf(stderr, "[udp_top] %s: %s\n",
                             endpoint.c_str(), err.c_str());
                return 1;
            }
            if (json) {
                std::printf("%s\n", raw.c_str());
                return 0;
            }
            obs::SweepStatus s;
            if (!obs::sweepStatusFromJson(raw, &s)) {
                std::fprintf(stderr,
                             "[udp_top] %s: malformed status JSON\n",
                             endpoint.c_str());
                return 1;
            }
            std::printf("%s", render(s).c_str());
            return 0;
        }

        if (json) {
            // Streaming scripting mode: one raw JSON line per poll.
            if (ok) {
                std::printf("%s\n", raw.c_str());
                std::fflush(stdout);
            }
        } else {
            // Dashboard: clear screen, home cursor, redraw.
            std::string frame = "\x1b[2J\x1b[H";
            frame += "udp_top — " + endpoint + "  (refresh " +
                     fmtDur(intervalSec) + ", ^C quits)\n\n";
            if (ok) {
                obs::SweepStatus s;
                if (obs::sweepStatusFromJson(raw, &s)) {
                    frame += render(s);
                } else {
                    frame += "malformed status JSON\n";
                }
            } else {
                frame += "waiting for status: " + err + "\n";
            }
            std::fwrite(frame.data(), 1, frame.size(), stdout);
            std::fflush(stdout);
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(intervalSec));
    }
    return 0;
}

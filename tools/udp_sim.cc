/**
 * @file
 * udp_sim: command-line driver for the simulator.
 *
 *   udp_sim --app mysql --technique udp8k --instrs 1000000
 *   udp_sim --list
 *   udp_sim --app xgboost --technique fdip --ftq 64 --csv
 *   udp_sim --app clang --save-program clang.prog
 *   udp_sim --load-program clang.prog --technique uftq-atr-aur
 *
 * Techniques: nopf | fdip | perfect | udp8k | udp-infinite | icache40k |
 *             eip8k | uftq-aur | uftq-atr | uftq-atr-aur
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "sim/runner.h"
#include "workload/builder.h"
#include "workload/serialize.h"

namespace {

using namespace udp;

void
usage()
{
    std::puts(
        "usage: udp_sim [options]\n"
        "  --app NAME           workload profile (default mysql); see --list\n"
        "  --technique T        nopf|fdip|perfect|udp8k|udp-infinite|\n"
        "                       icache40k|eip8k|uftq-aur|uftq-atr|\n"
        "                       uftq-atr-aur (default fdip)\n"
        "  --ftq N              fixed FTQ depth (default 32)\n"
        "  --btb N              BTB entries (default 8192)\n"
        "  --instrs N           measured instructions (default 1000000)\n"
        "  --warmup N           warmup instructions (default 500000)\n"
        "  --seed N             workload seed override\n"
        "  --save-program PATH  write the generated program image and exit\n"
        "  --load-program PATH  simulate a saved program image\n"
        "  --csv                emit the report as CSV key,value lines\n"
        "  --list               list available workload profiles\n");
}

std::optional<SimConfig>
configFor(const std::string& t, unsigned ftq, unsigned btb)
{
    SimConfig cfg;
    if (t == "nopf") {
        cfg = presets::noPrefetch();
    } else if (t == "fdip") {
        cfg = presets::fdipWithFtq(ftq);
    } else if (t == "perfect") {
        cfg = presets::perfectIcache();
    } else if (t == "udp8k") {
        cfg = presets::udp8k();
        cfg.ftqCapacity = ftq;
    } else if (t == "udp-infinite") {
        cfg = presets::udpInfinite();
        cfg.ftqCapacity = ftq;
    } else if (t == "icache40k") {
        cfg = presets::bigIcache40k();
    } else if (t == "eip8k") {
        cfg = presets::eip8k();
    } else if (t == "uftq-aur") {
        cfg = presets::uftq(UftqMode::Aur);
    } else if (t == "uftq-atr") {
        cfg = presets::uftq(UftqMode::Atr);
    } else if (t == "uftq-atr-aur") {
        cfg = presets::uftq(UftqMode::AtrAur);
    } else {
        return std::nullopt;
    }
    cfg.bpu.btb.numEntries = btb;
    if (ftq > cfg.ftqPhysical) {
        cfg.ftqPhysical = ftq;
    }
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string app = "mysql";
    std::string technique = "fdip";
    std::string save_path;
    std::string load_path;
    unsigned ftq = 32;
    unsigned btb = 8192;
    std::uint64_t instrs = 1'000'000;
    std::uint64_t warmup = 500'000;
    std::uint64_t seed_override = 0;
    bool csv = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--app") {
            app = next();
        } else if (a == "--technique") {
            technique = next();
        } else if (a == "--ftq") {
            ftq = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (a == "--btb") {
            btb = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (a == "--instrs") {
            instrs = std::strtoull(next(), nullptr, 10);
        } else if (a == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 10);
        } else if (a == "--seed") {
            seed_override = std::strtoull(next(), nullptr, 10);
        } else if (a == "--save-program") {
            save_path = next();
        } else if (a == "--load-program") {
            load_path = next();
        } else if (a == "--csv") {
            csv = true;
        } else if (a == "--list") {
            for (const Profile& p : datacenterProfiles()) {
                std::printf("%-12s code=%uKB seed=%llu\n", p.name.c_str(),
                            p.codeFootprintKB,
                            static_cast<unsigned long long>(p.seed));
            }
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage();
            return 2;
        }
    }

    try {
        std::optional<SimConfig> cfg = configFor(technique, ftq, btb);
        if (!cfg) {
            std::fprintf(stderr, "unknown technique: %s\n",
                         technique.c_str());
            return 2;
        }

        Program prog = [&]() {
            if (!load_path.empty()) {
                return loadProgramFile(load_path);
            }
            Profile p = profileByName(app);
            if (seed_override) {
                p.seed = seed_override;
            }
            return ProgramBuilder::build(p);
        }();

        if (!save_path.empty()) {
            saveProgramFile(prog, save_path);
            std::printf("saved %s (%zu instrs, %zu KB) to %s\n",
                        prog.name().c_str(), prog.numInstrs(),
                        static_cast<std::size_t>(prog.codeBytes() / 1024),
                        save_path.c_str());
            return 0;
        }

        Cpu cpu(prog, *cfg);
        cpu.runUntilRetired(warmup);
        cpu.clearStats();
        cpu.runUntilRetired(instrs);
        Report r = collectReport(cpu, prog.name(), technique);

        if (csv) {
            for (const auto& [k, v] : r.toStatSet().entries()) {
                std::printf("%s,%g\n", k.c_str(), v);
            }
        } else {
            std::printf("workload=%s technique=%s ftq=%u btb=%u\n",
                        prog.name().c_str(), technique.c_str(), ftq, btb);
            std::printf("%s", r.toStatSet().toString().c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

/**
 * @file
 * udp_sweepd — the distributed sweep coordinator (docs/ROBUSTNESS.md
 * §10). Reads a JSON sweep spec, expands it deterministically into jobs,
 * and serves them to udp_worker processes over TCP or a shared queue
 * directory with lease-based retry/backoff, straggler re-dispatch, and
 * checkpoint/resume. Merged artifacts are byte-identical to running the
 * same spec with --serial in one process.
 *
 *   udp_sweepd --spec fig13.json --listen tcp:0.0.0.0:7777 --json out.jsonl
 *   udp_sweepd --spec fig13.json --queue /shared/q --workers 3 --csv out.csv
 *   udp_sweepd --spec fig13.json --serial --json ref.jsonl
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "obs/eventlog.h"
#include "sim/sweep.h"
#include "sim/sweepd.h"
#include "sim/wire.h"
#include "sim/workqueue.h"
#include "stats/sink.h"

using namespace udp;

namespace {

SweepCoordinator* g_coordinator = nullptr;

extern "C" void
stopHandler(int)
{
    if (g_coordinator != nullptr) {
        g_coordinator->requestStop();
    }
}

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --spec FILE (--listen tcp:HOST:PORT | --queue DIR | "
        "--serial)\n"
        "  [--name S] [--json PATH] [--csv PATH] [--manifest PATH] "
        "[--resume]\n"
        "  [--shard-dir DIR] [--workers N] [--lease-sec X] "
        "[--max-attempts N]\n"
        "  [--backoff-base-sec X] [--straggler-sec X] [--poll-sec X] "
        "[--quiet]\n"
        "Worker-side execution flags forwarded to forked --workers:\n"
        "  [--isolate] [--mem-mb N] [--cpu-sec N] [--wall-sec X] "
        "[--delay-ms N]\n",
        argv0);
}

bool
readFile(const std::string& path, std::string* out)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

struct Args
{
    std::string specPath;
    std::string name;     ///< status-surface name (default: spec name)
    std::string endpoint; ///< --listen or --queue
    bool serial = false;
    std::string jsonPath;
    std::string csvPath;
    std::string manifestPath;
    bool resume = false;
    std::string shardDir;
    unsigned workers = 0;
    LeasePolicy policy;
    double pollSec = 0.2;
    bool quiet = false;
    // forwarded to forked workers
    JobExecOptions exec;
    unsigned delayMs = 0;
};

int
writeArtifacts(const Args& a, const std::vector<SweepJob>& jobs,
               const std::vector<JobResult>& results)
{
    ReportSink sink;
    if (!a.jsonPath.empty()) {
        sink.openJson(a.jsonPath);
    }
    if (!a.csvPath.empty()) {
        sink.openCsv(a.csvPath);
    }
    std::size_t failed = 0;
    std::size_t skipped = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const JobResult& jr = results[i];
        if (jr.ok) {
            if (sink.active()) {
                sink.write(jr.report);
            }
            continue;
        }
        if (jr.skipped) {
            ++skipped;
            continue;
        }
        ++failed;
        if (sink.active()) {
            FailureRow f;
            f.workload = jobs[i].profile.name;
            f.config = jobs[i].label;
            f.errorKind = jr.error.kind;
            f.message = jr.error.message;
            f.attempts = jr.attempts;
            sink.writeFailure(f);
        }
    }
    sink.close();
    if (failed != 0) {
        std::fprintf(stderr, "[sweepd] %zu job(s) finally FAILED\n", failed);
        return 1;
    }
    if (skipped != 0) {
        std::fprintf(stderr,
                     "[sweepd] interrupted with %zu job(s) outstanding; "
                     "re-run with --resume\n",
                     skipped);
        return 130;
    }
    return 0;
}

#ifndef _WIN32
/** Forks one local worker draining @p endpoint; never returns in the
 *  child. The child re-expands the spec it is handed — the same
 *  determinism contract as a remote udp_worker. */
pid_t
forkWorker(const Args& a, const std::string& endpoint,
           const std::vector<SweepJob>& jobs, unsigned id)
{
    pid_t pid = ::fork();
    if (pid != 0) {
        return pid;
    }
    std::string err;
    std::unique_ptr<WorkQueue> q = openWorkQueue(endpoint, 5.0, &err);
    if (q == nullptr) {
        std::fprintf(stderr, "[worker-%u] %s\n", id, err.c_str());
        ::_exit(2);
    }
    WorkerOptions wo;
    wo.name = "local-" + std::to_string(id);
    wo.shardDir = a.shardDir;
    wo.quiet = a.quiet;
    wo.exec = a.exec;
    wo.jobDelayMs = a.delayMs;
    WorkerSummary s = runSweepWorker(*q, jobs, wo);
    ::_exit(s.queueLost ? 3 : 0);
}
#endif

} // namespace

int
main(int argc, char** argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto val = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--spec") {
            a.specPath = val();
        } else if (arg == "--name") {
            a.name = val();
        } else if (arg == "--listen" || arg == "--queue") {
            a.endpoint = val();
        } else if (arg == "--serial") {
            a.serial = true;
        } else if (arg == "--json") {
            a.jsonPath = val();
        } else if (arg == "--csv") {
            a.csvPath = val();
        } else if (arg == "--manifest") {
            a.manifestPath = val();
        } else if (arg == "--resume") {
            a.resume = true;
        } else if (arg == "--shard-dir") {
            a.shardDir = val();
        } else if (arg == "--workers") {
            a.workers = static_cast<unsigned>(std::atoi(val()));
        } else if (arg == "--lease-sec") {
            a.policy.leaseTtlSec = std::strtod(val(), nullptr);
        } else if (arg == "--max-attempts") {
            a.policy.maxAttempts =
                static_cast<unsigned>(std::atoi(val()));
        } else if (arg == "--backoff-base-sec") {
            a.policy.backoffBaseSec = std::strtod(val(), nullptr);
        } else if (arg == "--straggler-sec") {
            a.policy.stragglerAfterSec = std::strtod(val(), nullptr);
        } else if (arg == "--poll-sec") {
            a.pollSec = std::strtod(val(), nullptr);
        } else if (arg == "--quiet") {
            a.quiet = true;
        } else if (arg == "--isolate") {
            a.exec.isolate = true;
        } else if (arg == "--mem-mb") {
            a.exec.memLimitBytes =
                std::strtoull(val(), nullptr, 10) << 20;
        } else if (arg == "--cpu-sec") {
            a.exec.cpuLimitSec = std::strtoull(val(), nullptr, 10);
        } else if (arg == "--wall-sec") {
            a.exec.wallLimitSec = std::strtod(val(), nullptr);
        } else if (arg == "--delay-ms") {
            a.delayMs = static_cast<unsigned>(std::atoi(val()));
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (a.specPath.empty() || (a.endpoint.empty() && !a.serial)) {
        usage(argv[0]);
        return 2;
    }

    std::string specJson;
    if (!readFile(a.specPath, &specJson)) {
        std::fprintf(stderr, "[sweepd] cannot read spec %s\n",
                     a.specPath.c_str());
        return 2;
    }
    SweepSpec spec;
    std::vector<SweepJob> jobs;
    std::string err;
    if (!sweepSpecFromJson(specJson, &spec, &err) ||
        !expandSweepSpec(spec, &jobs, &err)) {
        std::fprintf(stderr, "[sweepd] bad spec %s: %s\n",
                     a.specPath.c_str(), err.c_str());
        return 2;
    }
    if (!a.quiet) {
        obs::Event(obs::LogLevel::Info, "sweepd", "spec_loaded")
            .str("spec", spec.name)
            .u64("jobs", jobs.size())
            .emit();
    }

    if (a.serial) {
        // The byte-identity reference: the same jobs, one process, one
        // thread, the plain sweep engine.
        SweepOptions so;
        so.numThreads = 1;
        so.quiet = a.quiet;
        so.manifestPath = a.manifestPath;
        so.resume = a.resume && !a.manifestPath.empty();
        so.isolate = a.exec.isolate;
        so.memLimitBytes = a.exec.memLimitBytes;
        so.cpuLimitSec = a.exec.cpuLimitSec;
        so.wallLimitSec = a.exec.wallLimitSec;
        std::vector<JobResult> results = runSweepChecked(jobs, so);
        return writeArtifacts(a, jobs, results);
    }

    wire::installSigpipeIgnore();

    CoordinatorOptions co;
    co.name = a.name.empty() ? spec.name : a.name;
    co.policy = a.policy;
    co.endpoint = a.endpoint;
    co.specJson = specJson;
    co.manifestPath = a.manifestPath;
    co.resume = a.resume && !a.manifestPath.empty();
    co.shardDir = a.shardDir;
    co.pollSec = a.pollSec;
    co.quiet = a.quiet;

    SweepCoordinator coord(jobs, std::move(co));
    if (!coord.start(&err)) {
        std::fprintf(stderr, "[sweepd] %s\n", err.c_str());
        return 2;
    }
    if (!a.quiet) {
        obs::Event(obs::LogLevel::Info, "sweepd", "serving")
            .str("endpoint", coord.endpoint())
            .str("hint", "watch with udp_top " + coord.endpoint())
            .emit();
    }

    g_coordinator = &coord;
    std::signal(SIGINT, stopHandler);
    std::signal(SIGTERM, stopHandler);

#ifndef _WIN32
    std::vector<pid_t> children;
    for (unsigned w = 0; w < a.workers; ++w) {
        pid_t pid = forkWorker(a, coord.endpoint(), jobs, w);
        if (pid > 0) {
            children.push_back(pid);
        }
    }
#else
    if (a.workers != 0) {
        std::fprintf(stderr,
                     "[sweepd] --workers requires POSIX fork(); start "
                     "udp_worker processes manually\n");
    }
#endif

    std::vector<JobResult> results = coord.run();
    g_coordinator = nullptr;

#ifndef _WIN32
    for (pid_t pid : children) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
#endif
    return writeArtifacts(a, jobs, results);
}

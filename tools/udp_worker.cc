/**
 * @file
 * udp_worker — one worker of a distributed sweep (docs/ROBUSTNESS.md
 * §10). Connects to a udp_sweepd coordinator (TCP endpoint or shared
 * queue directory), fetches the sweep spec, expands it deterministically
 * into the same job list the coordinator holds, then claims and executes
 * leases until the sweep drains.
 *
 *   udp_worker --connect tcp:coordinator-host:7777
 *   udp_worker --queue /shared/q --isolate --mem-mb 4096
 *
 * Exit codes: 0 sweep drained / nothing left, 2 cannot reach or parse
 * the queue, 3 queue lost mid-run (pending result flushed to the shard
 * file when --shard-dir is set).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/eventlog.h"
#include "sim/sweep.h"
#include "sim/sweepd.h"
#include "sim/wire.h"
#include "sim/workqueue.h"

using namespace udp;

namespace {

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--connect tcp:HOST:PORT | --queue DIR) [--name S]\n"
        "  [--shard-dir DIR] [--isolate] [--mem-mb N] [--cpu-sec N]\n"
        "  [--wall-sec X] [--poll-ms N] [--max-jobs N] [--delay-ms N] "
        "[--quiet]\n",
        argv0);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string endpoint;
    WorkerOptions wo;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto val = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--connect" || arg == "--queue") {
            endpoint = val();
        } else if (arg == "--name") {
            wo.name = val();
        } else if (arg == "--shard-dir") {
            wo.shardDir = val();
        } else if (arg == "--isolate") {
            wo.exec.isolate = true;
        } else if (arg == "--mem-mb") {
            wo.exec.memLimitBytes =
                std::strtoull(val(), nullptr, 10) << 20;
        } else if (arg == "--cpu-sec") {
            wo.exec.cpuLimitSec = std::strtoull(val(), nullptr, 10);
        } else if (arg == "--wall-sec") {
            wo.exec.wallLimitSec = std::strtod(val(), nullptr);
        } else if (arg == "--poll-ms") {
            wo.pollSec = std::strtod(val(), nullptr) / 1000.0;
        } else if (arg == "--max-jobs") {
            wo.maxJobs = std::strtoull(val(), nullptr, 10);
        } else if (arg == "--delay-ms") {
            wo.jobDelayMs = static_cast<unsigned>(std::atoi(val()));
        } else if (arg == "--quiet") {
            wo.quiet = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (endpoint.empty()) {
        usage(argv[0]);
        return 2;
    }

    wire::installSigpipeIgnore();

    std::string err;
    std::unique_ptr<WorkQueue> queue = openWorkQueue(endpoint, 5.0, &err);
    if (queue == nullptr) {
        std::fprintf(stderr, "[%s] %s\n", wo.name.c_str(), err.c_str());
        return 2;
    }

    std::string specJson = queue->specJson();
    if (specJson.empty()) {
        std::fprintf(stderr,
                     "[%s] queue serves no spec — this sweep pairs bench "
                     "binaries (--coordinator/--worker-of), not "
                     "udp_worker\n",
                     wo.name.c_str());
        return 2;
    }
    SweepSpec spec;
    std::vector<SweepJob> jobs;
    if (!sweepSpecFromJson(specJson, &spec, &err) ||
        !expandSweepSpec(spec, &jobs, &err)) {
        std::fprintf(stderr, "[%s] bad spec from queue: %s\n",
                     wo.name.c_str(), err.c_str());
        return 2;
    }
    if (!wo.quiet) {
        obs::Event(obs::LogLevel::Info, wo.name, "joined")
            .str("sweep", spec.name)
            .u64("jobs", jobs.size())
            .emit();
    }

    WorkerSummary s = runSweepWorker(*queue, jobs, wo);
    if (!wo.quiet) {
        obs::Event(obs::LogLevel::Info, wo.name, "done")
            .u64("executed", s.executed)
            .u64("recorded", s.completed)
            .u64("failed", s.failures)
            .u64("duplicates", s.duplicates)
            .u64("flushed_local", s.flushedLocal)
            .str("queue", s.queueLost ? "lost" : "ok")
            .emit();
    }
    return s.queueLost ? 3 : 0;
}

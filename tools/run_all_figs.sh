#!/usr/bin/env bash
#
# Smoke-check every paper figure/table bench at reduced instruction counts,
# writing JSON/CSV artifacts for the binaries that support sinks.
#
# Usage: tools/run_all_figs.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree (default: build)
#   OUT_DIR    artifact directory (default: BUILD_DIR/fig_artifacts)
#
# Tunables (environment): UDP_BENCH_WARMUP / UDP_BENCH_INSTR (instruction
# counts per data point, default here: 20k/40k), UDP_JOBS (sweep worker
# count, default: all cores), UDP_BENCH_TIMEOUT (wall-clock seconds per
# bench before it is killed and counted as hung, default: 900),
# UDP_BENCH_ISOLATE=1 (run sink benches with --isolate: each sweep point
# in its own resource-limited child process).
#
# Outcome classes per bench: ok, FAILED (nonzero exit), CRASHED (died on
# a signal — the signal name is reported), HUNG (wall-clock timeout) and
# INTERRUPTED (exit 130: graceful shutdown). Sink benches checkpoint
# every finished point into a manifest, so a HUNG or INTERRUPTED bench is
# retried once with --resume and only re-runs what is missing.
# See docs/EXPERIMENT_GUIDE.md and docs/ROBUSTNESS.md.

set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-$BUILD_DIR/fig_artifacts}
BENCH_TIMEOUT=${UDP_BENCH_TIMEOUT:-900}

# Wall-clock guard around each bench: a modeling-bug hang inside one
# binary must not wedge the whole sweep. `timeout` exits 124 on expiry.
run_with_timeout() {
    if command -v timeout > /dev/null 2>&1; then
        timeout --signal=TERM --kill-after=30 "$BENCH_TIMEOUT" "$@"
    else
        "$@"
    fi
}

if [[ ! -d "$BUILD_DIR/bench" ]]; then
    echo "error: $BUILD_DIR/bench not found — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

export UDP_BENCH_WARMUP=${UDP_BENCH_WARMUP:-20000}
export UDP_BENCH_INSTR=${UDP_BENCH_INSTR:-40000}
mkdir -p "$OUT_DIR"

# Benches migrated to the sweep runner emit machine-readable artifacts.
SINK_BENCHES="fig03_ftq_sweep fig13_udp table3_optimal_ftq ablation_udp"

ALL_BENCHES="fig01_perfect_icache fig03_ftq_sweep fig04_timeliness
fig05_onpath_ratio fig06_usefulness fig08_occupancy fig11_uftq
fig12_uftq_mpki fig13_udp fig14_udp_mpki fig15_lost_instructions
fig16_btb_sensitivity fig17_ftq_sensitivity table3_optimal_ftq
ablation_udp"

# Classifies an exit status: ok | failed | crashed | hung | interrupted.
# `timeout` exits 124 on expiry (137 when it had to SIGKILL); any other
# status >= 128 means the bench itself died on signal (status - 128).
classify_rc() {
    local rc=$1
    if [[ $rc -eq 0 ]]; then
        echo ok
    elif [[ $rc -eq 124 || $rc -eq 137 ]]; then
        echo hung
    elif [[ $rc -eq 130 ]]; then
        echo interrupted
    elif [[ $rc -ge 128 ]]; then
        echo crashed
    else
        echo failed
    fi
}

signal_of_rc() {
    kill -l "$(($1 - 128))" 2> /dev/null || echo "$(($1 - 128))"
}

failures=0
hung=0
crashed=0
resumed=0
for bench in $ALL_BENCHES; do
    bin="$BUILD_DIR/bench/$bench"
    if [[ ! -x "$bin" ]]; then
        echo "MISSING  $bench" >&2
        failures=$((failures + 1))
        continue
    fi
    args=()
    is_sink=0
    if [[ " $SINK_BENCHES " == *" $bench "* ]]; then
        is_sink=1
        args=(--json "$OUT_DIR/$bench.jsonl" --csv "$OUT_DIR/$bench.csv")
        if [[ "${UDP_BENCH_ISOLATE:-0}" == "1" ]]; then
            args+=(--isolate)
        fi
    fi
    echo "=== $bench ==="
    rc=0
    run_with_timeout "$bin" "${args[@]}" \
        > "$OUT_DIR/$bench.txt" 2> "$OUT_DIR/$bench.log" || rc=$?
    outcome=$(classify_rc $rc)

    # A hung or interrupted sink bench has a checkpoint manifest: retry
    # once with --resume so only the missing points re-run.
    if [[ $is_sink -eq 1 && ($outcome == hung || $outcome == interrupted) ]]; then
        echo "RETRY    $bench ($outcome, resuming from manifest)" >&2
        resumed=$((resumed + 1))
        rc=0
        run_with_timeout "$bin" "${args[@]}" --resume \
            > "$OUT_DIR/$bench.txt" 2>> "$OUT_DIR/$bench.log" || rc=$?
        outcome=$(classify_rc $rc)
    fi

    case $outcome in
    ok)
        echo "ok       $bench"
        ;;
    hung)
        echo "HUNG     $bench (killed after ${BENCH_TIMEOUT}s, see $OUT_DIR/$bench.log)" >&2
        hung=$((hung + 1))
        failures=$((failures + 1))
        ;;
    crashed)
        echo "CRASHED  $bench ($(signal_of_rc $rc), see $OUT_DIR/$bench.log)" >&2
        crashed=$((crashed + 1))
        failures=$((failures + 1))
        ;;
    interrupted)
        echo "INTERRUPTED $bench (exit 130, see $OUT_DIR/$bench.log)" >&2
        failures=$((failures + 1))
        ;;
    *)
        echo "FAILED   $bench (exit $rc, see $OUT_DIR/$bench.log)" >&2
        failures=$((failures + 1))
        ;;
    esac
done

# The sweep-enabled example doubles as an API smoke check.
if [[ -x "$BUILD_DIR/examples/example_compare_prefetchers" ]]; then
    echo "=== example_compare_prefetchers ==="
    rc=0
    run_with_timeout "$BUILD_DIR/examples/example_compare_prefetchers" clang \
        "$UDP_BENCH_INSTR" \
        --json "$OUT_DIR/compare_prefetchers.jsonl" \
        --csv "$OUT_DIR/compare_prefetchers.csv" \
        > "$OUT_DIR/compare_prefetchers.txt" \
        2> "$OUT_DIR/compare_prefetchers.log" || rc=$?
    case $(classify_rc $rc) in
    ok)
        echo "ok       example_compare_prefetchers"
        ;;
    hung)
        echo "HUNG     example_compare_prefetchers (killed after ${BENCH_TIMEOUT}s)" >&2
        hung=$((hung + 1))
        failures=$((failures + 1))
        ;;
    crashed)
        echo "CRASHED  example_compare_prefetchers ($(signal_of_rc $rc))" >&2
        crashed=$((crashed + 1))
        failures=$((failures + 1))
        ;;
    *)
        echo "FAILED   example_compare_prefetchers (exit $rc)" >&2
        failures=$((failures + 1))
        ;;
    esac
fi

echo
if [[ $resumed -ne 0 ]]; then
    echo "$resumed bench(es) retried with --resume" >&2
fi
if [[ $failures -ne 0 ]]; then
    echo "$failures bench(es) failed ($hung hung, $crashed crashed); artifacts in $OUT_DIR" >&2
    exit 1
fi
echo "all benches passed; artifacts in $OUT_DIR"

#!/usr/bin/env bash
#
# Smoke-check every paper figure/table bench at reduced instruction counts,
# writing JSON/CSV artifacts for the binaries that support sinks.
#
# Usage: tools/run_all_figs.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree (default: build)
#   OUT_DIR    artifact directory (default: BUILD_DIR/fig_artifacts)
#
# Tunables (environment): UDP_BENCH_WARMUP / UDP_BENCH_INSTR (instruction
# counts per data point, default here: 20k/40k), UDP_JOBS (sweep worker
# count, default: all cores), UDP_BENCH_TIMEOUT (wall-clock seconds per
# bench before it is killed and counted as hung, default: 900).
# See docs/EXPERIMENT_GUIDE.md and docs/ROBUSTNESS.md.

set -euo pipefail

BUILD_DIR=${1:-build}
OUT_DIR=${2:-$BUILD_DIR/fig_artifacts}
BENCH_TIMEOUT=${UDP_BENCH_TIMEOUT:-900}

# Wall-clock guard around each bench: a modeling-bug hang inside one
# binary must not wedge the whole sweep. `timeout` exits 124 on expiry.
run_with_timeout() {
    if command -v timeout > /dev/null 2>&1; then
        timeout --signal=TERM --kill-after=30 "$BENCH_TIMEOUT" "$@"
    else
        "$@"
    fi
}

if [[ ! -d "$BUILD_DIR/bench" ]]; then
    echo "error: $BUILD_DIR/bench not found — build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

export UDP_BENCH_WARMUP=${UDP_BENCH_WARMUP:-20000}
export UDP_BENCH_INSTR=${UDP_BENCH_INSTR:-40000}
mkdir -p "$OUT_DIR"

# Benches migrated to the sweep runner emit machine-readable artifacts.
SINK_BENCHES="fig03_ftq_sweep fig13_udp table3_optimal_ftq ablation_udp"

ALL_BENCHES="fig01_perfect_icache fig03_ftq_sweep fig04_timeliness
fig05_onpath_ratio fig06_usefulness fig08_occupancy fig11_uftq
fig12_uftq_mpki fig13_udp fig14_udp_mpki fig15_lost_instructions
fig16_btb_sensitivity fig17_ftq_sensitivity table3_optimal_ftq
ablation_udp"

failures=0
hung=0
for bench in $ALL_BENCHES; do
    bin="$BUILD_DIR/bench/$bench"
    if [[ ! -x "$bin" ]]; then
        echo "MISSING  $bench" >&2
        failures=$((failures + 1))
        continue
    fi
    args=()
    if [[ " $SINK_BENCHES " == *" $bench "* ]]; then
        args=(--json "$OUT_DIR/$bench.jsonl" --csv "$OUT_DIR/$bench.csv")
    fi
    echo "=== $bench ==="
    rc=0
    run_with_timeout "$bin" "${args[@]}" \
        > "$OUT_DIR/$bench.txt" 2> "$OUT_DIR/$bench.log" || rc=$?
    if [[ $rc -eq 0 ]]; then
        echo "ok       $bench"
    elif [[ $rc -eq 124 || $rc -eq 137 ]]; then
        echo "HUNG     $bench (killed after ${BENCH_TIMEOUT}s, see $OUT_DIR/$bench.log)" >&2
        hung=$((hung + 1))
        failures=$((failures + 1))
    else
        echo "FAILED   $bench (exit $rc, see $OUT_DIR/$bench.log)" >&2
        failures=$((failures + 1))
    fi
done

# The sweep-enabled example doubles as an API smoke check.
if [[ -x "$BUILD_DIR/examples/example_compare_prefetchers" ]]; then
    echo "=== example_compare_prefetchers ==="
    rc=0
    run_with_timeout "$BUILD_DIR/examples/example_compare_prefetchers" clang \
        "$UDP_BENCH_INSTR" \
        --json "$OUT_DIR/compare_prefetchers.jsonl" \
        --csv "$OUT_DIR/compare_prefetchers.csv" \
        > "$OUT_DIR/compare_prefetchers.txt" \
        2> "$OUT_DIR/compare_prefetchers.log" || rc=$?
    if [[ $rc -eq 0 ]]; then
        echo "ok       example_compare_prefetchers"
    elif [[ $rc -eq 124 || $rc -eq 137 ]]; then
        echo "HUNG     example_compare_prefetchers (killed after ${BENCH_TIMEOUT}s)" >&2
        hung=$((hung + 1))
        failures=$((failures + 1))
    else
        echo "FAILED   example_compare_prefetchers (exit $rc)" >&2
        failures=$((failures + 1))
    fi
fi

echo
if [[ $failures -ne 0 ]]; then
    echo "$failures bench(es) failed ($hung hung); artifacts in $OUT_DIR" >&2
    exit 1
fi
echo "all benches passed; artifacts in $OUT_DIR"

/**
 * @file
 * udp_trace: dump the architectural dynamic instruction stream of a
 * workload in a readable text format (for debugging workload models and
 * for diffing against saved program images).
 *
 *   udp_trace --app xgboost --count 200
 *   udp_trace --load-program clang.prog --skip 1000000 --count 50
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/builder.h"
#include "workload/serialize.h"
#include "workload/true_stream.h"

namespace {

using namespace udp;

const char*
kindName(BranchKind k)
{
    switch (k) {
      case BranchKind::None: return "";
      case BranchKind::CondDirect: return "cond";
      case BranchKind::Jump: return "jmp";
      case BranchKind::IndirectJump: return "ijmp";
      case BranchKind::Call: return "call";
      case BranchKind::IndirectCall: return "icall";
      case BranchKind::Return: return "ret";
    }
    return "?";
}

const char*
typeName(InstrType t)
{
    switch (t) {
      case InstrType::Alu: return "alu";
      case InstrType::Load: return "ld";
      case InstrType::Store: return "st";
      case InstrType::Branch: return "br";
    }
    return "?";
}

} // namespace

int
main(int argc, char** argv)
{
    std::string app = "mysql";
    std::string load_path;
    std::uint64_t skip = 0;
    std::uint64_t count = 100;
    std::uint64_t seed = 0;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--app") {
            app = next();
        } else if (a == "--load-program") {
            load_path = next();
        } else if (a == "--skip") {
            skip = std::strtoull(next(), nullptr, 10);
        } else if (a == "--count") {
            count = std::strtoull(next(), nullptr, 10);
        } else if (a == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: udp_trace [--app NAME|--load-program P] "
                         "[--skip N] [--count N] [--seed N]\n");
            return a == "--help" || a == "-h" ? 0 : 2;
        }
    }

    try {
        Program prog = [&]() {
            if (!load_path.empty()) {
                return loadProgramFile(load_path);
            }
            Profile p = profileByName(app);
            if (seed) {
                p.seed = seed;
            }
            return ProgramBuilder::build(p);
        }();

        std::printf("# %s: %zu instrs, entry %#llx\n", prog.name().c_str(),
                    prog.numInstrs(),
                    static_cast<unsigned long long>(prog.entryPc()));
        std::printf("# %-12s %-4s %-5s %-8s %-12s %s\n", "pc", "type",
                    "kind", "outcome", "target/mem", "depth");

        Walker w(prog);
        for (std::uint64_t i = 0; i < skip; ++i) {
            w.step();
        }
        for (std::uint64_t i = 0; i < count; ++i) {
            ArchInstr a = w.step();
            const Instr& in = prog.instrAt(a.idx);
            char detail[32] = "";
            if (in.branch != BranchKind::None) {
                std::snprintf(detail, sizeof(detail), "%#llx",
                              static_cast<unsigned long long>(a.nextPc));
            } else if (a.memAddr != kInvalidAddr) {
                std::snprintf(detail, sizeof(detail), "%#llx",
                              static_cast<unsigned long long>(a.memAddr));
            }
            std::printf("  %#-12llx %-4s %-5s %-8s %-12s %zu\n",
                        static_cast<unsigned long long>(a.pc),
                        typeName(in.type), kindName(in.branch),
                        in.branch == BranchKind::CondDirect
                            ? (a.taken ? "taken" : "not-tkn")
                            : "",
                        detail, w.callDepth());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

#!/usr/bin/env python3
"""Print the paper's utility-taxonomy breakdown from telemetry artifacts.

Reads the ".jsonl" file written next to a bench's --interval-stats CSV
(rows tagged "row_type":"telemetry_summary"; see docs/TELEMETRY.md) and
prints one row per (workload, config): issued prefetches per source, the
Timely / Late / Unused / Polluting / Pending lifecycle split, and the
derived accuracy / timeliness ratios with late-by percentiles — the same
quantities as the paper's Table III / Fig. 4 discussion.

Usage:
    tools/trace_summary.py out/fig13.jsonl [more.jsonl ...]

Only the standard library is used.
"""

import json
import sys

OUTCOMES = ("timely", "late", "unused", "polluting", "pending")
SOURCES = ("fdip", "udp_extra", "eip", "stream")


def load_summaries(paths):
    """Yield telemetry_summary rows; tolerate a truncated final line."""
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # crash-safe artifacts may end mid-line
                if row.get("row_type") == "telemetry_summary":
                    yield row


def pct(num, den):
    return 100.0 * num / den if den else 0.0


def fmt_row(cells, widths):
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    rows = list(load_summaries(argv[1:]))
    if not rows:
        print("no telemetry_summary rows found (run a bench with "
              "--interval-stats; see docs/TELEMETRY.md)", file=sys.stderr)
        return 1

    header = ["workload", "config", "issued"] + list(OUTCOMES) + [
        "acc%", "timely%", "late_p50", "late_p90", "late_p99"]
    table = [header]
    for r in rows:
        issued = int(r.get("pf_issued_total", 0))
        counts = {o: int(r.get(f"pf_{o}_total", 0)) for o in OUTCOMES}
        used = counts["timely"] + counts["late"]
        table.append([
            r.get("workload", "?"),
            r.get("config", "?"),
            issued,
            *(counts[o] for o in OUTCOMES),
            f"{pct(used, issued):.1f}",
            f"{pct(counts['timely'], used):.1f}",
            int(r.get("pf_late_by_p50", 0)),
            int(r.get("pf_late_by_p90", 0)),
            int(r.get("pf_late_by_p99", 0)),
        ])

    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(header))]
    print(fmt_row(table[0], widths))
    print("  ".join("-" * w for w in widths))
    for row in table[1:]:
        print(fmt_row(row, widths))

    # Per-source issue mix, when any non-FDIP source contributed.
    mixed = [r for r in rows
             if any(int(r.get(f"pf_issued_{s}", 0)) for s in SOURCES[1:])]
    if mixed:
        print()
        print("issue mix by source:")
        for r in mixed:
            parts = ", ".join(
                f"{s}={int(r.get(f'pf_issued_{s}', 0))}" for s in SOURCES
                if int(r.get(f"pf_issued_{s}", 0)))
            print(f"  {r.get('workload', '?')}/{r.get('config', '?')}: "
                  f"{parts}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Print the paper's utility-taxonomy breakdown from telemetry artifacts.

Reads the ".jsonl" file written next to a bench's --interval-stats CSV
(rows tagged "row_type":"telemetry_summary"; see docs/TELEMETRY.md) and
prints one row per (workload, config): issued prefetches per source, the
Timely / Late / Unused / Polluting / Pending lifecycle split, and the
derived accuracy / timeliness ratios with late-by percentiles — the same
quantities as the paper's Table III / Fig. 4 discussion.

Also summarizes the cycle-loop self-profiler when present
(docs/OBSERVABILITY.md): "row_type":"profile_summary" rows from a bench's
"*.profile.jsonl" sidecar, and "host_us_per_phase" counter tracks inside
a --trace Chrome-trace file, both printed as per-phase host-time shares.

Usage:
    tools/trace_summary.py out/fig13.jsonl [fig13.profile.jsonl ...]
    tools/trace_summary.py out/trace.json

Only the standard library is used.
"""

import json
import sys

OUTCOMES = ("timely", "late", "unused", "polluting", "pending")
SOURCES = ("fdip", "udp_extra", "eip", "stream")
PHASES = ("fetch", "bpred", "icache", "prefetch", "backend", "other")


def profiles_from_trace(doc):
    """Per-job phase seconds from a Chrome trace's self_profile tracks."""
    names = {}
    phase_us = {}
    for ev in doc.get("traceEvents", []):
        pid = ev.get("pid")
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            names[pid] = ev.get("args", {}).get("name", f"pid{pid}")
        elif ev.get("ph") == "C" and ev.get("name") == "host_us_per_phase":
            acc = phase_us.setdefault(pid, dict.fromkeys(PHASES, 0.0))
            for p in PHASES:
                acc[p] += float(ev.get("args", {}).get(p, 0.0))
    for pid in sorted(phase_us):
        sec = {p: us / 1e6 for p, us in phase_us[pid].items()}
        yield {"name": names.get(pid, f"pid{pid}"), "phase_sec": sec,
               "cycles": None}


def load_inputs(paths):
    """Split inputs into telemetry_summary rows and profile entries.

    Accepts telemetry/profile JSONL artifacts and --trace Chrome-trace
    files in any order; tolerates a truncated final JSONL line.
    """
    telemetry, profiles = [], []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        if '"traceEvents"' in text:
            try:
                profiles.extend(profiles_from_trace(json.loads(text)))
            except json.JSONDecodeError:
                print(f"warning: {path}: unparseable trace, skipped",
                      file=sys.stderr)
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # crash-safe artifacts may end mid-line
            kind = row.get("row_type")
            if kind == "telemetry_summary":
                telemetry.append(row)
            elif kind == "profile_summary":
                name = (f"{row.get('workload', '?')}/"
                        f"{row.get('config', '?')}")
                sec = {p: float(row.get(f"phase_{p}_sec", 0.0))
                       for p in PHASES}
                profiles.append({"name": name, "phase_sec": sec,
                                 "cycles": row.get("cycles")})
    return telemetry, profiles


def pct(num, den):
    return 100.0 * num / den if den else 0.0


def fmt_row(cells, widths):
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def print_profiles(profiles):
    """Table of per-phase host-time shares from the self-profiler."""
    print("self-profiler host time by phase:")
    header = ["job", "host_sec"] + [f"{p}%" for p in PHASES]
    table = [header]
    for e in profiles:
        total = sum(e["phase_sec"].values())
        table.append([
            e["name"],
            f"{total:.3f}",
            *(f"{pct(e['phase_sec'][p], total):.1f}" for p in PHASES),
        ])
    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(header))]
    print(fmt_row(table[0], widths))
    print("  ".join("-" * w for w in widths))
    for row in table[1:]:
        print(fmt_row(row, widths))


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    rows, profiles = load_inputs(argv[1:])
    if not rows and not profiles:
        print("no telemetry_summary / profile_summary rows or profiler "
              "trace tracks found (run a bench with --interval-stats or "
              "--profile; see docs/TELEMETRY.md and docs/OBSERVABILITY.md)",
              file=sys.stderr)
        return 1
    if not rows:
        print_profiles(profiles)
        return 0

    header = ["workload", "config", "issued"] + list(OUTCOMES) + [
        "acc%", "timely%", "late_p50", "late_p90", "late_p99"]
    table = [header]
    for r in rows:
        issued = int(r.get("pf_issued_total", 0))
        counts = {o: int(r.get(f"pf_{o}_total", 0)) for o in OUTCOMES}
        used = counts["timely"] + counts["late"]
        table.append([
            r.get("workload", "?"),
            r.get("config", "?"),
            issued,
            *(counts[o] for o in OUTCOMES),
            f"{pct(used, issued):.1f}",
            f"{pct(counts['timely'], used):.1f}",
            int(r.get("pf_late_by_p50", 0)),
            int(r.get("pf_late_by_p90", 0)),
            int(r.get("pf_late_by_p99", 0)),
        ])

    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(header))]
    print(fmt_row(table[0], widths))
    print("  ".join("-" * w for w in widths))
    for row in table[1:]:
        print(fmt_row(row, widths))

    # Per-source issue mix, when any non-FDIP source contributed.
    mixed = [r for r in rows
             if any(int(r.get(f"pf_issued_{s}", 0)) for s in SOURCES[1:])]
    if mixed:
        print()
        print("issue mix by source:")
        for r in mixed:
            parts = ", ".join(
                f"{s}={int(r.get(f'pf_issued_{s}', 0))}" for s in SOURCES
                if int(r.get(f"pf_issued_{s}", 0)))
            print(f"  {r.get('workload', '?')}/{r.get('config', '?')}: "
                  f"{parts}")

    if profiles:
        print()
        print_profiles(profiles)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

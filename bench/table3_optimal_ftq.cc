/**
 * @file
 * Table III: per-application optimal FTQ depth (exhaustive exploration)
 * with the utility and timeliness ratios measured at that optimum, plus
 * the correlation coefficients between the optimal depth and each ratio —
 * the justification for UFTQ's AUR/ATR feedback signals.
 *
 * Usage: table3_optimal_ftq [--json out.jsonl] [--csv out.csv]
 */

#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace udp;
    using namespace udp::bench;

    banner("Table III", "optimal FTQ depth, utility and timeliness per app");
    RunOptions o = defaultOptions();
    SinkArgs sinks = parseSinkArgs(argc, argv);

    // The exhaustive exploration (apps x depths) runs as one parallel
    // batch; only the per-app argmax below is serial. Failed points are
    // skipped in the argmax and recorded as failure rows.
    std::vector<FailureRow> failures;
    std::vector<std::pair<unsigned, Report>> optima =
        findOptimalFtqBatch(datacenterProfiles(), o, &failures, sinks);

    Table t({"app", "optimal_ftq", "utility", "timeliness", "ipc"});
    std::vector<double> depths;
    std::vector<double> utilities;
    std::vector<double> timelinesses;
    std::vector<Report> optimal_reports;
    std::size_t pi = 0;
    for (const Profile& p : datacenterProfiles()) {
        const auto& [depth, best] = optima[pi++];
        depths.push_back(depth);
        utilities.push_back(best.usefulnessHw);
        timelinesses.push_back(best.timeliness);
        optimal_reports.push_back(best);
        t.beginRow();
        t.cell(p.name);
        t.cell(std::uint64_t{depth});
        t.cell(best.usefulnessHw, 2);
        t.cell(best.timeliness, 2);
        t.cell(best.ipc, 3);
    }

    t.beginRow();
    t.cell(std::string("geomean"));
    t.cell(geomean(depths), 0);
    t.cell(geomean(utilities), 2);
    t.cell(geomean(timelinesses), 2);
    t.cell(std::string("-"));

    t.beginRow();
    t.cell(std::string("correl.coeff"));
    t.cell(std::string("-"));
    t.cell(correlation(depths, utilities), 2);
    t.cell(correlation(depths, timelinesses), 2);
    t.cell(std::string("-"));

    std::printf("%s", t.toAscii().c_str());
    std::printf("\nPaper reference: optimal 12..90 (geomean 42), utility "
                "geomean 0.65 (corr 0.63), timeliness geomean 0.75 "
                "(corr 0.21).\n");
    return finishArtifacts(sinks, optimal_reports, failures);
}

/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the hot
 * hardware-model structures — Bloom filter lookups, TAGE predictions,
 * cache accesses, FTQ operations, and whole-simulator cycles/second.
 */

#include <benchmark/benchmark.h>

#include "bpred/tage.h"
#include "cache/cache.h"
#include "common/rng.h"
#include "core/bloom.h"
#include "core/useful_set.h"
#include "sim/runner.h"
#include "workload/builder.h"

namespace {

using namespace udp;

void
BM_BloomLookup(benchmark::State& state)
{
    BloomFilter f(16 * 1024, 6);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        f.insert(rng.next());
    }
    std::uint64_t key = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.contains(mix64(key++)));
    }
}
BENCHMARK(BM_BloomLookup);

void
BM_BloomInsert(benchmark::State& state)
{
    BloomFilter f(16 * 1024, 6);
    std::uint64_t key = 1;
    for (auto _ : state) {
        f.insert(mix64(key++));
        if (f.insertions() > 1600) {
            f.clear();
        }
    }
}
BENCHMARK(BM_BloomInsert);

void
BM_UsefulSetLookup(benchmark::State& state)
{
    UsefulSet set{UsefulSetConfig{}};
    Rng rng(11);
    for (int i = 0; i < 1200; ++i) {
        set.learn(rng.next() & ~Addr{63});
    }
    std::uint64_t key = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.lookup(mix64(key++) & ~Addr{63}));
    }
}
BENCHMARK(BM_UsefulSetLookup);

void
BM_TagePredict(benchmark::State& state)
{
    Tage tage{TageConfig{}};
    std::uint64_t pc = 0x400000;
    for (auto _ : state) {
        TagePrediction p = tage.predict(pc);
        benchmark::DoNotOptimize(p);
        tage.specUpdateHistory(p.taken, pc);
        pc += 8;
    }
}
BENCHMARK(BM_TagePredict);

void
BM_CacheDemandAccess(benchmark::State& state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.assoc = 8;
    SetAssocCache cache(cfg);
    Rng rng(3);
    for (int i = 0; i < 512; ++i) {
        cache.insert(rng.next() & 0xffff'c0, false);
    }
    std::uint64_t key = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.demandAccess(mix64(key++) & 0xffff'c0, true));
    }
}
BENCHMARK(BM_CacheDemandAccess);

void
BM_SimulatorKiloCycles(benchmark::State& state)
{
    const Profile& p = profileByName("mysql");
    static Program prog = ProgramBuilder::build(p);
    Cpu cpu(prog, presets::fdipBaseline());
    for (auto _ : state) {
        Cycle start = cpu.now();
        while (cpu.now() - start < 1000) {
            cpu.cycle();
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cpu.retired()));
}
BENCHMARK(BM_SimulatorKiloCycles)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Figure 15: fetch slots lost to icache-miss stalls (per kilo-instruction)
 * — proportional to cycles lost to instruction misses. UDP reduces this
 * through timelier fills even where raw MPKI barely changes.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 15", "fetch slots lost to icache misses (per kilo-instr)");
    RunOptions o = defaultOptions();

    Table t({"app", "baseline", "udp_8k", "infinite", "icache_40k",
             "eip_8k"});
    for (const Profile& p : datacenterProfiles()) {
        Report base = runSim(p, presets::fdipBaseline(), o, "fdip32");
        Report u = runSim(p, presets::udp8k(), o, "udp8k");
        Report inf = runSim(p, presets::udpInfinite(), o, "inf");
        Report ic = runSim(p, presets::bigIcache40k(), o, "ic40k");
        Report eip = runSim(p, presets::eip8k(), o, "eip");

        t.beginRow();
        t.cell(p.name);
        t.cell(base.lostInstrPerKilo, 1);
        t.cell(u.lostInstrPerKilo, 1);
        t.cell(inf.lostInstrPerKilo, 1);
        t.cell(ic.lostInstrPerKilo, 1);
        t.cell(eip.lostInstrPerKilo, 1);
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

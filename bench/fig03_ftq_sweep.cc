/**
 * @file
 * Figure 3: IPC speedup over the FTQ=32 baseline across FTQ depths; the
 * per-application optimum varies widely (paper: 16..90).
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 3", "IPC speedup (%) vs FTQ depth, over FTQ=32");
    RunOptions o = defaultOptions();

    std::vector<std::string> header = {"app"};
    for (unsigned d : sweepDepths()) {
        header.push_back("ftq" + std::to_string(d));
    }
    header.push_back("opt_depth");

    Table t(header);
    for (const Profile& p : datacenterProfiles()) {
        Report base = runSim(p, presets::fdipBaseline(), o, "fdip32");
        t.beginRow();
        t.cell(p.name);
        unsigned best_depth = 32;
        double best = base.ipc;
        for (unsigned d : sweepDepths()) {
            Report r = runSim(p, presets::fdipWithFtq(d), o, "");
            t.cell((r.ipc / base.ipc - 1.0) * 100.0, 1);
            if (r.ipc > best) {
                best = r.ipc;
                best_depth = d;
            }
        }
        t.cell(std::uint64_t{best_depth});
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Figure 3: IPC speedup over the FTQ=32 baseline across FTQ depths; the
 * per-application optimum varies widely (paper: 16..90).
 *
 * Usage: fig03_ftq_sweep [--json out.jsonl] [--csv out.csv]
 */

#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 3", "IPC speedup (%) vs FTQ depth, over FTQ=32");
    RunOptions o = defaultOptions();
    SinkArgs sinks = parseSinkArgs(argc, argv);

    std::vector<std::string> header = {"app"};
    for (unsigned d : sweepDepths()) {
        header.push_back("ftq" + std::to_string(d));
    }
    header.push_back("opt_depth");

    // One job per (app, depth) plus the per-app baseline; all points are
    // independent, so the whole figure is a single parallel batch.
    std::vector<SweepJob> jobs;
    for (const Profile& p : datacenterProfiles()) {
        jobs.push_back({p, presets::fdipBaseline(), o, "fdip32"});
        for (unsigned d : sweepDepths()) {
            jobs.push_back({p, presets::fdipWithFtq(d), o,
                            "ftq" + std::to_string(d)});
        }
    }
    std::vector<JobResult> results = runBenchSweep(jobs, sinks);
    std::vector<Report> reports = reportsOf(jobs, results);

    Table t(header);
    std::size_t i = 0;
    for (const Profile& p : datacenterProfiles()) {
        const Report& base = reports[i++];
        t.beginRow();
        t.cell(p.name);
        unsigned best_depth = 32;
        double best = base.ipc;
        for (unsigned d : sweepDepths()) {
            const Report& r = reports[i++];
            t.cell((r.ipc / base.ipc - 1.0) * 100.0, 1);
            if (r.ipc > best) {
                best = r.ipc;
                best_depth = d;
            }
        }
        t.cell(std::uint64_t{best_depth});
    }
    std::printf("%s", t.toAscii().c_str());
    return writeArtifactsChecked(sinks, jobs, results);
}

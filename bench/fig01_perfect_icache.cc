/**
 * @file
 * Figure 1: IPC speedup of a perfect icache over the state-of-the-art
 * FDIP baseline (FTQ=32) — the headroom motivating UDP.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 1", "perfect-icache speedup over the FDIP baseline");
    RunOptions o = defaultOptions();

    Table t({"app", "fdip_ipc", "perfect_ipc", "speedup_pct"});
    std::vector<double> speedups;
    for (const Profile& p : datacenterProfiles()) {
        Report base = runSim(p, presets::fdipBaseline(), o, "fdip32");
        Report perf = runSim(p, presets::perfectIcache(), o, "perfect");
        double s = perf.ipc / base.ipc;
        speedups.push_back(s);
        t.beginRow();
        t.cell(p.name);
        t.cell(base.ipc, 3);
        t.cell(perf.ipc, 3);
        t.cell((s - 1.0) * 100.0, 1);
    }
    t.beginRow();
    t.cell(std::string("geomean"));
    t.cell(std::string("-"));
    t.cell(std::string("-"));
    t.cell((geomean(speedups) - 1.0) * 100.0, 1);
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

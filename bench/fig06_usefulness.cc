/**
 * @file
 * Figure 6: ground-truth prefetch usefulness — useful/(useful+useless),
 * where useful means hit by an on-path demand access (in the icache or the
 * fill buffer) and useless means evicted untouched — across FTQ depths.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 6", "useful/(useful+useless) prefetch ratio vs FTQ depth");
    RunOptions o = defaultOptions();

    std::vector<std::string> header = {"app"};
    for (unsigned d : sweepDepths()) {
        header.push_back("ftq" + std::to_string(d));
    }

    Table t(header);
    for (const Profile& p : datacenterProfiles()) {
        t.beginRow();
        t.cell(p.name);
        for (unsigned d : sweepDepths()) {
            Report r = runSim(p, presets::fdipWithFtq(d), o, "");
            t.cell(r.usefulness, 3);
        }
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Figure 11: IPC speedup over the FTQ=32 baseline for the three UFTQ
 * variants (AUR, ATR, ATR-AUR) and the OPT oracle (best fixed depth).
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 11", "UFTQ speedup (%) over FTQ=32 baseline");
    RunOptions o = defaultOptions();

    Table t({"app", "uftq_aur", "uftq_atr", "uftq_atr_aur", "opt",
             "opt_depth"});
    std::vector<double> s_aur;
    std::vector<double> s_atr;
    std::vector<double> s_combo;
    std::vector<double> s_opt;
    for (const Profile& p : datacenterProfiles()) {
        Report base = runSim(p, presets::fdipBaseline(), o, "fdip32");
        Report aur = runSim(p, presets::uftq(UftqMode::Aur), o, "aur");
        Report atr = runSim(p, presets::uftq(UftqMode::Atr), o, "atr");
        Report combo = runSim(p, presets::uftq(UftqMode::AtrAur), o, "both");
        auto [depth, opt] = findOptimalFtq(p, o);

        s_aur.push_back(aur.ipc / base.ipc);
        s_atr.push_back(atr.ipc / base.ipc);
        s_combo.push_back(combo.ipc / base.ipc);
        s_opt.push_back(opt.ipc / base.ipc);

        t.beginRow();
        t.cell(p.name);
        t.cell((aur.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell((atr.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell((combo.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell((opt.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell(std::uint64_t{depth});
    }
    t.beginRow();
    t.cell(std::string("geomean"));
    t.cell((geomean(s_aur) - 1.0) * 100.0, 1);
    t.cell((geomean(s_atr) - 1.0) * 100.0, 1);
    t.cell((geomean(s_combo) - 1.0) * 100.0, 1);
    t.cell((geomean(s_opt) - 1.0) * 100.0, 1);
    t.cell(std::string("-"));
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Figure 14: icache MPKI of the baseline and the Fig. 13 techniques. The
 * paper's point: UDP's gain is NOT from fewer misses (MPKI barely moves)
 * but from more timely fills.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 14", "icache MPKI across techniques");
    RunOptions o = defaultOptions();

    Table t({"app", "baseline", "udp_8k", "infinite", "icache_40k",
             "eip_8k"});
    for (const Profile& p : datacenterProfiles()) {
        Report base = runSim(p, presets::fdipBaseline(), o, "fdip32");
        Report u = runSim(p, presets::udp8k(), o, "udp8k");
        Report inf = runSim(p, presets::udpInfinite(), o, "inf");
        Report ic = runSim(p, presets::bigIcache40k(), o, "ic40k");
        Report eip = runSim(p, presets::eip8k(), o, "eip");

        t.beginRow();
        t.cell(p.name);
        t.cell(base.icacheMpki, 2);
        t.cell(u.icacheMpki, 2);
        t.cell(inf.icacheMpki, 2);
        t.cell(ic.icacheMpki, 2);
        t.cell(eip.icacheMpki, 2);
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Ablation bench (beyond the paper's figures): isolates the contribution
 * of UDP's design choices called out in DESIGN.md —
 *  - Seniority-FTQ flush policy (Keep vs the literal DropYounger reading),
 *  - super-block coalescing (1/2/4-line filters vs 1-line only),
 *  - confidence threshold sensitivity,
 *  - prefetch L2-demotion when the fill buffer is busy.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Ablation", "UDP design-choice ablations (speedup % over FDIP)");
    RunOptions o = defaultOptions();

    Table t({"app", "udp", "sftq_drop", "no_superblk", "thresh4",
             "thresh16", "no_demote"});
    for (const char* name :
         {"mysql", "clang", "verilator", "xgboost", "mongodb"}) {
        const Profile& p = profileByName(name);
        Report base = runSim(p, presets::fdipBaseline(), o, "fdip32");
        auto pct = [&](const Report& r) {
            return (r.ipc / base.ipc - 1.0) * 100.0;
        };

        Report u = runSim(p, presets::udp8k(), o, "udp");

        SimConfig drop = presets::udp8k();
        drop.udp.seniority.flushPolicy = SftqFlushPolicy::DropYounger;
        Report rd = runSim(p, drop, o, "drop");

        SimConfig nosb = presets::udp8k();
        nosb.udp.usefulSet.bits1 = 18 * 1024; // same budget, one filter
        nosb.udp.usefulSet.bits2 = 64;
        nosb.udp.usefulSet.bits4 = 64;
        nosb.udp.usefulSet.coalesceBufferSize = 1;
        Report rn = runSim(p, nosb, o, "nosb");

        SimConfig t4 = presets::udp8k();
        t4.udp.confidence.threshold = 4;
        Report r4 = runSim(p, t4, o, "t4");

        SimConfig t16 = presets::udp8k();
        t16.udp.confidence.threshold = 16;
        Report r16 = runSim(p, t16, o, "t16");

        SimConfig nodem = presets::udp8k();
        nodem.mem.l1iPrefetchDemoteL2 = false;
        Report rnd = runSim(p, nodem, o, "nodem");

        t.beginRow();
        t.cell(std::string(name));
        t.cell(pct(u), 1);
        t.cell(pct(rd), 1);
        t.cell(pct(rn), 1);
        t.cell(pct(r4), 1);
        t.cell(pct(r16), 1);
        t.cell(pct(rnd), 1);
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

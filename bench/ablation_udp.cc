/**
 * @file
 * Ablation bench (beyond the paper's figures): isolates the contribution
 * of UDP's design choices called out in DESIGN.md —
 *  - Seniority-FTQ flush policy (Keep vs the literal DropYounger reading),
 *  - super-block coalescing (1/2/4-line filters vs 1-line only),
 *  - confidence threshold sensitivity,
 *  - prefetch L2-demotion when the fill buffer is busy.
 *
 * Usage: ablation_udp [--json out.jsonl] [--csv out.csv]
 */

#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace udp;
    using namespace udp::bench;

    banner("Ablation", "UDP design-choice ablations (speedup % over FDIP)");
    RunOptions o = defaultOptions();
    SinkArgs sinks = parseSinkArgs(argc, argv);

    const std::vector<std::string> apps = {"mysql", "clang", "verilator",
                                           "xgboost", "mongodb"};

    std::vector<SweepJob> jobs;
    for (const std::string& name : apps) {
        const Profile& p = profileByName(name);
        jobs.push_back({p, presets::fdipBaseline(), o, "fdip32"});
        jobs.push_back({p, presets::udp8k(), o, "udp"});

        SimConfig drop = presets::udp8k();
        drop.udp.seniority.flushPolicy = SftqFlushPolicy::DropYounger;
        jobs.push_back({p, drop, o, "drop"});

        SimConfig nosb = presets::udp8k();
        nosb.udp.usefulSet.bits1 = 18 * 1024; // same budget, one filter
        nosb.udp.usefulSet.bits2 = 64;
        nosb.udp.usefulSet.bits4 = 64;
        nosb.udp.usefulSet.coalesceBufferSize = 1;
        jobs.push_back({p, nosb, o, "nosb"});

        SimConfig t4 = presets::udp8k();
        t4.udp.confidence.threshold = 4;
        jobs.push_back({p, t4, o, "t4"});

        SimConfig t16 = presets::udp8k();
        t16.udp.confidence.threshold = 16;
        jobs.push_back({p, t16, o, "t16"});

        SimConfig nodem = presets::udp8k();
        nodem.mem.l1iPrefetchDemoteL2 = false;
        jobs.push_back({p, nodem, o, "nodem"});
    }
    std::vector<JobResult> results = runBenchSweep(jobs, sinks);
    std::vector<Report> reports = reportsOf(jobs, results);

    Table t({"app", "udp", "sftq_drop", "no_superblk", "thresh4",
             "thresh16", "no_demote"});
    std::size_t i = 0;
    for (const std::string& name : apps) {
        const Report& base = reports[i++];
        auto pct = [&](const Report& r) {
            return (r.ipc / base.ipc - 1.0) * 100.0;
        };
        t.beginRow();
        t.cell(name);
        for (int variant = 0; variant < 6; ++variant) {
            t.cell(pct(reports[i++]), 1);
        }
    }
    std::printf("%s", t.toAscii().c_str());
    return writeArtifactsChecked(sinks, jobs, results);
}

/**
 * @file
 * Figure 5: fraction of emitted prefetches that were on the correct path,
 * on-path/(on-path + off-path), across FTQ depths. Deeper FTQs emit more
 * off-path prefetches.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 5", "on-path/(on+off) emitted prefetch ratio vs FTQ depth");
    RunOptions o = defaultOptions();

    std::vector<std::string> header = {"app"};
    for (unsigned d : sweepDepths()) {
        header.push_back("ftq" + std::to_string(d));
    }

    Table t(header);
    for (const Profile& p : datacenterProfiles()) {
        t.beginRow();
        t.cell(p.name);
        for (unsigned d : sweepDepths()) {
            Report r = runSim(p, presets::fdipWithFtq(d), o, "");
            t.cell(r.onPathRatio, 3);
        }
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

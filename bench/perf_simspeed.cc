/**
 * @file
 * Simulation-speed harness: wall-clock throughput of the simulator
 * itself — simulated instructions per host second and simulated cycles
 * per host second — for every datacenter workload under the FDIP
 * baseline and the UDP-8KB configuration. This is the number that
 * gates sweep sizing (how many points fit in a CI budget), so it is
 * recorded to a committed JSONL snapshot for regression tracking.
 *
 * Usage: perf_simspeed [--out BENCH_simspeed.json] [--repeat N]
 *                      [--profile]
 *
 * Each (workload, config) point is run --repeat times (default 3) in
 * this process, serially, after one untimed warmup run that populates
 * the shared Program cache; the fastest repeat is reported, the usual
 * way to suppress host scheduling noise.
 *
 * The output file is append-only: every invocation adds ONE timestamped
 * JSON row (a JSONL file), so the committed BENCH_simspeed.json
 * accumulates the perf trajectory across PRs instead of losing history
 * on each regeneration. With --profile the cycle-loop self-profiler
 * (obs/profiler.h) runs during the timed repeats and each point carries
 * per-phase host-time percentages, so a regression row also says WHERE
 * the time moved.
 */

#include "bench_util.h"

#include <chrono>
#include <ctime>
#include <fstream>

int
main(int argc, char** argv)
{
    using namespace udp;
    using namespace udp::bench;
    using clock = std::chrono::steady_clock;

    std::string outPath = "BENCH_simspeed.json";
    unsigned repeat = 3;
    bool profile = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = static_cast<unsigned>(std::atoi(argv[++i]));
            if (repeat == 0) {
                repeat = 1;
            }
        } else if (arg == "--profile") {
            profile = true;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--out PATH] [--repeat N] [--profile]\n",
                argv[0]);
            return 2;
        }
    }

    banner("Simulation speed",
           "host throughput: simulated instrs/sec and cycles/sec");
    RunOptions o = defaultOptions();

    struct Point
    {
        std::string workload;
        std::string config;
        double instrPerSec = 0.0;
        double cyclesPerSec = 0.0;
        double hostSec = 0.0;
        std::shared_ptr<const obs::ProfileSnapshot> prof;
    };
    std::vector<Point> points;

    Table t({"app", "config", "Minstr/s", "Mcycles/s", "host_ms"});
    for (const Profile& p : datacenterProfiles()) {
        const std::pair<const char*, SimConfig> configs[] = {
            {"fdip32", presets::fdipBaseline()},
            {"udp8k", presets::udp8k()},
        };
        for (const auto& [label, baseCfg] : configs) {
            SimConfig cfg = baseCfg;
            cfg.profile.enabled = profile;
            // Untimed warmup: builds the Program image and warms the
            // host caches, so the timed repeats measure simulation only.
            runSim(p, cfg, o, label);
            double bestSec = 0.0;
            Report r;
            for (unsigned k = 0; k < repeat; ++k) {
                clock::time_point t0 = clock::now();
                Report rep = runSim(p, cfg, o, label);
                double sec =
                    std::chrono::duration<double>(clock::now() - t0)
                        .count();
                if (k == 0 || sec < bestSec) {
                    bestSec = sec;
                    r = std::move(rep);
                }
            }
            Point pt;
            pt.workload = p.name;
            pt.config = label;
            pt.hostSec = bestSec;
            pt.prof = r.profile;
            if (bestSec > 0.0) {
                pt.instrPerSec =
                    static_cast<double>(r.instructions) / bestSec;
                pt.cyclesPerSec = static_cast<double>(r.cycles) / bestSec;
            }
            points.push_back(pt);

            t.beginRow();
            t.cell(pt.workload);
            t.cell(pt.config);
            t.cell(pt.instrPerSec / 1e6, 2);
            t.cell(pt.cyclesPerSec / 1e6, 2);
            t.cell(pt.hostSec * 1e3, 1);
        }
    }
    std::printf("%s", t.toAscii().c_str());
    if (profile) {
        for (const Point& pt : points) {
            if (!pt.prof) {
                continue;
            }
            std::printf("[profile] %s/%s:", pt.workload.c_str(),
                        pt.config.c_str());
            for (std::size_t ph = 0; ph < obs::kNumProfPhases; ++ph) {
                std::printf(" %s %.1f%%",
                            obs::profPhaseName(
                                static_cast<obs::ProfPhase>(ph)),
                            pt.prof->phaseFrac(
                                static_cast<obs::ProfPhase>(ph)) *
                                100.0);
            }
            std::printf("\n");
        }
    }

    // Append one timestamped JSONL row. Host throughput is
    // machine-dependent, so the committed file is a reference
    // trajectory, not a pass/fail gate.
    std::time_t now = std::time(nullptr);
    char ts[32] = "unknown";
    if (std::tm* tm = std::gmtime(&now)) {
        std::strftime(ts, sizeof ts, "%Y-%m-%dT%H:%M:%SZ", tm);
    }
    std::ofstream out(outPath, std::ios::app);
    if (!out.is_open()) {
        std::fprintf(stderr, "[simspeed] cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    out << "{\"bench\": \"perf_simspeed\", \"ts\": \"" << ts
        << "\", \"warmup_instrs\": " << o.warmupInstrs
        << ", \"measure_instrs\": " << o.measureInstrs
        << ", \"repeat\": " << repeat << ", \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& pt = points[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "%s{\"workload\": \"%s\", \"config\": \"%s\", "
                      "\"instr_per_sec\": %.0f, \"cycles_per_sec\": %.0f, "
                      "\"host_sec\": %.4f",
                      i == 0 ? "" : ", ", pt.workload.c_str(),
                      pt.config.c_str(), pt.instrPerSec, pt.cyclesPerSec,
                      pt.hostSec);
        out << buf;
        if (pt.prof) {
            for (std::size_t ph = 0; ph < obs::kNumProfPhases; ++ph) {
                std::snprintf(
                    buf, sizeof buf, ", \"phase_%s_pct\": %.2f",
                    obs::profPhaseName(static_cast<obs::ProfPhase>(ph)),
                    pt.prof->phaseFrac(static_cast<obs::ProfPhase>(ph)) *
                        100.0);
                out << buf;
            }
        }
        out << "}";
    }
    out << "]}\n";
    out.close();
    std::printf("snapshot row appended to %s\n", outPath.c_str());
    return 0;
}

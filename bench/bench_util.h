/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every binary regenerates one table/figure of the paper and prints the
 * same rows/series. Instruction counts scale via UDP_BENCH_WARMUP /
 * UDP_BENCH_INSTR environment variables.
 */

#ifndef UDP_BENCH_BENCH_UTIL_H
#define UDP_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "stats/table.h"

namespace udp::bench {

/** Default measurement window (kept modest; scale via env for fidelity). */
inline RunOptions
defaultOptions()
{
    RunOptions o;
    o.warmupInstrs = 250'000;
    o.measureInstrs = 400'000;
    return envRunOptions(o);
}

/** FTQ depths used by the Section III sweeps. */
inline const std::vector<unsigned>&
sweepDepths()
{
    static const std::vector<unsigned> d = {8, 16, 24, 32, 48, 64, 96, 128};
    return d;
}

/** Coarser sweep for finding each app's optimal (OPT oracle) depth. */
inline const std::vector<unsigned>&
optSearchDepths()
{
    static const std::vector<unsigned> d = {8, 16, 24, 32, 48, 64, 96, 128};
    return d;
}

/** Finds the best fixed FTQ depth (OPT oracle) for @p profile. */
inline std::pair<unsigned, Report>
findOptimalFtq(const Profile& profile, const RunOptions& opts)
{
    unsigned best_depth = 32;
    Report best;
    bool first = true;
    for (unsigned d : optSearchDepths()) {
        Report r = runSim(profile, presets::fdipWithFtq(d), opts,
                          "ftq" + std::to_string(d));
        if (first || r.ipc > best.ipc) {
            best = r;
            best_depth = d;
            first = false;
        }
    }
    return {best_depth, best};
}

/** Prints the standard bench banner. */
inline void
banner(const char* figure, const char* what)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure, what);
    RunOptions o = defaultOptions();
    std::printf("warmup=%llu measured=%llu instructions per point "
                "(override: UDP_BENCH_WARMUP / UDP_BENCH_INSTR)\n",
                static_cast<unsigned long long>(o.warmupInstrs),
                static_cast<unsigned long long>(o.measureInstrs));
    std::printf("==============================================================\n");
}

} // namespace udp::bench

#endif // UDP_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every binary regenerates one table/figure of the paper and prints the
 * same rows/series. Data points run through the parallel sweep runner
 * (sim/sweep.h): instruction counts scale via UDP_BENCH_WARMUP /
 * UDP_BENCH_INSTR, worker count via UDP_JOBS, and `--json out.jsonl` /
 * `--csv out.csv` write machine-readable artifacts (stats/sink.h). See
 * docs/EXPERIMENT_GUIDE.md for the full workflow.
 */

#ifndef UDP_BENCH_BENCH_UTIL_H
#define UDP_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "sim/runner.h"
#include "sim/sweep.h"
#include "stats/sink.h"
#include "stats/table.h"

namespace udp::bench {

/** Default measurement window (kept modest; scale via env for fidelity). */
inline RunOptions
defaultOptions()
{
    RunOptions o;
    o.warmupInstrs = 250'000;
    o.measureInstrs = 400'000;
    return envRunOptions(o);
}

/** FTQ depths used by the Section III sweeps. */
inline const std::vector<unsigned>&
sweepDepths()
{
    static const std::vector<unsigned> d = {8, 16, 24, 32, 48, 64, 96, 128};
    return d;
}

/** Coarser sweep for finding each app's optimal (OPT oracle) depth. */
inline const std::vector<unsigned>&
optSearchDepths()
{
    static const std::vector<unsigned> d = {8, 16, 24, 32, 48, 64, 96, 128};
    return d;
}

/**
 * Finds the best fixed FTQ depth (OPT oracle) for each of @p profiles,
 * sweeping all profiles x depths as one parallel batch. Ties keep the
 * shallower depth; depth 32 with its report is the fallback for an empty
 * search list.
 */
inline std::vector<std::pair<unsigned, Report>>
findOptimalFtqBatch(const std::vector<Profile>& profiles,
                    const RunOptions& opts)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(profiles.size() * optSearchDepths().size());
    for (const Profile& p : profiles) {
        for (unsigned d : optSearchDepths()) {
            jobs.push_back({p, presets::fdipWithFtq(d), opts,
                            "ftq" + std::to_string(d)});
        }
    }
    std::vector<Report> reports = runSweep(jobs);

    std::vector<std::pair<unsigned, Report>> best;
    best.reserve(profiles.size());
    std::size_t i = 0;
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        unsigned best_depth = 32;
        Report best_report;
        bool first = true;
        for (unsigned d : optSearchDepths()) {
            const Report& r = reports[i++];
            if (first || r.ipc > best_report.ipc) {
                best_report = r;
                best_depth = d;
                first = false;
            }
        }
        best.emplace_back(best_depth, std::move(best_report));
    }
    return best;
}

/** Finds the best fixed FTQ depth (OPT oracle) for @p profile. */
inline std::pair<unsigned, Report>
findOptimalFtq(const Profile& profile, const RunOptions& opts)
{
    return findOptimalFtqBatch({profile}, opts).front();
}

/** Prints the standard bench banner. */
inline void
banner(const char* figure, const char* what)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure, what);
    RunOptions o = defaultOptions();
    std::printf("warmup=%llu measured=%llu instructions per point "
                "(override: UDP_BENCH_WARMUP / UDP_BENCH_INSTR)\n",
                static_cast<unsigned long long>(o.warmupInstrs),
                static_cast<unsigned long long>(o.measureInstrs));
    std::printf("==============================================================\n");
}

/** Artifact destinations parsed from `--json PATH` / `--csv PATH`. */
struct SinkArgs
{
    std::string jsonPath;
    std::string csvPath;
};

/**
 * Extracts `--json PATH` and `--csv PATH` from argv; other arguments are
 * left for the binary's own positional parsing via @p positional.
 */
inline SinkArgs
parseSinkArgs(int argc, char** argv,
              std::vector<std::string>* positional = nullptr)
{
    SinkArgs s;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            s.jsonPath = argv[++i];
        } else if (a == "--csv" && i + 1 < argc) {
            s.csvPath = argv[++i];
        } else if (positional != nullptr) {
            positional->push_back(std::move(a));
        }
    }
    return s;
}

/** Writes @p reports to the sinks requested in @p args (no-op if none). */
inline void
writeArtifacts(const SinkArgs& args, const std::vector<Report>& reports)
{
    ReportSink sink;
    if (!args.jsonPath.empty()) {
        sink.openJson(args.jsonPath);
    }
    if (!args.csvPath.empty()) {
        sink.openCsv(args.csvPath);
    }
    if (sink.active()) {
        sink.writeAll(reports);
        sink.close();
    }
}

} // namespace udp::bench

#endif // UDP_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every binary regenerates one table/figure of the paper and prints the
 * same rows/series. Data points run through the parallel sweep runner
 * (sim/sweep.h): instruction counts scale via UDP_BENCH_WARMUP /
 * UDP_BENCH_INSTR, worker count via UDP_JOBS, and `--json out.jsonl` /
 * `--csv out.csv` write machine-readable artifacts (stats/sink.h). See
 * docs/EXPERIMENT_GUIDE.md for the full workflow.
 */

#ifndef UDP_BENCH_BENCH_UTIL_H
#define UDP_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <chrono>

#include "obs/eventlog.h"
#include "sim/faultinject.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "sim/sweepd.h"
#include "sim/workqueue.h"
#include "stats/sink.h"
#include "stats/table.h"
#include "stats/tracefile.h"

namespace udp::bench {

/** Default measurement window (kept modest; scale via env for fidelity). */
inline RunOptions
defaultOptions()
{
    RunOptions o;
    o.warmupInstrs = 250'000;
    o.measureInstrs = 400'000;
    return envRunOptions(o);
}

/** FTQ depths used by the Section III sweeps. */
inline const std::vector<unsigned>&
sweepDepths()
{
    static const std::vector<unsigned> d = {8, 16, 24, 32, 48, 64, 96, 128};
    return d;
}

/** Coarser sweep for finding each app's optimal (OPT oracle) depth. */
inline const std::vector<unsigned>&
optSearchDepths()
{
    static const std::vector<unsigned> d = {8, 16, 24, 32, 48, 64, 96, 128};
    return d;
}

/** Directory bench binaries write failure diagnostic dumps into. */
inline const char* kFailureDumpDir = "failure_dumps";

/**
 * Artifact destinations and execution-mode flags shared by every bench:
 *   --json PATH / --csv PATH    machine-readable artifacts (stats/sink.h)
 *   --isolate                   run each point in a forked child process
 *   --mem-mb N / --cpu-sec N /  per-child rlimits and wall-clock deadline
 *   --wall-sec X                (isolate only; mem defaults to 4096 MB)
 *   --manifest PATH             checkpoint manifest (default: derived from
 *                               the CSV/JSON path)
 *   --resume                    skip points the manifest records as done
 *   --interval-stats PATH       telemetry interval rows as CSV (a sibling
 *                               ".jsonl" with interval + summary rows is
 *                               written next to it; docs/TELEMETRY.md)
 *   --trace-out PATH            Chrome-trace JSON of every job (open in
 *                               chrome://tracing or ui.perfetto.dev)
 *   --telemetry-interval N      interval-row period in cycles
 */
struct SinkArgs
{
    std::string jsonPath;
    std::string csvPath;
    bool isolate = false;
    bool resume = false;
    std::string manifestPath;
    std::uint64_t memLimitMb = 0;  ///< 0 = default (4096 when isolating)
    std::uint64_t cpuLimitSec = 0; ///< 0 = no RLIMIT_CPU
    double wallLimitSec = 0.0;     ///< 0 = no wall deadline

    std::string intervalPath;      ///< --interval-stats CSV destination
    std::string tracePath;         ///< --trace-out Chrome-trace destination
    std::uint64_t telemetryInterval = 0; ///< 0 = TelemetryConfig default

    /** --profile: enable the cycle-loop self-profiler on every job and
     *  emit per-component host-time attribution (stdout summary + a
     *  "<artifact-stem>.profile.jsonl" sidecar of profile_summary rows;
     *  Report/CSV artifacts stay byte-identical). */
    bool profile = false;

    // --- distributed execution (docs/ROBUSTNESS.md §10) ----------------
    /** --coordinator ENDPOINT: serve this bench's batch as a distributed
     *  sweep ("tcp:HOST:PORT", port 0 = ephemeral, or a queue directory)
     *  instead of running it in-process. Artifacts are written by this
     *  process exactly as in local mode. */
    std::string coordinator;
    /** --worker-of ENDPOINT: run as a worker for a coordinator started
     *  from the SAME bench binary with the SAME arguments/environment
     *  (both sides must expand an identical job list). The process
     *  exits when the sweep drains. */
    std::string workerOf;

    /** Telemetry is on whenever any telemetry artifact was requested. */
    bool telemetryEnabled() const
    {
        return !intervalPath.empty() || !tracePath.empty();
    }
};

/**
 * Extracts the shared flags from argv; other arguments are left for the
 * binary's own positional parsing via @p positional.
 */
inline SinkArgs
parseSinkArgs(int argc, char** argv,
              std::vector<std::string>* positional = nullptr)
{
    SinkArgs s;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            s.jsonPath = argv[++i];
        } else if (a == "--csv" && i + 1 < argc) {
            s.csvPath = argv[++i];
        } else if (a == "--isolate") {
            s.isolate = true;
        } else if (a == "--resume") {
            s.resume = true;
        } else if (a == "--manifest" && i + 1 < argc) {
            s.manifestPath = argv[++i];
        } else if (a == "--mem-mb" && i + 1 < argc) {
            s.memLimitMb = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--cpu-sec" && i + 1 < argc) {
            s.cpuLimitSec = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--wall-sec" && i + 1 < argc) {
            s.wallLimitSec = std::strtod(argv[++i], nullptr);
        } else if (a == "--interval-stats" && i + 1 < argc) {
            s.intervalPath = argv[++i];
        } else if (a == "--trace-out" && i + 1 < argc) {
            s.tracePath = argv[++i];
        } else if (a == "--telemetry-interval" && i + 1 < argc) {
            s.telemetryInterval = std::strtoull(argv[++i], nullptr, 10);
        } else if (a == "--profile") {
            s.profile = true;
        } else if (a == "--coordinator" && i + 1 < argc) {
            s.coordinator = argv[++i];
        } else if (a == "--worker-of" && i + 1 < argc) {
            s.workerOf = argv[++i];
        } else if (positional != nullptr) {
            positional->push_back(std::move(a));
        }
    }
    return s;
}

/**
 * The checkpoint manifest path for @p args: explicit --manifest wins,
 * else it is derived from the CSV (or JSON) artifact path by replacing
 * the extension with ".manifest.jsonl". "" when no artifact is requested
 * (there is nothing durable to resume into).
 */
inline std::string
defaultManifestPath(const SinkArgs& args)
{
    if (!args.manifestPath.empty()) {
        return args.manifestPath;
    }
    std::string base = !args.csvPath.empty() ? args.csvPath : args.jsonPath;
    if (base.empty()) {
        return "";
    }
    for (const char* ext : {".csv", ".jsonl", ".json"}) {
        std::string e = ext;
        if (base.size() > e.size() &&
            base.compare(base.size() - e.size(), e.size(), e) == 0) {
            base.erase(base.size() - e.size());
            break;
        }
    }
    return base + ".manifest.jsonl";
}

/**
 * Test hook: UDP_BENCH_FAULT="kind[:index[:cycle]]" injects the named
 * fault (sim/faultinject.h) into one job of the batch — job @c index
 * (default 0) at trigger cycle @c cycle (default 10000). Lets CI and the
 * docs demonstrate crash containment on a real bench without patching it.
 */
inline void
applyEnvFault(std::vector<SweepJob>* jobs)
{
    const char* spec = std::getenv("UDP_BENCH_FAULT");
    if (spec == nullptr || *spec == '\0' || jobs->empty()) {
        return;
    }
    std::string kind = spec;
    std::size_t index = 0;
    Cycle cycle = 10'000;
    std::size_t colon = kind.find(':');
    if (colon != std::string::npos) {
        std::string rest = kind.substr(colon + 1);
        kind.erase(colon);
        std::size_t colon2 = rest.find(':');
        if (colon2 != std::string::npos) {
            cycle = std::strtoull(rest.c_str() + colon2 + 1, nullptr, 10);
            rest.erase(colon2);
        }
        index = std::strtoull(rest.c_str(), nullptr, 10);
    }
    FaultKind fk = FaultKind::None;
    if (!faultKindFromName(kind, &fk)) {
        std::fprintf(stderr, "[bench] UDP_BENCH_FAULT: unknown kind \"%s\"\n",
                     kind.c_str());
        return;
    }
    if (index >= jobs->size()) {
        index = jobs->size() - 1;
    }
    SweepJob& job = (*jobs)[index];
    job.config.fault.kind = fk;
    job.config.fault.triggerCycle = cycle;
    std::fprintf(stderr,
                 "[bench] UDP_BENCH_FAULT: injecting %s into job %zu "
                 "(\"%s\") at cycle %llu\n",
                 faultKindName(fk), index, job.label.c_str(),
                 static_cast<unsigned long long>(cycle));
}

/**
 * Enables telemetry (stats/telemetry.h) on every job when @p args
 * requested a telemetry artifact. Process-isolated sweeps only ship the
 * serialized Report over the result pipe, so snapshots cannot cross the
 * fork boundary: --isolate wins and telemetry is skipped with a warning.
 */
inline void
applyTelemetry(std::vector<SweepJob>* jobs, const SinkArgs& args)
{
    if (!args.telemetryEnabled()) {
        return;
    }
    if (args.isolate) {
        std::fprintf(stderr,
                     "[bench] --interval-stats/--trace-out ignored with "
                     "--isolate: telemetry snapshots do not cross the "
                     "process boundary\n");
        return;
    }
    for (SweepJob& job : *jobs) {
        job.config.telemetry.enabled = true;
        job.config.telemetry.trace = !args.tracePath.empty();
        if (args.telemetryInterval != 0) {
            job.config.telemetry.intervalCycles = args.telemetryInterval;
        }
    }
}

/**
 * Enables the cycle-loop self-profiler (obs/profiler.h) on every job when
 * --profile was passed. Same fork-boundary caveat as telemetry: snapshots
 * cannot cross the --isolate result pipe, so isolation wins.
 */
inline void
applyProfile(std::vector<SweepJob>* jobs, const SinkArgs& args)
{
    if (!args.profile) {
        return;
    }
    if (args.isolate) {
        std::fprintf(stderr,
                     "[bench] --profile ignored with --isolate: profiler "
                     "snapshots do not cross the process boundary\n");
        return;
    }
    for (SweepJob& job : *jobs) {
        job.config.profile.enabled = true;
    }
}

/**
 * Fault-tolerant sweep used by every bench: a crashing or hanging point
 * never aborts the figure. Failed points get diagnostic dumps under
 * kFailureDumpDir and surface through writeArtifactsChecked()'s exit
 * code and failure rows. With @p args, the shared execution-mode flags
 * apply: --isolate forks each point (default 4096 MB RLIMIT_AS),
 * --resume replays completed points from the checkpoint manifest, and
 * SIGINT/SIGTERM drain in-flight points before exiting.
 */
/** Shard-manifest directory paired with the checkpoint manifest. */
inline std::string
shardDirOf(const SinkArgs& args)
{
    std::string m = defaultManifestPath(args);
    return m.empty() ? std::string() : m + ".shards";
}

/**
 * --worker-of: the worker half of a distributed bench run. Claims jobs
 * from the coordinator, executes them through the same per-job path as
 * the in-process engine, and exits the process when the sweep drains
 * (0), the queue is lost after flushing locally (3), or the endpoint
 * cannot be opened (2). Never returns.
 */
[[noreturn]] inline void
runBenchWorker(const std::vector<SweepJob>& jobs, const SinkArgs& args)
{
    std::string err;
    std::unique_ptr<WorkQueue> q = openWorkQueue(args.workerOf, 5.0, &err);
    if (q == nullptr) {
        std::fprintf(stderr, "[bench] --worker-of %s: %s\n",
                     args.workerOf.c_str(), err.c_str());
        std::exit(2);
    }
    WorkerOptions wo;
    wo.name = "w" + std::to_string(
                        std::chrono::steady_clock::now()
                            .time_since_epoch()
                            .count() %
                        1'000'000);
    if (const char* n = std::getenv("UDP_WORKER_NAME")) {
        wo.name = n;
    }
    wo.shardDir = shardDirOf(args);
    wo.exec.dumpDir = kFailureDumpDir;
    wo.exec.isolate = args.isolate;
    if (args.isolate) {
        wo.exec.memLimitBytes =
            (args.memLimitMb == 0 ? 4096 : args.memLimitMb) << 20;
        wo.exec.cpuLimitSec = args.cpuLimitSec;
        wo.exec.wallLimitSec = args.wallLimitSec;
    }
    if (const char* d = std::getenv("UDP_WORKER_DELAY_MS")) {
        wo.jobDelayMs =
            static_cast<unsigned>(std::strtoul(d, nullptr, 10));
    }
    WorkerSummary s = runSweepWorker(*q, jobs, wo);
    if (s.executed != 0 || s.flushedLocal != 0) {
        obs::Event(obs::LogLevel::Info, wo.name, "worker_summary")
            .u64("executed", s.executed)
            .u64("recorded", s.completed)
            .u64("duplicates", s.duplicates)
            .u64("flushed_local", s.flushedLocal)
            .emit();
    }
    std::exit(s.queueLost ? 3 : 0);
}

/** --coordinator: serve the batch to workers; returns ordered results. */
inline std::vector<JobResult>
runBenchCoordinated(std::vector<SweepJob> jobs, const SinkArgs& args)
{
    CoordinatorOptions co;
    if (const char* n = std::getenv("UDP_SWEEP_NAME")) {
        co.name = n;
    } else {
        co.name = "bench";
    }
    co.endpoint = args.coordinator;
    co.manifestPath = defaultManifestPath(args);
    co.resume = args.resume && !co.manifestPath.empty();
    co.shardDir = shardDirOf(args);
    if (const char* s = std::getenv("UDP_LEASE_SEC")) {
        co.policy.leaseTtlSec = std::strtod(s, nullptr);
    }
    if (const char* s = std::getenv("UDP_MAX_ATTEMPTS")) {
        co.policy.maxAttempts =
            static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    }
    SweepCoordinator coord(std::move(jobs), std::move(co));
    std::string err;
    if (!coord.start(&err)) {
        std::fprintf(stderr, "[bench] --coordinator %s: %s\n",
                     args.coordinator.c_str(), err.c_str());
        std::exit(2);
    }
    obs::Event(obs::LogLevel::Info, "bench", "coordinating")
        .u64("jobs", coord.totalJobs())
        .str("endpoint", coord.endpoint())
        .str("hint", "re-run this binary with --worker-of " +
                         coord.endpoint())
        .emit();
    return coord.run();
}

inline std::vector<JobResult>
runBenchSweep(std::vector<SweepJob> jobs, const SinkArgs& args)
{
    applyEnvFault(&jobs);
    applyTelemetry(&jobs, args);
    applyProfile(&jobs, args);
    if (!args.workerOf.empty()) {
        runBenchWorker(jobs, args); // exits the process
    }
    if (!args.coordinator.empty()) {
        return runBenchCoordinated(std::move(jobs), args);
    }
    SweepOptions o;
    o.dumpDir = kFailureDumpDir;
    o.isolate = args.isolate;
    if (args.isolate) {
        o.memLimitBytes =
            (args.memLimitMb == 0 ? 4096 : args.memLimitMb) << 20;
        o.cpuLimitSec = args.cpuLimitSec;
        o.wallLimitSec = args.wallLimitSec;
    }
    o.manifestPath = defaultManifestPath(args);
    o.resume = args.resume && !o.manifestPath.empty();
    if (args.resume && o.manifestPath.empty()) {
        std::fprintf(stderr, "[bench] --resume ignored: no manifest path "
                             "(need --csv, --json or --manifest)\n");
    }
    o.handleSignals = true;
    return runSweepChecked(jobs, o);
}

/** Legacy entry point: default execution mode, no artifacts. */
inline std::vector<JobResult>
runBenchSweep(const std::vector<SweepJob>& jobs)
{
    return runBenchSweep(jobs, SinkArgs{});
}

/** Converts a failed job to its machine-readable sink failure row. */
inline FailureRow
failureRowOf(const SweepJob& job, const JobResult& jr)
{
    FailureRow f;
    f.workload = job.profile.name;
    f.config = job.label;
    f.errorKind = jr.error.kind;
    f.component = jr.error.component;
    f.message = jr.error.message;
    f.dumpPath = jr.error.dumpPath;
    f.cycle = jr.error.cycle;
    f.attempts = jr.attempts;
    f.signal = jr.error.signal;
    f.stderrTail = jr.error.stderrTail;
    f.maxRssKb = jr.error.maxRssKb;
    f.userSec = jr.error.userSec;
    f.sysSec = jr.error.sysSec;
    return f;
}

/**
 * Positional Report view of @p results: a failed job contributes a
 * zero-valued placeholder named after its job, so table-building code
 * keeps its job-order indexing while the failure is reported separately.
 */
inline std::vector<Report>
reportsOf(const std::vector<SweepJob>& jobs,
          const std::vector<JobResult>& results)
{
    std::vector<Report> out(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].ok) {
            out[i] = results[i].report;
        } else {
            out[i].workload = jobs[i].profile.name;
            out[i].configName = jobs[i].label;
        }
    }
    return out;
}

/**
 * Finds the best fixed FTQ depth (OPT oracle) for each of @p profiles,
 * sweeping all profiles x depths as one parallel batch. Ties keep the
 * shallower depth; depth 32 with a zero report is the fallback when every
 * point of a profile failed. Failed points are skipped in the argmax and
 * appended to @p failures when given.
 */
inline std::vector<std::pair<unsigned, Report>>
findOptimalFtqBatch(const std::vector<Profile>& profiles,
                    const RunOptions& opts,
                    std::vector<FailureRow>* failures = nullptr,
                    const SinkArgs& args = SinkArgs{})
{
    std::vector<SweepJob> jobs;
    jobs.reserve(profiles.size() * optSearchDepths().size());
    for (const Profile& p : profiles) {
        for (unsigned d : optSearchDepths()) {
            jobs.push_back({p, presets::fdipWithFtq(d), opts,
                            "ftq" + std::to_string(d)});
        }
    }
    std::vector<JobResult> results = runBenchSweep(jobs, args);

    std::vector<std::pair<unsigned, Report>> best;
    best.reserve(profiles.size());
    std::size_t i = 0;
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        unsigned best_depth = 32;
        Report best_report;
        bool first = true;
        for (unsigned d : optSearchDepths()) {
            const JobResult& jr = results[i];
            if (!jr.ok) {
                // Skipped points (graceful shutdown) are not failures.
                if (failures != nullptr && !jr.skipped) {
                    failures->push_back(failureRowOf(jobs[i], jr));
                }
                ++i;
                continue;
            }
            const Report& r = jr.report;
            ++i;
            if (first || r.ipc > best_report.ipc) {
                best_report = r;
                best_depth = d;
                first = false;
            }
        }
        best.emplace_back(best_depth, std::move(best_report));
    }
    return best;
}

/** Finds the best fixed FTQ depth (OPT oracle) for @p profile. */
inline std::pair<unsigned, Report>
findOptimalFtq(const Profile& profile, const RunOptions& opts)
{
    return findOptimalFtqBatch({profile}, opts).front();
}

/** Prints the standard bench banner. */
inline void
banner(const char* figure, const char* what)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure, what);
    RunOptions o = defaultOptions();
    std::printf("warmup=%llu measured=%llu instructions per point "
                "(override: UDP_BENCH_WARMUP / UDP_BENCH_INSTR)\n",
                static_cast<unsigned long long>(o.warmupInstrs),
                static_cast<unsigned long long>(o.measureInstrs));
    std::printf("==============================================================\n");
}

/** Writes @p reports to the sinks requested in @p args (no-op if none). */
inline void
writeArtifacts(const SinkArgs& args, const std::vector<Report>& reports)
{
    ReportSink sink;
    if (!args.jsonPath.empty()) {
        sink.openJson(args.jsonPath);
    }
    if (!args.csvPath.empty()) {
        sink.openCsv(args.csvPath);
    }
    if (sink.active()) {
        sink.writeAll(reports);
        sink.close();
    }
}

/**
 * Writes @p reports plus @p failures to the requested sinks, prints the
 * failure summary, and returns the process exit code: 0 on a clean
 * sweep, 1 when any point failed (artifacts are still complete — every
 * successful Report and every failure row is on disk).
 */
inline int
finishArtifacts(const SinkArgs& args, const std::vector<Report>& reports,
                const std::vector<FailureRow>& failures)
{
    ReportSink sink;
    if (!args.jsonPath.empty()) {
        sink.openJson(args.jsonPath);
    }
    if (!args.csvPath.empty()) {
        sink.openCsv(args.csvPath);
    }
    if (sink.active()) {
        sink.writeAll(reports);
        for (const FailureRow& f : failures) {
            sink.writeFailure(f);
        }
        sink.close();
    }
    if (!failures.empty()) {
        std::fprintf(stderr,
                     "[bench] %zu sweep point(s) FAILED; partial artifacts "
                     "written, dumps under %s/\n",
                     failures.size(), kFailureDumpDir);
        return 1;
    }
    return 0;
}

/** "<stem>.jsonl" sibling of the --interval-stats CSV path. */
inline std::string
telemetryJsonlPath(const std::string& csvPath)
{
    std::string base = csvPath;
    std::string e = ".csv";
    if (base.size() > e.size() &&
        base.compare(base.size() - e.size(), e.size(), e) == 0) {
        base.erase(base.size() - e.size());
    }
    return base + ".jsonl";
}

/**
 * Writes the telemetry artifacts requested in @p args from the snapshots
 * carried by successful results: interval CSV at --interval-stats (plus a
 * sibling ".jsonl" with interval AND per-run summary rows), and one
 * Chrome-trace JSON at --trace-out covering every traced job. No-op when
 * no telemetry artifact was requested or no snapshot exists (e.g. the
 * sweep ran with --isolate).
 */
inline void
writeTelemetryArtifacts(const SinkArgs& args,
                        const std::vector<SweepJob>& jobs,
                        const std::vector<JobResult>& results)
{
    if (!args.telemetryEnabled()) {
        return;
    }
    TelemetrySink sink;
    if (!args.intervalPath.empty()) {
        sink.openCsv(args.intervalPath);
        sink.openJson(telemetryJsonlPath(args.intervalPath));
    }
    std::vector<TraceJob> traceJobs;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok) {
            continue;
        }
        const auto& snap = results[i].report.telemetry;
        const auto& prof = results[i].report.profile;
        if (!snap && !prof) {
            continue;
        }
        if (snap && sink.active()) {
            sink.writeRun(jobs[i].profile.name, jobs[i].label, *snap);
        }
        if (!args.tracePath.empty()) {
            traceJobs.push_back(
                {jobs[i].profile.name + "/" + jobs[i].label, snap, prof});
        }
    }
    sink.close();
    if (!args.tracePath.empty() && !traceJobs.empty()) {
        if (!writeChromeTrace(args.tracePath, traceJobs)) {
            std::fprintf(stderr, "[bench] failed to write trace %s\n",
                         args.tracePath.c_str());
        } else {
            std::printf("Chrome trace written to %s (load in "
                        "chrome://tracing or ui.perfetto.dev)\n",
                        args.tracePath.c_str());
        }
    }
}

/**
 * "<artifact-stem>.profile.jsonl" sidecar path for --profile summaries:
 * derived from --json (preferred) or --csv. Profile rows never go into
 * the report artifact itself, so figure outputs stay byte-identical
 * whether or not the profiler ran.
 */
inline std::string
profileJsonlPath(const SinkArgs& args)
{
    std::string base =
        !args.jsonPath.empty() ? args.jsonPath : args.csvPath;
    if (base.empty()) {
        return std::string();
    }
    for (const char* e : {".jsonl", ".json", ".csv"}) {
        std::size_t n = std::strlen(e);
        if (base.size() > n &&
            base.compare(base.size() - n, n, e) == 0) {
            base.erase(base.size() - n);
            break;
        }
    }
    return base + ".profile.jsonl";
}

/**
 * --profile tail: prints a per-job phase-attribution summary and, when a
 * report artifact path is known, writes one profile_summary row per
 * successful job to the "<artifact-stem>.profile.jsonl" sidecar.
 */
inline void
writeProfileArtifacts(const SinkArgs& args,
                      const std::vector<SweepJob>& jobs,
                      const std::vector<JobResult>& results)
{
    if (!args.profile) {
        return;
    }
    std::string path = profileJsonlPath(args);
    std::FILE* f =
        path.empty() ? nullptr : std::fopen(path.c_str(), "w");
    bool wroteAny = false;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok || !results[i].report.profile) {
            continue;
        }
        const obs::ProfileSnapshot& p = *results[i].report.profile;
        std::printf("[profile] %s/%s: %.3fs host for %llu cycles (",
                    jobs[i].profile.name.c_str(), jobs[i].label.c_str(),
                    p.totalSec,
                    static_cast<unsigned long long>(p.cycles));
        for (std::size_t ph = 0; ph < obs::kNumProfPhases; ++ph) {
            std::printf("%s%s %.1f%%", ph == 0 ? "" : ", ",
                        obs::profPhaseName(
                            static_cast<obs::ProfPhase>(ph)),
                        p.phaseFrac(static_cast<obs::ProfPhase>(ph)) *
                            100.0);
        }
        std::printf(")\n");
        if (f != nullptr) {
            std::string row = profileSummaryToJsonLine(
                jobs[i].profile.name, jobs[i].label, p);
            row += '\n';
            wroteAny =
                std::fwrite(row.data(), 1, row.size(), f) == row.size() ||
                wroteAny;
        }
    }
    if (f != nullptr) {
        std::fclose(f);
        if (wroteAny) {
            std::printf("Profile summary rows written to %s\n",
                        path.c_str());
        } else {
            std::remove(path.c_str());
        }
    }
}

/**
 * Sink + exit-code tail for benches built on runBenchSweep(): writes each
 * successful job's Report and each failure's row, in job order. Jobs
 * skipped by a graceful shutdown produce neither — the sweep is
 * incomplete, the exit code is 130, and re-running with --resume picks
 * up exactly where it stopped.
 */
inline int
writeArtifactsChecked(const SinkArgs& args, const std::vector<SweepJob>& jobs,
                      const std::vector<JobResult>& results)
{
    std::vector<Report> ok;
    std::vector<FailureRow> failures;
    std::size_t skipped = 0;
    ok.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].ok) {
            ok.push_back(results[i].report);
        } else if (results[i].skipped) {
            ++skipped;
        } else {
            failures.push_back(failureRowOf(jobs[i], results[i]));
        }
    }
    int rc = finishArtifacts(args, ok, failures);
    writeTelemetryArtifacts(args, jobs, results);
    writeProfileArtifacts(args, jobs, results);
    if (skipped != 0) {
        std::fprintf(stderr,
                     "[bench] interrupted: %zu point(s) skipped; re-run "
                     "with --resume to finish the sweep\n",
                     skipped);
        return 130;
    }
    return rc;
}

} // namespace udp::bench

#endif // UDP_BENCH_BENCH_UTIL_H

/**
 * @file
 * Figure 16: UDP's IPC uplift across BTB sizes (1K..16K entries). The
 * paper's finding: UDP always helps, and helps more when the BTB is
 * smaller (more BTB-miss wrong paths to filter).
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 16", "UDP speedup (%) over same-BTB FDIP, per BTB size");
    RunOptions o = defaultOptions();

    const std::vector<unsigned> btb_sizes = {1024, 2048, 4096, 8192, 16384};

    std::vector<std::string> header = {"app"};
    for (unsigned b : btb_sizes) {
        header.push_back("btb" + std::to_string(b / 1024) + "k");
    }

    Table t(header);
    for (const Profile& p : datacenterProfiles()) {
        t.beginRow();
        t.cell(p.name);
        for (unsigned b : btb_sizes) {
            SimConfig base = presets::fdipBaseline();
            base.bpu.btb.numEntries = b;
            SimConfig with_udp = presets::udp8k();
            with_udp.bpu.btb.numEntries = b;
            Report rb = runSim(p, base, o, "fdip");
            Report ru = runSim(p, with_udp, o, "udp");
            t.cell((ru.ipc / rb.ipc - 1.0) * 100.0, 1);
        }
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Figure 12: icache MPKI of the UFTQ variants vs the FTQ=32 baseline and
 * the OPT oracle.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 12", "icache MPKI: baseline vs UFTQ variants vs OPT");
    RunOptions o = defaultOptions();

    Table t({"app", "baseline", "uftq_aur", "uftq_atr", "uftq_atr_aur",
             "opt"});
    for (const Profile& p : datacenterProfiles()) {
        Report base = runSim(p, presets::fdipBaseline(), o, "fdip32");
        Report aur = runSim(p, presets::uftq(UftqMode::Aur), o, "aur");
        Report atr = runSim(p, presets::uftq(UftqMode::Atr), o, "atr");
        Report combo = runSim(p, presets::uftq(UftqMode::AtrAur), o, "both");
        auto [depth, opt] = findOptimalFtq(p, o);
        (void)depth;

        t.beginRow();
        t.cell(p.name);
        t.cell(base.icacheMpki, 2);
        t.cell(aur.icacheMpki, 2);
        t.cell(atr.icacheMpki, 2);
        t.cell(combo.icacheMpki, 2);
        t.cell(opt.icacheMpki, 2);
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

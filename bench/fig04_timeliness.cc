/**
 * @file
 * Figure 4: prefetch timeliness — the ratio of demand accesses that found
 * a prefetched line resident in the icache vs merging with its in-flight
 * fill (fill buffer / MSHR) — across FTQ depths.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 4", "timeliness ratio icache/(icache+MSHR) vs FTQ depth");
    RunOptions o = defaultOptions();

    std::vector<std::string> header = {"app"};
    for (unsigned d : sweepDepths()) {
        header.push_back("ftq" + std::to_string(d));
    }

    Table t(header);
    for (const Profile& p : datacenterProfiles()) {
        t.beginRow();
        t.cell(p.name);
        for (unsigned d : sweepDepths()) {
            Report r = runSim(p, presets::fdipWithFtq(d), o, "");
            t.cell(r.timeliness, 3);
        }
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Figure 8: average FTQ occupancy across FTQ sizes. A slope-1 line means
 * the frontend can run far ahead (few resteers); frequent recoveries act
 * as natural throttling and flatten the curve.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 8", "average FTQ occupancy vs FTQ size");
    RunOptions o = defaultOptions();

    std::vector<std::string> header = {"app"};
    for (unsigned d : sweepDepths()) {
        header.push_back("ftq" + std::to_string(d));
    }

    Table t(header);
    for (const Profile& p : datacenterProfiles()) {
        t.beginRow();
        t.cell(p.name);
        for (unsigned d : sweepDepths()) {
            Report r = runSim(p, presets::fdipWithFtq(d), o, "");
            t.cell(r.avgFtqOccupancy, 1);
        }
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Figure 17: UDP's IPC uplift on top of different fixed FTQ sizes. The
 * paper's finding: UDP composes with any FTQ depth except for
 * verilator-like workloads at very deep FTQs (aggressive useful off-path
 * prefetching fills and flushes the bloom filters).
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 17", "UDP speedup (%) over same-FTQ FDIP, per FTQ size");
    RunOptions o = defaultOptions();

    const std::vector<unsigned> ftq_sizes = {16, 32, 48, 64};

    std::vector<std::string> header = {"app"};
    for (unsigned f : ftq_sizes) {
        header.push_back("ftq" + std::to_string(f));
    }

    Table t(header);
    for (const Profile& p : datacenterProfiles()) {
        t.beginRow();
        t.cell(p.name);
        for (unsigned f : ftq_sizes) {
            SimConfig base = presets::fdipWithFtq(f);
            SimConfig with_udp = presets::udp8k();
            with_udp.ftqCapacity = f;
            if (f > with_udp.ftqPhysical) {
                with_udp.ftqPhysical = f;
            }
            Report rb = runSim(p, base, o, "fdip");
            Report ru = runSim(p, with_udp, o, "udp");
            t.cell((ru.ipc / rb.ipc - 1.0) * 100.0, 1);
        }
    }
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

/**
 * @file
 * Figure 13: IPC speedup over the FTQ=32 FDIP baseline for UDP (8KB bloom
 * filters), the infinite-storage useful-set upper bound, and the two
 * ISO-storage baselines: a 40KiB icache and EIP-8KB.
 *
 * Usage: fig13_udp [--json out.jsonl] [--csv out.csv]
 */

#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 13", "UDP speedup (%) over FDIP baseline vs ISO-storage "
                        "baselines");
    RunOptions o = defaultOptions();
    SinkArgs sinks = parseSinkArgs(argc, argv);

    // Five configurations per app, all points independent: one batch.
    std::vector<SweepJob> jobs;
    for (const Profile& p : datacenterProfiles()) {
        jobs.push_back({p, presets::fdipBaseline(), o, "fdip32"});
        jobs.push_back({p, presets::udp8k(), o, "udp8k"});
        jobs.push_back({p, presets::udpInfinite(), o, "inf"});
        jobs.push_back({p, presets::bigIcache40k(), o, "ic40k"});
        jobs.push_back({p, presets::eip8k(), o, "eip"});
    }
    std::vector<JobResult> results = runBenchSweep(jobs, sinks);
    std::vector<Report> reports = reportsOf(jobs, results);

    Table t({"app", "udp_8k", "infinite", "icache_40k", "eip_8k"});
    std::vector<double> s_udp;
    std::vector<double> s_inf;
    std::vector<double> s_ic;
    std::vector<double> s_eip;
    std::size_t i = 0;
    for (const Profile& p : datacenterProfiles()) {
        const Report& base = reports[i++];
        const Report& u = reports[i++];
        const Report& inf = reports[i++];
        const Report& ic = reports[i++];
        const Report& eip = reports[i++];

        s_udp.push_back(u.ipc / base.ipc);
        s_inf.push_back(inf.ipc / base.ipc);
        s_ic.push_back(ic.ipc / base.ipc);
        s_eip.push_back(eip.ipc / base.ipc);

        t.beginRow();
        t.cell(p.name);
        t.cell((u.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell((inf.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell((ic.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell((eip.ipc / base.ipc - 1.0) * 100.0, 1);
    }
    t.beginRow();
    t.cell(std::string("geomean"));
    t.cell((geomean(s_udp) - 1.0) * 100.0, 1);
    t.cell((geomean(s_inf) - 1.0) * 100.0, 1);
    t.cell((geomean(s_ic) - 1.0) * 100.0, 1);
    t.cell((geomean(s_eip) - 1.0) * 100.0, 1);
    std::printf("%s", t.toAscii().c_str());
    return writeArtifactsChecked(sinks, jobs, results);
}

/**
 * @file
 * Figure 13: IPC speedup over the FTQ=32 FDIP baseline for UDP (8KB bloom
 * filters), the infinite-storage useful-set upper bound, and the two
 * ISO-storage baselines: a 40KiB icache and EIP-8KB.
 */

#include "bench_util.h"

int
main()
{
    using namespace udp;
    using namespace udp::bench;

    banner("Figure 13", "UDP speedup (%) over FDIP baseline vs ISO-storage "
                        "baselines");
    RunOptions o = defaultOptions();

    Table t({"app", "udp_8k", "infinite", "icache_40k", "eip_8k"});
    std::vector<double> s_udp;
    std::vector<double> s_inf;
    std::vector<double> s_ic;
    std::vector<double> s_eip;
    for (const Profile& p : datacenterProfiles()) {
        Report base = runSim(p, presets::fdipBaseline(), o, "fdip32");
        Report u = runSim(p, presets::udp8k(), o, "udp8k");
        Report inf = runSim(p, presets::udpInfinite(), o, "inf");
        Report ic = runSim(p, presets::bigIcache40k(), o, "ic40k");
        Report eip = runSim(p, presets::eip8k(), o, "eip");

        s_udp.push_back(u.ipc / base.ipc);
        s_inf.push_back(inf.ipc / base.ipc);
        s_ic.push_back(ic.ipc / base.ipc);
        s_eip.push_back(eip.ipc / base.ipc);

        t.beginRow();
        t.cell(p.name);
        t.cell((u.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell((inf.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell((ic.ipc / base.ipc - 1.0) * 100.0, 1);
        t.cell((eip.ipc / base.ipc - 1.0) * 100.0, 1);
    }
    t.beginRow();
    t.cell(std::string("geomean"));
    t.cell((geomean(s_udp) - 1.0) * 100.0, 1);
    t.cell((geomean(s_inf) - 1.0) * 100.0, 1);
    t.cell((geomean(s_ic) - 1.0) * 100.0, 1);
    t.cell((geomean(s_eip) - 1.0) * 100.0, 1);
    std::printf("%s", t.toAscii().c_str());
    return 0;
}

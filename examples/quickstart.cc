/**
 * @file
 * Quickstart: build a workload, run the FDIP baseline, print a report.
 */

#include <cstdio>

#include "sim/runner.h"

int
main()
{
    using namespace udp;
    const Profile& prof = profileByName("mysql");
    RunOptions opts;
    opts.warmupInstrs = 200'000;
    opts.measureInstrs = 300'000;
    Report r = runSim(prof, presets::fdipBaseline(), opts, "fdip-baseline");
    std::printf("%s\n", r.toStatSet().toString().c_str());
    return 0;
}

/**
 * @file
 * Example: define a *custom* synthetic workload profile and study how its
 * frontend behaviour responds to FTQ depth — the exact methodology of the
 * paper's Section III analysis, applied to your own application model.
 *
 * Shows the full workload-authoring surface of the public API: footprint,
 * branch predictability mix, call-graph shape, hotness skew, and the
 * data-side behaviour.
 */

#include <cstdio>

#include "sim/runner.h"
#include "stats/table.h"

int
main()
{
    using namespace udp;

    // An "interpreter-like" application: medium footprint, a hot dispatch
    // loop over unpredictable indirect targets, small basic blocks.
    Profile prof;
    prof.name = "interp";
    prof.seed = 2024;
    prof.codeFootprintKB = 768;
    prof.runLenMin = 3;
    prof.runLenMax = 8;
    prof.diamondFrac = 0.5;
    prof.switchFrac = 0.15;          // lots of indirect dispatch
    prof.switchFanoutMin = 8;
    prof.switchFanoutMax = 24;
    prof.indirectNoise = 0.2;        // hard-to-predict targets
    prof.indirectLoadDepFrac = 0.6;  // dispatch on loaded opcode
    prof.numHotFuncs = 10;
    prof.hotWeight = 0.6;
    prof.noise = 0.025;
    prof.dataFootprintKB = 32 * 1024;

    RunOptions opts;
    opts.warmupInstrs = 250'000;
    opts.measureInstrs = 400'000;

    Table t({"ftq_depth", "ipc", "mpki", "onpath", "useful", "timely",
             "avg_occupancy"});
    for (unsigned depth : {8u, 16u, 32u, 64u, 128u}) {
        Report r = runSim(prof, presets::fdipWithFtq(depth), opts, "");
        t.beginRow();
        t.cell(std::uint64_t{depth});
        t.cell(r.ipc, 3);
        t.cell(r.icacheMpki, 2);
        t.cell(r.onPathRatio, 2);
        t.cell(r.usefulness, 2);
        t.cell(r.timeliness, 2);
        t.cell(r.avgFtqOccupancy, 1);
    }
    std::printf("custom workload '%s': FTQ depth sweep\n\n%s",
                prof.name.c_str(), t.toAscii().c_str());

    // And how do the paper's techniques do on it?
    Report base = runSim(prof, presets::fdipBaseline(), opts, "fdip");
    Report uftq = runSim(prof, presets::uftq(UftqMode::AtrAur), opts, "uftq");
    Report udp = runSim(prof, presets::udp8k(), opts, "udp");
    std::printf("\nfdip-32 IPC %.3f | UFTQ-ATR-AUR %+.1f%% | UDP-8K %+.1f%%\n",
                base.ipc, (uftq.ipc / base.ipc - 1.0) * 100.0,
                (udp.ipc / base.ipc - 1.0) * 100.0);
    return 0;
}

/**
 * @file
 * Example: compare instruction-prefetching configurations on one workload.
 *
 * Usage: example_compare_prefetchers [app] [measure_instrs]
 *   app defaults to "clang"; any of the ten datacenter profiles works.
 *
 * Demonstrates the preset configurations (no prefetch, FDIP, UDP, UFTQ,
 * EIP, perfect icache) and the Report metrics of the public API.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/runner.h"
#include "stats/table.h"

int
main(int argc, char** argv)
{
    using namespace udp;

    std::string app = argc > 1 ? argv[1] : "clang";
    RunOptions opts;
    opts.warmupInstrs = 250'000;
    opts.measureInstrs = argc > 2
                             ? std::strtoull(argv[2], nullptr, 10)
                             : 400'000;

    const Profile& prof = profileByName(app);

    struct Entry
    {
        const char* name;
        SimConfig cfg;
    };
    const Entry configs[] = {
        {"no-prefetch", presets::noPrefetch()},
        {"fdip-32", presets::fdipBaseline()},
        {"fdip-64", presets::fdipWithFtq(64)},
        {"uftq-atr-aur", presets::uftq(UftqMode::AtrAur)},
        {"udp-8k", presets::udp8k()},
        {"udp-infinite", presets::udpInfinite()},
        {"eip-8k", presets::eip8k()},
        {"icache-40k", presets::bigIcache40k()},
        {"perfect-icache", presets::perfectIcache()},
    };

    Table t({"config", "ipc", "speedup%", "mpki", "timeliness", "onpath",
             "useful"});
    double base_ipc = 0.0;
    for (const Entry& e : configs) {
        Report r = runSim(prof, e.cfg, opts, e.name);
        if (std::string(e.name) == "fdip-32") {
            base_ipc = r.ipc;
        }
        t.beginRow();
        t.cell(std::string(e.name));
        t.cell(r.ipc, 3);
        t.cell(base_ipc > 0 ? (r.ipc / base_ipc - 1.0) * 100.0 : 0.0, 1);
        t.cell(r.icacheMpki, 2);
        t.cell(r.timeliness, 2);
        t.cell(r.onPathRatio, 2);
        t.cell(r.usefulness, 2);
    }

    std::printf("workload: %s (code %u KB)\n\n%s", prof.name.c_str(),
                prof.codeFootprintKB, t.toAscii().c_str());
    std::printf("\n(speedup%% is relative to fdip-32; rows above it ran "
                "before the baseline and show 0)\n");
    return 0;
}

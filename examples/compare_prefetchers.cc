/**
 * @file
 * Example: compare instruction-prefetching configurations on one workload.
 *
 * Usage: example_compare_prefetchers [app] [measure_instrs]
 *                                    [--json out.jsonl] [--csv out.csv]
 *                                    [--isolate] [--wall-sec X] [--resume]
 *   app defaults to "clang"; any of the ten datacenter profiles works.
 *
 * Demonstrates the preset configurations (no prefetch, FDIP, UDP, UFTQ,
 * EIP, perfect icache), the parallel sweep runner (UDP_JOBS workers), the
 * Report metrics + artifact sinks, and the robustness surface of the
 * public API: --isolate forks each configuration into its own resource-
 * limited child so a crash is contained to one row, and --resume replays
 * completed rows from the checkpoint manifest after an interruption.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/sweep.h"
#include "stats/sink.h"
#include "stats/table.h"

int
main(int argc, char** argv)
{
    using namespace udp;

    // Positional args plus optional --json/--csv artifact destinations
    // and the robustness flags.
    std::string app = "clang";
    std::string json_path;
    std::string csv_path;
    std::string manifest_path;
    bool isolate = false;
    bool resume = false;
    double wall_sec = 0.0;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (a == "--csv" && i + 1 < argc) {
            csv_path = argv[++i];
        } else if (a == "--manifest" && i + 1 < argc) {
            manifest_path = argv[++i];
        } else if (a == "--isolate") {
            isolate = true;
        } else if (a == "--resume") {
            resume = true;
        } else if (a == "--wall-sec" && i + 1 < argc) {
            wall_sec = std::strtod(argv[++i], nullptr);
        } else {
            positional.push_back(std::move(a));
        }
    }
    RunOptions opts;
    opts.warmupInstrs = 250'000;
    opts.measureInstrs = 400'000;
    if (!positional.empty()) {
        app = positional[0];
    }
    if (positional.size() > 1) {
        opts.measureInstrs = std::strtoull(positional[1].c_str(), nullptr, 10);
    }

    const Profile& prof = profileByName(app);

    struct Entry
    {
        const char* name;
        SimConfig cfg;
    };
    const Entry configs[] = {
        {"no-prefetch", presets::noPrefetch()},
        {"fdip-32", presets::fdipBaseline()},
        {"fdip-64", presets::fdipWithFtq(64)},
        {"uftq-atr-aur", presets::uftq(UftqMode::AtrAur)},
        {"udp-8k", presets::udp8k()},
        {"udp-infinite", presets::udpInfinite()},
        {"eip-8k", presets::eip8k()},
        {"icache-40k", presets::bigIcache40k()},
        {"perfect-icache", presets::perfectIcache()},
    };

    // All nine configurations are independent: run them as one sweep
    // batch (worker count from UDP_JOBS or the hardware). The checked
    // runner keeps the comparison alive even if one configuration fails.
    std::vector<SweepJob> jobs;
    for (const Entry& e : configs) {
        jobs.push_back({prof, e.cfg, opts, e.name});
    }
    SweepOptions sweep_opts;
    sweep_opts.isolate = isolate;
    if (isolate) {
        sweep_opts.memLimitBytes = std::uint64_t{4096} << 20;
        sweep_opts.wallLimitSec = wall_sec;
    }
    sweep_opts.manifestPath = manifest_path;
    sweep_opts.resume = resume && !manifest_path.empty();
    sweep_opts.handleSignals = true;
    std::vector<JobResult> results = runSweepChecked(jobs, sweep_opts);
    std::vector<Report> reports;
    std::vector<FailureRow> failures;
    std::size_t skipped = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].ok) {
            reports.push_back(results[i].report);
        } else if (results[i].skipped) {
            ++skipped;
        } else {
            FailureRow f;
            f.workload = prof.name;
            f.config = jobs[i].label;
            f.errorKind = results[i].error.kind;
            f.component = results[i].error.component;
            f.message = results[i].error.message;
            f.cycle = results[i].error.cycle;
            f.attempts = results[i].attempts;
            f.signal = results[i].error.signal;
            f.stderrTail = results[i].error.stderrTail;
            f.maxRssKb = results[i].error.maxRssKb;
            f.userSec = results[i].error.userSec;
            f.sysSec = results[i].error.sysSec;
            failures.push_back(std::move(f));
        }
    }

    Table t({"config", "ipc", "speedup%", "mpki", "timeliness", "onpath",
             "useful"});
    double base_ipc = 0.0;
    for (const Report& r : reports) {
        if (r.configName == "fdip-32") {
            base_ipc = r.ipc;
        }
        t.beginRow();
        t.cell(r.configName);
        t.cell(r.ipc, 3);
        t.cell(base_ipc > 0 ? (r.ipc / base_ipc - 1.0) * 100.0 : 0.0, 1);
        t.cell(r.icacheMpki, 2);
        t.cell(r.timeliness, 2);
        t.cell(r.onPathRatio, 2);
        t.cell(r.usefulness, 2);
    }

    std::printf("workload: %s (code %u KB)\n\n%s", prof.name.c_str(),
                prof.codeFootprintKB, t.toAscii().c_str());
    std::printf("\n(speedup%% is relative to fdip-32; rows above it show 0)\n");

    ReportSink sink;
    if (!json_path.empty()) {
        sink.openJson(json_path);
    }
    if (!csv_path.empty()) {
        sink.openCsv(csv_path);
    }
    sink.writeAll(reports);
    for (const FailureRow& f : failures) {
        sink.writeFailure(f);
    }
    if (skipped != 0) {
        std::fprintf(stderr,
                     "[example] interrupted: %zu configuration(s) skipped; "
                     "re-run with --resume\n",
                     skipped);
        return 130;
    }
    if (!failures.empty()) {
        std::fprintf(stderr, "[example] %zu configuration(s) failed\n",
                     failures.size());
        return 1;
    }
    return 0;
}

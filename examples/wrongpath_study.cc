/**
 * @file
 * Example: drive the Cpu cycle-by-cycle (the low-level API) and study
 * wrong-path behaviour directly — how often the frontend diverges, how
 * long it stays off-path, and what UDP's confidence estimator sees.
 */

#include <cstdio>

#include "sim/runner.h"
#include "workload/builder.h"

int
main()
{
    using namespace udp;

    Profile prof = profileByName("xgboost");
    prof.codeFootprintKB = 512; // quicker program construction
    prof.name = "xgboost-small";
    Program prog = ProgramBuilder::build(prof);
    std::printf("program: %zu instructions, %llu static branches, "
                "%zu KB code\n",
                prog.numInstrs(),
                static_cast<unsigned long long>(prog.numStaticBranches()),
                static_cast<std::size_t>(prog.codeBytes() / 1024));

    SimConfig cfg = presets::udp8k();
    Cpu cpu(prog, cfg);

    // Warm up, then observe a window cycle by cycle.
    cpu.runUntilRetired(200'000);
    cpu.clearStats();

    std::uint64_t window_cycles = 200'000;
    for (std::uint64_t i = 0; i < window_cycles; ++i) {
        cpu.cycle();
    }

    const FrontendStats& fe = cpu.frontend().stats();
    const FdipStats& fdip = cpu.fdip().stats();
    const UdpEngine* udp_engine = cpu.udp();

    double off_frac =
        static_cast<double>(fe.offPathInstrs) /
        static_cast<double>(fe.onPathInstrs + fe.offPathInstrs);
    std::printf("\nover %llu cycles:\n",
                static_cast<unsigned long long>(window_cycles));
    std::printf("  frontend emitted     : %llu instrs (%.1f%% off-path)\n",
                static_cast<unsigned long long>(fe.instrsEmitted),
                off_frac * 100.0);
    std::printf("  resteers             : %llu (%llu from decode)\n",
                static_cast<unsigned long long>(fe.resteers),
                static_cast<unsigned long long>(fe.decodeResteers));
    std::printf("  prefetches emitted   : %llu (%.1f%% off-path)\n",
                static_cast<unsigned long long>(fdip.emitted),
                100.0 - 100.0 * static_cast<double>(fdip.emittedOnPath) /
                            static_cast<double>(fdip.emitted ? fdip.emitted
                                                             : 1));
    std::printf("  dropped by UDP       : %llu\n",
                static_cast<unsigned long long>(fdip.droppedByUdp));
    if (udp_engine) {
        std::printf("  useful-set learned   : %llu lines "
                    "(seniority matches %llu)\n",
                    static_cast<unsigned long long>(
                        udp_engine->usefulSetStats().learns),
                    static_cast<unsigned long long>(
                        udp_engine->seniorityStats().matches));
        std::printf("  UDP storage          : %llu bytes (paper: 8KB)\n",
                    static_cast<unsigned long long>(
                        udp_engine->storageBits() / 8));
    }
    std::printf("  retired              : %llu instrs -> IPC %.3f\n",
                static_cast<unsigned long long>(cpu.retired()),
                static_cast<double>(cpu.retired()) /
                    static_cast<double>(cpu.cyclesSinceClear()));
    return 0;
}

/**
 * @file
 * End-to-end integration tests: the full Cpu on generated workloads.
 * Checks determinism, cross-configuration orderings that must hold for
 * the paper's experiments to be meaningful, and report invariants.
 */

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "workload/builder.h"

namespace udp {
namespace {

RunOptions
smallRun()
{
    RunOptions o;
    o.warmupInstrs = 60'000;
    o.measureInstrs = 120'000;
    return o;
}

/** A scaled-down profile so integration tests stay fast. */
Profile
testProfile(const char* base_name, std::uint32_t footprint_kb = 192)
{
    Profile p = profileByName(base_name);
    p.name = std::string(base_name) + "-small";
    p.codeFootprintKB = footprint_kb;
    return p;
}

TEST(Integration, DeterministicAcrossRuns)
{
    Profile p = testProfile("mysql");
    Report a = runSim(p, presets::fdipBaseline(), smallRun(), "a");
    Report b = runSim(p, presets::fdipBaseline(), smallRun(), "b");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.prefetchesEmitted, b.prefetchesEmitted);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

TEST(Integration, RetiresExactlyTheTarget)
{
    Profile p = testProfile("postgres");
    const Program& prog = [&]() -> const Program& {
        static Program pr = ProgramBuilder::build(p);
        return pr;
    }();
    Cpu cpu(prog, presets::fdipBaseline());
    cpu.runUntilRetired(50'000);
    EXPECT_GE(cpu.retired(), 50'000u);
    EXPECT_LT(cpu.retired(), 50'000u + 8); // at most one retire group over
}

TEST(Integration, PerfectIcacheBeatsFdipBeatsNoPrefetch)
{
    for (const char* name : {"mysql", "clang"}) {
        Profile p = testProfile(name);
        Report nopf = runSim(p, presets::noPrefetch(), smallRun(), "no");
        Report fdip = runSim(p, presets::fdipBaseline(), smallRun(), "f");
        Report perf = runSim(p, presets::perfectIcache(), smallRun(), "p");
        EXPECT_GT(fdip.ipc, nopf.ipc) << name;
        EXPECT_GT(perf.ipc, fdip.ipc * 0.999) << name;
        EXPECT_EQ(perf.icacheMpki, 0.0) << name;
    }
}

TEST(Integration, FdipReducesIcacheMisses)
{
    Profile p = testProfile("mysql");
    Report nopf = runSim(p, presets::noPrefetch(), smallRun(), "no");
    Report fdip = runSim(p, presets::fdipBaseline(), smallRun(), "f");
    EXPECT_LT(fdip.icacheMpki, nopf.icacheMpki * 0.7);
    EXPECT_GT(fdip.prefetchesEmitted, 0u);
    EXPECT_EQ(nopf.prefetchesEmitted, 0u);
}

TEST(Integration, WrongPathPrefetchesExist)
{
    Profile p = testProfile("mysql");
    Report r = runSim(p, presets::fdipBaseline(), smallRun(), "f");
    EXPECT_GT(r.onPathRatio, 0.0);
    EXPECT_LT(r.onPathRatio, 1.0);
    EXPECT_GT(r.resteers, 0u);
    EXPECT_GT(r.decodeCorrections, 0u);
}

class IntegrationAllConfigs
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(IntegrationAllConfigs, RunsAndReportsSane)
{
    Profile p = testProfile("tomcat");
    SimConfig cfg;
    std::string which = GetParam();
    if (which == "fdip") {
        cfg = presets::fdipBaseline();
    } else if (which == "noPrefetch") {
        cfg = presets::noPrefetch();
    } else if (which == "perfect") {
        cfg = presets::perfectIcache();
    } else if (which == "udp8k") {
        cfg = presets::udp8k();
    } else if (which == "udpInfinite") {
        cfg = presets::udpInfinite();
    } else if (which == "uftqAur") {
        cfg = presets::uftq(UftqMode::Aur);
    } else if (which == "uftqAtr") {
        cfg = presets::uftq(UftqMode::Atr);
    } else if (which == "uftqAtrAur") {
        cfg = presets::uftq(UftqMode::AtrAur);
    } else if (which == "eip8k") {
        cfg = presets::eip8k();
    } else if (which == "bigIcache") {
        cfg = presets::bigIcache40k();
    } else if (which == "ftq8") {
        cfg = presets::fdipWithFtq(8);
    } else if (which == "ftq128") {
        cfg = presets::fdipWithFtq(128);
    }

    Report r = runSim(p, cfg, smallRun(), which);
    EXPECT_GT(r.ipc, 0.05) << which;
    EXPECT_LT(r.ipc, 6.0) << which;
    EXPECT_GE(r.timeliness, 0.0);
    EXPECT_LE(r.timeliness, 1.0);
    EXPECT_GE(r.usefulness, 0.0);
    EXPECT_LE(r.usefulness, 1.0);
    EXPECT_GE(r.onPathRatio, 0.0);
    EXPECT_LE(r.onPathRatio, 1.0);
    EXPECT_GE(r.condMispredictRate, 0.0);
    EXPECT_LE(r.condMispredictRate, 1.0);
    EXPECT_GT(r.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, IntegrationAllConfigs,
    ::testing::Values("fdip", "noPrefetch", "perfect", "udp8k",
                      "udpInfinite", "uftqAur", "uftqAtr", "uftqAtrAur",
                      "eip8k", "bigIcache", "ftq8", "ftq128"));

TEST(Integration, FtqOccupancyBounded)
{
    Profile p = testProfile("mysql");
    for (unsigned depth : {8u, 32u, 64u}) {
        Report r = runSim(p, presets::fdipWithFtq(depth), smallRun(), "");
        EXPECT_LE(r.avgFtqOccupancy, static_cast<double>(depth) + 0.5)
            << depth;
    }
}

TEST(Integration, DeeperFtqEmitsMoreOffPathPrefetches)
{
    // Paper Fig. 5: the on-path ratio shrinks as the FTQ deepens.
    Profile p = testProfile("mysql");
    Report shallow = runSim(p, presets::fdipWithFtq(8), smallRun(), "");
    Report deep = runSim(p, presets::fdipWithFtq(96), smallRun(), "");
    EXPECT_LT(deep.onPathRatio, shallow.onPathRatio);
}

TEST(Integration, DeeperFtqImprovesTimeliness)
{
    // Paper Fig. 4: deeper runahead -> prefetches arrive earlier.
    Profile p = testProfile("verilator", 1024);
    Report shallow = runSim(p, presets::fdipWithFtq(8), smallRun(), "");
    Report deep = runSim(p, presets::fdipWithFtq(64), smallRun(), "");
    EXPECT_GT(deep.timeliness, shallow.timeliness);
}

TEST(Integration, UdpDropsOffPathAssumedCandidates)
{
    Profile p = testProfile("xgboost", 512);
    Report r = runSim(p, presets::udp8k(), smallRun(), "udp");
    EXPECT_GT(r.udpDropped + r.udpFilteredEmits, 0u);
    EXPECT_GT(r.udpLearned, 0u);
}

TEST(Integration, UftqAdjustsDepth)
{
    Profile p = testProfile("clang", 512);
    const Program& prog = [&]() -> const Program& {
        static Program pr = ProgramBuilder::build(p);
        return pr;
    }();
    Cpu cpu(prog, presets::uftq(UftqMode::Aur));
    cpu.runUntilRetired(150'000);
    ASSERT_NE(cpu.uftq(), nullptr);
    EXPECT_GT(cpu.uftq()->stats().epochs, 0u);
    // The depth moved away from the initial 32 at least once overall.
    EXPECT_NE(cpu.uftq()->stats().increases +
                  cpu.uftq()->stats().decreases,
              0u);
}

TEST(Integration, StatsClearGivesCleanWindow)
{
    Profile p = testProfile("drupal");
    const Program& prog = [&]() -> const Program& {
        static Program pr = ProgramBuilder::build(p);
        return pr;
    }();
    Cpu cpu(prog, presets::fdipBaseline());
    cpu.runUntilRetired(50'000);
    cpu.clearStats();
    EXPECT_EQ(cpu.retired(), 0u);
    EXPECT_EQ(cpu.cyclesSinceClear(), 0u);
    cpu.runUntilRetired(10'000);
    Report r = collectReport(cpu, "drupal", "window");
    EXPECT_GE(r.instructions, 10'000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Integration, EipIssuesPrefetchesWithFdipDisabled)
{
    Profile p = testProfile("mysql");
    SimConfig cfg = presets::eip8k();
    cfg.fdip.enabled = false; // EIP standalone
    const Program& prog = [&]() -> const Program& {
        static Program pr = ProgramBuilder::build(p);
        return pr;
    }();
    Cpu cpu(prog, cfg);
    cpu.runUntilRetired(100'000);
    ASSERT_NE(cpu.eip(), nullptr);
    EXPECT_GT(cpu.eip()->stats().trainings, 0u);
}

TEST(Integration, BtbSizeMatters)
{
    // A tiny BTB must cause more decode corrections than the 8K default.
    Profile p = testProfile("mysql");
    SimConfig small = presets::fdipBaseline();
    small.bpu.btb.numEntries = 512;
    Report rs = runSim(p, small, smallRun(), "btb512");
    Report rb = runSim(p, presets::fdipBaseline(), smallRun(), "btb8k");
    EXPECT_GT(rs.decodeCorrections, rb.decodeCorrections);
    EXPECT_LE(rs.ipc, rb.ipc * 1.02);
}

} // namespace
} // namespace udp

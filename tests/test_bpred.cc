/**
 * @file
 * Tests for branch prediction: global/folded history, TAGE learning and
 * checkpoint/restore, loop predictor, statistical corrector, BTB, IBTB,
 * RAS and the BPU facade.
 */

#include <gtest/gtest.h>

#include "bpred/bpu.h"
#include "common/rng.h"

namespace udp {
namespace {

// --------------------------------------------------------------- history

TEST(GlobalHistory, PushAndBit)
{
    GlobalHistory h(256);
    h.push(true);
    h.push(false);
    h.push(true);
    EXPECT_TRUE(h.bit(0));
    EXPECT_FALSE(h.bit(1));
    EXPECT_TRUE(h.bit(2));
}

TEST(GlobalHistory, RecentPacksNewestFirst)
{
    GlobalHistory h(256);
    h.push(true);
    h.push(true);
    h.push(false); // newest
    EXPECT_EQ(h.recent(3), 0b110u);
}

TEST(GlobalHistory, PositionRestoreReplays)
{
    GlobalHistory h(256);
    for (int i = 0; i < 10; ++i) {
        h.push(i % 2 == 0);
    }
    std::uint64_t pos = h.position();
    bool b0 = h.bit(0);
    h.push(true);
    h.push(true);
    h.setPosition(pos);
    EXPECT_EQ(h.bit(0), b0);
}

/**
 * Property: the incrementally folded history must equal a from-scratch
 * fold of the same bit sequence, for several (length, width) geometries.
 */
class FoldedHistoryProperty
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(FoldedHistoryProperty, MatchesFromScratchFold)
{
    auto [length, width] = GetParam();
    GlobalHistory ghist(1 << 12);
    FoldedHistory fold;
    fold.configure(length, width);

    Rng rng(1234 + length * 7 + width);
    for (int i = 0; i < 2000; ++i) {
        bool bit = rng.chance(0.5);
        ghist.push(bit);
        fold.update(bit, ghist.bit(length));

        if (i % 97 == 0) {
            // Recompute the fold from scratch over the last `length` bits.
            std::uint32_t scratch = 0;
            for (int j = static_cast<int>(length) - 1; j >= 0; --j) {
                scratch = (scratch << 1) |
                          (ghist.bit(static_cast<std::size_t>(j)) ? 1 : 0);
                scratch = (scratch ^ (scratch >> width)) &
                          ((1u << width) - 1);
            }
            EXPECT_EQ(fold.comp, scratch)
                << "len=" << length << " width=" << width << " step=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FoldedHistoryProperty,
    ::testing::Values(std::make_pair(8u, 10u), std::make_pair(21u, 10u),
                      std::make_pair(64u, 11u), std::make_pair(130u, 11u),
                      std::make_pair(640u, 11u)));

// ------------------------------------------------------------------ TAGE

TageConfig
smallTage()
{
    TageConfig c;
    c.numTables = 6;
    c.baseBits = 12;
    c.tableBits = 9;
    c.maxHist = 128;
    return c;
}

TEST(Tage, LearnsStronglyBiasedBranch)
{
    Tage tage(smallTage());
    Addr pc = 0x400100;
    int mispredicts = 0;
    for (int i = 0; i < 2000; ++i) {
        TagePrediction p = tage.predict(pc);
        bool outcome = true; // always taken
        if (p.taken != outcome && i > 100) {
            ++mispredicts;
        }
        tage.specUpdateHistory(outcome, pc);
        tage.update(pc, p, outcome);
    }
    EXPECT_LT(mispredicts, 5);
}

TEST(Tage, LearnsAlternatingPattern)
{
    Tage tage(smallTage());
    Addr pc = 0x400200;
    int mispredicts = 0;
    for (int i = 0; i < 4000; ++i) {
        TagePrediction p = tage.predict(pc);
        bool outcome = (i % 2) == 0;
        if (p.taken != outcome && i > 1000) {
            ++mispredicts;
        }
        tage.specUpdateHistory(outcome, pc);
        tage.update(pc, p, outcome);
    }
    EXPECT_LT(mispredicts / 3000.0, 0.05);
}

TEST(Tage, LearnsHistoryCorrelatedBranch)
{
    Tage tage(smallTage());
    Addr pc_a = 0x400300;
    Addr pc_b = 0x400304;
    Rng rng(5);
    int mispredicts = 0;
    int total = 0;
    bool last_a = false;
    for (int i = 0; i < 6000; ++i) {
        // Branch A: random. Branch B: equals A's last outcome.
        TagePrediction pa = tage.predict(pc_a);
        bool a = rng.chance(0.5);
        tage.specUpdateHistory(a, pc_a);
        tage.update(pc_a, pa, a);
        last_a = a;

        TagePrediction pb = tage.predict(pc_b);
        bool b = last_a;
        if (i > 2000) {
            ++total;
            mispredicts += pb.taken != b;
        }
        tage.specUpdateHistory(b, pc_b);
        tage.update(pc_b, pb, b);
    }
    EXPECT_LT(static_cast<double>(mispredicts) / total, 0.10);
}

TEST(Tage, SnapshotRestoreRoundTrip)
{
    Tage tage(smallTage());
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        tage.specUpdateHistory(rng.chance(0.5), 0x400000 + i * 4);
    }
    TageHistState snap = tage.snapshot();
    TagePrediction before = tage.predict(0x400abc);

    // Speculate down some path...
    for (int i = 0; i < 50; ++i) {
        tage.specUpdateHistory(rng.chance(0.5), 0x400f00 + i * 4);
    }
    // ...then recover.
    tage.restore(snap);
    TagePrediction after = tage.predict(0x400abc);

    EXPECT_EQ(before.taken, after.taken);
    EXPECT_EQ(before.provider, after.provider);
    for (unsigned t = 0; t < smallTage().numTables; ++t) {
        EXPECT_EQ(before.index[t], after.index[t]);
        EXPECT_EQ(before.tag[t], after.tag[t]);
    }
}

TEST(Tage, ConfidenceHighForStableBranch)
{
    Tage tage(smallTage());
    Addr pc = 0x400400;
    for (int i = 0; i < 500; ++i) {
        TagePrediction p = tage.predict(pc);
        tage.specUpdateHistory(true, pc);
        tage.update(pc, p, true);
    }
    EXPECT_EQ(tage.predict(pc).conf, Confidence::High);
}

TEST(Tage, StorageBitsPlausible)
{
    Tage tage{TageConfig{}};
    // Default config should land in the tens-of-KB class (Ishii-style).
    EXPECT_GT(tage.storageBits() / 8, 30'000u);
    EXPECT_LT(tage.storageBits() / 8, 120'000u);
}

// --------------------------------------------------------- loop predictor

TEST(LoopPredictor, LearnsFixedTrip)
{
    LoopPredictor lp{LoopPredictorConfig{}};
    Addr pc = 0x400500;
    // Train several full loops of trip 7 (6 taken, 1 not-taken).
    for (int loop = 0; loop < 8; ++loop) {
        for (int i = 0; i < 6; ++i) {
            lp.update(pc, true);
        }
        lp.update(pc, false);
    }
    // Now confident: predicts taken for 6, not-taken on the exit.
    for (int i = 0; i < 6; ++i) {
        LoopPrediction p = lp.predict(pc);
        ASSERT_TRUE(p.valid);
        EXPECT_TRUE(p.taken) << "iteration " << i;
        lp.update(pc, true);
    }
    LoopPrediction exit = lp.predict(pc);
    ASSERT_TRUE(exit.valid);
    EXPECT_FALSE(exit.taken);
    lp.update(pc, false);
}

TEST(LoopPredictor, NotConfidentForIrregularTrips)
{
    LoopPredictor lp{LoopPredictorConfig{}};
    Addr pc = 0x400600;
    Rng rng(3);
    for (int loop = 0; loop < 20; ++loop) {
        int trip = static_cast<int>(rng.range(4, 12));
        for (int i = 0; i < trip - 1; ++i) {
            lp.update(pc, true);
        }
        lp.update(pc, false);
    }
    EXPECT_FALSE(lp.predict(pc).valid);
}

TEST(LoopPredictor, IgnoresShortTrips)
{
    LoopPredictor lp{LoopPredictorConfig{}};
    Addr pc = 0x400700;
    for (int loop = 0; loop < 10; ++loop) {
        lp.update(pc, true);
        lp.update(pc, false); // trip 2: below the minimum
    }
    EXPECT_FALSE(lp.predict(pc).valid);
}

// --------------------------------------------------- statistical corrector

TEST(StatisticalCorrector, NeverOverridesHighConfidence)
{
    StatisticalCorrector sc{ScConfig{}};
    for (int i = 0; i < 200; ++i) {
        ScPrediction p = sc.predict(0x400800, i, true, true);
        EXPECT_FALSE(p.used);
        sc.update(p, true, false); // train against
    }
}

TEST(StatisticalCorrector, CanLearnToVeto)
{
    StatisticalCorrector sc{ScConfig{}};
    Addr pc = 0x400900;
    // TAGE keeps saying taken (low confidence); reality is not-taken.
    bool vetoed = false;
    for (int i = 0; i < 500; ++i) {
        ScPrediction p = sc.predict(pc, 0, true, false);
        if (p.used && !p.taken) {
            vetoed = true;
        }
        sc.update(p, true, false);
    }
    EXPECT_TRUE(vetoed);
}

// ------------------------------------------------------------------- BTB

TEST(Btb, InsertLookup)
{
    Btb btb{BtbConfig{}};
    btb.insert(0x400000, BranchKind::Jump, 0x400100);
    const BtbEntry* e = btb.lookup(0x400000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->kind, BranchKind::Jump);
    EXPECT_EQ(e->target, 0x400100u);
    EXPECT_EQ(btb.lookup(0x400004), nullptr);
}

TEST(Btb, UpdateInPlace)
{
    Btb btb{BtbConfig{}};
    btb.insert(0x400000, BranchKind::IndirectJump, 0x400100);
    btb.insert(0x400000, BranchKind::IndirectJump, 0x400200);
    const BtbEntry* e = btb.probe(0x400000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->target, 0x400200u);
    EXPECT_EQ(btb.stats().inserts, 1u); // second insert was an update
}

class BtbAssocSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BtbAssocSweep, LruEvictsOldest)
{
    unsigned assoc = GetParam();
    BtbConfig cfg;
    cfg.numEntries = 64 * assoc;
    cfg.assoc = assoc;
    Btb btb(cfg);

    // Fill one set with assoc+1 conflicting entries.
    std::vector<Addr> pcs;
    for (unsigned i = 0; i <= assoc; ++i) {
        // Same set: stride = numSets * 4 bytes.
        pcs.push_back(0x400000 + Addr{i} * 64 * 4);
    }
    for (Addr pc : pcs) {
        btb.insert(pc, BranchKind::Jump, pc + 64);
    }
    // The first inserted (LRU) entry must be gone; the rest present.
    EXPECT_EQ(btb.probe(pcs[0]), nullptr);
    for (unsigned i = 1; i <= assoc; ++i) {
        EXPECT_NE(btb.probe(pcs[i]), nullptr) << "way " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Assocs, BtbAssocSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Btb, LookupTouchesLru)
{
    BtbConfig cfg;
    cfg.numEntries = 64 * 2;
    cfg.assoc = 2;
    Btb btb(cfg);
    Addr a = 0x400000;
    Addr b = a + 64 * 4;
    Addr c = b + 64 * 4;
    btb.insert(a, BranchKind::Jump, 1 * 4 + 0x400000);
    btb.insert(b, BranchKind::Jump, 2 * 4 + 0x400000);
    btb.lookup(a); // touch a so b becomes LRU
    btb.insert(c, BranchKind::Jump, 3 * 4 + 0x400000);
    EXPECT_NE(btb.probe(a), nullptr);
    EXPECT_EQ(btb.probe(b), nullptr);
}

// ------------------------------------------------------------------ IBTB

TEST(Ibtb, LearnsStableTarget)
{
    Ibtb ibtb{IbtbConfig{}};
    Addr pc = 0x400000;
    Addr target = 0x480000;
    for (int i = 0; i < 10; ++i) {
        IbtbPrediction p = ibtb.predict(pc, 0);
        ibtb.update(pc, p, target);
    }
    EXPECT_EQ(ibtb.predict(pc, 0).target, target);
}

TEST(Ibtb, LearnsHistoryDependentTargets)
{
    Ibtb ibtb{IbtbConfig{}};
    Addr pc = 0x400000;
    int correct = 0;
    int total = 0;
    for (int i = 0; i < 4000; ++i) {
        std::uint64_t hist = static_cast<std::uint64_t>(i % 4);
        Addr target = 0x480000 + hist * 0x1000;
        IbtbPrediction p = ibtb.predict(pc, hist);
        if (i > 1000) {
            ++total;
            correct += p.target == target;
        }
        ibtb.update(pc, p, target);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(Ibtb, ColdReturnsInvalid)
{
    Ibtb ibtb{IbtbConfig{}};
    EXPECT_EQ(ibtb.predict(0x412340, 7).target, kInvalidAddr);
}

// ------------------------------------------------------------------- RAS

TEST(Ras, PushPopLifo)
{
    Ras ras(8);
    ras.push(0x1000);
    ras.push(0x2000);
    EXPECT_EQ(ras.pop(), 0x2000u);
    EXPECT_EQ(ras.pop(), 0x1000u);
}

TEST(Ras, CheckpointRepairsTop)
{
    Ras ras(8);
    ras.push(0x1000);
    ras.push(0x2000);
    RasCheckpoint ck = ras.checkpoint();
    ras.pop();
    ras.push(0x9999);
    ras.push(0x8888);
    ras.restore(ck);
    EXPECT_EQ(ras.pop(), 0x2000u);
    EXPECT_EQ(ras.pop(), 0x1000u);
}

TEST(Ras, WrapsWithoutCrashing)
{
    Ras ras(4);
    for (Addr i = 0; i < 10; ++i) {
        ras.push(0x1000 + i * 4);
    }
    EXPECT_EQ(ras.pop(), 0x1000u + 9 * 4);
}

// -------------------------------------------------------------------- BPU

TEST(Bpu, CheckpointRecoverRoundTrip)
{
    Bpu bpu{BpuConfig{}};
    // Train one branch strongly not-taken so speculation can push 0 bits
    // (a cold predictor predicts everything taken).
    Addr pc_nt = 0x500000;
    for (int i = 0; i < 64; ++i) {
        CondPredRecord rec = bpu.predictCond(pc_nt);
        bpu.trainCond(pc_nt, rec, false);
    }
    Rng rng(21);
    for (int i = 0; i < 200; ++i) {
        bpu.predictCond(0x400000 + (rng.next() % 1024) * 4);
    }
    BpuCheckpoint ck = bpu.checkpoint();
    std::uint64_t hist_before = bpu.history64();

    for (int i = 0; i < 4; ++i) {
        CondPredRecord rec = bpu.predictCond(pc_nt); // pushes 0
        EXPECT_FALSE(rec.taken);
        bpu.predictCond(0x400010); // pushes (likely) 1
    }
    EXPECT_NE(bpu.history64(), hist_before);

    bpu.recoverTo(ck, 0x400abc, true, true);
    // History = checkpoint + the resolved outcome bit.
    EXPECT_EQ(bpu.history64(), (hist_before << 1) | 1);
}

TEST(Bpu, TrainingImprovesAccuracy)
{
    Bpu bpu{BpuConfig{}};
    Addr pc = 0x400010;
    int early_misses = 0;
    int late_misses = 0;
    for (int i = 0; i < 2000; ++i) {
        CondPredRecord rec = bpu.predictCond(pc);
        bool outcome = (i % 4) != 3; // 3 taken, 1 not
        bool miss = rec.taken != outcome;
        (i < 200 ? early_misses : late_misses) += miss;
        bpu.trainCond(pc, rec, outcome);
    }
    EXPECT_LT(late_misses / 1800.0, early_misses / 200.0 + 0.01);
}

TEST(Bpu, StorageAccounting)
{
    Bpu bpu{BpuConfig{}};
    // BTB (8K) + TAGE + IBTB etc.: order of 100-200KB total.
    EXPECT_GT(bpu.storageBits() / 8, 50'000u);
    EXPECT_LT(bpu.storageBits() / 8, 400'000u);
}

} // namespace
} // namespace udp

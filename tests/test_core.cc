/**
 * @file
 * Tests for the paper's core contributions: Bloom filters, the useful-set
 * with super-line coalescing, the Seniority-FTQ, the off-path confidence
 * estimator, the UDP engine and the UFTQ controller.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/udp_engine.h"
#include "core/uftq.h"

namespace udp {
namespace {

// ----------------------------------------------------------------- bloom

TEST(Bloom, NoFalseNegatives)
{
    BloomFilter f(16 * 1024, 6);
    Rng rng(3);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 1500; ++i) {
        keys.push_back(rng.next());
        f.insert(keys.back());
    }
    for (std::uint64_t k : keys) {
        EXPECT_TRUE(f.contains(k));
    }
}

TEST(Bloom, FalsePositiveRateNearOnePercent)
{
    BloomFilter f(16 * 1024, 6);
    Rng rng(7);
    for (std::uint64_t i = 0; i < f.capacityElements(); ++i) {
        f.insert(rng.next());
    }
    int fps = 0;
    const int probes = 20000;
    for (int i = 0; i < probes; ++i) {
        fps += f.contains(mix64(0xdead0000 + i));
    }
    double rate = static_cast<double>(fps) / probes;
    EXPECT_LT(rate, 0.05);
}

TEST(Bloom, ClearEmpties)
{
    BloomFilter f(1024, 6);
    f.insert(42);
    EXPECT_TRUE(f.contains(42));
    f.clear();
    EXPECT_FALSE(f.contains(42));
    EXPECT_EQ(f.insertions(), 0u);
    EXPECT_DOUBLE_EQ(f.fillRatio(), 0.0);
}

TEST(Bloom, FullAtNominalCapacity)
{
    BloomFilter f(1024, 6);
    EXPECT_FALSE(f.full());
    for (std::uint64_t i = 0; i <= f.capacityElements(); ++i) {
        f.insert(mix64(i));
    }
    EXPECT_TRUE(f.full());
}

class BloomSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BloomSizeSweep, EmptyFilterRejectsEverything)
{
    BloomFilter f(GetParam(), 6);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(f.contains(mix64(i)));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BloomSizeSweep,
                         ::testing::Values(std::size_t{64},
                                           std::size_t{1024},
                                           std::size_t{16 * 1024}));

// ------------------------------------------------------------ useful set

TEST(UsefulSet, LearnThenLookup)
{
    UsefulSet set{UsefulSetConfig{}};
    // Learn scattered lines so no coalescing: they surface as 1-blocks
    // once pushed out of the 8-entry buffer.
    for (int i = 0; i < 20; ++i) {
        set.learn(0x400000 + static_cast<Addr>(i) * 0x1000);
    }
    // The first learned lines have left the buffer and are queryable.
    EXPECT_EQ(set.lookup(0x400000), 1u);
    EXPECT_EQ(set.lookup(0x401000), 1u);
    EXPECT_EQ(set.lookup(0x777000), 0u);
}

TEST(UsefulSet, CoalescesFourConsecutiveLines)
{
    UsefulSet set{UsefulSetConfig{}};
    // Four consecutive lines of an aligned 256B group, base evicted first.
    Addr base = 0x400400; // 256-aligned
    set.learn(base);
    set.learn(base + 64);
    set.learn(base + 128);
    set.learn(base + 192);
    // Flush the buffer with unrelated lines.
    for (int i = 0; i < 10; ++i) {
        set.learn(0x900000 + static_cast<Addr>(i) * 0x1000);
    }
    EXPECT_EQ(set.lookup(base), 4u);
    EXPECT_EQ(set.lookup(base + 128), 4u);
    EXPECT_EQ(UsefulSet::spanBase(base + 128, 4), base);
    EXPECT_GE(set.stats().inserts4, 1u);
}

TEST(UsefulSet, CoalescesTwoConsecutiveLines)
{
    UsefulSet set{UsefulSetConfig{}};
    Addr base = 0x400380; // 128-aligned, not 256-aligned
    set.learn(base);
    set.learn(base + 64);
    for (int i = 0; i < 10; ++i) {
        set.learn(0x900000 + static_cast<Addr>(i) * 0x1000);
    }
    EXPECT_EQ(set.lookup(base), 2u);
    EXPECT_EQ(set.lookup(base + 64), 2u);
    EXPECT_GE(set.stats().inserts2, 1u);
}

TEST(UsefulSet, SpanBase)
{
    EXPECT_EQ(UsefulSet::spanBase(0x1040, 1), 0x1040u);
    EXPECT_EQ(UsefulSet::spanBase(0x1040, 2), 0x1000u);
    EXPECT_EQ(UsefulSet::spanBase(0x10c0, 4), 0x1000u);
}

TEST(UsefulSet, ClearPolicyFiresWhenFullAndUnuseful)
{
    UsefulSetConfig cfg;
    cfg.bits1 = 512; // tiny: fills fast
    cfg.bits2 = 128;
    cfg.bits4 = 128;
    cfg.minEmittedForClear = 10;
    UsefulSet set(cfg);
    for (int i = 0; i < 200; ++i) {
        set.learn(0x400000 + static_cast<Addr>(i) * 0x1000);
    }
    for (int i = 0; i < 100; ++i) {
        set.noteEmitted();
    }
    set.noteUnuseful(90); // 90% unuseful
    set.maybeClear();
    EXPECT_EQ(set.stats().clears, 1u);
    EXPECT_EQ(set.lookup(0x400000), 0u);
}

TEST(UsefulSet, NoClearWhenUseful)
{
    UsefulSetConfig cfg;
    cfg.bits1 = 512;
    cfg.minEmittedForClear = 10;
    UsefulSet set(cfg);
    for (int i = 0; i < 200; ++i) {
        set.learn(0x400000 + static_cast<Addr>(i) * 0x1000);
    }
    for (int i = 0; i < 100; ++i) {
        set.noteEmitted();
    }
    set.noteUnuseful(10); // only 10% unuseful
    set.maybeClear();
    EXPECT_EQ(set.stats().clears, 0u);
}

TEST(UsefulSet, InfiniteModeExactAndUnbounded)
{
    UsefulSetConfig cfg;
    cfg.infiniteStorage = true;
    UsefulSet set(cfg);
    for (int i = 0; i < 5000; ++i) {
        set.learn(0x400000 + static_cast<Addr>(i) * 64);
    }
    EXPECT_EQ(set.lookup(0x400000), 1u);
    EXPECT_EQ(set.lookup(0x400000 + 4999 * 64), 1u);
    EXPECT_EQ(set.lookup(0x900000), 0u);
    set.maybeClear();
    EXPECT_EQ(set.lookup(0x400000), 1u); // never cleared
}

TEST(UsefulSet, StorageBudgetIs8KBClass)
{
    UsefulSet set{UsefulSetConfig{}};
    // 16k + 1k + 1k bits of filters ≈ 2.3KB; with the engine's other
    // structures the paper quotes 8KB total (checked in UdpEngine test).
    EXPECT_LE(set.storageBits() / 8, 8 * 1024u);
}

// --------------------------------------------------------- seniority FTQ

TEST(SeniorityFtq, InsertMatchRemove)
{
    SeniorityFtq s{SeniorityFtqConfig{}};
    s.insert(0x400040, 1);
    EXPECT_TRUE(s.matchAndRemove(0x400040));
    EXPECT_FALSE(s.matchAndRemove(0x400040)); // consumed
}

TEST(SeniorityFtq, MatchesByLineNotExactAddress)
{
    SeniorityFtq s{SeniorityFtqConfig{}};
    s.insert(0x400044, 1);
    EXPECT_TRUE(s.matchAndRemove(0x400078)); // same 64B line
}

TEST(SeniorityFtq, DeduplicatesInserts)
{
    SeniorityFtq s{SeniorityFtqConfig{}};
    s.insert(0x400040, 1);
    s.insert(0x400040, 2);
    s.insert(0x400044, 3);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.stats().inserts, 1u);
}

TEST(SeniorityFtq, CapacityEvictsOldest)
{
    SeniorityFtqConfig cfg;
    cfg.capacity = 4;
    SeniorityFtq s(cfg);
    for (int i = 0; i < 6; ++i) {
        s.insert(0x400000 + static_cast<Addr>(i) * 64, static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(s.size(), 4u);
    EXPECT_FALSE(s.matchAndRemove(0x400000));
    EXPECT_TRUE(s.matchAndRemove(0x400000 + 5 * 64));
    EXPECT_EQ(s.stats().capacityEvictions, 2u);
}

TEST(SeniorityFtq, KeepPolicySurvivesFlush)
{
    SeniorityFtq s{SeniorityFtqConfig{}}; // Keep by default
    s.insert(0x400040, 100);
    s.onFlush(50);
    EXPECT_TRUE(s.matchAndRemove(0x400040));
}

TEST(SeniorityFtq, DropYoungerPolicyRemovesOnFlush)
{
    SeniorityFtqConfig cfg;
    cfg.flushPolicy = SftqFlushPolicy::DropYounger;
    SeniorityFtq s(cfg);
    s.insert(0x400040, 10);
    s.insert(0x400080, 100);
    s.onFlush(50);
    EXPECT_FALSE(s.matchAndRemove(0x400080)); // younger: dropped
    EXPECT_TRUE(s.matchAndRemove(0x400040));  // older: kept
    EXPECT_EQ(s.stats().flushDrops, 1u);
}

// ------------------------------------------------------------ confidence

TEST(Confidence, WeightsAndThreshold)
{
    ConfidenceConfig cfg;
    cfg.threshold = 4;
    OffPathConfidence c(cfg);
    EXPECT_FALSE(c.assumedOffPath());
    c.onCondPredicted(Confidence::High); // +0
    EXPECT_FALSE(c.assumedOffPath());
    c.onCondPredicted(Confidence::Low); // +2
    c.onCondPredicted(Confidence::Med); // +1
    EXPECT_FALSE(c.assumedOffPath());
    c.onCondPredicted(Confidence::Med); // +1 -> 4
    EXPECT_TRUE(c.assumedOffPath());
}

TEST(Confidence, ResetOnRecovery)
{
    ConfidenceConfig cfg;
    cfg.threshold = 2;
    OffPathConfidence c(cfg);
    c.onCondPredicted(Confidence::Low);
    EXPECT_TRUE(c.assumedOffPath());
    c.reset();
    EXPECT_FALSE(c.assumedOffPath());
    EXPECT_EQ(c.value(), 0u);
}

TEST(Confidence, BtbMissBumpForcesAssumption)
{
    ConfidenceConfig cfg;
    cfg.threshold = 6;
    cfg.btbMissBump = 6;
    OffPathConfidence c(cfg);
    c.onBtbMissTaken();
    EXPECT_TRUE(c.assumedOffPath());
}

TEST(Confidence, CounterSaturates)
{
    ConfidenceConfig cfg;
    cfg.counterMax = 5;
    OffPathConfidence c(cfg);
    for (int i = 0; i < 100; ++i) {
        c.onCondPredicted(Confidence::Low);
    }
    EXPECT_EQ(c.value(), 5u);
}

// ------------------------------------------------------------ UDP engine

FtqEntry
makeEntry(Addr pc, bool assumed_off, std::uint64_t id = 1)
{
    FtqEntry e;
    e.id = id;
    e.startPc = pc;
    e.assumedOffPath = assumed_off;
    return e;
}

TEST(UdpEngine, OnPathAssumedAlwaysEmits)
{
    UdpEngine udp{UdpConfig{}};
    UdpDecision d = udp.evaluate(makeEntry(0x400000, false), 0x400000);
    EXPECT_TRUE(d.emit);
    EXPECT_EQ(d.span, 1u);
}

TEST(UdpEngine, OffPathAssumedFilteredByUsefulSet)
{
    UdpEngine udp{UdpConfig{}};
    UdpDecision d = udp.evaluate(makeEntry(0x400000, true), 0x400000);
    EXPECT_FALSE(d.emit); // nothing learned yet
    EXPECT_EQ(udp.stats().droppedFiltered, 1u);
}

TEST(UdpEngine, LearnsThroughRetirementLoop)
{
    UdpEngine udp{UdpConfig{}};
    // Candidate evaluated while assumed off-path -> enters Seniority-FTQ.
    udp.evaluate(makeEntry(0x400000, true), 0x400000);
    // An instruction in the same line retires (merge point!).
    udp.onRetire(0x400020);
    EXPECT_EQ(udp.stats().retireMatches, 1u);
    // Push the learned line out of the coalescing buffer.
    for (int i = 1; i <= 10; ++i) {
        udp.evaluate(makeEntry(0x900000 + static_cast<Addr>(i) * 0x1000, true),
                     0x900000 + static_cast<Addr>(i) * 0x1000);
        udp.onRetire(0x900000 + static_cast<Addr>(i) * 0x1000);
    }
    // Now the line is in the useful set: the candidate emits.
    UdpDecision d = udp.evaluate(makeEntry(0x400000, true, 99), 0x400000);
    EXPECT_TRUE(d.emit);
}

TEST(UdpEngine, RetireWithoutCandidateDoesNotLearn)
{
    UdpEngine udp{UdpConfig{}};
    udp.onRetire(0x400000);
    EXPECT_EQ(udp.stats().retireMatches, 0u);
}

TEST(UdpEngine, StorageBudgetIs8KB)
{
    UdpEngine udp{UdpConfig{}};
    EXPECT_LE(udp.storageBits() / 8, 8u * 1024);
    EXPECT_GE(udp.storageBits() / 8, 2u * 1024);
}

TEST(UdpEngine, ResteerResetsConfidence)
{
    UdpEngine udp{UdpConfig{}};
    for (int i = 0; i < 20; ++i) {
        udp.onCondPredicted(Confidence::Low);
    }
    EXPECT_TRUE(udp.assumedOffPath());
    udp.onResteer();
    EXPECT_FALSE(udp.assumedOffPath());
}

// ------------------------------------------------------------------ UFTQ

TEST(Uftq, PolynomialMatchesPaperFormula)
{
    // Hand-computed reference values of the paper's regression.
    EXPECT_NEAR(UftqController::combine(32, 32), 19.84, 0.01);
    EXPECT_NEAR(UftqController::combine(60, 60), 54.0, 0.01);
    EXPECT_NEAR(UftqController::combine(0, 0), 0.0, 1e-9);
}

TEST(Uftq, AurRuleGrowsWhenUtilityHigh)
{
    Ftq ftq(128, 32);
    UftqConfig cfg;
    cfg.mode = UftqMode::Aur;
    cfg.epochPrefetches = 10;
    UftqController ctl(ftq, cfg);

    MemSysStats mem;
    CacheStats l1i;
    // Epoch with utility 1.0 (all prefetches consumed).
    mem.iprefIssued = 20;
    l1i.prefetchHits = 20;
    ctl.tick(mem, l1i);
    EXPECT_GT(ctl.currentDepth(), 32u);
    EXPECT_EQ(ftq.capacity(), ctl.currentDepth());
}

TEST(Uftq, AurRuleShrinksWhenUtilityLow)
{
    Ftq ftq(128, 32);
    UftqConfig cfg;
    cfg.mode = UftqMode::Aur;
    cfg.epochPrefetches = 10;
    UftqController ctl(ftq, cfg);

    MemSysStats mem;
    CacheStats l1i;
    mem.iprefIssued = 20;
    l1i.prefetchHits = 1;
    l1i.prefetchUnused = 19; // utility 0.05
    ctl.tick(mem, l1i);
    EXPECT_LT(ctl.currentDepth(), 32u);
}

TEST(Uftq, AtrRuleGrowsWhenPrefetchesLate)
{
    Ftq ftq(128, 32);
    UftqConfig cfg;
    cfg.mode = UftqMode::Atr;
    cfg.epochPrefetches = 10;
    UftqController ctl(ftq, cfg);

    MemSysStats mem;
    CacheStats l1i;
    mem.iprefIssued = 20;
    mem.ifetchTimelyPrefetchHits = 2;
    mem.pfMshrMergesHw = 18; // timeliness 0.1: very late
    ctl.tick(mem, l1i);
    EXPECT_GT(ctl.currentDepth(), 32u);
}

TEST(Uftq, DeadbandHolds)
{
    Ftq ftq(128, 32);
    UftqConfig cfg;
    cfg.mode = UftqMode::Aur;
    cfg.epochPrefetches = 10;
    cfg.aur = 0.65;
    cfg.deadband = 0.05;
    UftqController ctl(ftq, cfg);

    MemSysStats mem;
    CacheStats l1i;
    mem.iprefIssued = 100;
    l1i.prefetchHits = 66;
    l1i.prefetchUnused = 34; // utility 0.66: inside the deadband
    ctl.tick(mem, l1i);
    EXPECT_EQ(ctl.currentDepth(), 32u);
}

TEST(Uftq, RespectsPhysicalBound)
{
    Ftq ftq(64, 32);
    UftqConfig cfg;
    cfg.mode = UftqMode::Aur;
    cfg.epochPrefetches = 1;
    UftqController ctl(ftq, cfg);

    MemSysStats mem;
    CacheStats l1i;
    for (int i = 0; i < 50; ++i) {
        mem.iprefIssued += 10;
        l1i.prefetchHits += 10; // always perfect utility
        ctl.tick(mem, l1i);
    }
    EXPECT_LE(ctl.currentDepth(), 64u);
}

TEST(Uftq, AtrAurConvergesToCombination)
{
    Ftq ftq(128, 32);
    UftqConfig cfg;
    cfg.mode = UftqMode::AtrAur;
    cfg.epochPrefetches = 1;
    cfg.searchEpochs = 4;
    UftqController ctl(ftq, cfg);

    MemSysStats mem;
    CacheStats l1i;
    for (int i = 0; i < 10; ++i) {
        mem.iprefIssued += 10;
        l1i.prefetchHits += 8;
        l1i.prefetchUnused += 2;
        mem.ifetchTimelyPrefetchHits += 5;
        mem.pfMshrMergesHw += 5;
        ctl.tick(mem, l1i);
    }
    EXPECT_GE(ctl.stats().applies, 1u);
    EXPECT_GE(ctl.currentDepth(), cfg.minDepth);
}

} // namespace
} // namespace udp

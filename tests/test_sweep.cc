/**
 * @file
 * Tests for the parallel experiment engine (sim/sweep.h, sim/pool.h) and
 * the structured report sinks (stats/sink.h): serial-vs-parallel
 * determinism, result ordering, progress reporting, program-cache stress
 * (ThreadSanitizer-friendly) and schema stability.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/pool.h"
#include "sim/sweep.h"
#include "stats/sink.h"

namespace udp {
namespace {

RunOptions
tinyOptions()
{
    RunOptions o;
    o.warmupInstrs = 10'000;
    o.measureInstrs = 20'000;
    return o;
}

/** A small workload so each sweep job is fast. */
Profile
tinyProfile(const std::string& name, std::uint64_t seed)
{
    Profile p = profileByName("mediawiki");
    p.name = name;
    p.seed = seed;
    p.codeFootprintKB = 64;
    return p;
}

/** Every Report field the sinks serialize, compared exactly. */
void
expectIdenticalReports(const Report& a, const Report& b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.configName, b.configName);
    const StatSet sa = a.toStatSet();
    const StatSet sb = b.toStatSet();
    const auto& ea = sa.entries();
    const auto& eb = sb.entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].first, eb[i].first);
        // Bit-identical, not approximately equal: determinism invariant.
        EXPECT_EQ(ea[i].second, eb[i].second)
            << "stat " << ea[i].first << " differs for " << a.workload
            << "/" << a.configName;
    }
}

std::vector<SweepJob>
eightJobs()
{
    RunOptions o = tinyOptions();
    std::vector<SweepJob> jobs;
    for (std::uint64_t seed : {11u, 22u}) {
        Profile p = tinyProfile("sweeptest" + std::to_string(seed), seed);
        jobs.push_back({p, presets::fdipBaseline(), o, "fdip32"});
        jobs.push_back({p, presets::fdipWithFtq(64), o, "ftq64"});
        jobs.push_back({p, presets::udp8k(), o, "udp8k"});
        jobs.push_back({p, presets::noPrefetch(), o, "nopf"});
    }
    return jobs;
}

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 100);
    // wait() must be re-usable after more submissions.
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 101);
}

TEST(Sweep, SerialAndParallelReportsAreIdentical)
{
    std::vector<SweepJob> jobs = eightJobs();

    SweepOptions serial;
    serial.numThreads = 1;
    serial.quiet = true;
    std::vector<Report> a = SweepRunner(serial).run(jobs);

    SweepOptions parallel;
    parallel.numThreads = 4;
    parallel.quiet = true;
    std::vector<Report> b = SweepRunner(parallel).run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectIdenticalReports(a[i], b[i]);
    }
}

TEST(Sweep, ResultsKeepJobOrder)
{
    std::vector<SweepJob> jobs = eightJobs();
    SweepOptions opts;
    opts.numThreads = 4;
    opts.quiet = true;
    std::vector<Report> r = SweepRunner(opts).run(jobs);
    ASSERT_EQ(r.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(r[i].configName, jobs[i].label);
        EXPECT_EQ(r[i].workload, jobs[i].profile.name);
    }
}

TEST(Sweep, ProgressCallbackSeesEveryCompletion)
{
    std::vector<SweepJob> jobs = eightJobs();
    jobs.resize(3);

    std::vector<SweepProgress> seen;
    SweepOptions opts;
    opts.numThreads = 2;
    opts.onProgress = [&seen](const SweepProgress& p) {
        seen.push_back(p); // serialized by the runner's progress lock
    };
    SweepRunner(opts).run(jobs);

    ASSERT_EQ(seen.size(), jobs.size());
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].done, i + 1);
        EXPECT_EQ(seen[i].total, jobs.size());
        EXPECT_GE(seen[i].elapsedSec, 0.0);
        EXPECT_GE(seen[i].etaSec, 0.0);
    }
    EXPECT_EQ(seen.back().done, seen.back().total);
    EXPECT_DOUBLE_EQ(seen.back().etaSec, 0.0);
}

TEST(Sweep, SharedProgramCacheStress)
{
    // 8 concurrent jobs on one never-seen profile race to build its
    // Program: exactly one build must win and every job must simulate
    // the identical image. Run under -DUDP_SANITIZE=thread to verify.
    Profile p = tinyProfile("sweepstress-unique", 777);
    RunOptions o;
    o.warmupInstrs = 2'000;
    o.measureInstrs = 5'000;
    std::vector<SweepJob> jobs(8, SweepJob{p, presets::fdipBaseline(), o,
                                           "stress"});
    SweepOptions opts;
    opts.numThreads = 8;
    opts.quiet = true;
    std::vector<Report> r = SweepRunner(opts).run(jobs);
    ASSERT_EQ(r.size(), jobs.size());
    for (std::size_t i = 1; i < r.size(); ++i) {
        expectIdenticalReports(r[0], r[i]);
    }
}

TEST(Sweep, EmptyBatchReturnsEmpty)
{
    SweepOptions opts;
    opts.quiet = true;
    EXPECT_TRUE(SweepRunner(opts).run({}).empty());
}

TEST(Sweep, DefaultJobsHonoursEnv)
{
    setenv("UDP_JOBS", "3", 1);
    EXPECT_EQ(SweepRunner::defaultJobs(), 3u);
    setenv("UDP_JOBS", "garbage", 1);
    EXPECT_GE(SweepRunner::defaultJobs(), 1u); // warns, falls back to hw
    unsetenv("UDP_JOBS");
    EXPECT_GE(SweepRunner::defaultJobs(), 1u);
}

TEST(Sink, SchemaKeysMatchStatSetOrder)
{
    std::vector<std::string> keys = reportSchemaKeys();
    ASSERT_GE(keys.size(), 2u);
    EXPECT_EQ(keys[0], "workload");
    EXPECT_EQ(keys[1], "config");
    const StatSet stats = Report{}.toStatSet();
    const auto& entries = stats.entries();
    ASSERT_EQ(keys.size(), entries.size() + 2);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(keys[i + 2], entries[i].first);
    }
}

TEST(Sink, JsonLineAndCsvRowCarryTheValues)
{
    Report r;
    r.workload = "mysql";
    r.configName = "udp8k";
    r.instructions = 400'000;
    r.ipc = 1.5;

    std::string json = reportToJsonLine(r);
    EXPECT_NE(json.find("\"workload\":\"mysql\""), std::string::npos);
    EXPECT_NE(json.find("\"config\":\"udp8k\""), std::string::npos);
    EXPECT_NE(json.find("\"instructions\":400000"), std::string::npos);
    EXPECT_NE(json.find("\"ipc\":1.5"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');

    std::string row = reportToCsvRow(r);
    EXPECT_EQ(row.substr(0, 12), "mysql,udp8k,");
    // Same comma count as the header: schema-stable columns.
    auto commas = [](const std::string& s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(row), commas(reportCsvHeader()));
}

TEST(Sink, ReportJsonLineRoundTripsExactly)
{
    // A real simulation Report: every stat populated with non-trivial
    // doubles, the hard case for exact round-tripping.
    Profile p = tinyProfile("roundtrip", 9);
    Report r = runSim(p, presets::udp8k(), tinyOptions(), "udp8k");

    std::string line = reportToJsonLine(r);
    Report parsed;
    ASSERT_TRUE(reportFromJsonLine(line, &parsed));
    expectIdenticalReports(r, parsed);
    // Re-serializing reproduces the input byte for byte (shortest
    // round-trip float rendering) — the invariant the checkpoint
    // manifest's replay path and the isolation pipe rely on.
    EXPECT_EQ(reportToJsonLine(parsed), line);
}

TEST(Sink, ReportParserRejectsMalformedAndForeignLines)
{
    Report out;
    EXPECT_FALSE(reportFromJsonLine("", &out));
    EXPECT_FALSE(reportFromJsonLine("not json", &out));
    EXPECT_FALSE(reportFromJsonLine("{\"workload\":\"a\"", &out));
    // Failure rows share the stream but must not parse as Reports.
    FailureRow f;
    f.workload = "app";
    f.config = "cfg";
    f.errorKind = "crash";
    EXPECT_FALSE(reportFromJsonLine(failureToJsonLine(f), &out));
    // Unknown keys are a schema mismatch, not silently dropped data.
    EXPECT_FALSE(reportFromJsonLine(
        "{\"workload\":\"a\",\"config\":\"b\",\"bogus\":1}", &out));
}

TEST(Sink, RowsAreDurableWithoutClose)
{
    // Crash-safety: every row is flushed as one complete line the moment
    // it is written, so a sink whose process dies (SIGKILL — no
    // destructors) leaves parseable artifacts. Read the files back while
    // the sink is still open.
    Report r;
    r.workload = "app";
    r.configName = "cfg";
    r.cycles = 99;

    std::string json_path = ::testing::TempDir() + "durable.jsonl";
    std::string csv_path = ::testing::TempDir() + "durable.csv";
    ReportSink sink;
    ASSERT_TRUE(sink.openJson(json_path));
    ASSERT_TRUE(sink.openCsv(csv_path));
    sink.write(r);

    std::ifstream jf(json_path);
    std::string line;
    ASSERT_TRUE(std::getline(jf, line));
    EXPECT_EQ(line, reportToJsonLine(r));

    std::ifstream cf(csv_path);
    std::string header;
    std::string row;
    ASSERT_TRUE(std::getline(cf, header));
    ASSERT_TRUE(std::getline(cf, row));
    EXPECT_EQ(row, reportToCsvRow(r));

    sink.close();
    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
}

TEST(Sink, TruncatedArtifactStillYieldsEveryCompleteLine)
{
    // Simulate a crash mid-append: two complete lines plus a torn third.
    Report r1;
    r1.workload = "app1";
    r1.configName = "cfg";
    Report r2;
    r2.workload = "app2";
    r2.configName = "cfg";
    Report r3;
    r3.workload = "app3";
    r3.configName = "cfg";

    std::string path = ::testing::TempDir() + "truncated.jsonl";
    {
        std::ofstream out(path, std::ios::trunc);
        out << reportToJsonLine(r1) << '\n' << reportToJsonLine(r2) << '\n';
        std::string torn = reportToJsonLine(r3);
        out << torn.substr(0, torn.size() / 2);
    }

    std::ifstream in(path);
    std::string line;
    std::vector<Report> recovered;
    Report parsed;
    while (std::getline(in, line)) {
        if (reportFromJsonLine(line, &parsed)) {
            recovered.push_back(parsed);
        }
    }
    ASSERT_EQ(recovered.size(), 2u);
    EXPECT_EQ(recovered[0].workload, "app1");
    EXPECT_EQ(recovered[1].workload, "app2");
    std::remove(path.c_str());
}

TEST(Sink, JsonEscapeRoundTrips)
{
    for (const std::string s :
         {std::string("plain"), std::string("quote\"back\\slash"),
          std::string("line\nbreak\ttab\rcr"),
          std::string("ctrl\x01\x1f"), std::string("")}) {
        std::string unescaped;
        ASSERT_TRUE(jsonUnescape(jsonEscape(s), &unescaped));
        EXPECT_EQ(unescaped, s);
    }
    std::string out;
    EXPECT_FALSE(jsonUnescape("bad\\", &out));
    EXPECT_FALSE(jsonUnescape("bad\\q", &out));
}

TEST(Sink, WritesJsonlAndCsvFiles)
{
    Report r;
    r.workload = "app";
    r.configName = "cfg";
    r.cycles = 123;

    std::string json_path = ::testing::TempDir() + "sink_test.jsonl";
    std::string csv_path = ::testing::TempDir() + "sink_test.csv";
    ReportSink sink;
    ASSERT_TRUE(sink.openJson(json_path));
    ASSERT_TRUE(sink.openCsv(csv_path));
    EXPECT_TRUE(sink.active());
    sink.writeAll({r, r});
    sink.close();

    std::ifstream jf(json_path);
    std::string l1;
    std::string l2;
    ASSERT_TRUE(std::getline(jf, l1));
    ASSERT_TRUE(std::getline(jf, l2));
    EXPECT_EQ(l1, l2);
    EXPECT_EQ(l1, reportToJsonLine(r));

    std::ifstream cf(csv_path);
    std::string header;
    ASSERT_TRUE(std::getline(cf, header));
    EXPECT_EQ(header, reportCsvHeader());
    std::string row;
    ASSERT_TRUE(std::getline(cf, row));
    EXPECT_EQ(row, reportToCsvRow(r));

    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
}

} // namespace
} // namespace udp

/**
 * @file
 * System-level invariant checks on a live Cpu: structural properties of
 * the FTQ contents, ground-truth alignment of on-path-tagged
 * instructions, and UDP's off-path-assumption tagging — sampled across
 * thousands of cycles of real execution.
 */

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "workload/builder.h"

namespace udp {
namespace {

const Program&
invariantProgram()
{
    static Program prog = [] {
        Profile p = profileByName("mysql");
        p.codeFootprintKB = 128;
        p.name = "mysql-invariants";
        return ProgramBuilder::build(p);
    }();
    return prog;
}

TEST(SystemInvariants, FtqEntriesAreWellFormed)
{
    Cpu cpu(invariantProgram(), presets::fdipBaseline());
    const Program& prog = invariantProgram();

    for (int burst = 0; burst < 200; ++burst) {
        for (int c = 0; c < 50; ++c) {
            cpu.cycle();
        }
        const Ftq& ftq = cpu.ftq();
        for (std::size_t i = 0; i < ftq.size(); ++i) {
            const FtqEntry& e = ftq.at(i);
            ASSERT_GE(e.numInstrs, 1u);
            ASSERT_LE(e.numInstrs, kInstrsPerFetchBlock);
            // All instruction pcs must be valid program addresses, and the
            // first must match the block start.
            ASSERT_EQ(e.instrs[0].pc, e.startPc);
            for (unsigned k = 0; k < e.numInstrs; ++k) {
                ASSERT_TRUE(prog.validPc(e.instrs[k].pc));
            }
            // The block never straddles a cache line — except for the
            // rare wrong-path wrap-around (a speculative pc running off
            // the image wraps to the code base mid-block).
            if (e.instrs[e.numInstrs - 1].pc >= e.startPc) {
                ASSERT_EQ(lineAddr(e.startPc),
                          lineAddr(e.instrs[e.numInstrs - 1].pc));
            }
        }
    }
}

TEST(SystemInvariants, OffPathIsAPrefixProperty)
{
    // Within one fetch block, once an instruction is off-path every
    // younger instruction in that block is off-path too (divergence
    // never heals inside a block).
    Cpu cpu(invariantProgram(), presets::fdipBaseline());
    std::uint64_t blocks_checked = 0;
    for (int burst = 0; burst < 300; ++burst) {
        for (int c = 0; c < 40; ++c) {
            cpu.cycle();
        }
        const Ftq& ftq = cpu.ftq();
        for (std::size_t i = 0; i < ftq.size(); ++i) {
            const FtqEntry& e = ftq.at(i);
            bool seen_off = false;
            for (unsigned k = 0; k < e.numInstrs; ++k) {
                if (seen_off) {
                    ASSERT_FALSE(e.instrs[k].onPath);
                }
                seen_off |= !e.instrs[k].onPath;
            }
            ++blocks_checked;
        }
    }
    EXPECT_GT(blocks_checked, 100u);
}

TEST(SystemInvariants, DynIdsStrictlyIncreaseThroughFtq)
{
    Cpu cpu(invariantProgram(), presets::fdipBaseline());
    for (int burst = 0; burst < 100; ++burst) {
        for (int c = 0; c < 40; ++c) {
            cpu.cycle();
        }
        const Ftq& ftq = cpu.ftq();
        std::uint64_t last = 0;
        for (std::size_t i = 0; i < ftq.size(); ++i) {
            const FtqEntry& e = ftq.at(i);
            for (unsigned k = 0; k < e.numInstrs; ++k) {
                ASSERT_GT(e.instrs[k].dynId, last);
                last = e.instrs[k].dynId;
            }
        }
    }
}

TEST(SystemInvariants, UdpTagsBlocksUnderLowConfidence)
{
    // On a branchy low-bias workload the confidence counter must tag a
    // meaningful share of blocks assumed-off-path.
    Profile p = profileByName("xgboost");
    p.codeFootprintKB = 256;
    p.name = "xgboost-invariants";
    Program prog = ProgramBuilder::build(p);
    Cpu cpu(prog, presets::udp8k());

    std::uint64_t tagged = 0;
    std::uint64_t total = 0;
    for (int burst = 0; burst < 200; ++burst) {
        for (int c = 0; c < 25; ++c) {
            cpu.cycle();
        }
        const Ftq& ftq = cpu.ftq();
        for (std::size_t i = 0; i < ftq.size(); ++i) {
            ++total;
            tagged += cpu.ftq().at(i).assumedOffPath;
        }
    }
    ASSERT_GT(total, 200u);
    EXPECT_GT(static_cast<double>(tagged) / static_cast<double>(total),
              0.2);
}

TEST(SystemInvariants, RetiredNeverExceedsFetched)
{
    Cpu cpu(invariantProgram(), presets::fdipBaseline());
    for (int c = 0; c < 20'000; ++c) {
        cpu.cycle();
        if ((c & 1023) == 0) {
            ASSERT_LE(cpu.retired(), cpu.frontend().stats().instrsEmitted);
        }
    }
    EXPECT_GT(cpu.retired(), 0u);
}

TEST(SystemInvariants, PrefetchAccountingBalances)
{
    Cpu cpu(invariantProgram(), presets::fdipBaseline());
    for (int c = 0; c < 30'000; ++c) {
        cpu.cycle();
    }
    const MemSysStats& m = cpu.mem().stats();
    const FdipStats& f = cpu.fdip().stats();
    // Every FDIP emission is an Issued or DemotedL2 memsys event.
    EXPECT_EQ(f.emitted, m.iprefIssued + m.iprefDemotedL2);
    // Hardware-useful prefetches can never exceed issues into L1I.
    const CacheStats& l1i = cpu.mem().l1iStats();
    EXPECT_LE(l1i.prefetchHits + m.pfMshrMergesHw,
              m.iprefIssued + m.ifetchMisses);
}

} // namespace
} // namespace udp

/**
 * @file
 * Tests for the workload subsystem: outcome models, program builder,
 * walker semantics and the true-stream window.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/builder.h"
#include "workload/profile.h"
#include "workload/true_stream.h"

namespace udp {
namespace {

// ---------------------------------------------------------------- outcomes

TEST(Outcome, BiasedMatchesProbability)
{
    BranchBehavior b;
    b.cls = BranchClass::Biased;
    b.takenProb = 0.8f;
    b.seed = 99;
    int taken = 0;
    for (std::uint64_t i = 0; i < 20000; ++i) {
        taken += condOutcome(b, 0, i);
    }
    EXPECT_NEAR(taken / 20000.0, 0.8, 0.02);
}

TEST(Outcome, BiasedIsDeterministic)
{
    BranchBehavior b;
    b.cls = BranchClass::Biased;
    b.takenProb = 0.5f;
    b.seed = 7;
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(condOutcome(b, 0, i), condOutcome(b, 0, i));
    }
}

TEST(Outcome, PatternDependsOnlyOnMaskedHistory)
{
    BranchBehavior b;
    b.cls = BranchClass::Pattern;
    b.historyBits = 4;
    b.seed = 5;
    // Bits above the mask must not matter.
    EXPECT_EQ(condOutcome(b, 0b0101, 0), condOutcome(b, 0xff0101, 1));
    // A pattern branch is a deterministic function of history.
    for (std::uint64_t h = 0; h < 16; ++h) {
        EXPECT_EQ(condOutcome(b, h, 3), condOutcome(b, h, 77));
    }
}

TEST(Outcome, LoopTripCount)
{
    BranchBehavior b;
    b.cls = BranchClass::Loop;
    b.trip = 5;
    b.seed = 1;
    // Taken 4 times, then not taken, repeating.
    for (std::uint64_t i = 0; i < 20; ++i) {
        bool expect_taken = (i % 5) != 4;
        EXPECT_EQ(condOutcome(b, 0, i), expect_taken) << "iteration " << i;
    }
}

TEST(Outcome, NoiseFlipsApproximatelyAtRate)
{
    BranchBehavior b;
    b.cls = BranchClass::Loop;
    b.trip = 2;
    b.noise = 0.1f;
    b.seed = 3;
    int flips = 0;
    for (std::uint64_t i = 0; i < 20000; ++i) {
        bool base = (i % 2) != 1;
        if (condOutcome(b, 0, i) != base) {
            ++flips;
        }
    }
    EXPECT_NEAR(flips / 20000.0, 0.1, 0.02);
}

TEST(Outcome, WrongPathLoopDegradesToBias)
{
    BranchBehavior b;
    b.cls = BranchClass::Loop;
    b.trip = 4;
    b.seed = 9;
    int taken = 0;
    for (std::uint64_t i = 0; i < 20000; ++i) {
        taken += condOutcomeWrongPath(b, i * 1337, i);
    }
    EXPECT_NEAR(taken / 20000.0, 0.75, 0.03);
}

TEST(Outcome, IndirectChoiceInRange)
{
    IndirectBehavior b;
    b.numTargets = 7;
    b.seed = 4;
    b.historyBits = 8;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        EXPECT_LT(indirectChoice(b, i, i), 7u);
        EXPECT_LT(indirectChoiceWrongPath(b, i, i), 7u);
    }
}

TEST(Outcome, IndirectHistoryDriven)
{
    IndirectBehavior b;
    b.numTargets = 16;
    b.seed = 8;
    b.historyBits = 6;
    b.noise = 0.0f;
    // Same masked history -> same target.
    EXPECT_EQ(indirectChoice(b, 0x2a, 1), indirectChoice(b, 0xff2a, 2));
}

TEST(Outcome, SingleTargetAlwaysZero)
{
    IndirectBehavior b;
    b.numTargets = 1;
    EXPECT_EQ(indirectChoice(b, 123, 456), 0u);
}

TEST(Outcome, MemStride)
{
    MemPattern p;
    p.base = 0x1000;
    p.size = 256;
    p.stride = 16;
    EXPECT_EQ(memAddress(p, 0), 0x1000u);
    EXPECT_EQ(memAddress(p, 1), 0x1010u);
    EXPECT_EQ(memAddress(p, 16), 0x1000u); // wraps at region size
}

TEST(Outcome, MemRandomStaysInRegion)
{
    MemPattern p;
    p.base = 0x8000;
    p.size = 4096;
    p.stride = 0;
    p.seed = 5;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        Addr a = memAddress(p, i);
        EXPECT_GE(a, p.base);
        EXPECT_LT(a, p.base + p.size);
        EXPECT_EQ(a % 8, 0u);
    }
}

// ---------------------------------------------------------------- builder

class BuilderAllProfiles : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BuilderAllProfiles, BuildsValidProgram)
{
    const Profile& p = profileByName(GetParam());
    Program prog = ProgramBuilder::build(p);
    EXPECT_EQ(prog.validate(), "");
    EXPECT_GT(prog.numInstrs(), 1000u);
    // Footprint within 25% of the requested size.
    double want = static_cast<double>(p.codeFootprintKB) * 1024;
    EXPECT_NEAR(static_cast<double>(prog.codeBytes()), want, want * 0.25);
    EXPECT_LT(prog.entry(), prog.numInstrs());
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, BuilderAllProfiles,
    ::testing::Values("mysql", "postgres", "clang", "gcc", "drupal",
                      "verilator", "mongodb", "tomcat", "xgboost",
                      "mediawiki"));

TEST(Builder, DeterministicForSameSeed)
{
    Profile p = profileByName("mysql");
    p.codeFootprintKB = 64;
    Program a = ProgramBuilder::build(p);
    Program b = ProgramBuilder::build(p);
    ASSERT_EQ(a.numInstrs(), b.numInstrs());
    for (InstIdx i = 0; i < a.numInstrs(); i += 37) {
        EXPECT_EQ(a.instrAt(i).type, b.instrAt(i).type);
        EXPECT_EQ(a.instrAt(i).branch, b.instrAt(i).branch);
        EXPECT_EQ(a.instrAt(i).target, b.instrAt(i).target);
    }
}

TEST(Builder, DifferentSeedsDiffer)
{
    Profile p = profileByName("mysql");
    p.codeFootprintKB = 64;
    Program a = ProgramBuilder::build(p);
    p.seed = 9999;
    Program b = ProgramBuilder::build(p);
    bool any_diff = a.numInstrs() != b.numInstrs();
    for (InstIdx i = 0; !any_diff && i < std::min(a.numInstrs(),
                                                  b.numInstrs());
         ++i) {
        any_diff = a.instrAt(i).type != b.instrAt(i).type ||
                   a.instrAt(i).branch != b.instrAt(i).branch;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Builder, BranchDensityTracksRunLength)
{
    Profile p;
    p.name = "dense";
    p.seed = 3;
    p.codeFootprintKB = 64;
    p.runLenMin = 2;
    p.runLenMax = 4;
    Program dense = ProgramBuilder::build(p);

    p.name = "sparse";
    p.runLenMin = 20;
    p.runLenMax = 40;
    Program sparse = ProgramBuilder::build(p);

    double dense_br = static_cast<double>(dense.numStaticBranches()) /
                      static_cast<double>(dense.numInstrs());
    double sparse_br = static_cast<double>(sparse.numStaticBranches()) /
                       static_cast<double>(sparse.numInstrs());
    EXPECT_GT(dense_br, sparse_br * 1.5);
}

TEST(Builder, MemPatternPoolBounded)
{
    Profile p;
    p.seed = 4;
    p.codeFootprintKB = 128;
    p.memPatternPool = 16;
    Program prog = ProgramBuilder::build(p);
    // Diamond load-dep emission may add a handful above the pool bound
    // before the pool fills; it must stay in the same order of magnitude.
    EXPECT_LE(prog.numMemPatterns(), 24u);
}

// ---------------------------------------------------------------- walker

TEST(Walker, FollowsStaticSemantics)
{
    Profile p = profileByName("mysql");
    p.codeFootprintKB = 64;
    Program prog = ProgramBuilder::build(p);
    Walker w(prog);
    for (int i = 0; i < 50000; ++i) {
        ArchInstr a = w.step();
        const Instr& in = prog.instrAt(a.idx);
        switch (in.branch) {
          case BranchKind::None:
            EXPECT_EQ(a.nextPc, a.pc + kInstrBytes);
            break;
          case BranchKind::CondDirect:
            if (a.taken) {
                EXPECT_EQ(a.nextPc, prog.pcOf(in.target));
            } else {
                EXPECT_EQ(a.nextPc, a.pc + kInstrBytes);
            }
            break;
          case BranchKind::Jump:
          case BranchKind::Call:
            EXPECT_EQ(a.nextPc, prog.pcOf(in.target));
            break;
          default:
            EXPECT_TRUE(a.taken);
            EXPECT_EQ(a.nextPc, a.takenTarget);
            break;
        }
        EXPECT_TRUE(prog.validPc(a.nextPc));
    }
}

TEST(Walker, CallsAndReturnsMatch)
{
    Profile p = profileByName("mysql");
    p.codeFootprintKB = 64;
    Program prog = ProgramBuilder::build(p);
    Walker w(prog);
    // Track call/return pairing: after a call at pc X, the matching
    // return must land at X+4.
    std::vector<Addr> expected_returns;
    int checked = 0;
    for (int i = 0; i < 100000 && checked < 100; ++i) {
        ArchInstr a = w.step();
        const Instr& in = prog.instrAt(a.idx);
        if (isCall(in.branch)) {
            expected_returns.push_back(a.pc + kInstrBytes);
        } else if (in.branch == BranchKind::Return &&
                   !expected_returns.empty()) {
            EXPECT_EQ(a.nextPc, expected_returns.back());
            expected_returns.pop_back();
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(Walker, MemAddressesOnlyForMemOps)
{
    Profile p = profileByName("postgres");
    p.codeFootprintKB = 64;
    Program prog = ProgramBuilder::build(p);
    Walker w(prog);
    for (int i = 0; i < 20000; ++i) {
        ArchInstr a = w.step();
        const Instr& in = prog.instrAt(a.idx);
        bool is_mem = in.type == InstrType::Load ||
                      in.type == InstrType::Store;
        EXPECT_EQ(a.memAddr != kInvalidAddr, is_mem);
    }
}

TEST(Walker, DeterministicReplay)
{
    Profile p = profileByName("drupal");
    p.codeFootprintKB = 64;
    Program prog = ProgramBuilder::build(p);
    Walker a(prog);
    Walker b(prog);
    for (int i = 0; i < 20000; ++i) {
        ArchInstr x = a.step();
        ArchInstr y = b.step();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.nextPc, y.nextPc);
        ASSERT_EQ(x.memAddr, y.memAddr);
    }
}

// ------------------------------------------------------------ true stream

TEST(TrueStream, MatchesFreshWalker)
{
    Profile p = profileByName("tomcat");
    p.codeFootprintKB = 64;
    Program prog = ProgramBuilder::build(p);
    TrueStream s(prog);
    Walker w(prog);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        ArchInstr expect = w.step();
        EXPECT_EQ(s.at(i).pc, expect.pc);
        EXPECT_EQ(s.at(i).nextPc, expect.nextPc);
    }
}

TEST(TrueStream, RandomAccessWithinWindow)
{
    Profile p = profileByName("tomcat");
    p.codeFootprintKB = 64;
    Program prog = ProgramBuilder::build(p);
    TrueStream s(prog);
    Addr pc100 = s.at(100).pc;
    Addr pc50 = s.at(50).pc;
    EXPECT_EQ(s.at(100).pc, pc100);
    EXPECT_EQ(s.at(50).pc, pc50);
}

TEST(TrueStream, RetireBelowShrinksWindow)
{
    Profile p = profileByName("tomcat");
    p.codeFootprintKB = 64;
    Program prog = ProgramBuilder::build(p);
    TrueStream s(prog);
    s.at(999);
    EXPECT_EQ(s.windowSize(), 1000u);
    s.retireBelow(500);
    EXPECT_EQ(s.firstLive(), 500u);
    EXPECT_EQ(s.windowSize(), 500u);
    EXPECT_NE(s.at(500).pc, kInvalidAddr);
}

// ---------------------------------------------------------------- program

TEST(Program, PcIndexRoundTrip)
{
    Profile p = profileByName("mysql");
    p.codeFootprintKB = 64;
    Program prog = ProgramBuilder::build(p);
    for (InstIdx i = 0; i < prog.numInstrs(); i += 101) {
        EXPECT_EQ(prog.indexOf(prog.pcOf(i)), i);
        EXPECT_TRUE(prog.validPc(prog.pcOf(i)));
    }
    EXPECT_FALSE(prog.validPc(prog.kCodeBase - 4));
    EXPECT_FALSE(prog.validPc(prog.kCodeBase + prog.codeBytes()));
    EXPECT_FALSE(prog.validPc(prog.kCodeBase + 2)); // misaligned
}

TEST(Program, ValidateCatchesBadTarget)
{
    std::vector<Instr> instrs(4);
    instrs[0].type = InstrType::Branch;
    instrs[0].branch = BranchKind::Jump;
    instrs[0].target = 1000; // out of range
    Program prog = Program::assemble("bad", std::move(instrs), 0, {}, {},
                                     {}, {});
    EXPECT_NE(prog.validate(), "");
}

TEST(Program, ValidateCatchesKindMismatch)
{
    std::vector<Instr> instrs(2);
    instrs[0].type = InstrType::Alu;
    instrs[0].branch = BranchKind::Jump; // mismatch: Alu can't be a branch
    instrs[0].target = 1;
    Program prog = Program::assemble("bad", std::move(instrs), 0, {}, {},
                                     {}, {});
    EXPECT_NE(prog.validate(), "");
}

TEST(Profiles, AllTenPresent)
{
    EXPECT_EQ(datacenterProfiles().size(), 10u);
    EXPECT_THROW(profileByName("nonexistent"), std::out_of_range);
}

} // namespace
} // namespace udp

/**
 * @file
 * Unit tests for the out-of-order backend: dispatch admission, dataflow
 * scheduling, functional-unit limits, branch resolution, recovery/squash
 * and in-order retirement — driven directly through the Backend API with
 * a hand-crafted program.
 */

#include <gtest/gtest.h>

#include "backend/backend.h"

namespace udp {
namespace {

/**
 * Program used by backend tests:
 *   0..7   alu
 *   8      cond branch (Loop trip 1000 -> effectively always taken) -> 0
 *   9..15  alu (sequential tail)
 */
Program
backendProgram()
{
    std::vector<Instr> ins(16);
    ins[8].type = InstrType::Branch;
    ins[8].branch = BranchKind::CondDirect;
    ins[8].target = 0;
    ins[8].behavior = 0;
    ins[4].type = InstrType::Load;
    ins[4].behavior = 0;
    BranchBehavior loop;
    loop.cls = BranchClass::Loop;
    loop.trip = 1000;
    MemPattern mp;
    mp.base = Program::kDataBase;
    mp.size = 4096;
    mp.stride = 64;
    Program p = Program::assemble("be", std::move(ins), 0, {loop}, {}, {},
                                  {mp});
    EXPECT_EQ(p.validate(), "");
    return p;
}

struct BackendHarness
{
    Program prog = backendProgram();
    TrueStream stream{prog};
    MemSystem mem{MemSysConfig{}};
    Bpu bpu{BpuConfig{}};
    BranchRecordMap records;
    BackendConfig cfg;
    std::unique_ptr<Backend> be;

    BackendHarness()
    {
        be = std::make_unique<Backend>(prog, stream, mem, bpu, records,
                                       cfg);
    }

    /** Builds the DecodedInstr for true-stream position @p i. */
    DecodedInstr
    decoded(std::uint64_t i, Cycle ready = 0)
    {
        const ArchInstr& a = stream.at(i);
        const Instr& sin = prog.instrAt(a.idx);
        DecodedInstr di;
        di.dynId = i + 1;
        di.idx = a.idx;
        di.pc = a.pc;
        di.type = sin.type;
        di.kind = sin.branch;
        di.execLat = sin.execLat;
        di.dep1 = sin.dep1;
        di.dep2 = sin.dep2;
        di.behavior = sin.behavior;
        di.onPath = true;
        di.streamIdx = i;
        di.readyAt = ready;
        if (sin.branch == BranchKind::CondDirect) {
            di.predictedBranch = true;
            BranchRecord rec;
            rec.kind = sin.branch;
            rec.ckpt = bpu.checkpoint();
            rec.cond = bpu.predictCond(di.pc);
            di.predTaken = rec.cond.taken;
            di.predTarget = prog.pcOf(sin.target);
            records.emplace(di.dynId, std::move(rec));
        }
        return di;
    }
};

TEST(Backend, DispatchAdmissionLimits)
{
    BackendHarness h;
    // Fill the ROB to its limit with simple ALU ops.
    std::uint64_t i = 0;
    unsigned dispatched = 0;
    Cycle now = 1;
    while (true) {
        DecodedInstr di = h.decoded(i);
        if (di.kind != BranchKind::None) {
            ++i;
            continue; // keep it branch-free: no retirement progress needed
        }
        if (!h.be->canDispatch(di)) {
            break;
        }
        h.be->dispatch(di, now);
        ++dispatched;
        ++i;
        if (dispatched > 500) {
            break;
        }
    }
    // The unified RS (125) binds before the ROB (352) without issue.
    EXPECT_EQ(dispatched, h.cfg.rsSize);
}

TEST(Backend, RetiresInOrderAndCounts)
{
    BackendHarness h;
    Cycle now = 1;
    for (std::uint64_t i = 0; i < 6; ++i) {
        h.be->dispatch(h.decoded(i), now);
    }
    std::uint64_t before = h.be->retired();
    for (now = 2; now < 600 && h.be->retired() < before + 6; ++now) {
        h.be->tick(now);
    }
    EXPECT_EQ(h.be->retired(), before + 6);
    EXPECT_EQ(h.be->robOccupancy(), 0u);
}

TEST(Backend, RetireHookSeesEveryPc)
{
    BackendHarness h;
    std::vector<Addr> retired_pcs;
    h.be->onRetirePc = [&](Addr pc) { retired_pcs.push_back(pc); };
    Cycle now = 1;
    for (std::uint64_t i = 0; i < 4; ++i) {
        h.be->dispatch(h.decoded(i), now);
    }
    for (now = 2; now < 600; ++now) {
        h.be->tick(now);
    }
    ASSERT_EQ(retired_pcs.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(retired_pcs[i], h.stream.at(i).pc);
    }
}

TEST(Backend, IssueWidthBoundsThroughput)
{
    BackendHarness h;
    Cycle now = 1;
    unsigned count = 0;
    for (std::uint64_t i = 0; count < 60; ++i) {
        DecodedInstr di = h.decoded(i);
        if (di.kind != BranchKind::None || di.type != InstrType::Alu) {
            continue;
        }
        di.dep1 = 0;
        di.dep2 = 0;
        if (h.be->canDispatch(di)) {
            h.be->dispatch(di, now);
            ++count;
        }
    }
    h.be->tick(now);
    // Only numAlu can issue per cycle even though 60 are ready.
    EXPECT_EQ(h.be->stats().issued, h.cfg.numAlu);
}

TEST(Backend, DependenceDelaysIssue)
{
    BackendHarness h;
    Cycle now = 1;
    // Producer: a load (long latency). Consumer: depends on it.
    DecodedInstr ld = h.decoded(4); // the load at index 4
    ASSERT_EQ(ld.type, InstrType::Load);
    ld.dep1 = 0;
    ld.dep2 = 0;
    h.be->dispatch(ld, now);
    DecodedInstr use = h.decoded(5);
    use.dep1 = 1; // depends on the load
    use.dep2 = 0;
    h.be->dispatch(use, now);

    h.be->tick(now); // load issues; consumer must wait
    EXPECT_EQ(h.be->stats().issued, 1u);
    // Run until both retire; the consumer needed the load's completion.
    for (now = 2; now < 500 && h.be->retired() < 2; ++now) {
        h.be->tick(now);
    }
    EXPECT_EQ(h.be->retired(), 2u);
}

TEST(Backend, CorrectPredictionNoResteer)
{
    BackendHarness h;
    Cycle now = 1;
    // Warm the direction so TAGE predicts taken (loop trip 1000).
    for (std::uint64_t i = 0; i < 9; ++i) {
        h.be->dispatch(h.decoded(i), now);
    }
    bool resteer_seen = false;
    for (now = 2; now < 600; ++now) {
        ResteerRequest r = h.be->tick(now);
        resteer_seen |= r.valid && !h.records.empty();
        if (h.be->robOccupancy() == 0) {
            break;
        }
    }
    // The branch may mispredict cold exactly once; after training the
    // predictor the stream's branch is always taken. Just assert the
    // backend resolved it and retired everything.
    EXPECT_GT(h.be->stats().branchesResolved, 0u);
    EXPECT_EQ(h.be->robOccupancy(), 0u);
    (void)resteer_seen;
}

TEST(Backend, MispredictSquashesYounger)
{
    BackendHarness h;
    Cycle now = 1;
    // Dispatch the on-path branch but force a wrong prediction.
    for (std::uint64_t i = 0; i < 8; ++i) {
        h.be->dispatch(h.decoded(i), now);
    }
    DecodedInstr br = h.decoded(8);
    br.predTaken = false; // truth: taken (trip-1000 loop)
    br.predTarget = kInvalidAddr;
    h.be->dispatch(br, now);
    // "Wrong path" youngsters that must be squashed.
    for (std::uint64_t fake = 100; fake < 110; ++fake) {
        DecodedInstr wp = h.decoded(9); // any instruction
        wp.dynId = fake + 1000;
        wp.onPath = false;
        if (h.be->canDispatch(wp)) {
            h.be->dispatch(wp, now);
        }
    }
    std::size_t occupancy_before = h.be->robOccupancy();
    ResteerRequest req;
    for (now = 2; now < 100 && !req.valid; ++now) {
        req = h.be->tick(now);
    }
    ASSERT_TRUE(req.valid);
    EXPECT_TRUE(req.aligned);          // on-path branch recovery
    EXPECT_EQ(req.nextStreamIdx, 9u);  // resumes after the branch
    EXPECT_EQ(req.newPc, h.stream.at(8).nextPc);
    EXPECT_GT(h.be->stats().squashed, 0u);
    EXPECT_LT(h.be->robOccupancy(), occupancy_before);
}

TEST(Backend, LoadStoreQueueLimits)
{
    BackendHarness h;
    Cycle now = 1;
    unsigned loads = 0;
    // Dispatch loads only until refused.
    while (true) {
        DecodedInstr ld = h.decoded(4);
        ld.dynId = 10'000 + loads;
        ld.dep1 = 0;
        ld.dep2 = 0;
        if (!h.be->canDispatch(ld)) {
            break;
        }
        h.be->dispatch(ld, now);
        if (++loads > 200) {
            break;
        }
    }
    EXPECT_EQ(loads, h.cfg.lqSize);
}

} // namespace
} // namespace udp

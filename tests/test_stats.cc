/**
 * @file
 * Unit tests for the stats module (StatSet, Table, ratio helper).
 */

#include <gtest/gtest.h>

#include "stats/stats.h"
#include "stats/table.h"

namespace udp {
namespace {

TEST(StatSet, AddAndGet)
{
    StatSet s;
    s.add("ipc", 1.5);
    s.add("mpki", 12.0);
    bool found = false;
    EXPECT_DOUBLE_EQ(s.get("ipc", &found), 1.5);
    EXPECT_TRUE(found);
    EXPECT_DOUBLE_EQ(s.get("mpki"), 12.0);
}

TEST(StatSet, MissingReturnsZero)
{
    StatSet s;
    bool found = true;
    EXPECT_DOUBLE_EQ(s.get("nope", &found), 0.0);
    EXPECT_FALSE(found);
    EXPECT_FALSE(s.has("nope"));
}

TEST(StatSet, PreservesInsertionOrder)
{
    StatSet s;
    s.add("b", 2);
    s.add("a", 1);
    ASSERT_EQ(s.entries().size(), 2u);
    EXPECT_EQ(s.entries()[0].first, "b");
    EXPECT_EQ(s.entries()[1].first, "a");
}

TEST(StatSet, ToStringContainsEntries)
{
    StatSet s;
    s.add("x", 7);
    std::string str = s.toString();
    EXPECT_NE(str.find("x = 7"), std::string::npos);
}

TEST(Ratio, HandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(5, 10), 0.5);
}

TEST(Table, AsciiRendering)
{
    Table t({"name", "value"});
    t.beginRow();
    t.cell(std::string("alpha"));
    t.cell(3.14159, 2);
    std::string out = t.toAscii();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
}

TEST(Table, CsvRendering)
{
    Table t({"a", "b"});
    t.beginRow();
    t.cell(std::uint64_t{1});
    t.cell(std::uint64_t{2});
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n");
}

TEST(Table, NumRows)
{
    Table t({"x"});
    EXPECT_EQ(t.numRows(), 0u);
    t.beginRow();
    t.cell(1);
    t.beginRow();
    t.cell(2);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, IntCells)
{
    Table t({"i", "u"});
    t.beginRow();
    t.cell(-5);
    t.cell(std::uint64_t{99});
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("-5,99"), std::string::npos);
}

} // namespace
} // namespace udp

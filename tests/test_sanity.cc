#include <gtest/gtest.h>

#include "common/rng.h"

namespace udp {

TEST(Sanity, MixerSeparates)
{
    EXPECT_NE(mix64(1), mix64(2));
}

} // namespace udp

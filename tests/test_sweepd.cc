/**
 * @file
 * Tests for the distributed sweep service: the lease state machine
 * (sim/lease.h — expiry/reclaim, bounded retries with deterministic
 * backoff, straggler duplication with first-completion-wins, idempotent
 * completion), the sweep-spec round trip and its deterministic
 * expansion (sim/sweepd.h), both work-queue transports (sim/workqueue.h),
 * and the coordinator/worker integration: distributed runs — including
 * one with a worker SIGKILLed mid-job — produce Reports byte-identical
 * to a serial in-process run, and a restarted coordinator resumes from
 * its checkpoint manifest without re-running completed jobs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "sim/lease.h"
#include "sim/manifest.h"
#include "sim/procexec.h"
#include "sim/sweep.h"
#include "sim/sweepd.h"
#include "sim/workqueue.h"
#include "stats/sink.h"

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace udp {
namespace {

// --- helpers ---------------------------------------------------------------

std::string
freshDir(const std::string& tag)
{
    namespace fs = std::filesystem;
#ifndef _WIN32
    std::string pid = std::to_string(::getpid());
#else
    std::string pid = "0";
#endif
    fs::path p = fs::temp_directory_path() /
                 ("udp_sweepd_test_" + tag + "_" + pid);
    fs::remove_all(p);
    fs::create_directories(p);
    return p.string();
}

/** The sweep every integration test runs: 2 workloads x 2 configs at a
 *  tiny instruction window, so one serial pass is the byte-identity
 *  reference for every distributed variant. */
SweepSpec
tinySpec()
{
    SweepSpec s;
    s.name = "tiny";
    s.warmupInstrs = 5'000;
    s.measureInstrs = 10'000;
    s.workloads = {"mediawiki", "drupal"};
    s.configs = {{"fdip32", "fdip", 0}, {"udp8k", "udp8k", 0}};
    return s;
}

std::vector<SweepJob>
tinyJobs()
{
    std::vector<SweepJob> jobs;
    std::string err;
    EXPECT_TRUE(expandSweepSpec(tinySpec(), &jobs, &err)) << err;
    return jobs;
}

/** Serial in-process reference: one JSON line per job, in job order. */
std::vector<std::string>
serialReference(const std::vector<SweepJob>& jobs)
{
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        JobResult jr = runJobChecked(jobs[i], i);
        EXPECT_TRUE(jr.ok) << jr.error.message;
        lines.push_back(reportToJsonLine(jr.report));
    }
    return lines;
}

void
expectByteIdentical(const std::vector<SweepJob>& jobs,
                    const std::vector<JobResult>& results,
                    const std::vector<std::string>& reference)
{
    ASSERT_EQ(results.size(), jobs.size());
    ASSERT_EQ(reference.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok)
            << "job " << i << " failed: " << results[i].error.kind << " "
            << results[i].error.message;
        EXPECT_EQ(reportToJsonLine(results[i].report), reference[i])
            << "job " << i << " not byte-identical to serial run";
    }
}

LeasePolicy
fastPolicy()
{
    LeasePolicy p;
    p.leaseTtlSec = 1.0;
    p.maxAttempts = 3;
    p.backoffBaseSec = 0.05;
    p.backoffCapSec = 0.2;
    p.stragglerAfterSec = 0.5;
    p.noWorkRetrySec = 0.02;
    return p;
}

// --- LeaseTable: the pure state machine ------------------------------------

TEST(LeaseTable, ClaimExecuteCompleteDrains)
{
    LeaseTable t({11, 22}, LeasePolicy{});
    JobLease a;
    JobLease b;
    ASSERT_EQ(t.claim(0.0, "w1", &a), ClaimOutcome::Granted);
    ASSERT_EQ(t.claim(0.0, "w2", &b), ClaimOutcome::Granted);
    EXPECT_NE(a.token, b.token);
    EXPECT_EQ(a.attempt, 1u);
    // Everything is leased: nothing more to claim yet.
    JobLease c;
    EXPECT_EQ(t.claim(0.0, "w3", &c), ClaimOutcome::NoWork);

    EXPECT_EQ(t.push(1.0, a.token, true, ""), LeaseTable::Push::RecordedFinal);
    EXPECT_EQ(t.push(1.0, b.token, true, ""), LeaseTable::Push::RecordedFinal);
    EXPECT_TRUE(t.drained());
    EXPECT_EQ(t.doneCount(), 2u);
    EXPECT_EQ(t.claim(1.0, "w3", &c), ClaimOutcome::Drained);
}

TEST(LeaseTable, LeaseExpiryReclaimsAndChargesAnAttempt)
{
    LeasePolicy p = fastPolicy();
    LeaseTable t({7}, p);
    JobLease a;
    ASSERT_EQ(t.claim(0.0, "w1", &a), ClaimOutcome::Granted);
    EXPECT_EQ(a.ttlSec, p.leaseTtlSec);

    // Before expiry the lease holds.
    t.tick(0.5);
    EXPECT_EQ(t.activeLeases(0), 1u);

    // Past expiry the job is reclaimed, one attempt charged, and the
    // next claim (after the backoff window) is attempt 2.
    t.tick(2.0);
    EXPECT_EQ(t.activeLeases(0), 0u);
    EXPECT_EQ(t.attemptsUsed(0), 1u);
    JobLease b;
    ASSERT_EQ(t.claim(10.0, "w2", &b), ClaimOutcome::Granted);
    EXPECT_EQ(b.attempt, 2u);
    // The dead worker's token no longer renews...
    EXPECT_FALSE(t.renew(10.0, a.token));
    // ...but its late RESULT is still honored if it lands first: the
    // work is deterministic, so first completion wins regardless of
    // which lease produced it.
    EXPECT_EQ(t.push(10.5, a.token, true, ""),
              LeaseTable::Push::RecordedFinal);
    EXPECT_EQ(t.push(11.0, b.token, true, ""), LeaseTable::Push::Duplicate);
    EXPECT_TRUE(t.drained());
}

TEST(LeaseTable, RenewExtendsTheLease)
{
    LeasePolicy p = fastPolicy();
    LeaseTable t({7}, p);
    JobLease a;
    ASSERT_EQ(t.claim(0.0, "w1", &a), ClaimOutcome::Granted);
    // Heartbeats carry the lease far past its original expiry.
    for (double now = 0.8; now < 5.0; now += 0.8) {
        EXPECT_TRUE(t.renew(now, a.token));
        t.tick(now);
        EXPECT_EQ(t.activeLeases(0), 1u);
    }
    EXPECT_EQ(t.attemptsUsed(0), 1u);
    EXPECT_EQ(t.push(5.0, a.token, true, ""), LeaseTable::Push::RecordedFinal);
}

TEST(LeaseTable, FailedPushRequeuesWithBackoffThenFinallyFails)
{
    LeasePolicy p = fastPolicy();
    p.maxAttempts = 2;
    LeaseTable t({99}, p);
    JobLease a;
    ASSERT_EQ(t.claim(0.0, "w1", &a), ClaimOutcome::Granted);
    EXPECT_EQ(t.push(0.1, a.token, false, "crash"),
              LeaseTable::Push::Requeued);

    // The retry is gated behind the backoff window.
    JobLease b;
    EXPECT_EQ(t.claim(0.1, "w1", &b), ClaimOutcome::NoWork);
    ASSERT_EQ(t.claim(5.0, "w1", &b), ClaimOutcome::Granted);
    EXPECT_EQ(b.attempt, 2u);

    // Exhausting attempts records the final failure kind.
    EXPECT_EQ(t.push(5.1, b.token, false, "crash"),
              LeaseTable::Push::RecordedFinal);
    EXPECT_TRUE(t.drained());
    EXPECT_EQ(t.failedCount(), 1u);
    ASSERT_NE(t.finalErrorKind(0), nullptr);
    EXPECT_EQ(*t.finalErrorKind(0), "crash");
}

TEST(LeaseTable, ExhaustedExpiriesRecordWorkerLost)
{
    LeasePolicy p = fastPolicy();
    p.maxAttempts = 2;
    LeaseTable t({5}, p);
    JobLease a;
    ASSERT_EQ(t.claim(0.0, "w1", &a), ClaimOutcome::Granted);
    t.tick(2.0); // expiry 1: requeued
    JobLease b;
    ASSERT_EQ(t.claim(10.0, "w2", &b), ClaimOutcome::Granted);
    t.tick(20.0); // expiry 2: attempts exhausted, no survivor lease
    EXPECT_TRUE(t.drained());
    ASSERT_NE(t.finalErrorKind(0), nullptr);
    EXPECT_EQ(*t.finalErrorKind(0), "worker_lost");
}

TEST(LeaseTable, BackoffBoundsAndDeterminism)
{
    LeasePolicy p;
    p.backoffBaseSec = 0.5;
    p.backoffCapSec = 30.0;
    p.backoffJitterFrac = 0.25;
    for (unsigned attempt = 2; attempt <= 10; ++attempt) {
        double raw = p.backoffBaseSec;
        for (unsigned k = 2; k < attempt; ++k) {
            raw = std::min(p.backoffCapSec, raw * 2.0);
        }
        for (std::uint64_t hash : {0x1234ull, 0xdeadbeefull, 0x1ull}) {
            double d = LeaseTable::backoffDelaySec(p, attempt, hash);
            EXPECT_GE(d, raw) << "attempt " << attempt;
            EXPECT_LT(d, raw * (1.0 + p.backoffJitterFrac) + 1e-9)
                << "attempt " << attempt;
            // Deterministic: the retry schedule is reproducible.
            EXPECT_EQ(d, LeaseTable::backoffDelaySec(p, attempt, hash));
        }
    }
    // The jitter seed covers (hash, attempt): different jobs retry at
    // different offsets instead of stampeding together.
    EXPECT_NE(LeaseTable::backoffDelaySec(p, 3, 42),
              LeaseTable::backoffDelaySec(p, 3, 43));
}

TEST(LeaseTable, StragglerDuplicateFirstCompletionWins)
{
    LeasePolicy p = fastPolicy();
    p.leaseTtlSec = 100.0; // never expires during the test
    p.stragglerAfterSec = 0.5;
    p.maxDuplicates = 1;
    LeaseTable t({1, 2}, p);
    JobLease a1;
    JobLease a2;
    ASSERT_EQ(t.claim(0.0, "slow", &a1), ClaimOutcome::Granted);
    ASSERT_EQ(t.claim(0.0, "fast", &a2), ClaimOutcome::Granted);
    EXPECT_EQ(t.push(0.2, a2.token, true, ""),
              LeaseTable::Push::RecordedFinal);

    // Too early for a duplicate: the lease is not a straggler yet.
    JobLease d;
    EXPECT_EQ(t.claim(0.3, "idle", &d), ClaimOutcome::NoWork);

    // Once the lease is old enough, the idle worker gets a duplicate
    // lease on the SAME job, same attempt accounting.
    ASSERT_EQ(t.claim(1.0, "idle", &d), ClaimOutcome::Granted);
    EXPECT_EQ(d.index, a1.index);
    EXPECT_EQ(d.hash, a1.hash);
    EXPECT_EQ(t.activeLeases(a1.index), 2u);

    // maxDuplicates bounds the fan-out.
    JobLease d2;
    EXPECT_EQ(t.claim(2.0, "idle2", &d2), ClaimOutcome::NoWork);

    // First completion wins; the loser is discarded as a duplicate.
    EXPECT_EQ(t.push(2.5, d.token, true, ""),
              LeaseTable::Push::RecordedFinal);
    EXPECT_EQ(t.push(3.0, a1.token, true, ""), LeaseTable::Push::Duplicate);
    EXPECT_TRUE(t.drained());
    EXPECT_EQ(t.doneCount(), 2u);
}

TEST(LeaseTable, UnknownTokensAndResumeMarking)
{
    LeaseTable t({11, 22}, LeasePolicy{});
    EXPECT_EQ(t.push(0.0, 0xbad, true, ""), LeaseTable::Push::Unknown);
    EXPECT_FALSE(t.renew(0.0, 0xbad));
    EXPECT_EQ(t.leaseIndex(0xbad), LeaseTable::npos);

    // Checkpoint resume: marked jobs are never issued.
    t.markDone(0);
    JobLease a;
    ASSERT_EQ(t.claim(0.0, "w", &a), ClaimOutcome::Granted);
    EXPECT_EQ(a.index, 1u);
    EXPECT_EQ(t.leaseIndex(a.token), 1u);
    EXPECT_EQ(t.push(0.5, a.token, true, ""), LeaseTable::Push::RecordedFinal);
    EXPECT_TRUE(t.drained());
}

// --- sweep spec ------------------------------------------------------------

TEST(SweepSpec, JsonRoundTripAndDeterministicExpansion)
{
    SweepSpec s = tinySpec();
    std::string json = sweepSpecToJson(s);
    SweepSpec back;
    std::string err;
    ASSERT_TRUE(sweepSpecFromJson(json, &back, &err)) << err;
    EXPECT_EQ(back.name, s.name);
    EXPECT_EQ(back.warmupInstrs, s.warmupInstrs);
    EXPECT_EQ(back.measureInstrs, s.measureInstrs);
    EXPECT_EQ(back.workloads, s.workloads);
    ASSERT_EQ(back.configs.size(), s.configs.size());
    for (std::size_t i = 0; i < s.configs.size(); ++i) {
        EXPECT_EQ(back.configs[i].label, s.configs[i].label);
        EXPECT_EQ(back.configs[i].preset, s.configs[i].preset);
        EXPECT_EQ(back.configs[i].ftq, s.configs[i].ftq);
    }

    // The determinism contract the whole protocol rests on: expanding
    // the round-tripped spec yields the identical job hashes, so
    // coordinator and workers agree on job identity.
    std::vector<SweepJob> a;
    std::vector<SweepJob> b;
    ASSERT_TRUE(expandSweepSpec(s, &a, &err)) << err;
    ASSERT_TRUE(expandSweepSpec(back, &b, &err)) << err;
    ASSERT_EQ(a.size(), 4u); // workload-major: mw x 2 configs, drupal x 2
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(sweepJobHash(a[i], i), sweepJobHash(b[i], i));
    }
    EXPECT_EQ(a[0].profile.name, "mediawiki");
    EXPECT_EQ(a[0].label, "fdip32");
    EXPECT_EQ(a[1].label, "udp8k");
    EXPECT_EQ(a[2].profile.name, "drupal");
}

TEST(SweepSpec, ParsesHandWrittenJsonWithWhitespace)
{
    // Spec files are hand-written: whitespace and newlines around
    // colons and values must parse identically to the compact form.
    std::string pretty = R"({
        "name": "tiny",
        "warmup_instrs": 5000,
        "measure_instrs": 10000,
        "workloads": ["mediawiki", "drupal"],
        "configs": [
            {"label": "fdip32", "preset": "fdip"},
            {"label": "udp8k",  "preset": "udp8k"}
        ]
    })";
    SweepSpec s;
    std::string err;
    ASSERT_TRUE(sweepSpecFromJson(pretty, &s, &err)) << err;
    EXPECT_EQ(s.name, "tiny");
    EXPECT_EQ(s.warmupInstrs, 5000u);
    EXPECT_EQ(s.measureInstrs, 10000u);
    std::vector<SweepJob> a;
    std::vector<SweepJob> b;
    ASSERT_TRUE(expandSweepSpec(s, &a, &err)) << err;
    ASSERT_TRUE(expandSweepSpec(tinySpec(), &b, &err)) << err;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(sweepJobHash(a[i], i), sweepJobHash(b[i], i));
    }
}

TEST(SweepSpec, RejectsUnknownNamesAndMisappliedFtq)
{
    std::string err;
    std::vector<SweepJob> jobs;
    SweepSpec s = tinySpec();
    s.workloads = {"no_such_workload"};
    EXPECT_FALSE(expandSweepSpec(s, &jobs, &err));
    EXPECT_NE(err.find("no_such_workload"), std::string::npos);

    s = tinySpec();
    s.configs = {{"x", "no_such_preset", 0}};
    EXPECT_FALSE(expandSweepSpec(s, &jobs, &err));

    // An FTQ depth override only makes sense for the fdip preset.
    s = tinySpec();
    s.configs = {{"x", "udp8k", 16}};
    EXPECT_FALSE(expandSweepSpec(s, &jobs, &err));

    SweepSpec bad;
    EXPECT_FALSE(sweepSpecFromJson("not json at all", &bad, &err));
}

TEST(SweepSpec, WorkloadsAllExpandsEveryDatacenterProfile)
{
    SweepSpec s = tinySpec();
    s.workloads = {"all"};
    std::vector<SweepJob> jobs;
    std::string err;
    ASSERT_TRUE(expandSweepSpec(s, &jobs, &err)) << err;
    EXPECT_EQ(jobs.size(), datacenterProfiles().size() * s.configs.size());
}

// --- filesystem queue ------------------------------------------------------

std::vector<ManifestEntry>
skeletons(const std::vector<SweepJob>& jobs)
{
    std::vector<ManifestEntry> sk(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        sk[i].hash = sweepJobHash(jobs[i], i);
        sk[i].index = i;
        sk[i].workload = jobs[i].profile.name;
        sk[i].label = jobs[i].label;
    }
    return sk;
}

TEST(FsWorkQueue, DuplicateCompletionIsIdempotent)
{
    std::string dir = freshDir("fsdup");
    std::vector<SweepJob> jobs = tinyJobs();
    FsWorkQueue q(dir, 5.0);
    std::string err;
    ASSERT_TRUE(
        q.seed(skeletons(jobs), sweepSpecToJson(tinySpec()), fastPolicy(),
               &err))
        << err;
    ASSERT_TRUE(q.connect(&err)) << err;
    EXPECT_EQ(q.totalJobs(), jobs.size());

    JobLease a;
    ASSERT_EQ(q.claim("w1", &a), ClaimOutcome::Granted);
    EXPECT_TRUE(q.renew(a));

    ManifestEntry done;
    done.hash = a.hash;
    done.index = a.index;
    done.workload = jobs[a.index].profile.name;
    done.label = jobs[a.index].label;
    done.ok = true;
    done.reportJson = "{}";
    EXPECT_EQ(q.push(a, done), PushOutcome::Recorded);
    // The same result delivered again — a straggler, or a worker whose
    // lease expired but finished anyway — is discarded, not re-recorded.
    EXPECT_EQ(q.push(a, done), PushOutcome::Duplicate);
    EXPECT_EQ(q.doneCount(), 1u);
}

TEST(FsWorkQueue, ReseedingResumesFromDoneEntries)
{
    std::string dir = freshDir("fsresume");
    std::vector<SweepJob> jobs = tinyJobs();
    std::vector<ManifestEntry> sk = skeletons(jobs);
    std::string spec = sweepSpecToJson(tinySpec());
    std::string err;

    {
        FsWorkQueue q(dir, 5.0);
        ASSERT_TRUE(q.seed(sk, spec, fastPolicy(), &err)) << err;
        JobLease a;
        ASSERT_EQ(q.claim("w1", &a), ClaimOutcome::Granted);
        ManifestEntry done = sk[a.index];
        done.ok = true;
        done.reportJson = "{}";
        EXPECT_EQ(q.push(a, done), PushOutcome::Recorded);
    }

    // A restarted coordinator seeding the same directory keeps the
    // recorded completion and only re-issues the rest.
    FsWorkQueue q2(dir, 5.0);
    ASSERT_TRUE(q2.seed(sk, spec, fastPolicy(), &err)) << err;
    EXPECT_EQ(q2.doneCount(), 1u);
    std::size_t granted = 0;
    for (;;) {
        JobLease l;
        ClaimOutcome c = q2.claim("w2", &l);
        if (c != ClaimOutcome::Granted) {
            break;
        }
        ++granted;
        ManifestEntry done = sk[l.index];
        done.ok = true;
        done.reportJson = "{}";
        q2.push(l, done);
    }
    EXPECT_EQ(granted, jobs.size() - 1);
    EXPECT_EQ(q2.doneCount(), jobs.size());
    JobLease l;
    EXPECT_EQ(q2.claim("w2", &l), ClaimOutcome::Drained);
}

// --- coordinator + worker integration --------------------------------------

TEST(Sweepd, FsDistributedRunIsByteIdenticalToSerial)
{
    std::vector<SweepJob> jobs = tinyJobs();
    std::vector<std::string> reference = serialReference(jobs);

    CoordinatorOptions co;
    co.policy = fastPolicy();
    co.endpoint = freshDir("fsrun") + "/q";
    co.specJson = sweepSpecToJson(tinySpec());
    co.pollSec = 0.02;
    co.quiet = true;
    SweepCoordinator coord(jobs, co);
    std::string err;
    ASSERT_TRUE(coord.start(&err)) << err;

    std::thread worker([&] {
        std::string werr;
        auto q = openWorkQueue(coord.endpoint(), 5.0, &werr);
        ASSERT_NE(q, nullptr) << werr;
        WorkerOptions wo;
        wo.name = "t1";
        wo.quiet = true;
        runSweepWorker(*q, jobs, wo);
    });
    std::vector<JobResult> results = coord.run();
    worker.join();
    expectByteIdentical(jobs, results, reference);
}

TEST(Sweepd, TcpDistributedRunIsByteIdenticalToSerial)
{
    std::vector<SweepJob> jobs = tinyJobs();
    std::vector<std::string> reference = serialReference(jobs);

    CoordinatorOptions co;
    co.policy = fastPolicy();
    co.endpoint = "tcp:127.0.0.1:0";
    co.specJson = sweepSpecToJson(tinySpec());
    co.pollSec = 0.02;
    co.quiet = true;
    SweepCoordinator coord(jobs, co);
    std::string err;
    ASSERT_TRUE(coord.start(&err)) << err;
    ASSERT_GT(coord.port(), 0);

    std::vector<std::thread> workers;
    for (int w = 0; w < 2; ++w) {
        workers.emplace_back([&, w] {
            std::string werr;
            auto q = openWorkQueue(coord.endpoint(), 5.0, &werr);
            ASSERT_NE(q, nullptr) << werr;
            WorkerOptions wo;
            wo.name = "t" + std::to_string(w);
            wo.quiet = true;
            runSweepWorker(*q, jobs, wo);
        });
    }
    std::vector<JobResult> results = coord.run();
    for (auto& t : workers) {
        t.join();
    }
    expectByteIdentical(jobs, results, reference);
}

TEST(Sweepd, CoordinatorRestartResumesFromManifest)
{
    std::vector<SweepJob> jobs = tinyJobs();
    std::vector<std::string> reference = serialReference(jobs);
    std::string dir = freshDir("resume");
    std::string manifestPath = dir + "/manifest.jsonl";

    // "First run": two jobs completed before the coordinator died. The
    // manifest is all that survives.
    {
        SweepManifest m;
        ASSERT_TRUE(m.open(manifestPath, false));
        for (std::size_t i = 0; i < 2; ++i) {
            ManifestEntry e;
            e.hash = sweepJobHash(jobs[i], i);
            e.index = i;
            e.workload = jobs[i].profile.name;
            e.label = jobs[i].label;
            e.ok = true;
            e.reportJson = reference[i];
            m.record(e);
        }
        m.close();
    }

    // Restarted coordinator: resumes the two completed jobs and only
    // issues the remaining two to its worker.
    CoordinatorOptions co;
    co.policy = fastPolicy();
    co.endpoint = dir + "/q";
    co.specJson = sweepSpecToJson(tinySpec());
    co.manifestPath = manifestPath;
    co.resume = true;
    co.pollSec = 0.02;
    co.quiet = true;
    SweepCoordinator coord(jobs, co);
    std::string err;
    ASSERT_TRUE(coord.start(&err)) << err;

    WorkerSummary summary;
    std::thread worker([&] {
        std::string werr;
        auto q = openWorkQueue(coord.endpoint(), 5.0, &werr);
        ASSERT_NE(q, nullptr) << werr;
        WorkerOptions wo;
        wo.name = "t1";
        wo.quiet = true;
        summary = runSweepWorker(*q, jobs, wo);
    });
    std::vector<JobResult> results = coord.run();
    worker.join();

    EXPECT_EQ(summary.executed, 2u) << "resumed jobs must not re-run";
    ASSERT_EQ(results.size(), jobs.size());
    EXPECT_TRUE(results[0].resumed);
    EXPECT_TRUE(results[1].resumed);
    EXPECT_FALSE(results[2].resumed);
    expectByteIdentical(jobs, results, reference);
}

#ifndef _WIN32

/** Forks a worker process against @p endpoint; returns its pid. */
pid_t
forkWorker(const std::string& endpoint, const std::vector<SweepJob>& jobs,
           const std::string& name, unsigned jobDelayMs)
{
    pid_t pid = ::fork();
    if (pid != 0) {
        return pid;
    }
    std::string err;
    auto q = openWorkQueue(endpoint, 5.0, &err);
    if (q == nullptr) {
        ::_exit(2);
    }
    WorkerOptions wo;
    wo.name = name;
    wo.quiet = true;
    wo.jobDelayMs = jobDelayMs;
    WorkerSummary s = runSweepWorker(*q, jobs, wo);
    ::_exit(s.queueLost ? 3 : 0);
}

/**
 * The acceptance scenario: a sweep distributed across two worker
 * processes, one SIGKILLed mid-job. The lease expires, the job is
 * reclaimed and retried, the sweep completes every job, and the merged
 * Reports are byte-identical to the serial in-process run.
 */
TEST(Sweepd, SigkilledWorkerIsReclaimedAndRunStaysByteIdentical)
{
    if (!procIsolationSupported()) {
        GTEST_SKIP() << "no fork() on this platform";
    }
    std::vector<SweepJob> jobs = tinyJobs();
    std::vector<std::string> reference = serialReference(jobs);

    CoordinatorOptions co;
    co.policy = fastPolicy(); // 1 s lease TTL
    co.endpoint = freshDir("chaos") + "/q";
    co.specJson = sweepSpecToJson(tinySpec());
    co.pollSec = 0.02;
    co.quiet = true;
    SweepCoordinator coord(jobs, co);
    std::string err;
    ASSERT_TRUE(coord.start(&err)) << err;

    // The victim stalls 10 s before every job, so it dies holding an
    // unfinished lease; the survivor runs normally.
    pid_t victim = forkWorker(coord.endpoint(), jobs, "victim", 10'000);
    ASSERT_GT(victim, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    pid_t survivor = forkWorker(coord.endpoint(), jobs, "survivor", 0);
    ASSERT_GT(survivor, 0);

    std::vector<JobResult> results = coord.run();

    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    EXPECT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    ASSERT_EQ(::waitpid(survivor, &status, 0), survivor);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    expectByteIdentical(jobs, results, reference);
}

#endif // !_WIN32

} // namespace
} // namespace udp

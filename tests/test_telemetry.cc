/**
 * @file
 * Tests for the telemetry layer: Distribution bucketing, prefetch
 * lifecycle classification, interval rows, trace export, sink rows, and
 * the end-to-end taxonomy identity on a real simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/runner.h"
#include "sim/simerror.h"
#include "stats/histogram.h"
#include "stats/sink.h"
#include "stats/telemetry.h"
#include "stats/tracefile.h"

namespace udp {
namespace {

// --- Distribution ----------------------------------------------------------

TEST(Distribution, Log2Bucketing)
{
    Distribution d(BucketScale::Log2, 8);
    // Bucket 0 holds value 0; bucket i>=1 covers [2^(i-1), 2^i).
    EXPECT_EQ(d.bucketOf(0), 0u);
    EXPECT_EQ(d.bucketOf(1), 1u);
    EXPECT_EQ(d.bucketOf(2), 2u);
    EXPECT_EQ(d.bucketOf(3), 2u);
    EXPECT_EQ(d.bucketOf(4), 3u);
    EXPECT_EQ(d.bucketOf(7), 3u);
    EXPECT_EQ(d.bucketOf(8), 4u);
    // Values past the last bucket clamp into it.
    EXPECT_EQ(d.bucketOf(std::uint64_t{1} << 60), 7u);
    EXPECT_EQ(d.bucketLow(0), 0u);
    EXPECT_EQ(d.bucketLow(1), 1u);
    EXPECT_EQ(d.bucketLow(4), 8u);
}

TEST(Distribution, LinearBucketing)
{
    Distribution d(BucketScale::Linear, 4, 10);
    EXPECT_EQ(d.bucketOf(0), 0u);
    EXPECT_EQ(d.bucketOf(9), 0u);
    EXPECT_EQ(d.bucketOf(10), 1u);
    EXPECT_EQ(d.bucketOf(39), 3u);
    EXPECT_EQ(d.bucketOf(1000), 3u); // overflow clamps
    EXPECT_EQ(d.bucketLow(2), 20u);
}

TEST(Distribution, Moments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.sample(2);
    d.sample(4);
    d.sample(12);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.sum(), 18u);
    EXPECT_EQ(d.min(), 2u);
    EXPECT_EQ(d.max(), 12u);
    EXPECT_DOUBLE_EQ(d.mean(), 6.0);
}

TEST(Distribution, PercentileExactForUnitLinear)
{
    Distribution d(BucketScale::Linear, 128, 1);
    for (std::uint64_t v = 1; v <= 100; ++v) {
        d.sample(v);
    }
    EXPECT_EQ(d.percentile(0.50), 50u);
    EXPECT_EQ(d.percentile(0.90), 90u);
    EXPECT_EQ(d.percentile(0.99), 99u);
    EXPECT_EQ(d.percentile(1.00), 100u);
}

TEST(Distribution, MergeKeepsCountExact)
{
    Distribution a(BucketScale::Log2, 8);
    Distribution b(BucketScale::Log2, 8);
    a.sample(1);
    a.sample(5);
    b.sample(100);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.sum(), 106u);
    EXPECT_EQ(a.max(), 100u);
    EXPECT_EQ(a.min(), 1u);
}

TEST(Distribution, SummarizeKeys)
{
    Distribution d;
    d.sample(8);
    auto rows = d.summarize("lat");
    ASSERT_EQ(rows.size(), 8u);
    EXPECT_EQ(rows[0].first, "lat_count");
    EXPECT_DOUBLE_EQ(rows[0].second, 1.0);
    EXPECT_EQ(rows[1].first, "lat_sum");
    EXPECT_EQ(rows[7].first, "lat_p99");
}

// --- StatSet integration ---------------------------------------------------

TEST(StatSet, AddDistributionAppendsSummaryAndKeepsBuckets)
{
    StatSet s;
    Distribution d;
    d.sample(3);
    d.sample(5);
    s.addDistribution("x", d);
    EXPECT_TRUE(s.has("x_count"));
    EXPECT_DOUBLE_EQ(s.get("x_count"), 2.0);
    EXPECT_DOUBLE_EQ(s.get("x_sum"), 8.0);
    ASSERT_EQ(s.distributions().size(), 1u);
    EXPECT_EQ(s.distributions()[0].first, "x");
    EXPECT_EQ(s.distributions()[0].second.count(), 2u);
}

TEST(StatSet, DuplicateNameRegression)
{
    // Duplicate keys used to silently produce corrupt JSON rows with two
    // identical keys. Debug builds assert; release builds overwrite the
    // existing entry in place (last-wins) so the sink row stays valid.
#ifdef NDEBUG
    StatSet s;
    s.add("ipc", 1.0);
    s.add("mpki", 2.0);
    s.add("ipc", 3.0);
    ASSERT_EQ(s.entries().size(), 2u);
    EXPECT_EQ(s.entries()[0].first, "ipc"); // order preserved
    EXPECT_DOUBLE_EQ(s.get("ipc"), 3.0);    // last value wins
#else
    EXPECT_DEATH(
        {
            StatSet s;
            s.add("ipc", 1.0);
            s.add("ipc", 3.0);
        },
        "duplicate stat name");
#endif
}

// --- prefetch lifecycle classification -------------------------------------

TelemetryConfig
onConfig()
{
    TelemetryConfig c;
    c.enabled = true;
    return c;
}

TEST(TelemetryLifecycle, TimelyPath)
{
    Telemetry t(onConfig());
    t.beginCycle(1, 0);
    t.onPrefetchIssued(0x1000, PfSource::Fdip);
    t.beginCycle(21, 0);
    t.onPrefetchFill(0x1000, false);
    t.beginCycle(29, 0);
    t.onPrefetchFirstUse(0x1000);
    t.finalize();
    auto s = t.snapshot();
    EXPECT_EQ(s->issuedTotal(), 1u);
    EXPECT_EQ(s->outcomes[0][0], 1u); // Fdip x Timely
    EXPECT_EQ(s->outcomeTotal(PfOutcome::Timely), 1u);
    EXPECT_EQ(s->fillLatency.count(), 1u);
    EXPECT_EQ(s->fillLatency.sum(), 20u); // issue@1 -> fill@21
    EXPECT_EQ(s->useDistance.count(), 1u);
    EXPECT_EQ(s->useDistance.sum(), 8u); // fill@21 -> use@29
}

TEST(TelemetryLifecycle, LatePath)
{
    Telemetry t(onConfig());
    t.beginCycle(1, 0);
    t.onPrefetchIssued(0x2000, PfSource::Eip);
    t.beginCycle(5, 0);
    t.onPrefetchLateMerge(0x2000, 37);
    t.finalize();
    auto s = t.snapshot();
    EXPECT_EQ(s->outcomes[2][1], 1u); // Eip x Late
    EXPECT_EQ(s->lateBy.count(), 1u);
    EXPECT_EQ(s->lateBy.sum(), 37u);
    // A fill after the late merge must not double-classify.
    EXPECT_EQ(s->outcomeTotal(PfOutcome::Timely), 0u);
}

TEST(TelemetryLifecycle, UnusedAndPollutingPaths)
{
    Telemetry t(onConfig());
    t.beginCycle(1, 0);
    t.onPrefetchIssued(0x3000, PfSource::Fdip);
    t.onPrefetchIssued(0x4000, PfSource::UdpExtra);
    t.beginCycle(10, 0);
    t.onPrefetchFill(0x3000, false); // clean fill
    t.onPrefetchFill(0x4000, true);  // displaced a valid resident line
    t.beginCycle(50, 0);
    t.onPrefetchEvicted(0x3000);
    t.onPrefetchEvicted(0x4000);
    t.finalize();
    auto s = t.snapshot();
    EXPECT_EQ(s->outcomes[0][2], 1u); // Fdip x Unused
    EXPECT_EQ(s->outcomes[1][3], 1u); // UdpExtra x Polluting
    EXPECT_EQ(s->unusedLifetime.count(), 2u);
    EXPECT_EQ(s->unusedLifetime.sum(), 80u); // two 40-cycle lifetimes
}

TEST(TelemetryLifecycle, PendingAndIdentity)
{
    Telemetry t(onConfig());
    t.beginCycle(1, 0);
    t.onPrefetchIssued(0x1000, PfSource::Fdip); // -> timely
    t.onPrefetchIssued(0x2000, PfSource::Fdip); // -> late
    t.onPrefetchIssued(0x3000, PfSource::Fdip); // -> unused
    t.onPrefetchIssued(0x4000, PfSource::Fdip); // -> pending
    t.beginCycle(10, 0);
    t.onPrefetchFill(0x1000, false);
    t.onPrefetchFill(0x3000, false);
    t.onPrefetchFirstUse(0x1000);
    t.onPrefetchLateMerge(0x2000, 9);
    t.onPrefetchEvicted(0x3000);
    t.finalize();
    auto s = t.snapshot();
    EXPECT_EQ(s->issuedTotal(), 4u);
    EXPECT_EQ(s->outcomeTotal(PfOutcome::Pending), 1u);
    std::uint64_t classified = 0;
    for (std::size_t o = 0; o < kNumPfOutcomes; ++o) {
        classified += s->outcomeTotal(static_cast<PfOutcome>(o));
    }
    EXPECT_EQ(classified, s->issuedTotal());
    EXPECT_EQ(s->taxonomy.count(), s->issuedTotal());
}

TEST(TelemetryLifecycle, ClearStatsDropsLiveRecords)
{
    Telemetry t(onConfig());
    t.beginCycle(1, 0);
    t.onPrefetchIssued(0x5000, PfSource::Fdip);
    t.clearStats(); // measurement window starts: warmup issue is dropped
    t.beginCycle(2, 0);
    t.onPrefetchFill(0x5000, false); // stale fill: must be a no-op
    t.finalize();
    auto s = t.snapshot();
    EXPECT_EQ(s->issuedTotal(), 0u);
    EXPECT_EQ(s->taxonomy.count(), 0u);
}

// --- intervals -------------------------------------------------------------

TEST(TelemetryIntervals, RowsCarryDeltas)
{
    TelemetryConfig cfg = onConfig();
    cfg.intervalCycles = 10;
    Telemetry t(cfg);
    t.clearStats();
    t.setBaseline({1000, 0, 0, 0, 0}); // cumulative retired before window
    Telemetry::IntervalCounters c;
    for (Cycle cyc = 1; cyc <= 20; ++cyc) {
        t.beginCycle(cyc, 4);
        if (t.intervalDue()) {
            c.retired += 15;
            c.ifetchMisses += 10;
            c.pfIssued += 8;
            c.pfUseful += 6;
            c.pfUnused += 2;
            Telemetry::IntervalCounters cum = c;
            cum.retired += 1000;
            t.closeInterval(cum);
        }
    }
    t.finalize();
    auto s = t.snapshot();
    ASSERT_EQ(s->intervals.size(), 2u);
    const IntervalRow& r0 = s->intervals[0];
    EXPECT_EQ(r0.index, 0u);
    EXPECT_EQ(r0.instructions, 15u); // baseline excludes warmup's 1000
    EXPECT_EQ(r0.cycleEnd - r0.cycleStart, 10u);
    EXPECT_DOUBLE_EQ(r0.ipc, 1.5);
    EXPECT_DOUBLE_EQ(r0.ftqOccupancy, 4.0);
    EXPECT_EQ(r0.prefetchesIssued, 8u);
    EXPECT_DOUBLE_EQ(r0.pfAccuracy, 0.75);
    const IntervalRow& r1 = s->intervals[1];
    EXPECT_EQ(r1.index, 1u);
    EXPECT_EQ(r1.instructions, 15u); // delta, not cumulative
}

// --- trace events ----------------------------------------------------------

TEST(TelemetryTrace, BoundedEventLog)
{
    TelemetryConfig cfg = onConfig();
    cfg.trace = true;
    cfg.maxTraceEvents = 3;
    Telemetry t(cfg);
    t.beginCycle(1, 0);
    for (int i = 0; i < 10; ++i) {
        t.onResteer(0x100 + static_cast<Addr>(i), false);
    }
    t.finalize();
    auto s = t.snapshot();
    EXPECT_EQ(s->events.size(), 3u);
    EXPECT_TRUE(s->traceTruncated);
}

TEST(TelemetryTrace, DisabledTraceRecordsNothing)
{
    Telemetry t(onConfig()); // trace defaults to false
    t.beginCycle(1, 0);
    t.onResteer(0x100, true);
    t.onUdpDrop(0x200);
    auto s = t.snapshot();
    EXPECT_TRUE(s->events.empty());
    EXPECT_FALSE(s->traceTruncated);
}

// --- Chrome-trace exporter -------------------------------------------------

TEST(TraceFile, RendersLifecycleAndMetadata)
{
    TelemetryConfig cfg = onConfig();
    cfg.trace = true;
    Telemetry t(cfg);
    t.beginCycle(1, 0);
    t.onPrefetchIssued(0xabc0, PfSource::Fdip);
    t.onResteer(0x400, true);
    t.beginCycle(20, 0);
    t.onPrefetchFill(0xabc0, false);
    t.onPrefetchFirstUse(0xabc0);
    t.finalize();

    std::string json =
        chromeTraceJson({{"mysql/udp8k", t.snapshot(), nullptr}});
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("mysql/udp8k"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos); // span begin
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos); // span end
    EXPECT_NE(json.find("timely"), std::string::npos);
    // Balanced braces/brackets => no dangling comma broke the JSON.
    EXPECT_EQ(json.back(), '\n');
    long depth = 0;
    for (char ch : json) {
        if (ch == '{' || ch == '[') {
            ++depth;
        } else if (ch == '}' || ch == ']') {
            --depth;
        }
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(TraceFile, EmptyJobListStillValid)
{
    std::string json = chromeTraceJson({});
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// --- sink rows -------------------------------------------------------------

TEST(TelemetrySinkRows, IntervalJsonAndCsvAgree)
{
    IntervalRow row;
    row.index = 2;
    row.cycleStart = 100;
    row.cycleEnd = 200;
    row.instructions = 150;
    row.ipc = 1.5;
    std::string json = intervalToJsonLine("mysql", "udp8k", row);
    EXPECT_NE(json.find("\"row_type\":\"interval\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"mysql\""), std::string::npos);
    EXPECT_NE(json.find("\"ipc\":1.5"), std::string::npos);

    // CSV header and row have the same column count, matching the schema.
    std::string header = intervalCsvHeader();
    std::string csv = intervalToCsvRow("mysql", "udp8k", row);
    auto columns = [](const std::string& s) {
        return std::count(s.begin(), s.end(), ',') + 1;
    };
    EXPECT_EQ(columns(header), columns(csv));
    EXPECT_EQ(static_cast<std::size_t>(columns(header)),
              intervalSchemaKeys().size());
}

TEST(TelemetrySinkRows, SummaryRowCarriesTaxonomy)
{
    Telemetry t(onConfig());
    t.beginCycle(1, 0);
    t.onPrefetchIssued(0x1000, PfSource::Fdip);
    t.finalize();
    std::string json = telemetrySummaryToJsonLine("mysql", "udp8k",
                                                  *t.snapshot());
    EXPECT_NE(json.find("\"row_type\":\"telemetry_summary\""),
              std::string::npos);
    EXPECT_NE(json.find("\"pf_issued_total\":1"), std::string::npos);
    EXPECT_NE(json.find("\"pf_pending_total\":1"), std::string::npos);
    EXPECT_NE(json.find("\"pf_late_by_p99\":"), std::string::npos);
}

// --- end-to-end ------------------------------------------------------------

RunOptions
tinyOptions()
{
    RunOptions o;
    o.warmupInstrs = 20'000;
    o.measureInstrs = 60'000;
    return o;
}

Profile
tinyProfile()
{
    Profile p = profileByName("mediawiki");
    p.name = "telemetrytest";
    p.seed = 11;
    p.codeFootprintKB = 96;
    return p;
}

TEST(TelemetryIntegration, TaxonomyIdentityOnRealRun)
{
    SimConfig c = presets::udp8k();
    c.telemetry.enabled = true;
    c.telemetry.trace = true;
    c.telemetry.intervalCycles = 2'000;
    Report r = runSim(tinyProfile(), c, tinyOptions(), "udp8k");
    ASSERT_TRUE(r.telemetry != nullptr);
    const TelemetrySnapshot& s = *r.telemetry;

    // The paper's accounting identity: every issued prefetch has exactly
    // one lifecycle outcome.
    ASSERT_GT(s.issuedTotal(), 0u);
    std::uint64_t classified = 0;
    for (std::size_t o = 0; o < kNumPfOutcomes; ++o) {
        classified += s.outcomeTotal(static_cast<PfOutcome>(o));
    }
    EXPECT_EQ(classified, s.issuedTotal());
    EXPECT_EQ(s.taxonomy.count(), s.issuedTotal());

    EXPECT_GE(s.intervals.size(), 1u);
    EXPECT_FALSE(s.events.empty());
}

TEST(TelemetryIntegration, TelemetryOffLeavesReportIdentical)
{
    SimConfig on = presets::udp8k();
    on.telemetry.enabled = true;
    on.telemetry.trace = true;
    on.telemetry.intervalCycles = 2'000;
    SimConfig off = presets::udp8k();

    Report a = runSim(tinyProfile(), on, tinyOptions(), "udp8k");
    Report b = runSim(tinyProfile(), off, tinyOptions(), "udp8k");
    EXPECT_TRUE(b.telemetry == nullptr);
    // Telemetry must be pure observation: every serialized byte of the
    // report row is unchanged.
    EXPECT_EQ(reportToJsonLine(a), reportToJsonLine(b));
    EXPECT_EQ(reportToCsvRow(a), reportToCsvRow(b));
}

TEST(TelemetryIntegration, SimErrorWritesPostMortemTrace)
{
    std::string path = ::testing::TempDir() + "udp_error_trace.json";
    std::remove(path.c_str());

    SimConfig c = presets::fdipBaseline();
    c.watchdog.retireStallCycles = 5'000;
    c.fault.kind = FaultKind::FreezeRetire;
    c.fault.triggerCycle = 500;
    c.telemetry.enabled = true;
    c.telemetry.trace = true;
    c.telemetry.errorTracePath = path;

    EXPECT_THROW(runSim(tinyProfile(), c, tinyOptions(), "frozen"),
                 SimError);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << "no post-mortem trace at " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    std::string trace = buf.str();
    EXPECT_NE(trace.find("sim_error"), std::string::npos);
    EXPECT_NE(trace.find("retire_stall"), std::string::npos);
    EXPECT_NE(trace.find("frozen"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace udp

/**
 * @file
 * Tests for the cache module: set-associative cache with prefetch bits,
 * MSHR/fill buffer, stream prefetcher and the memory hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/memsys.h"
#include "common/rng.h"

namespace udp {
namespace {

CacheConfig
smallCache(std::uint64_t size = 4096, unsigned assoc = 4)
{
    CacheConfig c;
    c.sizeBytes = size;
    c.assoc = assoc;
    return c;
}

// ------------------------------------------------------------------ cache

TEST(Cache, MissThenHit)
{
    SetAssocCache c(smallCache());
    EXPECT_FALSE(c.demandAccess(0x1000, true));
    c.insert(0x1000, false);
    EXPECT_TRUE(c.demandAccess(0x1000, true));
    EXPECT_EQ(c.stats().demandMisses, 1u);
    EXPECT_EQ(c.stats().demandHits, 1u);
}

TEST(Cache, SameLineDifferentOffsets)
{
    SetAssocCache c(smallCache());
    c.insert(0x1004, false);
    EXPECT_TRUE(c.contains(0x1000));
    EXPECT_TRUE(c.contains(0x103f));
    EXPECT_FALSE(c.contains(0x1040));
}

TEST(Cache, GeometryNonPow2Assoc)
{
    // 40 KiB, 10-way: the Fig. 13 enlarged-icache variant.
    SetAssocCache c(smallCache(40 * 1024, 10));
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.sizeBytes(), 40u * 1024);
}

class CacheLruSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheLruSweep, EvictsLeastRecentlyUsed)
{
    unsigned assoc = GetParam();
    SetAssocCache c(smallCache(Addr{assoc} * 8 * kLineBytes, assoc));
    std::size_t sets = c.numSets();

    // Fill one set, touch all but the first, insert one more.
    std::vector<Addr> lines;
    for (unsigned i = 0; i <= assoc; ++i) {
        lines.push_back(Addr{i} * sets * kLineBytes);
    }
    for (unsigned i = 0; i < assoc; ++i) {
        c.insert(lines[i], false);
    }
    for (unsigned i = 1; i < assoc; ++i) {
        c.demandAccess(lines[i], true);
    }
    CacheInsertResult res = c.insert(lines[assoc], false);
    EXPECT_TRUE(res.evicted);
    EXPECT_EQ(res.victimLine, lines[0]);
    EXPECT_FALSE(c.contains(lines[0]));
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheLruSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u, 16u));

TEST(Cache, PrefetchBitLifecycle)
{
    SetAssocCache c(smallCache());
    c.insert(0x2000, true);
    EXPECT_TRUE(c.prefetchBit(0x2000));
    c.demandAccess(0x2000, true);
    EXPECT_FALSE(c.prefetchBit(0x2000));
    EXPECT_EQ(c.stats().prefetchHits, 1u);
    EXPECT_EQ(c.stats().prefetchHitsTrue, 1u);
}

TEST(Cache, UnusedPrefetchCountedOnEviction)
{
    SetAssocCache c(smallCache(Addr{2} * kLineBytes, 1)); // 2 sets, direct
    c.insert(0x0, true);
    // Conflict: same set (2 sets -> stride 128).
    c.insert(0x80, false);
    EXPECT_EQ(c.stats().prefetchUnused, 1u);
    EXPECT_EQ(c.stats().prefetchUnusedTrue, 1u);
}

TEST(Cache, OffPathDemandDoesNotClearOracleBit)
{
    SetAssocCache c(smallCache());
    c.insert(0x3000, true);
    c.demandAccess(0x3000, /*on_path=*/false);
    // Hardware bit consumed, oracle bit not.
    EXPECT_EQ(c.stats().prefetchHits, 1u);
    EXPECT_EQ(c.stats().prefetchHitsTrue, 0u);
    c.demandAccess(0x3000, /*on_path=*/true);
    EXPECT_EQ(c.stats().prefetchHitsTrue, 1u);
}

TEST(Cache, InsertExistingDoesNotEvict)
{
    SetAssocCache c(smallCache());
    c.insert(0x1000, false);
    CacheInsertResult res = c.insert(0x1000, true);
    EXPECT_FALSE(res.evicted);
    // Re-insert must not set the prefetch bit on a demand line.
    EXPECT_FALSE(c.prefetchBit(0x1000));
}

TEST(Cache, InvalidateAndFlush)
{
    SetAssocCache c(smallCache());
    c.insert(0x1000, false);
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000));
    c.insert(0x2000, false);
    c.flush();
    EXPECT_FALSE(c.contains(0x2000));
}

/** Property: cache never holds more lines than its capacity. */
TEST(Cache, CapacityInvariant)
{
    SetAssocCache c(smallCache(2048, 4)); // 32 lines
    Rng rng(5);
    std::uint64_t inserted = 0;
    for (int i = 0; i < 1000; ++i) {
        c.insert(rng.next() & 0xffffc0, rng.chance(0.5));
        ++inserted;
    }
    EXPECT_EQ(c.stats().inserts - c.stats().evictions <= 32, true);
}

// ------------------------------------------------------------------- MSHR

TEST(Mshr, AllocateFindDrain)
{
    MshrFile m(4);
    EXPECT_EQ(m.find(0x1000), nullptr);
    MshrEntry* e = m.allocate(0x1000, 100, true);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(m.find(0x1000), e);
    EXPECT_EQ(m.numFree(), 3u);

    int drained = 0;
    m.drainReady(99, [&](const MshrEntry&) { ++drained; });
    EXPECT_EQ(drained, 0);
    m.drainReady(100, [&](const MshrEntry& entry) {
        ++drained;
        EXPECT_EQ(entry.line, 0x1000u);
        EXPECT_TRUE(entry.isPrefetch);
    });
    EXPECT_EQ(drained, 1);
    EXPECT_EQ(m.numFree(), 4u);
}

TEST(Mshr, FullRejects)
{
    MshrFile m(2);
    EXPECT_NE(m.allocate(0x1000, 10, false), nullptr);
    EXPECT_NE(m.allocate(0x2000, 10, false), nullptr);
    EXPECT_EQ(m.allocate(0x3000, 10, false), nullptr);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.stats().fullRejects, 1u);
}

TEST(Mshr, DemandMergeFlags)
{
    MshrFile m(4);
    MshrEntry* e = m.allocate(0x1000, 50, true);
    m.noteDemandMerge(*e, false);
    EXPECT_TRUE(e->demandMerged);
    EXPECT_FALSE(e->onPathDemandMerged);
    m.noteDemandMerge(*e, true);
    EXPECT_TRUE(e->onPathDemandMerged);
    EXPECT_EQ(m.stats().demandMerges, 2u);
}

// ------------------------------------------------------------- stream pf

TEST(StreamPrefetcher, DetectsAscendingStream)
{
    StreamPrefetcher pf{StreamPrefetcherConfig{}};
    std::vector<Addr> out;
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(0x10000 + Addr{i} * kLineBytes, out);
    }
    EXPECT_FALSE(out.empty());
    EXPECT_EQ(out[0], 0x10000 + 8 * Addr{kLineBytes});
}

TEST(StreamPrefetcher, DetectsDescendingStream)
{
    StreamPrefetcher pf{StreamPrefetcherConfig{}};
    std::vector<Addr> out;
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(0x40000 - Addr{i} * kLineBytes, out);
    }
    EXPECT_FALSE(out.empty());
    EXPECT_LT(out[0], 0x40000 - 7 * Addr{kLineBytes});
}

TEST(StreamPrefetcher, NoFalseStreamsOnRandom)
{
    StreamPrefetcher pf{StreamPrefetcherConfig{}};
    Rng rng(9);
    std::vector<Addr> out;
    for (int i = 0; i < 200; ++i) {
        pf.observe(lineAddr(rng.next() & 0xfffffff), out);
    }
    EXPECT_LT(out.size(), 20u);
}

// ---------------------------------------------------------------- memsys

TEST(MemSystem, FetchMissThenFillThenHit)
{
    MemSystem mem{MemSysConfig{}};
    IFetchResult r1 = mem.ifetch(0x400000, 10, true);
    EXPECT_EQ(r1.where, IFetchWhere::Miss);
    EXPECT_GT(r1.ready, 10u);

    // Before the fill arrives: demand merges.
    IFetchResult r2 = mem.ifetch(0x400000, 11, true);
    EXPECT_EQ(r2.where, IFetchWhere::Mshr);

    mem.tick(r1.ready);
    IFetchResult r3 = mem.ifetch(0x400000, r1.ready + 1, true);
    EXPECT_EQ(r3.where, IFetchWhere::L1);
}

TEST(MemSystem, PrefetchThenDemandHit)
{
    MemSystem mem{MemSysConfig{}};
    EXPECT_EQ(mem.iprefetch(0x400000, 10), IPrefStatus::Issued);
    EXPECT_EQ(mem.iprefetch(0x400000, 11), IPrefStatus::InFlight);
    EXPECT_TRUE(mem.icacheLineInFlight(0x400000));

    // Let the fill land, then demand-hit the prefetched line.
    for (Cycle t = 10; t < 600; ++t) {
        mem.tick(t);
    }
    IFetchResult r = mem.ifetch(0x400010, 600, true);
    EXPECT_EQ(r.where, IFetchWhere::L1);
    EXPECT_TRUE(r.hitPrefetchedLine);
    EXPECT_EQ(mem.stats().ifetchTimelyPrefetchHits, 1u);
    EXPECT_EQ(mem.iprefetch(0x400000, 601), IPrefStatus::AlreadyPresent);
}

TEST(MemSystem, UntimelyPrefetchCountsAsMshrMerge)
{
    MemSystem mem{MemSysConfig{}};
    mem.iprefetch(0x400000, 10);
    IFetchResult r = mem.ifetch(0x400000, 12, true);
    EXPECT_EQ(r.where, IFetchWhere::Mshr);
    EXPECT_EQ(mem.stats().pfMshrMergesHw, 1u);
    EXPECT_EQ(mem.stats().pfMshrMergesTrue, 1u);
}

TEST(MemSystem, LatencyOrderingAcrossLevels)
{
    MemSystem mem{MemSysConfig{}};
    // Cold: DRAM distance.
    IFetchResult cold = mem.ifetch(0x400000, 100, true);
    Cycle dram_lat = cold.ready - 100;

    // Second line in L2 after eviction from L1I... simpler: data side.
    // A second cold line must queue behind DRAM bandwidth-wise but still
    // be DRAM-latency class; an L2-resident refetch must be much faster.
    MemSysConfig cfg;
    MemSystem mem2(cfg);
    Cycle t1 = mem2.dload(0x10000000, 100, true) - 100;
    Cycle t2 = mem2.dload(0x10000000, 5000, true) - 5000; // L1D hit now
    EXPECT_GT(t1, cfg.llcLat);
    EXPECT_EQ(t2, cfg.l1dLat);
    EXPECT_GT(dram_lat, cfg.memLat);
}

TEST(MemSystem, PerfectIcacheAlwaysHits)
{
    MemSysConfig cfg;
    cfg.perfectIcache = true;
    MemSystem mem(cfg);
    for (int i = 0; i < 100; ++i) {
        IFetchResult r = mem.ifetch(0x400000 + Addr{i} * 4096, 10, true);
        EXPECT_EQ(r.where, IFetchWhere::L1);
        EXPECT_EQ(r.ready, 10 + cfg.l1iLat);
    }
    EXPECT_EQ(mem.stats().ifetchMisses, 0u);
}

TEST(MemSystem, PrefetchDemotesToL2WhenFillBufferBusy)
{
    MemSysConfig cfg;
    cfg.l1iMshrs = 2;
    cfg.l1iMshrsForPrefetch = 2;
    MemSystem mem(cfg);
    EXPECT_EQ(mem.iprefetch(0x400000, 10), IPrefStatus::Issued);
    EXPECT_EQ(mem.iprefetch(0x410000, 10), IPrefStatus::Issued);
    EXPECT_EQ(mem.iprefetch(0x420000, 10), IPrefStatus::DemotedL2);
    EXPECT_EQ(mem.stats().iprefDemotedL2, 1u);

    // The demoted line now fills from L2, much faster than DRAM.
    for (Cycle t = 10; t < 600; ++t) {
        mem.tick(t);
    }
    IFetchResult r = mem.ifetch(0x420000, 600, true);
    EXPECT_EQ(r.where, IFetchWhere::Miss);
    EXPECT_LE(r.ready - 600, cfg.l1iLat + cfg.l2Lat);
}

TEST(MemSystem, DramBandwidthSerializes)
{
    MemSysConfig cfg;
    MemSystem mem(cfg);
    // Two cold lines at the same cycle: the second queues behind the first.
    Cycle r1 = mem.dload(0x10000000, 100, true);
    Cycle r2 = mem.dload(0x20000000, 100, true);
    EXPECT_GE(r2, r1 + cfg.memCyclesPerLine - 1);
}

TEST(MemSystem, ClearStatsKeepsContent)
{
    MemSystem mem{MemSysConfig{}};
    mem.ifetch(0x400000, 10, true);
    for (Cycle t = 10; t < 600; ++t) {
        mem.tick(t);
    }
    mem.clearStats();
    EXPECT_EQ(mem.stats().ifetchAccesses, 0u);
    EXPECT_TRUE(mem.icacheContains(0x400000));
}

} // namespace
} // namespace udp

/**
 * @file
 * Unit tests for src/common: hashing, RNG, saturating counters, integer
 * math and histograms.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/histogram.h"
#include "common/intmath.h"
#include "common/rng.h"
#include "common/sat_counter.h"
#include "common/types.h"

namespace udp {
namespace {

TEST(Mix64, IsDeterministic)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
    EXPECT_EQ(hashCombine(1, 2), hashCombine(1, 2));
    EXPECT_EQ(hashCombine(1, 2, 3), hashCombine(1, 2, 3));
}

TEST(Mix64, SeparatesNearbyInputs)
{
    std::set<std::uint64_t> outs;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        outs.insert(mix64(i));
    }
    EXPECT_EQ(outs.size(), 10000u);
}

TEST(Mix64, OrderMatters)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
        hits += r.chance(0.3);
    }
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    EXPECT_NE(r.next(), r.next());
}

TEST(SatCounter, SaturatesAtBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.value(), 0u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i) {
        c.increment();
    }
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.isSaturated());
}

TEST(SatCounter, IsSetAboveMidpoint)
{
    SatCounter c(2, 2);
    EXPECT_TRUE(c.isSet());
    c.decrement();
    EXPECT_FALSE(c.isSet());
}

TEST(SignedSatCounter, RangeAndUpdate)
{
    SignedSatCounter c(3, 0);
    EXPECT_EQ(c.min(), -4);
    EXPECT_EQ(c.max(), 3);
    for (int i = 0; i < 10; ++i) {
        c.update(true);
    }
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.isSaturated());
    for (int i = 0; i < 20; ++i) {
        c.update(false);
    }
    EXPECT_EQ(c.value(), -4);
    EXPECT_TRUE(c.isSaturated());
}

TEST(SignedSatCounter, TakenIsSignBit)
{
    SignedSatCounter c(3, 0);
    EXPECT_TRUE(c.taken());
    c.update(false);
    EXPECT_FALSE(c.taken());
}

TEST(SignedSatCounter, WeakNearBoundary)
{
    SignedSatCounter c(3, 0);
    EXPECT_TRUE(c.isWeak());
    c.update(false);
    EXPECT_TRUE(c.isWeak());
    c.update(false);
    EXPECT_FALSE(c.isWeak());
}

TEST(IntMath, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(1024));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(1025));
}

TEST(IntMath, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(IntMath, Alignment)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
}

TEST(Types, LineAndBlockHelpers)
{
    EXPECT_EQ(lineAddr(0x1000), 0x1000u);
    EXPECT_EQ(lineAddr(0x103f), 0x1000u);
    EXPECT_EQ(lineAddr(0x1040), 0x1040u);
    EXPECT_EQ(fetchBlockAddr(0x101f), 0x1000u);
    EXPECT_EQ(fetchBlockAddr(0x1020), 0x1020u);
}

TEST(Histogram, MeanAndBuckets)
{
    Histogram h(10);
    h.sample(1);
    h.sample(3);
    h.sample(5);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4);
    h.sample(100);
    EXPECT_EQ(h.bucket(h.numBuckets() - 1), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 100.0);
}

TEST(Histogram, Percentile)
{
    Histogram h(100);
    for (int i = 1; i <= 100; ++i) {
        h.sample(static_cast<std::uint64_t>(i));
    }
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50.0, 1.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.9)), 90.0, 1.0);
}

TEST(Histogram, Clear)
{
    Histogram h(10);
    h.sample(2);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

} // namespace
} // namespace udp

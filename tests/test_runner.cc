/**
 * @file
 * Tests for the experiment API helpers: geomean, correlation, environment
 * options, Report flattening and the preset configurations.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/runner.h"

namespace udp {
namespace {

TEST(Runner, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Runner, CorrelationPerfectAndInverse)
{
    EXPECT_NEAR(correlation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(correlation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Runner, CorrelationDegenerateInputs)
{
    EXPECT_DOUBLE_EQ(correlation({1.0}, {2.0}), 0.0);       // too short
    EXPECT_DOUBLE_EQ(correlation({1, 2}, {1, 2, 3}), 0.0);  // size mismatch
    EXPECT_DOUBLE_EQ(correlation({5, 5, 5}, {1, 2, 3}), 0.0); // zero var
}

TEST(Runner, EnvRunOptionsOverride)
{
    setenv("UDP_BENCH_WARMUP", "1234", 1);
    setenv("UDP_BENCH_INSTR", "5678", 1);
    RunOptions o = envRunOptions();
    EXPECT_EQ(o.warmupInstrs, 1234u);
    EXPECT_EQ(o.measureInstrs, 5678u);
    unsetenv("UDP_BENCH_WARMUP");
    unsetenv("UDP_BENCH_INSTR");
    RunOptions d = envRunOptions();
    EXPECT_EQ(d.warmupInstrs, RunOptions{}.warmupInstrs);
}

TEST(Runner, EnvRunOptionsRejectsMalformedValues)
{
    const RunOptions defaults;
    // Non-numeric, trailing junk, zero, negative and overflow values all
    // warn on stderr and keep the default instead of silently wrapping.
    for (const char* bad : {"abc", "", "1e6", "100k", "0", "-5",
                            "99999999999999999999999999"}) {
        setenv("UDP_BENCH_WARMUP", bad, 1);
        setenv("UDP_BENCH_INSTR", bad, 1);
        RunOptions o = envRunOptions();
        EXPECT_EQ(o.warmupInstrs, defaults.warmupInstrs)
            << "accepted UDP_BENCH_WARMUP=\"" << bad << "\"";
        EXPECT_EQ(o.measureInstrs, defaults.measureInstrs)
            << "accepted UDP_BENCH_INSTR=\"" << bad << "\"";
    }
    unsetenv("UDP_BENCH_WARMUP");
    unsetenv("UDP_BENCH_INSTR");
}

TEST(Runner, ParsePositiveEnvContract)
{
    std::uint64_t v = 0;
    unsetenv("UDP_TEST_COUNT");
    EXPECT_FALSE(parsePositiveEnv("UDP_TEST_COUNT", &v)); // unset: silent

    setenv("UDP_TEST_COUNT", "42", 1);
    EXPECT_TRUE(parsePositiveEnv("UDP_TEST_COUNT", &v));
    EXPECT_EQ(v, 42u);

    setenv("UDP_TEST_COUNT", "4x", 1);
    v = 7;
    EXPECT_FALSE(parsePositiveEnv("UDP_TEST_COUNT", &v));
    EXPECT_EQ(v, 7u); // out untouched on failure
    unsetenv("UDP_TEST_COUNT");
}

TEST(Runner, ReportStatSetHasCoreMetrics)
{
    Report r;
    r.ipc = 1.5;
    r.icacheMpki = 3.25;
    StatSet s = r.toStatSet();
    EXPECT_DOUBLE_EQ(s.get("ipc"), 1.5);
    EXPECT_DOUBLE_EQ(s.get("icache_mpki"), 3.25);
    EXPECT_TRUE(s.has("timeliness"));
    EXPECT_TRUE(s.has("usefulness"));
    EXPECT_TRUE(s.has("onpath_ratio"));
    EXPECT_TRUE(s.has("avg_ftq_occupancy"));
}

TEST(Presets, TableIIDefaults)
{
    SimConfig c = presets::fdipBaseline();
    EXPECT_EQ(c.ftqCapacity, 32u);               // Ishii baseline
    EXPECT_EQ(c.mem.l1iSize, 32u * 1024);        // 32 KiB 8-way L1I
    EXPECT_EQ(c.mem.l1iAssoc, 8u);
    EXPECT_EQ(c.mem.l1dSize, 48u * 1024);        // 48 KiB 12-way L1D
    EXPECT_EQ(c.mem.l2Size, 512u * 1024);
    EXPECT_EQ(c.mem.llcSize, 2u * 1024 * 1024);
    EXPECT_EQ(c.bpu.btb.numEntries, 8192u);      // 8K BTB
    EXPECT_EQ(c.backend.robSize, 352u);          // Sunny-Cove-like
    EXPECT_EQ(c.backend.rsSize, 125u);
    EXPECT_EQ(c.backend.numAlu, 4u);
    EXPECT_EQ(c.backend.numLoad, 2u);
    EXPECT_EQ(c.backend.numStore, 2u);
    EXPECT_EQ(c.frontend.blocksPerCycle, 2u);    // FTQ blocks/cycle
}

TEST(Presets, VariantsDiffer)
{
    EXPECT_TRUE(presets::perfectIcache().mem.perfectIcache);
    EXPECT_FALSE(presets::noPrefetch().fdip.enabled);
    EXPECT_TRUE(presets::udp8k().udpEnabled);
    EXPECT_TRUE(presets::udpInfinite().udp.usefulSet.infiniteStorage);
    EXPECT_EQ(presets::bigIcache40k().mem.l1iSize, 40u * 1024);
    EXPECT_EQ(presets::bigIcache40k().mem.l1iAssoc, 10u);
    EXPECT_TRUE(presets::eip8k().eipEnabled);
    EXPECT_EQ(presets::uftq(UftqMode::AtrAur).uftq.mode, UftqMode::AtrAur);
    EXPECT_EQ(presets::fdipWithFtq(96).ftqCapacity, 96u);
    EXPECT_GE(presets::fdipWithFtq(200).ftqPhysical, 200u);
}

TEST(Runner, ProgramCacheGivesSameWorkload)
{
    // Two runs of the same profile must simulate the identical program
    // (the cache keys on name+seed+footprint).
    Profile p = profileByName("mediawiki");
    p.codeFootprintKB = 96;
    p.name = "mediawiki-cache-test";
    RunOptions o;
    o.warmupInstrs = 20'000;
    o.measureInstrs = 30'000;
    Report a = runSim(p, presets::fdipBaseline(), o, "");
    Report b = runSim(p, presets::fdipBaseline(), o, "");
    EXPECT_EQ(a.cycles, b.cycles);
}

} // namespace
} // namespace udp

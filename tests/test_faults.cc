/**
 * @file
 * Tests for the simulation-hardening layer: the forward-progress watchdog
 * (sim/cpu.cc), the cross-component invariant checker (sim/invariants.h),
 * deterministic fault injection (sim/faultinject.h) and fault-tolerant
 * sweeps (SweepRunner::runChecked + failure-row sinks). Every injectable
 * fault class must be detected with the right structured SimError kind
 * and a non-empty multi-component diagnostic dump.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/cpu.h"
#include "sim/faultinject.h"
#include "sim/invariants.h"
#include "sim/simerror.h"
#include "sim/sweep.h"
#include "stats/sink.h"
#include "workload/builder.h"

namespace udp {
namespace {

RunOptions
tinyOptions()
{
    RunOptions o;
    o.warmupInstrs = 10'000;
    o.measureInstrs = 20'000;
    return o;
}

/** A small workload so each run is fast. */
Profile
tinyProfile(const std::string& name, std::uint64_t seed)
{
    Profile p = profileByName("mediawiki");
    p.name = name;
    p.seed = seed;
    p.codeFootprintKB = 64;
    return p;
}

/** Baseline config with fast watchdog/invariant cadences for tests. */
SimConfig
hardenedConfig()
{
    SimConfig c = presets::fdipBaseline();
    c.watchdog.retireStallCycles = 5'000;
    c.watchdog.invariantPeriod = 64;
    return c;
}

void
expectIdenticalReports(const Report& a, const Report& b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.configName, b.configName);
    const StatSet sa = a.toStatSet();
    const StatSet sb = b.toStatSet();
    const auto& ea = sa.entries();
    const auto& eb = sb.entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].first, eb[i].first);
        EXPECT_EQ(ea[i].second, eb[i].second)
            << "stat " << ea[i].first << " differs";
    }
}

/**
 * Runs the faulty config and returns the SimError subclass it must raise.
 * A completed run or a wrong exception type fails the test (the rethrow
 * is reported by gtest as the failure cause).
 */
template <typename ErrorT>
ErrorT
expectSimError(const SimConfig& cfg, const char* label)
{
    Profile p = tinyProfile("faulttest", 7);
    try {
        runSim(p, cfg, tinyOptions(), label);
    } catch (const ErrorT& e) {
        return e;
    } catch (const std::exception& e) {
        ADD_FAILURE() << label << ": wrong exception type: " << e.what();
        throw;
    }
    ADD_FAILURE() << label << ": expected a SimError, run completed";
    throw std::runtime_error("expected SimError");
}

// --- watchdog --------------------------------------------------------------

TEST(Watchdog, FreezeRetireTripsRetireStallWithinBudget)
{
    SimConfig c = hardenedConfig();
    c.fault.kind = FaultKind::FreezeRetire;
    c.fault.triggerCycle = 500;

    SimHang e = expectSimError<SimHang>(c, "freeze");
    EXPECT_EQ(e.kind(), SimErrorKind::RetireStall);
    EXPECT_STREQ(e.kindName(), "retire_stall");
    EXPECT_EQ(e.component(), "backend");
    // The deliberately deadlocked sim must terminate within the watchdog
    // window of the freeze (plus one window of slack for the last retire
    // before the freeze landed).
    EXPECT_GE(e.cycle(), c.fault.triggerCycle);
    EXPECT_LE(e.cycle(),
              c.fault.triggerCycle + 2 * c.watchdog.retireStallCycles);
    // Multi-component diagnostic dump.
    EXPECT_NE(e.dump().find("[cpu]"), std::string::npos);
    EXPECT_NE(e.dump().find("[ftq]"), std::string::npos);
    EXPECT_NE(e.dump().find("[fetch]"), std::string::npos);
    EXPECT_NE(e.dump().find("[rob]"), std::string::npos);
    EXPECT_NE(e.dump().find("[mshr]"), std::string::npos);
    EXPECT_NE(e.dump().find("frozen=1"), std::string::npos);
}

TEST(Watchdog, CycleBudgetTrips)
{
    SimConfig c = presets::fdipBaseline();
    c.watchdog.maxCycles = 2'000; // far below what 30k instructions need

    SimHang e = expectSimError<SimHang>(c, "budget");
    EXPECT_EQ(e.kind(), SimErrorKind::CycleBudget);
    EXPECT_STREQ(e.kindName(), "cycle_budget");
    EXPECT_EQ(e.cycle(), c.watchdog.maxCycles);
    EXPECT_NE(e.dump().find("[rob]"), std::string::npos);
}

TEST(Watchdog, DelayFillWedgesFetchAndTripsRetireStall)
{
    SimConfig c = hardenedConfig();
    c.watchdog.invariantPeriod = 0; // a delayed fill is not an invariant
    c.fault.kind = FaultKind::DelayFill;
    c.fault.triggerCycle = 200;

    SimHang e = expectSimError<SimHang>(c, "delay");
    EXPECT_EQ(e.kind(), SimErrorKind::RetireStall);
    EXPECT_NE(e.dump().find("[mshr]"), std::string::npos);
}

// --- invariant checker -----------------------------------------------------

TEST(Invariants, DropFillTripsMshrLeak)
{
    SimConfig c = hardenedConfig();
    c.fault.kind = FaultKind::DropFill;
    c.fault.triggerCycle = 200;

    InvariantViolation e = expectSimError<InvariantViolation>(c, "drop");
    EXPECT_EQ(e.kind(), SimErrorKind::InvariantViolation);
    EXPECT_STREQ(e.kindName(), "invariant");
    EXPECT_EQ(e.component(), "mshr");
    EXPECT_NE(std::string(e.what()).find("leaked"), std::string::npos);
    EXPECT_FALSE(e.dump().empty());
}

TEST(Invariants, LeakMshrTripsMshrLeak)
{
    SimConfig c = hardenedConfig();
    c.fault.kind = FaultKind::LeakMshr;
    c.fault.triggerCycle = 200;

    InvariantViolation e = expectSimError<InvariantViolation>(c, "leak");
    EXPECT_EQ(e.component(), "mshr");
    EXPECT_NE(std::string(e.what()).find("leaked"), std::string::npos);
}

TEST(Invariants, DuplicateMshrTripsDuplicateLine)
{
    SimConfig c = hardenedConfig();
    c.fault.kind = FaultKind::DuplicateMshr;
    c.fault.triggerCycle = 200;

    InvariantViolation e = expectSimError<InvariantViolation>(c, "dup");
    EXPECT_EQ(e.component(), "mshr");
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
}

TEST(Invariants, CorruptFtqEntryTripsWellFormedness)
{
    SimConfig c = hardenedConfig();
    c.fault.kind = FaultKind::CorruptFtqEntry;
    c.fault.triggerCycle = 200;

    InvariantViolation e = expectSimError<InvariantViolation>(c, "corrupt");
    EXPECT_EQ(e.component(), "ftq");
    EXPECT_NE(std::string(e.what()).find("invalid startPc"),
              std::string::npos);
    EXPECT_NE(e.dump().find("[ftq]"), std::string::npos);
}

TEST(Invariants, CleanRunIsUnaffectedByChecking)
{
    // Same run with aggressive checking vs checking disabled: the checks
    // must be observation-only, so the Reports are bit-identical.
    Profile p = tinyProfile("cleantest", 3);
    SimConfig checked = hardenedConfig();
    checked.watchdog.invariantPeriod = 16;

    SimConfig unchecked = presets::fdipBaseline();
    unchecked.watchdog.retireStallCycles = 0;
    unchecked.watchdog.invariantPeriod = 0;

    Report a = runSim(p, checked, tinyOptions(), "cfg");
    Report b = runSim(p, unchecked, tinyOptions(), "cfg");
    expectIdenticalReports(a, b);
}

TEST(Invariants, HealthyCpuCollectsNoFailures)
{
    Profile p = tinyProfile("collect", 5);
    Program prog = ProgramBuilder::build(p);
    SimConfig c = presets::udp8k();
    c.uftq.mode = UftqMode::AtrAur;
    Cpu cpu(prog, c);
    cpu.runUntilRetired(5'000);
    EXPECT_TRUE(collectInvariantFailures(cpu, /*full=*/false).empty());
    EXPECT_TRUE(collectInvariantFailures(cpu, /*full=*/true).empty());
    // The dump is well-formed even on a healthy machine.
    std::string dump = cpu.dumpState();
    EXPECT_NE(dump.find("[cpu]"), std::string::npos);
    EXPECT_NE(dump.find("[uftq]"), std::string::npos);
    EXPECT_NE(dump.find("[udp]"), std::string::npos);
}

// --- fault-tolerant sweeps -------------------------------------------------

/** Three healthy jobs + one deadlocking job at index 1. */
std::vector<SweepJob>
mixedJobs()
{
    RunOptions o = tinyOptions();
    Profile p = tinyProfile("sweepfault", 11);
    SimConfig bad = hardenedConfig();
    bad.fault.kind = FaultKind::FreezeRetire;
    bad.fault.triggerCycle = 500;

    std::vector<SweepJob> jobs;
    jobs.push_back({p, presets::fdipBaseline(), o, "fdip32"});
    jobs.push_back({p, bad, o, "frozen"});
    jobs.push_back({p, presets::fdipWithFtq(64), o, "ftq64"});
    jobs.push_back({p, presets::noPrefetch(), o, "nopf"});
    return jobs;
}

TEST(SweepChecked, OneCrashingJobStillYieldsEveryOtherReport)
{
    std::vector<SweepJob> jobs = mixedJobs();

    std::vector<SweepProgress> seen;
    SweepOptions opts;
    opts.numThreads = 2;
    opts.quiet = true;
    opts.onProgress = [&seen](const SweepProgress& p) { seen.push_back(p); };
    std::vector<JobResult> results = SweepRunner(opts).runChecked(jobs);

    ASSERT_EQ(results.size(), jobs.size());
    EXPECT_TRUE(results[0].ok);
    EXPECT_TRUE(results[2].ok);
    EXPECT_TRUE(results[3].ok);
    ASSERT_FALSE(results[1].ok);
    EXPECT_EQ(results[1].error.kind, "retire_stall");
    EXPECT_EQ(results[1].error.component, "backend");
    EXPECT_GT(results[1].error.cycle, 0u);
    EXPECT_FALSE(results[1].error.dump.empty());
    EXPECT_TRUE(static_cast<bool>(results[1].exception));

    // The healthy jobs' Reports are exactly what a clean sweep produces.
    std::vector<SweepJob> clean = {jobs[0], jobs[2], jobs[3]};
    SweepOptions serial;
    serial.numThreads = 1;
    serial.quiet = true;
    std::vector<Report> ref = SweepRunner(serial).run(clean);
    expectIdenticalReports(results[0].report, ref[0]);
    expectIdenticalReports(results[2].report, ref[1]);
    expectIdenticalReports(results[3].report, ref[2]);

    // Progress: a failed job still counts, so done reaches total and the
    // failure is visible in the snapshots (the satellite fix).
    ASSERT_EQ(seen.size(), jobs.size());
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].done, i + 1);
        EXPECT_EQ(seen[i].total, jobs.size());
    }
    EXPECT_EQ(seen.back().failed, 1u);
    EXPECT_DOUBLE_EQ(seen.back().etaSec, 0.0);
}

TEST(SweepChecked, RunRethrowsTheFirstFailure)
{
    std::vector<SweepJob> jobs = mixedJobs();
    SweepOptions opts;
    opts.numThreads = 2;
    opts.quiet = true;
    EXPECT_THROW(SweepRunner(opts).run(jobs), SimHang);
}

TEST(SweepChecked, JobCycleBudgetBoundsAHangingJob)
{
    // The job's own watchdog is fully disabled: without the sweep-level
    // budget this job would hang the batch forever.
    RunOptions o = tinyOptions();
    SimConfig bad = presets::fdipBaseline();
    bad.watchdog.retireStallCycles = 0;
    bad.watchdog.invariantPeriod = 0;
    bad.fault.kind = FaultKind::FreezeRetire;
    bad.fault.triggerCycle = 500;

    std::vector<SweepJob> jobs = {
        {tinyProfile("budget", 13), bad, o, "frozen"}};
    SweepOptions opts;
    opts.numThreads = 1;
    opts.quiet = true;
    opts.jobCycleBudget = 20'000;
    std::vector<JobResult> results = SweepRunner(opts).runChecked(jobs);
    ASSERT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].error.kind, "cycle_budget");
    EXPECT_EQ(results[0].error.cycle, 20'000u);
}

TEST(SweepChecked, RetriesAreBoundedAndCounted)
{
    std::vector<SweepJob> jobs = mixedJobs();
    SweepOptions opts;
    opts.numThreads = 2;
    opts.quiet = true;
    opts.maxAttempts = 2;
    std::vector<JobResult> results = SweepRunner(opts).runChecked(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    EXPECT_EQ(results[0].attempts, 1u); // success on the first try
    ASSERT_FALSE(results[1].ok);        // deterministic fault: still fails
    EXPECT_EQ(results[1].attempts, 2u); // ...but consumed both attempts
}

TEST(SweepChecked, FailureDumpIsWrittenToDumpDir)
{
    std::string dir = ::testing::TempDir() + "udp_fault_dumps";
    std::filesystem::remove_all(dir);

    std::vector<SweepJob> jobs = mixedJobs();
    SweepOptions opts;
    opts.numThreads = 1;
    opts.quiet = true;
    opts.dumpDir = dir;
    std::vector<JobResult> results = SweepRunner(opts).runChecked(jobs);
    ASSERT_FALSE(results[1].ok);
    ASSERT_FALSE(results[1].error.dumpPath.empty());
    std::ifstream in(results[1].error.dumpPath);
    ASSERT_TRUE(in.is_open());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("retire_stall"), std::string::npos);
    EXPECT_NE(ss.str().find("[rob]"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// --- failure-row sinks -----------------------------------------------------

FailureRow
sampleFailure()
{
    FailureRow f;
    f.workload = "mysql";
    f.config = "udp8k";
    f.errorKind = "retire_stall";
    f.component = "backend";
    f.message = "no instruction retired for 5000 cycles";
    f.dumpPath = "dumps/udp8k-1.dump.txt";
    f.cycle = 12'345;
    f.attempts = 2;
    f.signal = "SIGSEGV";
    f.stderrTail = "[fault] crash_segv: raising SIGSEGV\n";
    f.maxRssKb = 61'440;
    f.userSec = 0.25;
    f.sysSec = 0.125;
    return f;
}

TEST(Sink, FailureRowSerialization)
{
    FailureRow f = sampleFailure();
    std::string json = failureToJsonLine(f);
    EXPECT_NE(json.find("\"workload\":\"mysql\""), std::string::npos);
    EXPECT_NE(json.find("\"error_kind\":\"retire_stall\""),
              std::string::npos);
    EXPECT_NE(json.find("\"component\":\"backend\""), std::string::npos);
    EXPECT_NE(json.find("\"cycle\":12345"), std::string::npos);
    EXPECT_NE(json.find("\"attempts\":2"), std::string::npos);
    // Isolation diagnostics ride along in both serializations.
    EXPECT_NE(json.find("\"signal\":\"SIGSEGV\""), std::string::npos);
    EXPECT_NE(json.find("\"max_rss_kb\":61440"), std::string::npos);
    EXPECT_NE(json.find("\"stderr_tail\":\"[fault] crash_segv"),
              std::string::npos);
    EXPECT_NE(failureToCsvRow(f).find("SIGSEGV"), std::string::npos);
    // Report lines never carry "error_kind": the discriminator key.
    EXPECT_EQ(reportToJsonLine(Report{}).find("error_kind"),
              std::string::npos);

    auto commas = [](const std::string& s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(failureToCsvRow(f)), commas(failureCsvHeader()));
    EXPECT_EQ(failureSchemaKeys().size(),
              static_cast<std::size_t>(commas(failureCsvHeader())) + 1);
}

TEST(Sink, WriteFailureCreatesSiblingCsvAndTaggedJsonLine)
{
    std::string json_path = ::testing::TempDir() + "fault_sink.jsonl";
    std::string csv_path = ::testing::TempDir() + "fault_sink.csv";
    std::string fail_path = ::testing::TempDir() + "fault_sink.failures.csv";
    std::remove(fail_path.c_str());

    Report r;
    r.workload = "app";
    r.configName = "cfg";

    ReportSink sink;
    ASSERT_TRUE(sink.openJson(json_path));
    ASSERT_TRUE(sink.openCsv(csv_path));
    sink.write(r);
    EXPECT_EQ(sink.failureCount(), 0u);
    sink.writeFailure(sampleFailure());
    EXPECT_EQ(sink.failureCount(), 1u);
    sink.close();

    // JSONL: report line then failure line, in the same stream.
    std::ifstream jf(json_path);
    std::string l1;
    std::string l2;
    ASSERT_TRUE(std::getline(jf, l1));
    ASSERT_TRUE(std::getline(jf, l2));
    EXPECT_EQ(l1, reportToJsonLine(r));
    EXPECT_EQ(l2, failureToJsonLine(sampleFailure()));

    // The failure CSV is a sibling file with its own header.
    std::ifstream ff(fail_path);
    ASSERT_TRUE(ff.is_open());
    std::string header;
    std::string row;
    ASSERT_TRUE(std::getline(ff, header));
    EXPECT_EQ(header, failureCsvHeader());
    ASSERT_TRUE(std::getline(ff, row));
    EXPECT_EQ(row, failureToCsvRow(sampleFailure()));

    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
    std::remove(fail_path.c_str());
}

// --- error-type plumbing ---------------------------------------------------

TEST(SimErrorTypes, KindNamesAreStable)
{
    EXPECT_STREQ(simErrorKindName(SimErrorKind::RetireStall),
                 "retire_stall");
    EXPECT_STREQ(simErrorKindName(SimErrorKind::CycleBudget),
                 "cycle_budget");
    EXPECT_STREQ(simErrorKindName(SimErrorKind::InvariantViolation),
                 "invariant");
    EXPECT_STREQ(faultKindName(FaultKind::DropFill), "drop_fill");
    EXPECT_STREQ(faultKindName(FaultKind::FreezeRetire), "freeze_retire");
}

TEST(SimErrorTypes, WhatCombinesTheStructuredFields)
{
    SimError e(SimErrorKind::RetireStall, "backend", 42, "stalled", "dump");
    EXPECT_STREQ(e.what(), "[retire_stall] cycle 42, backend: stalled");
    EXPECT_EQ(e.dump(), "dump");
    // SimError is catchable as std::runtime_error (sweep fallback path).
    try {
        throw InvariantViolation("ftq", 7, "bad entry", "");
    } catch (const std::runtime_error& re) {
        EXPECT_NE(std::string(re.what()).find("invariant"),
                  std::string::npos);
    }
}

} // namespace
} // namespace udp

/**
 * @file
 * Tests for Program serialization: save/load round trip, corruption
 * detection, and dynamic-stream equivalence of the reloaded image.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/builder.h"
#include "workload/serialize.h"
#include "workload/true_stream.h"

namespace udp {
namespace {

Program
sampleProgram()
{
    Profile p = profileByName("drupal");
    p.codeFootprintKB = 96;
    p.name = "drupal-serial";
    return ProgramBuilder::build(p);
}

TEST(Serialize, RoundTripPreservesStaticImage)
{
    Program orig = sampleProgram();
    std::stringstream buf;
    saveProgram(orig, buf);
    Program copy = loadProgram(buf);

    EXPECT_EQ(copy.name(), orig.name());
    EXPECT_EQ(copy.entry(), orig.entry());
    ASSERT_EQ(copy.numInstrs(), orig.numInstrs());
    for (InstIdx i = 0; i < orig.numInstrs(); ++i) {
        const Instr& a = orig.instrAt(i);
        const Instr& b = copy.instrAt(i);
        ASSERT_EQ(a.type, b.type) << i;
        ASSERT_EQ(a.branch, b.branch) << i;
        ASSERT_EQ(a.target, b.target) << i;
        ASSERT_EQ(a.dep1, b.dep1) << i;
        ASSERT_EQ(a.dep2, b.dep2) << i;
    }
    EXPECT_EQ(copy.numCondBehaviors(), orig.numCondBehaviors());
    EXPECT_EQ(copy.numIndirectBehaviors(), orig.numIndirectBehaviors());
    EXPECT_EQ(copy.numMemPatterns(), orig.numMemPatterns());
}

TEST(Serialize, RoundTripPreservesDynamicStream)
{
    Program orig = sampleProgram();
    std::stringstream buf;
    saveProgram(orig, buf);
    Program copy = loadProgram(buf);

    Walker wa(orig);
    Walker wb(copy);
    for (int i = 0; i < 30000; ++i) {
        ArchInstr a = wa.step();
        ArchInstr b = wb.step();
        ASSERT_EQ(a.pc, b.pc) << "step " << i;
        ASSERT_EQ(a.nextPc, b.nextPc) << "step " << i;
        ASSERT_EQ(a.memAddr, b.memAddr) << "step " << i;
    }
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream buf;
    buf << "this is not a program image at all";
    EXPECT_THROW(loadProgram(buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncation)
{
    Program orig = sampleProgram();
    std::stringstream buf;
    saveProgram(orig, buf);
    std::string bytes = buf.str();
    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(loadProgram(cut), std::runtime_error);
}

TEST(Serialize, RejectsMissingFile)
{
    EXPECT_THROW(loadProgramFile("/nonexistent/path.prog"),
                 std::runtime_error);
}

TEST(Serialize, FileRoundTrip)
{
    Program orig = sampleProgram();
    std::string path = ::testing::TempDir() + "udp_prog_test.bin";
    saveProgramFile(orig, path);
    Program copy = loadProgramFile(path);
    EXPECT_EQ(copy.numInstrs(), orig.numInstrs());
    std::remove(path.c_str());
}

} // namespace
} // namespace udp

/**
 * @file
 * Tests for the frontend: FTQ behaviour, decoupled block building against
 * a hand-crafted program, FDIP probing, post-fetch correction and the
 * EIP baseline prefetcher.
 */

#include <gtest/gtest.h>

#include "frontend/decoupled_fe.h"
#include "frontend/fdip.h"
#include "frontend/fetch.h"
#include "prefetch/eip.h"

namespace udp {
namespace {

// -------------------------------------------------------------------- FTQ

TEST(Ftq, CapacityAndPushPop)
{
    Ftq q(64, 4);
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 4; ++i) {
        FtqEntry e;
        e.id = q.allocId();
        e.startPc = 0x400000 + Addr{i} * 32;
        q.push(std::move(e));
    }
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.size(), 4u);
    FtqEntry head = q.popFront();
    EXPECT_EQ(head.startPc, 0x400000u);
    EXPECT_FALSE(q.full());
}

TEST(Ftq, DynamicCapacityClamped)
{
    Ftq q(64, 32);
    q.setCapacity(1000);
    EXPECT_EQ(q.capacity(), 64u);
    q.setCapacity(0);
    EXPECT_EQ(q.capacity(), 1u);
}

TEST(Ftq, ShrinkRetainsEntries)
{
    Ftq q(64, 8);
    for (int i = 0; i < 8; ++i) {
        FtqEntry e;
        e.id = q.allocId();
        q.push(std::move(e));
    }
    q.setCapacity(2);
    EXPECT_EQ(q.size(), 8u); // drains naturally
    EXPECT_TRUE(q.full());
}

TEST(Ftq, FlushClearsAndCounts)
{
    Ftq q(64, 8);
    FtqEntry e;
    e.id = q.allocId();
    q.push(std::move(e));
    q.flush();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.stats().flushes, 1u);
}

TEST(Ftq, LineOfBlock)
{
    FtqEntry e;
    e.startPc = 0x400020; // second 32B block of the line
    EXPECT_EQ(e.line(), 0x400000u);
}

// -------------------------- hand-crafted program for frontend unit tests

/**
 * Builds:
 *   0: alu
 *   1: cond (Loop trip 4) -> target 5
 *   2: alu
 *   3: jump -> 0
 *   4: alu (dead)
 *   5: alu
 *   6: return (wraps to entry)
 */
Program
tinyProgram()
{
    std::vector<Instr> ins(7);
    ins[1].type = InstrType::Branch;
    ins[1].branch = BranchKind::CondDirect;
    ins[1].target = 5;
    ins[1].behavior = 0;
    ins[3].type = InstrType::Branch;
    ins[3].branch = BranchKind::Jump;
    ins[3].target = 0;
    ins[6].type = InstrType::Branch;
    ins[6].branch = BranchKind::Return;

    BranchBehavior loop;
    loop.cls = BranchClass::Loop;
    loop.trip = 4;
    loop.noise = 0.0f;
    Program p = Program::assemble("tiny", std::move(ins), 0, {loop}, {}, {},
                                  {});
    EXPECT_EQ(p.validate(), "");
    return p;
}

struct FrontendHarness
{
    Program prog = tinyProgram();
    TrueStream stream{prog};
    Bpu bpu{BpuConfig{}};
    Ftq ftq{64, 32};
    BranchRecordMap records;
    FrontendConfig cfg;
    DecoupledFrontend fe{prog, stream, bpu, ftq, records, cfg};
};

TEST(DecoupledFrontend, ColdStartGoesSequential)
{
    FrontendHarness h;
    h.fe.tick(1);
    ASSERT_FALSE(h.ftq.empty());
    const FtqEntry& e = h.ftq.at(0);
    EXPECT_EQ(e.startPc, h.prog.entryPc());
    // Cold BTB: the frontend sees no branches and fills the whole block.
    EXPECT_EQ(e.numInstrs, kInstrsPerFetchBlock);
    EXPECT_FALSE(e.instrs[1].predictedBranch);
}

TEST(DecoupledFrontend, DivergenceTaggedOnBtbMiss)
{
    FrontendHarness h;
    h.fe.tick(1);
    const FtqEntry& e = h.ftq.at(0);
    // True path: 0,1(taken? loop trip 4 -> taken),... frontend went
    // sequential past the cond branch at 1 => instructions after it are
    // off-path (truth jumps to 5 only on exit; first iterations stay
    // 0,1,2,3 -> check tags are consistent with the true stream).
    EXPECT_TRUE(e.instrs[0].onPath);
    EXPECT_TRUE(e.instrs[1].onPath);
    // Truth for instr 1 (first instance of a trip-4 loop) is taken->5,
    // frontend fell through to 2: diverged from instr 2 on.
    EXPECT_FALSE(e.instrs[2].onPath);
}

TEST(DecoupledFrontend, PredictsThroughWarmBtb)
{
    FrontendHarness h;
    // Warm the BTB as decode would.
    h.bpu.btb().insert(h.prog.pcOf(1), BranchKind::CondDirect,
                       h.prog.pcOf(5));
    h.bpu.btb().insert(h.prog.pcOf(3), BranchKind::Jump, h.prog.pcOf(0));
    h.fe.tick(1);
    ASSERT_GE(h.ftq.size(), 1u);
    const FtqEntry& e = h.ftq.at(0);
    // The cond branch is now recognised.
    EXPECT_TRUE(e.instrs[1].predictedBranch);
    // A prediction record exists for it.
    EXPECT_EQ(h.records.count(e.instrs[1].dynId), 1u);
}

TEST(DecoupledFrontend, ResteerRedirects)
{
    FrontendHarness h;
    h.fe.tick(1);
    h.ftq.flush();
    h.fe.resteer(5, h.prog.pcOf(5), true, 0, false);
    h.fe.tick(3); // still stalled
    EXPECT_TRUE(h.ftq.empty());
    // Rebuild alignment bookkeeping: resync stream index to a fresh pos.
    // (Use index of pc 5 occurrence: simplest is aligned=false.)
    h.fe.resteer(5, h.prog.pcOf(5), false, 0, false);
    h.fe.tick(6);
    ASSERT_FALSE(h.ftq.empty());
    EXPECT_EQ(h.ftq.at(0).startPc, h.prog.pcOf(5));
    EXPECT_GE(h.fe.stats().resteers, 2u);
}

TEST(DecoupledFrontend, StopsWhenFtqFull)
{
    FrontendHarness h;
    for (Cycle t = 1; t < 100; ++t) {
        h.fe.tick(t);
    }
    EXPECT_EQ(h.ftq.size(), h.ftq.capacity());
    EXPECT_GT(h.fe.stats().stallCyclesFtqFull, 0u);
}

// ------------------------------------------------------------------- FDIP

TEST(Fdip, PrefetchesMissingBlocks)
{
    MemSystem mem{MemSysConfig{}};
    Ftq ftq(64, 32);
    FdipEngine fdip(mem, ftq, FdipConfig{});

    FtqEntry e;
    e.id = 1;
    e.startPc = 0x400000;
    e.onPath = true;
    ftq.push(std::move(e));

    fdip.tick(1);
    EXPECT_EQ(fdip.stats().candidates, 1u);
    EXPECT_EQ(fdip.stats().emitted, 1u);
    EXPECT_EQ(fdip.stats().emittedOnPath, 1u);
    EXPECT_TRUE(mem.icacheLineInFlight(0x400000));
}

TEST(Fdip, SkipsResidentBlocks)
{
    MemSystem mem{MemSysConfig{}};
    mem.icache().insert(0x400000, false);
    Ftq ftq(64, 32);
    FdipEngine fdip(mem, ftq, FdipConfig{});

    FtqEntry e;
    e.id = 1;
    e.startPc = 0x400000;
    ftq.push(std::move(e));
    fdip.tick(1);
    EXPECT_EQ(fdip.stats().candidates, 0u);
    EXPECT_EQ(fdip.stats().emitted, 0u);
}

TEST(Fdip, RespectsScanBudget)
{
    MemSystem mem{MemSysConfig{}};
    Ftq ftq(64, 32);
    FdipConfig cfg;
    cfg.blocksPerCycle = 2;
    FdipEngine fdip(mem, ftq, cfg);

    for (int i = 0; i < 6; ++i) {
        FtqEntry e;
        e.id = static_cast<std::uint64_t>(i + 1);
        e.startPc = 0x400000 + Addr{i} * 64; // distinct lines
        ftq.push(std::move(e));
    }
    fdip.tick(1);
    EXPECT_EQ(fdip.stats().blocksScanned, 2u);
    fdip.tick(2);
    fdip.tick(3);
    EXPECT_EQ(fdip.stats().blocksScanned, 6u);
}

TEST(Fdip, DisabledDoesNothing)
{
    MemSystem mem{MemSysConfig{}};
    Ftq ftq(64, 32);
    FdipConfig cfg;
    cfg.enabled = false;
    FdipEngine fdip(mem, ftq, cfg);
    FtqEntry e;
    e.id = 1;
    e.startPc = 0x400000;
    ftq.push(std::move(e));
    fdip.tick(1);
    EXPECT_EQ(fdip.stats().blocksScanned, 0u);
}

TEST(Fdip, FlushResetsScan)
{
    MemSystem mem{MemSysConfig{}};
    Ftq ftq(64, 32);
    FdipEngine fdip(mem, ftq, FdipConfig{});
    for (int i = 0; i < 2; ++i) {
        FtqEntry e;
        e.id = static_cast<std::uint64_t>(i + 1);
        e.startPc = 0x400000 + Addr{i} * 64;
        ftq.push(std::move(e));
    }
    fdip.tick(1);
    ftq.flush();
    fdip.onFtqFlush();
    FtqEntry e;
    e.id = 10;
    e.startPc = 0x500000;
    ftq.push(std::move(e));
    fdip.tick(2);
    EXPECT_TRUE(mem.icacheLineInFlight(0x500000));
}

// -------------------------------------------------------------------- EIP

TEST(Eip, EntanglesAndTriggers)
{
    MemSystem mem{MemSysConfig{}};
    Eip eip(mem, EipConfig{});

    Addr src = 0x400000;
    Addr dst = 0x410000;
    // Train: src accessed, then dst misses ~latencyTarget later.
    for (int round = 0; round < 3; ++round) {
        Cycle base = 1000 + static_cast<Cycle>(round) * 1000;
        eip.onAccess(src, true, base);
        eip.onAccess(dst, false, base + 120);
    }
    EXPECT_GE(eip.stats().entanglings, 1u);

    // Trigger: accessing src prefetches dst.
    eip.onAccess(src, true, 10000);
    EXPECT_GE(eip.stats().prefetchesIssued, 1u);
    EXPECT_TRUE(mem.icacheLineInFlight(dst) || mem.icacheContains(dst));
}

TEST(Eip, StorageBudgetIs8KBClass)
{
    MemSystem mem{MemSysConfig{}};
    Eip eip(mem, EipConfig{});
    EXPECT_LE(eip.storageBits() / 8, 10u * 1024);
    EXPECT_GE(eip.storageBits() / 8, 4u * 1024);
}

TEST(Eip, NoTriggerWhenUntrained)
{
    MemSystem mem{MemSysConfig{}};
    Eip eip(mem, EipConfig{});
    eip.onAccess(0x400000, true, 100);
    EXPECT_EQ(eip.stats().prefetchesIssued, 0u);
}

} // namespace
} // namespace udp

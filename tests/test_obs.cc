/**
 * @file
 * Tests for the observability subsystem (src/obs/): the metrics registry
 * under concurrent increments and registration races, log2-histogram
 * bucket/percentile edge cases, the structured event log's JSONL sink,
 * rate limiting and flush-on-error ring, the sweep STATUS JSON round
 * trip, the live status surface of a distributed sweep — including a
 * mid-sweep worker SIGKILL whose per-worker counters and final job
 * states must reconcile with the merged manifest — and the cycle-loop
 * self-profiler's attribution identity (phases sum to the measured loop
 * time) with byte-identical Reports whether profiling is on or off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/status.h"
#include "sim/manifest.h"
#include "sim/procexec.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "sim/sweepd.h"
#include "sim/workqueue.h"
#include "stats/sink.h"
#include "stats/tracefile.h"

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace udp {
namespace {

std::string
freshDir(const std::string& tag)
{
    namespace fs = std::filesystem;
#ifndef _WIN32
    std::string pid = std::to_string(::getpid());
#else
    std::string pid = "0";
#endif
    fs::path p =
        fs::temp_directory_path() / ("udp_obs_test_" + tag + "_" + pid);
    fs::remove_all(p);
    fs::create_directories(p);
    return p.string();
}

SweepSpec
tinySpec()
{
    SweepSpec s;
    s.name = "obs-tiny";
    s.warmupInstrs = 5'000;
    s.measureInstrs = 10'000;
    s.workloads = {"mediawiki", "drupal"};
    s.configs = {{"fdip32", "fdip", 0}, {"udp8k", "udp8k", 0}};
    return s;
}

std::vector<SweepJob>
tinyJobs()
{
    std::vector<SweepJob> jobs;
    std::string err;
    EXPECT_TRUE(expandSweepSpec(tinySpec(), &jobs, &err)) << err;
    return jobs;
}

LeasePolicy
fastPolicy()
{
    LeasePolicy p;
    p.leaseTtlSec = 1.0;
    p.maxAttempts = 3;
    p.backoffBaseSec = 0.05;
    p.backoffCapSec = 0.2;
    p.stragglerAfterSec = 0.5;
    p.noWorkRetrySec = 0.02;
    return p;
}

// --- metrics registry ------------------------------------------------------

TEST(ObsMetrics, ConcurrentIncrementsAreLossless)
{
    // Every thread resolves the SAME counter by name, then hammers it;
    // relaxed atomic adds must not lose a single increment (this is the
    // test TSan watches for data races on the hot path).
    const unsigned kThreads = 8;
    const std::uint64_t kPerThread = 50'000;
    obs::Counter& c = obs::counter("test.concurrent_increments");
    std::uint64_t base = c.value();
    std::vector<std::thread> ts;
    for (unsigned i = 0; i < kThreads; ++i) {
        ts.emplace_back([&] {
            obs::Counter& mine = obs::counter("test.concurrent_increments");
            for (std::uint64_t k = 0; k < kPerThread; ++k) {
                mine.add(1);
            }
        });
    }
    for (auto& t : ts) {
        t.join();
    }
    EXPECT_EQ(c.value() - base, kThreads * kPerThread);
}

TEST(ObsMetrics, RegistrationRaceYieldsOneObject)
{
    // Threads race to register the same (previously unseen) name: all
    // must get the SAME object, and the concurrent observes must all
    // land in it.
    const unsigned kThreads = 8;
    std::vector<obs::Log2Histogram*> got(kThreads, nullptr);
    std::vector<std::thread> ts;
    for (unsigned i = 0; i < kThreads; ++i) {
        ts.emplace_back([&got, i] {
            obs::Log2Histogram& h =
                obs::histogram("test.registration_race");
            h.observe(i);
            got[i] = &h;
        });
    }
    for (auto& t : ts) {
        t.join();
    }
    for (unsigned i = 1; i < kThreads; ++i) {
        EXPECT_EQ(got[i], got[0]) << "registration race forked the metric";
    }
    EXPECT_EQ(got[0]->count(), kThreads);
}

TEST(ObsMetrics, HistogramBucketAndPercentileEdges)
{
    using H = obs::Log2Histogram;
    // Bucket layout: 0 -> bucket 0; [2^(b-1), 2^b) -> bucket b.
    EXPECT_EQ(H::bucketOf(0), 0u);
    EXPECT_EQ(H::bucketOf(1), 1u);
    EXPECT_EQ(H::bucketOf(2), 2u);
    EXPECT_EQ(H::bucketOf(3), 2u);
    EXPECT_EQ(H::bucketOf(4), 3u);
    EXPECT_EQ(H::bucketOf(~0ull), 64u);
    EXPECT_EQ(H::bucketUpper(0), 0u);
    EXPECT_EQ(H::bucketUpper(1), 1u);
    EXPECT_EQ(H::bucketUpper(2), 3u);
    EXPECT_EQ(H::bucketUpper(64), ~0ull);

    H empty;
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_EQ(empty.percentile(50.0), 0u) << "empty histogram reads 0";

    H one;
    one.observe(5);
    EXPECT_EQ(one.percentile(0.0), 7u) << "single sample, bucket [4,7]";
    EXPECT_EQ(one.percentile(100.0), 7u);

    // 99 zeros and one huge value: p50 stays in the zero bucket, p100
    // lands in the outlier's bucket.
    H skewed;
    for (int i = 0; i < 99; ++i) {
        skewed.observe(0);
    }
    skewed.observe(1 << 20);
    EXPECT_EQ(skewed.percentile(50.0), 0u);
    EXPECT_EQ(skewed.percentile(99.0), 0u);
    EXPECT_EQ(skewed.percentile(100.0), (1u << 21) - 1);
    EXPECT_EQ(skewed.count(), 100u);
    EXPECT_EQ(skewed.sum(), 1u << 20);
}

TEST(ObsMetrics, SnapshotJsonIsStableAndComplete)
{
    obs::counter("test.snap_counter").add(7);
    obs::gauge("test.snap_gauge").set(-3);
    obs::histogram("test.snap_hist").observe(100);
    std::string json = obs::Registry::global().snapshotJson();
    EXPECT_NE(json.find("\"test.snap_counter\":7"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"test.snap_gauge\":-3"), std::string::npos);
    EXPECT_NE(json.find("\"test.snap_hist.count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"test.snap_hist.sum\":100"), std::string::npos);
    EXPECT_NE(json.find("\"test.snap_hist.p50\""), std::string::npos);
    EXPECT_NE(json.find("\"test.snap_hist.p99\""), std::string::npos);
}

// --- event log -------------------------------------------------------------

TEST(ObsEventLog, SinkSchemaRateLimitAndErrorFlush)
{
    obs::EventLog& log = obs::EventLog::global();
    std::string dir = freshDir("eventlog");
    std::string path = dir + "/events.jsonl";
    // Keep the test's own emissions off the test output.
    log.setStderrLevel(obs::LogLevel::Error);
    ASSERT_TRUE(log.openSink(path));

    obs::Event(obs::LogLevel::Info, "obs-test", "tick")
        .u64("n", 1)
        .str("who", "a\"b")
        .every(3600.0)
        .emit();
    std::uint64_t dropsBefore = log.rateLimitedDrops();
    obs::Event(obs::LogLevel::Info, "obs-test", "tick")
        .u64("n", 2)
        .every(3600.0)
        .emit(); // same key inside the window: dropped
    EXPECT_EQ(log.rateLimitedDrops(), dropsBefore + 1);
    obs::Event(obs::LogLevel::Info, "obs-test", "tick")
        .u64("n", 3)
        .every(3600.0)
        .force()
        .emit(); // force bypasses the window

    // Debug is below the sink threshold — it reaches the file only when
    // the subsequent Error flushes the ring for post-mortem context.
    obs::Event(obs::LogLevel::Debug, "obs-test", "breadcrumb")
        .u64("step", 42)
        .emit();
    obs::Event(obs::LogLevel::Error, "obs-test", "boom").emit();

    log.closeSink();
    log.setStderrLevel(obs::LogLevel::Info);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::vector<std::string> lines;
    for (std::string l; std::getline(in, l);) {
        lines.push_back(l);
    }
    auto countContaining = [&](const std::string& needle) {
        std::size_t n = 0;
        for (const std::string& l : lines) {
            if (l.find(needle) != std::string::npos) {
                ++n;
            }
        }
        return n;
    };
    EXPECT_EQ(countContaining("\"event\":\"tick\""), 2u)
        << "rate-limited repeat must not reach the sink";
    EXPECT_EQ(countContaining("\"n\":1"), 1u);
    EXPECT_EQ(countContaining("\"n\":3"), 1u);
    EXPECT_EQ(countContaining("\"who\":\"a\\\"b\""), 1u)
        << "field values must be JSON-escaped";
    EXPECT_EQ(countContaining("\"breadcrumb\""), 1u)
        << "error must flush sub-threshold ring context";
    EXPECT_EQ(countContaining("\"level\":\"error\""), 1u);
    for (const std::string& l : lines) {
        EXPECT_EQ(l.find("{\"ts_ms\":"), 0u)
            << "schema-stable leading key, got: " << l;
        EXPECT_NE(l.find("\"source\":"), std::string::npos);
        EXPECT_NE(l.find("\"event\":"), std::string::npos);
    }
    // The ring keeps recent lines for diagnostics.
    bool sawBoom = false;
    for (const std::string& l : obs::EventLog::global().recentLines()) {
        sawBoom = sawBoom || l.find("\"boom\"") != std::string::npos;
    }
    EXPECT_TRUE(sawBoom);
}

// --- status JSON round trip ------------------------------------------------

TEST(ObsStatus, JsonRoundTripPreservesEveryField)
{
    obs::SweepStatus s;
    s.name = "fig13";
    s.transport = "tcp";
    s.tsMs = 1723190400123ull;
    s.total = 40;
    s.done = 12;
    s.failed = 1;
    s.resumed = 4;
    s.pending = 20;
    s.leased = 7;
    s.elapsedSec = 34.5;
    s.etaSec = 81.25;
    s.jobStates = "DDDDDDDDDDDDFLLLLLLLPPPPPPPPPPPPPPPPPPPP";
    obs::WorkerStatusRow w;
    w.name = "w\"1"; // exercises escaping
    w.activeLeases = 2;
    w.claims = 10;
    w.completed = 8;
    w.failed = 1;
    w.retries = 1;
    w.stragglers = 2;
    w.renewals = 14;
    w.expirations = 3;
    w.lastSeenSec = 0.25;
    s.workers.push_back(w);
    s.metricsJson = "{\"sweepd.jobs_final\":13}";

    std::string json = sweepStatusToJson(s);
    obs::SweepStatus r;
    ASSERT_TRUE(sweepStatusFromJson(json, &r)) << json;
    EXPECT_EQ(r.name, s.name);
    EXPECT_EQ(r.transport, s.transport);
    EXPECT_EQ(r.tsMs, s.tsMs);
    EXPECT_EQ(r.total, s.total);
    EXPECT_EQ(r.done, s.done);
    EXPECT_EQ(r.failed, s.failed);
    EXPECT_EQ(r.resumed, s.resumed);
    EXPECT_EQ(r.pending, s.pending);
    EXPECT_EQ(r.leased, s.leased);
    EXPECT_DOUBLE_EQ(r.elapsedSec, s.elapsedSec);
    EXPECT_DOUBLE_EQ(r.etaSec, s.etaSec);
    EXPECT_EQ(r.jobStates, s.jobStates);
    EXPECT_EQ(r.metricsJson, s.metricsJson);
    ASSERT_EQ(r.workers.size(), 1u);
    EXPECT_EQ(r.workers[0].name, w.name);
    EXPECT_EQ(r.workers[0].activeLeases, w.activeLeases);
    EXPECT_EQ(r.workers[0].claims, w.claims);
    EXPECT_EQ(r.workers[0].completed, w.completed);
    EXPECT_EQ(r.workers[0].failed, w.failed);
    EXPECT_EQ(r.workers[0].retries, w.retries);
    EXPECT_EQ(r.workers[0].stragglers, w.stragglers);
    EXPECT_EQ(r.workers[0].renewals, w.renewals);
    EXPECT_EQ(r.workers[0].expirations, w.expirations);
    EXPECT_DOUBLE_EQ(r.workers[0].lastSeenSec, w.lastSeenSec);
    EXPECT_EQ(r.finals(), 13u);

    obs::SweepStatus bad;
    EXPECT_FALSE(sweepStatusFromJson("not json", &bad));
    EXPECT_FALSE(sweepStatusFromJson("{\"total\":", &bad));
}

// --- live status surface of a running sweep --------------------------------

TEST(ObsStatus, TcpStatusAnswersMidSweep)
{
    std::vector<SweepJob> jobs = tinyJobs();
    CoordinatorOptions co;
    co.name = "tcp-live";
    co.policy = fastPolicy();
    co.endpoint = "tcp:127.0.0.1:0";
    co.specJson = sweepSpecToJson(tinySpec());
    co.pollSec = 0.02;
    co.quiet = true;
    SweepCoordinator coord(jobs, co);
    std::string err;
    ASSERT_TRUE(coord.start(&err)) << err;

    std::thread worker([&] {
        std::string werr;
        auto q = openWorkQueue(coord.endpoint(), 5.0, &werr);
        ASSERT_NE(q, nullptr) << werr;
        WorkerOptions wo;
        wo.name = "slow";
        wo.quiet = true;
        wo.jobDelayMs = 100; // keeps the sweep alive while we poll STATUS
        runSweepWorker(*q, jobs, wo);
    });

    // The TCP server is pumped inside coord.run(), so STATUS must be
    // polled concurrently; collect raw snapshots and verify after join.
    std::atomic<bool> done{false};
    std::mutex mtx;
    std::vector<std::string> snapshots;
    std::thread poller([&] {
        while (!done.load()) {
            std::string raw;
            std::string qerr;
            if (queryQueueStatus(coord.endpoint(), 2.0, &raw, &qerr)) {
                std::lock_guard<std::mutex> lock(mtx);
                snapshots.push_back(std::move(raw));
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });

    std::vector<JobResult> results = coord.run();
    done.store(true);
    worker.join();
    poller.join();

    ASSERT_FALSE(snapshots.empty())
        << "no STATUS answer while the sweep was live";
    bool sawWorker = false;
    for (const std::string& raw : snapshots) {
        obs::SweepStatus s;
        ASSERT_TRUE(obs::sweepStatusFromJson(raw, &s)) << raw;
        EXPECT_EQ(s.total, jobs.size());
        EXPECT_EQ(s.transport, "tcp");
        EXPECT_EQ(s.name, "tcp-live");
        EXPECT_EQ(s.jobStates.size(), jobs.size());
        EXPECT_LE(s.finals(), s.total);
        if (!s.workers.empty() && s.workers[0].name == "slow" &&
            s.workers[0].claims >= 1) {
            sawWorker = true;
        }
    }
    EXPECT_TRUE(sawWorker)
        << "the live worker never appeared on the status board";
    ASSERT_EQ(results.size(), jobs.size());
    for (const JobResult& r : results) {
        EXPECT_TRUE(r.ok);
    }
}

#ifndef _WIN32

pid_t
forkWorker(const std::string& endpoint, const std::vector<SweepJob>& jobs,
           const std::string& name, unsigned jobDelayMs)
{
    pid_t pid = ::fork();
    if (pid != 0) {
        return pid;
    }
    std::string err;
    auto q = openWorkQueue(endpoint, 5.0, &err);
    if (q == nullptr) {
        ::_exit(2);
    }
    WorkerOptions wo;
    wo.name = name;
    wo.quiet = true;
    wo.jobDelayMs = jobDelayMs;
    WorkerSummary s = runSweepWorker(*q, jobs, wo);
    ::_exit(s.queueLost ? 3 : 0);
}

/**
 * The acceptance scenario: an FS-transport sweep with one worker
 * SIGKILLed mid-job. After the drain, "<dir>/status.json" must
 * reconcile exactly with the merged manifest — every job Done, success
 * count matching, per-worker completions summing to the job count, and
 * the victim's lost lease visible as an expiration.
 */
TEST(ObsStatus, FsStatusAfterWorkerSigkillReconcilesWithManifest)
{
    if (!procIsolationSupported()) {
        GTEST_SKIP() << "no fork() on this platform";
    }
    std::vector<SweepJob> jobs = tinyJobs();
    std::string dir = freshDir("status_chaos");
    std::string manifestPath = dir + "/manifest.jsonl";

    CoordinatorOptions co;
    co.name = "fs-chaos";
    co.policy = fastPolicy(); // 1 s lease TTL
    co.endpoint = dir + "/q";
    co.specJson = sweepSpecToJson(tinySpec());
    co.manifestPath = manifestPath;
    co.pollSec = 0.02;
    co.quiet = true;
    SweepCoordinator coord(jobs, co);
    std::string err;
    ASSERT_TRUE(coord.start(&err)) << err;

    pid_t victim = forkWorker(coord.endpoint(), jobs, "victim", 10'000);
    ASSERT_GT(victim, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    pid_t survivor = forkWorker(coord.endpoint(), jobs, "survivor", 0);
    ASSERT_GT(survivor, 0);

    std::vector<JobResult> results = coord.run();
    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    ASSERT_EQ(::waitpid(survivor, &status, 0), survivor);
    ASSERT_EQ(results.size(), jobs.size());
    for (const JobResult& r : results) {
        ASSERT_TRUE(r.ok) << r.error.message;
    }

    // Post-drain status file: the reconciliation surface.
    std::string raw;
    ASSERT_TRUE(queryQueueStatus(co.endpoint, 2.0, &raw, &err)) << err;
    obs::SweepStatus s;
    ASSERT_TRUE(obs::sweepStatusFromJson(raw, &s)) << raw;
    EXPECT_EQ(s.name, "fs-chaos");
    EXPECT_EQ(s.transport, "fs");
    EXPECT_EQ(s.total, jobs.size());
    EXPECT_EQ(s.done, jobs.size());
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.pending, 0u);
    EXPECT_EQ(s.leased, 0u);
    EXPECT_EQ(s.jobStates, std::string(jobs.size(), obs::kJobDone));

    // Per-worker counters reconcile with the manifest's outcomes.
    std::vector<ManifestEntry> entries = readManifestFile(manifestPath);
    std::size_t okEntries = 0;
    for (const ManifestEntry& e : entries) {
        okEntries += e.ok ? 1 : 0;
        EXPECT_FALSE(e.worker.empty())
            << "manifest rows must attribute their worker";
    }
    EXPECT_EQ(okEntries, s.done);
    std::uint64_t completedSum = 0;
    std::uint64_t recoveries = 0; // expiry, straggler dup or retry
    bool sawVictim = false;
    for (const obs::WorkerStatusRow& w : s.workers) {
        completedSum += w.completed;
        recoveries += w.expirations + w.stragglers + w.retries;
        if (w.name == "victim") {
            sawVictim = true;
            EXPECT_GE(w.claims, 1u);
            EXPECT_EQ(w.completed, 0u);
        }
        EXPECT_EQ(w.activeLeases, 0u) << w.name;
    }
    EXPECT_TRUE(sawVictim) << "SIGKILLed worker must stay on the board";
    EXPECT_EQ(completedSum, s.done)
        << "per-worker completions must sum to the manifest successes";
    // The victim died holding a lease; depending on timing the recovery
    // shows up as a TTL expiration, a straggler re-dispatch or a retry —
    // one of them must be on the board.
    EXPECT_GE(recoveries, 1u)
        << "the victim's lost lease must surface in the worker counters";
}

#endif // !_WIN32

// --- cycle-loop self-profiler ----------------------------------------------

TEST(ObsProfiler, AttributionCoversTheLoopByConstruction)
{
    obs::CycleProfiler prof(/*intervalCycles=*/10);
    for (Cycle c = 1; c <= 25; ++c) {
        prof.beginCycle(c);
        prof.phase(obs::ProfPhase::Icache);
        prof.phase(obs::ProfPhase::Backend);
        prof.phase(obs::ProfPhase::Fetch);
        prof.endCycle();
    }
    auto snap = prof.snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->cycles, 25u);
    // 2 full 10-cycle intervals + the partial tail closed into the copy.
    EXPECT_EQ(snap->intervals.size(), 3u);
    double phaseSum = 0.0;
    double fracSum = 0.0;
    for (std::size_t p = 0; p < obs::kNumProfPhases; ++p) {
        phaseSum += snap->phaseSec[p];
        fracSum += snap->phaseFrac(static_cast<obs::ProfPhase>(p));
    }
    EXPECT_GT(snap->totalSec, 0.0);
    EXPECT_NEAR(phaseSum, snap->totalSec, 1e-12)
        << "every nanosecond must land in exactly one phase";
    EXPECT_NEAR(fracSum, 1.0, 1e-9);
    double intervalSum = 0.0;
    for (const obs::ProfileIntervalRow& row : snap->intervals) {
        intervalSum += row.totalSec();
    }
    EXPECT_NEAR(intervalSum, snap->totalSec, 1e-12);
}

TEST(ObsProfiler, RunSimAttachesProfileAndKeepsReportsByteIdentical)
{
    std::vector<SweepJob> jobs = tinyJobs();
    const SweepJob& job = jobs[0];

    Report plain = runSim(job.profile, job.config, job.opts, job.label);
    EXPECT_EQ(plain.profile, nullptr);

    SimConfig cfg = job.config;
    cfg.profile.enabled = true;
    cfg.profile.intervalCycles = 5'000;
    Report profiled = runSim(job.profile, cfg, job.opts, job.label);
    ASSERT_NE(profiled.profile, nullptr);
    EXPECT_GT(profiled.profile->totalSec, 0.0);
    EXPECT_EQ(profiled.profile->cycles, profiled.cycles)
        << "profiler must cover every measured cycle";
    EXPECT_FALSE(profiled.profile->intervals.empty());
    // Attribution identity: phases account for >= 95% of the measured
    // loop wall time (here exactly 100% by construction).
    double phaseSum = 0.0;
    for (std::size_t p = 0; p < obs::kNumProfPhases; ++p) {
        phaseSum += profiled.profile->phaseSec[p];
    }
    EXPECT_GE(phaseSum, 0.95 * profiled.profile->totalSec);

    EXPECT_EQ(reportToJsonLine(plain), reportToJsonLine(profiled))
        << "profiling must not perturb the report artifact";
}

// --- chrome-trace + sink rendering of profiles -----------------------------

TEST(ObsProfiler, ChromeTraceAndSummaryRowRenderPhases)
{
    obs::CycleProfiler prof(/*intervalCycles=*/4);
    for (Cycle c = 1; c <= 8; ++c) {
        prof.beginCycle(c);
        prof.phase(obs::ProfPhase::Prefetch);
        prof.endCycle();
    }
    auto snap = prof.snapshot();

    std::string trace = chromeTraceJson({{"mysql/udp8k", nullptr, snap}});
    EXPECT_NE(trace.find("self_profile"), std::string::npos);
    EXPECT_NE(trace.find("host_us_per_phase"), std::string::npos);
    EXPECT_NE(trace.find("\"prefetch\":"), std::string::npos);
    long depth = 0;
    for (char ch : trace) {
        depth += (ch == '{' || ch == '[') ? 1 : 0;
        depth -= (ch == '}' || ch == ']') ? 1 : 0;
    }
    EXPECT_EQ(depth, 0) << "unbalanced trace JSON";

    std::string row = profileSummaryToJsonLine("mysql", "udp8k", *snap);
    EXPECT_EQ(row.find("{\"row_type\":\"profile_summary\""), 0u) << row;
    EXPECT_NE(row.find("\"workload\":\"mysql\""), std::string::npos);
    EXPECT_NE(row.find("\"phase_prefetch_sec\":"), std::string::npos);
    EXPECT_NE(row.find("\"phase_prefetch_pct\":"), std::string::npos);
    EXPECT_NE(row.find("\"cycles\":8"), std::string::npos);
}

} // namespace
} // namespace udp

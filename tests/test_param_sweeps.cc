/**
 * @file
 * Parameterised property sweeps across component configurations:
 * monotonicity and correctness properties that must hold for *every*
 * geometry, not just the Table II defaults.
 */

#include <gtest/gtest.h>

#include "bpred/tage.h"
#include "cache/memsys.h"
#include "common/rng.h"

namespace udp {
namespace {

// ------------------------------------------------ icache size monotonicity

class IcacheSizeSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IcacheSizeSweep, FixedPatternMissesAreBoundedByCapacity)
{
    MemSysConfig cfg;
    cfg.l1iSize = GetParam();
    MemSystem mem(cfg);

    // Touch a 64 KiB code region round-robin: a cache of size S keeps at
    // most S/64 of those lines.
    const unsigned lines = 1024;
    Cycle t = 1;
    for (int round = 0; round < 3; ++round) {
        for (unsigned i = 0; i < lines; ++i) {
            mem.ifetch(0x400000 + Addr{i} * kLineBytes, t, true);
            for (int k = 0; k < 3; ++k) {
                mem.tick(++t);
            }
        }
    }
    // Fills must never exceed accesses, and hits must be consistent.
    const MemSysStats& s = mem.stats();
    EXPECT_EQ(s.ifetchAccesses, 3u * lines);
    EXPECT_EQ(s.ifetchL1Hits + s.ifetchMshrHits + s.ifetchMisses +
                  s.ifetchStalls,
              s.ifetchAccesses);
    // With a working set 2x..8x the cache, misses must dominate hits
    // after the first round for the smaller caches.
    if (GetParam() <= 32 * 1024) {
        EXPECT_GT(s.ifetchMisses, s.ifetchL1Hits / 4);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IcacheSizeSweep,
                         ::testing::Values(std::uint64_t{16 * 1024},
                                           std::uint64_t{32 * 1024},
                                           std::uint64_t{64 * 1024},
                                           std::uint64_t{128 * 1024}));

// --------------------------------------------------- TAGE geometry sweep

class TageGeometrySweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(TageGeometrySweep, LearnsPatternUnderAnyGeometry)
{
    auto [tables, bits] = GetParam();
    TageConfig cfg;
    cfg.numTables = tables;
    cfg.tableBits = bits;
    cfg.baseBits = 12;
    cfg.maxHist = 128;
    Tage tage(cfg);

    Addr pc = 0x400040;
    int late_misses = 0;
    for (int i = 0; i < 4000; ++i) {
        TagePrediction p = tage.predict(pc);
        bool outcome = (i % 3) == 0; // period-3 pattern
        if (i > 2000 && p.taken != outcome) {
            ++late_misses;
        }
        tage.specUpdateHistory(outcome, pc);
        tage.update(pc, p, outcome);
    }
    EXPECT_LT(late_misses / 2000.0, 0.08)
        << "tables=" << tables << " bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TageGeometrySweep,
    ::testing::Values(std::make_pair(4u, 9u), std::make_pair(6u, 10u),
                      std::make_pair(8u, 11u), std::make_pair(12u, 11u)));

// ---------------------------------------------- MSHR capacity consistency

class MshrCapacitySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MshrCapacitySweep, NeverOverflowsAndAlwaysDrains)
{
    MshrFile m(GetParam());
    Rng rng(42);
    std::uint64_t allocated = 0;
    std::uint64_t drained = 0;
    Cycle now = 0;
    for (int step = 0; step < 2000; ++step) {
        ++now;
        if (rng.chance(0.6)) {
            Addr line = lineAddr(rng.next() & 0xfffff);
            if (!m.find(line) &&
                m.allocate(line, now + rng.range(1, 50), rng.chance(0.5))) {
                ++allocated;
            }
        }
        m.drainReady(now, [&](const MshrEntry&) { ++drained; });
        ASSERT_LE(m.capacity() - m.numFree(), m.capacity());
    }
    // Everything allocated eventually drains.
    for (int k = 0; k < 60; ++k) {
        m.drainReady(now + k, [&](const MshrEntry&) { ++drained; });
    }
    EXPECT_EQ(drained, allocated);
    EXPECT_EQ(m.numFree(), m.capacity());
}

INSTANTIATE_TEST_SUITE_P(Capacities, MshrCapacitySweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

// --------------------------------------------- DRAM bandwidth monotonicity

TEST(DramBandwidth, MoreTrafficNeverFinishesEarlier)
{
    MemSysConfig cfg;
    MemSystem a(cfg);
    MemSystem b(cfg);

    // 'b' carries extra competing traffic; the probe load in 'b' must not
    // complete before the identical probe in 'a'.
    for (int i = 0; i < 8; ++i) {
        b.dload(0x40000000 + Addr{i} * 4096, 10, true);
    }
    Cycle probe_a = a.dload(0x7f000000, 10, true);
    Cycle probe_b = b.dload(0x7f000000, 10, true);
    EXPECT_GE(probe_b, probe_a);
}

} // namespace
} // namespace udp

/**
 * @file
 * Tests for process-isolated sweep execution (sim/procexec.h), the
 * checkpoint manifest (sim/manifest.h) and their sweep-runner
 * integration: real child crashes are contained and classified, clean
 * isolated Reports are bit-identical to in-process ones, interrupted
 * sweeps resume to byte-identical artifacts, and graceful shutdown
 * drains in-flight jobs while skipping queued ones.
 *
 * The crash/OOM tests fork children that genuinely SIGSEGV or exhaust
 * an RLIMIT_AS cap — nothing is mocked. They skip under ASan/TSan,
 * which intercept SIGSEGV and pre-reserve address space.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/faultinject.h"
#include "sim/manifest.h"
#include "sim/procexec.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "stats/sink.h"

namespace udp {
namespace {

RunOptions
tinyOptions()
{
    RunOptions o;
    o.warmupInstrs = 10'000;
    o.measureInstrs = 20'000;
    return o;
}

Profile
tinyProfile(const std::string& name, std::uint64_t seed)
{
    Profile p = profileByName("mediawiki");
    p.name = name;
    p.seed = seed;
    p.codeFootprintKB = 64;
    return p;
}

void
expectIdenticalReports(const Report& a, const Report& b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.configName, b.configName);
    const StatSet sa = a.toStatSet();
    const StatSet sb = b.toStatSet();
    const auto& ea = sa.entries();
    const auto& eb = sb.entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].first, eb[i].first);
        EXPECT_EQ(ea[i].second, eb[i].second)
            << "stat " << ea[i].first << " differs";
    }
}

SweepJob
cleanJob(const std::string& name, std::uint64_t seed)
{
    return {tinyProfile(name, seed), presets::fdipBaseline(), tinyOptions(),
            "fdip32"};
}

/** A job whose child genuinely segfaults shortly after warmup. */
SweepJob
crashingJob(const std::string& name)
{
    SweepJob j = cleanJob(name, 5);
    j.config.fault.kind = FaultKind::CrashSegv;
    j.config.fault.triggerCycle = 1'000;
    j.label = "segv";
    return j;
}

// --- isolated execution -----------------------------------------------------

TEST(Procexec, IsolatedReportMatchesInProcess)
{
    if (!procIsolationSupported()) {
        GTEST_SKIP() << "no fork() on this platform";
    }
    SweepJob job = cleanJob("isoident", 21);
    Report in_process =
        runSim(job.profile, job.config, job.opts, job.label);

    JobResult isolated = runJobIsolated(job, ProcLimits{});
    ASSERT_TRUE(isolated.ok) << isolated.error.message;
    expectIdenticalReports(in_process, isolated.report);
    // Bit-exact serialization too: the pipe payload IS the JSON line.
    EXPECT_EQ(reportToJsonLine(in_process),
              reportToJsonLine(isolated.report));
}

TEST(Procexec, ContainsRealSegv)
{
    if (!procIsolationSupported()) {
        GTEST_SKIP() << "no fork() on this platform";
    }
    if (procUnderSanitizer()) {
        GTEST_SKIP() << "sanitizers intercept SIGSEGV";
    }
    JobResult jr = runJobIsolated(crashingJob("segvtest"), ProcLimits{});
    ASSERT_FALSE(jr.ok);
    EXPECT_EQ(jr.error.kind, "crash");
    EXPECT_EQ(jr.error.signal, "SIGSEGV");
    EXPECT_NE(jr.error.message.find("SIGSEGV"), std::string::npos);
    // The fault hook announces itself on stderr before raising; the
    // captured tail must carry it back across the process boundary.
    EXPECT_NE(jr.error.stderrTail.find("crash_segv"), std::string::npos);
    EXPECT_GT(jr.error.maxRssKb, 0u);
}

TEST(Procexec, CrashingJobDoesNotPoisonTheBatch)
{
    if (!procIsolationSupported()) {
        GTEST_SKIP() << "no fork() on this platform";
    }
    if (procUnderSanitizer()) {
        GTEST_SKIP() << "sanitizers intercept SIGSEGV";
    }
    std::vector<SweepJob> jobs = {cleanJob("batcha", 1),
                                  crashingJob("batchcrash"),
                                  cleanJob("batchb", 2)};
    SweepOptions o;
    o.numThreads = 2;
    o.quiet = true;
    o.isolate = true;
    std::vector<JobResult> r = runSweepChecked(jobs, o);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_TRUE(r[0].ok);
    EXPECT_FALSE(r[1].ok);
    EXPECT_EQ(r[1].error.kind, "crash");
    EXPECT_EQ(r[1].error.signal, "SIGSEGV");
    EXPECT_TRUE(r[2].ok);

    // The survivors must equal their in-process runs bit for bit.
    expectIdenticalReports(
        runSim(jobs[0].profile, jobs[0].config, jobs[0].opts,
               jobs[0].label),
        r[0].report);
}

TEST(Procexec, MemLimitTurnsRunawayAllocationIntoMemLimit)
{
    if (!procIsolationSupported()) {
        GTEST_SKIP() << "no fork() on this platform";
    }
    if (procUnderSanitizer()) {
        GTEST_SKIP() << "RLIMIT_AS is not applied under sanitizers";
    }
    SweepJob j = cleanJob("oomtest", 6);
    j.config.fault.kind = FaultKind::OomAlloc;
    j.config.fault.triggerCycle = 1'000;
    j.label = "oom";

    ProcLimits limits;
    limits.memLimitBytes = std::uint64_t{512} << 20;
    JobResult jr = runJobIsolated(j, limits);
    ASSERT_FALSE(jr.ok);
    // The child catches bad_alloc under the cap and reports it
    // structurally over the pipe — no signal involved.
    EXPECT_EQ(jr.error.kind, "mem_limit") << jr.error.message;
    EXPECT_NE(jr.error.stderrTail.find("oom_alloc"), std::string::npos);
}

TEST(Procexec, WallDeadlineKillsAHungChild)
{
    if (!procIsolationSupported()) {
        GTEST_SKIP() << "no fork() on this platform";
    }
    // Retirement freezes and every watchdog is disabled: without the
    // parent-side deadline this child would spin forever.
    SweepJob j = cleanJob("walltest", 7);
    j.config.watchdog.retireStallCycles = 0;
    j.config.watchdog.maxCycles = 0;
    j.config.watchdog.invariantPeriod = 0;
    j.config.fault.kind = FaultKind::FreezeRetire;
    j.config.fault.triggerCycle = 500;
    j.label = "hung";

    ProcLimits limits;
    limits.wallLimitSec = 1.0;
    JobResult jr = runJobIsolated(j, limits);
    ASSERT_FALSE(jr.ok);
    EXPECT_EQ(jr.error.kind, "timeout");
    EXPECT_EQ(jr.error.signal, "SIGKILL");
}

TEST(Procexec, SimErrorCrossesThePipeVerbatim)
{
    if (!procIsolationSupported()) {
        GTEST_SKIP() << "no fork() on this platform";
    }
    // A watchdog-detected hang inside the child must arrive as the same
    // structured error an in-process run produces.
    SweepJob j = cleanJob("relaytest", 8);
    j.config.watchdog.retireStallCycles = 5'000;
    j.config.fault.kind = FaultKind::FreezeRetire;
    j.config.fault.triggerCycle = 500;
    j.label = "stall";

    SweepOptions in_proc;
    in_proc.numThreads = 1;
    in_proc.quiet = true;
    JobResult expect = runSweepChecked({j}, in_proc).front();
    ASSERT_FALSE(expect.ok);

    JobResult jr = runJobIsolated(j, ProcLimits{});
    ASSERT_FALSE(jr.ok);
    EXPECT_EQ(jr.error.kind, expect.error.kind);
    EXPECT_EQ(jr.error.component, expect.error.component);
    EXPECT_EQ(jr.error.cycle, expect.error.cycle);
    EXPECT_EQ(jr.error.message, expect.error.message);
    EXPECT_EQ(jr.error.dump, expect.error.dump);
    EXPECT_TRUE(jr.error.signal.empty());
}

// --- checkpoint manifest ----------------------------------------------------

TEST(Manifest, JobHashIsStableAndDiscriminating)
{
    SweepJob a = cleanJob("hashme", 3);
    EXPECT_EQ(sweepJobHash(a, 0), sweepJobHash(a, 0));

    EXPECT_NE(sweepJobHash(a, 0), sweepJobHash(a, 1));

    SweepJob b = a;
    b.label = "other";
    EXPECT_NE(sweepJobHash(a, 0), sweepJobHash(b, 0));

    SweepJob c = a;
    c.config.ftqCapacity += 1;
    EXPECT_NE(sweepJobHash(a, 0), sweepJobHash(c, 0));

    SweepJob d = a;
    d.profile.seed += 1;
    EXPECT_NE(sweepJobHash(a, 0), sweepJobHash(d, 0));

    SweepJob e = a;
    e.opts.measureInstrs += 1;
    EXPECT_NE(sweepJobHash(a, 0), sweepJobHash(e, 0));
}

TEST(Manifest, EntryRoundTrips)
{
    Report r;
    r.workload = "app";
    r.configName = "cfg \"quoted\"";
    r.ipc = 1.25;

    ManifestEntry ok;
    ok.hash = 0x0123456789ABCDEFull;
    ok.index = 7;
    ok.workload = "app";
    ok.label = "cfg \"quoted\"";
    ok.ok = true;
    ok.reportJson = reportToJsonLine(r);

    ManifestEntry parsed;
    ASSERT_TRUE(
        manifestEntryFromJsonLine(manifestEntryToJsonLine(ok), &parsed));
    EXPECT_EQ(parsed.hash, ok.hash);
    EXPECT_EQ(parsed.index, ok.index);
    EXPECT_EQ(parsed.workload, ok.workload);
    EXPECT_EQ(parsed.label, ok.label);
    EXPECT_TRUE(parsed.ok);
    EXPECT_EQ(parsed.reportJson, ok.reportJson);

    ManifestEntry failed;
    failed.hash = 42;
    failed.index = 1;
    failed.workload = "app";
    failed.label = "cfg";
    failed.ok = false;
    failed.errorKind = "crash";
    ASSERT_TRUE(manifestEntryFromJsonLine(manifestEntryToJsonLine(failed),
                                          &parsed));
    EXPECT_FALSE(parsed.ok);
    EXPECT_EQ(parsed.errorKind, "crash");
    EXPECT_EQ(parsed.reportJson, "");
}

TEST(Manifest, TruncatedFinalLineIsSkippedOnLoad)
{
    std::string path = ::testing::TempDir() + "manifest_trunc.jsonl";

    Report r;
    r.workload = "app";
    r.configName = "cfg";
    ManifestEntry e;
    e.hash = 1;
    e.index = 0;
    e.workload = "app";
    e.label = "cfg";
    e.ok = true;
    e.reportJson = reportToJsonLine(r);

    std::string full = manifestEntryToJsonLine(e);
    {
        std::ofstream out(path, std::ios::trunc);
        out << full << '\n';
        e.hash = 2;
        out << manifestEntryToJsonLine(e) << '\n';
        // A crash mid-append leaves a torn line at the tail.
        e.hash = 3;
        out << manifestEntryToJsonLine(e).substr(0, full.size() / 2);
    }

    SweepManifest m;
    ASSERT_TRUE(m.open(path, /*resume=*/true));
    EXPECT_EQ(m.loadedCompleted(), 2u);
    EXPECT_NE(m.findCompleted(1), nullptr);
    EXPECT_NE(m.findCompleted(2), nullptr);
    EXPECT_EQ(m.findCompleted(3), nullptr);
    m.close();
    std::remove(path.c_str());
}

/** A distinct, internally consistent ok entry for torn-line tests. */
ManifestEntry
fuzzEntry(std::uint64_t hash, unsigned id)
{
    Report r;
    r.workload = "app" + std::to_string(id);
    r.configName = "cfg" + std::to_string(id);
    r.ipc = 1.0 + 0.001 * static_cast<double>(id);

    ManifestEntry e;
    e.hash = hash;
    e.index = id;
    e.workload = r.workload;
    e.label = r.configName;
    e.ok = true;
    e.reportJson = reportToJsonLine(r);
    return e;
}

TEST(Manifest, SplicedLineFromTwoWritersIsRejected)
{
    // The corruption a line-level parser cannot catch: two writers
    // interleaving on one file splice a line that PARSES — writer A's
    // prefix (hash, workload, label) joined to writer B's report value.
    // Without the deep consistency check, resume would resurrect B's
    // Report under A's job hash.
    ManifestEntry a = fuzzEntry(0xAAAA, 1);
    ManifestEntry b = fuzzEntry(0xBBBB, 2);
    std::string la = manifestEntryToJsonLine(a);
    std::string lb = manifestEntryToJsonLine(b);
    const std::string key = "\"report\":";
    std::size_t ca = la.find(key);
    std::size_t cb = lb.find(key);
    ASSERT_NE(ca, std::string::npos);
    ASSERT_NE(cb, std::string::npos);
    std::string spliced = la.substr(0, ca) + lb.substr(cb);

    ManifestEntry parsed;
    ASSERT_TRUE(manifestEntryFromJsonLine(spliced, &parsed))
        << "the splice is supposed to parse — that is the point";
    EXPECT_EQ(parsed.hash, a.hash);
    EXPECT_EQ(parsed.reportJson, b.reportJson);
    EXPECT_FALSE(manifestEntryIsConsistent(parsed));

    // Untampered entries pass.
    EXPECT_TRUE(manifestEntryIsConsistent(a));
    EXPECT_TRUE(manifestEntryIsConsistent(b));

    std::string path = ::testing::TempDir() + "manifest_splice.jsonl";
    {
        std::ofstream out(path, std::ios::trunc);
        out << la << '\n' << spliced << '\n';
    }
    SweepManifest m;
    ASSERT_TRUE(m.open(path, /*resume=*/true));
    EXPECT_EQ(m.loadedCompleted(), 1u);
    EXPECT_NE(m.findCompleted(a.hash), nullptr);
    m.close();
    std::remove(path.c_str());
}

TEST(Manifest, ConcurrentWriterFuzzReplaysExactlyTheCompletedSet)
{
    // Fuzz two unsynchronized writers appending to one manifest: records
    // land atomically, interleave mid-line, or truncate at a crash. On
    // every schedule, resume must replay exactly the records that were
    // written intact — never a spliced or truncated one.
    std::string path = ::testing::TempDir() + "manifest_fuzz.jsonl";
    constexpr unsigned kRecordsPerWriter = 6;

    for (unsigned seed = 0; seed < 25; ++seed) {
        std::mt19937 rng(seed);
        std::vector<std::string> pending[2];
        std::unordered_set<std::uint64_t> allHashes;
        std::vector<ManifestEntry> entries;
        for (unsigned w = 0; w < 2; ++w) {
            for (unsigned i = 0; i < kRecordsPerWriter; ++i) {
                unsigned id = w * kRecordsPerWriter + i;
                ManifestEntry e = fuzzEntry(1000 + id, id);
                entries.push_back(e);
                pending[w].push_back(manifestEntryToJsonLine(e));
                allHashes.insert(e.hash);
            }
        }

        std::unordered_set<std::uint64_t> completed;
        std::string file;
        bool crashed = false;
        std::size_t next[2] = {0, 0};
        while (!crashed && (next[0] < pending[0].size() ||
                            next[1] < pending[1].size())) {
            unsigned w = rng() % 2;
            if (next[w] >= pending[w].size()) {
                w ^= 1;
            }
            const std::string& line = pending[w][next[w]];
            std::uint64_t hash = entries[w * kRecordsPerWriter +
                                         next[w]].hash;
            unsigned roll = rng() % 10;
            if (roll < 6) {
                // Atomic append: the only way a record completes.
                file += line + '\n';
                completed.insert(hash);
                ++next[w];
            } else if (roll < 9 && next[w ^ 1] < pending[w ^ 1].size()) {
                // Torn interleave: both writers' bytes splice into one
                // line; both records are lost.
                const std::string& other = pending[w ^ 1][next[w ^ 1]];
                std::size_t cutA = 1 + rng() % (line.size() - 1);
                std::size_t cutB = rng() % other.size();
                file += line.substr(0, cutA) + other.substr(cutB) + '\n';
                ++next[w];
                ++next[w ^ 1];
            } else {
                // Crash mid-append: a truncated tail ends the file.
                file += line.substr(0, 1 + rng() % (line.size() - 1));
                crashed = true;
            }
        }
        {
            std::ofstream out(path, std::ios::trunc | std::ios::binary);
            out << file;
        }

        SweepManifest m;
        ASSERT_TRUE(m.open(path, /*resume=*/true));
        EXPECT_EQ(m.loadedCompleted(), completed.size())
            << "seed " << seed;
        for (std::uint64_t h : allHashes) {
            const ManifestEntry* hit = m.findCompleted(h);
            if (completed.count(h) != 0) {
                ASSERT_NE(hit, nullptr) << "seed " << seed << " hash " << h;
                // Replayed byte-exactly, not merely present.
                EXPECT_EQ(hit->reportJson,
                          entries[static_cast<std::size_t>(h - 1000)]
                              .reportJson)
                    << "seed " << seed;
            } else {
                EXPECT_EQ(hit, nullptr)
                    << "seed " << seed << " resurrected torn hash " << h;
            }
        }
        m.close();
    }
    std::remove(path.c_str());
}

// --- resume determinism -----------------------------------------------------

TEST(Sweep, ResumedSweepReplaysByteIdenticalReports)
{
    std::vector<SweepJob> jobs;
    for (std::uint64_t s : {31u, 32u, 33u}) {
        jobs.push_back(cleanJob("resume" + std::to_string(s), s));
        jobs.back().label = "fdip32-" + std::to_string(s);
    }

    std::string full_path = ::testing::TempDir() + "resume_full.jsonl";
    std::string part_path = ::testing::TempDir() + "resume_part.jsonl";

    SweepOptions o;
    o.numThreads = 2;
    o.quiet = true;
    o.manifestPath = full_path;
    std::vector<JobResult> first = runSweepChecked(jobs, o);
    ASSERT_TRUE(first[0].ok && first[1].ok && first[2].ok);

    // Simulate an interruption: keep only part of the manifest.
    {
        std::ifstream in(full_path);
        std::ofstream out(part_path, std::ios::trunc);
        std::string line;
        ASSERT_TRUE(std::getline(in, line));
        out << line << '\n';
    }

    SweepOptions r;
    r.numThreads = 2;
    r.quiet = true;
    r.manifestPath = part_path;
    r.resume = true;
    std::size_t resumed_seen = 0;
    r.onProgress = [&resumed_seen](const SweepProgress& p) {
        resumed_seen = p.resumed;
    };
    std::vector<JobResult> second = runSweepChecked(jobs, r);

    EXPECT_EQ(resumed_seen, 1u);
    std::size_t replayed = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(second[i].ok);
        if (second[i].resumed) {
            ++replayed;
            EXPECT_EQ(second[i].attempts, 0u);
        }
        // Byte-identical whether replayed from the manifest or re-run.
        EXPECT_EQ(reportToJsonLine(first[i].report),
                  reportToJsonLine(second[i].report));
    }
    EXPECT_EQ(replayed, 1u);

    // The resumed manifest now also covers every job: a third run
    // replays everything.
    std::vector<JobResult> third = runSweepChecked(jobs, r);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(third[i].resumed);
    }

    std::remove(full_path.c_str());
    std::remove(part_path.c_str());
}

TEST(Sweep, FailedManifestEntriesAreRerun)
{
    SweepJob job = cleanJob("failrerun", 40);
    std::string path = ::testing::TempDir() + "manifest_failed.jsonl";
    {
        ManifestEntry e;
        e.hash = sweepJobHash(job, 0);
        e.index = 0;
        e.workload = job.profile.name;
        e.label = job.label;
        e.ok = false;
        e.errorKind = "crash";
        std::ofstream out(path, std::ios::trunc);
        out << manifestEntryToJsonLine(e) << '\n';
    }
    SweepOptions o;
    o.numThreads = 1;
    o.quiet = true;
    o.manifestPath = path;
    o.resume = true;
    std::vector<JobResult> r = runSweepChecked({job}, o);
    ASSERT_TRUE(r[0].ok);
    EXPECT_FALSE(r[0].resumed); // actually ran
    EXPECT_EQ(r[0].attempts, 1u);
    std::remove(path.c_str());
}

// --- graceful shutdown ------------------------------------------------------

TEST(Sweep, GracefulShutdownDrainsInFlightAndSkipsQueued)
{
    std::vector<SweepJob> jobs;
    for (std::uint64_t s = 0; s < 5; ++s) {
        jobs.push_back(cleanJob("shutdown" + std::to_string(s), 50 + s));
    }
    SweepOptions o;
    o.numThreads = 1; // serial: deterministic completion order
    o.quiet = true;
    o.handleSignals = true;
    o.onProgress = [](const SweepProgress& p) {
        if (p.done == 1) {
            // First job just finished: request a graceful stop exactly
            // like a terminal Ctrl-C would.
            std::raise(SIGINT);
        }
    };
    std::vector<JobResult> r = runSweepChecked(jobs, o);

    EXPECT_TRUE(sweepStopRequested());
    EXPECT_EQ(sweepStopSignal(), SIGINT);
    ASSERT_EQ(r.size(), 5u);
    EXPECT_TRUE(r[0].ok);
    for (std::size_t i = 1; i < r.size(); ++i) {
        EXPECT_FALSE(r[i].ok);
        EXPECT_TRUE(r[i].skipped);
        EXPECT_EQ(r[i].attempts, 0u);
    }
}

TEST(Sweep, SkippedJobsAreNotRecordedSoResumeRerunsThem)
{
    std::string path = ::testing::TempDir() + "manifest_skip.jsonl";
    std::vector<SweepJob> jobs = {cleanJob("skipa", 60),
                                  cleanJob("skipb", 61)};
    SweepOptions o;
    o.numThreads = 1;
    o.quiet = true;
    o.handleSignals = true;
    o.manifestPath = path;
    o.onProgress = [](const SweepProgress& p) {
        if (p.done == 1) {
            std::raise(SIGTERM);
        }
    };
    std::vector<JobResult> r = runSweepChecked(jobs, o);
    ASSERT_TRUE(r[0].ok);
    ASSERT_TRUE(r[1].skipped);
    EXPECT_EQ(sweepStopSignal(), SIGTERM);

    // Resume finishes exactly the skipped job.
    SweepOptions res;
    res.numThreads = 1;
    res.quiet = true;
    res.manifestPath = path;
    res.resume = true;
    std::vector<JobResult> r2 = runSweepChecked(jobs, res);
    EXPECT_TRUE(r2[0].resumed);
    ASSERT_TRUE(r2[1].ok);
    EXPECT_FALSE(r2[1].resumed);
    EXPECT_EQ(reportToJsonLine(r2[0].report),
              reportToJsonLine(r[0].report));
    std::remove(path.c_str());
}

// --- fault-kind name round trip ---------------------------------------------

TEST(FaultInject, KindNamesRoundTrip)
{
    for (FaultKind k :
         {FaultKind::None, FaultKind::DropFill, FaultKind::DelayFill,
          FaultKind::LeakMshr, FaultKind::DuplicateMshr,
          FaultKind::CorruptFtqEntry, FaultKind::FreezeRetire,
          FaultKind::CrashSegv, FaultKind::OomAlloc}) {
        FaultKind parsed = FaultKind::None;
        ASSERT_TRUE(faultKindFromName(faultKindName(k), &parsed))
            << faultKindName(k);
        EXPECT_EQ(parsed, k);
    }
    FaultKind out = FaultKind::None;
    EXPECT_FALSE(faultKindFromName("definitely_not_a_fault", &out));
}

} // namespace
} // namespace udp

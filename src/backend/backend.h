/**
 * @file
 * The out-of-order backend: ROB / unified RS / LSQ with dependence-driven
 * wakeup, functional-unit constraints, branch resolution (including
 * wrong-path branches, which can re-resteer the wrong path — Scarab's
 * "multiple consequent mispredictions"), recovery, and in-order retirement
 * that trains the predictors and feeds UDP's Seniority-FTQ.
 */

#ifndef UDP_BACKEND_BACKEND_H
#define UDP_BACKEND_BACKEND_H

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "bpred/bpu.h"
#include "cache/memsys.h"
#include "common/types.h"
#include "frontend/fetch.h"
#include "frontend/records.h"
#include "workload/program.h"
#include "workload/true_stream.h"

namespace udp {

/** Backend configuration (Table II). */
struct BackendConfig
{
    unsigned robSize = 352;
    unsigned rsSize = 125;
    unsigned lqSize = 64;
    unsigned sqSize = 64;
    unsigned dispatchWidth = 6;
    unsigned issueWidth = 6;
    unsigned retireWidth = 6;
    unsigned numAlu = 4;
    unsigned numLoad = 2;
    unsigned numStore = 2;
    /** Issue-to-resolution latency of a branch. */
    Cycle branchExecLat = 2;
};

/** A resteer demand raised by branch resolution. */
struct ResteerRequest
{
    bool valid = false;
    Addr newPc = kInvalidAddr;
    bool aligned = false;
    std::uint64_t nextStreamIdx = 0;
    /** dynId of the resolving branch (squash-younger boundary). */
    std::uint64_t squashAfterDynId = 0;
    /** The resolving branch was on the architectural path. */
    bool fromOnPath = false;
};

/** Backend statistics. */
struct BackendStats
{
    std::uint64_t retired = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t squashed = 0;
    std::uint64_t branchesResolved = 0;
    std::uint64_t mispredictsResolved = 0;
    std::uint64_t wrongPathResteers = 0;
    std::uint64_t robFullStalls = 0;
};

/** The backend pipeline. */
class Backend
{
  public:
    Backend(const Program& prog, TrueStream& stream, MemSystem& mem,
            Bpu& bpu, BranchRecordMap& records, const BackendConfig& cfg);

    /** Room for one more instruction of this type? */
    bool canDispatch(const DecodedInstr& di) const;

    /** Accepts an instruction from the decode queue. */
    void dispatch(const DecodedInstr& di, Cycle now);

    /**
     * One backend cycle: completion/resolution, recovery selection,
     * retirement, then issue. Returns a resteer request when the oldest
     * mispredicted branch resolved this cycle.
     */
    ResteerRequest tick(Cycle now);

    std::uint64_t retired() const { return stats_.retired; }
    std::size_t robOccupancy() const { return rob.size(); }

    /** Hook: invoked with the pc of every retired instruction. */
    std::function<void(Addr)> onRetirePc;

    const BackendStats& stats() const { return stats_; }
    void clearStats() { stats_ = BackendStats(); }

    /**
     * Fault-injection hook (sim/faultinject.h): while frozen, retirement
     * makes no progress (the rest of the pipeline keeps running until it
     * backs up behind the full ROB).
     */
    void setRetireFrozen(bool frozen) { retireFrozen = frozen; }
    bool retireFrozenForFault() const { return retireFrozen; }

    /**
     * Invariant check (sim/invariants.h): ROB/RS/LSQ occupancy bounds.
     * @p full additionally recomputes the load/store in-flight credits
     * from ROB contents (conservation across dispatch/squash/retire).
     * Returns the first violation, or "".
     */
    std::string checkInvariants(bool full) const;

    /** ROB occupancy + oldest-entry summary for diagnostic reports. */
    std::string dumpState(Cycle now) const;

  private:
    struct RobEntry
    {
        DecodedInstr di;
        std::uint64_t pos = 0; ///< dense dispatch position
        bool issued = false;
        bool completed = false;
        bool resolved = false;
        bool resteerHandled = false;
        bool mispredicted = false;
        bool actualTaken = false;
        Addr actualNext = kInvalidAddr;
        Cycle completeAt = kInvalidCycle;
        Cycle dispatchedAt = 0; ///< for age reporting in dumps
    };

    RobEntry* entryAt(std::uint64_t pos);

    /** Resolves the branch in @p e (fills actual outcome/mispredict). */
    void resolveBranch(RobEntry& e);

    /** Squashes all entries younger than @p pos. */
    void squashAfter(std::uint64_t pos);

    void completeReady(Cycle now);
    ResteerRequest handleRecovery(Cycle now);
    void retire(Cycle now);
    void issue(Cycle now);

    const Program& program;
    TrueStream& stream;
    MemSystem& mem;
    Bpu& bpu;
    BranchRecordMap& records;
    BackendConfig cfg;

    std::deque<RobEntry> rob;
    std::uint64_t robBasePos = 0; ///< pos of rob.front()
    std::vector<std::uint64_t> unissued; ///< positions, oldest first

    /** (completeAt, pos) min-heap of scheduled completions. */
    using Completion = std::pair<Cycle, std::uint64_t>;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions;

    /** Positions of resolved-mispredicted branches awaiting recovery. */
    std::vector<std::uint64_t> pendingRecovery;

    unsigned loadsInFlight = 0;
    unsigned storesInFlight = 0;
    bool retireFrozen = false; ///< fault-injection: stall retirement

    BackendStats stats_;
};

} // namespace udp

#endif // UDP_BACKEND_BACKEND_H

#include "backend/backend.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/rng.h"
#include "workload/outcome.h"

namespace udp {

Backend::Backend(const Program& prog, TrueStream& strm, MemSystem& m,
                 Bpu& bp, BranchRecordMap& recs, const BackendConfig& c)
    : program(prog), stream(strm), mem(m), bpu(bp), records(recs), cfg(c)
{
    unissued.reserve(cfg.rsSize + 8);
}

Backend::RobEntry*
Backend::entryAt(std::uint64_t pos)
{
    if (pos < robBasePos) {
        return nullptr;
    }
    std::uint64_t off = pos - robBasePos;
    if (off >= rob.size()) {
        return nullptr;
    }
    return &rob[static_cast<std::size_t>(off)];
}

bool
Backend::canDispatch(const DecodedInstr& di) const
{
    if (rob.size() >= cfg.robSize) {
        return false;
    }
    if (unissued.size() >= cfg.rsSize) {
        return false;
    }
    if (di.type == InstrType::Load && loadsInFlight >= cfg.lqSize) {
        return false;
    }
    if (di.type == InstrType::Store && storesInFlight >= cfg.sqSize) {
        return false;
    }
    return true;
}

void
Backend::dispatch(const DecodedInstr& di, Cycle now)
{
    assert(canDispatch(di));
    RobEntry e;
    e.di = di;
    e.pos = robBasePos + rob.size();
    e.dispatchedAt = now;
    rob.push_back(std::move(e));
    unissued.push_back(rob.back().pos);
    if (di.type == InstrType::Load) {
        ++loadsInFlight;
    } else if (di.type == InstrType::Store) {
        ++storesInFlight;
    }
    ++stats_.dispatched;
}

void
Backend::resolveBranch(RobEntry& e)
{
    const DecodedInstr& di = e.di;
    e.resolved = true;
    ++stats_.branchesResolved;

    Addr pred_next = di.predTaken ? di.predTarget : di.pc + kInstrBytes;

    if (di.onPath) {
        const ArchInstr& truth = stream.at(di.streamIdx);
        e.actualTaken = di.kind == BranchKind::CondDirect ? truth.taken
                                                          : true;
        e.actualNext = truth.nextPc;
    } else {
        // Wrong-path branch: resolve against the stateless wrong-path
        // oracle so consequent mispredictions re-resteer the wrong path.
        const Instr& sin = program.instrAt(di.idx);
        auto rec_it = records.find(di.dynId);
        std::uint64_t spec_hist =
            rec_it != records.end() ? rec_it->second.ckpt.hist64 : 0;
        switch (di.kind) {
          case BranchKind::CondDirect: {
            const BranchBehavior& b = program.condBehavior(sin);
            e.actualTaken =
                condOutcomeWrongPath(b, spec_hist, di.dynId);
            e.actualNext = e.actualTaken ? program.pcOf(sin.target)
                                         : di.pc + kInstrBytes;
            break;
          }
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall: {
            const IndirectBehavior& b = program.indirectBehavior(sin);
            std::uint32_t choice =
                indirectChoiceWrongPath(b, spec_hist, di.dynId);
            e.actualTaken = true;
            e.actualNext = program.pcOf(program.indirectTarget(b, choice));
            break;
          }
          case BranchKind::Jump:
          case BranchKind::Call:
            e.actualTaken = true;
            e.actualNext = program.pcOf(sin.target);
            break;
          case BranchKind::Return:
            // RAS repairs make wrong-path returns effectively correct.
            e.actualTaken = true;
            e.actualNext = pred_next;
            break;
          case BranchKind::None:
            break;
        }
    }

    e.mispredicted = pred_next != e.actualNext;
    if (e.mispredicted) {
        ++stats_.mispredictsResolved;
    }
}

void
Backend::completeReady(Cycle now)
{
    while (!completions.empty() && completions.top().first <= now) {
        auto [when, pos] = completions.top();
        completions.pop();
        RobEntry* e = entryAt(pos);
        if (!e || !e->issued || e->completed || e->completeAt != when) {
            continue; // squashed or stale heap entry
        }
        e->completed = true;
        if (e->di.kind != BranchKind::None && !e->resolved) {
            resolveBranch(*e);
            if (e->mispredicted) {
                pendingRecovery.push_back(e->pos);
            }
        }
    }
}

void
Backend::squashAfter(std::uint64_t pos)
{
    while (!rob.empty() && rob.back().pos > pos) {
        RobEntry& victim = rob.back();
        if (victim.di.predictedBranch) {
            records.erase(victim.di.dynId);
        }
        if (victim.di.type == InstrType::Load) {
            --loadsInFlight;
        } else if (victim.di.type == InstrType::Store) {
            --storesInFlight;
        }
        ++stats_.squashed;
        rob.pop_back();
    }
    unissued.erase(std::remove_if(unissued.begin(), unissued.end(),
                                  [pos](std::uint64_t p) { return p > pos; }),
                   unissued.end());
}

ResteerRequest
Backend::handleRecovery(Cycle now)
{
    (void)now;
    ResteerRequest req;

    // Handle the oldest pending recovery (one per cycle, as in hardware).
    while (!pendingRecovery.empty()) {
        auto min_it = std::min_element(pendingRecovery.begin(),
                                       pendingRecovery.end());
        std::uint64_t pos = *min_it;
        pendingRecovery.erase(min_it);

        RobEntry* e = entryAt(pos);
        if (!e || e->di.kind == BranchKind::None || !e->resolved ||
            !e->mispredicted || e->resteerHandled) {
            continue; // squashed or stale
        }

        e->resteerHandled = true;
        squashAfter(e->pos);
        // Drop now-squashed recoveries.
        pendingRecovery.erase(
            std::remove_if(pendingRecovery.begin(), pendingRecovery.end(),
                           [p = e->pos](std::uint64_t q) { return q > p; }),
            pendingRecovery.end());

        auto rec_it = records.find(e->di.dynId);
        if (rec_it != records.end()) {
            bpu.recoverTo(rec_it->second.ckpt, e->di.pc,
                          e->di.kind == BranchKind::CondDirect,
                          e->actualTaken);
        }

        req.valid = true;
        req.newPc = e->actualNext;
        req.aligned = e->di.onPath;
        req.nextStreamIdx = e->di.onPath ? e->di.streamIdx + 1 : 0;
        req.squashAfterDynId = e->di.dynId;
        req.fromOnPath = e->di.onPath;
        if (!e->di.onPath) {
            ++stats_.wrongPathResteers;
        }
        return req;
    }
    return req;
}

void
Backend::retire(Cycle now)
{
    (void)now;
    if (retireFrozen) {
        return;
    }
    unsigned budget = cfg.retireWidth;
    while (budget > 0 && !rob.empty() && rob.front().completed) {
        RobEntry& e = rob.front();
        if (e.di.kind != BranchKind::None && e.mispredicted &&
            !e.resteerHandled) {
            break; // recovery must run before this branch retires
        }
        assert(e.di.onPath && "only architectural-path instructions retire");

        // Train the predictors with the architectural outcome.
        if (e.di.predictedBranch) {
            auto rec_it = records.find(e.di.dynId);
            if (rec_it != records.end()) {
                const BranchRecord& rec = rec_it->second;
                switch (e.di.kind) {
                  case BranchKind::CondDirect:
                    bpu.trainCond(e.di.pc, rec.cond, e.actualTaken);
                    break;
                  case BranchKind::IndirectJump:
                  case BranchKind::IndirectCall:
                    bpu.trainIndirect(e.di.pc, rec.indirect, e.actualNext);
                    // Refresh the BTB's last-target hint.
                    bpu.btb().insert(e.di.pc, e.di.kind, e.actualNext);
                    break;
                  default:
                    break;
                }
                records.erase(rec_it);
            }
        }

        // Branches retire with resolution info; non-branches are simple.
        if (onRetirePc) {
            onRetirePc(e.di.pc);
        }

        if (e.di.type == InstrType::Load) {
            --loadsInFlight;
        } else if (e.di.type == InstrType::Store) {
            --storesInFlight;
        }

        stream.retireBelow(e.di.streamIdx + 1);
        rob.pop_front();
        ++robBasePos;
        ++stats_.retired;
        --budget;
    }
}

void
Backend::issue(Cycle now)
{
    unsigned budget = cfg.issueWidth;
    unsigned alu = cfg.numAlu;
    unsigned lds = cfg.numLoad;
    unsigned sts = cfg.numStore;

    std::size_t w = 0;
    for (std::size_t r = 0; r < unissued.size(); ++r) {
        std::uint64_t pos = unissued[r];
        RobEntry* e = entryAt(pos);
        if (!e || e->issued) {
            continue; // squashed/stale
        }
        if (budget == 0) {
            unissued[w++] = pos;
            continue;
        }

        // Functional unit availability.
        unsigned* fu = nullptr;
        switch (e->di.type) {
          case InstrType::Alu:
          case InstrType::Branch:
            fu = &alu;
            break;
          case InstrType::Load:
            fu = &lds;
            break;
          case InstrType::Store:
            fu = &sts;
            break;
        }
        if (*fu == 0) {
            unissued[w++] = pos;
            continue;
        }

        // Dependence check: producers at pos-dep1 / pos-dep2.
        bool ready = true;
        for (unsigned dep : {unsigned{e->di.dep1}, unsigned{e->di.dep2}}) {
            if (dep == 0) {
                continue;
            }
            if (pos < robBasePos + dep) {
                continue; // producer already retired
            }
            RobEntry* p = entryAt(pos - dep);
            if (p && !p->completed) {
                ready = false;
                break;
            }
        }
        if (!ready) {
            unissued[w++] = pos;
            continue;
        }

        // Issue.
        e->issued = true;
        --*fu;
        --budget;
        ++stats_.issued;

        Cycle done;
        switch (e->di.type) {
          case InstrType::Load: {
            Addr addr;
            if (e->di.onPath) {
                addr = stream.at(e->di.streamIdx).memAddr;
            } else {
                const Instr& sin = program.instrAt(e->di.idx);
                addr = memAddress(program.memPattern(sin),
                                  mix64(e->di.dynId));
            }
            done = mem.dload(addr, now, e->di.onPath);
            break;
          }
          case InstrType::Store: {
            Addr addr;
            if (e->di.onPath) {
                addr = stream.at(e->di.streamIdx).memAddr;
            } else {
                const Instr& sin = program.instrAt(e->di.idx);
                addr = memAddress(program.memPattern(sin),
                                  mix64(e->di.dynId ^ 0x5151));
            }
            mem.dstore(addr, now);
            done = now + 1;
            break;
          }
          case InstrType::Branch:
            done = now + cfg.branchExecLat;
            break;
          case InstrType::Alu:
          default:
            done = now + e->di.execLat;
            break;
        }
        e->completeAt = done;
        completions.emplace(done, pos);
    }
    unissued.resize(w);
}

ResteerRequest
Backend::tick(Cycle now)
{
    completeReady(now);
    ResteerRequest req = handleRecovery(now);
    retire(now);
    issue(now);
    if (rob.size() >= cfg.robSize) {
        ++stats_.robFullStalls;
    }
    return req;
}

std::string
Backend::checkInvariants(bool full) const
{
    char buf[160];
    if (rob.size() > cfg.robSize) {
        std::snprintf(buf, sizeof(buf), "ROB occupancy %zu exceeds %u",
                      rob.size(), cfg.robSize);
        return buf;
    }
    if (loadsInFlight > cfg.lqSize) {
        std::snprintf(buf, sizeof(buf), "LQ credits %u exceed %u",
                      loadsInFlight, cfg.lqSize);
        return buf;
    }
    if (storesInFlight > cfg.sqSize) {
        std::snprintf(buf, sizeof(buf), "SQ credits %u exceed %u",
                      storesInFlight, cfg.sqSize);
        return buf;
    }
    if (full) {
        // Credit conservation: every dispatch increments, every retire or
        // squash decrements, so the counters must equal a recount of the
        // ROB-resident memory instructions.
        unsigned loads = 0;
        unsigned stores = 0;
        for (const RobEntry& e : rob) {
            if (e.di.type == InstrType::Load) {
                ++loads;
            } else if (e.di.type == InstrType::Store) {
                ++stores;
            }
        }
        if (loads != loadsInFlight || stores != storesInFlight) {
            std::snprintf(buf, sizeof(buf),
                          "LSQ credit leak: counters %u/%u vs ROB recount "
                          "%u/%u (loads/stores)",
                          loadsInFlight, storesInFlight, loads, stores);
            return buf;
        }
        if (unissued.size() > rob.size()) {
            std::snprintf(buf, sizeof(buf),
                          "unissued list %zu larger than ROB %zu",
                          unissued.size(), rob.size());
            return buf;
        }
    }
    return "";
}

std::string
Backend::dumpState(Cycle now) const
{
    char buf[256];
    if (rob.empty()) {
        std::snprintf(buf, sizeof(buf),
                      "[rob] occupancy=0/%u retired=%llu frozen=%d\n",
                      cfg.robSize,
                      static_cast<unsigned long long>(stats_.retired),
                      retireFrozen ? 1 : 0);
        return buf;
    }
    const RobEntry& head = rob.front();
    std::snprintf(
        buf, sizeof(buf),
        "[rob] occupancy=%zu/%u retired=%llu frozen=%d lq=%u/%u sq=%u/%u "
        "oldest={pc=0x%llx age=%llu issued=%d completed=%d "
        "mispredicted=%d}\n",
        rob.size(), cfg.robSize,
        static_cast<unsigned long long>(stats_.retired),
        retireFrozen ? 1 : 0, loadsInFlight, cfg.lqSize, storesInFlight,
        cfg.sqSize, static_cast<unsigned long long>(head.di.pc),
        static_cast<unsigned long long>(now - head.dispatchedAt),
        head.issued ? 1 : 0, head.completed ? 1 : 0,
        head.mispredicted ? 1 : 0);
    return buf;
}

} // namespace udp

#include "frontend/decoupled_fe.h"

#include <cassert>

#include "common/intmath.h"
#include "stats/telemetry.h"

namespace udp {

DecoupledFrontend::DecoupledFrontend(const Program& prog, TrueStream& strm,
                                     Bpu& bp, Ftq& q, BranchRecordMap& recs,
                                     const FrontendConfig& c)
    : program(prog), stream(strm), bpu(bp), ftq(q), records(recs), cfg(c),
      pc(prog.entryPc())
{
}

Addr
DecoupledFrontend::clampPc(Addr a) const
{
    if (program.validPc(a)) {
        return a;
    }
    // Wrong-path fetch ran off the image: wrap into the code segment so
    // speculative navigation always sees real bytes.
    std::uint64_t span = program.codeBytes();
    Addr off = a >= Program::kCodeBase ? (a - Program::kCodeBase) % span : 0;
    return Program::kCodeBase + alignDown(off, kInstrBytes);
}

void
DecoupledFrontend::tick(Cycle now)
{
    if (now < stallUntil) {
        ++stats_.stallCyclesRedirect;
        return;
    }
    for (unsigned b = 0; b < cfg.blocksPerCycle; ++b) {
        if (ftq.full()) {
            ftq.noteFullStall();
            ++stats_.stallCyclesFtqFull;
            return;
        }
        if (!buildBlock(now)) {
            return;
        }
    }
}

bool
DecoupledFrontend::buildBlock(Cycle now)
{
    (void)now;
    FtqEntry entry;
    entry.id = ftq.allocId();
    entry.startPc = pc;
    entry.onPath = aligned;
    if (hooks_.assumedOffPath) {
        entry.assumedOffPath = hooks_.assumedOffPath();
    }

    Addr cur = pc;
    const Addr region_end = fetchBlockAddr(pc) + kFetchBlockBytes;
    Addr next_pc = kInvalidAddr;

    while (cur < region_end && entry.numInstrs < kInstrsPerFetchBlock) {
        cur = clampPc(cur);
        FtqInstr fi;
        fi.idx = program.indexOf(cur);
        fi.pc = cur;
        fi.dynId = dynIdCounter++;
        fi.onPath = aligned;
        fi.streamIdx = streamIdx;

        ++stats_.instrsEmitted;
        if (aligned) {
            ++stats_.onPathInstrs;
            assert(stream.at(streamIdx).pc == cur &&
                   "aligned frontend must track the true stream");
        } else {
            ++stats_.offPathInstrs;
        }

        // Hardware view: the BTB tells the frontend where branches are.
        const BtbEntry* be = bpu.btb().lookup(cur);
        bool terminate = false;

        if (be) {
            fi.predictedBranch = true;
            BranchRecord rec;
            rec.kind = be->kind;
            rec.ckpt = bpu.checkpoint();

            switch (be->kind) {
              case BranchKind::CondDirect: {
                rec.cond = bpu.predictCond(cur);
                if (hooks_.onCondPredicted) {
                    hooks_.onCondPredicted(rec.cond.conf);
                }
                fi.predTaken = rec.cond.taken;
                fi.predTarget = be->target;
                terminate = fi.predTaken;
                break;
              }
              case BranchKind::Jump:
                fi.predTaken = true;
                fi.predTarget = be->target;
                bpu.notifyUnconditional(cur);
                terminate = true;
                break;
              case BranchKind::Call:
                fi.predTaken = true;
                fi.predTarget = be->target;
                bpu.pushReturn(cur + kInstrBytes);
                bpu.notifyUnconditional(cur);
                terminate = true;
                break;
              case BranchKind::IndirectJump:
              case BranchKind::IndirectCall: {
                rec.indirect = bpu.predictIndirect(cur);
                Addr tgt = rec.indirect.target;
                if (tgt == kInvalidAddr) {
                    tgt = be->target; // BTB hint (last-known target)
                }
                if (tgt == kInvalidAddr) {
                    tgt = cur + kInstrBytes; // cold: fall through
                }
                fi.predTaken = true;
                fi.predTarget = tgt;
                if (be->kind == BranchKind::IndirectCall) {
                    bpu.pushReturn(cur + kInstrBytes);
                }
                bpu.notifyUnconditional(cur);
                terminate = true;
                break;
              }
              case BranchKind::Return: {
                Addr tgt = bpu.predictReturn();
                if (tgt == kInvalidAddr) {
                    tgt = cur + kInstrBytes;
                }
                fi.predTaken = true;
                fi.predTarget = tgt;
                bpu.notifyUnconditional(cur);
                terminate = true;
                break;
              }
              case BranchKind::None:
                fi.predictedBranch = false;
                break;
            }
            if (fi.predictedBranch) {
                records.emplace(fi.dynId, std::move(rec));
            }
        }

        Addr my_next = fi.predTaken && fi.predictedBranch
                           ? fi.predTarget
                           : cur + kInstrBytes;

        // Ground-truth alignment: did this speculative step leave the
        // architectural path? (Covers mispredictions *and* BTB misses on
        // taken branches, where the frontend silently goes sequential.)
        if (aligned) {
            const ArchInstr& truth = stream.at(streamIdx);
            ++streamIdx;
            if (clampPc(my_next) != truth.nextPc) {
                aligned = false;
            }
        }

        entry.instrs[entry.numInstrs++] = fi;
        cur += kInstrBytes;
        if (terminate) {
            next_pc = fi.predTarget;
            break;
        }
    }

    if (next_pc == kInvalidAddr) {
        next_pc = cur; // sequential fall-through to the next block
    }
    pc = clampPc(next_pc);

    ++stats_.blocksBuilt;
    ftq.push(std::move(entry));
    return true;
}

void
DecoupledFrontend::resteer(Cycle resume_at, Addr new_pc, bool is_aligned,
                           std::uint64_t next_stream_idx, bool from_decode)
{
    pc = clampPc(new_pc);
    aligned = is_aligned;
    streamIdx = next_stream_idx;
    stallUntil = resume_at;
    ++stats_.resteers;
    if (from_decode) {
        ++stats_.decodeResteers;
    }
    if (telem_) {
        telem_->onResteer(pc, from_decode);
    }
}

} // namespace udp

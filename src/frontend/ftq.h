/**
 * @file
 * The Fetch Target Queue: fetch blocks produced by the decoupled frontend,
 * consumed by the fetch stage and scanned by FDIP. Capacity is dynamic
 * (bounded by the physical size) — the knob UFTQ turns.
 */

#ifndef UDP_FRONTEND_FTQ_H
#define UDP_FRONTEND_FTQ_H

#include <array>
#include <cstdint>
#include <deque>
#include <string>

#include "common/histogram.h"
#include "common/types.h"
#include "workload/isa.h"

namespace udp {

class Telemetry;

/** One instruction slot inside a fetch block. */
struct FtqInstr
{
    InstIdx idx = 0;
    Addr pc = kInvalidAddr;
    /** Unique dynamic id assigned by the frontend (key for records). */
    std::uint64_t dynId = 0;
    /** Ground truth: lies on the architectural path. */
    bool onPath = false;
    /** Absolute TrueStream position (valid only when onPath). */
    std::uint64_t streamIdx = 0;
    /** The frontend recognised this as a branch (BTB hit). */
    bool predictedBranch = false;
    bool predTaken = false;
    Addr predTarget = kInvalidAddr;
};

/** One fetch block (32 B aligned region, terminated early by taken CTI). */
struct FtqEntry
{
    std::uint64_t id = 0; ///< monotonically increasing entry id
    Addr startPc = kInvalidAddr;
    std::uint8_t numInstrs = 0;
    std::array<FtqInstr, kInstrsPerFetchBlock> instrs;
    /** Ground truth: the first instruction lies on the architectural path. */
    bool onPath = false;
    /** FDIP already probed/prefetched this block. */
    bool prefetchProbed = false;
    /** UDP's confidence counter tagged this block as assumed-off-path. */
    bool assumedOffPath = false;
    /** FDIP evaluated this block as an off-path prefetch candidate. */
    bool udpOffPathCandidate = false;

    /** Cache line containing this block (blocks never straddle lines). */
    Addr line() const { return lineAddr(startPc); }
};

/** FTQ statistics. */
struct FtqStats
{
    std::uint64_t pushes = 0;
    std::uint64_t fullStalls = 0;
    std::uint64_t flushes = 0;
    Histogram occupancy{257};
};

/** The fetch target queue. */
class Ftq
{
  public:
    /**
     * @param physical_capacity hardware limit on entries
     * @param capacity initial (dynamic) capacity, clamped to physical
     */
    Ftq(std::size_t physical_capacity, std::size_t capacity);

    bool full() const { return q.size() >= capacity_; }
    bool empty() const { return q.empty(); }
    std::size_t size() const { return q.size(); }
    std::size_t capacity() const { return capacity_; }
    std::size_t physicalCapacity() const { return physCap; }

    /**
     * Adjusts the dynamic capacity (UFTQ). Clamped to [1, physical].
     * Existing entries are retained even if they exceed a shrunken bound
     * (they drain naturally).
     */
    void setCapacity(std::size_t c);

    /** Appends a block; the caller must check full() first. */
    void push(FtqEntry e);

    /** Oldest block (fetch side). */
    FtqEntry& front() { return q.front(); }
    const FtqEntry& front() const { return q.front(); }

    /** Pops the oldest block after the fetch stage consumed it. */
    FtqEntry popFront();

    /** Random access from oldest (0) to newest (size-1), for FDIP scan. */
    FtqEntry& at(std::size_t i) { return q[i]; }
    const FtqEntry& at(std::size_t i) const { return q[i]; }

    /** Drops all entries (resteer). */
    void flush();

    /** Records the occupancy sample for this cycle. */
    void sampleOccupancy() { stats_.occupancy.sample(q.size()); }

    void noteFullStall() { ++stats_.fullStalls; }

    FtqStats& stats() { return stats_; }
    const FtqStats& stats() const { return stats_; }
    void clearStats();

    /**
     * Invariant check (sim/invariants.h): size against the physical
     * bound, capacity against [1, physical] and per-entry well-formedness
     * (instruction count, valid addresses). @p full additionally verifies
     * entry-id monotonicity. Returns the first violation, or "".
     */
    std::string checkInvariants(bool full) const;

    /** Occupancy + head/tail summary for diagnostic reports. */
    std::string dumpState() const;

    /** Telemetry attachment (null = disabled). */
    void setTelemetry(Telemetry* t) { telem_ = t; }

  private:
    Telemetry* telem_ = nullptr;
    std::deque<FtqEntry> q;
    std::size_t physCap;
    std::size_t capacity_;
    std::uint64_t nextId = 1;
    FtqStats stats_;

  public:
    /** Allocates the next entry id (used by the frontend). */
    std::uint64_t allocId() { return nextId++; }
};

} // namespace udp

#endif // UDP_FRONTEND_FTQ_H

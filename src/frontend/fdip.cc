#include "frontend/fdip.h"

#include "core/udp_engine.h"

namespace udp {

FdipEngine::FdipEngine(MemSystem& m, Ftq& q, const FdipConfig& c)
    : mem(m), ftq(q), cfg(c)
{
}

void
FdipEngine::onFtqPop()
{
    if (scanIdx > 0) {
        --scanIdx;
    }
}

void
FdipEngine::tick(Cycle now)
{
    if (!cfg.enabled) {
        return;
    }
    unsigned budget = cfg.blocksPerCycle;
    while (budget > 0 && scanIdx < ftq.size()) {
        FtqEntry& e = ftq.at(scanIdx);
        ++scanIdx;
        if (e.prefetchProbed) {
            continue;
        }
        probe(e, now);
        --budget;
    }
}

void
FdipEngine::probe(FtqEntry& e, Cycle now)
{
    e.prefetchProbed = true;
    ++stats_.blocksScanned;

    Addr line = e.line();
    if (mem.icacheContains(line) || mem.icacheLineInFlight(line)) {
        return; // present or already being filled: nothing to do
    }
    ++stats_.candidates;

    unsigned span = 1;
    Addr base = line;
    if (udp_) {
        UdpDecision d = udp_->evaluate(e, line);
        if (e.assumedOffPath) {
            e.udpOffPathCandidate = true;
        }
        if (!d.emit) {
            ++stats_.droppedByUdp;
            if (telem_) {
                telem_->onUdpDrop(line);
            }
            return;
        }
        span = d.span;
        base = d.base;
    }

    for (unsigned i = 0; i < span; ++i) {
        Addr target = base + Addr{i} * kLineBytes;
        IPrefStatus st = mem.iprefetch(
            target, now,
            target != line ? PfSource::UdpExtra : PfSource::Fdip);
        if (st == IPrefStatus::Issued || st == IPrefStatus::DemotedL2) {
            ++stats_.emitted;
            if (target != line) {
                ++stats_.udpExtraEmitted;
            }
            if (e.onPath) {
                ++stats_.emittedOnPath;
            } else {
                ++stats_.emittedOffPath;
            }
            if (udp_) {
                udp_->noteEmitted();
            }
        }
    }
}

} // namespace udp

/**
 * @file
 * Per-branch prediction records: everything the backend needs to resolve,
 * recover and train a branch instance. Keyed by the frontend-assigned
 * dynamic id and owned by the Cpu.
 */

#ifndef UDP_FRONTEND_RECORDS_H
#define UDP_FRONTEND_RECORDS_H

#include <cstdint>
#include <unordered_map>

#include "bpred/bpu.h"
#include "workload/isa.h"

namespace udp {

/** Prediction-time state of one in-flight branch. */
struct BranchRecord
{
    /** BPU state captured just before this branch was predicted. */
    BpuCheckpoint ckpt;
    /** Direction prediction (CondDirect only). */
    CondPredRecord cond;
    /** Target prediction (indirect kinds only). */
    IbtbPrediction indirect;
    BranchKind kind = BranchKind::None;
    /** Created by post-fetch correction (decode-detected BTB miss). */
    bool fromDecode = false;
};

/** In-flight branch records keyed by dynamic instruction id. */
using BranchRecordMap = std::unordered_map<std::uint64_t, BranchRecord>;

} // namespace udp

#endif // UDP_FRONTEND_RECORDS_H

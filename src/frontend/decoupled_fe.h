/**
 * @file
 * The decoupled frontend: walks the static code image under branch
 * prediction, producing fetch blocks into the FTQ ahead of the fetch
 * engine (FDIP's prefetch source). Tracks ground-truth path alignment
 * against the architectural stream for statistics and recovery.
 */

#ifndef UDP_FRONTEND_DECOUPLED_FE_H
#define UDP_FRONTEND_DECOUPLED_FE_H

#include <cstdint>
#include <functional>

#include "bpred/bpu.h"
#include "common/types.h"
#include "frontend/ftq.h"
#include "frontend/records.h"
#include "workload/program.h"
#include "workload/true_stream.h"

namespace udp {

/** Frontend configuration. */
struct FrontendConfig
{
    /** Fetch blocks generated per cycle (Table II: 2). */
    unsigned blocksPerCycle = 2;
    /** Redirect bubble after an execute-stage resteer. */
    Cycle execResteerPenalty = 3;
    /** Redirect bubble after a decode-stage (post-fetch) resteer. */
    Cycle decodeResteerPenalty = 4;
};

/** Hooks the frontend raises towards UDP (optional; may be empty). */
struct FrontendHooks
{
    /** A conditional direction was predicted with this confidence. */
    std::function<void(Confidence)> onCondPredicted;
    /** A predicted-taken branch missed the BTB (decode detected). */
    std::function<void()> onBtbMissTaken;
    /** Current off-path assumption for tagging new blocks. */
    std::function<bool()> assumedOffPath;
};

/** Frontend statistics. */
struct FrontendStats
{
    std::uint64_t blocksBuilt = 0;
    std::uint64_t instrsEmitted = 0;
    std::uint64_t onPathInstrs = 0;
    std::uint64_t offPathInstrs = 0;
    std::uint64_t resteers = 0;
    std::uint64_t decodeResteers = 0;
    std::uint64_t stallCyclesFtqFull = 0;
    std::uint64_t stallCyclesRedirect = 0;
};

/** The block-building decoupled frontend. */
class DecoupledFrontend
{
  public:
    DecoupledFrontend(const Program& prog, TrueStream& stream, Bpu& bpu,
                      Ftq& ftq, BranchRecordMap& records,
                      const FrontendConfig& cfg);

    /** Builds up to blocksPerCycle fetch blocks. */
    void tick(Cycle now);

    /**
     * Redirects the frontend (execute- or decode-stage resteer).
     * @param resume_at first cycle block building resumes
     * @param new_pc next fetch address
     * @param aligned the redirect lands on the architectural path
     * @param next_stream_idx TrueStream position of new_pc when aligned
     * @param from_decode accounting only
     */
    void resteer(Cycle resume_at, Addr new_pc, bool aligned,
                 std::uint64_t next_stream_idx, bool from_decode);

    Addr specPc() const { return pc; }
    bool isAligned() const { return aligned; }
    std::uint64_t streamIndex() const { return streamIdx; }
    std::uint64_t nextDynId() const { return dynIdCounter; }

    FrontendHooks& hooks() { return hooks_; }

    const FrontendStats& stats() const { return stats_; }
    void clearStats() { stats_ = FrontendStats(); }

    /** Telemetry attachment (null = disabled). */
    void setTelemetry(Telemetry* t) { telem_ = t; }

  private:
    /** Builds one fetch block; returns false when the FTQ is full. */
    bool buildBlock(Cycle now);

    /** Clamps a speculative pc into the code image (wrap-around). */
    Addr clampPc(Addr a) const;

    const Program& program;
    TrueStream& stream;
    Bpu& bpu;
    Ftq& ftq;
    BranchRecordMap& records;
    FrontendConfig cfg;
    FrontendHooks hooks_;

    Addr pc;
    bool aligned = true;
    std::uint64_t streamIdx = 0;
    Cycle stallUntil = 0;
    std::uint64_t dynIdCounter = 1;
    FrontendStats stats_;
    Telemetry* telem_ = nullptr;
};

} // namespace udp

#endif // UDP_FRONTEND_DECOUPLED_FE_H

#include "frontend/fetch.h"

#include <cassert>
#include <cstdio>

namespace udp {

FetchStage::FetchStage(const Program& prog, Bpu& bp, MemSystem& m, Ftq& q,
                       DecoupledFrontend& fe, BranchRecordMap& recs,
                       const FetchConfig& c)
    : program(prog), bpu(bp), mem(m), ftq(q), frontend(fe), records(recs),
      cfg(c)
{
}

void
FetchStage::flushAll()
{
    decodeQ.clear();
    headAccessed = false;
    headReady = 0;
    headConsumed = 0;
}

bool
FetchStage::postFetchCorrect(DecodedInstr& di, Cycle now)
{
    const Instr& sin = program.instrAt(di.idx);
    if (sin.branch == BranchKind::None || di.predictedBranch) {
        return false;
    }

    // Decode discovered a branch the frontend missed in the BTB.
    ++stats_.decodeBtbCorrections;

    Addr direct_target = kInvalidAddr;
    if (sin.branch == BranchKind::CondDirect ||
        sin.branch == BranchKind::Jump || sin.branch == BranchKind::Call) {
        direct_target = program.pcOf(sin.target);
    }
    bpu.btb().insert(di.pc, sin.branch, direct_target);

    BranchRecord rec;
    rec.kind = sin.branch;
    rec.fromDecode = true;
    rec.ckpt = bpu.checkpoint();

    bool taken = true;
    Addr target = direct_target;

    switch (sin.branch) {
      case BranchKind::CondDirect:
        rec.cond = bpu.predictCond(di.pc);
        if (frontend.hooks().onCondPredicted) {
            frontend.hooks().onCondPredicted(rec.cond.conf);
        }
        taken = rec.cond.taken;
        break;
      case BranchKind::Jump:
        bpu.notifyUnconditional(di.pc);
        break;
      case BranchKind::Call:
        bpu.pushReturn(di.pc + kInstrBytes);
        bpu.notifyUnconditional(di.pc);
        break;
      case BranchKind::IndirectJump:
      case BranchKind::IndirectCall:
        rec.indirect = bpu.predictIndirect(di.pc);
        target = rec.indirect.target;
        if (target == kInvalidAddr) {
            target = di.pc + kInstrBytes;
        }
        if (sin.branch == BranchKind::IndirectCall) {
            bpu.pushReturn(di.pc + kInstrBytes);
        }
        bpu.notifyUnconditional(di.pc);
        break;
      case BranchKind::Return:
        target = bpu.predictReturn();
        if (target == kInvalidAddr) {
            target = di.pc + kInstrBytes;
        }
        bpu.notifyUnconditional(di.pc);
        break;
      case BranchKind::None:
        break;
    }

    di.predictedBranch = true;
    di.predTaken = taken;
    di.predTarget = taken ? target : kInvalidAddr;
    records.emplace(di.dynId, std::move(rec));

    if (!taken) {
        // Sequential continuation was correct from the frontend's point of
        // view: no resteer needed.
        return false;
    }

    // Taken: everything younger in the frontend is wrong-path relative to
    // the decode-corrected direction. Flush FTQ + younger decode state and
    // resteer. (The paper's UDP treats this as an assume-off-path signal.)
    if (frontend.hooks().onBtbMissTaken) {
        frontend.hooks().onBtbMissTaken();
    }
    ++stats_.decodeResteers;

    // Drop the not-yet-delivered remainder of the head block.
    headAccessed = false;
    headReady = 0;
    headConsumed = 0;
    // Erase records of squashed FTQ instructions.
    for (std::size_t i = 0; i < ftq.size(); ++i) {
        const FtqEntry& e = ftq.at(i);
        for (unsigned k = 0; k < e.numInstrs; ++k) {
            if (e.instrs[k].predictedBranch) {
                records.erase(e.instrs[k].dynId);
            }
        }
    }
    ftq.flush();
    if (onFtqFlushed) {
        onFtqFlushed();
    }

    bool aligned = di.onPath;
    std::uint64_t next_idx = di.streamIdx + 1;
    frontend.resteer(now + 1, target, aligned, next_idx,
                     /*from_decode=*/true);
    return true;
}

void
FetchStage::tick(Cycle now)
{
    if (decodeQ.size() >= cfg.decodeQueueMax) {
        return; // backpressure from dispatch
    }

    unsigned budget = cfg.fetchWidth;
    bool stalled_on_miss = false;

    while (budget > 0) {
        if (ftq.empty()) {
            if (budget == cfg.fetchWidth) {
                ++stats_.ftqEmptyCycles;
            }
            break;
        }

        FtqEntry& head = ftq.front();

        if (!headAccessed) {
            IFetchResult res = mem.ifetch(head.startPc, now, head.onPath);
            if (res.where == IFetchWhere::Stall) {
                break; // MSHR full: retry next cycle
            }
            if (onIFetchAccess) {
                onIFetchAccess(lineAddr(head.startPc),
                               res.where == IFetchWhere::L1, now);
            }
            headAccessed = true;
            // L1 hits are pipelined (the hit latency is part of the
            // fetch-to-dispatch depth); only misses stall delivery.
            headReady = res.where == IFetchWhere::L1 ? now : res.ready;
            headConsumed = 0;
            if (telem_ && headReady > now) {
                telem_->onFetchStall(lineAddr(head.startPc), now, headReady);
            }
        }

        if (now < headReady) {
            stalled_on_miss = true;
            break;
        }

        // Deliver instructions from the ready block.
        bool resteered = false;
        while (budget > 0 && headConsumed < head.numInstrs) {
            const FtqInstr& fi = head.instrs[headConsumed];
            const Instr& sin = program.instrAt(fi.idx);

            DecodedInstr di;
            di.dynId = fi.dynId;
            di.idx = fi.idx;
            di.pc = fi.pc;
            di.type = sin.type;
            di.kind = sin.branch;
            di.execLat = sin.execLat;
            di.dep1 = sin.dep1;
            di.dep2 = sin.dep2;
            di.behavior = sin.behavior;
            di.onPath = fi.onPath;
            di.streamIdx = fi.streamIdx;
            di.predictedBranch = fi.predictedBranch;
            di.predTaken = fi.predTaken;
            di.predTarget = fi.predTarget;
            di.readyAt = now + cfg.decodePipeLat;

            ++headConsumed;
            --budget;
            ++stats_.instrsDelivered;

            resteered = postFetchCorrect(di, now);
            decodeQ.push_back(di);
            if (resteered) {
                return; // younger state flushed
            }
        }

        if (headConsumed >= head.numInstrs) {
            FtqEntry done = ftq.popFront();
            headAccessed = false;
            headConsumed = 0;
            if (onBlockConsumed) {
                onBlockConsumed(done);
            }
        } else {
            break; // width exhausted mid-block
        }
    }

    if (stalled_on_miss) {
        ++stats_.icacheStallCycles;
        stats_.lostSlotsIcacheMiss += budget;
    }
}

std::string
FetchStage::checkInvariants() const
{
    char buf[128];
    // tick() stops pulling once the bound is reached, so the queue can
    // overshoot by at most one fetch group.
    if (decodeQ.size() > cfg.decodeQueueMax + cfg.fetchWidth) {
        std::snprintf(buf, sizeof(buf),
                      "decode queue size %zu exceeds bound %u (+%u width)",
                      decodeQ.size(), cfg.decodeQueueMax, cfg.fetchWidth);
        return buf;
    }
    if (headAccessed && headConsumed > kInstrsPerFetchBlock) {
        std::snprintf(buf, sizeof(buf),
                      "head progress %u exceeds block size %u",
                      headConsumed, kInstrsPerFetchBlock);
        return buf;
    }
    return "";
}

std::string
FetchStage::dumpState(Cycle now) const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "[fetch] decode_queue=%zu/%u head={accessed=%d "
                  "ready=%llu (in %lld) consumed=%u}\n",
                  decodeQ.size(), cfg.decodeQueueMax, headAccessed ? 1 : 0,
                  static_cast<unsigned long long>(headReady),
                  headAccessed ? static_cast<long long>(headReady) -
                                     static_cast<long long>(now)
                               : 0,
                  headConsumed);
    return buf;
}

} // namespace udp

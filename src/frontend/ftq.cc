#include "frontend/ftq.h"

#include <algorithm>
#include <cassert>

namespace udp {

Ftq::Ftq(std::size_t physical_capacity, std::size_t capacity)
    : physCap(physical_capacity),
      capacity_(std::clamp<std::size_t>(capacity, 1, physical_capacity))
{
}

void
Ftq::setCapacity(std::size_t c)
{
    capacity_ = std::clamp<std::size_t>(c, 1, physCap);
}

void
Ftq::push(FtqEntry e)
{
    assert(!full());
    ++stats_.pushes;
    q.push_back(std::move(e));
}

FtqEntry
Ftq::popFront()
{
    assert(!q.empty());
    FtqEntry e = std::move(q.front());
    q.pop_front();
    return e;
}

void
Ftq::flush()
{
    ++stats_.flushes;
    q.clear();
}

void
Ftq::clearStats()
{
    stats_.pushes = 0;
    stats_.fullStalls = 0;
    stats_.flushes = 0;
    stats_.occupancy.clear();
}

} // namespace udp

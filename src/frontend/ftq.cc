#include "frontend/ftq.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "stats/telemetry.h"

namespace udp {

Ftq::Ftq(std::size_t physical_capacity, std::size_t capacity)
    : physCap(physical_capacity),
      capacity_(std::clamp<std::size_t>(capacity, 1, physical_capacity))
{
}

void
Ftq::setCapacity(std::size_t c)
{
    capacity_ = std::clamp<std::size_t>(c, 1, physCap);
}

void
Ftq::push(FtqEntry e)
{
    assert(!full());
    ++stats_.pushes;
    if (telem_) {
        telem_->onFtqPush(e.startPc);
    }
    q.push_back(std::move(e));
}

FtqEntry
Ftq::popFront()
{
    assert(!q.empty());
    FtqEntry e = std::move(q.front());
    q.pop_front();
    return e;
}

void
Ftq::flush()
{
    ++stats_.flushes;
    if (telem_) {
        telem_->onFtqFlush(q.size());
    }
    q.clear();
}

void
Ftq::clearStats()
{
    stats_.pushes = 0;
    stats_.fullStalls = 0;
    stats_.flushes = 0;
    stats_.occupancy.clear();
}

std::string
Ftq::checkInvariants(bool full) const
{
    char buf[192];
    if (q.size() > physCap) {
        std::snprintf(buf, sizeof(buf),
                      "size %zu exceeds physical capacity %zu", q.size(),
                      physCap);
        return buf;
    }
    if (capacity_ < 1 || capacity_ > physCap) {
        std::snprintf(buf, sizeof(buf),
                      "dynamic capacity %zu outside [1, %zu]", capacity_,
                      physCap);
        return buf;
    }
    for (std::size_t i = 0; i < q.size(); ++i) {
        const FtqEntry& e = q[i];
        if (e.numInstrs == 0 || e.numInstrs > kInstrsPerFetchBlock) {
            std::snprintf(buf, sizeof(buf),
                          "entry %zu (id %llu) malformed: numInstrs=%u "
                          "outside [1, %u]",
                          i, static_cast<unsigned long long>(e.id),
                          e.numInstrs, kInstrsPerFetchBlock);
            return buf;
        }
        if (e.startPc == kInvalidAddr) {
            std::snprintf(buf, sizeof(buf),
                          "entry %zu (id %llu) malformed: invalid startPc",
                          i, static_cast<unsigned long long>(e.id));
            return buf;
        }
        for (unsigned k = 0; k < e.numInstrs; ++k) {
            if (e.instrs[k].pc == kInvalidAddr) {
                std::snprintf(buf, sizeof(buf),
                              "entry %zu (id %llu) malformed: instr %u "
                              "has invalid pc",
                              i, static_cast<unsigned long long>(e.id), k);
                return buf;
            }
        }
        if (full && i > 0 && q[i - 1].id >= e.id) {
            std::snprintf(buf, sizeof(buf),
                          "entry ids not monotonic at %zu (%llu >= %llu)",
                          i, static_cast<unsigned long long>(q[i - 1].id),
                          static_cast<unsigned long long>(e.id));
            return buf;
        }
    }
    return "";
}

std::string
Ftq::dumpState() const
{
    char buf[224];
    if (q.empty()) {
        std::snprintf(buf, sizeof(buf),
                      "[ftq] size=0/%zu (phys %zu) empty\n", capacity_,
                      physCap);
        return buf;
    }
    const FtqEntry& head = q.front();
    const FtqEntry& tail = q.back();
    std::snprintf(buf, sizeof(buf),
                  "[ftq] size=%zu/%zu (phys %zu) head={id=%llu "
                  "pc=0x%llx n=%u} tail={id=%llu pc=0x%llx}\n",
                  q.size(), capacity_, physCap,
                  static_cast<unsigned long long>(head.id),
                  static_cast<unsigned long long>(head.startPc),
                  head.numInstrs, static_cast<unsigned long long>(tail.id),
                  static_cast<unsigned long long>(tail.startPc));
    return buf;
}

} // namespace udp

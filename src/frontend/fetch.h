/**
 * @file
 * Fetch + decode stages: consume FTQ blocks, perform demand icache
 * accesses (merging with in-flight FDIP prefetches in the fill buffer),
 * and deliver decoded instructions to the backend. Implements Ishii-style
 * post-fetch correction: a branch decoded without having been predicted
 * (BTB miss) immediately fills the BTB, flushes the FTQ and resteers.
 */

#ifndef UDP_FRONTEND_FETCH_H
#define UDP_FRONTEND_FETCH_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "bpred/bpu.h"
#include "cache/memsys.h"
#include "common/types.h"
#include "frontend/decoupled_fe.h"
#include "frontend/ftq.h"
#include "frontend/records.h"
#include "workload/program.h"

namespace udp {

/** A decoded dynamic instruction ready for dispatch. */
struct DecodedInstr
{
    std::uint64_t dynId = 0;
    InstIdx idx = 0;
    Addr pc = kInvalidAddr;
    InstrType type = InstrType::Alu;
    BranchKind kind = BranchKind::None;
    std::uint8_t execLat = 1;
    std::uint8_t dep1 = 0;
    std::uint8_t dep2 = 0;
    std::uint32_t behavior = kNoBehavior;
    bool onPath = false;
    std::uint64_t streamIdx = 0;
    bool predictedBranch = false;
    bool predTaken = false;
    Addr predTarget = kInvalidAddr;
    /** Cycle at which decode/rename completes (dispatchable). */
    Cycle readyAt = 0;
};

/** Fetch configuration. */
struct FetchConfig
{
    unsigned fetchWidth = 6;      ///< instructions delivered per cycle
    Cycle decodePipeLat = 4;      ///< fetch-to-dispatch pipeline depth
    unsigned decodeQueueMax = 48; ///< backpressure bound
};

/** Fetch statistics. */
struct FetchStats
{
    std::uint64_t instrsDelivered = 0;
    std::uint64_t icacheStallCycles = 0;
    /** Delivery slots lost while stalled on an icache miss (Fig. 15). */
    std::uint64_t lostSlotsIcacheMiss = 0;
    std::uint64_t ftqEmptyCycles = 0;
    std::uint64_t decodeBtbCorrections = 0;
    std::uint64_t decodeResteers = 0;
};

/** The fetch + decode pipeline front. */
class FetchStage
{
  public:
    FetchStage(const Program& prog, Bpu& bpu, MemSystem& mem, Ftq& ftq,
               DecoupledFrontend& fe, BranchRecordMap& records,
               const FetchConfig& cfg);

    /** One cycle of fetch + decode delivery. */
    void tick(Cycle now);

    /** Decode output queue (backend dispatch pulls from here). */
    std::deque<DecodedInstr>& decodeQueue() { return decodeQ; }

    /** Squashes everything in fetch/decode (execute-stage resteer). */
    void flushAll();

    /** Callback invoked when a block fully leaves the FTQ (UDP hook). */
    std::function<void(const FtqEntry&)> onBlockConsumed;
    /** Callback invoked on every demand icache access: (line, hit, now).
     *  Used by access-trained prefetchers such as EIP. */
    std::function<void(Addr, bool, Cycle)> onIFetchAccess;
    /** Callback invoked on any FTQ flush from decode (FDIP scan reset). */
    std::function<void()> onFtqFlushed;

    const FetchStats& stats() const { return stats_; }
    void clearStats() { stats_ = FetchStats(); }

    /** Telemetry attachment (null = disabled). */
    void setTelemetry(Telemetry* t) { telem_ = t; }

    /** Invariant check (sim/invariants.h): decode-queue bound and head
     *  progress consistency. Returns the first violation, or "". */
    std::string checkInvariants() const;

    /** Decode-queue / head-block summary for diagnostic reports. */
    std::string dumpState(Cycle now) const;

  private:
    /**
     * Post-fetch correction for one delivered instruction. Returns true
     * when a decode resteer happened (stop delivering younger).
     */
    bool postFetchCorrect(DecodedInstr& di, Cycle now);

    const Program& program;
    Bpu& bpu;
    MemSystem& mem;
    Ftq& ftq;
    DecoupledFrontend& frontend;
    BranchRecordMap& records;
    FetchConfig cfg;

    std::deque<DecodedInstr> decodeQ;

    /** Per-head-block progress. */
    bool headAccessed = false;
    Cycle headReady = 0;
    unsigned headConsumed = 0;

    FetchStats stats_;
    Telemetry* telem_ = nullptr;
};

} // namespace udp

#endif // UDP_FRONTEND_FETCH_H

/**
 * @file
 * FDIP: fetch-directed instruction prefetching [47]. Scans FTQ blocks
 * ahead of the fetch engine, probing the icache and issuing prefetches for
 * absent lines. Optionally filtered by UDP (utility-driven dropping of
 * assumed-off-path candidates).
 */

#ifndef UDP_FRONTEND_FDIP_H
#define UDP_FRONTEND_FDIP_H

#include <cstdint>

#include "cache/memsys.h"
#include "common/types.h"
#include "frontend/ftq.h"

namespace udp {

class UdpEngine;

/** FDIP configuration. */
struct FdipConfig
{
    /** Blocks scanned/probed per cycle (icache tag port budget). */
    unsigned blocksPerCycle = 2;
    /** Master enable (off = no instruction prefetching baseline). */
    bool enabled = true;
};

/** FDIP statistics. */
struct FdipStats
{
    std::uint64_t blocksScanned = 0;
    std::uint64_t candidates = 0;       ///< blocks whose line missed L1I
    std::uint64_t emitted = 0;          ///< prefetches issued
    std::uint64_t emittedOnPath = 0;    ///< ground truth
    std::uint64_t emittedOffPath = 0;
    std::uint64_t droppedByUdp = 0;
    std::uint64_t udpExtraEmitted = 0;  ///< super-block (2-/4-line) extras
};

/** The FDIP scan engine. */
class FdipEngine
{
  public:
    FdipEngine(MemSystem& mem, Ftq& ftq, const FdipConfig& cfg);

    /** Attaches the UDP filter (nullptr = vanilla FDIP). */
    void setUdp(UdpEngine* udp) { udp_ = udp; }

    /** Telemetry attachment (null = disabled). */
    void setTelemetry(Telemetry* t) { telem_ = t; }

    /** Scans up to blocksPerCycle unprobed FTQ blocks. */
    void tick(Cycle now);

    /** The fetch stage consumed the FTQ head. */
    void onFtqPop();

    /** The FTQ was flushed (resteer). */
    void onFtqFlush() { scanIdx = 0; }

    const FdipStats& stats() const { return stats_; }
    void clearStats() { stats_ = FdipStats(); }

  private:
    void probe(FtqEntry& e, Cycle now);

    MemSystem& mem;
    Ftq& ftq;
    FdipConfig cfg;
    UdpEngine* udp_ = nullptr;
    Telemetry* telem_ = nullptr;
    std::size_t scanIdx = 0;
    FdipStats stats_;
};

} // namespace udp

#endif // UDP_FRONTEND_FDIP_H

/**
 * @file
 * Deterministic seeded fault injection: perturbs modeled state at a
 * chosen cycle to prove the watchdog and each invariant actually fire
 * (tests/test_faults.cc drives every kind). A FaultPlan rides inside
 * SimConfig, so faulty configurations flow through runSim()/sweeps like
 * any other sweep point.
 */

#ifndef UDP_SIM_FAULTINJECT_H
#define UDP_SIM_FAULTINJECT_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace udp {

class Cpu;

/** What to break. Expected detector in parentheses. */
enum class FaultKind : std::uint8_t {
    None,
    /** Mark an in-flight fill as never completing (MSHR leak invariant). */
    DropFill,
    /** Push an in-flight fill's completion far out (retire-stall
     *  watchdog: the frontend wedges behind the late line). */
    DelayFill,
    /** Allocate a fill-buffer entry nothing will ever drain (MSHR leak
     *  invariant). */
    LeakMshr,
    /** Allocate a second outstanding entry for an already-tracked line
     *  (MSHR duplicate invariant). */
    DuplicateMshr,
    /** Invalidate the newest FTQ entry's start address (FTQ
     *  well-formedness invariant). Sticky: re-applied every cycle so a
     *  flush cannot erase the corruption before a sweep observes it. */
    CorruptFtqEntry,
    /** Halt retirement permanently (retire-stall watchdog). */
    FreezeRetire,
    /** TEST-ONLY: raise a genuine SIGSEGV in the host process. Only
     *  meaningful under process isolation (sim/procexec.h) — in-process
     *  it kills the caller. Proves crash containment end to end. */
    CrashSegv,
    /** TEST-ONLY: allocate host memory without bound until the
     *  allocator fails (std::bad_alloc under RLIMIT_AS) or the kernel
     *  kills the process. Only meaningful under process isolation. */
    OomAlloc,
};

/** Stable snake_case name of @p k (labels, failure rows, tests). */
constexpr const char*
faultKindName(FaultKind k)
{
    switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::DropFill: return "drop_fill";
    case FaultKind::DelayFill: return "delay_fill";
    case FaultKind::LeakMshr: return "leak_mshr";
    case FaultKind::DuplicateMshr: return "duplicate_mshr";
    case FaultKind::CorruptFtqEntry: return "corrupt_ftq_entry";
    case FaultKind::FreezeRetire: return "freeze_retire";
    case FaultKind::CrashSegv: return "crash_segv";
    case FaultKind::OomAlloc: return "oom_alloc";
    }
    return "unknown";
}

/**
 * Inverse of faultKindName(). Returns false and leaves @p out untouched
 * for unknown names. Drives the UDP_BENCH_FAULT test hook
 * (bench/bench_util.h) and the CI crash-containment sweep.
 */
bool faultKindFromName(const std::string& name, FaultKind* out);

/** One planned perturbation (value type, lives in SimConfig). */
struct FaultPlan
{
    FaultKind kind = FaultKind::None;
    /** First cycle injection is attempted; kinds that need a victim (an
     *  outstanding fill, a queued FTQ entry) retry every cycle until one
     *  exists. */
    Cycle triggerCycle = 0;
    /** Deterministic victim selection among eligible entries. */
    std::uint64_t seed = 1;
    /** DelayFill: cycles added to the victim fill's completion. */
    Cycle delay = 1'000'000'000;
};

/**
 * Attempts to apply @p plan to @p cpu at cycle @p now. Returns true once
 * the perturbation landed (Cpu stops re-attempting, except for sticky
 * kinds — see FaultKind). Deterministic for a fixed (plan, workload,
 * config) triple.
 */
bool applyFault(Cpu& cpu, const FaultPlan& plan, Cycle now);

} // namespace udp

#endif // UDP_SIM_FAULTINJECT_H

#include "sim/invariants.h"

#include "backend/backend.h"
#include "cache/memsys.h"
#include "core/udp_engine.h"
#include "core/uftq.h"
#include "frontend/fetch.h"
#include "frontend/ftq.h"
#include "sim/cpu.h"

namespace udp {

std::vector<InvariantFailure>
collectInvariantFailures(const Cpu& cpu, bool full)
{
    std::vector<InvariantFailure> out;
    auto add = [&out](const char* component, std::string detail) {
        if (!detail.empty()) {
            out.push_back(InvariantFailure{component, std::move(detail)});
        }
    };

    add("ftq", cpu.ftq().checkInvariants(full));
    add("mshr", cpu.mem().checkInvariants(cpu.now()));
    add("fetch", cpu.fetch().checkInvariants());
    add("rob", cpu.backend().checkInvariants(full));
    if (cpu.uftq() != nullptr) {
        add("uftq", cpu.uftq()->checkInvariants());
    }
    if (cpu.udp() != nullptr) {
        add("udp", cpu.udp()->checkInvariants());
    }
    return out;
}

void
checkInvariants(const Cpu& cpu, bool full)
{
    std::vector<InvariantFailure> fails = collectInvariantFailures(cpu, full);
    if (fails.empty()) {
        return;
    }
    throw InvariantViolation(fails.front().component, cpu.now(),
                             fails.front().detail, cpu.dumpState());
}

} // namespace udp

#include "sim/sweepd.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/status.h"
#include "sim/manifest.h"
#include "sim/simconfig.h"
#include "stats/sink.h"
#include "workload/profile.h"

namespace udp {

namespace {

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
wallMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

void
sleepSec(double sec)
{
    std::this_thread::sleep_for(std::chrono::duration<double>(sec));
}

// --- minimal JSON scanning (spec files only) -------------------------------

/**
 * Position just past "key": (whitespace around the colon tolerated —
 * spec files are hand-written), or npos.
 */
std::size_t
specValuePos(const std::string& json, const std::string& key)
{
    std::string needle = "\"" + key + "\"";
    std::size_t pos = json.find(needle);
    if (pos == std::string::npos) {
        return std::string::npos;
    }
    pos += needle.size();
    while (pos < json.size() && std::isspace(
                                    static_cast<unsigned char>(json[pos]))) {
        ++pos;
    }
    if (pos >= json.size() || json[pos] != ':') {
        return std::string::npos;
    }
    ++pos;
    while (pos < json.size() && std::isspace(
                                    static_cast<unsigned char>(json[pos]))) {
        ++pos;
    }
    return pos;
}

/** Extracts "key":"string" (order-free; escapes honored). */
bool
specString(const std::string& json, const std::string& key, std::string* out)
{
    std::size_t pos = specValuePos(json, key);
    if (pos == std::string::npos || pos >= json.size() ||
        json[pos] != '"') {
        return false;
    }
    ++pos;
    std::string raw;
    while (pos < json.size() && json[pos] != '"') {
        if (json[pos] == '\\' && pos + 1 < json.size()) {
            raw += json[pos++];
        }
        raw += json[pos++];
    }
    if (pos >= json.size()) {
        return false;
    }
    return jsonUnescape(raw, out);
}

bool
specU64(const std::string& json, const std::string& key, std::uint64_t* out)
{
    std::size_t pos = specValuePos(json, key);
    if (pos == std::string::npos) {
        return false;
    }
    std::uint64_t v = 0;
    bool any = false;
    while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(json[pos++] - '0');
        any = true;
    }
    if (!any) {
        return false;
    }
    *out = v;
    return true;
}

/** Extracts the body of "key":[ ... ] with bracket/string awareness. */
bool
specArray(const std::string& json, const std::string& key, std::string* out)
{
    std::size_t pos = specValuePos(json, key);
    if (pos == std::string::npos || pos >= json.size() ||
        json[pos] != '[') {
        return false;
    }
    ++pos;
    int depth = 1;
    bool inStr = false;
    std::size_t start = pos;
    while (pos < json.size()) {
        char c = json[pos];
        if (inStr) {
            if (c == '\\') {
                ++pos;
            } else if (c == '"') {
                inStr = false;
            }
        } else if (c == '"') {
            inStr = true;
        } else if (c == '[' || c == '{') {
            ++depth;
        } else if (c == ']' || c == '}') {
            if (--depth == 0) {
                *out = json.substr(start, pos - start);
                return true;
            }
        }
        ++pos;
    }
    return false;
}

/** Splits a JSON array body into its top-level elements (trimmed). */
std::vector<std::string>
specElements(const std::string& body)
{
    std::vector<std::string> out;
    int depth = 0;
    bool inStr = false;
    std::size_t start = 0;
    auto emit = [&](std::size_t end) {
        std::size_t a = start;
        std::size_t b = end;
        while (a < b && std::isspace(static_cast<unsigned char>(body[a]))) {
            ++a;
        }
        while (b > a &&
               std::isspace(static_cast<unsigned char>(body[b - 1]))) {
            --b;
        }
        if (b > a) {
            out.push_back(body.substr(a, b - a));
        }
    };
    for (std::size_t pos = 0; pos < body.size(); ++pos) {
        char c = body[pos];
        if (inStr) {
            if (c == '\\') {
                ++pos;
            } else if (c == '"') {
                inStr = false;
            }
        } else if (c == '"') {
            inStr = true;
        } else if (c == '[' || c == '{') {
            ++depth;
        } else if (c == ']' || c == '}') {
            --depth;
        } else if (c == ',' && depth == 0) {
            emit(pos);
            start = pos + 1;
        }
    }
    emit(body.size());
    return out;
}

bool
presetByName(const std::string& preset, unsigned ftq, SimConfig* out,
             std::string* err)
{
    if (preset == "fdip" || preset == "baseline") {
        *out = ftq != 0 ? presets::fdipWithFtq(ftq)
                        : presets::fdipBaseline();
        return true;
    }
    if (ftq != 0) {
        *err = "preset \"" + preset + "\" does not take an ftq override";
        return false;
    }
    if (preset == "perfect_icache") {
        *out = presets::perfectIcache();
    } else if (preset == "no_prefetch") {
        *out = presets::noPrefetch();
    } else if (preset == "udp8k") {
        *out = presets::udp8k();
    } else if (preset == "udp_infinite") {
        *out = presets::udpInfinite();
    } else if (preset == "big_icache40k") {
        *out = presets::bigIcache40k();
    } else if (preset == "eip8k") {
        *out = presets::eip8k();
    } else {
        *err = "unknown preset \"" + preset + "\"";
        return false;
    }
    return true;
}

std::string
sanitizeName(const std::string& name)
{
    std::string out;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                  c == '.';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("worker") : out;
}

} // namespace

// --- sweep spec ------------------------------------------------------------

std::string
sweepSpecToJson(const SweepSpec& spec)
{
    std::string out = "{\"name\":\"" + jsonEscape(spec.name) +
                      "\",\"warmup_instrs\":" +
                      std::to_string(spec.warmupInstrs) +
                      ",\"measure_instrs\":" +
                      std::to_string(spec.measureInstrs) +
                      ",\"workloads\":[";
    for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
        if (i != 0) {
            out += ',';
        }
        out += "\"" + jsonEscape(spec.workloads[i]) + "\"";
    }
    out += "],\"configs\":[";
    for (std::size_t i = 0; i < spec.configs.size(); ++i) {
        const SpecConfig& c = spec.configs[i];
        if (i != 0) {
            out += ',';
        }
        out += "{\"label\":\"" + jsonEscape(c.label) + "\",\"preset\":\"" +
               jsonEscape(c.preset) +
               "\",\"ftq\":" + std::to_string(c.ftq) + "}";
    }
    out += "]}";
    return out;
}

bool
sweepSpecFromJson(const std::string& json, SweepSpec* out, std::string* err)
{
    SweepSpec spec;
    specString(json, "name", &spec.name);
    if (!specU64(json, "warmup_instrs", &spec.warmupInstrs) ||
        !specU64(json, "measure_instrs", &spec.measureInstrs)) {
        *err = "spec needs numeric warmup_instrs and measure_instrs";
        return false;
    }
    std::string body;
    if (specArray(json, "workloads", &body)) {
        for (const std::string& el : specElements(body)) {
            std::string w;
            if (!specString("{\"v\":" + el + "}", "v", &w)) {
                *err = "workloads must be an array of strings";
                return false;
            }
            spec.workloads.push_back(std::move(w));
        }
    }
    if (!specArray(json, "configs", &body)) {
        *err = "spec needs a configs array";
        return false;
    }
    for (const std::string& el : specElements(body)) {
        SpecConfig c;
        if (!specString(el, "label", &c.label) ||
            !specString(el, "preset", &c.preset)) {
            *err = "every config needs label and preset";
            return false;
        }
        std::uint64_t ftq = 0;
        if (specU64(el, "ftq", &ftq)) {
            c.ftq = static_cast<unsigned>(ftq);
        }
        spec.configs.push_back(std::move(c));
    }
    if (spec.configs.empty()) {
        *err = "spec has no configs";
        return false;
    }
    *out = std::move(spec);
    return true;
}

bool
expandSweepSpec(const SweepSpec& spec, std::vector<SweepJob>* out,
                std::string* err)
{
    std::vector<std::string> names = spec.workloads;
    bool all = names.empty();
    for (const std::string& n : names) {
        if (n == "all") {
            all = true;
        }
    }
    if (all) {
        names.clear();
        for (const Profile& p : datacenterProfiles()) {
            names.push_back(p.name);
        }
    }
    RunOptions ro;
    ro.warmupInstrs = spec.warmupInstrs;
    ro.measureInstrs = spec.measureInstrs;
    out->clear();
    for (const std::string& w : names) {
        const Profile* prof;
        try {
            prof = &profileByName(w);
        } catch (const std::out_of_range&) {
            *err = "unknown workload \"" + w + "\"";
            return false;
        }
        for (const SpecConfig& c : spec.configs) {
            SweepJob job;
            if (!presetByName(c.preset, c.ftq, &job.config, err)) {
                return false;
            }
            job.profile = *prof;
            job.opts = ro;
            job.label = c.label;
            out->push_back(std::move(job));
        }
    }
    if (out->empty()) {
        *err = "spec expands to zero jobs";
        return false;
    }
    return true;
}

// --- worker ----------------------------------------------------------------

WorkerSummary
runSweepWorker(WorkQueue& queue, const std::vector<SweepJob>& jobs,
               const WorkerOptions& opts)
{
    WorkerSummary sum;
    std::vector<std::uint64_t> hashes(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        hashes[i] = sweepJobHash(jobs[i], i);
    }

    std::string shardPath;
    if (!opts.shardDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.shardDir, ec);
        shardPath = opts.shardDir + "/" + sanitizeName(opts.name) +
                    ".shard.jsonl";
    }
    auto flushLocal = [&](const ManifestEntry& e) {
        if (shardPath.empty()) {
            return;
        }
        std::ofstream out(shardPath, std::ios::out | std::ios::app);
        if (!out.is_open()) {
            return;
        }
        out << manifestEntryToJsonLine(e) << '\n';
        out.flush();
        ++sum.flushedLocal;
    };

    for (;;) {
        if (opts.maxJobs != 0 && sum.executed >= opts.maxJobs) {
            break;
        }
        JobLease lease;
        ClaimOutcome co = queue.claim(opts.name, &lease);
        if (co == ClaimOutcome::Drained) {
            break;
        }
        if (co == ClaimOutcome::Lost) {
            sum.queueLost = true;
            break;
        }
        if (co == ClaimOutcome::NoWork) {
            sleepSec(opts.pollSec > 0.0 ? opts.pollSec
                                        : queue.noWorkRetrySec());
            continue;
        }

        ManifestEntry entry;
        entry.hash = lease.hash;
        entry.index = lease.index;
        entry.worker = opts.name;

        // The lease is only (hash, index): verify our own deterministic
        // expansion agrees before running anything. A divergent worker
        // (stale binary, different spec) must not push a wrong Report
        // under a valid hash.
        if (lease.index >= jobs.size() ||
            hashes[lease.index] != lease.hash) {
            entry.ok = false;
            entry.errorKind = "spec_mismatch";
            if (lease.index < jobs.size()) {
                entry.workload = jobs[lease.index].profile.name;
                entry.label = jobs[lease.index].label;
            }
            ++sum.mismatches;
            obs::counter("sweep_worker.spec_mismatches").add(1);
            if (!opts.quiet) {
                obs::Event(obs::LogLevel::Warn, opts.name, "spec_mismatch")
                    .u64("job", lease.index)
                    .emit();
            }
            if (queue.push(lease, entry) == PushOutcome::Lost) {
                sum.queueLost = true;
                break;
            }
            continue;
        }

        // Heartbeat at ttl/3 while the job runs, stopped (and joined)
        // before push so queue access is serialized per worker.
        std::atomic<bool> stopHb{false};
        double interval = std::max(0.05, lease.ttlSec / 3.0);
        std::thread hb([&] {
            double slept = 0.0;
            while (!stopHb.load()) {
                sleepSec(0.02);
                slept += 0.02;
                if (slept >= interval) {
                    slept = 0.0;
                    queue.renew(lease);
                }
            }
        });

        if (opts.jobDelayMs != 0) {
            sleepSec(static_cast<double>(opts.jobDelayMs) / 1000.0);
        }
        ++sum.executed;
        obs::counter("sweep_worker.jobs_executed").add(1);
        JobResult jr = runJobChecked(jobs[lease.index], lease.index,
                                     opts.exec);
        stopHb.store(true);
        hb.join();

        entry.workload = jobs[lease.index].profile.name;
        entry.label = jobs[lease.index].label;
        entry.ok = jr.ok;
        if (jr.ok) {
            entry.reportJson = reportToJsonLine(jr.report);
        } else {
            entry.errorKind = jr.error.kind;
        }

        switch (queue.push(lease, entry)) {
        case PushOutcome::Recorded:
            jr.ok ? ++sum.completed : ++sum.failures;
            break;
        case PushOutcome::Duplicate:
            ++sum.duplicates;
            break;
        case PushOutcome::Lost:
            // Coordinator gone mid-push: the result is not wasted — the
            // local shard manifest is absorbed on coordinator restart.
            sum.queueLost = true;
            if (entry.ok) {
                flushLocal(entry);
            }
            obs::counter("sweep_worker.queue_lost").add(1);
            if (!opts.quiet) {
                obs::Event(obs::LogLevel::Warn, opts.name, "queue_lost")
                    .u64("job", lease.index)
                    .str("result", entry.ok ? "flushed_local" : "dropped")
                    .emit();
            }
            break;
        }
        if (sum.queueLost) {
            break;
        }
    }
    return sum;
}

// --- coordinator -----------------------------------------------------------

struct SweepCoordinator::Impl
{
    std::vector<SweepJob> jobs;
    CoordinatorOptions opts;
    QueueEndpoint ep;

    std::vector<std::uint64_t> hashes;
    std::unordered_map<std::uint64_t, std::size_t> hashToIndex;

    std::vector<ManifestEntry> finals;
    std::vector<char> haveFinal;
    std::size_t finalCount = 0;
    std::size_t failedCount = 0;
    std::size_t resumedCount = 0;

    SweepManifest manifest;
    std::atomic<bool> stop{false};
    bool started = false;
    double startTime = 0.0;

    // TCP mode.
    std::unique_ptr<LeaseTable> table;
    TcpQueueServer server;
    // Filesystem mode.
    std::unique_ptr<FsWorkQueue> fsq;

    // --- live status surface (obs/status.h) --------------------------
    // The TCP LeaseTable tracks per-worker counters natively; in FS mode
    // the coordinator reconstructs them by diffing lease-directory
    // snapshots each tick. Rows store ABSOLUTE last-contact times
    // (monotonic seconds); buildStatus() converts to ages on export.
    std::unordered_map<std::string, obs::WorkerStatusRow> fsWorkers;
    struct FsSeenLease
    {
        std::string worker;
        std::uint64_t hash = 0;
        std::uint64_t expiryMs = 0;
    };
    std::unordered_map<std::uint64_t, FsSeenLease> fsSeen; ///< by token
    std::vector<FsLeaseInfo> fsLeaseSnapshot;
    double lastStatusSec = 0.0;

    bool isTcp() const { return ep.tcp; }

    obs::WorkerStatusRow& fsWorkerRow(const std::string& name)
    {
        obs::WorkerStatusRow& row = fsWorkers[name];
        if (row.name.empty()) {
            row.name = name;
            row.lastSeenSec = nowSec();
        }
        return row;
    }

    /**
     * Folds one lease-directory snapshot into the per-worker rows: a new
     * token is a claim (attempt >= 2 marks a retry; a second live lease
     * on the same hash marks a straggler grant), a larger expiry on a
     * known token is a heartbeat renewal, and a vanished token whose
     * lease was already past expiry counts as an expiration (a push
     * removes its lease file too, so in-date disappearances are normal
     * completions and are not charged).
     */
    void updateFsWorkers(std::vector<FsLeaseInfo> leases)
    {
        double now = nowSec();
        std::uint64_t nowMs = wallMs();
        std::unordered_map<std::uint64_t, std::size_t> liveByHash;
        for (const FsLeaseInfo& l : leases) {
            ++liveByHash[l.hash];
        }
        std::unordered_map<std::uint64_t, FsSeenLease> seen;
        for (const FsLeaseInfo& l : leases) {
            obs::WorkerStatusRow& row = fsWorkerRow(l.worker);
            auto it = fsSeen.find(l.token);
            if (it == fsSeen.end()) {
                ++row.claims;
                if (l.attempt >= 2) {
                    ++row.retries;
                }
                if (liveByHash[l.hash] > 1) {
                    ++row.stragglers;
                }
                row.lastSeenSec = now;
            } else if (l.expiryMs > it->second.expiryMs) {
                ++row.renewals;
                row.lastSeenSec = now;
            }
            seen[l.token] = FsSeenLease{l.worker, l.hash, l.expiryMs};
        }
        for (const auto& [token, old] : fsSeen) {
            if (seen.find(token) != seen.end()) {
                continue;
            }
            if (old.expiryMs <= nowMs) {
                // lastSeenSec left alone: the silence should show.
                ++fsWorkerRow(old.worker).expirations;
            }
        }
        fsSeen = std::move(seen);
        fsLeaseSnapshot = std::move(leases);
    }

    /** One status document (obs/status.h JSON) from live state. */
    std::string buildStatus()
    {
        double now = nowSec();
        obs::SweepStatus st;
        st.name = opts.name;
        st.transport = isTcp() ? "tcp" : "fs";
        st.tsMs = wallMs();
        st.total = jobs.size();
        st.done = finalCount - failedCount;
        st.failed = failedCount;
        st.resumed = resumedCount;
        st.elapsedSec = started ? now - startTime : 0.0;
        st.jobStates.assign(jobs.size(), obs::kJobPending);
        if (isTcp() && table) {
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                st.jobStates[i] = table->jobState(i);
            }
            for (const LeaseWorkerStats& ws : table->workerStats()) {
                obs::WorkerStatusRow row;
                row.name = ws.worker;
                row.activeLeases = ws.activeLeases;
                row.claims = ws.claims;
                row.completed = ws.completions;
                row.failed = ws.failures;
                row.retries = ws.retries;
                row.stragglers = ws.stragglers;
                row.renewals = ws.renewals;
                row.expirations = ws.expirations;
                row.lastSeenSec =
                    ws.lastSeenSec >= 0.0 ? now - ws.lastSeenSec : -1.0;
                st.workers.push_back(std::move(row));
            }
        } else {
            std::unordered_map<std::uint64_t, char> leasedHash;
            for (const FsLeaseInfo& l : fsLeaseSnapshot) {
                leasedHash[l.hash] = 1;
            }
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                if (haveFinal[i]) {
                    st.jobStates[i] =
                        finals[i].ok ? obs::kJobDone : obs::kJobFailed;
                } else if (leasedHash.find(hashes[i]) != leasedHash.end()) {
                    st.jobStates[i] = obs::kJobLeased;
                }
            }
            for (auto& [name, row] : fsWorkers) {
                (void)name;
                row.activeLeases = 0;
            }
            for (const FsLeaseInfo& l : fsLeaseSnapshot) {
                ++fsWorkerRow(l.worker).activeLeases;
            }
            for (const auto& [name, src] : fsWorkers) {
                (void)name;
                obs::WorkerStatusRow row = src;
                row.lastSeenSec =
                    src.lastSeenSec >= 0.0 ? now - src.lastSeenSec : -1.0;
                st.workers.push_back(std::move(row));
            }
            std::sort(st.workers.begin(), st.workers.end(),
                      [](const obs::WorkerStatusRow& a,
                         const obs::WorkerStatusRow& b) {
                          return a.name < b.name;
                      });
        }
        for (char c : st.jobStates) {
            if (c == obs::kJobPending) {
                ++st.pending;
            } else if (c == obs::kJobLeased) {
                ++st.leased;
            }
        }
        std::size_t fresh =
            finalCount > resumedCount ? finalCount - resumedCount : 0;
        st.etaSec = fresh == 0
                        ? -1.0
                        : st.elapsedSec / static_cast<double>(fresh) *
                              static_cast<double>(jobs.size() - finalCount);
        st.metricsJson = obs::Registry::global().snapshotJson();
        return sweepStatusToJson(st);
    }

    /** FS transport: refresh "<dir>/status.json" (rate-limited unless
     *  @p force — the post-drain publication must always land). */
    void publishFsStatus(bool force)
    {
        if (!fsq) {
            return;
        }
        double now = nowSec();
        if (!force && now - lastStatusSec < std::max(opts.pollSec, 0.25)) {
            return;
        }
        lastStatusSec = now;
        fsq->writeStatusFile(buildStatus());
    }

    /** Records a job's final outcome exactly once. */
    void recordFinal(std::size_t idx, ManifestEntry e, bool toManifest)
    {
        if (haveFinal[idx]) {
            return;
        }
        haveFinal[idx] = 1;
        ++finalCount;
        obs::counter("sweepd.jobs_final").add(1);
        if (!e.ok) {
            ++failedCount;
            obs::counter("sweepd.jobs_failed").add(1);
        }
        if (toManifest && manifest.isOpen()) {
            manifest.record(e);
        }
        finals[idx] = std::move(e);
    }

    void postProgress()
    {
        SweepProgress p;
        p.done = finalCount;
        p.total = jobs.size();
        p.failed = failedCount;
        p.resumed = resumedCount;
        p.elapsedSec = nowSec() - startTime;
        std::size_t fresh = p.done > p.resumed ? p.done - p.resumed : 0;
        p.etaSec = fresh == 0 ? 0.0
                              : p.elapsedSec / static_cast<double>(fresh) *
                                    static_cast<double>(p.total - p.done);
        if (opts.onProgress) {
            opts.onProgress(p);
        } else if (!opts.quiet) {
            obs::Event ev(obs::LogLevel::Info, "sweepd", "progress");
            ev.u64("done", p.done)
                .u64("total", p.total)
                .u64("failed", p.failed)
                .f64("elapsed_sec", p.elapsedSec)
                .f64("eta_sec", p.etaSec)
                .every(0.25);
            if (p.done == p.total) {
                ev.force(); // the 100% line always lands
            }
            ev.emit();
        }
    }

    /** Absorbs worker shard files: completed entries a worker flushed
     *  locally when it could not reach the coordinator. */
    void absorbShards()
    {
        if (opts.shardDir.empty()) {
            return;
        }
        std::error_code ec;
        std::filesystem::directory_iterator it(opts.shardDir, ec);
        if (ec) {
            return;
        }
        for (const auto& de : it) {
            std::string name = de.path().filename().string();
            if (name.size() < 12 ||
                name.compare(name.size() - 12, 12, ".shard.jsonl") != 0) {
                continue;
            }
            for (ManifestEntry& e : readManifestFile(de.path().string())) {
                auto hit = hashToIndex.find(e.hash);
                if (hit == hashToIndex.end() || !e.ok) {
                    continue; // failures re-run under the lease policy
                }
                std::size_t idx = hit->second;
                if (haveFinal[idx]) {
                    continue;
                }
                if (table) {
                    table->markDone(idx);
                }
                if (fsq) {
                    fsq->injectDone(e);
                }
                recordFinal(idx, std::move(e), true);
            }
        }
    }

    void tickTcp()
    {
        server.poll(opts.pollSec);
        table->tick(nowSec());
        // Jobs finally failed by expiry (tick) have no push to hook:
        // harvest them here.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const std::string* kind = table->finalErrorKind(i);
            if (kind == nullptr || haveFinal[i]) {
                continue;
            }
            ManifestEntry e;
            e.hash = hashes[i];
            e.index = i;
            e.workload = jobs[i].profile.name;
            e.label = jobs[i].label;
            e.ok = false;
            e.errorKind = *kind;
            recordFinal(i, std::move(e), true);
        }
    }

    void tickFs()
    {
        fsq->reclaimExpired();
        updateFsWorkers(fsq->scanLeases());
        for (ManifestEntry& e : fsq->collectDone()) {
            auto hit = hashToIndex.find(e.hash);
            if (hit == hashToIndex.end() || haveFinal[hit->second]) {
                continue;
            }
            if (e.ok && !manifestEntryIsConsistent(e)) {
                continue; // torn/spliced done entry: leave it to reclaim
            }
            // Attribute the final to its producer before the entry is
            // consumed (reclaim-published failures carry no worker).
            if (!e.worker.empty()) {
                obs::WorkerStatusRow& row = fsWorkerRow(e.worker);
                e.ok ? ++row.completed : ++row.failed;
                row.lastSeenSec = nowSec();
            }
            recordFinal(hit->second, std::move(e), true);
        }
        publishFsStatus(false);
        sleepSec(opts.pollSec);
    }
};

SweepCoordinator::SweepCoordinator(std::vector<SweepJob> jobs,
                                   CoordinatorOptions opts)
    : impl(std::make_unique<Impl>())
{
    impl->jobs = std::move(jobs);
    impl->opts = std::move(opts);
    impl->ep = parseQueueEndpoint(impl->opts.endpoint);
}

SweepCoordinator::~SweepCoordinator() = default;

bool
SweepCoordinator::start(std::string* err)
{
    Impl& im = *impl;
    im.hashes.resize(im.jobs.size());
    im.finals.resize(im.jobs.size());
    im.haveFinal.assign(im.jobs.size(), 0);
    for (std::size_t i = 0; i < im.jobs.size(); ++i) {
        im.hashes[i] = sweepJobHash(im.jobs[i], i);
        im.hashToIndex[im.hashes[i]] = i;
    }

    // Checkpoint manifest first: resumed completions never hit the queue.
    if (!im.opts.manifestPath.empty()) {
        if (!im.manifest.open(im.opts.manifestPath, im.opts.resume)) {
            *err = "cannot open manifest " + im.opts.manifestPath;
            return false;
        }
        if (im.opts.resume) {
            for (std::size_t i = 0; i < im.jobs.size(); ++i) {
                const ManifestEntry* e =
                    im.manifest.findCompleted(im.hashes[i]);
                // The workload/label binding must match the job the
                // hash names: a spliced manifest line can attach a
                // valid hash to another record's fields, and such an
                // entry is re-run, never replayed.
                if (e != nullptr &&
                    e->workload == im.jobs[i].profile.name &&
                    e->label == im.jobs[i].label) {
                    ++im.resumedCount;
                    im.recordFinal(i, *e, false); // already on disk
                }
            }
            if (!im.opts.quiet && im.resumedCount != 0) {
                obs::Event(obs::LogLevel::Info, "sweepd", "resumed")
                    .u64("resumed", im.resumedCount)
                    .u64("total", im.jobs.size())
                    .str("manifest", im.opts.manifestPath)
                    .emit();
            }
        }
    }

    if (im.isTcp()) {
        im.table = std::make_unique<LeaseTable>(im.hashes, im.opts.policy);
        for (std::size_t i = 0; i < im.jobs.size(); ++i) {
            if (im.haveFinal[i]) {
                im.table->markDone(i);
            }
        }
        im.absorbShards();
        TcpQueueServer::Handlers h;
        h.spec = [&im] { return im.opts.specJson; };
        h.total = [&im] { return im.jobs.size(); };
        h.retrySec = [&im] { return im.opts.policy.noWorkRetrySec; };
        h.status = [&im] { return im.buildStatus(); };
        h.claim = [&im](const std::string& worker, JobLease* out) {
            return im.table->claim(nowSec(), worker, out);
        };
        h.renew = [&im](std::uint64_t token) {
            return im.table->renew(nowSec(), token);
        };
        h.push = [&im](std::uint64_t token, const ManifestEntry& entry) {
            std::size_t idx = im.table->leaseIndex(token);
            if (idx == LeaseTable::npos || im.hashes[idx] != entry.hash ||
                (entry.ok && !manifestEntryIsConsistent(entry))) {
                return LeaseTable::Push::Unknown;
            }
            LeaseTable::Push pr = im.table->push(nowSec(), token, entry.ok,
                                                 entry.errorKind);
            if (pr == LeaseTable::Push::RecordedFinal) {
                im.recordFinal(idx, entry, true);
            }
            return pr;
        };
        if (!im.server.listen(im.ep.host, im.ep.port, std::move(h), err)) {
            return false;
        }
    } else {
        im.fsq = std::make_unique<FsWorkQueue>(im.ep.dir, 5.0);
        std::vector<ManifestEntry> skeleton;
        skeleton.reserve(im.jobs.size());
        for (std::size_t i = 0; i < im.jobs.size(); ++i) {
            ManifestEntry e;
            e.hash = im.hashes[i];
            e.index = i;
            e.workload = im.jobs[i].profile.name;
            e.label = im.jobs[i].label;
            skeleton.push_back(std::move(e));
        }
        // Inject resumed completions into done/ BEFORE seeding tickets,
        // so seed() skips them and no worker re-runs a resumed job.
        for (std::size_t i = 0; i < im.jobs.size(); ++i) {
            if (im.haveFinal[i] && im.finals[i].ok) {
                im.fsq->injectDone(im.finals[i]);
            }
        }
        im.absorbShards();
        if (!im.fsq->seed(skeleton, im.opts.specJson, im.opts.policy,
                          err)) {
            return false;
        }
    }
    im.startTime = nowSec();
    im.started = true;
    im.publishFsStatus(true); // FS only: status visible before first tick
    return true;
}

std::string
SweepCoordinator::endpoint() const
{
    if (!impl->isTcp()) {
        return impl->opts.endpoint;
    }
    std::string host = impl->ep.host.empty() ? "127.0.0.1" : impl->ep.host;
    if (host == "0.0.0.0") {
        host = "127.0.0.1";
    }
    return "tcp:" + host + ":" + std::to_string(impl->server.port());
}

int
SweepCoordinator::port() const
{
    return impl->isTcp() ? impl->server.port() : 0;
}

std::size_t
SweepCoordinator::totalJobs() const
{
    return impl->jobs.size();
}

void
SweepCoordinator::requestStop()
{
    impl->stop.store(true);
}

std::vector<JobResult>
SweepCoordinator::run()
{
    Impl& im = *impl;
    std::vector<JobResult> results(im.jobs.size());
    if (!im.started) {
        return results;
    }

    std::size_t lastProgress = im.finalCount;
    while (!im.stop.load() && im.finalCount < im.jobs.size()) {
        if (im.isTcp()) {
            im.tickTcp();
        } else {
            im.tickFs();
        }
        if (im.finalCount != lastProgress) {
            lastProgress = im.finalCount;
            im.postProgress();
        }
    }
    if (im.isTcp()) {
        // Drain announcement: answer idle workers' next claim with
        // Drained (instead of a closed socket) so they exit cleanly.
        if (!im.stop.load()) {
            double grace =
                nowSec() + std::max(0.5, 2.0 * im.opts.policy.noWorkRetrySec);
            while (nowSec() < grace) {
                im.server.poll(0.05);
            }
        }
        im.server.close();
    }
    im.absorbShards();
    im.manifest.close();
    // Final FS status so post-completion queries reconcile with the
    // merged manifest (TCP answers live until server.close() above).
    im.publishFsStatus(true);

    for (std::size_t i = 0; i < im.jobs.size(); ++i) {
        JobResult& jr = results[i];
        if (!im.haveFinal[i]) {
            jr.skipped = true;
            jr.error.kind = "skipped";
            jr.error.message = "coordinator stopped before completion";
            continue;
        }
        const ManifestEntry& e = im.finals[i];
        if (e.ok) {
            Report r;
            if (reportFromJsonLine(e.reportJson, &r)) {
                jr.report = std::move(r);
                jr.ok = true;
                jr.attempts = 1;
                continue;
            }
            jr.error.kind = "protocol";
            jr.error.message = "recorded report failed to parse";
            continue;
        }
        jr.error.kind = e.errorKind;
        jr.error.message = "distributed job failed (" + e.errorKind + ")";
        jr.attempts = im.opts.policy.maxAttempts;
    }
    // Resumed flags after the loop so moved-from state is not consulted.
    if (im.resumedCount != 0) {
        for (std::size_t i = 0; i < im.jobs.size(); ++i) {
            const ManifestEntry* e =
                im.manifest.findCompleted(im.hashes[i]);
            if (results[i].ok && e != nullptr &&
                e->workload == im.jobs[i].profile.name &&
                e->label == im.jobs[i].label) {
                results[i].resumed = true;
                results[i].attempts = 0;
            }
        }
    }
    return results;
}

} // namespace udp

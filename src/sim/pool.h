/**
 * @file
 * A fixed-size thread pool used by the sweep runner (sweep.h).
 *
 * Deliberately minimal: submit() enqueues fire-and-forget tasks, wait()
 * blocks until every submitted task has finished. Tasks must not throw —
 * callers that can fail should capture their own std::exception_ptr
 * (SweepRunner does exactly that).
 */

#ifndef UDP_SIM_POOL_H
#define UDP_SIM_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace udp {

/** Fixed-size worker pool over a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawns @p num_threads workers (at least one). */
    explicit ThreadPool(unsigned num_threads)
    {
        if (num_threads == 0) {
            num_threads = 1;
        }
        workers.reserve(num_threads);
        for (unsigned i = 0; i < num_threads; ++i) {
            workers.emplace_back([this] { workerLoop(); });
        }
    }

    /** Drains the queue, then joins all workers. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            stopping = true;
        }
        taskReady.notify_all();
        for (std::thread& w : workers) {
            w.join();
        }
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueues @p task for execution by any worker. */
    void submit(std::function<void()> task)
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            queue.push_back(std::move(task));
            ++unfinished;
        }
        taskReady.notify_one();
    }

    /** Blocks until every task submitted so far has completed. */
    void wait()
    {
        std::unique_lock<std::mutex> lock(mtx);
        allDone.wait(lock, [this] { return unfinished == 0; });
    }

    std::size_t numThreads() const { return workers.size(); }

  private:
    void workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mtx);
                taskReady.wait(lock,
                               [this] { return stopping || !queue.empty(); });
                if (queue.empty()) {
                    return; // stopping and drained
                }
                task = std::move(queue.front());
                queue.pop_front();
            }
            task();
            {
                std::lock_guard<std::mutex> lock(mtx);
                if (--unfinished == 0) {
                    allDone.notify_all();
                }
            }
        }
    }

    std::mutex mtx;
    std::condition_variable taskReady;
    std::condition_variable allDone;
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    std::size_t unfinished = 0;
    bool stopping = false;
};

} // namespace udp

#endif // UDP_SIM_POOL_H

/**
 * @file
 * Shared little-endian wire encoding for the process/host boundary
 * protocols: the procexec result pipe (sim/procexec.cc) and the
 * distributed work-queue TCP protocol (sim/workqueue.cc) frame their
 * payloads with the same length-prefixed primitives so both sides of
 * either channel agree byte for byte.
 *
 * Also home of the process-wide SIGPIPE guard: every peer of a pipe or
 * socket can die mid-conversation, and the default SIGPIPE disposition
 * would kill us instead of letting the write fail with EPIPE and be
 * classified as a structured JobError (docs/ROBUSTNESS.md §10).
 */

#ifndef UDP_SIM_WIRE_H
#define UDP_SIM_WIRE_H

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <string>

namespace udp::wire {

inline void
appendU32(std::string* buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        buf->push_back(static_cast<char>(v >> (8 * i)));
    }
}

inline void
appendU64(std::string* buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        buf->push_back(static_cast<char>(v >> (8 * i)));
    }
}

inline void
appendStr(std::string* buf, const std::string& s)
{
    appendU32(buf, static_cast<std::uint32_t>(s.size()));
    buf->append(s);
}

inline bool
readU32(const std::string& buf, std::size_t* pos, std::uint32_t* out)
{
    if (*pos + 4 > buf.size()) {
        return false;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(buf[*pos + i]))
             << (8 * i);
    }
    *pos += 4;
    *out = v;
    return true;
}

inline bool
readU64(const std::string& buf, std::size_t* pos, std::uint64_t* out)
{
    if (*pos + 8 > buf.size()) {
        return false;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[*pos + i]))
             << (8 * i);
    }
    *pos += 8;
    *out = v;
    return true;
}

inline bool
readStr(const std::string& buf, std::size_t* pos, std::string* out)
{
    std::uint32_t len = 0;
    if (!readU32(buf, pos, &len) || *pos + len > buf.size()) {
        return false;
    }
    out->assign(buf, *pos, len);
    *pos += len;
    return true;
}

/**
 * Ignores SIGPIPE process-wide (idempotent). A peer that dies between
 * our write()s would otherwise raise SIGPIPE and kill the process; with
 * the signal ignored the write fails with EPIPE and the caller converts
 * it into a classified error ("exit" for a dying isolated child,
 * transport-lost for a dead coordinator). Socket paths additionally use
 * MSG_NOSIGNAL where available as a belt-and-braces measure.
 */
inline void
installSigpipeIgnore()
{
#ifndef _WIN32
    std::signal(SIGPIPE, SIG_IGN);
#endif
}

} // namespace udp::wire

#endif // UDP_SIM_WIRE_H

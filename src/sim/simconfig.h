/**
 * @file
 * Full simulated-system configuration. Defaults reproduce Table II of the
 * paper (Sunny-Cove-like core, 3 GHz, FDIP with a 32-entry FTQ) plus the
 * technique toggles evaluated in Section V.
 */

#ifndef UDP_SIM_SIMCONFIG_H
#define UDP_SIM_SIMCONFIG_H

#include "backend/backend.h"
#include "bpred/bpu.h"
#include "cache/memsys.h"
#include "core/udp_engine.h"
#include "core/uftq.h"
#include "frontend/decoupled_fe.h"
#include "frontend/fdip.h"
#include "frontend/fetch.h"
#include "obs/profiler.h"
#include "prefetch/eip.h"
#include "sim/faultinject.h"
#include "stats/telemetry.h"

namespace udp {

/** Forward-progress watchdog + invariant-sweep cadence (docs/ROBUSTNESS.md). */
struct WatchdogConfig
{
    /** Cycles without a single retirement before the watchdog throws
     *  SimHang (kind retire_stall). 0 disables the stall watchdog. */
    Cycle retireStallCycles = 100'000;
    /** Absolute cycle budget for the whole run; exceeding it throws
     *  SimHang (kind cycle_budget). 0 = unlimited. Sweeps can set this
     *  per job via SweepOptions::jobCycleBudget. */
    Cycle maxCycles = 0;
    /** Cycles between always-on cheap invariant sweeps. 0 disables
     *  periodic sweeps (UDP_CHECK builds still run the full sweep). */
    Cycle invariantPeriod = 4096;
};

/** Everything needed to build a Cpu. */
struct SimConfig
{
    BpuConfig bpu;
    MemSysConfig mem;
    FrontendConfig frontend;
    FetchConfig fetch;
    FdipConfig fdip;
    BackendConfig backend;

    /** Dynamic FTQ capacity (baseline: 32 blocks [28]). */
    unsigned ftqCapacity = 32;
    /** Physical FTQ bound (UFTQ never grows beyond this). */
    unsigned ftqPhysical = 128;

    /** Enable the UDP filter on FDIP. */
    bool udpEnabled = false;
    UdpConfig udp;

    /** UFTQ dynamic FTQ sizing (mode Off = fixed capacity). */
    UftqConfig uftq;

    /** Enable the EIP baseline prefetcher (usually with fdip.enabled off). */
    bool eipEnabled = false;
    EipConfig eip;

    /** Hang detection and invariant-sweep cadence. */
    WatchdogConfig watchdog;

    /** Fault injection (kind None = clean run; tests/test_faults.cc). */
    FaultPlan fault;

    /** Telemetry layer: lifecycle tracking, interval stats, trace export
     *  (docs/TELEMETRY.md). Disabled by default; when disabled the run is
     *  byte-identical to a build without the telemetry layer. */
    TelemetryConfig telemetry;

    /** Cycle-loop self-profiler: wall-time attribution per component
     *  (docs/OBSERVABILITY.md). Off by default — the only cost is one
     *  null-pointer check per phase site. Outside sweepJobHash(): it
     *  never perturbs job identity or modeled results. */
    ProfileConfig profile;
};

/** Named preset configurations used across benches and examples. */
namespace presets {

/** Ishii-style FDIP baseline with a fixed 32-entry FTQ. */
inline SimConfig
fdipBaseline()
{
    return SimConfig{};
}

/** FDIP with a specific fixed FTQ depth. */
inline SimConfig
fdipWithFtq(unsigned depth)
{
    SimConfig c;
    c.ftqCapacity = depth;
    if (depth > c.ftqPhysical) {
        c.ftqPhysical = depth;
    }
    return c;
}

/** Perfect icache oracle (Fig. 1). */
inline SimConfig
perfectIcache()
{
    SimConfig c;
    c.mem.perfectIcache = true;
    return c;
}

/** No instruction prefetching at all. */
inline SimConfig
noPrefetch()
{
    SimConfig c;
    c.fdip.enabled = false;
    return c;
}

/** UFTQ variant on top of the baseline. */
inline SimConfig
uftq(UftqMode mode)
{
    SimConfig c;
    c.uftq.mode = mode;
    c.ftqCapacity = c.uftq.initialDepth;
    return c;
}

/** UDP with the paper's 8KB useful-set. */
inline SimConfig
udp8k()
{
    SimConfig c;
    c.udpEnabled = true;
    return c;
}

/** UDP with an infinite useful-set (Fig. 13 upper bound). */
inline SimConfig
udpInfinite()
{
    SimConfig c;
    c.udpEnabled = true;
    c.udp.usefulSet.infiniteStorage = true;
    return c;
}

/** ISO-storage: enlarged 40 KiB icache instead of UDP metadata. */
inline SimConfig
bigIcache40k()
{
    SimConfig c;
    c.mem.l1iSize = 40 * 1024;
    c.mem.l1iAssoc = 10; // 64 sets x 10 ways
    return c;
}

/** ISO-storage: EIP-8KB on top of the FDIP baseline. */
inline SimConfig
eip8k()
{
    SimConfig c;
    c.eipEnabled = true;
    return c;
}

} // namespace presets

} // namespace udp

#endif // UDP_SIM_SIMCONFIG_H

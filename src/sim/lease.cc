#include "sim/lease.h"

#include <algorithm>
#include <cmath>

namespace udp {

namespace {

/** FNV-1a over (hash, attempt): the deterministic jitter seed. */
std::uint64_t
jitterSeed(std::uint64_t hash, unsigned attempt)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x00000100000001B3ull;
        }
    };
    mix(hash);
    mix(attempt);
    return h;
}

} // namespace

double
LeaseTable::backoffDelaySec(const LeasePolicy& policy, unsigned attempt,
                            std::uint64_t hash)
{
    if (attempt <= 1) {
        return 0.0;
    }
    double delay = policy.backoffBaseSec *
                   std::ldexp(1.0, static_cast<int>(
                                       std::min(attempt - 2, 62u)));
    delay = std::min(delay, policy.backoffCapSec);
    if (policy.backoffJitterFrac > 0.0) {
        // Deterministic uniform [0, 1) from the top 53 bits of the seed.
        double u = static_cast<double>(jitterSeed(hash, attempt) >> 11) *
                   0x1.0p-53;
        delay += policy.backoffJitterFrac * delay * u;
    }
    return delay;
}

LeaseTable::LeaseTable(std::vector<std::uint64_t> jobHashes,
                       LeasePolicy pol)
    : policy(pol)
{
    jobs.resize(jobHashes.size());
    for (std::size_t i = 0; i < jobHashes.size(); ++i) {
        jobs[i].hash = jobHashes[i];
    }
}

void
LeaseTable::markDone(std::size_t index)
{
    if (index >= jobs.size() || jobs[index].done || jobs[index].failed) {
        return;
    }
    jobs[index].done = true;
    ++doneJobs;
}

LeaseTable::Lease*
LeaseTable::findLease(std::uint64_t token)
{
    auto it = leases.find(token);
    return it == leases.end() ? nullptr : &it->second;
}

void
LeaseTable::dropLease(JobState& job, std::uint64_t token)
{
    auto it = std::find(job.leases.begin(), job.leases.end(), token);
    if (it != job.leases.end()) {
        job.leases.erase(it);
    }
    if (Lease* l = findLease(token)) {
        l->active = false;
    }
}

void
LeaseTable::settleAfterLostAttempt(double nowSec, JobState& job,
                                   const std::string& kind)
{
    // Caller already dropped the lease; the attempt itself was charged
    // when the claim was granted.
    if (job.done || job.failed || !job.leases.empty()) {
        return; // a duplicate lease is still running — let it finish
    }
    if (job.attemptsUsed >= policy.maxAttempts) {
        job.failed = true;
        job.errorKind = kind;
        ++failedJobs;
        return;
    }
    job.notBefore =
        nowSec + backoffDelaySec(policy, job.attemptsUsed + 1, job.hash);
}

LeaseWorkerStats&
LeaseTable::workerRow(const std::string& worker, double nowSec)
{
    LeaseWorkerStats& ws = workers_[worker];
    if (ws.worker.empty()) {
        ws.worker = worker;
        ws.lastSeenSec = nowSec;
    }
    return ws;
}

void
LeaseTable::tick(double nowSec)
{
    for (auto& [token, l] : leases) {
        if (!l.active || l.expiry > nowSec) {
            continue;
        }
        JobState& job = jobs[l.index];
        dropLease(job, token);
        // The worker went silent: charge the expiry but leave its
        // lastSeenSec alone so the status row shows the silence.
        ++workerRow(l.worker, nowSec).expirations;
        if (job.done || job.failed) {
            continue;
        }
        settleAfterLostAttempt(nowSec, job, "worker_lost");
    }
}

JobLease
LeaseTable::grant(double nowSec, const std::string& worker,
                  std::size_t index, unsigned attempt)
{
    Lease l;
    l.token = nextToken++;
    l.index = index;
    l.worker = worker;
    l.attempt = attempt;
    l.grantedAt = nowSec;
    l.expiry = nowSec + policy.leaseTtlSec;
    l.active = true;
    leases[l.token] = l;
    jobs[index].leases.push_back(l.token);

    JobLease out;
    out.hash = jobs[index].hash;
    out.index = index;
    out.token = l.token;
    out.attempt = attempt;
    out.ttlSec = policy.leaseTtlSec;
    return out;
}

ClaimOutcome
LeaseTable::claim(double nowSec, const std::string& worker, JobLease* out)
{
    tick(nowSec);
    LeaseWorkerStats& ws = workerRow(worker, nowSec);
    ws.lastSeenSec = nowSec;
    if (drained()) {
        return ClaimOutcome::Drained;
    }

    // Pending work first: no active lease, backoff window passed.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        JobState& job = jobs[i];
        if (job.done || job.failed || !job.leases.empty() ||
            job.notBefore > nowSec) {
            continue;
        }
        ++job.attemptsUsed;
        ++ws.claims;
        if (job.attemptsUsed >= 2) {
            ++ws.retries;
        }
        *out = grant(nowSec, worker, i, job.attemptsUsed);
        return ClaimOutcome::Granted;
    }

    // Straggler re-dispatch: nothing pending — duplicate the oldest
    // long-running lease (first completion will win; the loser's result
    // is discarded idempotently).
    bool anyPendingLater = false;
    for (const JobState& job : jobs) {
        if (!job.done && !job.failed && job.leases.empty()) {
            anyPendingLater = true; // backing off; retry soon
        }
    }
    if (!anyPendingLater && policy.maxDuplicates > 0) {
        std::size_t bestIdx = jobs.size();
        double bestGrantedAt = 0.0;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const JobState& job = jobs[i];
            if (job.done || job.failed || job.leases.empty() ||
                job.leases.size() > policy.maxDuplicates) {
                continue;
            }
            const Lease* oldest = findLease(job.leases.front());
            if (oldest == nullptr ||
                nowSec - oldest->grantedAt < policy.stragglerAfterSec) {
                continue;
            }
            if (bestIdx == jobs.size() ||
                oldest->grantedAt < bestGrantedAt) {
                bestIdx = i;
                bestGrantedAt = oldest->grantedAt;
            }
        }
        if (bestIdx != jobs.size()) {
            const Lease* oldest = findLease(jobs[bestIdx].leases.front());
            ++ws.claims;
            ++ws.stragglers;
            *out = grant(nowSec, worker, bestIdx,
                         oldest != nullptr ? oldest->attempt : 1);
            return ClaimOutcome::Granted;
        }
    }
    return ClaimOutcome::NoWork;
}

bool
LeaseTable::renew(double nowSec, std::uint64_t token)
{
    Lease* l = findLease(token);
    if (l == nullptr || !l->active) {
        return false;
    }
    l->expiry = nowSec + policy.leaseTtlSec;
    LeaseWorkerStats& ws = workerRow(l->worker, nowSec);
    ++ws.renewals;
    ws.lastSeenSec = nowSec;
    return true;
}

LeaseTable::Push
LeaseTable::push(double nowSec, std::uint64_t token, bool ok,
                 const std::string& errorKind)
{
    Lease* l = findLease(token);
    if (l == nullptr) {
        return Push::Unknown;
    }
    LeaseWorkerStats& ws = workerRow(l->worker, nowSec);
    ws.lastSeenSec = nowSec;
    JobState& job = jobs[l->index];
    if (job.done || job.failed) {
        dropLease(job, token);
        return Push::Duplicate;
    }
    if (ok) {
        ++ws.completions;
        // First completion wins; every lease on the job is settled.
        job.done = true;
        ++doneJobs;
        for (std::uint64_t t : job.leases) {
            if (Lease* other = findLease(t)) {
                other->active = false;
            }
        }
        job.leases.clear();
        return Push::RecordedFinal;
    }
    // A failed execution. The attempt was charged at claim time; here
    // the job is either requeued with backoff or finally failed.
    ++ws.failures;
    dropLease(job, token);
    settleAfterLostAttempt(nowSec, job,
                           errorKind.empty() ? "exception" : errorKind);
    return job.failed ? Push::RecordedFinal : Push::Requeued;
}

const std::string*
LeaseTable::finalErrorKind(std::size_t index) const
{
    if (index >= jobs.size() || !jobs[index].failed) {
        return nullptr;
    }
    return &jobs[index].errorKind;
}

unsigned
LeaseTable::attemptsUsed(std::size_t index) const
{
    return index < jobs.size() ? jobs[index].attemptsUsed : 0;
}

std::size_t
LeaseTable::activeLeases(std::size_t index) const
{
    return index < jobs.size() ? jobs[index].leases.size() : 0;
}

char
LeaseTable::jobState(std::size_t index) const
{
    if (index >= jobs.size()) {
        return '?';
    }
    const JobState& job = jobs[index];
    if (job.done) {
        return 'D';
    }
    if (job.failed) {
        return 'F';
    }
    return job.leases.empty() ? 'P' : 'L';
}

std::vector<LeaseWorkerStats>
LeaseTable::workerStats() const
{
    std::vector<LeaseWorkerStats> out;
    out.reserve(workers_.size());
    for (const auto& [name, ws] : workers_) {
        out.push_back(ws);
    }
    for (LeaseWorkerStats& ws : out) {
        ws.activeLeases = 0;
    }
    for (const auto& [token, l] : leases) {
        (void)token;
        if (!l.active) {
            continue;
        }
        for (LeaseWorkerStats& ws : out) {
            if (ws.worker == l.worker) {
                ++ws.activeLeases;
                break;
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const LeaseWorkerStats& a, const LeaseWorkerStats& b) {
                  return a.worker < b.worker;
              });
    return out;
}

std::size_t
LeaseTable::leaseIndex(std::uint64_t token) const
{
    auto it = leases.find(token);
    return it == leases.end() ? npos : it->second.index;
}

} // namespace udp

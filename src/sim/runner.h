/**
 * @file
 * The experiment API used by benches, examples and integration tests:
 * build a workload, run warmup + measurement, and collect a Report with
 * every derived metric the paper's figures need.
 *
 * runSim() is thread-safe: the sweep runner (sim/sweep.h) calls it
 * concurrently from a worker pool, and all workers share one immutable
 * Program per profile through an internal cache.
 */

#ifndef UDP_SIM_RUNNER_H
#define UDP_SIM_RUNNER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cpu.h"
#include "stats/stats.h"
#include "workload/profile.h"

namespace udp {

/**
 * Derived results of one simulation window.
 *
 * Every numeric field is exported under a schema-stable snake_case key by
 * toStatSet() and the JSON/CSV sinks (stats/sink.h); the full key table
 * with paper-figure provenance lives in docs/EXPERIMENT_GUIDE.md.
 */
struct Report
{
    /** Workload (profile) name; sink key "workload". */
    std::string workload;
    /** Free-form configuration label passed to runSim; sink key "config". */
    std::string configName;

    /** Instructions retired in the measurement window ("instructions"). */
    std::uint64_t instructions = 0;
    /** Cycles elapsed in the measurement window ("cycles"). */
    std::uint64_t cycles = 0;
    /** instructions / cycles — the speedup numerator of Figs. 1, 3, 11,
     *  13, 16, 17 ("ipc"). */
    double ipc = 0.0;

    // Instruction cache behaviour.
    /** L1I demand misses per kilo-instruction (Figs. 12, 14;
     *  "icache_mpki"). */
    double icacheMpki = 0.0;
    /** Demand fetches that merged with an in-flight fill per
     *  kilo-instruction ("mshr_hits_pki"). */
    double mshrHitsPki = 0.0;
    /** Timeliness over prefetched lines: resident hits /
     *  (resident hits + fill-buffer merges) (Fig. 4, Table III;
     *  "timeliness"). */
    double timeliness = 0.0;
    /** Overall demand ratio L1I hits / (L1I hits + fill-buffer hits)
     *  ("l1_hit_ratio"). */
    double l1HitRatio = 0.0;
    /** Instructions lost to icache-miss stalls per kilo-instr (Fig. 15;
     *  "lost_instr_per_kilo"). */
    double lostInstrPerKilo = 0.0;

    // Prefetch behaviour.
    /** Prefetches issued by the active prefetcher
     *  ("prefetches_emitted"). */
    std::uint64_t prefetchesEmitted = 0;
    /** On-path / (on+off) emitted prefetch ratio (Fig. 5;
     *  "onpath_ratio"). */
    double onPathRatio = 0.0;
    /** Ground-truth useful / (useful+useless) ratio (Fig. 6;
     *  "usefulness"). */
    double usefulness = 0.0;
    /** Hardware-visible utility ratio (what UFTQ measures; Table III;
     *  "usefulness_hw"). */
    double usefulnessHw = 0.0;

    // Frontend behaviour.
    /** Mean FTQ occupancy over the window (Fig. 8;
     *  "avg_ftq_occupancy"). */
    double avgFtqOccupancy = 0.0;
    /** Conditional mispredicts per kilo-instruction ("branch_mpki"). */
    double branchMpki = 0.0;
    /** Conditional mispredicts / predictions
     *  ("cond_mispredict_rate"). */
    double condMispredictRate = 0.0;
    /** Frontend resteers (mispredict + decode corrections) applied in the
     *  window ("resteers"). */
    std::uint64_t resteers = 0;
    /** BTB-miss corrections discovered at decode
     *  ("decode_corrections"). */
    std::uint64_t decodeCorrections = 0;

    // UDP internals (zero when UDP is off).
    /** Candidates dropped by the utility filter ("udp_dropped"). */
    std::uint64_t udpDropped = 0;
    /** Candidates that passed the utility filter and were emitted
     *  ("udp_filtered_emits"). */
    std::uint64_t udpFilteredEmits = 0;
    /** Retirement-verified lines learned into the useful set
     *  ("udp_learned"). */
    std::uint64_t udpLearned = 0;

    /** Flattened view for generic printing; same keys as the sinks minus
     *  the two string fields. */
    StatSet toStatSet() const;

    /**
     * End-of-run telemetry (null unless SimConfig::telemetry.enabled).
     * Deliberately NOT part of toStatSet()/the report sink schema: report
     * JSON/CSV rows stay byte-identical whether telemetry ran or not;
     * interval rows, summaries and traces flow through the dedicated
     * TelemetrySink / writeChromeTrace paths (stats/sink.h,
     * stats/tracefile.h).
     */
    std::shared_ptr<const TelemetrySnapshot> telemetry;

    /**
     * Cycle-loop self-profile (null unless SimConfig::profile.enabled).
     * Like telemetry above, NOT part of toStatSet()/the report sink
     * schema — report rows stay byte-identical whether profiling ran or
     * not; summaries flow through profileSummaryToJsonLine (stats/sink.h)
     * and the Chrome-trace exporter (stats/tracefile.h).
     */
    std::shared_ptr<const obs::ProfileSnapshot> profile;
};

/** Run options. */
struct RunOptions
{
    std::uint64_t warmupInstrs = 500'000;
    std::uint64_t measureInstrs = 1'000'000;
};

/**
 * Builds the Program for @p profile (cached across calls), runs a Cpu with
 * @p cfg and returns the measurement-window Report.
 *
 * Thread-safe: concurrent callers share one const Program per
 * (name, seed, footprint) key — the first caller builds it exactly once,
 * distinct keys build in parallel — and each call owns its Cpu, so
 * results are independent of the calling thread count.
 */
Report runSim(const Profile& profile, const SimConfig& cfg,
              const RunOptions& opts, std::string config_name = "");

/**
 * Builds (and caches) the Program for @p profile without running anything.
 * Isolated sweeps (sim/procexec.h) call this in the parent before forking
 * so every child inherits the built image via copy-on-write instead of
 * rebuilding it per process.
 */
void prewarmProgram(const Profile& profile);

/** Collects a Report from an already-run Cpu measurement window. */
Report collectReport(const Cpu& cpu, std::string workload,
                     std::string config_name);

/**
 * Reads bench scaling from the environment: UDP_BENCH_WARMUP and
 * UDP_BENCH_INSTR (instruction counts), falling back to @p defaults.
 * Malformed values (non-numeric, zero, trailing junk, overflow) warn on
 * stderr and keep the default.
 */
RunOptions envRunOptions(RunOptions defaults = RunOptions{});

/**
 * Parses environment variable @p name as a positive integer into @p out.
 * Returns false when unset; a set-but-malformed value (empty, non-numeric,
 * trailing junk, zero, or overflow) warns on stderr and also returns
 * false, so callers always fall back to their default.
 */
bool parsePositiveEnv(const char* name, std::uint64_t* out);

/** Geometric mean of a vector of positive speedups/ratios. */
double geomean(const std::vector<double>& xs);

/** Pearson correlation coefficient of two equally sized vectors. */
double correlation(const std::vector<double>& a,
                   const std::vector<double>& b);

} // namespace udp

#endif // UDP_SIM_RUNNER_H

/**
 * @file
 * The experiment API used by benches, examples and integration tests:
 * build a workload, run warmup + measurement, and collect a Report with
 * every derived metric the paper's figures need.
 */

#ifndef UDP_SIM_RUNNER_H
#define UDP_SIM_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cpu.h"
#include "stats/stats.h"
#include "workload/profile.h"

namespace udp {

/** Derived results of one simulation window. */
struct Report
{
    std::string workload;
    std::string configName;

    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;

    // Instruction cache behaviour.
    double icacheMpki = 0.0;
    double mshrHitsPki = 0.0;
    /** Timeliness over prefetched lines: resident hits /
     *  (resident hits + fill-buffer merges) (Fig. 4, Table III). */
    double timeliness = 0.0;
    /** Overall demand ratio L1I hits / (L1I hits + fill-buffer hits). */
    double l1HitRatio = 0.0;
    /** Instructions lost to icache-miss stalls per kilo-instr (Fig. 15). */
    double lostInstrPerKilo = 0.0;

    // Prefetch behaviour.
    std::uint64_t prefetchesEmitted = 0;
    /** On-path / (on+off) emitted prefetch ratio (Fig. 5). */
    double onPathRatio = 0.0;
    /** Ground-truth useful / (useful+useless) ratio (Fig. 6). */
    double usefulness = 0.0;
    /** Hardware-visible utility ratio (what UFTQ measures). */
    double usefulnessHw = 0.0;

    // Frontend behaviour.
    double avgFtqOccupancy = 0.0;
    double branchMpki = 0.0;
    double condMispredictRate = 0.0;
    std::uint64_t resteers = 0;
    std::uint64_t decodeCorrections = 0;

    // UDP internals (zero when UDP is off).
    std::uint64_t udpDropped = 0;
    std::uint64_t udpFilteredEmits = 0;
    std::uint64_t udpLearned = 0;

    /** Flattened view for generic printing. */
    StatSet toStatSet() const;
};

/** Run options. */
struct RunOptions
{
    std::uint64_t warmupInstrs = 500'000;
    std::uint64_t measureInstrs = 1'000'000;
};

/**
 * Builds the Program for @p profile (cached across calls), runs a Cpu with
 * @p cfg and returns the measurement-window Report.
 */
Report runSim(const Profile& profile, const SimConfig& cfg,
              const RunOptions& opts, std::string config_name = "");

/** Collects a Report from an already-run Cpu measurement window. */
Report collectReport(const Cpu& cpu, std::string workload,
                     std::string config_name);

/**
 * Reads bench scaling from the environment: UDP_BENCH_WARMUP and
 * UDP_BENCH_INSTR (instruction counts), falling back to @p defaults.
 */
RunOptions envRunOptions(RunOptions defaults = RunOptions{});

/** Geometric mean of a vector of positive speedups/ratios. */
double geomean(const std::vector<double>& xs);

/** Pearson correlation coefficient of two equally sized vectors. */
double correlation(const std::vector<double>& a,
                   const std::vector<double>& b);

} // namespace udp

#endif // UDP_SIM_RUNNER_H

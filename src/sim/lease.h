/**
 * @file
 * Lease-based distributed work-queue state machine (docs/ROBUSTNESS.md
 * §10). A sweep's jobs — identified by their deterministic FNV-1a hash
 * (sim/manifest.h) — are handed to workers as time-limited leases:
 *
 *   pending --claim--> leased --complete--> done
 *      ^                  |  \--fail-------> pending (backoff) | failed
 *      \---expiry/reclaim-/
 *
 * Policies implemented here and shared by both transports
 * (sim/workqueue.h):
 *   - lease expiry + reclaim: a worker that stops heartbeating loses its
 *     lease and the job is re-issued;
 *   - bounded retries with exponential backoff + deterministic jitter
 *     (seeded by the job hash, so the schedule is reproducible);
 *   - straggler re-dispatch: once no pending work remains, long-running
 *     leases are duplicated to idle workers — safe because jobs are
 *     deterministic — and the first completion wins;
 *   - idempotent completion: duplicate results (from stragglers or
 *     expired-then-finished workers) are recorded once and the rest
 *     discarded.
 *
 * LeaseTable is a pure, single-threaded state machine: time is injected
 * by the caller (testable without sleeping) and no I/O happens here. The
 * TCP coordinator drives it directly; the filesystem backend implements
 * the same transitions with atomic directory operations.
 */

#ifndef UDP_SIM_LEASE_H
#define UDP_SIM_LEASE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace udp {

/** One granted lease: the worker-side handle for a claimed job. */
struct JobLease
{
    /** sweepJobHash() of the job — the idempotency key. */
    std::uint64_t hash = 0;
    /** Job index within the shared, deterministically expanded batch. */
    std::size_t index = 0;
    /** Unique lease token; renew/complete/fail refer to this. */
    std::uint64_t token = 0;
    /** 1-based attempt number this execution represents. */
    unsigned attempt = 1;
    /** Granted time-to-live; the worker heartbeats well within it. */
    double ttlSec = 30.0;
};

/** Queue policy knobs shared by every transport. */
struct LeasePolicy
{
    /** Lease time-to-live; a worker silent for this long is presumed
     *  dead and its lease reclaimed. */
    double leaseTtlSec = 30.0;
    /** Total execution attempts per job — each one ending in a failed
     *  push or an expired lease — before the job is recorded as a final
     *  failure. */
    unsigned maxAttempts = 3;
    /** Retry backoff: delay before attempt k+1 is
     *  min(cap, base * 2^(k-1)) plus jitter. */
    double backoffBaseSec = 0.5;
    double backoffCapSec = 30.0;
    /** Deterministic jitter: uniform in [0, frac * delay), seeded by
     *  (job hash, attempt) so the schedule is reproducible. */
    double backoffJitterFrac = 0.25;
    /** Straggler re-dispatch: once nothing is pending, a lease older
     *  than this is eligible for a duplicate issue. */
    double stragglerAfterSec = 10.0;
    /** Extra concurrent leases allowed per job near the tail. */
    unsigned maxDuplicates = 1;
    /** Client retry hint when no work is currently claimable. */
    double noWorkRetrySec = 0.2;
};

/**
 * Aggregated per-worker health counters, maintained as a side effect of
 * claim/renew/push/tick and surfaced through the live status endpoint
 * (src/obs/status.h). Counters are cumulative for the table's lifetime;
 * activeLeases and lastSeenSec are computed at snapshot time.
 */
struct LeaseWorkerStats
{
    std::string worker;
    std::uint64_t claims = 0;      ///< leases granted (incl. stragglers)
    std::uint64_t retries = 0;     ///< grants that were attempt >= 2
    std::uint64_t stragglers = 0;  ///< duplicate speculative grants
    std::uint64_t renewals = 0;    ///< successful heartbeats
    std::uint64_t completions = 0; ///< ok results accepted first
    std::uint64_t failures = 0;    ///< failed results pushed
    std::uint64_t expirations = 0; ///< leases lost to TTL expiry
    std::uint64_t activeLeases = 0;
    double lastSeenSec = 0.0; ///< injected time of last contact
};

/** Outcome of a claim attempt. */
enum class ClaimOutcome
{
    Granted, ///< lease issued
    NoWork,  ///< nothing claimable right now (backoff window / all leased)
    Drained, ///< every job is done or finally failed
    Lost,    ///< transport only: coordinator unreachable
};

/**
 * Coordinator-side authoritative queue state. Not synchronized; the
 * owner serializes access (the TCP coordinator is single-threaded).
 */
class LeaseTable
{
  public:
    /** States a job can settle in. */
    enum class Push
    {
        RecordedFinal, ///< result accepted: job done, or failed for good
        Requeued,      ///< failure noted; job will be retried
        Duplicate,     ///< job already done — result discarded (idempotent)
        Unknown,       ///< token never existed
    };

    LeaseTable(std::vector<std::uint64_t> jobHashes, LeasePolicy policy);

    /** Marks @p index done before serving (checkpoint-manifest resume). */
    void markDone(std::size_t index);

    /**
     * Expires overdue leases (charging one attempt each) and either
     * requeues their jobs with backoff or — attempts exhausted with no
     * surviving duplicate lease — records a final "worker_lost" failure.
     * claim() runs this implicitly; coordinators also call it on their
     * poll tick so drain is detected without claim traffic.
     */
    void tick(double nowSec);

    /**
     * Tries to issue a lease: first a pending job whose backoff window
     * has passed, then — with no pending work left — a straggler
     * duplicate (see LeasePolicy). @p out is filled on Granted.
     */
    ClaimOutcome claim(double nowSec, const std::string& worker,
                       JobLease* out);

    /** Heartbeat: extends the lease to now + ttl. False if the token is
     *  unknown or the lease was already reclaimed. */
    bool renew(double nowSec, std::uint64_t token);

    /**
     * Delivers a result for @p token. ok=true: first completion wins,
     * later ones return Duplicate. ok=false: the job is requeued with
     * backoff, or finally failed with @p errorKind once its claim-time
     * attempts are exhausted (and no duplicate lease is still running). A token whose lease already expired is still
     * honored — the work is deterministic, so a late result is as good
     * as any.
     */
    Push push(double nowSec, std::uint64_t token, bool ok,
              const std::string& errorKind);

    /** True once every job is done or finally failed. */
    bool drained() const { return doneJobs + failedJobs == jobs.size(); }

    std::size_t totalJobs() const { return jobs.size(); }
    std::size_t doneCount() const { return doneJobs; }
    std::size_t failedCount() const { return failedJobs; }

    /** Final error kind of a failed job, or nullptr (done/in progress). */
    const std::string* finalErrorKind(std::size_t index) const;

    /** Execution attempts charged so far: one per granted claim
     *  (straggler duplicates ride the original attempt for free). */
    unsigned attemptsUsed(std::size_t index) const;

    /** Currently active leases on a job (>1 only for stragglers). */
    std::size_t activeLeases(std::size_t index) const;

    /** Lifecycle state of job @p index: 'P' pending, 'L' leased,
     *  'D' done, 'F' finally failed ('?' for a bad index). Matches the
     *  kJob* constants in obs/status.h. */
    char jobState(std::size_t index) const;

    /** Per-worker counters, sorted by worker name (obs status rows). */
    std::vector<LeaseWorkerStats> workerStats() const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Index of the job @p token was issued for (active or settled), or
     *  npos for a token that never existed. Lets the coordinator verify
     *  a pushed result's hash against the job the token actually leases
     *  before recording it. */
    std::size_t leaseIndex(std::uint64_t token) const;

    const LeasePolicy& policyRef() const { return policy; }

    /**
     * Backoff before attempt @p attempt (>= 2) of the job hashed
     * @p hash: min(cap, base * 2^(attempt-2)) plus deterministic jitter
     * in [0, jitterFrac * delay). Attempt 1 has no delay.
     */
    static double backoffDelaySec(const LeasePolicy& policy,
                                  unsigned attempt, std::uint64_t hash);

  private:
    struct Lease
    {
        std::uint64_t token = 0;
        std::size_t index = 0;
        std::string worker;
        unsigned attempt = 1;
        double grantedAt = 0.0;
        double expiry = 0.0;
        bool active = false; ///< false once expired/settled (token kept)
    };

    struct JobState
    {
        std::uint64_t hash = 0;
        bool done = false;
        bool failed = false;
        std::string errorKind;
        unsigned attemptsUsed = 0;
        double notBefore = 0.0; ///< backoff gate for the next claim
        std::vector<std::uint64_t> leases; ///< active lease tokens
    };

    Lease* findLease(std::uint64_t token);
    void dropLease(JobState& job, std::uint64_t token);
    void settleAfterLostAttempt(double nowSec, JobState& job,
                                const std::string& kind);
    JobLease grant(double nowSec, const std::string& worker,
                   std::size_t index, unsigned attempt);

    LeaseWorkerStats& workerRow(const std::string& worker, double nowSec);

    LeasePolicy policy;
    std::vector<JobState> jobs;
    std::unordered_map<std::uint64_t, Lease> leases; ///< token -> lease
    std::unordered_map<std::string, LeaseWorkerStats> workers_;
    std::uint64_t nextToken = 1;
    std::size_t doneJobs = 0;
    std::size_t failedJobs = 0;
};

} // namespace udp

#endif // UDP_SIM_LEASE_H

/**
 * @file
 * Pluggable transports for the distributed sweep work queue
 * (docs/ROBUSTNESS.md §10). Workers see one interface — claim / renew /
 * push — over two backends:
 *
 *   - FsWorkQueue: a shared-filesystem queue directory. Claims are
 *     atomic rename(2) of ticket files, completions are link(2)
 *     (first-completion-wins), lease heartbeats rewrite the lease file
 *     via tmp + rename, and everything durable is fsync'd. The queue is
 *     decentralized: any participant (worker or coordinator) reclaims
 *     expired leases, so workers keep draining the sweep even if the
 *     coordinator dies.
 *
 *   - TcpWorkQueue: a minimal length-prefixed RPC protocol (framing
 *     shared with sim/procexec.cc via sim/wire.h) against a
 *     single-threaded coordinator server holding the authoritative
 *     LeaseTable. Every RPC has a connect/read deadline budget; a dead
 *     coordinator yields ClaimOutcome::Lost / PushOutcome::Lost so the
 *     worker can flush its in-flight result locally.
 *
 * Endpoints are strings: "tcp:HOST:PORT" (or "tcp:PORT" for
 * 127.0.0.1) selects TCP, anything else is a queue directory path.
 */

#ifndef UDP_SIM_WORKQUEUE_H
#define UDP_SIM_WORKQUEUE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/lease.h"
#include "sim/manifest.h"

namespace udp {

/** Outcome of delivering a job result to the queue. */
enum class PushOutcome
{
    Recorded,  ///< accepted (completion recorded, or failure processed)
    Duplicate, ///< someone else completed the job first — discarded
    Lost,      ///< coordinator unreachable — flush locally
};

/**
 * Worker-side view of a sweep work queue. Implementations are
 * internally synchronized for the worker's heartbeat thread (renew may
 * race a concurrent claim/push).
 */
class WorkQueue
{
  public:
    virtual ~WorkQueue() = default;

    /** Establishes the connection / validates the queue directory. */
    virtual bool connect(std::string* err) = 0;

    /** The sweep spec JSON this queue serves ("" for bench pairing,
     *  where both sides construct the job list from their own argv). */
    virtual std::string specJson() = 0;

    /** Total jobs in the sweep (drain detection). */
    virtual std::size_t totalJobs() = 0;

    /** Tries to claim one job lease. */
    virtual ClaimOutcome claim(const std::string& worker, JobLease* out) = 0;

    /** Heartbeat on a held lease; false when the lease is gone (the job
     *  may have been reclaimed — completion is still safe to attempt). */
    virtual bool renew(const JobLease& lease) = 0;

    /**
     * Delivers the result of a leased job. @p entry carries the full
     * manifest record: ok entries hold the serialized Report (byte-exact
     * round trip), failed entries the error kind. The queue applies its
     * retry policy to failures; completions are idempotent.
     */
    virtual PushOutcome push(const JobLease& lease,
                             const ManifestEntry& entry) = 0;

    /** Retry hint after NoWork, seconds. */
    virtual double noWorkRetrySec() = 0;
};

/** Parsed endpoint. */
struct QueueEndpoint
{
    bool tcp = false;
    std::string host; ///< tcp only
    int port = 0;     ///< tcp only
    std::string dir;  ///< filesystem only
};

/** Parses "tcp:HOST:PORT" / "tcp:PORT" / directory path. */
QueueEndpoint parseQueueEndpoint(const std::string& endpoint);

/**
 * Opens a worker-side queue client for @p endpoint.
 * Returns nullptr with @p err set on failure.
 */
std::unique_ptr<WorkQueue> openWorkQueue(const std::string& endpoint,
                                         double rpcTimeoutSec,
                                         std::string* err);

/**
 * Fetches the live sweep status JSON (obs/status.h schema) from
 * @p endpoint: one OpStatus RPC for "tcp:..." endpoints, a read of
 * "<dir>/status.json" for queue directories. Used by tools/udp_top.
 * Returns false with @p err set when the coordinator is unreachable or
 * no status has been published yet.
 */
bool queryQueueStatus(const std::string& endpoint, double timeoutSec,
                      std::string* statusJson, std::string* err);

// --- filesystem backend ----------------------------------------------------

/**
 * The shared-directory queue. Layout under the queue root:
 *
 *   queue.json           total jobs + lease policy (written at seed time)
 *   spec.json            the sweep spec served to udp_worker ("" = none)
 *   todo/<hash>.<n>.json claimable tickets {hash,index,attempt,not_before}
 *   leased/<hash>.<token>.json  active leases {... worker, expiry}
 *   done/<hash>.json     final ManifestEntry line (ok or failed)
 *   tmp/                 staging for atomic rename/link
 *
 * All transitions are single atomic directory operations, so any number
 * of workers race safely: rename(2) from todo/ decides claims, link(2)
 * into done/ decides completions (EEXIST = duplicate), and rename into
 * tmp/ decides who reclaims an expired lease.
 */
/** One active lease as read off the queue directory (status snapshot). */
struct FsLeaseInfo
{
    std::uint64_t hash = 0;
    std::uint64_t index = 0;
    unsigned attempt = 1;
    std::string worker;
    std::uint64_t token = 0;
    std::uint64_t expiryMs = 0; ///< wall-clock expiry
};

class FsWorkQueue : public WorkQueue
{
  public:
    FsWorkQueue(std::string dir, double rpcTimeoutSec);

    /**
     * Coordinator: creates the directory layout and seeds one ticket
     * per job not already recorded in done/ (restarting on an existing
     * queue directory is the resume path — state lives in the
     * directory). @p jobs are ManifestEntry skeletons (hash, index,
     * workload, label — no report); the workload/label ride along on
     * tickets so a reclaim that exhausts attempts can record a complete
     * failure entry. Existing done entries whose hash matches are kept.
     */
    bool seed(const std::vector<ManifestEntry>& jobs,
              const std::string& specJson, const LeasePolicy& policy,
              std::string* err);

    /**
     * Requeues expired leases (or records their final failure once
     * attempts are exhausted) and sweeps stale tickets/leases of jobs
     * that already completed. Run by the coordinator every poll tick
     * and by workers whenever they find nothing to claim — reclaim
     * does not depend on the coordinator being alive.
     */
    void reclaimExpired();

    /** Coordinator resume: records @p entry directly into done/ (used
     *  to absorb a checkpoint manifest or worker shard files). First
     *  writer wins, like any completion. */
    bool injectDone(const ManifestEntry& entry);

    /** Completed-or-finally-failed count (scan of done/). */
    std::size_t doneCount();

    /** Loads every done/ entry, keyed by job hash. */
    std::vector<ManifestEntry> collectDone();

    /** Snapshot of every active lease file (live status surface). */
    std::vector<FsLeaseInfo> scanLeases();

    /** Claimable tickets currently in todo/ (live status surface). */
    std::size_t todoCount();

    /** Straggler duplicate tickets this process has issued. */
    std::uint64_t stragglerTicketsIssued() const;

    /** Expired leases this process has reclaimed. */
    std::uint64_t leasesReclaimed() const;

    /**
     * Publishes @p statusJson atomically as "<dir>/status.json" — the FS
     * transport's live status surface, refreshed by the coordinator each
     * poll tick and once more after drain so post-completion queries
     * reconcile with the final manifest.
     */
    bool writeStatusFile(const std::string& statusJson);

    // WorkQueue interface.
    bool connect(std::string* err) override;
    std::string specJson() override;
    std::size_t totalJobs() override;
    ClaimOutcome claim(const std::string& worker, JobLease* out) override;
    bool renew(const JobLease& lease) override;
    PushOutcome push(const JobLease& lease,
                     const ManifestEntry& entry) override;
    double noWorkRetrySec() override;

  private:
    struct Impl;
    std::shared_ptr<Impl> impl;
};

// --- TCP backend -----------------------------------------------------------

/** Worker-side TCP client. */
class TcpWorkQueue : public WorkQueue
{
  public:
    TcpWorkQueue(std::string host, int port, double rpcTimeoutSec);
    ~TcpWorkQueue() override;

    bool connect(std::string* err) override;
    std::string specJson() override;
    std::size_t totalJobs() override;
    ClaimOutcome claim(const std::string& worker, JobLease* out) override;
    bool renew(const JobLease& lease) override;
    PushOutcome push(const JobLease& lease,
                     const ManifestEntry& entry) override;
    double noWorkRetrySec() override;

  private:
    struct Impl;
    std::shared_ptr<Impl> impl;
};

/**
 * Coordinator-side TCP server: a single-threaded poll loop multiplexing
 * worker connections and dispatching framed RPCs into the handler
 * callbacks (which the coordinator backs with its LeaseTable +
 * manifest). No threads are spawned; the owner calls poll() from its
 * run loop.
 */
class TcpQueueServer
{
  public:
    struct Handlers
    {
        std::function<std::string()> spec;
        std::function<std::size_t()> total;
        std::function<ClaimOutcome(const std::string& worker, JobLease*)>
            claim;
        std::function<bool(std::uint64_t token)> renew;
        std::function<LeaseTable::Push(std::uint64_t token,
                                       const ManifestEntry&)>
            push;
        std::function<double()> retrySec;
        /** OpStatus: live sweep status JSON (obs/status.h). Absent
         *  handler answers an empty object. */
        std::function<std::string()> status;
    };

    TcpQueueServer();
    ~TcpQueueServer();
    TcpQueueServer(const TcpQueueServer&) = delete;
    TcpQueueServer& operator=(const TcpQueueServer&) = delete;

    /** Binds and listens; port 0 picks an ephemeral port (see port()). */
    bool listen(const std::string& host, int port, Handlers handlers,
                std::string* err);

    /** The bound port. */
    int port() const;

    /** Processes pending connections/RPCs for up to @p timeoutSec. */
    void poll(double timeoutSec);

    /** Closes the listener and every worker connection. */
    void close();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace udp

#endif // UDP_SIM_WORKQUEUE_H

#include "sim/faultinject.h"

#include <csignal>
#include <cstdio>
#include <vector>

#include "backend/backend.h"
#include "cache/memsys.h"
#include "frontend/ftq.h"
#include "sim/cpu.h"

namespace udp {

namespace {

/**
 * Picks a fill-buffer victim deterministically. Demand entries are
 * preferred: the fetch stage is certain to touch their lines again, so
 * perturbing one reliably propagates into an observable stall.
 */
MshrEntry*
pickFillVictim(MshrFile& mshr, std::uint64_t seed)
{
    unsigned demand = 0;
    unsigned total = 0;
    for (unsigned i = 0;; ++i) {
        MshrEntry* e = mshr.validEntryForFault(i);
        if (e == nullptr) {
            break;
        }
        ++total;
        if (!e->isPrefetch) {
            ++demand;
        }
    }
    if (total == 0) {
        return nullptr;
    }
    if (demand > 0) {
        unsigned nth = static_cast<unsigned>(seed % demand);
        for (unsigned i = 0, seen = 0;; ++i) {
            MshrEntry* e = mshr.validEntryForFault(i);
            if (e == nullptr) {
                return nullptr;
            }
            if (!e->isPrefetch && seen++ == nth) {
                return e;
            }
        }
    }
    return mshr.validEntryForFault(static_cast<unsigned>(seed % total));
}

} // namespace

bool
applyFault(Cpu& cpu, const FaultPlan& plan, Cycle now)
{
    if (plan.kind == FaultKind::None || now < plan.triggerCycle) {
        return false;
    }

    MshrFile& fill = cpu.mem_->fillBuffer();
    switch (plan.kind) {
      case FaultKind::None:
        return false;

      case FaultKind::DropFill: {
        MshrEntry* e = pickFillVictim(fill, plan.seed);
        if (e == nullptr) {
            return false; // nothing outstanding yet: retry next cycle
        }
        e->ready = kInvalidCycle;
        return true;
      }

      case FaultKind::DelayFill: {
        MshrEntry* e = pickFillVictim(fill, plan.seed);
        if (e == nullptr) {
            return false;
        }
        e->ready = now + plan.delay;
        return true;
      }

      case FaultKind::LeakMshr: {
        // A synthetic line no workload address maps to (program images
        // start at low addresses), with the never-drains sentinel.
        Addr line = lineAddr(0xFA17'0000'0000ull + plan.seed * kLineBytes);
        return fill.allocate(line, kInvalidCycle, /*is_prefetch=*/true,
                             now) != nullptr;
      }

      case FaultKind::DuplicateMshr: {
        MshrEntry* e = pickFillVictim(fill, plan.seed);
        if (e == nullptr) {
            return false;
        }
        // Second outstanding entry for the same line. Both entries get the
        // sentinel ready: if either drained before the next invariant
        // sweep, the survivor would be reported as a leak rather than as
        // the duplicate pair this fault exists to exercise.
        if (fill.allocate(e->line, kInvalidCycle, e->isPrefetch, now) ==
            nullptr) {
            return false;
        }
        e->ready = kInvalidCycle;
        return true;
      }

      case FaultKind::CorruptFtqEntry: {
        Ftq& ftq = *cpu.ftq_;
        if (ftq.empty()) {
            return false;
        }
        // Invalidate the start address rather than growing numInstrs: the
        // fetch and resteer paths index instrs[] by numInstrs, so an
        // oversized count would read out of bounds in the *host* — the
        // fault must corrupt modeled state, not the simulator.
        ftq.at(plan.seed % ftq.size()).startPc = kInvalidAddr;
        return true;
      }

      case FaultKind::FreezeRetire:
        cpu.backend_->setRetireFrozen(true);
        return true;

      case FaultKind::CrashSegv:
        // TEST-ONLY: a genuine host crash for the process-isolation
        // harness. The stderr line lets the parent's captured tail prove
        // the crash originated here.
        std::fprintf(stderr, "[fault] crash_segv: raising SIGSEGV\n");
        std::fflush(stderr);
        std::raise(SIGSEGV);
        return true;

      case FaultKind::OomAlloc: {
        // TEST-ONLY: unbounded, touched allocation. Under RLIMIT_AS this
        // throws std::bad_alloc (the vector frees what it hogged during
        // unwinding, so the isolated child can still report the error);
        // without a limit the kernel eventually SIGKILLs the process.
        std::fprintf(stderr, "[fault] oom_alloc: allocating unboundedly\n");
        std::fflush(stderr);
        std::vector<std::vector<char>> hog;
        for (;;) {
            hog.emplace_back(std::size_t{16} << 20, char{1});
        }
      }
    }
    return false;
}

bool
faultKindFromName(const std::string& name, FaultKind* out)
{
    for (FaultKind k :
         {FaultKind::None, FaultKind::DropFill, FaultKind::DelayFill,
          FaultKind::LeakMshr, FaultKind::DuplicateMshr,
          FaultKind::CorruptFtqEntry, FaultKind::FreezeRetire,
          FaultKind::CrashSegv, FaultKind::OomAlloc}) {
        if (name == faultKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

} // namespace udp

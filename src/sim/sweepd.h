/**
 * @file
 * The distributed sweep service (docs/ROBUSTNESS.md §10).
 *
 * Three pieces sit on top of the work-queue transports (sim/workqueue.h)
 * and the lease state machine (sim/lease.h):
 *
 *   - SweepSpec: a small JSON sweep description (workloads × config
 *     presets) that both the coordinator and every worker expand —
 *     deterministically — into the identical SweepJob vector. The queue
 *     itself only ever carries (hash, index) pairs; job *content* never
 *     crosses the wire, and a worker whose expansion disagrees with a
 *     lease's hash fails it as "spec_mismatch" instead of running the
 *     wrong simulation.
 *
 *   - runSweepWorker(): the worker loop — claim, heartbeat, execute via
 *     runJobChecked() (the exact per-job path of the in-process sweep
 *     engine), push. A coordinator that dies mid-push costs nothing: the
 *     result is flushed to a local shard manifest the coordinator
 *     absorbs on restart.
 *
 *   - SweepCoordinator: shards the batch across workers over either
 *     transport, applies the lease policy (expiry reclaim, bounded
 *     retries with backoff, straggler duplication), checkpoints every
 *     final result to the sweep manifest, and assembles JobResults in
 *     job order. Because completed entries carry reportToJsonLine()
 *     output and that round trip is byte-exact, the merged artifacts of
 *     a distributed run are byte-identical to a serial in-process run
 *     of the same jobs.
 */

#ifndef UDP_SIM_SWEEPD_H
#define UDP_SIM_SWEEPD_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/lease.h"
#include "sim/sweep.h"
#include "sim/workqueue.h"

namespace udp {

// --- sweep spec ------------------------------------------------------------

/** One config axis entry of a SweepSpec. */
struct SpecConfig
{
    /** Artifact label (Report::configName). */
    std::string label;
    /** Preset name: "fdip" (alias "baseline"), "perfect_icache",
     *  "no_prefetch", "udp8k", "udp_infinite", "big_icache40k",
     *  "eip8k". */
    std::string preset;
    /** Optional FTQ depth override (fdip preset only; 0 = preset
     *  default). */
    unsigned ftq = 0;
};

/**
 * A declarative sweep: the cross product of workloads × configs, each
 * run for the same instruction window. Serialized as one JSON object so
 * the coordinator can hand it to workers verbatim (spec.json / HELLO),
 * and expansion is deterministic on both sides.
 */
struct SweepSpec
{
    std::string name = "sweep";
    std::uint64_t warmupInstrs = 0;
    std::uint64_t measureInstrs = 0;
    /** Profile names; empty or containing "all" = every datacenter
     *  profile, in canonical order. */
    std::vector<std::string> workloads;
    std::vector<SpecConfig> configs;
};

/** Serializes @p spec as one JSON object (stable field order). */
std::string sweepSpecToJson(const SweepSpec& spec);

/** Parses sweepSpecToJson() output (or a hand-written spec file). */
bool sweepSpecFromJson(const std::string& json, SweepSpec* out,
                       std::string* err);

/**
 * Expands @p spec into its SweepJob vector: workload-major cross
 * product, labels from the spec configs. Fails (with @p err) on an
 * unknown workload or preset name. The expansion is deterministic — the
 * job at index i, and therefore sweepJobHash(job, i), is identical in
 * every process given the same spec text.
 */
bool expandSweepSpec(const SweepSpec& spec, std::vector<SweepJob>* out,
                     std::string* err);

// --- worker ----------------------------------------------------------------

/** Worker loop configuration. */
struct WorkerOptions
{
    /** Worker identity (lease bookkeeping + shard file name). */
    std::string name = "worker";
    /** Per-RPC / queue-operation deadline budget, seconds. */
    double rpcTimeoutSec = 5.0;
    /** Sleep between claim attempts when the queue reports NoWork;
     *  0 = use the queue's own retry hint. */
    double pollSec = 0.0;
    /** Directory for the local shard manifest (<name>.shard.jsonl)
     *  that absorbs results the coordinator could not receive.
     *  "" disables local flushing (such results are simply lost and the
     *  lease policy re-runs the job). */
    std::string shardDir;
    bool quiet = false;
    /** Stop after this many executed jobs (0 = until drained/lost);
     *  test hook for forcing work interleavings. */
    std::size_t maxJobs = 0;
    /** Sleep before executing each claimed job, milliseconds; test/CI
     *  hook to widen the window for killing a worker mid-job. */
    unsigned jobDelayMs = 0;
    /** Per-job execution knobs (isolation, limits, dumps) — identical
     *  semantics to the in-process sweep engine. */
    JobExecOptions exec;
};

/** What a worker did before exiting. */
struct WorkerSummary
{
    std::size_t executed = 0;   ///< jobs actually run here
    std::size_t completed = 0;  ///< results the queue recorded
    std::size_t failures = 0;   ///< failed executions pushed
    std::size_t duplicates = 0; ///< results discarded (someone else won)
    std::size_t flushedLocal = 0; ///< results flushed to the shard file
    std::size_t mismatches = 0; ///< leases failed as "spec_mismatch"
    bool queueLost = false;     ///< exited because the queue went away
};

/**
 * Runs the worker loop against @p queue until the sweep drains, the
 * queue is lost, or WorkerOptions::maxJobs is reached. @p jobs must be
 * the deterministic expansion shared with the coordinator; every lease
 * is verified against it by hash before running. A heartbeat thread
 * renews each held lease at ttl/3 while the job executes.
 */
WorkerSummary runSweepWorker(WorkQueue& queue,
                             const std::vector<SweepJob>& jobs,
                             const WorkerOptions& opts);

// --- coordinator -----------------------------------------------------------

/** Coordinator configuration. */
struct CoordinatorOptions
{
    /** Sweep name reported on the status surface (obs/status.h). */
    std::string name = "sweep";
    /** Lease/retry/straggler policy shared with the queue. */
    LeasePolicy policy;
    /**
     * Where workers find the queue: "tcp:HOST:PORT" serves the TCP
     * protocol from this process (PORT 0 binds an ephemeral port — see
     * SweepCoordinator::endpoint()); anything else is a shared queue
     * directory seeded and polled by this process.
     */
    std::string endpoint;
    /** Spec JSON served to udp_worker ("" for bench pairing, where both
     *  sides build the job list from identical argv). */
    std::string specJson;
    /** Checkpoint manifest path ("" = none). Every final result is
     *  recorded as it arrives; with resume, completed entries are
     *  absorbed before any work is issued. */
    std::string manifestPath;
    bool resume = false;
    /** Directory scanned for worker shard files (*.shard.jsonl) to
     *  absorb on start and after draining ("" = none). */
    std::string shardDir;
    /** Poll/tick interval, seconds. */
    double pollSec = 0.2;
    bool quiet = false;
    std::function<void(const SweepProgress&)> onProgress;
};

/**
 * The coordinator: owns the authoritative queue state for one batch and
 * drives it to drained. Use from one thread; requestStop() may be
 * called from a signal context.
 */
class SweepCoordinator
{
  public:
    SweepCoordinator(std::vector<SweepJob> jobs, CoordinatorOptions opts);
    ~SweepCoordinator();
    SweepCoordinator(const SweepCoordinator&) = delete;
    SweepCoordinator& operator=(const SweepCoordinator&) = delete;

    /** Binds the TCP server / seeds the queue directory. */
    bool start(std::string* err);

    /** The endpoint string workers should connect to (with the actual
     *  bound port substituted in TCP mode). Valid after start(). */
    std::string endpoint() const;

    /** Bound TCP port (0 in filesystem mode). Valid after start(). */
    int port() const;

    /**
     * Runs until every job is done or finally failed (or requestStop()),
     * then returns one JobResult per job in job order: resumed/remote
     * completions carry their byte-exact Reports, final failures carry
     * the recorded error kind. Jobs still outstanding after a stop
     * request are marked skipped.
     */
    std::vector<JobResult> run();

    /** Asks run() to wind down at the next tick (signal-safe). */
    void requestStop();

    std::size_t totalJobs() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace udp

#endif // UDP_SIM_SWEEPD_H

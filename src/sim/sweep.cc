#include "sim/sweep.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/pool.h"

namespace udp {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

unsigned
SweepRunner::defaultJobs()
{
    std::uint64_t n = 0;
    if (parsePositiveEnv("UDP_JOBS", &n)) {
        return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SweepRunner::SweepRunner(SweepOptions options)
    : opts(std::move(options)),
      threads(opts.numThreads == 0 ? defaultJobs() : opts.numThreads)
{
}

std::vector<Report>
SweepRunner::run(const std::vector<SweepJob>& jobs) const
{
    std::vector<Report> results(jobs.size());
    if (jobs.empty()) {
        return results;
    }

    // Progress + error state shared by the workers.
    std::mutex mtx;
    std::size_t done = 0;
    std::size_t firstErrorIndex = jobs.size();
    std::exception_ptr firstError;
    const Clock::time_point start = Clock::now();

    auto runOne = [&](std::size_t i) {
        try {
            results[i] = runSim(jobs[i].profile, jobs[i].config,
                                jobs[i].opts, jobs[i].label);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mtx);
            if (i < firstErrorIndex) {
                firstErrorIndex = i;
                firstError = std::current_exception();
            }
            return;
        }
        std::lock_guard<std::mutex> lock(mtx);
        ++done;
        SweepProgress p;
        p.done = done;
        p.total = jobs.size();
        p.elapsedSec = secondsSince(start);
        p.etaSec = p.done == 0
                       ? 0.0
                       : p.elapsedSec / static_cast<double>(p.done) *
                             static_cast<double>(p.total - p.done);
        if (opts.onProgress) {
            opts.onProgress(p);
        } else if (!opts.quiet) {
            std::fprintf(stderr,
                         "[sweep] %zu/%zu jobs done, %.1fs elapsed, "
                         "eta %.1fs\n",
                         p.done, p.total, p.elapsedSec, p.etaSec);
        }
    };

    if (threads <= 1) {
        // Serial reference path: same code, no pool.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            runOne(i);
        }
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&, i] { runOne(i); });
        }
        pool.wait();
    }

    if (firstError) {
        std::rethrow_exception(firstError);
    }
    return results;
}

std::vector<Report>
runSweep(const std::vector<SweepJob>& jobs)
{
    return SweepRunner{}.run(jobs);
}

} // namespace udp

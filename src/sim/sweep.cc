#include "sim/sweep.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "sim/pool.h"
#include "sim/simerror.h"

namespace udp {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Filesystem-safe version of a job label. */
std::string
sanitizeLabel(const std::string& label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("job") : out;
}

/**
 * Writes a failure's diagnostics under @p dir; returns the file path, or
 * "" when the write failed (the dump stays available in JobResult).
 */
std::string
writeFailureDump(const std::string& dir, const std::string& label,
                 std::size_t index, const JobError& err)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "[sweep] cannot create dump dir \"%s\": %s\n",
                     dir.c_str(), ec.message().c_str());
        return "";
    }
    std::string path = dir + "/" + sanitizeLabel(label) + "-" +
                       std::to_string(index) + ".dump.txt";
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    if (!out.is_open()) {
        std::fprintf(stderr, "[sweep] cannot open dump file \"%s\"\n",
                     path.c_str());
        return "";
    }
    out << err.message << '\n';
    if (!err.dump.empty()) {
        out << err.dump;
    }
    return path;
}

} // namespace

unsigned
SweepRunner::defaultJobs()
{
    std::uint64_t n = 0;
    if (parsePositiveEnv("UDP_JOBS", &n)) {
        return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SweepRunner::SweepRunner(SweepOptions options)
    : opts(std::move(options)),
      threads(opts.numThreads == 0 ? defaultJobs() : opts.numThreads)
{
}

std::vector<JobResult>
SweepRunner::runChecked(const std::vector<SweepJob>& jobs) const
{
    std::vector<JobResult> results(jobs.size());
    if (jobs.empty()) {
        return results;
    }

    // Progress state shared by the workers.
    std::mutex mtx;
    std::size_t done = 0;
    std::size_t failed = 0;
    const Clock::time_point start = Clock::now();
    const unsigned max_attempts = opts.maxAttempts == 0 ? 1 : opts.maxAttempts;

    auto runOne = [&](std::size_t i) {
        JobResult& jr = results[i];
        SweepJob job = jobs[i]; // per-worker copy: the budget is per batch
        if (opts.jobCycleBudget != 0 && job.config.watchdog.maxCycles == 0) {
            job.config.watchdog.maxCycles = opts.jobCycleBudget;
        }

        for (unsigned attempt = 1; attempt <= max_attempts && !jr.ok;
             ++attempt) {
            jr.attempts = attempt;
            try {
                jr.report =
                    runSim(job.profile, job.config, job.opts, job.label);
                jr.ok = true;
            } catch (const SimError& e) {
                jr.error = JobError{};
                jr.error.kind = e.kindName();
                jr.error.component = e.component();
                jr.error.message = e.what();
                jr.error.dump = e.dump();
                jr.error.cycle = e.cycle();
                jr.exception = std::current_exception();
            } catch (const std::exception& e) {
                jr.error = JobError{};
                jr.error.kind = "exception";
                jr.error.message = e.what();
                jr.exception = std::current_exception();
            } catch (...) {
                jr.error = JobError{};
                jr.error.kind = "exception";
                jr.error.message = "unknown exception";
                jr.exception = std::current_exception();
            }
        }

        if (!jr.ok && !opts.dumpDir.empty()) {
            jr.error.dumpPath =
                writeFailureDump(opts.dumpDir, job.label, i, jr.error);
        }

        // A failed job still counts as done: progress always reaches
        // total and the ETA is computed from every finished job.
        std::lock_guard<std::mutex> lock(mtx);
        ++done;
        if (!jr.ok) {
            ++failed;
            if (!opts.quiet) {
                std::fprintf(stderr,
                             "[sweep] job %zu \"%s\" failed after %u "
                             "attempt(s): %s\n",
                             i, job.label.c_str(), jr.attempts,
                             jr.error.message.c_str());
            }
        }
        SweepProgress p;
        p.done = done;
        p.total = jobs.size();
        p.failed = failed;
        p.elapsedSec = secondsSince(start);
        p.etaSec = p.done == 0
                       ? 0.0
                       : p.elapsedSec / static_cast<double>(p.done) *
                             static_cast<double>(p.total - p.done);
        if (opts.onProgress) {
            opts.onProgress(p);
        } else if (!opts.quiet) {
            std::fprintf(stderr,
                         "[sweep] %zu/%zu jobs done (%zu failed), %.1fs "
                         "elapsed, eta %.1fs\n",
                         p.done, p.total, p.failed, p.elapsedSec, p.etaSec);
        }
    };

    if (threads <= 1) {
        // Serial reference path: same code, no pool.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            runOne(i);
        }
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&, i] { runOne(i); });
        }
        pool.wait();
    }

    return results;
}

std::vector<Report>
SweepRunner::run(const std::vector<SweepJob>& jobs) const
{
    std::vector<JobResult> checked = runChecked(jobs);
    // All-or-nothing contract: surface the first failure by job index.
    for (const JobResult& jr : checked) {
        if (!jr.ok) {
            std::rethrow_exception(jr.exception);
        }
    }
    std::vector<Report> results;
    results.reserve(checked.size());
    for (JobResult& jr : checked) {
        results.push_back(std::move(jr.report));
    }
    return results;
}

std::vector<Report>
runSweep(const std::vector<SweepJob>& jobs)
{
    return SweepRunner{}.run(jobs);
}

std::vector<JobResult>
runSweepChecked(const std::vector<SweepJob>& jobs, SweepOptions options)
{
    return SweepRunner{std::move(options)}.runChecked(jobs);
}

} // namespace udp

#include "sim/sweep.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "sim/manifest.h"
#include "sim/pool.h"
#include "sim/procexec.h"
#include "sim/simerror.h"
#include "stats/sink.h"

namespace udp {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Filesystem-safe version of a job label. */
std::string
sanitizeLabel(const std::string& label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("job") : out;
}

/**
 * Writes a failure's diagnostics under @p dir; returns the file path, or
 * "" when the write failed (the dump stays available in JobResult).
 */
std::string
writeFailureDump(const std::string& dir, const std::string& label,
                 std::size_t index, const JobError& err)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        obs::Event(obs::LogLevel::Warn, "sweep", "dump_dir_error")
            .str("dir", dir)
            .str("error", ec.message())
            .emit();
        return "";
    }
    std::string path = dir + "/" + sanitizeLabel(label) + "-" +
                       std::to_string(index) + ".dump.txt";
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    if (!out.is_open()) {
        obs::Event(obs::LogLevel::Warn, "sweep", "dump_open_error")
            .str("path", path)
            .emit();
        return "";
    }
    out << err.message << '\n';
    if (!err.dump.empty()) {
        out << err.dump;
    }
    if (!err.stderrTail.empty()) {
        out << "--- child stderr tail ---\n" << err.stderrTail;
        if (err.stderrTail.back() != '\n') {
            out << '\n';
        }
    }
    return path;
}

// --- graceful shutdown ------------------------------------------------------

volatile std::sig_atomic_t g_stopSignal = 0;

extern "C" void
sweepStopHandler(int sig)
{
    g_stopSignal = sig;
}

/**
 * Scoped SIGINT/SIGTERM handler installation. The first signal only sets
 * the sticky stop flag (queued jobs are then skipped while in-flight jobs
 * drain); SA_RESETHAND restores the default disposition so a second
 * signal kills the process outright — the flushed manifest still permits
 * resumption.
 */
class SignalGuard
{
  public:
    explicit SignalGuard(bool enable) : active(enable)
    {
        if (!active) {
            return;
        }
        g_stopSignal = 0;
#ifdef _WIN32
        std::signal(SIGINT, sweepStopHandler);
        std::signal(SIGTERM, sweepStopHandler);
#else
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = sweepStopHandler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_RESETHAND;
        ::sigaction(SIGINT, &sa, &oldInt);
        ::sigaction(SIGTERM, &sa, &oldTerm);
#endif
    }

    ~SignalGuard()
    {
        if (!active) {
            return;
        }
#ifdef _WIN32
        std::signal(SIGINT, SIG_DFL);
        std::signal(SIGTERM, SIG_DFL);
#else
        ::sigaction(SIGINT, &oldInt, nullptr);
        ::sigaction(SIGTERM, &oldTerm, nullptr);
#endif
    }

    SignalGuard(const SignalGuard&) = delete;
    SignalGuard& operator=(const SignalGuard&) = delete;

  private:
    bool active;
#ifndef _WIN32
    struct sigaction oldInt {};
    struct sigaction oldTerm {};
#endif
};

} // namespace

JobResult
runJobChecked(const SweepJob& jobIn, std::size_t index,
              const JobExecOptions& opts)
{
    JobResult jr;
    SweepJob job = jobIn; // local copy: the budget edit is per execution
    if (opts.jobCycleBudget != 0 && job.config.watchdog.maxCycles == 0) {
        job.config.watchdog.maxCycles = opts.jobCycleBudget;
    }
    const bool isolate = opts.isolate && procIsolationSupported();
    const unsigned maxAttempts = opts.maxAttempts == 0 ? 1 : opts.maxAttempts;

    for (unsigned attempt = 1; attempt <= maxAttempts && !jr.ok; ++attempt) {
        jr.attempts = attempt;
        if (isolate) {
            ProcLimits limits;
            limits.memLimitBytes = opts.memLimitBytes;
            limits.cpuLimitSec = opts.cpuLimitSec;
            limits.wallLimitSec = opts.wallLimitSec;
            JobResult sub = runJobIsolated(job, limits);
            jr.ok = sub.ok;
            jr.report = std::move(sub.report);
            jr.error = std::move(sub.error);
            continue;
        }
        try {
            jr.report = runSim(job.profile, job.config, job.opts, job.label);
            jr.ok = true;
        } catch (const SimError& e) {
            jr.error = JobError{};
            jr.error.kind = e.kindName();
            jr.error.component = e.component();
            jr.error.message = e.what();
            jr.error.dump = e.dump();
            jr.error.cycle = e.cycle();
            jr.exception = std::current_exception();
        } catch (const std::exception& e) {
            jr.error = JobError{};
            jr.error.kind = "exception";
            jr.error.message = e.what();
            jr.exception = std::current_exception();
        } catch (...) {
            jr.error = JobError{};
            jr.error.kind = "exception";
            jr.error.message = "unknown exception";
            jr.exception = std::current_exception();
        }
    }

    if (!jr.ok && !opts.dumpDir.empty()) {
        jr.error.dumpPath =
            writeFailureDump(opts.dumpDir, job.label, index, jr.error);
    }
    return jr;
}

bool
sweepStopRequested()
{
    return g_stopSignal != 0;
}

int
sweepStopSignal()
{
    return static_cast<int>(g_stopSignal);
}

unsigned
SweepRunner::defaultJobs()
{
    std::uint64_t n = 0;
    if (parsePositiveEnv("UDP_JOBS", &n)) {
        return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SweepRunner::SweepRunner(SweepOptions options)
    : opts(std::move(options)),
      threads(opts.numThreads == 0 ? defaultJobs() : opts.numThreads)
{
}

std::vector<JobResult>
SweepRunner::runChecked(const std::vector<SweepJob>& jobs) const
{
    std::vector<JobResult> results(jobs.size());
    if (jobs.empty()) {
        return results;
    }

    const bool isolate = opts.isolate && procIsolationSupported();
    if (opts.isolate && !isolate && !opts.quiet) {
        obs::Event(obs::LogLevel::Warn, "sweep", "isolation_unsupported")
            .str("fallback", "in_process")
            .emit();
    }

    // Checkpoint manifest: hash every job up front; on resume, satisfy
    // already-completed jobs by replaying their recorded Reports.
    SweepManifest manifest;
    std::vector<std::uint64_t> hashes;
    std::size_t resumedCount = 0;
    if (!opts.manifestPath.empty()) {
        hashes.resize(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            hashes[i] = sweepJobHash(jobs[i], i);
        }
        if (manifest.open(opts.manifestPath, opts.resume) && opts.resume) {
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const ManifestEntry* e = manifest.findCompleted(hashes[i]);
                if (e == nullptr) {
                    continue;
                }
                if (e->workload != jobs[i].profile.name ||
                    e->label != jobs[i].label) {
                    // A spliced line can bind a valid hash to another
                    // record's fields; never replay it — re-run instead.
                    continue;
                }
                Report r;
                if (!reportFromJsonLine(e->reportJson, &r)) {
                    continue; // unreadable record: just re-run the job
                }
                results[i].report = std::move(r);
                results[i].ok = true;
                results[i].resumed = true;
                results[i].attempts = 0;
                ++resumedCount;
            }
            if (!opts.quiet && resumedCount != 0) {
                obs::Event(obs::LogLevel::Info, "sweep", "resumed")
                    .u64("resumed", resumedCount)
                    .u64("total", jobs.size())
                    .str("manifest", opts.manifestPath)
                    .emit();
            }
        }
    }

    // Isolation shares the parent's Program cache with every child via
    // copy-on-write: build each distinct workload once before forking.
    if (isolate) {
        std::unordered_set<std::string> warmed;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (results[i].resumed) {
                continue;
            }
            const Profile& p = jobs[i].profile;
            std::string key = p.name + "#" + std::to_string(p.seed) + "#" +
                              std::to_string(p.codeFootprintKB);
            if (warmed.insert(std::move(key)).second) {
                prewarmProgram(p);
            }
        }
    }

    SignalGuard guard(opts.handleSignals);

    // Progress state shared by the workers.
    std::mutex mtx;
    std::size_t done = resumedCount;
    std::size_t failed = 0;
    std::size_t skippedCount = 0;
    bool stopAnnounced = false;
    const Clock::time_point start = Clock::now();
    const unsigned max_attempts = opts.maxAttempts == 0 ? 1 : opts.maxAttempts;

    auto postProgress = [&](std::size_t jobIndex, const JobResult& jr) {
        // Caller holds mtx; the event log is additionally a single
        // writer emitting whole lines, so pool workers never interleave.
        if (!jr.ok && !jr.skipped && !opts.quiet) {
            obs::Event(obs::LogLevel::Warn, "sweep", "job_failed")
                .u64("job", jobIndex)
                .str("label", jobs[jobIndex].label)
                .u64("attempts", jr.attempts)
                .str("kind", jr.error.kind)
                .str("message", jr.error.message)
                .emit();
        }
        SweepProgress p;
        p.done = done;
        p.total = jobs.size();
        p.failed = failed;
        p.resumed = resumedCount;
        p.skipped = skippedCount;
        p.elapsedSec = secondsSince(start);
        p.etaSec = p.done == 0
                       ? 0.0
                       : p.elapsedSec / static_cast<double>(p.done) *
                             static_cast<double>(p.total - p.done);
        if (opts.onProgress) {
            opts.onProgress(p);
        } else if (!opts.quiet) {
            obs::Event ev(obs::LogLevel::Info, "sweep", "progress");
            ev.u64("done", p.done)
                .u64("total", p.total)
                .u64("failed", p.failed)
                .f64("elapsed_sec", p.elapsedSec)
                .f64("eta_sec", p.etaSec)
                .every(0.25);
            if (p.done == p.total) {
                ev.force(); // the 100% line always lands
            }
            ev.emit();
        }
    };

    auto runOne = [&](std::size_t i) {
        JobResult& jr = results[i];
        if (jr.resumed) {
            return;
        }

        // Graceful shutdown: a queued job observed after the stop signal
        // never starts. It gets neither a Report nor a failure row, and
        // is not recorded in the manifest, so --resume re-runs it.
        if (opts.handleSignals && sweepStopRequested()) {
            jr.skipped = true;
            jr.ok = false;
            jr.attempts = 0;
            jr.error = JobError{};
            jr.error.kind = "skipped";
            jr.error.message = "graceful shutdown requested before start";
            std::lock_guard<std::mutex> lock(mtx);
            if (!stopAnnounced && !opts.quiet) {
                obs::Event(obs::LogLevel::Warn, "sweep", "stop_signal")
                    .i64("signal", sweepStopSignal())
                    .str("action", "draining in-flight, skipping queued")
                    .emit();
            }
            stopAnnounced = true;
            ++done;
            ++skippedCount;
            postProgress(i, jr);
            return;
        }

        JobExecOptions eo;
        eo.maxAttempts = max_attempts;
        eo.jobCycleBudget = opts.jobCycleBudget;
        eo.dumpDir = opts.dumpDir;
        eo.isolate = isolate;
        eo.memLimitBytes = opts.memLimitBytes;
        eo.cpuLimitSec = opts.cpuLimitSec;
        eo.wallLimitSec = opts.wallLimitSec;
        jr = runJobChecked(jobs[i], i, eo);

        // A failed job still counts as done: progress always reaches
        // total and the ETA is computed from every finished job.
        std::lock_guard<std::mutex> lock(mtx);
        ++done;
        obs::counter("sweep.jobs_done").add(1);
        if (!jr.ok) {
            ++failed;
            obs::counter("sweep.jobs_failed").add(1);
        }
        if (manifest.isOpen()) {
            ManifestEntry e;
            e.hash = hashes[i];
            e.index = i;
            e.workload = jobs[i].profile.name;
            e.label = jobs[i].label;
            e.ok = jr.ok;
            if (jr.ok) {
                e.reportJson = reportToJsonLine(jr.report);
            } else {
                e.errorKind = jr.error.kind;
            }
            manifest.record(e);
        }
        postProgress(i, jr);
    };

    if (threads <= 1) {
        // Serial reference path: same code, no pool.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            runOne(i);
        }
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (results[i].resumed) {
                continue;
            }
            pool.submit([&, i] { runOne(i); });
        }
        pool.wait();
    }

    manifest.close();
    return results;
}

std::vector<Report>
SweepRunner::run(const std::vector<SweepJob>& jobs) const
{
    std::vector<JobResult> checked = runChecked(jobs);
    // All-or-nothing contract: surface the first failure by job index.
    for (const JobResult& jr : checked) {
        if (!jr.ok) {
            if (jr.exception) {
                std::rethrow_exception(jr.exception);
            }
            // Isolated/skipped failures have no in-process exception.
            throw std::runtime_error("[" + jr.error.kind + "] " +
                                     jr.error.message);
        }
    }
    std::vector<Report> results;
    results.reserve(checked.size());
    for (JobResult& jr : checked) {
        results.push_back(std::move(jr.report));
    }
    return results;
}

std::vector<Report>
runSweep(const std::vector<SweepJob>& jobs)
{
    return SweepRunner{}.run(jobs);
}

std::vector<JobResult>
runSweepChecked(const std::vector<SweepJob>& jobs, SweepOptions options)
{
    return SweepRunner{std::move(options)}.runChecked(jobs);
}

} // namespace udp

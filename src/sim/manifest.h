/**
 * @file
 * Sweep checkpoint manifest: a JSONL journal of finished sweep jobs,
 * keyed by a deterministic job hash, that makes an interrupted campaign
 * resumable (SweepOptions::manifestPath / resume, docs/ROBUSTNESS.md).
 *
 * Each line is appended line-atomically and flushed the moment its job
 * finishes, so even a SIGKILLed sweep leaves a manifest whose complete
 * lines all parse; a truncated final line is skipped on load. Completed
 * jobs store their full serialized Report, so a resumed sweep replays
 * them without re-running and the merged artifacts are byte-identical
 * to an uninterrupted run.
 */

#ifndef UDP_SIM_MANIFEST_H
#define UDP_SIM_MANIFEST_H

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/sweep.h"

namespace udp {

/** One manifest line: the durable record of one finished job. */
struct ManifestEntry
{
    /** sweepJobHash() of the job this entry records. */
    std::uint64_t hash = 0;
    /** Job index within its batch (part of the hash; informational). */
    std::size_t index = 0;
    std::string workload;
    std::string label;
    /** Completed successfully; failed entries are re-run on resume. */
    bool ok = false;
    /** error_kind of a failed entry ("" when ok). */
    std::string errorKind;
    /** reportToJsonLine() of a completed entry ("" when failed). */
    std::string reportJson;
    /**
     * Name of the worker that produced this result ("" when unknown —
     * local sweeps, resumed entries, reclaim-published failures). Set by
     * runSweepWorker so the status surface can attribute completions
     * per worker; serialized only when non-empty, so local manifests are
     * byte-identical to pre-field files.
     */
    std::string worker;
};

/**
 * Deterministic identity hash of one sweep job (FNV-1a 64). Covers the
 * batch index, label, profile identity (name/seed/footprint), run window
 * and the configuration knobs the presets and benches vary. It is a
 * fingerprint, not an exhaustive config serialization: two jobs that
 * differ only in a field outside the fingerprint must use distinct
 * labels (every in-tree bench does).
 */
std::uint64_t sweepJobHash(const SweepJob& job, std::size_t index);

/**
 * The journal. Not internally synchronized: the sweep runner serializes
 * record() calls under its own lock.
 */
class SweepManifest
{
  public:
    SweepManifest() = default;

    /**
     * Opens @p path for appending. When @p resume is set, existing
     * entries are loaded first (malformed or truncated lines are
     * skipped); otherwise the file is truncated. Returns success.
     */
    bool open(const std::string& path, bool resume);

    /** The loaded completed (ok) entry for @p hash, or nullptr. */
    const ManifestEntry* findCompleted(std::uint64_t hash) const;

    /** Appends @p e as one flushed line. */
    void record(const ManifestEntry& e);

    /** Completed (ok) entries loaded by open(). */
    std::size_t loadedCompleted() const { return completedLoaded; }

    bool isOpen() const { return out.is_open(); }

    void close();

  private:
    std::unordered_map<std::uint64_t, ManifestEntry> entries;
    std::size_t completedLoaded = 0;
    std::ofstream out;
};

/** Serializes @p e as one manifest JSON line (no trailing newline). */
std::string manifestEntryToJsonLine(const ManifestEntry& e);

/** Parses one manifest line; returns false on malformed input. */
bool manifestEntryFromJsonLine(const std::string& line, ManifestEntry* out);

/**
 * Deep consistency check for a parsed entry. Failed entries are always
 * consistent; an ok entry must hold a report that (a) round-trips
 * byte-exactly through reportFromJsonLine/reportToJsonLine and (b)
 * carries the entry's own workload and config label. This rejects the
 * one corruption a line-level parser cannot: two writers interleaving
 * on the same file can splice a line that *parses* — one record's
 * prefix (hash, workload) joined to another's report — and without this
 * check such a line would resurrect the wrong Report under a valid
 * hash on resume.
 */
bool manifestEntryIsConsistent(const ManifestEntry& e);

/**
 * Loads every consistent entry of a manifest/shard file, in file order
 * (later duplicates of a hash are NOT collapsed; callers merging shards
 * dedupe by hash). Malformed, truncated, and inconsistent lines are
 * skipped; a missing file yields an empty vector.
 */
std::vector<ManifestEntry> readManifestFile(const std::string& path);

} // namespace udp

#endif // UDP_SIM_MANIFEST_H

#include "sim/runner.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "sim/simerror.h"
#include "stats/tracefile.h"
#include "workload/builder.h"

namespace udp {

namespace {

/**
 * Program construction is expensive for MB-scale footprints: cache by
 * (profile name, seed, footprint).
 *
 * Concurrency: the map mutex only guards entry lookup/creation; the build
 * itself runs under a per-entry once_flag, so the first caller of a key
 * builds exactly once while builds for *different* keys proceed in
 * parallel. std::map nodes are address-stable, entries are never erased,
 * and the built Program is immutable, so the returned reference stays
 * valid and race-free for the process lifetime.
 */
struct ProgramCacheEntry
{
    std::once_flag once;
    std::unique_ptr<const Program> prog;
};

const Program&
cachedProgram(const Profile& p)
{
    static std::map<std::string, ProgramCacheEntry> cache;
    static std::mutex mtx;
    std::string key = p.name + "#" + std::to_string(p.seed) + "#" +
                      std::to_string(p.codeFootprintKB);
    ProgramCacheEntry* entry;
    {
        std::lock_guard<std::mutex> lock(mtx);
        entry = &cache[key];
    }
    std::call_once(entry->once, [&] {
        entry->prog =
            std::make_unique<const Program>(ProgramBuilder::build(p));
    });
    return *entry->prog;
}

} // namespace

Report
collectReport(const Cpu& cpu, std::string workload, std::string config_name)
{
    Report r;
    r.workload = std::move(workload);
    r.configName = std::move(config_name);

    const MemSysStats& m = cpu.mem().stats();
    const CacheStats& l1i = cpu.mem().l1iStats();
    const FdipStats& fdip = cpu.fdip().stats();
    const FetchStats& fs = cpu.fetch().stats();
    const FrontendStats& fe = cpu.frontend().stats();
    const BpuStats& bp = cpu.bpu().stats();

    r.instructions = cpu.retired();
    r.cycles = cpu.cyclesSinceClear();
    r.ipc = ratio(static_cast<double>(r.instructions),
                  static_cast<double>(r.cycles));

    double kilo = static_cast<double>(r.instructions) / 1000.0;
    r.icacheMpki = ratio(static_cast<double>(m.ifetchMisses), kilo);
    r.mshrHitsPki = ratio(static_cast<double>(m.ifetchMshrHits), kilo);
    // Timeliness over prefetched lines: a demand access either found the
    // prefetched line resident (timely) or merged with its in-flight fill
    // (untimely). Matches the paper's Table III / Fig. 4 value range.
    r.timeliness =
        ratio(static_cast<double>(m.ifetchTimelyPrefetchHits),
              static_cast<double>(m.ifetchTimelyPrefetchHits +
                                  m.pfMshrMergesHw));
    r.l1HitRatio =
        ratio(static_cast<double>(m.ifetchL1Hits),
              static_cast<double>(m.ifetchL1Hits + m.ifetchMshrHits));
    r.lostInstrPerKilo =
        ratio(static_cast<double>(fs.lostSlotsIcacheMiss), kilo);

    r.prefetchesEmitted = fdip.emitted;
    r.onPathRatio =
        ratio(static_cast<double>(fdip.emittedOnPath),
              static_cast<double>(fdip.emittedOnPath + fdip.emittedOffPath));

    double useful_true = static_cast<double>(l1i.prefetchHitsTrue +
                                             m.pfMshrMergesTrue);
    double useless_true = static_cast<double>(l1i.prefetchUnusedTrue);
    r.usefulness = ratio(useful_true, useful_true + useless_true);

    double useful_hw =
        static_cast<double>(l1i.prefetchHits + m.pfMshrMergesHw);
    double useless_hw = static_cast<double>(l1i.prefetchUnused);
    r.usefulnessHw = ratio(useful_hw, useful_hw + useless_hw);

    r.avgFtqOccupancy = cpu.ftq().stats().occupancy.mean();
    r.branchMpki = ratio(static_cast<double>(bp.condMispredicts), kilo);
    r.condMispredictRate =
        ratio(static_cast<double>(bp.condMispredicts),
              static_cast<double>(bp.condPredictions));
    r.resteers = fe.resteers;
    r.decodeCorrections = fs.decodeBtbCorrections;

    if (const UdpEngine* u = cpu.udp()) {
        r.udpDropped = u->stats().droppedFiltered;
        r.udpFilteredEmits = u->stats().emittedFiltered;
        r.udpLearned = u->usefulSetStats().learns;
    }

    if (Telemetry* t = cpu.telemetry()) {
        // Classify still-live prefetches as Pending so the taxonomy
        // identity (timely+late+unused+polluting+pending == issued) holds.
        t->finalize();
        r.telemetry = t->snapshot();
    }
    if (obs::CycleProfiler* p = cpu.profiler()) {
        r.profile = p->snapshot();
    }
    return r;
}

Report
runSim(const Profile& profile, const SimConfig& cfg, const RunOptions& opts,
       std::string config_name)
{
    const Program& prog = cachedProgram(profile);
    Cpu cpu(prog, cfg);
    try {
        cpu.runUntilRetired(opts.warmupInstrs);
        cpu.clearStats();
        cpu.runUntilRetired(opts.measureInstrs);
    } catch (const SimError& e) {
        // Post-mortem trace: annotate the telemetry snapshot with the
        // error (kind, component, Cpu::dumpState()) and drop a final
        // Chrome-trace slice before propagating the failure.
        Telemetry* t = cpu.telemetry();
        if (t && !cfg.telemetry.errorTracePath.empty()) {
            t->noteError(e.kindName(), e.component(), e.cycle(), e.dump());
            t->finalize();
            TraceJob tj;
            tj.name = profile.name + "/" + config_name;
            tj.snap = t->snapshot();
            if (obs::CycleProfiler* p = cpu.profiler()) {
                tj.prof = p->snapshot();
            }
            writeChromeTrace(cfg.telemetry.errorTracePath, {tj});
        }
        throw;
    }
    return collectReport(cpu, profile.name, std::move(config_name));
}

void
prewarmProgram(const Profile& profile)
{
    cachedProgram(profile);
}

bool
parsePositiveEnv(const char* name, std::uint64_t* out)
{
    const char* text = std::getenv(name);
    if (text == nullptr) {
        return false;
    }
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    bool overflow = errno == ERANGE;
    // Reject empty strings, trailing junk ("1e6", "100k"), negatives
    // (strtoull silently wraps them), zero and overflow.
    if (end == text || *end != '\0' || text[0] == '-' || v == 0 ||
        overflow) {
        std::fprintf(stderr,
                     "[udp] ignoring %s=\"%s\": expected a positive "
                     "integer; using the default\n",
                     name, text);
        return false;
    }
    *out = v;
    return true;
}

RunOptions
envRunOptions(RunOptions defaults)
{
    std::uint64_t v = 0;
    if (parsePositiveEnv("UDP_BENCH_WARMUP", &v)) {
        defaults.warmupInstrs = v;
    }
    if (parsePositiveEnv("UDP_BENCH_INSTR", &v)) {
        defaults.measureInstrs = v;
    }
    return defaults;
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (double x : xs) {
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
correlation(const std::vector<double>& a, const std::vector<double>& b)
{
    if (a.size() != b.size() || a.size() < 2) {
        return 0.0;
    }
    double n = static_cast<double>(a.size());
    double ma = 0.0;
    double mb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= n;
    mb /= n;
    double cov = 0.0;
    double va = 0.0;
    double vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    if (va == 0.0 || vb == 0.0) {
        return 0.0;
    }
    return cov / std::sqrt(va * vb);
}

StatSet
Report::toStatSet() const
{
    StatSet s;
    s.add("instructions", static_cast<double>(instructions));
    s.add("cycles", static_cast<double>(cycles));
    s.add("ipc", ipc);
    s.add("icache_mpki", icacheMpki);
    s.add("mshr_hits_pki", mshrHitsPki);
    s.add("timeliness", timeliness);
    s.add("l1_hit_ratio", l1HitRatio);
    s.add("lost_instr_per_kilo", lostInstrPerKilo);
    s.add("prefetches_emitted", static_cast<double>(prefetchesEmitted));
    s.add("onpath_ratio", onPathRatio);
    s.add("usefulness", usefulness);
    s.add("usefulness_hw", usefulnessHw);
    s.add("avg_ftq_occupancy", avgFtqOccupancy);
    s.add("branch_mpki", branchMpki);
    s.add("cond_mispredict_rate", condMispredictRate);
    s.add("resteers", static_cast<double>(resteers));
    s.add("decode_corrections", static_cast<double>(decodeCorrections));
    s.add("udp_dropped", static_cast<double>(udpDropped));
    s.add("udp_filtered_emits", static_cast<double>(udpFilteredEmits));
    s.add("udp_learned", static_cast<double>(udpLearned));
    return s;
}

} // namespace udp

/**
 * @file
 * Cross-component invariant checker (docs/ROBUSTNESS.md). A cheap subset
 * runs periodically in every build (SimConfig::watchdog.invariantPeriod);
 * configuring with -DUDP_CHECK=ON additionally runs the full (more
 * expensive) sweep every 64 cycles. Each component exposes its own
 * checkInvariants() hook; this layer only aggregates them and raises
 * structured errors.
 */

#ifndef UDP_SIM_INVARIANTS_H
#define UDP_SIM_INVARIANTS_H

#include <string>
#include <vector>

#include "sim/simerror.h"

namespace udp {

class Cpu;

/** One detected violation: which component, and what it reported. */
struct InvariantFailure
{
    std::string component; ///< "ftq", "mshr", "fetch", "rob", "uftq", "udp"
    std::string detail;    ///< component-produced message
};

/**
 * Runs every component invariant hook against @p cpu and returns all
 * violations (empty = healthy). @p full enables the expensive checks
 * (FTQ id monotonicity, ROB/LSQ credit recount) on top of the always-on
 * cheap subset.
 */
std::vector<InvariantFailure> collectInvariantFailures(const Cpu& cpu,
                                                       bool full);

/**
 * Throws InvariantViolation (with the CPU's diagnostic dump attached) for
 * the first violation found; returns normally when healthy.
 */
void checkInvariants(const Cpu& cpu, bool full);

} // namespace udp

#endif // UDP_SIM_INVARIANTS_H

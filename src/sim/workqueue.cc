#include "sim/workqueue.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "sim/wire.h"
#include "stats/sink.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace udp {

namespace {

using wire::appendStr;
using wire::appendU32;
using wire::appendU64;
using wire::readStr;
using wire::readU32;
using wire::readU64;

double
nowMonotonicSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Wall-clock ms since epoch: comparable across queue participants. */
std::uint64_t
nowWallMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
hex16To(const std::string& s, std::uint64_t* out)
{
    if (s.size() != 16) {
        return false;
    }
    std::uint64_t v = 0;
    for (char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9') {
            v |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return false;
        }
    }
    *out = v;
    return true;
}

/** Minimal order-free field extraction (same shape as sim/manifest.cc). */
bool
extractString(const std::string& line, const std::string& key,
              std::string* out)
{
    std::string needle = "\"" + key + "\":\"";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos) {
        return false;
    }
    pos += needle.size();
    std::string raw;
    while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size()) {
            raw += line[pos++];
        }
        raw += line[pos++];
    }
    if (pos >= line.size()) {
        return false;
    }
    return jsonUnescape(raw, out);
}

bool
extractU64(const std::string& line, const std::string& key,
           std::uint64_t* out)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos) {
        return false;
    }
    pos += needle.size();
    std::uint64_t v = 0;
    bool any = false;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(line[pos++] - '0');
        any = true;
    }
    if (!any) {
        return false;
    }
    *out = v;
    return true;
}

} // namespace

QueueEndpoint
parseQueueEndpoint(const std::string& endpoint)
{
    QueueEndpoint ep;
    if (endpoint.rfind("tcp:", 0) != 0) {
        ep.dir = endpoint;
        return ep;
    }
    ep.tcp = true;
    std::string rest = endpoint.substr(4);
    std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
        ep.host = "127.0.0.1";
        ep.port = std::atoi(rest.c_str());
    } else {
        ep.host = rest.substr(0, colon);
        if (ep.host.empty()) {
            ep.host = "127.0.0.1";
        }
        ep.port = std::atoi(rest.c_str() + colon + 1);
    }
    return ep;
}

#ifdef _WIN32

// Distributed sweeps need POSIX directory/socket primitives; on other
// platforms every operation reports the queue as unreachable.

struct FsWorkQueue::Impl
{
};
FsWorkQueue::FsWorkQueue(std::string, double) {}
bool
FsWorkQueue::seed(const std::vector<ManifestEntry>&, const std::string&,
                  const LeasePolicy&, std::string* err)
{
    *err = "distributed sweeps are not supported on this platform";
    return false;
}
void
FsWorkQueue::reclaimExpired()
{
}
bool
FsWorkQueue::injectDone(const ManifestEntry&)
{
    return false;
}
std::size_t
FsWorkQueue::doneCount()
{
    return 0;
}
std::vector<ManifestEntry>
FsWorkQueue::collectDone()
{
    return {};
}
std::vector<FsLeaseInfo>
FsWorkQueue::scanLeases()
{
    return {};
}
std::size_t
FsWorkQueue::todoCount()
{
    return 0;
}
std::uint64_t
FsWorkQueue::stragglerTicketsIssued() const
{
    return 0;
}
std::uint64_t
FsWorkQueue::leasesReclaimed() const
{
    return 0;
}
bool
FsWorkQueue::writeStatusFile(const std::string&)
{
    return false;
}
bool
FsWorkQueue::connect(std::string* err)
{
    *err = "distributed sweeps are not supported on this platform";
    return false;
}
std::string
FsWorkQueue::specJson()
{
    return "";
}
std::size_t
FsWorkQueue::totalJobs()
{
    return 0;
}
ClaimOutcome
FsWorkQueue::claim(const std::string&, JobLease*)
{
    return ClaimOutcome::Lost;
}
bool
FsWorkQueue::renew(const JobLease&)
{
    return false;
}
PushOutcome
FsWorkQueue::push(const JobLease&, const ManifestEntry&)
{
    return PushOutcome::Lost;
}
double
FsWorkQueue::noWorkRetrySec()
{
    return 0.2;
}

struct TcpWorkQueue::Impl
{
};
TcpWorkQueue::TcpWorkQueue(std::string, int, double) {}
TcpWorkQueue::~TcpWorkQueue() = default;
bool
TcpWorkQueue::connect(std::string* err)
{
    *err = "distributed sweeps are not supported on this platform";
    return false;
}
std::string
TcpWorkQueue::specJson()
{
    return "";
}
std::size_t
TcpWorkQueue::totalJobs()
{
    return 0;
}
ClaimOutcome
TcpWorkQueue::claim(const std::string&, JobLease*)
{
    return ClaimOutcome::Lost;
}
bool
TcpWorkQueue::renew(const JobLease&)
{
    return false;
}
PushOutcome
TcpWorkQueue::push(const JobLease&, const ManifestEntry&)
{
    return PushOutcome::Lost;
}
double
TcpWorkQueue::noWorkRetrySec()
{
    return 0.2;
}

struct TcpQueueServer::Impl
{
};
TcpQueueServer::TcpQueueServer() = default;
TcpQueueServer::~TcpQueueServer() = default;
bool
TcpQueueServer::listen(const std::string&, int, Handlers, std::string* err)
{
    *err = "distributed sweeps are not supported on this platform";
    return false;
}
int
TcpQueueServer::port() const
{
    return 0;
}
void
TcpQueueServer::poll(double)
{
}
void
TcpQueueServer::close()
{
}

bool
queryQueueStatus(const std::string&, double, std::string*, std::string* err)
{
    if (err != nullptr) {
        *err = "distributed sweeps are not supported on this platform";
    }
    return false;
}

#else // POSIX

namespace {

// --- filesystem primitives -------------------------------------------------

bool
ensureDir(const std::string& path)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) {
        return true;
    }
    return false;
}

void
fsyncDir(const std::string& path)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

bool
readWholeFile(const std::string& path, std::string* out)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return false;
    }
    out->clear();
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
        out->append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return n == 0;
}

/** Writes @p content to @p tmpPath (fsync'd), then renames over
 *  @p finalPath. The rename is atomic; readers never see a torn file. */
bool
writeFileAtomic(const std::string& tmpPath, const std::string& finalPath,
                const std::string& content)
{
    int fd = ::open(tmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0) {
        return false;
    }
    std::size_t off = 0;
    while (off < content.size()) {
        ssize_t w = ::write(fd, content.data() + off, content.size() - off);
        if (w < 0) {
            if (errno == EINTR) {
                continue;
            }
            ::close(fd);
            ::unlink(tmpPath.c_str());
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    ::fsync(fd);
    ::close(fd);
    if (::rename(tmpPath.c_str(), finalPath.c_str()) != 0) {
        ::unlink(tmpPath.c_str());
        return false;
    }
    return true;
}

/**
 * First-completion-wins publication: link(2) @p tmpPath to @p finalPath.
 * Exactly one publisher succeeds; the rest see EEXIST.
 */
enum class LinkResult
{
    Linked,
    Exists,
    Error
};

LinkResult
publishFirstWins(const std::string& tmpPath, const std::string& finalPath)
{
    if (::link(tmpPath.c_str(), finalPath.c_str()) == 0) {
        ::unlink(tmpPath.c_str());
        return LinkResult::Linked;
    }
    int e = errno;
    ::unlink(tmpPath.c_str());
    return e == EEXIST ? LinkResult::Exists : LinkResult::Error;
}

std::vector<std::string>
listDir(const std::string& path)
{
    std::vector<std::string> names;
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) {
        return names;
    }
    while (struct dirent* e = ::readdir(d)) {
        if (e->d_name[0] == '.') {
            continue;
        }
        names.emplace_back(e->d_name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

bool
fileExists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

// --- queue file formats ----------------------------------------------------

/** A claimable ticket / an active lease (supersets share one parser). */
struct TicketInfo
{
    std::uint64_t hash = 0;
    std::uint64_t index = 0;
    unsigned attempt = 1;
    std::uint64_t notBeforeMs = 0;
    std::string workload;
    std::string label;
    // lease-only fields
    std::string worker;
    std::uint64_t token = 0;
    std::uint64_t expiryMs = 0;
};

std::string
ticketJson(const TicketInfo& t)
{
    std::string out = "{\"hash\":\"" + hex16(t.hash) +
                      "\",\"index\":" + std::to_string(t.index) +
                      ",\"attempt\":" + std::to_string(t.attempt) +
                      ",\"not_before_ms\":" + std::to_string(t.notBeforeMs) +
                      ",\"workload\":\"" + jsonEscape(t.workload) +
                      "\",\"config\":\"" + jsonEscape(t.label) + "\"";
    if (t.token != 0) {
        out += ",\"worker\":\"" + jsonEscape(t.worker) + "\",\"token\":\"" +
               hex16(t.token) +
               "\",\"expiry_ms\":" + std::to_string(t.expiryMs);
    }
    out += '}';
    return out;
}

bool
parseTicket(const std::string& json, TicketInfo* out)
{
    TicketInfo t;
    std::string hashHex;
    if (!extractString(json, "hash", &hashHex) ||
        !hex16To(hashHex, &t.hash) ||
        !extractU64(json, "index", &t.index) ||
        !extractString(json, "workload", &t.workload) ||
        !extractString(json, "config", &t.label)) {
        return false;
    }
    std::uint64_t attempt = 1;
    extractU64(json, "attempt", &attempt);
    t.attempt = static_cast<unsigned>(attempt);
    extractU64(json, "not_before_ms", &t.notBeforeMs);
    std::string tokenHex;
    if (extractString(json, "token", &tokenHex)) {
        hex16To(tokenHex, &t.token);
        extractString(json, "worker", &t.worker);
        extractU64(json, "expiry_ms", &t.expiryMs);
    }
    *out = std::move(t);
    return true;
}

std::string
queueMetaJson(std::size_t total, const LeasePolicy& p)
{
    auto ms = [](double sec) {
        return std::to_string(
            static_cast<std::uint64_t>(sec * 1000.0 + 0.5));
    };
    return "{\"total\":" + std::to_string(total) +
           ",\"lease_ttl_ms\":" + ms(p.leaseTtlSec) +
           ",\"max_attempts\":" + std::to_string(p.maxAttempts) +
           ",\"backoff_base_ms\":" + ms(p.backoffBaseSec) +
           ",\"backoff_cap_ms\":" + ms(p.backoffCapSec) +
           ",\"backoff_jitter_millifrac\":" +
           std::to_string(static_cast<std::uint64_t>(
               p.backoffJitterFrac * 1000.0 + 0.5)) +
           ",\"straggler_after_ms\":" + ms(p.stragglerAfterSec) +
           ",\"max_duplicates\":" + std::to_string(p.maxDuplicates) +
           ",\"no_work_retry_ms\":" + ms(p.noWorkRetrySec) + "}";
}

bool
parseQueueMeta(const std::string& json, std::size_t* total, LeasePolicy* p)
{
    std::uint64_t v = 0;
    if (!extractU64(json, "total", &v)) {
        return false;
    }
    *total = v;
    auto sec = [&](const char* key, double* out) {
        std::uint64_t msv = 0;
        if (extractU64(json, key, &msv)) {
            *out = static_cast<double>(msv) / 1000.0;
        }
    };
    sec("lease_ttl_ms", &p->leaseTtlSec);
    if (extractU64(json, "max_attempts", &v)) {
        p->maxAttempts = static_cast<unsigned>(v);
    }
    sec("backoff_base_ms", &p->backoffBaseSec);
    sec("backoff_cap_ms", &p->backoffCapSec);
    if (extractU64(json, "backoff_jitter_millifrac", &v)) {
        p->backoffJitterFrac = static_cast<double>(v) / 1000.0;
    }
    sec("straggler_after_ms", &p->stragglerAfterSec);
    if (extractU64(json, "max_duplicates", &v)) {
        p->maxDuplicates = static_cast<unsigned>(v);
    }
    sec("no_work_retry_ms", &p->noWorkRetrySec);
    return true;
}

std::uint64_t
processUniqueToken()
{
    static std::atomic<std::uint64_t> counter{1};
    std::uint64_t c = counter.fetch_add(1);
    std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
    // Mixed so tokens are unique across hosts sharing a filesystem with
    // overwhelming probability (pid + wall time + in-process counter).
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::uint64_t v : {pid, nowWallMs(), c}) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x00000100000001B3ull;
        }
    }
    return h == 0 ? 1 : h;
}

} // namespace

// --- FsWorkQueue -----------------------------------------------------------

struct FsWorkQueue::Impl
{
    std::string root;
    std::string todoDir;
    std::string leasedDir;
    std::string doneDir;
    std::string tmpDir;
    double rpcTimeoutSec = 5.0;
    std::mutex mtx;

    LeasePolicy policy;
    std::size_t total = 0;
    std::string spec;
    bool metaLoaded = false;
    bool coordinator = false; ///< seeded here: straggler duty is ours

    // Health counters for the status surface (this process's share of
    // the decentralized queue work).
    std::atomic<std::uint64_t> stragglerDups{0};
    std::atomic<std::uint64_t> reclaims{0};

    std::string donePath(std::uint64_t hash) const
    {
        return doneDir + "/" + hex16(hash) + ".json";
    }

    std::string tmpPath(const char* what)
    {
        return tmpDir + "/" + what + "-" + hex16(processUniqueToken());
    }

    bool loadMeta()
    {
        if (metaLoaded) {
            return true;
        }
        std::string meta;
        if (!readWholeFile(root + "/queue.json", &meta) ||
            !parseQueueMeta(meta, &total, &policy)) {
            return false;
        }
        readWholeFile(root + "/spec.json", &spec); // optional
        metaLoaded = true;
        return true;
    }

    std::size_t doneCountLocked() { return listDir(doneDir).size(); }

    /** Creates the queue directory layout (idempotent). */
    bool ensureLayoutLocked(std::string* err)
    {
        for (const std::string& d :
             {root, todoDir, leasedDir, doneDir, tmpDir}) {
            if (!ensureDir(d)) {
                if (err != nullptr) {
                    *err = "cannot create queue directory " + d + ": " +
                           std::strerror(errno);
                }
                return false;
            }
        }
        return true;
    }

    /** Writes a final failure entry for a job whose attempts ran out. */
    void publishFinalFailure(const TicketInfo& t, const std::string& kind)
    {
        ManifestEntry e;
        e.hash = t.hash;
        e.index = t.index;
        e.workload = t.workload;
        e.label = t.label;
        e.ok = false;
        e.errorKind = kind;
        std::string tmp = tmpPath("fail");
        if (writeFileAtomic(tmp, tmp, manifestEntryToJsonLine(e) + "\n")) {
            publishFirstWins(tmp, donePath(t.hash));
            fsyncDir(doneDir);
        }
    }

    /** Requeues @p t for its next attempt with backoff. */
    void requeueTicket(TicketInfo t)
    {
        t.attempt += 1;
        t.notBeforeMs =
            nowWallMs() +
            static_cast<std::uint64_t>(
                LeaseTable::backoffDelaySec(policy, t.attempt, t.hash) *
                    1000.0 +
                0.5);
        t.worker.clear();
        t.token = 0;
        t.expiryMs = 0;
        std::string tmp = tmpPath("req");
        std::string ticketPath = todoDir + "/" + hex16(t.hash) + "." +
                                 hex16(processUniqueToken()) + ".json";
        writeFileAtomic(tmp, ticketPath, ticketJson(t));
        fsyncDir(todoDir);
    }

    void reclaimExpiredLocked()
    {
        std::uint64_t now = nowWallMs();
        for (const std::string& name : listDir(leasedDir)) {
            std::string path = leasedDir + "/" + name;
            std::string json;
            TicketInfo t;
            if (!readWholeFile(path, &json) || !parseTicket(json, &t)) {
                continue;
            }
            if (fileExists(donePath(t.hash))) {
                // The job finished (possibly via a duplicate): clean up.
                std::string tmp = tmpPath("gc");
                if (::rename(path.c_str(), tmp.c_str()) == 0) {
                    ::unlink(tmp.c_str());
                }
                continue;
            }
            if (t.expiryMs > now) {
                continue;
            }
            // Expired: whoever wins the rename owns the reclaim.
            std::string tmp = tmpPath("reclaim");
            if (::rename(path.c_str(), tmp.c_str()) != 0) {
                continue;
            }
            ::unlink(tmp.c_str());
            reclaims.fetch_add(1, std::memory_order_relaxed);
            if (t.attempt >= policy.maxAttempts) {
                publishFinalFailure(t, "worker_lost");
            } else {
                requeueTicket(t);
            }
        }
        // Stale tickets of completed jobs (straggler duplicates).
        for (const std::string& name : listDir(todoDir)) {
            std::string path = todoDir + "/" + name;
            std::string json;
            TicketInfo t;
            if (!readWholeFile(path, &json) || !parseTicket(json, &t)) {
                continue;
            }
            if (fileExists(donePath(t.hash))) {
                std::string tmp = tmpPath("gc");
                if (::rename(path.c_str(), tmp.c_str()) == 0) {
                    ::unlink(tmp.c_str());
                }
            }
        }
        if (coordinator) {
            redispatchStragglersLocked(now);
        }
    }

    /**
     * Near the tail — nothing left in todo/ — duplicate the oldest
     * sufficiently old lease so an idle worker can race the straggler.
     * Only the seeding coordinator runs this, bounding the duplicate
     * count per job to LeasePolicy::maxDuplicates.
     */
    void redispatchStragglersLocked(std::uint64_t now)
    {
        if (policy.maxDuplicates == 0 || !listDir(todoDir).empty()) {
            return;
        }
        // Count active leases per hash; find the oldest.
        struct PerJob
        {
            TicketInfo t;
            std::size_t count = 0;
            std::uint64_t oldestGrantMs = ~0ull;
        };
        std::unordered_map<std::uint64_t, PerJob> perJob;
        for (const std::string& name : listDir(leasedDir)) {
            std::string json;
            TicketInfo t;
            if (!readWholeFile(leasedDir + "/" + name, &json) ||
                !parseTicket(json, &t) || fileExists(donePath(t.hash))) {
                continue;
            }
            PerJob& pj = perJob[t.hash];
            pj.t = t;
            pj.count += 1;
            // Grant time is not stored; expiry - ttl approximates it.
            std::uint64_t ttlMs = static_cast<std::uint64_t>(
                policy.leaseTtlSec * 1000.0 + 0.5);
            std::uint64_t granted =
                t.expiryMs > ttlMs ? t.expiryMs - ttlMs : 0;
            pj.oldestGrantMs = std::min(pj.oldestGrantMs, granted);
        }
        std::uint64_t stragglerMs = static_cast<std::uint64_t>(
            policy.stragglerAfterSec * 1000.0 + 0.5);
        const PerJob* best = nullptr;
        for (const auto& [hash, pj] : perJob) {
            (void)hash;
            if (pj.count > policy.maxDuplicates ||
                now < pj.oldestGrantMs + stragglerMs) {
                continue;
            }
            if (best == nullptr ||
                pj.oldestGrantMs < best->oldestGrantMs) {
                best = &pj;
            }
        }
        if (best != nullptr) {
            TicketInfo dup = best->t;
            dup.notBeforeMs = now;
            dup.worker.clear();
            dup.token = 0;
            dup.expiryMs = 0;
            std::string tmp = tmpPath("dup");
            std::string ticketPath = todoDir + "/" + hex16(dup.hash) +
                                     "." + hex16(processUniqueToken()) +
                                     ".json";
            if (writeFileAtomic(tmp, ticketPath, ticketJson(dup))) {
                stragglerDups.fetch_add(1, std::memory_order_relaxed);
            }
            fsyncDir(todoDir);
        }
    }
};

FsWorkQueue::FsWorkQueue(std::string dir, double rpcTimeoutSec)
    : impl(std::make_shared<Impl>())
{
    impl->root = std::move(dir);
    impl->todoDir = impl->root + "/todo";
    impl->leasedDir = impl->root + "/leased";
    impl->doneDir = impl->root + "/done";
    impl->tmpDir = impl->root + "/tmp";
    impl->rpcTimeoutSec = rpcTimeoutSec;
}

bool
FsWorkQueue::seed(const std::vector<ManifestEntry>& jobs,
                  const std::string& specJson, const LeasePolicy& policy,
                  std::string* err)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    if (!impl->ensureLayoutLocked(err)) {
        return false;
    }
    if (!writeFileAtomic(impl->tmpDir + "/queue.json.tmp",
                         impl->root + "/queue.json",
                         queueMetaJson(jobs.size(), policy))) {
        *err = "cannot write queue.json";
        return false;
    }
    if (!specJson.empty() &&
        !writeFileAtomic(impl->tmpDir + "/spec.json.tmp",
                         impl->root + "/spec.json", specJson)) {
        *err = "cannot write spec.json";
        return false;
    }
    std::uint64_t now = nowWallMs();
    for (const ManifestEntry& job : jobs) {
        if (fileExists(impl->donePath(job.hash))) {
            continue; // resume: already recorded by a previous run
        }
        TicketInfo t;
        t.hash = job.hash;
        t.index = job.index;
        t.attempt = 1;
        t.notBeforeMs = now;
        t.workload = job.workload;
        t.label = job.label;
        // Skip if any ticket/lease for this hash already exists (resume
        // onto a live queue): the hash prefix makes this a name scan.
        bool live = false;
        std::string prefix = hex16(job.hash) + ".";
        for (const std::string& dir : {impl->todoDir, impl->leasedDir}) {
            for (const std::string& name : listDir(dir)) {
                if (name.rfind(prefix, 0) == 0) {
                    live = true;
                    break;
                }
            }
        }
        if (live) {
            continue;
        }
        std::string ticketPath = impl->todoDir + "/" + hex16(t.hash) +
                                 "." + hex16(processUniqueToken()) +
                                 ".json";
        if (!writeFileAtomic(impl->tmpPath("seed"), ticketPath,
                             ticketJson(t))) {
            *err = "cannot write ticket for job " + std::to_string(t.index);
            return false;
        }
    }
    fsyncDir(impl->todoDir);
    fsyncDir(impl->root);
    impl->metaLoaded = false;
    impl->coordinator = true;
    return impl->loadMeta();
}

void
FsWorkQueue::reclaimExpired()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    if (impl->loadMeta()) {
        impl->reclaimExpiredLocked();
    }
}

bool
FsWorkQueue::injectDone(const ManifestEntry& entry)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    // Resume injections happen before seed() lays out the directory.
    if (!impl->ensureLayoutLocked(nullptr)) {
        return false;
    }
    std::string tmp = impl->tmpPath("inject");
    if (!writeFileAtomic(tmp, tmp, manifestEntryToJsonLine(entry) + "\n")) {
        return false;
    }
    LinkResult lr = publishFirstWins(tmp, impl->donePath(entry.hash));
    fsyncDir(impl->doneDir);
    return lr != LinkResult::Error;
}

std::size_t
FsWorkQueue::doneCount()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    return impl->doneCountLocked();
}

std::vector<ManifestEntry>
FsWorkQueue::collectDone()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    std::vector<ManifestEntry> out;
    for (const std::string& name : listDir(impl->doneDir)) {
        std::string line;
        if (!readWholeFile(impl->doneDir + "/" + name, &line)) {
            continue;
        }
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r')) {
            line.pop_back();
        }
        ManifestEntry e;
        if (manifestEntryFromJsonLine(line, &e)) {
            out.push_back(std::move(e));
        }
    }
    return out;
}

std::vector<FsLeaseInfo>
FsWorkQueue::scanLeases()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    std::vector<FsLeaseInfo> out;
    for (const std::string& name : listDir(impl->leasedDir)) {
        std::string json;
        TicketInfo t;
        if (!readWholeFile(impl->leasedDir + "/" + name, &json) ||
            !parseTicket(json, &t) || t.token == 0) {
            continue;
        }
        FsLeaseInfo li;
        li.hash = t.hash;
        li.index = t.index;
        li.attempt = t.attempt;
        li.worker = t.worker;
        li.token = t.token;
        li.expiryMs = t.expiryMs;
        out.push_back(std::move(li));
    }
    return out;
}

std::size_t
FsWorkQueue::todoCount()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    return listDir(impl->todoDir).size();
}

std::uint64_t
FsWorkQueue::stragglerTicketsIssued() const
{
    return impl->stragglerDups.load(std::memory_order_relaxed);
}

std::uint64_t
FsWorkQueue::leasesReclaimed() const
{
    return impl->reclaims.load(std::memory_order_relaxed);
}

bool
FsWorkQueue::writeStatusFile(const std::string& statusJson)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    return writeFileAtomic(impl->tmpPath("status"),
                           impl->root + "/status.json", statusJson + "\n");
}

bool
FsWorkQueue::connect(std::string* err)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    if (!impl->loadMeta()) {
        *err = "not a queue directory (missing/unreadable queue.json): " +
               impl->root;
        return false;
    }
    return true;
}

std::string
FsWorkQueue::specJson()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    impl->loadMeta();
    return impl->spec;
}

std::size_t
FsWorkQueue::totalJobs()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    impl->loadMeta();
    return impl->total;
}

ClaimOutcome
FsWorkQueue::claim(const std::string& worker, JobLease* out)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    if (!impl->loadMeta()) {
        return ClaimOutcome::Lost;
    }
    // Two passes: scan, then reclaim-expired + rescan. Reclaim is what
    // keeps the sweep draining when another worker died mid-job.
    for (int pass = 0; pass < 2; ++pass) {
        std::uint64_t now = nowWallMs();
        for (const std::string& name : listDir(impl->todoDir)) {
            std::string path = impl->todoDir + "/" + name;
            std::string json;
            TicketInfo t;
            if (!readWholeFile(path, &json) || !parseTicket(json, &t)) {
                continue;
            }
            if (fileExists(impl->donePath(t.hash))) {
                std::string tmp = impl->tmpPath("gc");
                if (::rename(path.c_str(), tmp.c_str()) == 0) {
                    ::unlink(tmp.c_str());
                }
                continue;
            }
            if (t.notBeforeMs > now) {
                continue;
            }
            std::uint64_t token = processUniqueToken();
            std::string leasePath = impl->leasedDir + "/" +
                                    hex16(t.hash) + "." + hex16(token) +
                                    ".json";
            if (::rename(path.c_str(), leasePath.c_str()) != 0) {
                continue; // lost the race — next ticket
            }
            // We own the job: flesh the file out into a lease.
            t.worker = worker;
            t.token = token;
            t.expiryMs = now + static_cast<std::uint64_t>(
                                   impl->policy.leaseTtlSec * 1000.0 + 0.5);
            writeFileAtomic(impl->tmpPath("lease"), leasePath,
                            ticketJson(t));
            fsyncDir(impl->leasedDir);
            out->hash = t.hash;
            out->index = t.index;
            out->token = token;
            out->attempt = t.attempt;
            out->ttlSec = impl->policy.leaseTtlSec;
            return ClaimOutcome::Granted;
        }
        if (pass == 0) {
            impl->reclaimExpiredLocked();
        }
    }
    if (impl->doneCountLocked() >= impl->total) {
        return ClaimOutcome::Drained;
    }
    return ClaimOutcome::NoWork;
}

bool
FsWorkQueue::renew(const JobLease& lease)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    if (!impl->loadMeta()) {
        return false;
    }
    std::string path = impl->leasedDir + "/" + hex16(lease.hash) + "." +
                       hex16(lease.token) + ".json";
    std::string json;
    TicketInfo t;
    if (!readWholeFile(path, &json) || !parseTicket(json, &t)) {
        return false; // reclaimed from under us
    }
    t.expiryMs = nowWallMs() + static_cast<std::uint64_t>(
                                   impl->policy.leaseTtlSec * 1000.0 + 0.5);
    return writeFileAtomic(impl->tmpPath("renew"), path, ticketJson(t));
}

PushOutcome
FsWorkQueue::push(const JobLease& lease, const ManifestEntry& entry)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    if (!impl->loadMeta()) {
        return PushOutcome::Lost;
    }
    std::string leasePath = impl->leasedDir + "/" + hex16(lease.hash) +
                            "." + hex16(lease.token) + ".json";
    PushOutcome outcome = PushOutcome::Recorded;
    if (entry.ok) {
        std::string tmp = impl->tmpPath("done");
        if (!writeFileAtomic(tmp, tmp,
                             manifestEntryToJsonLine(entry) + "\n")) {
            return PushOutcome::Lost;
        }
        LinkResult lr = publishFirstWins(tmp, impl->donePath(lease.hash));
        fsyncDir(impl->doneDir);
        if (lr == LinkResult::Exists) {
            outcome = PushOutcome::Duplicate;
        } else if (lr == LinkResult::Error) {
            return PushOutcome::Lost;
        }
    } else if (fileExists(impl->donePath(lease.hash))) {
        outcome = PushOutcome::Duplicate;
    } else if (lease.attempt >= impl->policy.maxAttempts) {
        TicketInfo t;
        t.hash = lease.hash;
        t.index = lease.index;
        t.workload = entry.workload;
        t.label = entry.label;
        impl->publishFinalFailure(t, entry.errorKind);
    } else {
        TicketInfo t;
        t.hash = lease.hash;
        t.index = lease.index;
        t.attempt = lease.attempt; // requeueTicket bumps it
        t.workload = entry.workload;
        t.label = entry.label;
        impl->requeueTicket(t);
    }
    // Release the lease either way.
    std::string tmp = impl->tmpPath("rel");
    if (::rename(leasePath.c_str(), tmp.c_str()) == 0) {
        ::unlink(tmp.c_str());
    }
    return outcome;
}

double
FsWorkQueue::noWorkRetrySec()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    impl->loadMeta();
    return impl->policy.noWorkRetrySec;
}

// --- TCP protocol ----------------------------------------------------------

namespace {

constexpr std::uint32_t kQueueMagic = 0x55445132; // "UDQ2"

enum QueueOp : std::uint8_t
{
    OpHello = 1,
    OpClaim = 2,
    OpRenew = 3,
    OpPush = 4,
    OpStatus = 5, ///< live sweep status JSON (obs/status.h schema)
};

enum QueueStatus : std::uint8_t
{
    StGranted = 0, // also generic OK
    StNoWork = 1,
    StDrained = 2,
    StDuplicate = 3,
    StUnknown = 4,
    StRequeued = 5,
};

bool
sendAllDeadline(int fd, const std::string& data, double deadlineMono)
{
    std::size_t off = 0;
    while (off < data.size()) {
        double remain = deadlineMono - nowMonotonicSec();
        if (remain <= 0) {
            return false;
        }
        struct pollfd pfd = {fd, POLLOUT, 0};
        int rc = ::poll(&pfd, 1, static_cast<int>(remain * 1000.0) + 1);
        if (rc < 0 && errno == EINTR) {
            continue;
        }
        if (rc <= 0) {
            return false;
        }
        ssize_t w = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK) {
                continue;
            }
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

bool
recvExactDeadline(int fd, std::string* out, std::size_t n,
                  double deadlineMono)
{
    out->clear();
    while (out->size() < n) {
        double remain = deadlineMono - nowMonotonicSec();
        if (remain <= 0) {
            return false;
        }
        struct pollfd pfd = {fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, static_cast<int>(remain * 1000.0) + 1);
        if (rc < 0 && errno == EINTR) {
            continue;
        }
        if (rc <= 0) {
            return false;
        }
        char buf[4096];
        std::size_t want = std::min(sizeof(buf), n - out->size());
        ssize_t r = ::recv(fd, buf, want, 0);
        if (r == 0) {
            return false; // peer closed
        }
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK) {
                continue;
            }
            return false;
        }
        out->append(buf, static_cast<std::size_t>(r));
    }
    return true;
}

bool
sendFrame(int fd, const std::string& payload, double deadlineMono)
{
    std::string frame;
    appendU32(&frame, static_cast<std::uint32_t>(payload.size()));
    frame += payload;
    return sendAllDeadline(fd, frame, deadlineMono);
}

bool
recvFrame(int fd, std::string* payload, double deadlineMono)
{
    std::string hdr;
    if (!recvExactDeadline(fd, &hdr, 4, deadlineMono)) {
        return false;
    }
    std::size_t pos = 0;
    std::uint32_t len = 0;
    readU32(hdr, &pos, &len);
    if (len > (64u << 20)) {
        return false; // absurd frame: protocol error
    }
    return recvExactDeadline(fd, payload, len, deadlineMono);
}

int
connectWithTimeout(const std::string& host, int port, double timeoutSec,
                   std::string* err)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    std::string portStr = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), portStr.c_str(), &hints, &res);
    if (rc != 0 || res == nullptr) {
        if (err) {
            *err = "cannot resolve " + host + ": " + gai_strerror(rc);
        }
        return -1;
    }
    int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    if (fd < 0) {
        ::freeaddrinfo(res);
        if (err) {
            *err = std::string("socket(): ") + std::strerror(errno);
        }
        return -1;
    }
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
    if (rc != 0 && errno != EINPROGRESS) {
        if (err) {
            *err = std::string("connect(): ") + std::strerror(errno);
        }
        ::close(fd);
        return -1;
    }
    if (rc != 0) {
        struct pollfd pfd = {fd, POLLOUT, 0};
        rc = ::poll(&pfd, 1, static_cast<int>(timeoutSec * 1000.0) + 1);
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (rc <= 0 ||
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
            soerr != 0) {
            if (err) {
                *err = "connect to " + host + ":" + portStr +
                       (rc <= 0 ? " timed out"
                                : std::string(" failed: ") +
                                      std::strerror(soerr));
            }
            ::close(fd);
            return -1;
        }
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd; // left non-blocking; deadline I/O handles the rest
}

} // namespace

// --- TcpWorkQueue (client) -------------------------------------------------

struct TcpWorkQueue::Impl
{
    std::string host;
    int port = 0;
    double rpcTimeoutSec = 5.0;
    std::mutex mtx;
    int fd = -1;
    std::string spec;
    std::size_t total = 0;
    double retrySec = 0.2;
    bool helloDone = false;

    void disconnect()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
        helloDone = false;
    }

    bool helloLocked(std::string* err)
    {
        std::string req;
        appendU32(&req, kQueueMagic);
        req.push_back(static_cast<char>(OpHello));
        appendStr(&req, "worker");
        double deadline = nowMonotonicSec() + rpcTimeoutSec;
        std::string resp;
        if (!sendFrame(fd, req, deadline) ||
            !recvFrame(fd, &resp, deadline)) {
            if (err) {
                *err = "HELLO RPC failed (coordinator unreachable?)";
            }
            return false;
        }
        std::size_t pos = 0;
        std::uint32_t magic = 0;
        std::uint64_t total64 = 0;
        std::uint32_t retryMs = 200;
        if (!readU32(resp, &pos, &magic) || magic != kQueueMagic ||
            pos >= resp.size() || resp[pos++] != StGranted ||
            !readStr(resp, &pos, &spec) ||
            !readU64(resp, &pos, &total64) ||
            !readU32(resp, &pos, &retryMs)) {
            if (err) {
                *err = "malformed HELLO response";
            }
            return false;
        }
        total = total64;
        retrySec = static_cast<double>(retryMs) / 1000.0;
        helloDone = true;
        return true;
    }

    /** Connects (if needed) and runs one request/response exchange.
     *  One reconnect attempt on failure; false = coordinator lost. */
    bool rpcLocked(const std::string& req, std::string* resp)
    {
        for (int tries = 0; tries < 2; ++tries) {
            if (fd < 0) {
                std::string err;
                fd = connectWithTimeout(host, port, rpcTimeoutSec, &err);
                if (fd < 0) {
                    continue;
                }
                if (!helloLocked(nullptr)) {
                    disconnect();
                    continue;
                }
            }
            double deadline = nowMonotonicSec() + rpcTimeoutSec;
            if (sendFrame(fd, req, deadline) &&
                recvFrame(fd, resp, deadline)) {
                return true;
            }
            disconnect();
        }
        return false;
    }
};

TcpWorkQueue::TcpWorkQueue(std::string host, int port, double rpcTimeoutSec)
    : impl(std::make_shared<Impl>())
{
    impl->host = std::move(host);
    impl->port = port;
    impl->rpcTimeoutSec = rpcTimeoutSec;
}

TcpWorkQueue::~TcpWorkQueue()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    impl->disconnect();
}

bool
TcpWorkQueue::connect(std::string* err)
{
    wire::installSigpipeIgnore();
    std::lock_guard<std::mutex> lock(impl->mtx);
    if (impl->fd >= 0) {
        return true;
    }
    impl->fd =
        connectWithTimeout(impl->host, impl->port, impl->rpcTimeoutSec, err);
    if (impl->fd < 0) {
        return false;
    }
    if (!impl->helloLocked(err)) {
        impl->disconnect();
        return false;
    }
    return true;
}

std::string
TcpWorkQueue::specJson()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    return impl->spec;
}

std::size_t
TcpWorkQueue::totalJobs()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    return impl->total;
}

ClaimOutcome
TcpWorkQueue::claim(const std::string& worker, JobLease* out)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    std::string req;
    appendU32(&req, kQueueMagic);
    req.push_back(static_cast<char>(OpClaim));
    appendStr(&req, worker);
    std::string resp;
    if (!impl->rpcLocked(req, &resp)) {
        return ClaimOutcome::Lost;
    }
    std::size_t pos = 0;
    std::uint32_t magic = 0;
    if (!readU32(resp, &pos, &magic) || magic != kQueueMagic ||
        pos >= resp.size()) {
        return ClaimOutcome::Lost;
    }
    std::uint8_t status = static_cast<std::uint8_t>(resp[pos++]);
    if (status == StDrained) {
        return ClaimOutcome::Drained;
    }
    if (status == StNoWork) {
        std::uint32_t retryMs = 200;
        if (readU32(resp, &pos, &retryMs)) {
            impl->retrySec = static_cast<double>(retryMs) / 1000.0;
        }
        return ClaimOutcome::NoWork;
    }
    if (status != StGranted) {
        return ClaimOutcome::Lost;
    }
    std::uint64_t hash = 0;
    std::uint64_t index = 0;
    std::uint64_t token = 0;
    std::uint32_t attempt = 1;
    std::uint32_t ttlMs = 30'000;
    if (!readU64(resp, &pos, &hash) || !readU64(resp, &pos, &index) ||
        !readU64(resp, &pos, &token) || !readU32(resp, &pos, &attempt) ||
        !readU32(resp, &pos, &ttlMs)) {
        return ClaimOutcome::Lost;
    }
    out->hash = hash;
    out->index = index;
    out->token = token;
    out->attempt = attempt;
    out->ttlSec = static_cast<double>(ttlMs) / 1000.0;
    return ClaimOutcome::Granted;
}

bool
TcpWorkQueue::renew(const JobLease& lease)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    std::string req;
    appendU32(&req, kQueueMagic);
    req.push_back(static_cast<char>(OpRenew));
    appendU64(&req, lease.token);
    std::string resp;
    if (!impl->rpcLocked(req, &resp)) {
        return false;
    }
    std::size_t pos = 0;
    std::uint32_t magic = 0;
    return readU32(resp, &pos, &magic) && magic == kQueueMagic &&
           pos < resp.size() && resp[pos] == StGranted;
}

PushOutcome
TcpWorkQueue::push(const JobLease& lease, const ManifestEntry& entry)
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    std::string req;
    appendU32(&req, kQueueMagic);
    req.push_back(static_cast<char>(OpPush));
    appendU64(&req, lease.token);
    appendStr(&req, manifestEntryToJsonLine(entry));
    std::string resp;
    if (!impl->rpcLocked(req, &resp)) {
        return PushOutcome::Lost;
    }
    std::size_t pos = 0;
    std::uint32_t magic = 0;
    if (!readU32(resp, &pos, &magic) || magic != kQueueMagic ||
        pos >= resp.size()) {
        return PushOutcome::Lost;
    }
    std::uint8_t status = static_cast<std::uint8_t>(resp[pos]);
    if (status == StDuplicate) {
        return PushOutcome::Duplicate;
    }
    if (status == StGranted || status == StRequeued ||
        status == StUnknown) {
        return PushOutcome::Recorded;
    }
    return PushOutcome::Lost;
}

double
TcpWorkQueue::noWorkRetrySec()
{
    std::lock_guard<std::mutex> lock(impl->mtx);
    return impl->retrySec;
}

// --- TcpQueueServer --------------------------------------------------------

struct TcpQueueServer::Impl
{
    int listenFd = -1;
    int boundPort = 0;
    Handlers handlers;

    struct Conn
    {
        int fd = -1;
        std::string inBuf;
        std::string outBuf;
    };
    std::vector<Conn> conns;

    void closeAll()
    {
        for (Conn& c : conns) {
            if (c.fd >= 0) {
                ::close(c.fd);
            }
        }
        conns.clear();
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
    }

    std::string handleRequest(const std::string& req)
    {
        std::string resp;
        appendU32(&resp, kQueueMagic);
        std::size_t pos = 0;
        std::uint32_t magic = 0;
        if (!readU32(req, &pos, &magic) || magic != kQueueMagic ||
            pos >= req.size()) {
            resp.push_back(static_cast<char>(StUnknown));
            return resp;
        }
        std::uint8_t op = static_cast<std::uint8_t>(req[pos++]);
        switch (op) {
        case OpHello: {
            std::string worker;
            readStr(req, &pos, &worker);
            resp.push_back(static_cast<char>(StGranted));
            appendStr(&resp, handlers.spec ? handlers.spec() : "");
            appendU64(&resp, handlers.total ? handlers.total() : 0);
            appendU32(&resp,
                      static_cast<std::uint32_t>(
                          (handlers.retrySec ? handlers.retrySec() : 0.2) *
                              1000.0 +
                          0.5));
            return resp;
        }
        case OpClaim: {
            std::string worker;
            readStr(req, &pos, &worker);
            JobLease lease;
            ClaimOutcome co = handlers.claim
                                  ? handlers.claim(worker, &lease)
                                  : ClaimOutcome::Drained;
            if (co == ClaimOutcome::Granted) {
                resp.push_back(static_cast<char>(StGranted));
                appendU64(&resp, lease.hash);
                appendU64(&resp, lease.index);
                appendU64(&resp, lease.token);
                appendU32(&resp, lease.attempt);
                appendU32(&resp, static_cast<std::uint32_t>(
                                     lease.ttlSec * 1000.0 + 0.5));
            } else if (co == ClaimOutcome::NoWork) {
                resp.push_back(static_cast<char>(StNoWork));
                appendU32(
                    &resp,
                    static_cast<std::uint32_t>(
                        (handlers.retrySec ? handlers.retrySec() : 0.2) *
                            1000.0 +
                        0.5));
            } else {
                resp.push_back(static_cast<char>(StDrained));
            }
            return resp;
        }
        case OpRenew: {
            std::uint64_t token = 0;
            bool ok = readU64(req, &pos, &token) && handlers.renew &&
                      handlers.renew(token);
            resp.push_back(static_cast<char>(ok ? StGranted : StUnknown));
            return resp;
        }
        case OpPush: {
            std::uint64_t token = 0;
            std::string entryJson;
            ManifestEntry entry;
            if (!readU64(req, &pos, &token) ||
                !readStr(req, &pos, &entryJson) ||
                !manifestEntryFromJsonLine(entryJson, &entry) ||
                !handlers.push) {
                resp.push_back(static_cast<char>(StUnknown));
                return resp;
            }
            LeaseTable::Push pr = handlers.push(token, entry);
            switch (pr) {
            case LeaseTable::Push::RecordedFinal:
                resp.push_back(static_cast<char>(StGranted));
                break;
            case LeaseTable::Push::Requeued:
                resp.push_back(static_cast<char>(StRequeued));
                break;
            case LeaseTable::Push::Duplicate:
                resp.push_back(static_cast<char>(StDuplicate));
                break;
            default:
                resp.push_back(static_cast<char>(StUnknown));
                break;
            }
            return resp;
        }
        case OpStatus: {
            resp.push_back(static_cast<char>(StGranted));
            appendStr(&resp,
                      handlers.status ? handlers.status() : "{}");
            return resp;
        }
        default:
            resp.push_back(static_cast<char>(StUnknown));
            return resp;
        }
    }

    /** Consumes complete frames from @p c.inBuf, queueing responses. */
    void drainFrames(Conn& c)
    {
        for (;;) {
            if (c.inBuf.size() < 4) {
                return;
            }
            std::size_t pos = 0;
            std::uint32_t len = 0;
            readU32(c.inBuf, &pos, &len);
            if (len > (64u << 20)) {
                ::close(c.fd);
                c.fd = -1;
                return;
            }
            if (c.inBuf.size() < 4 + len) {
                return;
            }
            std::string req = c.inBuf.substr(4, len);
            c.inBuf.erase(0, 4 + len);
            std::string resp = handleRequest(req);
            appendU32(&c.outBuf, static_cast<std::uint32_t>(resp.size()));
            c.outBuf += resp;
        }
    }
};

TcpQueueServer::TcpQueueServer() : impl(std::make_unique<Impl>()) {}

TcpQueueServer::~TcpQueueServer()
{
    impl->closeAll();
}

bool
TcpQueueServer::listen(const std::string& host, int port, Handlers handlers,
                       std::string* err)
{
    wire::installSigpipeIgnore();
    impl->handlers = std::move(handlers);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (host.empty() || host == "0.0.0.0") {
        addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        *err = "listen address must be a numeric IPv4 address: " + host;
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        *err = "bind(" + host + ":" + std::to_string(port) +
               "): " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (::listen(fd, 64) != 0) {
        *err = std::string("listen(): ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
    impl->boundPort = ntohs(addr.sin_port);
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    impl->listenFd = fd;
    return true;
}

int
TcpQueueServer::port() const
{
    return impl->boundPort;
}

void
TcpQueueServer::poll(double timeoutSec)
{
    if (impl->listenFd < 0) {
        return;
    }
    // Compact closed connections.
    impl->conns.erase(std::remove_if(impl->conns.begin(),
                                     impl->conns.end(),
                                     [](const Impl::Conn& c) {
                                         return c.fd < 0;
                                     }),
                      impl->conns.end());

    std::vector<struct pollfd> pfds;
    pfds.push_back({impl->listenFd, POLLIN, 0});
    for (const Impl::Conn& c : impl->conns) {
        short ev = POLLIN;
        if (!c.outBuf.empty()) {
            ev |= POLLOUT;
        }
        pfds.push_back({c.fd, ev, 0});
    }
    int rc = ::poll(pfds.data(), pfds.size(),
                    static_cast<int>(timeoutSec * 1000.0));
    if (rc <= 0) {
        return;
    }
    if (pfds[0].revents & POLLIN) {
        for (;;) {
            int cfd = ::accept(impl->listenFd, nullptr, nullptr);
            if (cfd < 0) {
                break;
            }
            int flags = ::fcntl(cfd, F_GETFL, 0);
            ::fcntl(cfd, F_SETFL, flags | O_NONBLOCK);
            int one = 1;
            ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            Impl::Conn c;
            c.fd = cfd;
            impl->conns.push_back(std::move(c));
        }
    }
    for (std::size_t i = 1; i < pfds.size(); ++i) {
        Impl::Conn& c = impl->conns[i - 1];
        if (c.fd < 0 || pfds[i].revents == 0) {
            continue;
        }
        if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
            char buf[8192];
            for (;;) {
                ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
                if (n > 0) {
                    c.inBuf.append(buf, static_cast<std::size_t>(n));
                    continue;
                }
                if (n < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK)) {
                    break;
                }
                if (n < 0 && errno == EINTR) {
                    continue;
                }
                ::close(c.fd); // peer gone (worker death is normal)
                c.fd = -1;
                break;
            }
            if (c.fd >= 0) {
                impl->drainFrames(c);
            }
        }
        if (c.fd >= 0 && !c.outBuf.empty()) {
            ssize_t w = ::send(c.fd, c.outBuf.data(), c.outBuf.size(),
                               MSG_NOSIGNAL);
            if (w > 0) {
                c.outBuf.erase(0, static_cast<std::size_t>(w));
            } else if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR) {
                ::close(c.fd);
                c.fd = -1;
            }
        }
    }
}

void
TcpQueueServer::close()
{
    impl->closeAll();
}

bool
queryQueueStatus(const std::string& endpoint, double timeoutSec,
                 std::string* statusJson, std::string* err)
{
    QueueEndpoint ep = parseQueueEndpoint(endpoint);
    if (!ep.tcp) {
        std::string raw;
        if (!readWholeFile(ep.dir + "/status.json", &raw)) {
            if (err != nullptr) {
                *err = "no status published yet at " + ep.dir +
                       "/status.json";
            }
            return false;
        }
        while (!raw.empty() &&
               (raw.back() == '\n' || raw.back() == '\r')) {
            raw.pop_back();
        }
        *statusJson = std::move(raw);
        return true;
    }
    wire::installSigpipeIgnore();
    int fd = connectWithTimeout(ep.host, ep.port, timeoutSec, err);
    if (fd < 0) {
        return false;
    }
    std::string req;
    appendU32(&req, kQueueMagic);
    req.push_back(static_cast<char>(OpStatus));
    double deadline = nowMonotonicSec() + timeoutSec;
    std::string resp;
    bool ok = sendFrame(fd, req, deadline) &&
              recvFrame(fd, &resp, deadline);
    ::close(fd);
    if (!ok) {
        if (err != nullptr) {
            *err = "STATUS RPC failed (coordinator unreachable?)";
        }
        return false;
    }
    std::size_t pos = 0;
    std::uint32_t magic = 0;
    if (!readU32(resp, &pos, &magic) || magic != kQueueMagic ||
        pos >= resp.size() ||
        static_cast<std::uint8_t>(resp[pos++]) != StGranted ||
        !readStr(resp, &pos, statusJson)) {
        if (err != nullptr) {
            *err = "malformed STATUS response";
        }
        return false;
    }
    return true;
}

#endif // POSIX

std::unique_ptr<WorkQueue>
openWorkQueue(const std::string& endpoint, double rpcTimeoutSec,
              std::string* err)
{
    QueueEndpoint ep = parseQueueEndpoint(endpoint);
    std::unique_ptr<WorkQueue> q;
    if (ep.tcp) {
        if (ep.port <= 0 || ep.port > 65535) {
            *err = "bad TCP endpoint \"" + endpoint + "\" (want tcp:HOST:PORT)";
            return nullptr;
        }
        q = std::make_unique<TcpWorkQueue>(ep.host, ep.port, rpcTimeoutSec);
    } else {
        q = std::make_unique<FsWorkQueue>(ep.dir, rpcTimeoutSec);
    }
    if (!q->connect(err)) {
        return nullptr;
    }
    return q;
}

} // namespace udp

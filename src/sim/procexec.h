/**
 * @file
 * Process-isolated sweep-job execution (docs/ROBUSTNESS.md, "Isolated
 * execution"): fork a child per job, apply POSIX rlimits, run the
 * simulation there, and stream the Report back over a pipe. A child that
 * segfaults, aborts, exhausts its memory/CPU budget, or overruns the
 * parent's wall-clock deadline is contained: the parent converts the
 * outcome into the structured JobError path (signal name, rusage, stderr
 * tail) and every other job still produces its Report.
 *
 * Clean-run determinism: a successful isolated job returns a Report
 * byte-identical to the same job run in-process — the pipe payload is the
 * exact round-trip JSON serialization of stats/sink.h.
 */

#ifndef UDP_SIM_PROCEXEC_H
#define UDP_SIM_PROCEXEC_H

#include <cstddef>
#include <cstdint>

#include "sim/sweep.h"

namespace udp {

/** Resource limits applied to one isolated child. */
struct ProcLimits
{
    /** RLIMIT_AS cap in bytes; 0 = unlimited. Not applied under
     *  ASan/TSan builds (sanitizers reserve terabytes of shadow VA). */
    std::uint64_t memLimitBytes = 0;
    /** RLIMIT_CPU soft cap in seconds (SIGXCPU → error kind
     *  "cpu_limit"); 0 = unlimited. The hard cap is soft+5s (SIGKILL). */
    std::uint64_t cpuLimitSec = 0;
    /** Parent-enforced wall-clock deadline in seconds; on expiry the
     *  child is SIGKILLed and the job reports kind "timeout". 0 = none. */
    double wallLimitSec = 0.0;
    /** Bytes of the child's stderr retained (most recent first-in). */
    std::size_t stderrTailBytes = 4096;
};

/**
 * Runs @p job to completion in a forked child under @p limits and
 * returns its JobResult. Never throws for child-side failures; the
 * returned result's `error` classifies them:
 *
 * | error.kind  | Cause                                                  |
 * |-------------|--------------------------------------------------------|
 * | (SimError kinds) / "exception" | child ran, simulation failed; fields relayed verbatim |
 * | "mem_limit" | allocation failed under the RLIMIT_AS cap (bad_alloc)  |
 * | "crash"     | child died on a signal (SIGSEGV, SIGABRT, SIGBUS, ...) |
 * | "oom_kill"  | child was SIGKILLed by the kernel (cgroup/global OOM)  |
 * | "cpu_limit" | RLIMIT_CPU expired (SIGXCPU)                           |
 * | "timeout"   | wall-clock deadline expired (parent SIGKILL)           |
 * | "exit"      | child exited nonzero without a result payload          |
 * | "protocol"  | child exited zero but the payload was malformed        |
 *
 * Every failure also carries the terminating signal name (when any),
 * the child's rusage (peak RSS, user/system CPU), and the captured
 * stderr tail. JobResult::attempts is left 0 for the caller to fill.
 *
 * The caller should prewarmProgram(job.profile) first so the child
 * inherits the built Program via copy-on-write instead of rebuilding it.
 */
JobResult runJobIsolated(const SweepJob& job, const ProcLimits& limits);

/** True when this platform supports fork-based isolation. */
bool procIsolationSupported();

/** True when this binary was built under ASan/TSan — RLIMIT_AS is then
 *  skipped and memory-cap tests should be skipped too. */
bool procUnderSanitizer();

} // namespace udp

#endif // UDP_SIM_PROCEXEC_H

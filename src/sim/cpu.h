/**
 * @file
 * The top-level simulated CPU: owns all components, wires the UDP/UFTQ
 * hooks, advances the cycle loop and applies resteers.
 */

#ifndef UDP_SIM_CPU_H
#define UDP_SIM_CPU_H

#include <memory>

#include "sim/simconfig.h"
#include "workload/program.h"
#include "workload/true_stream.h"

namespace udp {

/** Cycle-level model of the whole system. */
class Cpu
{
  public:
    Cpu(const Program& prog, const SimConfig& cfg);

    /** Advances one cycle. */
    void cycle();

    /** Runs until @p retire_target instructions have retired. */
    void runUntilRetired(std::uint64_t retire_target);

    /** Clears all statistics (start of the measurement window). */
    void clearStats();

    Cycle now() const { return now_; }
    /** Cycles elapsed since the last clearStats() (measurement window). */
    Cycle cyclesSinceClear() const { return now_ - statsStartCycle_; }
    std::uint64_t retired() const { return backend_->retired(); }

    const MemSystem& mem() const { return *mem_; }
    const Bpu& bpu() const { return *bpu_; }
    const Ftq& ftq() const { return *ftq_; }
    const FdipEngine& fdip() const { return *fdip_; }
    const FetchStage& fetch() const { return *fetch_; }
    const DecoupledFrontend& frontend() const { return *fe_; }
    const Backend& backend() const { return *backend_; }
    const UdpEngine* udp() const { return udp_.get(); }
    const UftqController* uftq() const { return uftq_.get(); }
    const Eip* eip() const { return eip_.get(); }

    const SimConfig& config() const { return cfg; }

  private:
    void applyResteer(const ResteerRequest& req);

    SimConfig cfg;
    const Program& program;

    std::unique_ptr<TrueStream> stream_;
    std::unique_ptr<Bpu> bpu_;
    std::unique_ptr<MemSystem> mem_;
    std::unique_ptr<Ftq> ftq_;
    BranchRecordMap records_;
    std::unique_ptr<DecoupledFrontend> fe_;
    std::unique_ptr<FetchStage> fetch_;
    std::unique_ptr<FdipEngine> fdip_;
    std::unique_ptr<Backend> backend_;
    std::unique_ptr<UdpEngine> udp_;
    std::unique_ptr<UftqController> uftq_;
    std::unique_ptr<Eip> eip_;

    Cycle now_ = 0;
    Cycle statsStartCycle_ = 0;
    std::uint64_t lastPfUnused = 0; ///< for UDP clear-policy feedback
};

} // namespace udp

#endif // UDP_SIM_CPU_H

/**
 * @file
 * The top-level simulated CPU: owns all components, wires the UDP/UFTQ
 * hooks, advances the cycle loop and applies resteers.
 */

#ifndef UDP_SIM_CPU_H
#define UDP_SIM_CPU_H

#include <memory>
#include <string>

#include "sim/simconfig.h"
#include "workload/program.h"
#include "workload/true_stream.h"

namespace udp {

/** Cycle-level model of the whole system. */
class Cpu
{
  public:
    Cpu(const Program& prog, const SimConfig& cfg);

    /**
     * Advances one cycle. Raises SimHang when the forward-progress
     * watchdog trips (retirement stalled for watchdog.retireStallCycles,
     * or now() exceeded watchdog.maxCycles) and InvariantViolation when a
     * periodic invariant sweep finds corrupted modeled state.
     */
    void cycle();

    /** Runs until @p retire_target instructions have retired. */
    void runUntilRetired(std::uint64_t retire_target);

    /**
     * Multi-component diagnostic snapshot: cycle/retire progress, last
     * resteer, FTQ, decode queue, ROB/LSQ and fill-buffer occupancy with
     * oldest-entry ages. Attached to every SimError.
     */
    std::string dumpState() const;

    /** Clears all statistics (start of the measurement window). */
    void clearStats();

    Cycle now() const { return now_; }
    /** Cycles elapsed since the last clearStats() (measurement window). */
    Cycle cyclesSinceClear() const { return now_ - statsStartCycle_; }
    std::uint64_t retired() const { return backend_->retired(); }

    const MemSystem& mem() const { return *mem_; }
    const Bpu& bpu() const { return *bpu_; }
    const Ftq& ftq() const { return *ftq_; }
    const FdipEngine& fdip() const { return *fdip_; }
    const FetchStage& fetch() const { return *fetch_; }
    const DecoupledFrontend& frontend() const { return *fe_; }
    const Backend& backend() const { return *backend_; }
    const UdpEngine* udp() const { return udp_.get(); }
    const UftqController* uftq() const { return uftq_.get(); }
    const Eip* eip() const { return eip_.get(); }
    /** Telemetry collector (null unless SimConfig::telemetry.enabled). */
    Telemetry* telemetry() const { return telemetry_.get(); }
    /** Cycle-loop self-profiler (null unless SimConfig::profile.enabled). */
    obs::CycleProfiler* profiler() const { return profiler_.get(); }

    const SimConfig& config() const { return cfg; }

  private:
    /** Fault injection perturbs component state through Cpu's internals. */
    friend bool applyFault(Cpu& cpu, const FaultPlan& plan, Cycle now);

    void applyResteer(const ResteerRequest& req);

    /** Current cumulative counters for interval-delta accounting. */
    Telemetry::IntervalCounters telemetryCounters() const;

    SimConfig cfg;
    const Program& program;

    std::unique_ptr<TrueStream> stream_;
    std::unique_ptr<Bpu> bpu_;
    std::unique_ptr<MemSystem> mem_;
    std::unique_ptr<Ftq> ftq_;
    BranchRecordMap records_;
    std::unique_ptr<DecoupledFrontend> fe_;
    std::unique_ptr<FetchStage> fetch_;
    std::unique_ptr<FdipEngine> fdip_;
    std::unique_ptr<Backend> backend_;
    std::unique_ptr<UdpEngine> udp_;
    std::unique_ptr<UftqController> uftq_;
    std::unique_ptr<Eip> eip_;
    std::unique_ptr<Telemetry> telemetry_;
    std::unique_ptr<obs::CycleProfiler> profiler_;

    Cycle now_ = 0;
    Cycle statsStartCycle_ = 0;
    std::uint64_t lastPfUnused = 0; ///< for UDP clear-policy feedback

    // Watchdog / diagnostic tracking.
    Cycle lastRetireCycle_ = 0;          ///< cycle retired() last advanced
    std::uint64_t lastRetiredSeen_ = 0;  ///< retired() at that cycle
    Cycle lastResteerCycle_ = kInvalidCycle;
    Addr lastResteerPc_ = kInvalidAddr;
    bool faultApplied_ = false;
};

} // namespace udp

#endif // UDP_SIM_CPU_H

/**
 * @file
 * The parallel experiment engine: run a batch of independent simulations
 * (one Report each) on a worker pool, with deterministic result ordering.
 *
 * Every sweep point is an isolated (Profile, SimConfig, RunOptions) triple;
 * simulations share only the immutable Program cache inside runSim(), so a
 * sweep of N jobs on any thread count produces bit-identical Reports to the
 * same jobs run serially (see docs/MODEL.md, "Determinism & concurrency").
 */

#ifndef UDP_SIM_SWEEP_H
#define UDP_SIM_SWEEP_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include <exception>

#include "sim/runner.h"
#include "sim/simconfig.h"
#include "workload/profile.h"

namespace udp {

/** One sweep point: a workload under a configuration. */
struct SweepJob
{
    Profile profile;
    SimConfig config;
    RunOptions opts;
    /** Becomes Report::configName; also the label in sink artifacts. */
    std::string label;
};

/** Structured description of one failed job (docs/ROBUSTNESS.md). */
struct JobError
{
    /** SimError kind name ("retire_stall", "cycle_budget", "invariant"),
     *  "exception" for anything else that escaped runSim(), or one of
     *  the process-isolation kinds ("crash", "timeout", "cpu_limit",
     *  "oom_kill", "mem_limit", "exit", "protocol" — sim/procexec.h). */
    std::string kind;
    /** Failing component for SimErrors ("backend", "mshr", ...), else "". */
    std::string component;
    /** what() of the final attempt's exception. */
    std::string message;
    /** Multi-component diagnostic dump (SimError only, possibly ""). */
    std::string dump;
    /** File the dump was written to (SweepOptions::dumpDir), or "". */
    std::string dumpPath;
    /** Simulated cycle of the failure (SimError only). */
    Cycle cycle = 0;

    // Process-isolation diagnostics (SweepOptions::isolate only).
    /** Terminating signal name ("SIGSEGV", "SIGKILL", ...), else "". */
    std::string signal;
    /** Captured tail of the child's stderr (bounded). */
    std::string stderrTail;
    /** Child peak resident set (ru_maxrss, KiB). */
    std::uint64_t maxRssKb = 0;
    /** Child user/system CPU seconds (rusage). */
    double userSec = 0.0;
    double sysSec = 0.0;
};

/** Outcome of one sweep job: a Report, or a structured error. */
struct JobResult
{
    Report report; ///< valid only when ok
    bool ok = false;
    /** Attempts consumed (1..SweepOptions::maxAttempts); 0 when the job
     *  was resumed from the manifest or skipped. */
    unsigned attempts = 0;
    JobError error; ///< valid only when !ok
    /** Original exception of the final attempt (rethrowable). Only set
     *  for in-process failures — an isolated child's exception cannot
     *  cross the process boundary, so it arrives as `error` only. */
    std::exception_ptr exception;
    /** Satisfied from the checkpoint manifest without running (ok). */
    bool resumed = false;
    /** Never ran: graceful shutdown was requested before it started.
     *  Neither a Report nor a failure — callers should not emit a
     *  failure row for skipped jobs. */
    bool skipped = false;
};

/** Progress snapshot passed to the progress callback after each job. */
struct SweepProgress
{
    /** Jobs finished (successfully or not) — failures count, so done
     *  always reaches total and the ETA stays honest. */
    std::size_t done = 0;
    std::size_t total = 0;
    /** Jobs that exhausted their attempts without a Report. */
    std::size_t failed = 0;
    /** Jobs satisfied from the checkpoint manifest (count toward done). */
    std::size_t resumed = 0;
    /** Jobs skipped by a graceful shutdown (count toward done). */
    std::size_t skipped = 0;
    double elapsedSec = 0.0;
    /** Remaining-time estimate from the mean per-job rate so far. */
    double etaSec = 0.0;
};

/** Sweep execution options. */
struct SweepOptions
{
    /** Worker count; 0 means SweepRunner::defaultJobs() (UDP_JOBS env or
     *  std::thread::hardware_concurrency()). */
    unsigned numThreads = 0;
    /** Called after each completed job (from the completing thread, under
     *  the runner's progress lock). Replaces the stderr progress line. */
    std::function<void(const SweepProgress&)> onProgress;
    /** Suppresses the default stderr progress stream. */
    bool quiet = false;
    /** Attempts per job (>= 1): a failing job is retried maxAttempts-1
     *  times before its failure is recorded. Retries target transient
     *  host-level faults; a deterministic SimError will simply recur. */
    unsigned maxAttempts = 1;
    /** Per-job cycle budget: installed as watchdog.maxCycles on every job
     *  whose config leaves it 0, so one pathological sweep point cannot
     *  hang the batch. 0 = leave each job's configuration alone. */
    Cycle jobCycleBudget = 0;
    /** Directory for per-failure diagnostic dump files (created on
     *  demand). Empty = keep dumps in memory only (JobResult::error). */
    std::string dumpDir;

    // --- process isolation (docs/ROBUSTNESS.md, "Isolated execution") ---
    /** Run every job in a forked child process (sim/procexec.h): a
     *  SIGSEGV, OOM kill, or runaway job is contained to that child and
     *  converted into a structured JobError instead of taking the sweep
     *  down. Clean-run Reports are bit-identical to in-process mode. */
    bool isolate = false;
    /** Per-child address-space cap (RLIMIT_AS), isolate only. 0 = none.
     *  Ignored under ASan/TSan (sanitizers reserve huge mappings). */
    std::uint64_t memLimitBytes = 0;
    /** Per-child CPU-seconds cap (RLIMIT_CPU), isolate only. 0 = none. */
    std::uint64_t cpuLimitSec = 0;
    /** Parent-enforced wall-clock deadline per child in seconds, isolate
     *  only; expiry SIGKILLs the child (error kind "timeout"). 0 = none. */
    double wallLimitSec = 0.0;

    // --- checkpoint/resume (docs/ROBUSTNESS.md, "Sweep manifest") ------
    /** JSONL manifest path (sim/manifest.h): every finished job is
     *  appended line-atomically as it completes, so an interrupted sweep
     *  can be resumed. Empty = no manifest. */
    std::string manifestPath;
    /** Load the manifest before running and skip jobs it already records
     *  as completed, replaying their Reports verbatim; failed jobs are
     *  re-run. Requires manifestPath. */
    bool resume = false;
    /** Install SIGINT/SIGTERM handlers for the duration of the batch:
     *  the first signal requests graceful shutdown (in-flight jobs drain
     *  and are recorded, queued jobs are marked skipped); a second
     *  signal falls back to the default disposition and kills the
     *  process (the flushed manifest still allows --resume). */
    bool handleSignals = false;
};

/**
 * Execution knobs for running one job outside a SweepRunner batch (the
 * distributed-worker path, sim/sweepd.h). A subset of SweepOptions with
 * identical semantics, so a job run through runJobChecked() behaves —
 * and reports — exactly like the same job inside runChecked().
 */
struct JobExecOptions
{
    /** Attempts for this execution (>= 1). Distributed workers usually
     *  leave this at 1 and let the coordinator's lease policy own the
     *  retry budget. */
    unsigned maxAttempts = 1;
    /** Watchdog budget installed when the job's config leaves it 0. */
    Cycle jobCycleBudget = 0;
    /** Directory for failure dump files ("" = in-memory only). */
    std::string dumpDir;
    /** Fork-isolated execution (sim/procexec.h); falls back to
     *  in-process silently where unsupported. */
    bool isolate = false;
    std::uint64_t memLimitBytes = 0;
    std::uint64_t cpuLimitSec = 0;
    double wallLimitSec = 0.0;
};

/**
 * Runs one sweep job to a JobResult: the retry loop, optional process
 * isolation, structured error capture, and failure-dump writing of
 * SweepRunner::runChecked(), without the pool/manifest machinery.
 * @p index only labels diagnostics (dump file names).
 */
JobResult runJobChecked(const SweepJob& job, std::size_t index,
                        const JobExecOptions& opts = {});

/** True once a graceful-shutdown signal was observed by the handlers
 *  installed via SweepOptions::handleSignals (sticky per batch). */
bool sweepStopRequested();

/** The signal number that requested the stop, or 0. */
int sweepStopSignal();

/**
 * Executes batches of SweepJobs on a fixed-size thread pool.
 *
 * Results are returned indexed exactly like the input jobs regardless of
 * completion order, and are bit-identical to a serial run of the same
 * batch.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /**
     * Fault-tolerant execution: runs every job and returns one JobResult
     * per job, in job order. A crashing or hanging job never takes the
     * batch down — its structured error (and optional dump file) is
     * recorded and every other job still produces its Report.
     */
    std::vector<JobResult> runChecked(const std::vector<SweepJob>& jobs) const;

    /**
     * Runs every job and returns one Report per job, in job order.
     * Rethrows the first job exception (by job index) after the batch
     * drains. Thin wrapper over runChecked() for callers that prefer
     * all-or-nothing semantics.
     */
    std::vector<Report> run(const std::vector<SweepJob>& jobs) const;

    /** Worker count this runner will use for a batch. */
    unsigned threadCount() const { return threads; }

    /**
     * Default worker count: the UDP_JOBS environment variable when it
     * parses as a positive integer (malformed values warn on stderr and
     * are ignored), otherwise std::thread::hardware_concurrency(),
     * otherwise 1.
     */
    static unsigned defaultJobs();

  private:
    SweepOptions opts;
    unsigned threads;
};

/** Convenience: run @p jobs with default options (UDP_JOBS-sized pool). */
std::vector<Report> runSweep(const std::vector<SweepJob>& jobs);

/** Convenience: fault-tolerant sweep with explicit options. */
std::vector<JobResult> runSweepChecked(const std::vector<SweepJob>& jobs,
                                       SweepOptions options = {});

} // namespace udp

#endif // UDP_SIM_SWEEP_H

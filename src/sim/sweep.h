/**
 * @file
 * The parallel experiment engine: run a batch of independent simulations
 * (one Report each) on a worker pool, with deterministic result ordering.
 *
 * Every sweep point is an isolated (Profile, SimConfig, RunOptions) triple;
 * simulations share only the immutable Program cache inside runSim(), so a
 * sweep of N jobs on any thread count produces bit-identical Reports to the
 * same jobs run serially (see docs/MODEL.md, "Determinism & concurrency").
 */

#ifndef UDP_SIM_SWEEP_H
#define UDP_SIM_SWEEP_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/simconfig.h"
#include "workload/profile.h"

namespace udp {

/** One sweep point: a workload under a configuration. */
struct SweepJob
{
    Profile profile;
    SimConfig config;
    RunOptions opts;
    /** Becomes Report::configName; also the label in sink artifacts. */
    std::string label;
};

/** Progress snapshot passed to the progress callback after each job. */
struct SweepProgress
{
    std::size_t done = 0;
    std::size_t total = 0;
    double elapsedSec = 0.0;
    /** Remaining-time estimate from the mean per-job rate so far. */
    double etaSec = 0.0;
};

/** Sweep execution options. */
struct SweepOptions
{
    /** Worker count; 0 means SweepRunner::defaultJobs() (UDP_JOBS env or
     *  std::thread::hardware_concurrency()). */
    unsigned numThreads = 0;
    /** Called after each completed job (from the completing thread, under
     *  the runner's progress lock). Replaces the stderr progress line. */
    std::function<void(const SweepProgress&)> onProgress;
    /** Suppresses the default stderr progress stream. */
    bool quiet = false;
};

/**
 * Executes batches of SweepJobs on a fixed-size thread pool.
 *
 * Results are returned indexed exactly like the input jobs regardless of
 * completion order, and are bit-identical to a serial run of the same
 * batch.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /**
     * Runs every job and returns one Report per job, in job order.
     * Rethrows the first job exception (by job index) after the batch
     * drains.
     */
    std::vector<Report> run(const std::vector<SweepJob>& jobs) const;

    /** Worker count this runner will use for a batch. */
    unsigned threadCount() const { return threads; }

    /**
     * Default worker count: the UDP_JOBS environment variable when it
     * parses as a positive integer (malformed values warn on stderr and
     * are ignored), otherwise std::thread::hardware_concurrency(),
     * otherwise 1.
     */
    static unsigned defaultJobs();

  private:
    SweepOptions opts;
    unsigned threads;
};

/** Convenience: run @p jobs with default options (UDP_JOBS-sized pool). */
std::vector<Report> runSweep(const std::vector<SweepJob>& jobs);

} // namespace udp

#endif // UDP_SIM_SWEEP_H

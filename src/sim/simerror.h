/**
 * @file
 * Structured simulation errors raised by the hardening layer (watchdog,
 * invariant checker). Every error carries machine-readable fields — kind,
 * component, cycle — plus a multi-component diagnostic dump captured at
 * the moment of failure, so sweep-level tooling (sim/sweep.h) can record
 * a structured failure row instead of a bare what() string.
 */

#ifndef UDP_SIM_SIMERROR_H
#define UDP_SIM_SIMERROR_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.h"

namespace udp {

/** What went wrong, machine-readable (sink key "error_kind"). */
enum class SimErrorKind : std::uint8_t {
    /** Watchdog: no instruction retired for the configured window. */
    RetireStall,
    /** Watchdog: the global cycle budget was exhausted. */
    CycleBudget,
    /** The periodic invariant sweep found corrupted modeled state. */
    InvariantViolation,
};

/** Stable snake_case name of @p k (used in failure rows and tests). */
constexpr const char*
simErrorKindName(SimErrorKind k)
{
    switch (k) {
    case SimErrorKind::RetireStall: return "retire_stall";
    case SimErrorKind::CycleBudget: return "cycle_budget";
    case SimErrorKind::InvariantViolation: return "invariant";
    }
    return "unknown";
}

/** Base of all structured simulation failures. */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, std::string component, Cycle cycle,
             const std::string& message, std::string dump)
        : std::runtime_error(formatWhat(kind, component, cycle, message)),
          kind_(kind),
          component_(std::move(component)),
          cycle_(cycle),
          dump_(std::move(dump))
    {
    }

    SimErrorKind kind() const { return kind_; }
    const char* kindName() const { return simErrorKindName(kind_); }
    /** Component that failed ("backend", "ftq", "mshr", ...). */
    const std::string& component() const { return component_; }
    /** Simulated cycle at which the error was raised. */
    Cycle cycle() const { return cycle_; }
    /** Multi-component state dump (Cpu::dumpState()) at failure time. */
    const std::string& dump() const { return dump_; }

  private:
    static std::string
    formatWhat(SimErrorKind kind, const std::string& component, Cycle cycle,
               const std::string& message)
    {
        std::string s;
        s.reserve(64 + component.size() + message.size());
        s.append("[").append(simErrorKindName(kind)).append("] cycle ");
        s.append(std::to_string(cycle));
        s.append(", ").append(component).append(": ").append(message);
        return s;
    }

    SimErrorKind kind_;
    std::string component_;
    Cycle cycle_;
    std::string dump_;
};

/**
 * Forward progress was lost: retirement stalled beyond the watchdog
 * window (kind RetireStall) or the whole simulation overran its cycle
 * budget (kind CycleBudget).
 */
class SimHang : public SimError
{
  public:
    using SimError::SimError;
};

/** A cross-component invariant sweep (sim/invariants.h) failed. */
class InvariantViolation : public SimError
{
  public:
    InvariantViolation(std::string component, Cycle cycle,
                       const std::string& message, std::string dump)
        : SimError(SimErrorKind::InvariantViolation, std::move(component),
                   cycle, message, std::move(dump))
    {
    }
};

} // namespace udp

#endif // UDP_SIM_SIMERROR_H

#include "sim/procexec.h"

#ifndef _WIN32
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <new>
#include <stdexcept>

#include "obs/metrics.h"
#include "sim/runner.h"
#include "sim/simerror.h"
#include "sim/wire.h"
#include "stats/sink.h"

// Sanitizers reserve terabytes of virtual address space for shadow
// memory; an RLIMIT_AS cap would kill every child at startup.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define UDP_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define UDP_UNDER_SANITIZER 1
#endif
#endif
#ifndef UDP_UNDER_SANITIZER
#define UDP_UNDER_SANITIZER 0
#endif

namespace udp {

bool
procIsolationSupported()
{
#ifdef _WIN32
    return false;
#else
    return true;
#endif
}

bool
procUnderSanitizer()
{
    return UDP_UNDER_SANITIZER != 0;
}

#ifdef _WIN32

JobResult
runJobIsolated(const SweepJob& job, const ProcLimits&)
{
    JobResult jr;
    jr.error.kind = "exception";
    jr.error.message = "process isolation is not supported on this platform";
    (void)job;
    return jr;
}

#else // POSIX

namespace {

using Clock = std::chrono::steady_clock;

// --- pipe protocol ---------------------------------------------------------
//
// One message per child: magic, status byte ('R' report / 'E' error),
// then length-prefixed fields encoded with the shared wire primitives
// (sim/wire.h). The parent treats anything that does not parse exactly
// as a protocol failure.

using wire::appendStr;
using wire::appendU32;
using wire::appendU64;
using wire::readStr;
using wire::readU32;
using wire::readU64;

constexpr std::uint32_t kMagic = 0x55445031; // "UDP1"
constexpr char kStatusReport = 'R';
constexpr char kStatusError = 'E';

bool
writeAll(int fd, const char* data, std::size_t n)
{
    while (n > 0) {
        ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

// --- child side ------------------------------------------------------------

void
applyChildLimits(const ProcLimits& limits)
{
    // A crashing child is expected here; don't litter core files.
    struct rlimit core = {0, 0};
    ::setrlimit(RLIMIT_CORE, &core);

#if !UDP_UNDER_SANITIZER
    if (limits.memLimitBytes != 0) {
        struct rlimit rl;
        rl.rlim_cur = static_cast<rlim_t>(limits.memLimitBytes);
        rl.rlim_max = static_cast<rlim_t>(limits.memLimitBytes);
        ::setrlimit(RLIMIT_AS, &rl);
    }
#endif
    if (limits.cpuLimitSec != 0) {
        struct rlimit rl;
        // Soft limit raises SIGXCPU (classified "cpu_limit"); the hard
        // limit is the SIGKILL backstop should the child ignore it.
        rl.rlim_cur = static_cast<rlim_t>(limits.cpuLimitSec);
        rl.rlim_max = static_cast<rlim_t>(limits.cpuLimitSec + 5);
        ::setrlimit(RLIMIT_CPU, &rl);
    }
}

std::string
encodeError(const std::string& kind, const std::string& component,
            const std::string& message, const std::string& dump,
            std::uint64_t cycle)
{
    std::string buf;
    appendU32(&buf, kMagic);
    buf.push_back(kStatusError);
    appendStr(&buf, kind);
    appendStr(&buf, component);
    appendStr(&buf, message);
    appendStr(&buf, dump);
    appendU64(&buf, cycle);
    return buf;
}

[[noreturn]] void
childRun(const SweepJob& job, int result_fd)
{
    std::string payload;
    try {
        try {
            Report r = runSim(job.profile, job.config, job.opts, job.label);
            payload.clear();
            appendU32(&payload, kMagic);
            payload.push_back(kStatusReport);
            appendStr(&payload, reportToJsonLine(r));
        } catch (const SimError& e) {
            payload = encodeError(e.kindName(), e.component(), e.what(),
                                  e.dump(), e.cycle());
        } catch (const std::bad_alloc&) {
            payload = encodeError(
                "mem_limit", "",
                "std::bad_alloc: allocation failed (memory limit reached)",
                "", 0);
        } catch (const std::exception& e) {
            payload = encodeError("exception", "", e.what(), "", 0);
        } catch (...) {
            payload = encodeError("exception", "", "unknown exception", "",
                                  0);
        }
    } catch (...) {
        // Even building the payload failed (e.g. bad_alloc while copying
        // a large dump under RLIMIT_AS): report through the exit status.
        _exit(4);
    }
    if (!writeAll(result_fd, payload.data(), payload.size())) {
        _exit(3);
    }
    _exit(0);
}

// --- parent side -----------------------------------------------------------

std::string
signalNameOf(int sig)
{
    switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGXCPU: return "SIGXCPU";
    case SIGSYS: return "SIGSYS";
    case SIGTRAP: return "SIGTRAP";
    case SIGPIPE: return "SIGPIPE";
    default: return "SIG" + std::to_string(sig);
    }
}

/** Decodes a complete child payload into @p jr; false when malformed. */
bool
decodePayload(const std::string& buf, JobResult* jr)
{
    std::size_t pos = 0;
    std::uint32_t magic = 0;
    if (!readU32(buf, &pos, &magic) || magic != kMagic ||
        pos >= buf.size()) {
        return false;
    }
    char status = buf[pos++];
    if (status == kStatusReport) {
        std::string json;
        if (!readStr(buf, &pos, &json) || pos != buf.size()) {
            return false;
        }
        Report r;
        if (!reportFromJsonLine(json, &r)) {
            return false;
        }
        jr->report = std::move(r);
        jr->ok = true;
        return true;
    }
    if (status == kStatusError) {
        JobError e;
        if (!readStr(buf, &pos, &e.kind) ||
            !readStr(buf, &pos, &e.component) ||
            !readStr(buf, &pos, &e.message) ||
            !readStr(buf, &pos, &e.dump)) {
            return false;
        }
        std::uint64_t cycle = 0;
        if (!readU64(buf, &pos, &cycle) || pos != buf.size()) {
            return false;
        }
        e.cycle = cycle;
        jr->error = std::move(e);
        jr->ok = false;
        return true;
    }
    return false;
}

} // namespace

JobResult
runJobIsolated(const SweepJob& job, const ProcLimits& limits)
{
    wire::installSigpipeIgnore();
    JobResult jr;
    int res_pipe[2];
    int err_pipe[2];
    if (::pipe(res_pipe) != 0) {
        jr.error.kind = "exception";
        jr.error.message =
            std::string("pipe() failed: ") + std::strerror(errno);
        return jr;
    }
    if (::pipe(err_pipe) != 0) {
        jr.error.kind = "exception";
        jr.error.message =
            std::string("pipe() failed: ") + std::strerror(errno);
        ::close(res_pipe[0]);
        ::close(res_pipe[1]);
        return jr;
    }

    // Inherited stdio buffers would otherwise be double-flushed by the
    // child (it uses _exit, but the fault hooks fprintf to stderr).
    std::fflush(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
        obs::counter("procexec.fork_failures").add(1);
        jr.error.kind = "exception";
        jr.error.message =
            std::string("fork() failed: ") + std::strerror(errno);
        ::close(res_pipe[0]);
        ::close(res_pipe[1]);
        ::close(err_pipe[0]);
        ::close(err_pipe[1]);
        return jr;
    }

    if (pid == 0) {
        // Child: redirect stderr into the capture pipe, shield the job
        // from the terminal's SIGINT/SIGTERM (graceful shutdown drains
        // in-flight jobs; the parent's wall deadline stays the backstop),
        // apply rlimits, run, report, _exit.
        ::close(res_pipe[0]);
        ::close(err_pipe[0]);
        ::dup2(err_pipe[1], STDERR_FILENO);
        if (err_pipe[1] != STDERR_FILENO) {
            ::close(err_pipe[1]);
        }
        std::signal(SIGINT, SIG_IGN);
        std::signal(SIGTERM, SIG_IGN);
        // If the parent dies first, writing the result must fail with
        // EPIPE (classified "exit") instead of SIGPIPE killing us with
        // no classification at all.
        wire::installSigpipeIgnore();
        applyChildLimits(limits);
        childRun(job, res_pipe[1]); // noreturn
    }

    // Parent: drain both pipes (the child blocks if its stderr pipe
    // fills) while enforcing the wall-clock deadline.
    ::close(res_pipe[1]);
    ::close(err_pipe[1]);

    std::string payload;
    std::string tail;
    bool timed_out = false;
    const bool has_deadline = limits.wallLimitSec > 0.0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               has_deadline ? limits.wallLimitSec : 0.0));

    struct pollfd pfd[2];
    pfd[0] = {res_pipe[0], POLLIN, 0};
    pfd[1] = {err_pipe[0], POLLIN, 0};

    while (pfd[0].fd >= 0 || pfd[1].fd >= 0) {
        int timeout_ms = -1;
        if (has_deadline && !timed_out) {
            auto remain = std::chrono::duration_cast<
                              std::chrono::milliseconds>(deadline -
                                                         Clock::now())
                              .count();
            if (remain <= 0) {
                ::kill(pid, SIGKILL);
                timed_out = true; // pipes will hit EOF as the child dies
            } else {
                timeout_ms = static_cast<int>(remain) + 1;
            }
        }
        int rc = ::poll(pfd, 2, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;
        }
        if (rc == 0) {
            continue; // deadline re-check at the top
        }
        for (int i = 0; i < 2; ++i) {
            if (pfd[i].fd < 0 || pfd[i].revents == 0) {
                continue;
            }
            char buf[4096];
            ssize_t n = ::read(pfd[i].fd, buf, sizeof(buf));
            if (n > 0) {
                std::string& dst = i == 0 ? payload : tail;
                dst.append(buf, static_cast<std::size_t>(n));
                if (i == 1 && tail.size() > limits.stderrTailBytes) {
                    tail.erase(0, tail.size() - limits.stderrTailBytes);
                }
            } else if (n == 0 || (errno != EINTR && errno != EAGAIN)) {
                ::close(pfd[i].fd);
                pfd[i].fd = -1;
            }
        }
    }
    if (pfd[0].fd >= 0) {
        ::close(pfd[0].fd);
    }
    if (pfd[1].fd >= 0) {
        ::close(pfd[1].fd);
    }

    int status = 0;
    struct rusage ru;
    std::memset(&ru, 0, sizeof(ru));
    while (::wait4(pid, &status, 0, &ru) < 0 && errno == EINTR) {
    }

    // Per-outcome counters plus a child peak-RSS histogram: the isolation
    // layer's own health, surfaced through STATUS/metrics snapshots.
    obs::counter("procexec.children").add(1);
    if (ru.ru_maxrss > 0) {
        obs::histogram("procexec.child_max_rss_kb")
            .observe(static_cast<std::uint64_t>(ru.ru_maxrss));
    }

    auto attachDiagnostics = [&](JobError* e) {
        e->stderrTail = tail;
        e->maxRssKb = static_cast<std::uint64_t>(ru.ru_maxrss);
        e->userSec = static_cast<double>(ru.ru_utime.tv_sec) +
                     static_cast<double>(ru.ru_utime.tv_usec) / 1e6;
        e->sysSec = static_cast<double>(ru.ru_stime.tv_sec) +
                    static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
    };

    if (timed_out) {
        obs::counter("procexec.timeouts").add(1);
        jr.ok = false;
        jr.error = JobError{};
        jr.error.kind = "timeout";
        jr.error.signal = "SIGKILL";
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "wall-clock limit of %.1fs exceeded; child killed",
                      limits.wallLimitSec);
        jr.error.message = msg;
        attachDiagnostics(&jr.error);
        return jr;
    }

    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        obs::counter(sig == SIGXCPU   ? "procexec.cpu_limit_kills"
                     : sig == SIGKILL ? "procexec.oom_kills"
                                      : "procexec.crashes")
            .add(1);
        jr.ok = false;
        jr.error = JobError{};
        jr.error.signal = signalNameOf(sig);
        if (sig == SIGXCPU) {
            jr.error.kind = "cpu_limit";
            jr.error.message = "CPU-time limit exceeded (SIGXCPU)";
        } else if (sig == SIGKILL) {
            // Not our wall-deadline kill (handled above): the kernel's
            // OOM killer or the RLIMIT_CPU hard-limit backstop.
            jr.error.kind = "oom_kill";
            jr.error.message =
                "child killed by SIGKILL (kernel OOM killer or hard "
                "resource limit)";
        } else {
            jr.error.kind = "crash";
            jr.error.message = "child terminated by " + jr.error.signal;
        }
        attachDiagnostics(&jr.error);
        return jr;
    }

    if (decodePayload(payload, &jr)) {
        obs::counter(jr.ok ? "procexec.clean_exits"
                           : "procexec.job_errors")
            .add(1);
        if (!jr.ok) {
            attachDiagnostics(&jr.error);
        }
        return jr;
    }

    obs::counter("procexec.protocol_errors").add(1);
    jr.ok = false;
    jr.error = JobError{};
    int exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (exit_code != 0) {
        jr.error.kind = "exit";
        jr.error.message = "child exited with status " +
                           std::to_string(exit_code) +
                           " without a result payload";
    } else {
        jr.error.kind = "protocol";
        jr.error.message = "malformed result payload from child (" +
                           std::to_string(payload.size()) + " bytes)";
    }
    attachDiagnostics(&jr.error);
    return jr;
}

#endif // POSIX

} // namespace udp

#include "sim/manifest.h"

#include <cstdio>

#include "stats/sink.h"

namespace udp {

namespace {

// --- FNV-1a 64 over a canonical field sequence -----------------------------

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ull;

void
hashBytes(std::uint64_t* h, const void* data, std::size_t n)
{
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        *h ^= p[i];
        *h *= kFnvPrime;
    }
}

void
hashU64(std::uint64_t* h, std::uint64_t v)
{
    // Fixed-width little-endian feed: independent of host struct layout.
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) {
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    hashBytes(h, b, sizeof(b));
}

void
hashStr(std::uint64_t* h, const std::string& s)
{
    hashU64(h, s.size());
    hashBytes(h, s.data(), s.size());
}

void
hashDouble(std::uint64_t* h, double v)
{
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits;
    __builtin_memcpy(&bits, &v, sizeof(bits));
    hashU64(h, bits);
}

std::string
hexOf(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
hexTo(const std::string& s, std::uint64_t* out)
{
    if (s.size() != 16) {
        return false;
    }
    std::uint64_t v = 0;
    for (char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9') {
            v |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return false;
        }
    }
    *out = v;
    return true;
}

/** Extracts the next "key":"string value" field; minimal, order-aware. */
bool
extractString(const std::string& line, const std::string& key,
              std::string* out)
{
    std::string needle = "\"" + key + "\":\"";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos) {
        return false;
    }
    pos += needle.size();
    std::string raw;
    while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size()) {
            raw += line[pos++];
        }
        raw += line[pos++];
    }
    if (pos >= line.size()) {
        return false;
    }
    return jsonUnescape(raw, out);
}

bool
extractU64(const std::string& line, const std::string& key,
           std::uint64_t* out)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos) {
        return false;
    }
    pos += needle.size();
    std::uint64_t v = 0;
    bool any = false;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(line[pos++] - '0');
        any = true;
    }
    if (!any) {
        return false;
    }
    *out = v;
    return true;
}

} // namespace

std::uint64_t
sweepJobHash(const SweepJob& job, std::size_t index)
{
    std::uint64_t h = kFnvOffset;
    hashU64(&h, index);
    hashStr(&h, job.label);

    // Workload identity: matches the Program cache key plus the outcome
    // seed inputs that shape the instruction stream.
    const Profile& p = job.profile;
    hashStr(&h, p.name);
    hashU64(&h, p.seed);
    hashU64(&h, p.codeFootprintKB);

    hashU64(&h, job.opts.warmupInstrs);
    hashU64(&h, job.opts.measureInstrs);

    // Configuration fingerprint: every knob the presets and in-tree
    // benches vary. Jobs differing only outside this list must carry
    // distinct labels (see header).
    const SimConfig& c = job.config;
    hashU64(&h, c.ftqCapacity);
    hashU64(&h, c.ftqPhysical);
    hashU64(&h, c.udpEnabled ? 1 : 0);
    hashU64(&h, c.eipEnabled ? 1 : 0);
    hashU64(&h, c.fdip.enabled ? 1 : 0);
    hashU64(&h, c.fdip.blocksPerCycle);
    hashU64(&h, static_cast<std::uint64_t>(c.uftq.mode));
    hashDouble(&h, c.uftq.aur);
    hashDouble(&h, c.uftq.atr);
    hashU64(&h, c.mem.l1iSize);
    hashU64(&h, c.mem.l1iAssoc);
    hashU64(&h, c.mem.perfectIcache ? 1 : 0);
    hashU64(&h, c.mem.l1iPrefetchDemoteL2 ? 1 : 0);
    hashU64(&h, c.udp.confidence.threshold);
    hashU64(&h, c.udp.usefulSet.bits1);
    hashU64(&h, c.udp.usefulSet.bits2);
    hashU64(&h, c.udp.usefulSet.bits4);
    hashU64(&h, c.udp.usefulSet.coalesceBufferSize);
    hashU64(&h, c.udp.usefulSet.infiniteStorage ? 1 : 0);
    hashU64(&h, static_cast<std::uint64_t>(c.udp.seniority.flushPolicy));
    hashU64(&h, c.watchdog.retireStallCycles);
    hashU64(&h, c.watchdog.maxCycles);
    hashU64(&h, c.watchdog.invariantPeriod);
    hashU64(&h, static_cast<std::uint64_t>(c.fault.kind));
    hashU64(&h, c.fault.triggerCycle);
    hashU64(&h, c.fault.seed);
    hashU64(&h, c.fault.delay);
    return h;
}

std::string
manifestEntryToJsonLine(const ManifestEntry& e)
{
    std::string out = "{\"hash\":\"" + hexOf(e.hash) +
                      "\",\"index\":" + std::to_string(e.index) +
                      ",\"workload\":\"" + jsonEscape(e.workload) +
                      "\",\"config\":\"" + jsonEscape(e.label) + "\"";
    if (!e.worker.empty()) {
        out += ",\"worker\":\"" + jsonEscape(e.worker) + "\"";
    }
    if (e.ok) {
        // "report" is by construction the last key: the loader slices it
        // from the first '{' after it to the line's final '}'.
        out += ",\"status\":\"ok\",\"report\":" + e.reportJson;
    } else {
        out += ",\"status\":\"failed\",\"error_kind\":\"" +
               jsonEscape(e.errorKind) + "\"";
    }
    out += '}';
    return out;
}

bool
manifestEntryFromJsonLine(const std::string& line, ManifestEntry* out)
{
    if (line.empty() || line.front() != '{' || line.back() != '}') {
        return false;
    }
    ManifestEntry e;
    std::string hash_hex;
    std::string status;
    std::uint64_t index = 0;
    if (!extractString(line, "hash", &hash_hex) ||
        !hexTo(hash_hex, &e.hash) || !extractU64(line, "index", &index) ||
        !extractString(line, "workload", &e.workload) ||
        !extractString(line, "config", &e.label) ||
        !extractString(line, "status", &status)) {
        return false;
    }
    e.index = index;
    extractString(line, "worker", &e.worker); // optional field
    if (status == "ok") {
        const std::string needle = "\"report\":";
        std::size_t pos = line.find(needle);
        if (pos == std::string::npos) {
            return false;
        }
        pos += needle.size();
        if (pos >= line.size() || line[pos] != '{') {
            return false;
        }
        // The entry's own closing brace is the line's last byte.
        e.reportJson = line.substr(pos, line.size() - 1 - pos);
        if (e.reportJson.empty() || e.reportJson.back() != '}') {
            return false;
        }
        e.ok = true;
    } else if (status == "failed") {
        extractString(line, "error_kind", &e.errorKind);
        e.ok = false;
    } else {
        return false;
    }
    *out = std::move(e);
    return true;
}

bool
manifestEntryIsConsistent(const ManifestEntry& e)
{
    if (!e.ok) {
        return true;
    }
    Report r;
    if (!reportFromJsonLine(e.reportJson, &r)) {
        return false;
    }
    if (r.workload != e.workload || r.configName != e.label) {
        return false;
    }
    return reportToJsonLine(r) == e.reportJson;
}

std::vector<ManifestEntry>
readManifestFile(const std::string& path)
{
    std::vector<ManifestEntry> out;
    std::ifstream in(path);
    std::string line;
    while (in.is_open() && std::getline(in, line)) {
        ManifestEntry e;
        if (manifestEntryFromJsonLine(line, &e) &&
            manifestEntryIsConsistent(e)) {
            out.push_back(std::move(e));
        }
    }
    return out;
}

bool
SweepManifest::open(const std::string& path, bool resume)
{
    entries.clear();
    completedLoaded = 0;
    if (resume) {
        std::ifstream in(path);
        std::string line;
        while (in.is_open() && std::getline(in, line)) {
            ManifestEntry e;
            if (!manifestEntryFromJsonLine(line, &e) ||
                !manifestEntryIsConsistent(e)) {
                continue; // malformed, truncated, or spliced line
            }
            entries[e.hash] = std::move(e); // latest record wins
        }
        for (const auto& [hash, e] : entries) {
            (void)hash;
            if (e.ok) {
                ++completedLoaded;
            }
        }
    }
    out.open(path, resume ? (std::ios::out | std::ios::app)
                          : (std::ios::out | std::ios::trunc));
    if (!out.is_open()) {
        std::fprintf(stderr, "[sweep] cannot open manifest \"%s\"\n",
                     path.c_str());
        return false;
    }
    return true;
}

const ManifestEntry*
SweepManifest::findCompleted(std::uint64_t hash) const
{
    auto it = entries.find(hash);
    if (it == entries.end() || !it->second.ok) {
        return nullptr;
    }
    return &it->second;
}

void
SweepManifest::record(const ManifestEntry& e)
{
    if (!out.is_open()) {
        return;
    }
    std::string line = manifestEntryToJsonLine(e);
    line += '\n';
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.flush();
}

void
SweepManifest::close()
{
    if (out.is_open()) {
        out.close();
    }
}

} // namespace udp

#include "sim/cpu.h"

namespace udp {

Cpu::Cpu(const Program& prog, const SimConfig& c) : cfg(c), program(prog)
{
    stream_ = std::make_unique<TrueStream>(program);
    bpu_ = std::make_unique<Bpu>(cfg.bpu);
    mem_ = std::make_unique<MemSystem>(cfg.mem);
    ftq_ = std::make_unique<Ftq>(cfg.ftqPhysical, cfg.ftqCapacity);
    fe_ = std::make_unique<DecoupledFrontend>(program, *stream_, *bpu_,
                                              *ftq_, records_, cfg.frontend);
    fetch_ = std::make_unique<FetchStage>(program, *bpu_, *mem_, *ftq_,
                                          *fe_, records_, cfg.fetch);
    fdip_ = std::make_unique<FdipEngine>(*mem_, *ftq_, cfg.fdip);
    backend_ = std::make_unique<Backend>(program, *stream_, *mem_, *bpu_,
                                         records_, cfg.backend);

    if (cfg.udpEnabled) {
        udp_ = std::make_unique<UdpEngine>(cfg.udp);
        fdip_->setUdp(udp_.get());
        fe_->hooks().onCondPredicted = [this](Confidence c2) {
            udp_->onCondPredicted(c2);
        };
        fe_->hooks().onBtbMissTaken = [this]() { udp_->onBtbMissTaken(); };
        fe_->hooks().assumedOffPath = [this]() {
            return udp_->assumedOffPath();
        };
        backend_->onRetirePc = [this](Addr pc) { udp_->onRetire(pc); };
    }

    if (cfg.uftq.mode != UftqMode::Off) {
        uftq_ = std::make_unique<UftqController>(*ftq_, cfg.uftq);
    }

    if (cfg.eipEnabled) {
        eip_ = std::make_unique<Eip>(*mem_, cfg.eip);
        fetch_->onIFetchAccess = [this](Addr line, bool hit, Cycle t) {
            eip_->onAccess(line, hit, t);
        };
    }

    // Fetch-side plumbing (UDP Seniority-FTQ + FDIP scan pointer).
    fetch_->onBlockConsumed = [this](const FtqEntry& e) {
        fdip_->onFtqPop();
        if (udp_) {
            udp_->onBlockConsumed(e);
        }
    };
    fetch_->onFtqFlushed = [this]() { fdip_->onFtqFlush(); };
}

void
Cpu::applyResteer(const ResteerRequest& req)
{
    // Erase records of everything still in the frontend.
    for (std::size_t i = 0; i < ftq_->size(); ++i) {
        const FtqEntry& e = ftq_->at(i);
        for (unsigned k = 0; k < e.numInstrs; ++k) {
            if (e.instrs[k].predictedBranch) {
                records_.erase(e.instrs[k].dynId);
            }
        }
    }
    for (const DecodedInstr& di : fetch_->decodeQueue()) {
        if (di.predictedBranch && di.dynId > req.squashAfterDynId) {
            records_.erase(di.dynId);
        }
    }

    ftq_->flush();
    fetch_->flushAll();
    fdip_->onFtqFlush();
    if (udp_) {
        udp_->onFlush(req.squashAfterDynId);
    }
    fe_->resteer(now_ + cfg.frontend.execResteerPenalty, req.newPc,
                 req.aligned, req.nextStreamIdx, /*from_decode=*/false);
}

void
Cpu::cycle()
{
    ++now_;

    mem_->tick(now_);

    ResteerRequest req = backend_->tick(now_);
    if (req.valid) {
        applyResteer(req);
    }

    // Dispatch decoded instructions into the backend.
    auto& dq = fetch_->decodeQueue();
    unsigned budget = cfg.backend.dispatchWidth;
    while (budget > 0 && !dq.empty() && dq.front().readyAt <= now_ &&
           backend_->canDispatch(dq.front())) {
        backend_->dispatch(dq.front(), now_);
        dq.pop_front();
        --budget;
    }

    fetch_->tick(now_);
    fdip_->tick(now_);
    fe_->tick(now_);
    ftq_->sampleOccupancy();

    if (uftq_) {
        uftq_->tick(mem_->stats(), mem_->l1iStats());
    }
    if (udp_) {
        std::uint64_t unused = mem_->l1iStats().prefetchUnused;
        if (unused > lastPfUnused) {
            udp_->noteUnuseful(unused - lastPfUnused);
            lastPfUnused = unused;
        }
        if ((now_ & 0x3ff) == 0) {
            udp_->maintain();
        }
    }
}

void
Cpu::runUntilRetired(std::uint64_t retire_target)
{
    while (backend_->retired() < retire_target) {
        cycle();
    }
}

void
Cpu::clearStats()
{
    mem_->clearStats();
    bpu_->clearStats();
    bpu_->btb().clearStats();
    bpu_->ibtb().clearStats();
    ftq_->clearStats();
    fe_->clearStats();
    fetch_->clearStats();
    fdip_->clearStats();
    backend_->clearStats();
    if (udp_) {
        udp_->clearStats();
    }
    if (uftq_) {
        uftq_->clearStats();
    }
    if (eip_) {
        eip_->clearStats();
    }
    statsStartCycle_ = now_;
    lastPfUnused = mem_->l1iStats().prefetchUnused;
}

} // namespace udp

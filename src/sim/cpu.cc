#include "sim/cpu.h"

#include <cstdio>

#include "sim/invariants.h"
#include "sim/simerror.h"

/**
 * Self-profiler hook: a predictable null check when compiled in (the
 * default) and nothing at all under -DUDP_NO_SELF_PROFILER — CI builds
 * that baseline to measure the off-mode cost of the compiled-in hooks
 * (docs/OBSERVABILITY.md).
 */
#ifdef UDP_NO_SELF_PROFILER
#define UDP_PROF(call)                                                       \
    do {                                                                     \
    } while (0)
#else
#define UDP_PROF(call)                                                       \
    do {                                                                     \
        if (profiler_) {                                                     \
            profiler_->call;                                                 \
        }                                                                    \
    } while (0)
#endif

namespace udp {

Cpu::Cpu(const Program& prog, const SimConfig& c) : cfg(c), program(prog)
{
    stream_ = std::make_unique<TrueStream>(program);
    bpu_ = std::make_unique<Bpu>(cfg.bpu);
    mem_ = std::make_unique<MemSystem>(cfg.mem);
    ftq_ = std::make_unique<Ftq>(cfg.ftqPhysical, cfg.ftqCapacity);
    fe_ = std::make_unique<DecoupledFrontend>(program, *stream_, *bpu_,
                                              *ftq_, records_, cfg.frontend);
    fetch_ = std::make_unique<FetchStage>(program, *bpu_, *mem_, *ftq_,
                                          *fe_, records_, cfg.fetch);
    fdip_ = std::make_unique<FdipEngine>(*mem_, *ftq_, cfg.fdip);
    backend_ = std::make_unique<Backend>(program, *stream_, *mem_, *bpu_,
                                         records_, cfg.backend);

    if (cfg.udpEnabled) {
        udp_ = std::make_unique<UdpEngine>(cfg.udp);
        fdip_->setUdp(udp_.get());
        fe_->hooks().onCondPredicted = [this](Confidence c2) {
            udp_->onCondPredicted(c2);
        };
        fe_->hooks().onBtbMissTaken = [this]() { udp_->onBtbMissTaken(); };
        fe_->hooks().assumedOffPath = [this]() {
            return udp_->assumedOffPath();
        };
        backend_->onRetirePc = [this](Addr pc) { udp_->onRetire(pc); };
    }

    if (cfg.uftq.mode != UftqMode::Off) {
        uftq_ = std::make_unique<UftqController>(*ftq_, cfg.uftq);
    }

    if (cfg.eipEnabled) {
        eip_ = std::make_unique<Eip>(*mem_, cfg.eip);
        fetch_->onIFetchAccess = [this](Addr line, bool hit, Cycle t) {
            eip_->onAccess(line, hit, t);
        };
    }

    // Fetch-side plumbing (UDP Seniority-FTQ + FDIP scan pointer).
    fetch_->onBlockConsumed = [this](const FtqEntry& e) {
        fdip_->onFtqPop();
        if (udp_) {
            udp_->onBlockConsumed(e);
        }
    };
    fetch_->onFtqFlushed = [this]() { fdip_->onFtqFlush(); };

    if (cfg.telemetry.enabled) {
        telemetry_ = std::make_unique<Telemetry>(cfg.telemetry);
        Telemetry* t = telemetry_.get();
        mem_->setTelemetry(t);
        ftq_->setTelemetry(t);
        fe_->setTelemetry(t);
        fetch_->setTelemetry(t);
        fdip_->setTelemetry(t);
        if (udp_) {
            udp_->setTelemetry(t);
        }
        if (uftq_) {
            uftq_->setTelemetry(t);
        }
    }

#ifndef UDP_NO_SELF_PROFILER
    if (cfg.profile.enabled) {
        profiler_ = std::make_unique<obs::CycleProfiler>(
            cfg.profile.intervalCycles);
    }
#endif
}

Telemetry::IntervalCounters
Cpu::telemetryCounters() const
{
    Telemetry::IntervalCounters c;
    c.retired = backend_->retired();
    c.ifetchMisses = mem_->stats().ifetchMisses;
    c.pfIssued = mem_->stats().iprefIssued;
    c.pfUseful =
        mem_->l1iStats().prefetchHits + mem_->stats().pfMshrMergesHw;
    c.pfUnused = mem_->l1iStats().prefetchUnused;
    return c;
}

void
Cpu::applyResteer(const ResteerRequest& req)
{
    // Erase records of everything still in the frontend.
    for (std::size_t i = 0; i < ftq_->size(); ++i) {
        const FtqEntry& e = ftq_->at(i);
        for (unsigned k = 0; k < e.numInstrs; ++k) {
            if (e.instrs[k].predictedBranch) {
                records_.erase(e.instrs[k].dynId);
            }
        }
    }
    for (const DecodedInstr& di : fetch_->decodeQueue()) {
        if (di.predictedBranch && di.dynId > req.squashAfterDynId) {
            records_.erase(di.dynId);
        }
    }

    ftq_->flush();
    fetch_->flushAll();
    fdip_->onFtqFlush();
    if (udp_) {
        udp_->onFlush(req.squashAfterDynId);
    }
    fe_->resteer(now_ + cfg.frontend.execResteerPenalty, req.newPc,
                 req.aligned, req.nextStreamIdx, /*from_decode=*/false);

    lastResteerCycle_ = now_;
    lastResteerPc_ = req.newPc;
}

void
Cpu::cycle()
{
    ++now_;

    // Profiler phase switches bracket each section below; everything not
    // claimed by a component phase (telemetry, faults, watchdog) stays in
    // Other, so attribution covers the whole loop by construction.
    UDP_PROF(beginCycle(now_));

    if (telemetry_) {
        telemetry_->beginCycle(now_, ftq_->size());
    }

    // Fault injection lands before any component ticks so the perturbed
    // state flows through a whole cycle before detection can run. Sticky
    // kinds re-apply every cycle (see FaultKind::CorruptFtqEntry).
    if (cfg.fault.kind != FaultKind::None &&
        (!faultApplied_ || cfg.fault.kind == FaultKind::CorruptFtqEntry)) {
        if (applyFault(*this, cfg.fault, now_)) {
            faultApplied_ = true;
        }
    }

    UDP_PROF(phase(obs::ProfPhase::Icache));
    mem_->tick(now_);

    UDP_PROF(phase(obs::ProfPhase::Backend));
    ResteerRequest req = backend_->tick(now_);
    if (req.valid) {
        applyResteer(req);
    }

    // Dispatch decoded instructions into the backend.
    auto& dq = fetch_->decodeQueue();
    unsigned budget = cfg.backend.dispatchWidth;
    while (budget > 0 && !dq.empty() && dq.front().readyAt <= now_ &&
           backend_->canDispatch(dq.front())) {
        backend_->dispatch(dq.front(), now_);
        dq.pop_front();
        --budget;
    }

    UDP_PROF(phase(obs::ProfPhase::Fetch));
    fetch_->tick(now_);
    UDP_PROF(phase(obs::ProfPhase::Prefetch));
    fdip_->tick(now_);
    UDP_PROF(phase(obs::ProfPhase::Bpred));
    fe_->tick(now_);
    ftq_->sampleOccupancy();

    UDP_PROF(phase(obs::ProfPhase::Prefetch));
    if (uftq_) {
        uftq_->tick(mem_->stats(), mem_->l1iStats());
    }
    if (udp_) {
        std::uint64_t unused = mem_->l1iStats().prefetchUnused;
        if (unused > lastPfUnused) {
            udp_->noteUnuseful(unused - lastPfUnused);
            lastPfUnused = unused;
        }
        if ((now_ & 0x3ff) == 0) {
            udp_->maintain();
        }
    }

    UDP_PROF(phase(obs::ProfPhase::Other));
    if (telemetry_ && telemetry_->intervalDue()) {
        telemetry_->closeInterval(telemetryCounters());
    }

    // --- hardening: forward-progress watchdog + invariant sweeps --------
    std::uint64_t retired_now = backend_->retired();
    if (retired_now != lastRetiredSeen_) {
        lastRetiredSeen_ = retired_now;
        lastRetireCycle_ = now_;
    } else if (cfg.watchdog.retireStallCycles != 0 &&
               now_ - lastRetireCycle_ >= cfg.watchdog.retireStallCycles) {
        throw SimHang(SimErrorKind::RetireStall, "backend", now_,
                      "no instruction retired for " +
                          std::to_string(now_ - lastRetireCycle_) +
                          " cycles (watchdog window " +
                          std::to_string(cfg.watchdog.retireStallCycles) +
                          ")",
                      dumpState());
    }
    if (cfg.watchdog.maxCycles != 0 && now_ >= cfg.watchdog.maxCycles) {
        throw SimHang(SimErrorKind::CycleBudget, "cpu", now_,
                      "cycle budget " +
                          std::to_string(cfg.watchdog.maxCycles) +
                          " exhausted with " + std::to_string(retired_now) +
                          " instructions retired",
                      dumpState());
    }
    if (cfg.watchdog.invariantPeriod != 0 &&
        now_ % cfg.watchdog.invariantPeriod == 0) {
        checkInvariants(*this, /*full=*/false);
    }
#ifdef UDP_CHECK
    // Expensive sweep (credit recounts, id monotonicity) on a tight
    // cadence — debug builds only.
    if ((now_ & 0x3f) == 0) {
        checkInvariants(*this, /*full=*/true);
    }
#endif

    UDP_PROF(endCycle());
}

void
Cpu::runUntilRetired(std::uint64_t retire_target)
{
    while (backend_->retired() < retire_target) {
        cycle();
    }
}

std::string
Cpu::dumpState() const
{
    char head[224];
    std::snprintf(head, sizeof(head),
                  "[cpu] cycle=%llu retired=%llu last_retire_cycle=%llu "
                  "(%llu ago)\n",
                  static_cast<unsigned long long>(now_),
                  static_cast<unsigned long long>(backend_->retired()),
                  static_cast<unsigned long long>(lastRetireCycle_),
                  static_cast<unsigned long long>(now_ - lastRetireCycle_));
    std::string out = head;
    if (lastResteerCycle_ != kInvalidCycle) {
        char rs[128];
        std::snprintf(rs, sizeof(rs),
                      "[resteer] last at cycle %llu (%llu ago) to pc=0x%llx\n",
                      static_cast<unsigned long long>(lastResteerCycle_),
                      static_cast<unsigned long long>(now_ -
                                                      lastResteerCycle_),
                      static_cast<unsigned long long>(lastResteerPc_));
        out += rs;
    } else {
        out += "[resteer] none yet\n";
    }
    out += ftq_->dumpState();
    out += fetch_->dumpState(now_);
    out += backend_->dumpState(now_);
    out += mem_->dumpState(now_);
    if (uftq_) {
        char u[64];
        std::snprintf(u, sizeof(u), "[uftq] commanded_depth=%u\n",
                      uftq_->currentDepth());
        out += u;
    }
    if (udp_) {
        char u[64];
        std::snprintf(u, sizeof(u), "[udp] seniority_ftq=%zu\n",
                      udp_->seniorityOccupancy());
        out += u;
    }
    return out;
}

void
Cpu::clearStats()
{
    mem_->clearStats();
    bpu_->clearStats();
    bpu_->btb().clearStats();
    bpu_->ibtb().clearStats();
    ftq_->clearStats();
    fe_->clearStats();
    fetch_->clearStats();
    fdip_->clearStats();
    backend_->clearStats();
    if (udp_) {
        udp_->clearStats();
    }
    if (uftq_) {
        uftq_->clearStats();
    }
    if (eip_) {
        eip_->clearStats();
    }
    statsStartCycle_ = now_;
    lastPfUnused = mem_->l1iStats().prefetchUnused;
    if (telemetry_) {
        telemetry_->clearStats();
        telemetry_->setBaseline(telemetryCounters());
    }
    if (profiler_) {
        profiler_->clearStats();
    }
}

} // namespace udp

/**
 * @file
 * Simple fixed-bucket histogram for occupancy / latency statistics.
 */

#ifndef UDP_COMMON_HISTOGRAM_H
#define UDP_COMMON_HISTOGRAM_H

#include <cstdint>
#include <vector>

namespace udp {

/**
 * Histogram over unsigned sample values with unit-width buckets up to a
 * maximum; larger samples land in the overflow bucket. Tracks enough state
 * to compute the running mean cheaply (used for average FTQ occupancy).
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t max_value = 256)
        : buckets(max_value + 1, 0) {}

    void
    sample(std::uint64_t v)
    {
        std::size_t idx = v >= buckets.size() ? buckets.size() - 1
                                              : static_cast<std::size_t>(v);
        ++buckets[idx];
        sum += v;
        ++n;
    }

    std::uint64_t count() const { return n; }
    double mean() const { return n == 0 ? 0.0 : static_cast<double>(sum) / n; }

    /** Count in bucket @p i (the last bucket holds the overflow). */
    std::uint64_t bucket(std::size_t i) const { return buckets.at(i); }
    std::size_t numBuckets() const { return buckets.size(); }

    /** Smallest value v such that at least fraction @p q of samples <= v. */
    std::uint64_t
    percentile(double q) const
    {
        if (n == 0) {
            return 0;
        }
        std::uint64_t need = static_cast<std::uint64_t>(q * n);
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            acc += buckets[i];
            if (acc >= need) {
                return i;
            }
        }
        return buckets.size() - 1;
    }

    void
    clear()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        sum = 0;
        n = 0;
    }

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t sum = 0;
    std::uint64_t n = 0;
};

} // namespace udp

#endif // UDP_COMMON_HISTOGRAM_H

/**
 * @file
 * Small integer math helpers (power-of-two logic, alignment).
 */

#ifndef UDP_COMMON_INTMATH_H
#define UDP_COMMON_INTMATH_H

#include <cassert>
#include <cstdint>

namespace udp {

/** True if @p v is a power of two (0 is not). */
constexpr bool isPowerOf2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/** Floor of log2(v); @p v must be non-zero. */
constexpr unsigned floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1) {
        ++l;
    }
    return l;
}

/** Ceiling of log2(v); @p v must be non-zero. */
constexpr unsigned ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOf2(v) ? 0 : 1);
}

/** Rounds @p a down to a multiple of power-of-two @p align. */
constexpr std::uint64_t alignDown(std::uint64_t a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Rounds @p a up to a multiple of power-of-two @p align. */
constexpr std::uint64_t alignUp(std::uint64_t a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

} // namespace udp

#endif // UDP_COMMON_INTMATH_H

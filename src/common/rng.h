/**
 * @file
 * Deterministic random number generation and stateless hashing.
 *
 * The whole simulator is deterministic: all "randomness" (workload layout,
 * branch outcomes, load addresses) derives from explicit seeds via these
 * functions, so a given (profile, seed, config) always reproduces the same
 * cycle-exact execution.
 */

#ifndef UDP_COMMON_RNG_H
#define UDP_COMMON_RNG_H

#include <cstdint>

namespace udp {

/** One round of the splitmix64 finalizer: a high-quality 64-bit mixer. */
constexpr std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Stateless hash of two 64-bit values. */
constexpr std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/** Stateless hash of three 64-bit values. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return hashCombine(hashCombine(a, b), c);
}

/**
 * Small, fast deterministic PRNG (xoshiro-style splitmix stream).
 *
 * Used for workload construction; never used by hardware models at
 * simulation time (those use stateless hashing so wrong-path replay is
 * reproducible).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x2545F4914F6CDD1DULL) {}

    /** Next raw 64-bit value. */
    std::uint64_t next()
    {
        state += 0x9e3779b97f4a7c15ULL;
        return mix64(state);
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish draw used for skewed size distributions: returns a value
     * in [lo, hi] biased towards lo with the given @p skew (>1 = stronger
     * bias to small values).
     */
    std::uint64_t
    skewed(std::uint64_t lo, std::uint64_t hi, double skew)
    {
        double u = uniform();
        double t = 1.0;
        for (double s = skew; s > 0; s -= 1.0) {
            t *= u;
        }
        return lo + static_cast<std::uint64_t>(t * static_cast<double>(hi - lo));
    }

  private:
    std::uint64_t state;
};

} // namespace udp

#endif // UDP_COMMON_RNG_H

/**
 * @file
 * Fundamental type aliases and architectural constants shared by every
 * module of the simulator.
 */

#ifndef UDP_COMMON_TYPES_H
#define UDP_COMMON_TYPES_H

#include <cstdint>
#include <limits>

namespace udp {

/** Byte address in the simulated address space. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Monotonically increasing id of a dynamic (in-flight) instruction. */
using InstSeq = std::uint64_t;

/** Index of a static instruction within a Program image. */
using InstIdx = std::uint32_t;

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kInvalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no sequence number". */
inline constexpr InstSeq kInvalidSeq = std::numeric_limits<InstSeq>::max();

/** Size of every synthetic instruction in bytes (fixed-width ISA). */
inline constexpr unsigned kInstrBytes = 4;

/** Cache line size used throughout the hierarchy. */
inline constexpr unsigned kLineBytes = 64;

/** Fetch block size processed by the decoupled frontend per FTQ entry. */
inline constexpr unsigned kFetchBlockBytes = 32;

/** Instructions per fetch block. */
inline constexpr unsigned kInstrsPerFetchBlock = kFetchBlockBytes / kInstrBytes;

/** Returns the cache line (aligned) address containing @p a. */
constexpr Addr lineAddr(Addr a) { return a & ~Addr{kLineBytes - 1}; }

/** Returns the fetch-block (aligned) address containing @p a. */
constexpr Addr fetchBlockAddr(Addr a) { return a & ~Addr{kFetchBlockBytes - 1}; }

} // namespace udp

#endif // UDP_COMMON_TYPES_H

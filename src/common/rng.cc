/**
 * @file
 * Out-of-line anchor for the rng translation unit (all hashing is inline;
 * this file exists so the common module owns an object file and stays easy
 * to extend).
 */

#include "common/rng.h"

namespace udp {

// Compile-time self checks of the mixer's basic sanity.
static_assert(mix64(0) != 0, "mixer must not map 0 -> 0");
static_assert(mix64(1) != mix64(2), "mixer must separate adjacent inputs");

} // namespace udp

/**
 * @file
 * Saturating counters used by predictors and the UDP/UFTQ control logic.
 */

#ifndef UDP_COMMON_SAT_COUNTER_H
#define UDP_COMMON_SAT_COUNTER_H

#include <cassert>
#include <cstdint>

namespace udp {

/**
 * An n-bit unsigned saturating counter.
 *
 * Counts in [0, 2^bits - 1]; increments and decrements clamp at the ends.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /** @param num_bits width; @param initial initial value (clamped). */
    explicit SatCounter(unsigned num_bits, unsigned initial = 0)
        : maxVal((1u << num_bits) - 1),
          val(initial > maxVal ? maxVal : initial)
    {
        assert(num_bits >= 1 && num_bits <= 16);
    }

    unsigned value() const { return val; }
    unsigned max() const { return maxVal; }

    void increment() { if (val < maxVal) ++val; }
    void decrement() { if (val > 0) --val; }
    void reset(unsigned v = 0) { val = v > maxVal ? maxVal : v; }

    /** True when in the upper half of the range ("taken" for bimodal use). */
    bool isSet() const { return val > maxVal / 2; }

    /** True when pegged at either end. */
    bool isSaturated() const { return val == 0 || val == maxVal; }

  private:
    unsigned maxVal = 3;
    unsigned val = 0;
};

/**
 * An n-bit signed saturating counter in [-2^(bits-1), 2^(bits-1)-1],
 * as used by TAGE prediction counters.
 */
class SignedSatCounter
{
  public:
    SignedSatCounter() = default;

    explicit SignedSatCounter(unsigned num_bits, int initial = 0)
        : minVal(-(1 << (num_bits - 1))), maxVal((1 << (num_bits - 1)) - 1),
          val(initial)
    {
        assert(num_bits >= 2 && num_bits <= 8);
        if (val < minVal) val = minVal;
        if (val > maxVal) val = maxVal;
    }

    int value() const { return val; }
    int min() const { return minVal; }
    int max() const { return maxVal; }

    /** Moves towards max (taken) or min (not taken). */
    void
    update(bool up)
    {
        if (up) {
            if (val < maxVal) ++val;
        } else {
            if (val > minVal) --val;
        }
    }

    /** Predicted direction: the sign bit (>= 0 means taken). */
    bool taken() const { return val >= 0; }

    /** Distance from the weak boundary; larger means more confident. */
    unsigned
    magnitude() const
    {
        return static_cast<unsigned>(val >= 0 ? val + 1 : -val);
    }

    /** True when pegged at either rail (maximum confidence). */
    bool isSaturated() const { return val == minVal || val == maxVal; }

    /** True when one step from flipping (minimum confidence). */
    bool isWeak() const { return val == 0 || val == -1; }

    void reset(int v = 0) { val = v < minVal ? minVal : (v > maxVal ? maxVal : v); }

  private:
    int minVal = -2;
    int maxVal = 1;
    int val = 0;
};

} // namespace udp

#endif // UDP_COMMON_SAT_COUNTER_H

#include "stats/histogram.h"

#include <algorithm>
#include <cstdio>

namespace udp {

void
Distribution::merge(const Distribution& other)
{
    if (other.n_ == 0) {
        return;
    }
    std::size_t common = std::min(buckets_.size(), other.buckets_.size());
    for (std::size_t i = 0; i < common; ++i) {
        buckets_[i] += other.buckets_[i];
    }
    // Geometry mismatch: spill the remainder into the overflow bucket so
    // count() stays exact.
    for (std::size_t i = common; i < other.buckets_.size(); ++i) {
        buckets_.back() += other.buckets_[i];
    }
    if (n_ == 0 || other.min_ < min_) {
        min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
}

void
Distribution::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    sum_ = 0;
    n_ = 0;
    min_ = 0;
    max_ = 0;
}

std::vector<std::pair<std::string, double>>
Distribution::summarize(const std::string& prefix) const
{
    return {
        {prefix + "_count", static_cast<double>(n_)},
        {prefix + "_sum", static_cast<double>(sum_)},
        {prefix + "_mean", mean()},
        {prefix + "_min", static_cast<double>(min())},
        {prefix + "_max", static_cast<double>(max_)},
        {prefix + "_p50", static_cast<double>(percentile(0.50))},
        {prefix + "_p90", static_cast<double>(percentile(0.90))},
        {prefix + "_p99", static_cast<double>(percentile(0.99))},
    };
}

std::string
Distribution::toString(const std::string& name) const
{
    char head[160];
    std::snprintf(head, sizeof(head),
                  "%s: n=%llu mean=%.2f min=%llu max=%llu p50=%llu "
                  "p99=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(n_), mean(),
                  static_cast<unsigned long long>(min()),
                  static_cast<unsigned long long>(max_),
                  static_cast<unsigned long long>(percentile(0.5)),
                  static_cast<unsigned long long>(percentile(0.99)));
    std::string out = head;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0) {
            continue;
        }
        char row[96];
        std::snprintf(row, sizeof(row), "  [%llu..] %llu\n",
                      static_cast<unsigned long long>(bucketLow(i)),
                      static_cast<unsigned long long>(buckets_[i]));
        out += row;
    }
    return out;
}

} // namespace udp

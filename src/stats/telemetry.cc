#include "stats/telemetry.h"

namespace udp {

const char*
pfSourceName(PfSource s)
{
    switch (s) {
    case PfSource::Fdip:
        return "fdip";
    case PfSource::UdpExtra:
        return "udp_extra";
    case PfSource::Eip:
        return "eip";
    case PfSource::Stream:
        return "stream";
    }
    return "unknown";
}

const char*
pfOutcomeName(PfOutcome o)
{
    switch (o) {
    case PfOutcome::Timely:
        return "timely";
    case PfOutcome::Late:
        return "late";
    case PfOutcome::Unused:
        return "unused";
    case PfOutcome::Polluting:
        return "polluting";
    case PfOutcome::Pending:
        return "pending";
    }
    return "unknown";
}

std::uint64_t
TelemetrySnapshot::issuedTotal() const
{
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kNumPfSources; ++s) {
        total += issued[s];
    }
    return total;
}

std::uint64_t
TelemetrySnapshot::outcomeTotal(PfOutcome o) const
{
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kNumPfSources; ++s) {
        total += outcomes[s][static_cast<std::size_t>(o)];
    }
    return total;
}

StatSet
TelemetrySnapshot::toStatSet() const
{
    StatSet s;
    s.add("pf_issued_total", static_cast<double>(issuedTotal()));
    for (std::size_t src = 0; src < kNumPfSources; ++src) {
        s.add(std::string("pf_issued_") +
                  pfSourceName(static_cast<PfSource>(src)),
              static_cast<double>(issued[src]));
    }
    for (std::size_t o = 0; o < kNumPfOutcomes; ++o) {
        auto outcome = static_cast<PfOutcome>(o);
        s.add(std::string("pf_") + pfOutcomeName(outcome) + "_total",
              static_cast<double>(outcomeTotal(outcome)));
        for (std::size_t src = 0; src < kNumPfSources; ++src) {
            s.add(std::string("pf_") + pfOutcomeName(outcome) + "_" +
                      pfSourceName(static_cast<PfSource>(src)),
                  static_cast<double>(outcomes[src][o]));
        }
    }
    s.addDistribution("pf_taxonomy", taxonomy);
    s.addDistribution("pf_late_by", lateBy);
    s.addDistribution("pf_fill_latency", fillLatency);
    s.addDistribution("pf_use_distance", useDistance);
    s.addDistribution("pf_unused_lifetime", unusedLifetime);
    s.add("interval_rows", static_cast<double>(intervals.size()));
    s.add("trace_events", static_cast<double>(events.size()));
    s.add("trace_truncated", traceTruncated ? 1.0 : 0.0);
    return s;
}

void
Telemetry::beginCycle(Cycle now, std::size_t ftq_occupancy)
{
    now_ = now;
    ftqOccSum_ += ftq_occupancy;
    ++ftqOccSamples_;
}

bool
Telemetry::intervalDue() const
{
    return now_ - intervalStart_ >= cfg_.intervalCycles;
}

void
Telemetry::closeInterval(const IntervalCounters& c)
{
    Cycle cycles = now_ - intervalStart_;
    if (cycles == 0) {
        return;
    }
    IntervalRow row;
    row.index = intervalIndex_;
    row.cycleStart = intervalStart_;
    row.cycleEnd = now_;
    row.instructions = c.retired - prev_.retired;
    row.ipc = static_cast<double>(row.instructions) /
              static_cast<double>(cycles);
    row.icacheMpki =
        ratio(static_cast<double>(c.ifetchMisses - prev_.ifetchMisses) *
                  1000.0,
              static_cast<double>(row.instructions));
    row.ftqOccupancy = ratio(static_cast<double>(ftqOccSum_),
                             static_cast<double>(ftqOccSamples_));
    row.prefetchesIssued = c.pfIssued - prev_.pfIssued;
    row.pfAccuracy =
        ratio(static_cast<double>(c.pfUseful - prev_.pfUseful),
              static_cast<double>(row.prefetchesIssued));
    std::uint64_t timely = acc_.outcomeTotal(PfOutcome::Timely);
    std::uint64_t late = acc_.outcomeTotal(PfOutcome::Late);
    std::uint64_t unused = acc_.outcomeTotal(PfOutcome::Unused) +
                           acc_.outcomeTotal(PfOutcome::Polluting);
    row.pfTimely = timely - prevTimely_;
    row.pfLate = late - prevLate_;
    row.pfUnused = unused - prevUnused_;
    acc_.intervals.push_back(row);

    if (cfg_.trace) {
        pushEvent({TraceEvent::Kind::Counter, kTrackCounters, "ipc", now_, 0,
                   0, row.ipc, nullptr});
        pushEvent({TraceEvent::Kind::Counter, kTrackCounters, "icache_mpki",
                   now_, 0, 0, row.icacheMpki, nullptr});
        pushEvent({TraceEvent::Kind::Counter, kTrackCounters,
                   "ftq_occupancy", now_, 0, 0, row.ftqOccupancy, nullptr});
        pushEvent({TraceEvent::Kind::Counter, kTrackCounters, "pf_accuracy",
                   now_, 0, 0, row.pfAccuracy, nullptr});
    }

    prev_ = c;
    prevTimely_ = timely;
    prevLate_ = late;
    prevUnused_ = unused;
    intervalStart_ = now_;
    ++intervalIndex_;
    ftqOccSum_ = 0;
    ftqOccSamples_ = 0;
}

void
Telemetry::onPrefetchIssued(Addr line, PfSource src)
{
    ++acc_.issued[static_cast<std::size_t>(src)];
    // A line can be re-prefetched after eviction; the fresh record wins
    // (the prior one must already have been classified to be evictable).
    live_[line] = PfRec{src, now_, kInvalidCycle, false};
    if (cfg_.trace) {
        pushEvent({TraceEvent::Kind::Span, kTrackPrefetch, pfSourceName(src),
                   now_, 0, line, 0.0, nullptr});
    }
}

void
Telemetry::onPrefetchFill(Addr line, bool displaced_valid)
{
    auto it = live_.find(line);
    if (it == live_.end()) {
        return; // warmup leftover or already classified Late
    }
    it->second.filledAt = now_;
    it->second.displacedValid = displaced_valid;
    acc_.fillLatency.sample(now_ - it->second.issuedAt);
}

void
Telemetry::onPrefetchLateMerge(Addr line, Cycle wait)
{
    auto it = live_.find(line);
    if (it == live_.end()) {
        return;
    }
    acc_.lateBy.sample(wait);
    classify(line, it->second, PfOutcome::Late);
    live_.erase(it);
}

void
Telemetry::onPrefetchFirstUse(Addr line)
{
    auto it = live_.find(line);
    if (it == live_.end()) {
        return;
    }
    if (it->second.filledAt != kInvalidCycle) {
        acc_.useDistance.sample(now_ - it->second.filledAt);
    }
    classify(line, it->second, PfOutcome::Timely);
    live_.erase(it);
}

void
Telemetry::onPrefetchEvicted(Addr line)
{
    auto it = live_.find(line);
    if (it == live_.end()) {
        return;
    }
    if (it->second.filledAt != kInvalidCycle) {
        acc_.unusedLifetime.sample(now_ - it->second.filledAt);
    }
    classify(line, it->second,
             it->second.displacedValid ? PfOutcome::Polluting
                                       : PfOutcome::Unused);
    live_.erase(it);
}

void
Telemetry::classify(Addr line, const PfRec& rec, PfOutcome outcome)
{
    ++acc_.outcomes[static_cast<std::size_t>(rec.src)]
                   [static_cast<std::size_t>(outcome)];
    acc_.taxonomy.sample(static_cast<std::uint64_t>(outcome));
    if (cfg_.trace) {
        pushEvent({TraceEvent::Kind::Span, kTrackPrefetch,
                   pfSourceName(rec.src), now_, 1, line, 0.0,
                   pfOutcomeName(outcome)});
    }
}

void
Telemetry::onFtqPush(Addr start_pc)
{
    if (cfg_.trace) {
        pushEvent({TraceEvent::Kind::Instant, kTrackPipeline, "ftq_push",
                   now_, 0, start_pc, 0.0, nullptr});
    }
}

void
Telemetry::onFtqFlush(std::size_t dropped)
{
    if (cfg_.trace) {
        pushEvent({TraceEvent::Kind::Instant, kTrackPipeline, "ftq_flush",
                   now_, 0, 0, static_cast<double>(dropped), nullptr});
    }
}

void
Telemetry::onResteer(Addr new_pc, bool from_decode)
{
    if (cfg_.trace) {
        pushEvent({TraceEvent::Kind::Instant, kTrackPipeline,
                   from_decode ? "decode_resteer" : "exec_resteer", now_, 0,
                   new_pc, 0.0, nullptr});
    }
}

void
Telemetry::onFetchStall(Addr line, Cycle start, Cycle end)
{
    if (cfg_.trace && end > start) {
        pushEvent({TraceEvent::Kind::Slice, kTrackPipeline,
                   "icache_miss_stall", start, end - start, line, 0.0,
                   nullptr});
    }
}

void
Telemetry::onUdpDrop(Addr line)
{
    if (cfg_.trace) {
        pushEvent({TraceEvent::Kind::Instant, kTrackUdp, "udp_drop", now_, 0,
                   line, 0.0, nullptr});
    }
}

void
Telemetry::onUsefulSetClear()
{
    if (cfg_.trace) {
        pushEvent({TraceEvent::Kind::Instant, kTrackUdp, "useful_set_clear",
                   now_, 0, 0, 0.0, nullptr});
    }
}

void
Telemetry::onFtqDepthChange(std::size_t depth)
{
    if (cfg_.trace) {
        pushEvent({TraceEvent::Kind::Counter, kTrackCounters, "ftq_depth",
                   now_, 0, 0, static_cast<double>(depth), nullptr});
    }
}

void
Telemetry::noteError(const std::string& kind, const std::string& component,
                     Cycle cycle, const std::string& dump)
{
    acc_.errorKind = kind;
    acc_.errorComponent = component;
    acc_.errorCycle = cycle;
    acc_.errorDump = dump;
}

void
Telemetry::clearStats()
{
    acc_ = TelemetrySnapshot{};
    live_.clear();
    windowStart_ = now_;
    intervalStart_ = now_;
    intervalIndex_ = 0;
    ftqOccSum_ = 0;
    ftqOccSamples_ = 0;
    prev_ = IntervalCounters{};
    prevTimely_ = 0;
    prevLate_ = 0;
    prevUnused_ = 0;
}

void
Telemetry::finalize()
{
    for (const auto& [line, rec] : live_) {
        classify(line, rec, PfOutcome::Pending);
    }
    live_.clear();
}

std::shared_ptr<const TelemetrySnapshot>
Telemetry::snapshot() const
{
    return std::make_shared<TelemetrySnapshot>(acc_);
}

void
Telemetry::pushEvent(const TraceEvent& ev)
{
    if (acc_.events.size() >= cfg_.maxTraceEvents) {
        acc_.traceTruncated = true;
        return;
    }
    acc_.events.push_back(ev);
}

} // namespace udp

/**
 * @file
 * Telemetry layer: prefetch lifecycle tracking, interval stats, and a
 * bounded trace-event log (docs/TELEMETRY.md).
 *
 * The paper's whole argument is measurement: every FDIP/UDP/EIP/stream
 * prefetch is followed from issue -> fill -> first-use / eviction and
 * classified into the utility taxonomy of PAPER.md S3-S5 (timely,
 * late-by-N-cycles, never-used, polluting). The classifications land in
 * Distribution histograms (stats/histogram.h), periodic IntervalRow
 * snapshots stream IPC / MPKI / FTQ occupancy / accuracy through the
 * existing sinks, and an optional bounded TraceEvent log feeds the
 * Chrome-trace exporter (stats/tracefile.h).
 *
 * Cost model: components hold a raw `Telemetry*` that is null when
 * telemetry is disabled, so every hook is a single pointer test on the
 * hot path. With telemetry off, simulation results and bench artifacts
 * are byte-identical to a build without this layer.
 */

#ifndef UDP_STATS_TELEMETRY_H
#define UDP_STATS_TELEMETRY_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "stats/histogram.h"
#include "stats/stats.h"

namespace udp {

/** Telemetry knobs; lives in SimConfig::telemetry. */
struct TelemetryConfig {
    /** Master switch. Off => Cpu never allocates a Telemetry object. */
    bool enabled = false;
    /** Interval-row period in cycles. */
    Cycle intervalCycles = 20'000;
    /** Record trace events for the Chrome-trace exporter. */
    bool trace = false;
    /** Trace-event cap per run; excess events are dropped (and flagged). */
    std::size_t maxTraceEvents = 200'000;
    /** If non-empty, runSim writes a Chrome trace here when a SimError
     *  aborts the run (post-mortem slice with the dumpState() payload). */
    std::string errorTracePath;
};

/** Who issued a prefetch. Indexes Telemetry counters; keep dense. */
enum class PfSource : std::uint8_t {
    Fdip = 0,     ///< FDIP probe of the fetched line itself
    UdpExtra = 1, ///< UDP super-block extra line
    Eip = 2,      ///< EIP record replay
    Stream = 3,   ///< L1D stream prefetcher
};
inline constexpr std::size_t kNumPfSources = 4;
const char* pfSourceName(PfSource s);

/** Lifecycle outcome of a tracked prefetch. Indexes counters; keep dense. */
enum class PfOutcome : std::uint8_t {
    Timely = 0,    ///< demand hit the resident prefetched line
    Late = 1,      ///< demand merged with the still-in-flight fill
    Unused = 2,    ///< filled line evicted without any demand hit
    Polluting = 3, ///< unused AND its fill displaced a valid line
    Pending = 4,   ///< still live when the measurement window closed
};
inline constexpr std::size_t kNumPfOutcomes = 5;
const char* pfOutcomeName(PfOutcome o);

/** One bounded-log trace event (consumed by stats/tracefile.*). */
struct TraceEvent {
    enum class Kind : std::uint8_t {
        Slice,   ///< duration [ts, ts+dur] on a track (Chrome ph "X")
        Instant, ///< point event (Chrome ph "i")
        Counter, ///< sampled counter value (Chrome ph "C")
        Span,    ///< async begin/end pair keyed by addr (Chrome ph "b"/"e")
    };
    Kind kind;
    std::uint8_t track;      ///< kTrack* constant below
    const char* name;        ///< static string; never owned
    Cycle ts = 0;
    Cycle dur = 0;           ///< Slice duration / Span end (0 = begin)
    Addr addr = 0;           ///< line address / async-span id
    double value = 0.0;      ///< Counter payload
    const char* detail = nullptr; ///< optional static annotation
};

inline constexpr std::uint8_t kTrackPipeline = 0;
inline constexpr std::uint8_t kTrackPrefetch = 1;
inline constexpr std::uint8_t kTrackUdp = 2;
inline constexpr std::uint8_t kTrackCounters = 3;

/** One periodic interval snapshot row (sink schema in stats/sink.h). */
struct IntervalRow {
    std::uint64_t index = 0;
    Cycle cycleStart = 0;
    Cycle cycleEnd = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    double icacheMpki = 0.0;
    double ftqOccupancy = 0.0;
    std::uint64_t prefetchesIssued = 0;
    double pfAccuracy = 0.0;
    std::uint64_t pfTimely = 0;
    std::uint64_t pfLate = 0;
    std::uint64_t pfUnused = 0;
};

/**
 * Immutable end-of-run telemetry result, shared out of the simulator via
 * Report::telemetry. Not part of the serialized report schema: sinks emit
 * it through dedicated interval / summary writers instead, keeping report
 * JSON/CSV byte-identical whether or not telemetry ran.
 */
struct TelemetrySnapshot {
    /** Issued prefetches per source (measurement window only). */
    std::uint64_t issued[kNumPfSources] = {};
    /** Outcome counts per source x outcome. */
    std::uint64_t outcomes[kNumPfSources][kNumPfOutcomes] = {};

    /** Linear histogram, one bucket per PfOutcome; sum == issued total. */
    Distribution taxonomy{BucketScale::Linear, kNumPfOutcomes, 1};
    /** Cycles a demand fetch waited on a late prefetch fill (log2). */
    Distribution lateBy{BucketScale::Log2, 24};
    /** Issue -> fill latency of completed prefetches (log2). */
    Distribution fillLatency{BucketScale::Log2, 24};
    /** Fill -> first demand use distance of timely prefetches (log2). */
    Distribution useDistance{BucketScale::Log2, 28};
    /** Fill -> eviction lifetime of never-used prefetches (log2). */
    Distribution unusedLifetime{BucketScale::Log2, 28};

    std::vector<IntervalRow> intervals;
    std::vector<TraceEvent> events;
    bool traceTruncated = false;

    /** SimError post-mortem annotation (empty when the run completed). */
    std::string errorKind;
    std::string errorComponent;
    Cycle errorCycle = 0;
    std::string errorDump;

    std::uint64_t issuedTotal() const;
    std::uint64_t outcomeTotal(PfOutcome o) const;
    /** Flattens the taxonomy + latency distributions into summary stats. */
    StatSet toStatSet() const;
};

/**
 * Live telemetry collector owned by Cpu (only when
 * SimConfig::telemetry.enabled). Components receive a raw pointer via
 * setTelemetry() and null-check it at each hook site.
 */
class Telemetry
{
  public:
    explicit Telemetry(const TelemetryConfig& cfg) : cfg_(cfg) {}

    // ----- per-cycle driving (called by Cpu) ------------------------------
    /** Start-of-cycle: advances the clock, samples FTQ occupancy. */
    void beginCycle(Cycle now, std::size_t ftq_occupancy);
    /** True when the current cycle closes an interval. */
    bool intervalDue() const;
    /** Cumulative counters the Cpu passes when an interval closes. */
    struct IntervalCounters {
        std::uint64_t retired = 0;
        std::uint64_t ifetchMisses = 0;
        std::uint64_t pfIssued = 0;
        std::uint64_t pfUseful = 0;
        std::uint64_t pfUnused = 0;
    };
    void closeInterval(const IntervalCounters& c);
    /** Seeds the interval-delta baseline with the current cumulative
     *  counters (call right after clearStats: retired() is not reset by
     *  the measurement-window clear). */
    void setBaseline(const IntervalCounters& c) { prev_ = c; }

    // ----- prefetch lifecycle hooks ---------------------------------------
    void onPrefetchIssued(Addr line, PfSource src);
    /** MSHR fill drained into the cache still marked prefetch.
     *  @p displaced_valid: the insert evicted a valid resident line. */
    void onPrefetchFill(Addr line, bool displaced_valid);
    /** Demand fetch merged with an in-flight prefetch; waited @p wait. */
    void onPrefetchLateMerge(Addr line, Cycle wait);
    /** Demand hit a resident line with its prefetch bit set. */
    void onPrefetchFirstUse(Addr line);
    /** A filled, never-used prefetched line was evicted. */
    void onPrefetchEvicted(Addr line);

    // ----- trace hooks ----------------------------------------------------
    void onFtqPush(Addr start_pc);
    void onFtqFlush(std::size_t dropped);
    void onResteer(Addr new_pc, bool from_decode);
    void onFetchStall(Addr line, Cycle start, Cycle end);
    void onUdpDrop(Addr line);
    void onUsefulSetClear();
    void onFtqDepthChange(std::size_t depth);

    /** SimError post-mortem: record the error + dumpState() payload. */
    void noteError(const std::string& kind, const std::string& component,
                   Cycle cycle, const std::string& dump);

    /** Resets all window state (start of the measurement window). Live
     *  in-flight records are dropped: only prefetches issued inside the
     *  window are classified, so the taxonomy identity
     *  timely+late+unused+polluting+pending == issued holds exactly. */
    void clearStats();

    /** Classifies still-live records as Pending. Call once at run end. */
    void finalize();

    /** Copies the accumulated state into an immutable snapshot. */
    std::shared_ptr<const TelemetrySnapshot> snapshot() const;

    Cycle now() const { return now_; }
    const TelemetryConfig& config() const { return cfg_; }

  private:
    struct PfRec {
        PfSource src;
        Cycle issuedAt;
        Cycle filledAt = kInvalidCycle;
        bool displacedValid = false;
    };

    void classify(Addr line, const PfRec& rec, PfOutcome outcome);
    void pushEvent(const TraceEvent& ev);

    TelemetryConfig cfg_;
    TelemetrySnapshot acc_;
    std::unordered_map<Addr, PfRec> live_;

    Cycle now_ = 0;
    Cycle windowStart_ = 0;
    Cycle intervalStart_ = 0;
    std::uint64_t intervalIndex_ = 0;

    // FTQ occupancy accumulation for the open interval.
    std::uint64_t ftqOccSum_ = 0;
    std::uint64_t ftqOccSamples_ = 0;

    // Cumulative baselines at the previous interval close.
    IntervalCounters prev_{};
    std::uint64_t prevTimely_ = 0;
    std::uint64_t prevLate_ = 0;
    std::uint64_t prevUnused_ = 0;
};

} // namespace udp

#endif // UDP_STATS_TELEMETRY_H

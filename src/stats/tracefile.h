/**
 * @file
 * Chrome-trace (Trace Event Format) exporter: renders the telemetry
 * layer's bounded event log — pipeline stalls, resteers, prefetch
 * lifecycles, UDP events, interval counters and SimError post-mortems —
 * as a JSON file loadable in chrome://tracing or https://ui.perfetto.dev.
 *
 * Mapping (docs/TELEMETRY.md):
 *  - one Chrome "process" per job (pid = job index + 1, named after the
 *    workload/config), with one thread per telemetry track;
 *  - TraceEvent::Slice  -> ph "X" complete slices (icache-miss stalls);
 *  - TraceEvent::Instant-> ph "i" thread-scoped instants (resteers, ...);
 *  - TraceEvent::Counter-> ph "C" counter samples (IPC, MPKI, FTQ depth);
 *  - prefetch lifecycles -> ph "b"/"e" async spans keyed by line address,
 *    so overlapping in-flight prefetches render as separate arrows;
 *  - a SimError recorded in the snapshot -> a final "sim_error" instant
 *    whose args carry the error kind, component and Cpu::dumpState().
 * Timestamps are microseconds in the file; we map 1 cycle = 1 us.
 */

#ifndef UDP_STATS_TRACEFILE_H
#define UDP_STATS_TRACEFILE_H

#include <memory>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "stats/telemetry.h"

namespace udp {

/** One simulated run to render (name becomes the process label). */
struct TraceJob
{
    std::string name;
    std::shared_ptr<const TelemetrySnapshot> snap;
    /** Optional cycle-loop self-profile (Report::profile): rendered as a
     *  "self_profile" counter track — per-interval host microseconds per
     *  phase, stacked (docs/OBSERVABILITY.md). */
    std::shared_ptr<const obs::ProfileSnapshot> prof;
};

/** Renders the jobs as a Trace Event Format JSON string. */
std::string chromeTraceJson(const std::vector<TraceJob>& jobs);

/**
 * Writes chromeTraceJson() to @p path (atomically via rename).
 * Returns false on I/O failure.
 */
bool writeChromeTrace(const std::string& path,
                      const std::vector<TraceJob>& jobs);

} // namespace udp

#endif // UDP_STATS_TRACEFILE_H

/**
 * @file
 * Lightweight named-statistics support.
 *
 * Components keep plain uint64_t members for speed and export them into a
 * StatSet when a report is requested. StatSet supports dump/diff so benches
 * can measure post-warmup windows.
 */

#ifndef UDP_STATS_STATS_H
#define UDP_STATS_STATS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace udp {

/** An ordered collection of (name, value) statistics. */
class StatSet
{
  public:
    /** Appends a statistic; names should be unique within a set. */
    void add(std::string name, double value);

    /** Value lookup; returns 0 and sets @p found=false when missing. */
    double get(const std::string& name, bool* found = nullptr) const;

    /** True when a statistic of that name exists. */
    bool has(const std::string& name) const;

    const std::vector<std::pair<std::string, double>>& entries() const
    {
        return items;
    }

    /** Renders "name = value" lines, one per entry. */
    std::string toString() const;

  private:
    std::vector<std::pair<std::string, double>> items;
};

/** Safe ratio helper: returns 0 when the denominator is 0. */
inline double
ratio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

} // namespace udp

#endif // UDP_STATS_STATS_H

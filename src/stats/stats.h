/**
 * @file
 * Lightweight named-statistics support.
 *
 * Components keep plain uint64_t members for speed and export them into a
 * StatSet when a report is requested. StatSet supports dump/diff so benches
 * can measure post-warmup windows. Besides scalars, a StatSet can carry
 * Distribution stats (stats/histogram.h): addDistribution() flattens the
 * histogram into schema-stable scalar summary entries for the sinks while
 * keeping the full bucketed form accessible via distributions().
 */

#ifndef UDP_STATS_STATS_H
#define UDP_STATS_STATS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"

namespace udp {

/** An ordered collection of (name, value) statistics. */
class StatSet
{
  public:
    /**
     * Appends a statistic; names must be unique within a set (duplicate
     * keys would corrupt the JSON sink output). Adding an existing name
     * asserts in debug builds; in release builds the last value wins
     * (the existing entry is overwritten in place, order preserved).
     */
    void add(std::string name, double value);

    /**
     * Adds a Distribution stat: appends its scalar summary entries
     * ("<name>_count", "_sum", "_mean", "_min", "_max", "_p50", "_p90",
     * "_p99") and retains the full histogram (see distributions()).
     */
    void addDistribution(std::string name, const Distribution& d);

    /** Value lookup; returns 0 and sets @p found=false when missing. */
    double get(const std::string& name, bool* found = nullptr) const;

    /** True when a statistic of that name exists. */
    bool has(const std::string& name) const;

    const std::vector<std::pair<std::string, double>>& entries() const
    {
        return items;
    }

    /** Full bucketed distributions added via addDistribution(). */
    const std::vector<std::pair<std::string, Distribution>>&
    distributions() const
    {
        return dists;
    }

    /** Renders "name = value" lines (plus distribution buckets). */
    std::string toString() const;

  private:
    std::vector<std::pair<std::string, double>> items;
    std::vector<std::pair<std::string, Distribution>> dists;
};

/** Safe ratio helper: returns 0 when the denominator is 0. */
inline double
ratio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

} // namespace udp

#endif // UDP_STATS_STATS_H

#include "stats/sink.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "sim/runner.h"

namespace udp {

namespace {

/**
 * Crash-safe row append: the complete line (terminator included) goes to
 * the stream in one buffered write and is flushed before returning, so a
 * killed process can lose at most a partial *final* line — every earlier
 * line is intact and parseable (docs/ROBUSTNESS.md).
 */
void
writeLineAtomic(std::ofstream& out, std::string line)
{
    line += '\n';
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.flush();
}

} // namespace

std::string
formatNumber(double v)
{
    char buf[64];
    // Counters serialize as plain integers (not "4e+05"); everything else
    // uses the shortest representation that round-trips.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        std::to_chars_result res = std::to_chars(
            buf, buf + sizeof(buf), static_cast<long long>(v));
        return std::string(buf, res.ptr);
    }
    std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
jsonUnescape(const std::string& s, std::string* out)
{
    out->clear();
    out->reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (c != '\\') {
            *out += c;
            continue;
        }
        if (++i >= s.size()) {
            return false;
        }
        switch (s[i]) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
            if (i + 4 >= s.size()) {
                return false;
            }
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
                char h = s[++i];
                v <<= 4;
                if (h >= '0' && h <= '9') {
                    v |= static_cast<unsigned>(h - '0');
                } else if (h >= 'a' && h <= 'f') {
                    v |= static_cast<unsigned>(h - 'a' + 10);
                } else if (h >= 'A' && h <= 'F') {
                    v |= static_cast<unsigned>(h - 'A' + 10);
                } else {
                    return false;
                }
            }
            // jsonEscape only emits \u00xx for control bytes.
            *out += static_cast<char>(v & 0xFF);
            break;
        }
        default: return false;
        }
    }
    return true;
}

namespace {

/** CSV field escaping per RFC 4180 (quote when needed). */
std::string
csvEscape(const std::string& s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos) {
        return s;
    }
    std::string out = "\"";
    for (char c : s) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace

std::vector<std::string>
reportSchemaKeys()
{
    std::vector<std::string> keys = {"workload", "config"};
    // Bind the StatSet before iterating: entries() references its
    // internals, and a temporary would die before the loop body.
    StatSet stats = Report{}.toStatSet();
    for (const auto& [name, value] : stats.entries()) {
        (void)value;
        keys.push_back(name);
    }
    return keys;
}

std::string
reportToJsonLine(const Report& r)
{
    std::string out = "{\"workload\":\"" + jsonEscape(r.workload) +
                      "\",\"config\":\"" + jsonEscape(r.configName) + "\"";
    StatSet stats = r.toStatSet();
    for (const auto& [name, value] : stats.entries()) {
        out += ",\"" + name + "\":" + formatNumber(value);
    }
    out += '}';
    return out;
}

std::string
reportCsvHeader()
{
    std::string out;
    for (const std::string& key : reportSchemaKeys()) {
        if (!out.empty()) {
            out += ',';
        }
        out += key;
    }
    return out;
}

std::string
reportToCsvRow(const Report& r)
{
    std::string out = csvEscape(r.workload) + ',' + csvEscape(r.configName);
    StatSet stats = r.toStatSet();
    for (const auto& [name, value] : stats.entries()) {
        (void)name;
        out += ',' + formatNumber(value);
    }
    return out;
}

namespace {

/** Assigns one parsed numeric stat to its Report field; the key table
 *  mirrors Report::toStatSet() (tested by Sink.ReportJsonRoundTrip). */
bool
setReportStat(Report* r, const std::string& key, double v)
{
    auto u64 = [v] { return static_cast<std::uint64_t>(v); };
    if (key == "instructions") {
        r->instructions = u64();
    } else if (key == "cycles") {
        r->cycles = u64();
    } else if (key == "ipc") {
        r->ipc = v;
    } else if (key == "icache_mpki") {
        r->icacheMpki = v;
    } else if (key == "mshr_hits_pki") {
        r->mshrHitsPki = v;
    } else if (key == "timeliness") {
        r->timeliness = v;
    } else if (key == "l1_hit_ratio") {
        r->l1HitRatio = v;
    } else if (key == "lost_instr_per_kilo") {
        r->lostInstrPerKilo = v;
    } else if (key == "prefetches_emitted") {
        r->prefetchesEmitted = u64();
    } else if (key == "onpath_ratio") {
        r->onPathRatio = v;
    } else if (key == "usefulness") {
        r->usefulness = v;
    } else if (key == "usefulness_hw") {
        r->usefulnessHw = v;
    } else if (key == "avg_ftq_occupancy") {
        r->avgFtqOccupancy = v;
    } else if (key == "branch_mpki") {
        r->branchMpki = v;
    } else if (key == "cond_mispredict_rate") {
        r->condMispredictRate = v;
    } else if (key == "resteers") {
        r->resteers = u64();
    } else if (key == "decode_corrections") {
        r->decodeCorrections = u64();
    } else if (key == "udp_dropped") {
        r->udpDropped = u64();
    } else if (key == "udp_filtered_emits") {
        r->udpFilteredEmits = u64();
    } else if (key == "udp_learned") {
        r->udpLearned = u64();
    } else {
        return false;
    }
    return true;
}

/** Scans a quoted JSON string starting at s[pos] == '"'; leaves pos one
 *  past the closing quote and returns the unescaped content. */
bool
scanJsonString(const std::string& s, std::size_t* pos, std::string* out)
{
    if (*pos >= s.size() || s[*pos] != '"') {
        return false;
    }
    std::size_t start = ++*pos;
    while (*pos < s.size() && s[*pos] != '"') {
        if (s[*pos] == '\\') {
            ++*pos; // skip the escaped character (covers \")
        }
        ++*pos;
    }
    if (*pos >= s.size()) {
        return false;
    }
    std::string raw = s.substr(start, *pos - start);
    ++*pos; // closing quote
    return jsonUnescape(raw, out);
}

} // namespace

bool
reportFromJsonLine(const std::string& line, Report* out)
{
    Report r;
    std::size_t pos = 0;
    if (pos >= line.size() || line[pos] != '{') {
        return false;
    }
    ++pos;
    bool first = true;
    while (pos < line.size() && line[pos] != '}') {
        if (!first && line[pos] == ',') {
            ++pos;
        }
        first = false;
        std::string key;
        if (!scanJsonString(line, &pos, &key)) {
            return false;
        }
        if (pos >= line.size() || line[pos] != ':') {
            return false;
        }
        ++pos;
        if (key == "workload" || key == "config") {
            std::string val;
            if (!scanJsonString(line, &pos, &val)) {
                return false;
            }
            (key == "workload" ? r.workload : r.configName) = val;
            continue;
        }
        std::size_t end = pos;
        while (end < line.size() && line[end] != ',' && line[end] != '}') {
            ++end;
        }
        double v = 0.0;
        std::from_chars_result res =
            std::from_chars(line.data() + pos, line.data() + end, v);
        if (res.ec != std::errc{} || res.ptr != line.data() + end) {
            return false;
        }
        if (!setReportStat(&r, key, v)) {
            return false; // unknown key, or a failure row ("error_kind")
        }
        pos = end;
    }
    if (pos >= line.size() || line[pos] != '}') {
        return false;
    }
    *out = std::move(r);
    return true;
}

std::vector<std::string>
failureSchemaKeys()
{
    return {"workload", "config",     "error_kind", "component",
            "cycle",    "attempts",   "message",    "dump_path",
            "signal",   "max_rss_kb", "user_sec",   "sys_sec",
            "stderr_tail"};
}

std::string
failureToJsonLine(const FailureRow& f)
{
    std::string out = "{\"workload\":\"" + jsonEscape(f.workload) +
                      "\",\"config\":\"" + jsonEscape(f.config) +
                      "\",\"error_kind\":\"" + jsonEscape(f.errorKind) +
                      "\",\"component\":\"" + jsonEscape(f.component) +
                      "\",\"cycle\":" + std::to_string(f.cycle) +
                      ",\"attempts\":" + std::to_string(f.attempts) +
                      ",\"message\":\"" + jsonEscape(f.message) +
                      "\",\"dump_path\":\"" + jsonEscape(f.dumpPath) +
                      "\",\"signal\":\"" + jsonEscape(f.signal) +
                      "\",\"max_rss_kb\":" + std::to_string(f.maxRssKb) +
                      ",\"user_sec\":" + formatNumber(f.userSec) +
                      ",\"sys_sec\":" + formatNumber(f.sysSec) +
                      ",\"stderr_tail\":\"" + jsonEscape(f.stderrTail) +
                      "\"}";
    return out;
}

std::string
failureCsvHeader()
{
    std::string out;
    for (const std::string& key : failureSchemaKeys()) {
        if (!out.empty()) {
            out += ',';
        }
        out += key;
    }
    return out;
}

std::string
failureToCsvRow(const FailureRow& f)
{
    // Flatten the stderr tail: quoted embedded newlines are legal CSV,
    // but one physical line per row is what makes the artifact
    // crash-safe for line-oriented readers (grep, wc, tail -f).
    std::string tail;
    tail.reserve(f.stderrTail.size());
    for (char c : f.stderrTail) {
        if (c == '\n') {
            tail += "\\n";
        } else if (c == '\r') {
            tail += "\\r";
        } else {
            tail += c;
        }
    }
    return csvEscape(f.workload) + ',' + csvEscape(f.config) + ',' +
           csvEscape(f.errorKind) + ',' + csvEscape(f.component) + ',' +
           std::to_string(f.cycle) + ',' + std::to_string(f.attempts) +
           ',' + csvEscape(f.message) + ',' + csvEscape(f.dumpPath) + ',' +
           csvEscape(f.signal) + ',' + std::to_string(f.maxRssKb) + ',' +
           formatNumber(f.userSec) + ',' + formatNumber(f.sysSec) + ',' +
           csvEscape(tail);
}

bool
ReportSink::openJson(const std::string& path)
{
    json.open(path, std::ios::out | std::ios::trunc);
    if (!json.is_open()) {
        std::fprintf(stderr, "[udp] cannot open JSON sink \"%s\"\n",
                     path.c_str());
        return false;
    }
    return true;
}

bool
ReportSink::openCsv(const std::string& path)
{
    csv.open(path, std::ios::out | std::ios::trunc);
    if (!csv.is_open()) {
        std::fprintf(stderr, "[udp] cannot open CSV sink \"%s\"\n",
                     path.c_str());
        return false;
    }
    csvPath = path;
    writeLineAtomic(csv, reportCsvHeader());
    return true;
}

void
ReportSink::write(const Report& r)
{
    if (json.is_open()) {
        writeLineAtomic(json, reportToJsonLine(r));
    }
    if (csv.is_open()) {
        writeLineAtomic(csv, reportToCsvRow(r));
    }
}

void
ReportSink::writeAll(const std::vector<Report>& reports)
{
    for (const Report& r : reports) {
        write(r);
    }
}

void
ReportSink::writeFailure(const FailureRow& f)
{
    ++failures;
    if (json.is_open()) {
        writeLineAtomic(json, failureToJsonLine(f));
    }
    if (csv.is_open() && !failureCsv.is_open()) {
        // Lazy sibling file: a clean sweep leaves no failure artifact,
        // so "<name>.failures.csv exists" alone signals trouble.
        std::string path = csvPath;
        const std::string ext = ".csv";
        if (path.size() >= ext.size() &&
            path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
            path.resize(path.size() - ext.size());
        }
        path += ".failures.csv";
        failureCsv.open(path, std::ios::out | std::ios::trunc);
        if (!failureCsv.is_open()) {
            std::fprintf(stderr, "[udp] cannot open failure CSV \"%s\"\n",
                         path.c_str());
        } else {
            writeLineAtomic(failureCsv, failureCsvHeader());
        }
    }
    if (failureCsv.is_open()) {
        writeLineAtomic(failureCsv, failureToCsvRow(f));
    }
}

void
ReportSink::close()
{
    if (json.is_open()) {
        json.close();
    }
    if (csv.is_open()) {
        csv.close();
    }
    if (failureCsv.is_open()) {
        failureCsv.close();
    }
}

// ----- telemetry rows ---------------------------------------------------

namespace {

/** Ordered (key, value) pairs of one interval row's numeric fields. */
std::vector<std::pair<std::string, double>>
intervalEntries(const IntervalRow& row)
{
    return {
        {"interval", static_cast<double>(row.index)},
        {"cycle_start", static_cast<double>(row.cycleStart)},
        {"cycle_end", static_cast<double>(row.cycleEnd)},
        {"instructions", static_cast<double>(row.instructions)},
        {"ipc", row.ipc},
        {"icache_mpki", row.icacheMpki},
        {"ftq_occupancy", row.ftqOccupancy},
        {"prefetches_issued", static_cast<double>(row.prefetchesIssued)},
        {"pf_accuracy", row.pfAccuracy},
        {"pf_timely", static_cast<double>(row.pfTimely)},
        {"pf_late", static_cast<double>(row.pfLate)},
        {"pf_unused", static_cast<double>(row.pfUnused)},
    };
}

} // namespace

std::vector<std::string>
intervalSchemaKeys()
{
    std::vector<std::string> keys = {"workload", "config"};
    for (const auto& [name, value] : intervalEntries(IntervalRow{})) {
        (void)value;
        keys.push_back(name);
    }
    return keys;
}

std::string
intervalToJsonLine(const std::string& workload, const std::string& config,
                   const IntervalRow& row)
{
    std::string out = "{\"row_type\":\"interval\",\"workload\":\"" +
                      jsonEscape(workload) + "\",\"config\":\"" +
                      jsonEscape(config) + "\"";
    for (const auto& [name, value] : intervalEntries(row)) {
        out += ",\"" + name + "\":" + formatNumber(value);
    }
    out += "}";
    return out;
}

std::string
intervalCsvHeader()
{
    std::string out;
    for (const std::string& key : intervalSchemaKeys()) {
        if (!out.empty()) {
            out += ',';
        }
        out += key;
    }
    return out;
}

std::string
intervalToCsvRow(const std::string& workload, const std::string& config,
                 const IntervalRow& row)
{
    std::string out = csvEscape(workload) + ',' + csvEscape(config);
    for (const auto& [name, value] : intervalEntries(row)) {
        (void)name;
        out += ',' + formatNumber(value);
    }
    return out;
}

std::string
telemetrySummaryToJsonLine(const std::string& workload,
                           const std::string& config,
                           const TelemetrySnapshot& snap)
{
    std::string out = "{\"row_type\":\"telemetry_summary\",\"workload\":\"" +
                      jsonEscape(workload) + "\",\"config\":\"" +
                      jsonEscape(config) + "\"";
    StatSet stats = snap.toStatSet();
    for (const auto& [name, value] : stats.entries()) {
        out += ",\"" + name + "\":" + formatNumber(value);
    }
    out += "}";
    return out;
}

std::string
profileSummaryToJsonLine(const std::string& workload,
                         const std::string& config,
                         const obs::ProfileSnapshot& prof)
{
    std::string out = "{\"row_type\":\"profile_summary\",\"workload\":\"" +
                      jsonEscape(workload) + "\",\"config\":\"" +
                      jsonEscape(config) +
                      "\",\"cycles\":" + std::to_string(prof.cycles) +
                      ",\"total_sec\":" + formatNumber(prof.totalSec);
    for (std::size_t i = 0; i < obs::kNumProfPhases; ++i) {
        obs::ProfPhase p = static_cast<obs::ProfPhase>(i);
        std::string name = obs::profPhaseName(p);
        out += ",\"phase_" + name +
               "_sec\":" + formatNumber(prof.phaseSec[i]);
        out += ",\"phase_" + name +
               "_pct\":" + formatNumber(prof.phaseFrac(p) * 100.0);
    }
    out += "}";
    return out;
}

bool
TelemetrySink::openJson(const std::string& path)
{
    json.open(path, std::ios::out | std::ios::trunc);
    if (!json.is_open()) {
        std::fprintf(stderr, "[udp] cannot open telemetry JSON \"%s\"\n",
                     path.c_str());
        return false;
    }
    return true;
}

bool
TelemetrySink::openCsv(const std::string& path)
{
    csv.open(path, std::ios::out | std::ios::trunc);
    if (!csv.is_open()) {
        std::fprintf(stderr, "[udp] cannot open telemetry CSV \"%s\"\n",
                     path.c_str());
        return false;
    }
    writeLineAtomic(csv, intervalCsvHeader());
    return true;
}

void
TelemetrySink::writeRun(const std::string& workload,
                        const std::string& config,
                        const TelemetrySnapshot& snap)
{
    for (const IntervalRow& row : snap.intervals) {
        if (json.is_open()) {
            writeLineAtomic(json, intervalToJsonLine(workload, config, row));
        }
        if (csv.is_open()) {
            writeLineAtomic(csv, intervalToCsvRow(workload, config, row));
        }
    }
    if (json.is_open()) {
        writeLineAtomic(json,
                        telemetrySummaryToJsonLine(workload, config, snap));
    }
}

void
TelemetrySink::close()
{
    if (json.is_open()) {
        json.close();
    }
    if (csv.is_open()) {
        csv.close();
    }
}

} // namespace udp

#include "stats/sink.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "sim/runner.h"

namespace udp {

namespace {

/** Shortest round-trip decimal rendering of @p v ("400000", "0.85"). */
std::string
formatNumber(double v)
{
    char buf[64];
    // Counters serialize as plain integers (not "4e+05"); everything else
    // uses the shortest representation that round-trips.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        std::to_chars_result res = std::to_chars(
            buf, buf + sizeof(buf), static_cast<long long>(v));
        return std::string(buf, res.ptr);
    }
    std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

/** JSON string escaping (quotes, backslash, control characters). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** CSV field escaping per RFC 4180 (quote when needed). */
std::string
csvEscape(const std::string& s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos) {
        return s;
    }
    std::string out = "\"";
    for (char c : s) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace

std::vector<std::string>
reportSchemaKeys()
{
    std::vector<std::string> keys = {"workload", "config"};
    // Bind the StatSet before iterating: entries() references its
    // internals, and a temporary would die before the loop body.
    StatSet stats = Report{}.toStatSet();
    for (const auto& [name, value] : stats.entries()) {
        (void)value;
        keys.push_back(name);
    }
    return keys;
}

std::string
reportToJsonLine(const Report& r)
{
    std::string out = "{\"workload\":\"" + jsonEscape(r.workload) +
                      "\",\"config\":\"" + jsonEscape(r.configName) + "\"";
    StatSet stats = r.toStatSet();
    for (const auto& [name, value] : stats.entries()) {
        out += ",\"" + name + "\":" + formatNumber(value);
    }
    out += '}';
    return out;
}

std::string
reportCsvHeader()
{
    std::string out;
    for (const std::string& key : reportSchemaKeys()) {
        if (!out.empty()) {
            out += ',';
        }
        out += key;
    }
    return out;
}

std::string
reportToCsvRow(const Report& r)
{
    std::string out = csvEscape(r.workload) + ',' + csvEscape(r.configName);
    StatSet stats = r.toStatSet();
    for (const auto& [name, value] : stats.entries()) {
        (void)name;
        out += ',' + formatNumber(value);
    }
    return out;
}

std::vector<std::string>
failureSchemaKeys()
{
    return {"workload", "config",    "error_kind", "component",
            "cycle",    "attempts",  "message",    "dump_path"};
}

std::string
failureToJsonLine(const FailureRow& f)
{
    std::string out = "{\"workload\":\"" + jsonEscape(f.workload) +
                      "\",\"config\":\"" + jsonEscape(f.config) +
                      "\",\"error_kind\":\"" + jsonEscape(f.errorKind) +
                      "\",\"component\":\"" + jsonEscape(f.component) +
                      "\",\"cycle\":" + std::to_string(f.cycle) +
                      ",\"attempts\":" + std::to_string(f.attempts) +
                      ",\"message\":\"" + jsonEscape(f.message) +
                      "\",\"dump_path\":\"" + jsonEscape(f.dumpPath) + "\"}";
    return out;
}

std::string
failureCsvHeader()
{
    std::string out;
    for (const std::string& key : failureSchemaKeys()) {
        if (!out.empty()) {
            out += ',';
        }
        out += key;
    }
    return out;
}

std::string
failureToCsvRow(const FailureRow& f)
{
    return csvEscape(f.workload) + ',' + csvEscape(f.config) + ',' +
           csvEscape(f.errorKind) + ',' + csvEscape(f.component) + ',' +
           std::to_string(f.cycle) + ',' + std::to_string(f.attempts) +
           ',' + csvEscape(f.message) + ',' + csvEscape(f.dumpPath);
}

bool
ReportSink::openJson(const std::string& path)
{
    json.open(path, std::ios::out | std::ios::trunc);
    if (!json.is_open()) {
        std::fprintf(stderr, "[udp] cannot open JSON sink \"%s\"\n",
                     path.c_str());
        return false;
    }
    return true;
}

bool
ReportSink::openCsv(const std::string& path)
{
    csv.open(path, std::ios::out | std::ios::trunc);
    if (!csv.is_open()) {
        std::fprintf(stderr, "[udp] cannot open CSV sink \"%s\"\n",
                     path.c_str());
        return false;
    }
    csvPath = path;
    csv << reportCsvHeader() << '\n';
    return true;
}

void
ReportSink::write(const Report& r)
{
    if (json.is_open()) {
        json << reportToJsonLine(r) << '\n';
    }
    if (csv.is_open()) {
        csv << reportToCsvRow(r) << '\n';
    }
}

void
ReportSink::writeAll(const std::vector<Report>& reports)
{
    for (const Report& r : reports) {
        write(r);
    }
}

void
ReportSink::writeFailure(const FailureRow& f)
{
    ++failures;
    if (json.is_open()) {
        json << failureToJsonLine(f) << '\n';
    }
    if (csv.is_open() && !failureCsv.is_open()) {
        // Lazy sibling file: a clean sweep leaves no failure artifact,
        // so "<name>.failures.csv exists" alone signals trouble.
        std::string path = csvPath;
        const std::string ext = ".csv";
        if (path.size() >= ext.size() &&
            path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
            path.resize(path.size() - ext.size());
        }
        path += ".failures.csv";
        failureCsv.open(path, std::ios::out | std::ios::trunc);
        if (!failureCsv.is_open()) {
            std::fprintf(stderr, "[udp] cannot open failure CSV \"%s\"\n",
                         path.c_str());
        } else {
            failureCsv << failureCsvHeader() << '\n';
        }
    }
    if (failureCsv.is_open()) {
        failureCsv << failureToCsvRow(f) << '\n';
    }
}

void
ReportSink::close()
{
    if (json.is_open()) {
        json.close();
    }
    if (csv.is_open()) {
        csv.close();
    }
    if (failureCsv.is_open()) {
        failureCsv.close();
    }
}

} // namespace udp

#include "stats/tracefile.h"

#include <cstdio>

#include "stats/sink.h"

namespace udp {

namespace {

const char*
trackName(std::uint8_t track)
{
    switch (track) {
    case kTrackPipeline:
        return "pipeline";
    case kTrackPrefetch:
        return "prefetch";
    case kTrackUdp:
        return "udp";
    case kTrackCounters:
        return "counters";
    }
    return "other";
}

std::string
hexAddr(Addr a)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

void
appendCommon(std::string& out, const char* name, const char* ph, int pid,
             unsigned tid, Cycle ts)
{
    out += "{\"name\":\"";
    out += name;
    out += "\",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + std::to_string(ts);
}

void
appendMetadata(std::string& out, int pid, const std::string& process_name)
{
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           jsonEscape(process_name) + "\"}},\n";
    for (unsigned tid = 0; tid <= kTrackCounters; ++tid) {
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
               std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
               ",\"args\":{\"name\":\"" + trackName(tid) + "\"}},\n";
    }
}

void
appendEvent(std::string& out, const TraceEvent& ev, int pid)
{
    switch (ev.kind) {
    case TraceEvent::Kind::Slice:
        appendCommon(out, ev.name, "X", pid, ev.track, ev.ts);
        out += ",\"dur\":" + std::to_string(ev.dur) +
               ",\"args\":{\"line\":\"" + hexAddr(ev.addr) + "\"}}";
        break;
    case TraceEvent::Kind::Instant:
        appendCommon(out, ev.name, "i", pid, ev.track, ev.ts);
        out += ",\"s\":\"t\",\"args\":{";
        if (ev.addr != 0) {
            out += "\"addr\":\"" + hexAddr(ev.addr) + "\"";
            if (ev.value != 0.0) {
                out += ",";
            }
        }
        if (ev.value != 0.0) {
            out += "\"value\":" + formatNumber(ev.value);
        }
        out += "}}";
        break;
    case TraceEvent::Kind::Counter:
        appendCommon(out, ev.name, "C", pid, ev.track, ev.ts);
        out += ",\"args\":{\"";
        out += ev.name;
        out += "\":" + formatNumber(ev.value) + "}}";
        break;
    case TraceEvent::Kind::Span:
        // Async begin (dur == 0) / end (dur != 0) pair keyed by the line
        // address, so overlapping in-flight prefetches render separately.
        appendCommon(out, ev.name, ev.dur == 0 ? "b" : "e", pid, ev.track,
                     ev.ts);
        out += ",\"cat\":\"pf\",\"id\":\"" + hexAddr(ev.addr) + "\"";
        if (ev.dur != 0 && ev.detail) {
            out += ",\"args\":{\"outcome\":\"";
            out += ev.detail;
            out += "\"}";
        }
        out += "}";
        break;
    }
    out += ",\n";
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceJob>& jobs)
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool any = false;
    int pid = 0;
    for (const TraceJob& job : jobs) {
        ++pid;
        if (!job.snap && !job.prof) {
            continue;
        }
        appendMetadata(out, pid, job.name);
        any = true;
        if (job.prof) {
            // Self-profiler track: stacked per-phase host time per
            // reporting interval (one ph "C" sample per interval).
            const unsigned tid = kTrackCounters + 1;
            out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                   std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                   ",\"args\":{\"name\":\"self_profile\"}},\n";
            for (const obs::ProfileIntervalRow& row : job.prof->intervals) {
                appendCommon(out, "host_us_per_phase", "C", pid, tid,
                             row.cycleStart);
                out += ",\"args\":{";
                for (std::size_t i = 0; i < obs::kNumProfPhases; ++i) {
                    if (i != 0) {
                        out += ',';
                    }
                    out += "\"";
                    out += obs::profPhaseName(
                        static_cast<obs::ProfPhase>(i));
                    out += "\":" + formatNumber(row.phaseSec[i] * 1e6);
                }
                out += "}},\n";
            }
        }
        if (!job.snap) {
            continue;
        }
        for (const TraceEvent& ev : job.snap->events) {
            appendEvent(out, ev, pid);
        }
        if (!job.snap->errorKind.empty()) {
            // SimError post-mortem: final annotated instant carrying the
            // multi-component Cpu::dumpState() payload.
            appendCommon(out, "sim_error", "i", pid, kTrackPipeline,
                         job.snap->errorCycle);
            out += ",\"s\":\"p\",\"args\":{\"kind\":\"" +
                   jsonEscape(job.snap->errorKind) + "\",\"component\":\"" +
                   jsonEscape(job.snap->errorComponent) + "\",\"dump\":\"" +
                   jsonEscape(job.snap->errorDump) + "\"}},\n";
        }
    }
    if (any) {
        // Strip the trailing ",\n" so the array stays valid JSON.
        out.erase(out.size() - 2);
        out += "\n";
    }
    out += "]}\n";
    return out;
}

bool
writeChromeTrace(const std::string& path, const std::vector<TraceJob>& jobs)
{
    std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        return false;
    }
    std::string body = chromeTraceJson(jobs);
    bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace udp

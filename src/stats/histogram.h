/**
 * @file
 * Distribution: the histogram stat kind of the telemetry layer
 * (docs/TELEMETRY.md). Unlike the fixed unit-width common/histogram.h used
 * for FTQ occupancy, a Distribution supports linear *and* log2 bucketing,
 * tracks min/max/sum, answers percentile queries, and flattens into
 * schema-stable scalar summary entries for the JSON/CSV sinks.
 */

#ifndef UDP_STATS_HISTOGRAM_H
#define UDP_STATS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace udp {

/** Bucketing rule of a Distribution. */
enum class BucketScale : std::uint8_t {
    /** Bucket i covers [i*width, (i+1)*width); the last bucket overflows. */
    Linear,
    /** Bucket 0 holds value 0; bucket i>=1 covers [2^(i-1), 2^i); the
     *  last bucket overflows. Right-sized for cycle latencies. */
    Log2,
};

/**
 * Histogram over unsigned sample values with either linear or logarithmic
 * buckets. Cheap to sample (one array increment plus running sum/min/max),
 * mergeable across instances, and summarizable into scalar stats.
 */
class Distribution
{
  public:
    explicit Distribution(BucketScale scale = BucketScale::Log2,
                          std::size_t num_buckets = 32,
                          std::uint64_t bucket_width = 1)
        : scale_(scale),
          width_(bucket_width == 0 ? 1 : bucket_width),
          buckets_(num_buckets == 0 ? 1 : num_buckets, 0)
    {
    }

    void
    sample(std::uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        sum_ += v;
        ++n_;
        if (n_ == 1 || v < min_) {
            min_ = v;
        }
        if (v > max_) {
            max_ = v;
        }
    }

    std::uint64_t count() const { return n_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return n_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    double
    mean() const
    {
        return n_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(n_);
    }

    BucketScale scale() const { return scale_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return buckets_.at(i); }

    /** Index of the bucket @p v falls into. */
    std::size_t
    bucketOf(std::uint64_t v) const
    {
        std::size_t idx;
        if (scale_ == BucketScale::Linear) {
            idx = static_cast<std::size_t>(v / width_);
        } else {
            idx = 0;
            while (v != 0) {
                ++idx;
                v >>= 1;
            }
        }
        return idx >= buckets_.size() ? buckets_.size() - 1 : idx;
    }

    /** Lowest sample value that lands in bucket @p i. */
    std::uint64_t
    bucketLow(std::size_t i) const
    {
        if (scale_ == BucketScale::Linear) {
            return static_cast<std::uint64_t>(i) * width_;
        }
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }

    /**
     * Smallest bucket lower bound b such that at least fraction @p q of
     * samples fall into buckets at or below b's bucket. Bucket-resolution
     * (exact for linear width 1); 0 when empty.
     */
    std::uint64_t
    percentile(double q) const
    {
        if (n_ == 0) {
            return 0;
        }
        if (q < 0.0) {
            q = 0.0;
        }
        if (q > 1.0) {
            q = 1.0;
        }
        auto need = static_cast<std::uint64_t>(q * static_cast<double>(n_));
        if (need == 0) {
            need = 1;
        }
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            acc += buckets_[i];
            if (acc >= need) {
                return bucketLow(i);
            }
        }
        return bucketLow(buckets_.size() - 1);
    }

    /** Merges @p other (same scale/geometry expected) into this. */
    void merge(const Distribution& other);

    void clear();

    /**
     * Schema-stable scalar summary: "<prefix>_count", "_sum", "_mean",
     * "_min", "_max", "_p50", "_p90", "_p99" (docs/TELEMETRY.md). The
     * StatSet kind integration (StatSet::addDistribution) appends these.
     */
    std::vector<std::pair<std::string, double>>
    summarize(const std::string& prefix) const;

    /** Human-readable multi-line bucket rendering (debug prints). */
    std::string toString(const std::string& name) const;

  private:
    BucketScale scale_;
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t sum_ = 0;
    std::uint64_t n_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace udp

#endif // UDP_STATS_HISTOGRAM_H

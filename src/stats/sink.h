/**
 * @file
 * Structured result sinks: serialize Reports as JSON lines and CSV so
 * benches emit machine-readable artifacts next to their printed tables.
 *
 * The serialized schema is stable: "workload" and "config" (strings)
 * followed by every Report::toStatSet() key in declaration order. The
 * authoritative key table, with each key's paper-figure provenance, is in
 * docs/EXPERIMENT_GUIDE.md.
 */

#ifndef UDP_STATS_SINK_H
#define UDP_STATS_SINK_H

#include <fstream>
#include <string>
#include <vector>

namespace udp {

struct Report;

/** Ordered list of schema keys: "workload", "config", then every numeric
 *  StatSet key of Report. */
std::vector<std::string> reportSchemaKeys();

/** One JSON object (single line, no trailing newline) for @p r. */
std::string reportToJsonLine(const Report& r);

/** The CSV header row (no trailing newline) matching reportToCsvRow. */
std::string reportCsvHeader();

/** One CSV data row (no trailing newline) for @p r. */
std::string reportToCsvRow(const Report& r);

/**
 * Writes Reports to an optional JSON-lines file and/or an optional CSV
 * file (with header). Opening no sink makes write() a no-op, so benches
 * can call it unconditionally.
 */
class ReportSink
{
  public:
    ReportSink() = default;

    /** Opens (truncates) @p path for JSON lines; returns success. */
    bool openJson(const std::string& path);

    /** Opens (truncates) @p path for CSV and writes the header row;
     *  returns success. */
    bool openCsv(const std::string& path);

    /** Appends @p r to every open sink. */
    void write(const Report& r);

    /** Appends each report in order to every open sink. */
    void writeAll(const std::vector<Report>& reports);

    /** True when at least one sink is open. */
    bool active() const { return json.is_open() || csv.is_open(); }

    /** Flushes and closes both sinks (also done on destruction). */
    void close();

  private:
    std::ofstream json;
    std::ofstream csv;
};

} // namespace udp

#endif // UDP_STATS_SINK_H

/**
 * @file
 * Structured result sinks: serialize Reports as JSON lines and CSV so
 * benches emit machine-readable artifacts next to their printed tables.
 *
 * The serialized schema is stable: "workload" and "config" (strings)
 * followed by every Report::toStatSet() key in declaration order. The
 * authoritative key table, with each key's paper-figure provenance, is in
 * docs/EXPERIMENT_GUIDE.md.
 */

#ifndef UDP_STATS_SINK_H
#define UDP_STATS_SINK_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "stats/telemetry.h"

namespace udp {

struct Report;

/**
 * Machine-readable record of one failed sweep job (docs/ROBUSTNESS.md has
 * the schema table). Written next to the successful Reports so a partially
 * failing sweep still yields a complete, parseable artifact set.
 */
struct FailureRow
{
    std::string workload;
    std::string config;    ///< the job label
    std::string errorKind; ///< simErrorKindName(), a process-isolation kind
                           ///< ("crash", "timeout", ...) or "exception"
    std::string component; ///< failing component, "" for plain exceptions
    std::string message;   ///< exception what()
    std::string dumpPath;  ///< diagnostic dump file, "" when none written
    std::uint64_t cycle = 0;
    std::uint64_t attempts = 1;

    // Process-isolation diagnostics (--isolate sweeps, sim/procexec.h);
    // empty/zero for in-process failures.
    std::string signal;     ///< terminating signal name ("SIGSEGV"), or ""
    std::string stderrTail; ///< captured tail of the child's stderr
    std::uint64_t maxRssKb = 0; ///< child peak RSS (ru_maxrss)
    double userSec = 0.0;       ///< child user CPU seconds
    double sysSec = 0.0;        ///< child system CPU seconds
};

/** Shortest round-trip decimal rendering of @p v ("400000", "0.85");
 *  integers serialize plain, never in exponent notation. */
std::string formatNumber(double v);

/** JSON string escaping (quotes, backslash, control characters). Shared
 *  with the sweep manifest and the isolated-execution pipe protocol. */
std::string jsonEscape(const std::string& s);

/** Inverse of jsonEscape(); returns false on a malformed escape. */
bool jsonUnescape(const std::string& s, std::string* out);

/** Ordered list of failure-row schema keys. */
std::vector<std::string> failureSchemaKeys();

/** One JSON object (single line) for @p f. Distinguishable from report
 *  lines in the same stream by the presence of the "error_kind" key. */
std::string failureToJsonLine(const FailureRow& f);

/** The CSV header row (no trailing newline) matching failureToCsvRow. */
std::string failureCsvHeader();

/** One CSV data row (no trailing newline) for @p f. */
std::string failureToCsvRow(const FailureRow& f);

/** Ordered list of schema keys: "workload", "config", then every numeric
 *  StatSet key of Report. */
std::vector<std::string> reportSchemaKeys();

/** One JSON object (single line, no trailing newline) for @p r. */
std::string reportToJsonLine(const Report& r);

/** The CSV header row (no trailing newline) matching reportToCsvRow. */
std::string reportCsvHeader();

/** One CSV data row (no trailing newline) for @p r. */
std::string reportToCsvRow(const Report& r);

/**
 * Parses one reportToJsonLine() line back into @p out. The round trip is
 * exact: numbers use shortest round-trip rendering, so re-serializing the
 * parsed Report reproduces the input byte for byte. Used by the
 * checkpoint manifest (sim/manifest.h) and the isolated-execution pipe
 * protocol (sim/procexec.h). Returns false (leaving @p out unspecified)
 * on malformed input, unknown keys, or a failure row (key "error_kind").
 */
bool reportFromJsonLine(const std::string& line, Report* out);

// ----- telemetry rows (docs/TELEMETRY.md has the schema tables) ---------

/** Ordered interval-row schema keys: "workload", "config", then every
 *  numeric IntervalRow field. */
std::vector<std::string> intervalSchemaKeys();

/** One JSON object (single line) for an interval row. Distinguishable in
 *  a mixed stream by "row_type":"interval". */
std::string intervalToJsonLine(const std::string& workload,
                               const std::string& config,
                               const IntervalRow& row);

/** The CSV header row (no trailing newline) matching intervalToCsvRow. */
std::string intervalCsvHeader();

/** One CSV data row (no trailing newline) for an interval row. */
std::string intervalToCsvRow(const std::string& workload,
                             const std::string& config,
                             const IntervalRow& row);

/** One JSON object (single line) for a run's end-of-window telemetry
 *  summary ("row_type":"telemetry_summary" + TelemetrySnapshot::toStatSet
 *  entries). Consumed by tools/trace_summary.py. */
std::string telemetrySummaryToJsonLine(const std::string& workload,
                                       const std::string& config,
                                       const TelemetrySnapshot& snap);

/**
 * One JSON object (single line) for a run's cycle-loop self-profile
 * ("row_type":"profile_summary" + cycles/total_sec and per-phase
 * phase_<name>_sec / phase_<name>_pct keys, docs/OBSERVABILITY.md).
 * Consumed by tools/trace_summary.py and BENCH_simspeed rows.
 */
std::string profileSummaryToJsonLine(const std::string& workload,
                                     const std::string& config,
                                     const obs::ProfileSnapshot& prof);

/**
 * Writes telemetry interval rows (JSONL and/or CSV) and per-run summary
 * rows (JSONL only). Same crash-safe line-atomic discipline as
 * ReportSink. Opening no sink makes the writers no-ops.
 */
class TelemetrySink
{
  public:
    TelemetrySink() = default;

    /** Opens (truncates) @p path for interval + summary JSON lines. */
    bool openJson(const std::string& path);

    /** Opens (truncates) @p path for interval CSV (header included). */
    bool openCsv(const std::string& path);

    /** Appends every interval row of @p snap, then its summary row. */
    void writeRun(const std::string& workload, const std::string& config,
                  const TelemetrySnapshot& snap);

    /** True when at least one sink is open. */
    bool active() const { return json.is_open() || csv.is_open(); }

    /** Flushes and closes all sinks (also done on destruction). */
    void close();

  private:
    std::ofstream json;
    std::ofstream csv;
};

/**
 * Writes Reports to an optional JSON-lines file and/or an optional CSV
 * file (with header). Opening no sink makes write() a no-op, so benches
 * can call it unconditionally.
 *
 * Crash-safe: every row is written as one complete line in a single
 * buffered write and flushed immediately, so a sweep killed mid-run
 * (SIGKILL, OOM, power loss) leaves artifacts whose complete lines all
 * parse — at worst the final line is truncated and must be dropped by
 * the reader (docs/ROBUSTNESS.md, "Crash-safe artifacts").
 */
class ReportSink
{
  public:
    ReportSink() = default;

    /** Opens (truncates) @p path for JSON lines; returns success. */
    bool openJson(const std::string& path);

    /** Opens (truncates) @p path for CSV and writes the header row;
     *  returns success. */
    bool openCsv(const std::string& path);

    /** Appends @p r to every open sink. */
    void write(const Report& r);

    /** Appends each report in order to every open sink. */
    void writeAll(const std::vector<Report>& reports);

    /**
     * Appends @p f to the failure outputs: the JSON-lines file shared
     * with reports (when open), and a sibling "<csv>.failures.csv" file
     * opened lazily on the first failure (when the CSV sink is open —
     * failures have different columns than reports).
     */
    void writeFailure(const FailureRow& f);

    /** True when at least one sink is open. */
    bool active() const { return json.is_open() || csv.is_open(); }

    /** Failure rows written so far (benches use this for exit codes). */
    std::size_t failureCount() const { return failures; }

    /** Flushes and closes all sinks (also done on destruction). */
    void close();

  private:
    std::ofstream json;
    std::ofstream csv;
    std::ofstream failureCsv;
    std::string csvPath;
    std::size_t failures = 0;
};

} // namespace udp

#endif // UDP_STATS_SINK_H

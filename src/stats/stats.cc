#include "stats/stats.h"

#include <sstream>

namespace udp {

void
StatSet::add(std::string name, double value)
{
    items.emplace_back(std::move(name), value);
}

double
StatSet::get(const std::string& name, bool* found) const
{
    for (const auto& [n, v] : items) {
        if (n == name) {
            if (found) {
                *found = true;
            }
            return v;
        }
    }
    if (found) {
        *found = false;
    }
    return 0.0;
}

bool
StatSet::has(const std::string& name) const
{
    bool found = false;
    get(name, &found);
    return found;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto& [n, v] : items) {
        os << n << " = " << v << '\n';
    }
    return os.str();
}

} // namespace udp

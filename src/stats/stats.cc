#include "stats/stats.h"

#include <cassert>
#include <sstream>

namespace udp {

void
StatSet::add(std::string name, double value)
{
    // Duplicate names silently corrupted sink output (two JSON keys, two
    // CSV cells under one header): detect them here. Debug builds abort;
    // release builds keep the documented last-wins overwrite.
    for (auto& [n, v] : items) {
        if (n == name) {
            assert(false && "StatSet::add: duplicate stat name");
            v = value;
            return;
        }
    }
    items.emplace_back(std::move(name), value);
}

void
StatSet::addDistribution(std::string name, const Distribution& d)
{
    for (auto& [key, value] : d.summarize(name)) {
        add(std::move(key), value);
    }
    dists.emplace_back(std::move(name), d);
}

double
StatSet::get(const std::string& name, bool* found) const
{
    for (const auto& [n, v] : items) {
        if (n == name) {
            if (found) {
                *found = true;
            }
            return v;
        }
    }
    if (found) {
        *found = false;
    }
    return 0.0;
}

bool
StatSet::has(const std::string& name) const
{
    bool found = false;
    get(name, &found);
    return found;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto& [n, v] : items) {
        os << n << " = " << v << '\n';
    }
    for (const auto& [n, d] : dists) {
        os << d.toString(n);
    }
    return os.str();
}

} // namespace udp

#include "stats/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace udp {

Table::Table(std::vector<std::string> header) : head(std::move(header)) {}

void
Table::beginRow()
{
    rows.emplace_back();
}

void
Table::cell(const std::string& s)
{
    rows.back().push_back(s);
}

void
Table::cell(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    rows.back().push_back(os.str());
}

void
Table::cell(std::uint64_t v)
{
    rows.back().push_back(std::to_string(v));
}

void
Table::cell(int v)
{
    rows.back().push_back(std::to_string(v));
}

std::string
Table::toAscii() const
{
    std::vector<std::size_t> width(head.size(), 0);
    for (std::size_t c = 0; c < head.size(); ++c) {
        width[c] = head[c].size();
    }
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string& s = c < row.size() ? row[c] : std::string();
            os << std::left << std::setw(static_cast<int>(width[c]) + 2) << s;
        }
        os << '\n';
    };

    emit_row(head);
    std::size_t total = 0;
    for (auto w : width) {
        total += w + 2;
    }
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows) {
        emit_row(row);
    }
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) {
                os << ',';
            }
            os << row[c];
        }
        os << '\n';
    };
    emit_row(head);
    for (const auto& row : rows) {
        emit_row(row);
    }
    return os.str();
}

} // namespace udp

/**
 * @file
 * ASCII/CSV table rendering used by the benchmark harness to print
 * paper-style rows and series.
 */

#ifndef UDP_STATS_TABLE_H
#define UDP_STATS_TABLE_H

#include <string>
#include <vector>

namespace udp {

/**
 * A simple column-aligned table. Cells are strings; numeric helpers format
 * with fixed precision. Render as aligned ASCII (for humans) or CSV (for
 * scripted plotting).
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Starts a new row. */
    void beginRow();

    /** Appends a string cell to the current row. */
    void cell(const std::string& s);

    /** Appends a numeric cell with @p precision fractional digits. */
    void cell(double v, int precision = 3);

    /** Appends an integral cell. */
    void cell(std::uint64_t v);
    void cell(int v);

    std::size_t numRows() const { return rows.size(); }

    /** Aligned ASCII rendering including a header separator. */
    std::string toAscii() const;

    /** Comma-separated rendering. */
    std::string toCsv() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace udp

#endif // UDP_STATS_TABLE_H

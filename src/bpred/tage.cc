#include "bpred/tage.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace udp {

Tage::Tage(const TageConfig& c, std::uint64_t seed)
    : cfg(c), useAltOnNa(4, 7), allocSeed(seed ? seed : 1)
{
    assert(cfg.numTables >= 2 && cfg.numTables <= kMaxTageTables);

    // Geometric history lengths from minHist to maxHist.
    histLen.resize(cfg.numTables);
    double ratio = std::pow(static_cast<double>(cfg.maxHist) / cfg.minHist,
                            1.0 / (cfg.numTables - 1));
    double l = cfg.minHist;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        histLen[t] = static_cast<unsigned>(l + 0.5);
        if (t > 0 && histLen[t] <= histLen[t - 1]) {
            histLen[t] = histLen[t - 1] + 1;
        }
        l *= ratio;
    }

    tables.assign(cfg.numTables,
                  std::vector<Entry>(std::size_t{1} << cfg.tableBits));
    for (auto& tab : tables) {
        for (auto& e : tab) {
            e.ctr = SignedSatCounter(cfg.ctrBits, 0);
        }
    }
    bimodal.assign(std::size_t{1} << cfg.baseBits, SatCounter(2, 2));

    for (unsigned t = 0; t < cfg.numTables; ++t) {
        idxFold[t].configure(histLen[t], cfg.tableBits);
        tagFold1[t].configure(histLen[t], cfg.tagBits);
        tagFold2[t].configure(histLen[t], cfg.tagBits - 1);
    }
}

std::uint32_t
Tage::baseIndex(Addr pc) const
{
    return static_cast<std::uint32_t>((pc >> 2) & ((1u << cfg.baseBits) - 1));
}

std::uint32_t
Tage::tableIndex(Addr pc, unsigned t) const
{
    std::uint64_t h = (pc >> 2) ^ ((pc >> 2) >> (cfg.tableBits - (t % 4)))
                      ^ idxFold[t].comp ^ (pathHist & 0xffff) * (t + 1);
    return static_cast<std::uint32_t>(h & ((1u << cfg.tableBits) - 1));
}

std::uint16_t
Tage::tableTag(Addr pc, unsigned t) const
{
    std::uint64_t h = (pc >> 2) ^ tagFold1[t].comp ^ (tagFold2[t].comp << 1);
    return static_cast<std::uint16_t>(h & ((1u << cfg.tagBits) - 1));
}

TagePrediction
Tage::predict(Addr pc) const
{
    TagePrediction p;
    p.baseIndex = baseIndex(pc);
    bool base_pred = bimodal[p.baseIndex].isSet();

    for (unsigned t = 0; t < cfg.numTables; ++t) {
        p.index[t] = tableIndex(pc, t);
        p.tag[t] = tableTag(pc, t);
    }

    // Find provider (longest history match) and alternate.
    for (int t = static_cast<int>(cfg.numTables) - 1; t >= 0; --t) {
        const Entry& e = tables[t][p.index[t]];
        if (e.tag == p.tag[t]) {
            if (p.provider < 0) {
                p.provider = t;
            } else if (p.alt < 0) {
                p.alt = t;
                break;
            }
        }
    }

    p.altPred = p.alt >= 0 ? tables[p.alt][p.index[p.alt]].ctr.taken()
                           : base_pred;

    if (p.provider >= 0) {
        const Entry& e = tables[p.provider][p.index[p.provider]];
        p.providerPred = e.ctr.taken();
        // Newly-allocated heuristic: weak counter and not yet useful.
        bool newly_alloc = e.ctr.isWeak() && e.useful == 0;
        p.usedAlt = newly_alloc && useAltOnNa.value() >= 0;
        p.taken = p.usedAlt ? p.altPred : p.providerPred;

        bool newly_allocated = e.ctr.isWeak() && e.useful == 0;
        if (e.ctr.isSaturated()) {
            p.conf = Confidence::High;
        } else if (newly_allocated || p.usedAlt) {
            p.conf = Confidence::Low;
        } else {
            p.conf = Confidence::Med;
        }
    } else {
        p.providerPred = base_pred;
        p.altPred = base_pred;
        p.taken = base_pred;
        const SatCounter& b = bimodal[p.baseIndex];
        p.conf = b.isSaturated() ? Confidence::High : Confidence::Low;
    }
    return p;
}

void
Tage::specUpdateHistory(bool taken, Addr pc)
{
    ghist.push(taken);
    pathHist = ((pathHist << 1) | ((pc >> 2) & 1)) & 0xffffffff;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        bool old_bit = ghist.bit(histLen[t]);
        idxFold[t].update(taken, old_bit);
        tagFold1[t].update(taken, old_bit);
        tagFold2[t].update(taken, old_bit);
    }
}

TageHistState
Tage::snapshot() const
{
    TageHistState s;
    s.ghistPos = ghist.position();
    s.pathHist = pathHist;
    s.idxFold = idxFold;
    s.tagFold1 = tagFold1;
    s.tagFold2 = tagFold2;
    return s;
}

void
Tage::restore(const TageHistState& s)
{
    ghist.setPosition(s.ghistPos);
    pathHist = s.pathHist;
    idxFold = s.idxFold;
    tagFold1 = s.tagFold1;
    tagFold2 = s.tagFold2;
}

void
Tage::update(Addr pc, const TagePrediction& p, bool taken)
{
    (void)pc;
    ++tick;

    // Periodic useful-bit aging.
    if (tick % cfg.usefulResetPeriod == 0) {
        for (auto& tab : tables) {
            for (auto& e : tab) {
                e.useful >>= 1;
            }
        }
    }

    const bool mispredicted = p.taken != taken;

    if (p.provider >= 0) {
        Entry& e = tables[p.provider][p.index[p.provider]];

        // use_alt_on_na bookkeeping for newly allocated entries.
        if (e.ctr.isWeak() && e.useful == 0 && p.providerPred != p.altPred) {
            useAltOnNa.update(p.altPred == taken);
        }

        e.ctr.update(taken);
        if (p.providerPred != p.altPred) {
            if (p.providerPred == taken) {
                if (e.useful < 3) {
                    ++e.useful;
                }
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
        // Keep the bimodal base trained as well when it acted as alt.
        if (p.alt < 0) {
            if (taken) {
                bimodal[p.baseIndex].increment();
            } else {
                bimodal[p.baseIndex].decrement();
            }
        }
    } else {
        if (taken) {
            bimodal[p.baseIndex].increment();
        } else {
            bimodal[p.baseIndex].decrement();
        }
    }

    // Allocation on misprediction: claim up to one entry in a longer table.
    if (mispredicted && p.provider < static_cast<int>(cfg.numTables) - 1) {
        int start = p.provider + 1;
        // Randomise the first candidate a little (Seznec-style).
        allocSeed = mix64(allocSeed);
        if ((allocSeed & 3) == 0 &&
            start + 1 < static_cast<int>(cfg.numTables)) {
            ++start;
        }
        bool allocated = false;
        for (int t = start; t < static_cast<int>(cfg.numTables); ++t) {
            Entry& e = tables[t][p.index[t]];
            if (e.useful == 0) {
                e.tag = p.tag[t];
                e.ctr = SignedSatCounter(cfg.ctrBits, taken ? 0 : -1);
                e.useful = 0;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            for (int t = start; t < static_cast<int>(cfg.numTables); ++t) {
                Entry& e = tables[t][p.index[t]];
                if (e.useful > 0) {
                    --e.useful;
                }
            }
        }
    }
}

std::uint64_t
Tage::storageBits() const
{
    std::uint64_t bits = (std::uint64_t{1} << cfg.baseBits) * 2;
    std::uint64_t per_entry = cfg.tagBits + cfg.ctrBits + 2;
    bits += cfg.numTables * (std::uint64_t{1} << cfg.tableBits) * per_entry;
    return bits;
}

} // namespace udp

/**
 * @file
 * Translation-unit anchor for the header-only Ras (keeps the module layout
 * uniform and gives static checks a home).
 */

#include "bpred/ras.h"

namespace udp {

static_assert(sizeof(RasCheckpoint) <= 16, "RAS checkpoints must stay cheap");

} // namespace udp

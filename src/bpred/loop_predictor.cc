#include "bpred/loop_predictor.h"

#include "common/intmath.h"
#include "common/rng.h"

namespace udp {

LoopPredictor::LoopPredictor(const LoopPredictorConfig& c)
    : cfg(c), entries(c.numEntries)
{
}

std::uint32_t
LoopPredictor::indexOf(Addr pc) const
{
    return static_cast<std::uint32_t>((pc >> 2) & (cfg.numEntries - 1));
}

std::uint32_t
LoopPredictor::tagOf(Addr pc) const
{
    return static_cast<std::uint32_t>(
        ((pc >> 2) / cfg.numEntries) & ((1u << cfg.tagBits) - 1));
}

LoopPrediction
LoopPredictor::predict(Addr pc) const
{
    LoopPrediction p;
    std::uint32_t idx = indexOf(pc);
    const Entry& e = entries[idx];
    if (!e.valid || e.tag != tagOf(pc) || e.conf < cfg.confMax ||
        e.trip < 4) {
        return p;
    }
    p.valid = true;
    p.entry = idx;
    // Exit iteration: the branch falls through after trip-1 taken outcomes.
    p.taken = (e.count + 1) < e.trip;
    return p;
}

void
LoopPredictor::update(Addr pc, bool taken)
{
    std::uint32_t idx = indexOf(pc);
    Entry& e = entries[idx];
    std::uint32_t tag = tagOf(pc);

    if (!e.valid || e.tag != tag) {
        // Allocate only on a not-taken outcome (potential loop exit) so the
        // first learned interval is aligned with an iteration boundary.
        if (!taken) {
            e.valid = true;
            e.tag = tag;
            e.trip = 0;
            e.count = 0;
            e.conf = 0;
        }
        return;
    }

    if (taken) {
        if (e.count < cfg.maxTrip) {
            ++e.count;
        } else {
            // Degenerate "loop" that never exits: drop the entry.
            e.valid = false;
        }
        return;
    }

    // Not taken: one full loop execution observed.
    std::uint32_t observed_trip = e.count + 1;
    if (observed_trip == e.trip) {
        if (e.conf < cfg.confMax) {
            ++e.conf;
        }
    } else {
        e.trip = observed_trip;
        e.conf = 0;
    }
    e.count = 0;
}

std::uint64_t
LoopPredictor::storageBits() const
{
    // tag + trip(14) + count(14) + conf(2) + valid(1)
    return std::uint64_t{cfg.numEntries} * (cfg.tagBits + 14 + 14 + 2 + 1);
}

} // namespace udp

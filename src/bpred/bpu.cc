#include "bpred/bpu.h"

namespace udp {

Bpu::Bpu(const BpuConfig& c)
    : cfg(c), tage_(c.tage), loop_(c.loop), sc_(c.sc), btb_(c.btb),
      ibtb_(c.ibtb), ras_(c.rasEntries)
{
}

void
Bpu::pushHistory(bool taken, Addr pc)
{
    tage_.specUpdateHistory(taken, pc);
    hist64 = (hist64 << 1) | (taken ? 1 : 0);
}

CondPredRecord
Bpu::predictCond(Addr pc)
{
    ++stats_.condPredictions;
    CondPredRecord rec;
    rec.tage = tage_.predict(pc);
    rec.loop = loop_.predict(pc);
    rec.sc = sc_.predict(pc, hist64, rec.tage.taken,
                         rec.tage.conf == Confidence::High);

    if (rec.loop.valid) {
        rec.taken = rec.loop.taken;
        rec.conf = Confidence::High;
    } else if (rec.sc.used) {
        rec.taken = rec.sc.taken;
        rec.conf = Confidence::Med;
    } else {
        rec.taken = rec.tage.taken;
        rec.conf = rec.tage.conf;
    }

    switch (rec.conf) {
      case Confidence::High: ++stats_.confHigh; break;
      case Confidence::Med: ++stats_.confMed; break;
      case Confidence::Low: ++stats_.confLow; break;
    }

    pushHistory(rec.taken, pc);
    return rec;
}

IbtbPrediction
Bpu::predictIndirect(Addr pc)
{
    ++stats_.indirectPredictions;
    return ibtb_.predict(pc, hist64);
}

void
Bpu::notifyUnconditional(Addr pc)
{
    if (cfg.unconditionalHistory) {
        pushHistory(true, pc);
    }
}

BpuCheckpoint
Bpu::checkpoint() const
{
    BpuCheckpoint ck;
    ck.tage = tage_.snapshot();
    ck.ras = ras_.checkpoint();
    ck.hist64 = hist64;
    return ck;
}

void
Bpu::recoverTo(const BpuCheckpoint& ck, Addr pc, bool is_cond, bool taken)
{
    tage_.restore(ck.tage);
    ras_.restore(ck.ras);
    hist64 = ck.hist64;
    if (is_cond) {
        pushHistory(taken, pc);
    } else if (cfg.unconditionalHistory) {
        pushHistory(true, pc);
    }
}

void
Bpu::trainCond(Addr pc, const CondPredRecord& rec, bool taken)
{
    if (rec.taken != taken) {
        ++stats_.condMispredicts;
    }
    tage_.update(pc, rec.tage, taken);
    loop_.update(pc, taken);
    sc_.update(rec.sc, rec.tage.taken, taken);
}

void
Bpu::trainIndirect(Addr pc, const IbtbPrediction& rec, Addr actual)
{
    ibtb_.update(pc, rec, actual);
}

std::uint64_t
Bpu::storageBits() const
{
    return tage_.storageBits() + loop_.storageBits() + sc_.storageBits() +
           btb_.storageBits() + ibtb_.storageBits() +
           ras_.capacity() * 64;
}

} // namespace udp

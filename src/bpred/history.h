/**
 * @file
 * Global branch history storage with O(1) checkpoint/restore.
 *
 * The history is an append-only circular bit buffer; speculative updates
 * push bits at the head, and recovery simply rewinds the head position.
 * TAGE's folded (compressed) histories are maintained incrementally and
 * snapshotted into prediction checkpoints.
 */

#ifndef UDP_BPRED_HISTORY_H
#define UDP_BPRED_HISTORY_H

#include <cstdint>
#include <vector>

namespace udp {

/** Circular global history bit buffer. */
class GlobalHistory
{
  public:
    explicit GlobalHistory(std::size_t capacity_bits = 1 << 16)
        : buf(capacity_bits, 0)
    {
    }

    /** Appends the newest outcome bit. */
    void
    push(bool bit)
    {
        head = (head + 1) % buf.size();
        buf[head] = bit ? 1 : 0;
    }

    /** Outcome @p age steps in the past (0 = most recent). */
    bool
    bit(std::size_t age) const
    {
        return buf[(head + buf.size() - (age % buf.size())) % buf.size()] != 0;
    }

    /** Packs the most recent @p n bits (n <= 64), bit 0 = newest. */
    std::uint64_t
    recent(unsigned n) const
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < n && i < 64; ++i) {
            v |= std::uint64_t{bit(i) ? 1u : 0u} << i;
        }
        return v;
    }

    std::uint64_t position() const { return head; }

    /** Rewinds (or replays) to a previously captured position. */
    void setPosition(std::uint64_t pos) { head = pos % buf.size(); }

    std::size_t capacity() const { return buf.size(); }

  private:
    std::vector<std::uint8_t> buf;
    std::uint64_t head = 0;
};

/**
 * A folded (CSR) history register of @p width bits compressing the last
 * @p length outcome bits, maintained incrementally (Seznec's scheme).
 */
struct FoldedHistory
{
    std::uint32_t comp = 0;
    std::uint16_t length = 0;
    std::uint16_t width = 1;

    void
    configure(unsigned hist_len, unsigned fold_width)
    {
        length = static_cast<std::uint16_t>(hist_len);
        width = static_cast<std::uint16_t>(fold_width ? fold_width : 1);
        comp = 0;
    }

    /**
     * Incremental update after GlobalHistory::push: @p new_bit is the bit
     * just inserted, @p old_bit the bit that left the length-window.
     */
    void
    update(bool new_bit, bool old_bit)
    {
        comp = (comp << 1) | (new_bit ? 1u : 0u);
        comp ^= (old_bit ? 1u : 0u) << (length % width);
        comp ^= comp >> width;
        comp &= (1u << width) - 1;
    }
};

} // namespace udp

#endif // UDP_BPRED_HISTORY_H

/**
 * @file
 * Small GEHL-style statistical corrector (the SC of TAGE-SC-L): a few
 * global-history-indexed counter tables that can veto a low/medium
 * confidence TAGE prediction when they strongly disagree.
 */

#ifndef UDP_BPRED_STATISTICAL_CORRECTOR_H
#define UDP_BPRED_STATISTICAL_CORRECTOR_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace udp {

/** Configuration. */
struct ScConfig
{
    unsigned numTables = 3;
    unsigned tableBits = 10;
    unsigned ctrBits = 6;
    /** History bits feeding table t: histBits[t]. */
    std::array<unsigned, 4> histBits = {0, 8, 24, 0};
    int initialThreshold = 6;
};

/** Per-prediction record retained for update. */
struct ScPrediction
{
    bool used = false; ///< SC overrode TAGE
    bool taken = false;
    int sum = 0;
    std::array<std::uint32_t, 4> index{};
};

/**
 * GEHL corrector over the recent global outcome history (provided by the
 * caller as a packed 64-bit value; update() must receive the same value).
 */
class StatisticalCorrector
{
  public:
    explicit StatisticalCorrector(const ScConfig& cfg);

    /**
     * Computes the corrector's verdict for the branch at @p pc.
     * @param hist packed recent history (bit 0 = most recent outcome)
     * @param tage_taken TAGE's direction
     * @param tage_high_conf when true the corrector never overrides
     */
    ScPrediction predict(Addr pc, std::uint64_t hist, bool tage_taken,
                         bool tage_high_conf) const;

    /** Trains at retire with the true outcome. */
    void update(const ScPrediction& p, bool tage_taken, bool taken);

    std::uint64_t storageBits() const;

  private:
    std::uint32_t indexOf(Addr pc, std::uint64_t hist, unsigned t) const;

    ScConfig cfg;
    std::vector<std::vector<std::int8_t>> tables;
    int threshold;
    int thresholdCtr = 0;
};

} // namespace udp

#endif // UDP_BPRED_STATISTICAL_CORRECTOR_H

/**
 * @file
 * Loop termination predictor (the L of TAGE-SC-L): learns constant trip
 * counts of regular loops and overrides TAGE on the exit iteration.
 */

#ifndef UDP_BPRED_LOOP_PREDICTOR_H
#define UDP_BPRED_LOOP_PREDICTOR_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace udp {

/** Loop predictor result. */
struct LoopPrediction
{
    bool valid = false;  ///< confident hit: use this prediction
    bool taken = true;
    std::uint32_t entry = 0; ///< internal index for update
};

/** Configuration. */
struct LoopPredictorConfig
{
    unsigned numEntries = 64; ///< power of two
    unsigned tagBits = 14;
    unsigned confMax = 3;
    std::uint32_t maxTrip = 1 << 14;
};

/**
 * Tagged table of loop trip counters. Counting is non-speculative (trained
 * at retire); prediction uses the retire-time iteration counter, which is
 * accurate for trips comfortably larger than the in-flight window.
 */
class LoopPredictor
{
  public:
    explicit LoopPredictor(const LoopPredictorConfig& cfg);

    /** Looks up the conditional branch at @p pc. */
    LoopPrediction predict(Addr pc) const;

    /** Trains with the architectural outcome at retire. */
    void update(Addr pc, bool taken);

    std::uint64_t storageBits() const;

  private:
    struct Entry
    {
        std::uint32_t tag = 0;
        std::uint32_t trip = 0;    ///< learned trip count (taken count + 1)
        std::uint32_t count = 0;   ///< current iteration (retire time)
        std::uint8_t conf = 0;
        bool valid = false;
    };

    std::uint32_t indexOf(Addr pc) const;
    std::uint32_t tagOf(Addr pc) const;

    LoopPredictorConfig cfg;
    std::vector<Entry> entries;
};

} // namespace udp

#endif // UDP_BPRED_LOOP_PREDICTOR_H

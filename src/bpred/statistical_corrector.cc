#include "bpred/statistical_corrector.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace udp {

StatisticalCorrector::StatisticalCorrector(const ScConfig& c)
    : cfg(c), threshold(c.initialThreshold)
{
    assert(cfg.numTables <= 4);
    tables.assign(cfg.numTables,
                  std::vector<std::int8_t>(std::size_t{1} << cfg.tableBits, 0));
}

std::uint32_t
StatisticalCorrector::indexOf(Addr pc, std::uint64_t hist, unsigned t) const
{
    std::uint64_t mask = cfg.histBits[t] >= 64
                             ? ~0ULL
                             : ((1ULL << cfg.histBits[t]) - 1);
    std::uint64_t h = hashCombine(pc >> 2, hist & mask, t * 0x51ed);
    return static_cast<std::uint32_t>(h & ((1u << cfg.tableBits) - 1));
}

ScPrediction
StatisticalCorrector::predict(Addr pc, std::uint64_t hist, bool tage_taken,
                              bool tage_high_conf) const
{
    ScPrediction p;
    p.sum = 0;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        p.index[t] = indexOf(pc, hist, t);
        p.sum += 2 * tables[t][p.index[t]] + 1;
    }
    bool sc_taken = p.sum >= 0;
    p.taken = tage_taken;
    if (!tage_high_conf && sc_taken != tage_taken &&
        (p.sum >= threshold || p.sum <= -threshold)) {
        p.used = true;
        p.taken = sc_taken;
    }
    return p;
}

void
StatisticalCorrector::update(const ScPrediction& p, bool tage_taken,
                             bool taken)
{
    const int max_ctr = (1 << (cfg.ctrBits - 1)) - 1;
    const int min_ctr = -(1 << (cfg.ctrBits - 1));

    // Train when the corrector spoke up, or when its confidence was low.
    bool weak = p.sum < threshold && p.sum > -threshold;
    bool sc_taken = p.sum >= 0;
    if (p.used || weak || sc_taken != taken) {
        for (unsigned t = 0; t < cfg.numTables; ++t) {
            std::int8_t& c = tables[t][p.index[t]];
            if (taken && c < max_ctr) {
                ++c;
            } else if (!taken && c > min_ctr) {
                --c;
            }
        }
    }

    // Adaptive threshold (Seznec's TC scheme, simplified).
    if (p.used) {
        bool sc_correct = p.taken == taken;
        bool tage_correct = tage_taken == taken;
        if (sc_correct != tage_correct) {
            thresholdCtr += sc_correct ? -1 : 1;
            if (thresholdCtr >= 4) {
                threshold = std::min(threshold + 2, 127);
                thresholdCtr = 0;
            } else if (thresholdCtr <= -4) {
                threshold = std::max(threshold - 2, 4);
                thresholdCtr = 0;
            }
        }
    }
}

std::uint64_t
StatisticalCorrector::storageBits() const
{
    return std::uint64_t{cfg.numTables} * (std::uint64_t{1} << cfg.tableBits) *
           cfg.ctrBits;
}

} // namespace udp

#include "bpred/btb.h"

#include <cassert>

#include "common/intmath.h"

namespace udp {

Btb::Btb(const BtbConfig& c) : cfg(c)
{
    assert(cfg.assoc >= 1);
    numSets = cfg.numEntries / cfg.assoc;
    assert(isPowerOf2(numSets));
    ways.resize(numSets * cfg.assoc);
}

std::size_t
Btb::setOf(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) & (numSets - 1));
}

Addr
Btb::tagOf(Addr pc) const
{
    return (pc >> 2) / numSets;
}

const BtbEntry*
Btb::lookup(Addr pc)
{
    ++stats_.lookups;
    std::size_t base = setOf(pc) * cfg.assoc;
    Addr tag = tagOf(pc);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Way& way = ways[base + w];
        if (way.valid && way.tag == tag) {
            way.lru = ++lruClock;
            ++stats_.hits;
            return &way.entry;
        }
    }
    return nullptr;
}

const BtbEntry*
Btb::probe(Addr pc) const
{
    std::size_t base = setOf(pc) * cfg.assoc;
    Addr tag = tagOf(pc);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const Way& way = ways[base + w];
        if (way.valid && way.tag == tag) {
            return &way.entry;
        }
    }
    return nullptr;
}

void
Btb::insert(Addr pc, BranchKind kind, Addr target)
{
    std::size_t base = setOf(pc) * cfg.assoc;
    Addr tag = tagOf(pc);

    Way* victim = nullptr;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Way& way = ways[base + w];
        if (way.valid && way.tag == tag) {
            way.entry.kind = kind;
            way.entry.target = target;
            way.lru = ++lruClock;
            return;
        }
        if (!way.valid) {
            if (!victim || victim->valid) {
                victim = &way;
            }
        } else if (!victim || (victim->valid && way.lru < victim->lru)) {
            victim = &way;
        }
    }

    assert(victim);
    if (victim->valid) {
        ++stats_.evictions;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->entry.kind = kind;
    victim->entry.target = target;
    victim->lru = ++lruClock;
    ++stats_.inserts;
}

std::uint64_t
Btb::storageBits() const
{
    // tag(~40) + target(~32 compressed) + kind(3) + lru(~3) per entry.
    return std::uint64_t{cfg.numEntries} * (40 + 32 + 3 + 3);
}

} // namespace udp

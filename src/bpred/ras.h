/**
 * @file
 * Return address stack with lightweight checkpointing: recovery restores
 * the top-of-stack pointer and the top value (the standard low-cost RAS
 * repair scheme).
 */

#ifndef UDP_BPRED_RAS_H
#define UDP_BPRED_RAS_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace udp {

/** Snapshot for recovery. */
struct RasCheckpoint
{
    std::uint32_t tos = 0;
    Addr topValue = kInvalidAddr;
};

/** Circular return address stack. */
class Ras
{
  public:
    explicit Ras(unsigned num_entries = 64)
        : stack(num_entries, kInvalidAddr)
    {
    }

    void
    push(Addr ret)
    {
        tos = (tos + 1) % stack.size();
        stack[tos] = ret;
    }

    /** Pops and returns the predicted return address. */
    Addr
    pop()
    {
        Addr v = stack[tos];
        tos = (tos + static_cast<std::uint32_t>(stack.size()) - 1) %
              stack.size();
        return v;
    }

    /** Peek without popping. */
    Addr top() const { return stack[tos]; }

    RasCheckpoint
    checkpoint() const
    {
        return RasCheckpoint{tos, stack[tos]};
    }

    void
    restore(const RasCheckpoint& c)
    {
        tos = c.tos % stack.size();
        stack[tos] = c.topValue;
    }

    std::size_t capacity() const { return stack.size(); }

  private:
    std::vector<Addr> stack;
    std::uint32_t tos = 0;
};

} // namespace udp

#endif // UDP_BPRED_RAS_H

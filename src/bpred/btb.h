/**
 * @file
 * Branch Target Buffer: set-associative, fully tagged, LRU. The decoupled
 * frontend discovers branches through the BTB; a BTB miss makes the
 * frontend run past a taken branch onto the sequential (wrong) path until
 * post-fetch correction or branch resolution.
 */

#ifndef UDP_BPRED_BTB_H
#define UDP_BPRED_BTB_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "workload/isa.h"

namespace udp {

/** One BTB entry as seen by the frontend. */
struct BtbEntry
{
    BranchKind kind = BranchKind::None;
    Addr target = kInvalidAddr; ///< direct target; hint for indirect
};

/** Configuration. */
struct BtbConfig
{
    unsigned numEntries = 8192; ///< total entries
    unsigned assoc = 8;
};

/** Statistics. */
struct BtbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
};

/** Set-associative BTB with true-LRU replacement. */
class Btb
{
  public:
    explicit Btb(const BtbConfig& cfg);

    /** Looks up the branch at @p pc; nullptr on miss. Updates LRU on hit. */
    const BtbEntry* lookup(Addr pc);

    /** Probe without LRU/stat side effects (for tests/oracles). */
    const BtbEntry* probe(Addr pc) const;

    /** Inserts or updates the entry for @p pc. */
    void insert(Addr pc, BranchKind kind, Addr target);

    const BtbStats& stats() const { return stats_; }
    void clearStats() { stats_ = BtbStats(); }

    std::uint64_t storageBits() const;

  private:
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        BtbEntry entry;
        std::uint64_t lru = 0;
    };

    std::size_t setOf(Addr pc) const;
    Addr tagOf(Addr pc) const;

    BtbConfig cfg;
    std::size_t numSets;
    std::vector<Way> ways; ///< numSets * assoc, row-major
    std::uint64_t lruClock = 0;
    BtbStats stats_;
};

} // namespace udp

#endif // UDP_BPRED_BTB_H

/**
 * @file
 * Indirect branch target predictor: an ITTAGE-lite design with a
 * direct-mapped last-target base table plus tagged, history-indexed tables.
 */

#ifndef UDP_BPRED_IBTB_H
#define UDP_BPRED_IBTB_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace udp {

/** Configuration (defaults size to ~2K total entries per Table II). */
struct IbtbConfig
{
    unsigned baseEntries = 1024;
    unsigned numTagged = 2;
    unsigned taggedEntries = 512; ///< per tagged table
    unsigned tagBits = 10;
    std::array<unsigned, 4> histBits = {10, 24, 0, 0};
};

/** Per-prediction record for update. */
struct IbtbPrediction
{
    Addr target = kInvalidAddr;
    int provider = -1; ///< tagged table id or -1 for base
    std::array<std::uint32_t, 4> index{};
    std::array<std::uint16_t, 4> tag{};
    std::uint32_t baseIndex = 0;
};

/** Statistics. */
struct IbtbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;
};

/** ITTAGE-lite indirect target predictor. */
class Ibtb
{
  public:
    explicit Ibtb(const IbtbConfig& cfg);

    /**
     * Predicts the target of the indirect branch at @p pc under the packed
     * recent global history @p hist. Returns kInvalidAddr if never seen.
     */
    IbtbPrediction predict(Addr pc, std::uint64_t hist) const;

    /** Trains with the architectural target at retire. */
    void update(Addr pc, const IbtbPrediction& pred, Addr actual);

    const IbtbStats& stats() const { return stats_; }
    void clearStats() { stats_ = IbtbStats(); }

    std::uint64_t storageBits() const;

  private:
    struct TaggedEntry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        Addr target = kInvalidAddr;
        std::uint8_t conf = 0; ///< 2-bit replace/usefulness confidence
    };

    std::uint32_t taggedIndex(Addr pc, std::uint64_t hist, unsigned t) const;
    std::uint16_t taggedTag(Addr pc, std::uint64_t hist, unsigned t) const;

    IbtbConfig cfg;
    std::vector<Addr> base;
    std::vector<std::vector<TaggedEntry>> tagged;
    mutable IbtbStats stats_;
};

} // namespace udp

#endif // UDP_BPRED_IBTB_H

/**
 * @file
 * The branch prediction unit: TAGE-SC-L direction prediction, BTB, indirect
 * target predictor and RAS behind one facade, with speculative history
 * checkpointing used by the decoupled frontend for wrong-path recovery.
 */

#ifndef UDP_BPRED_BPU_H
#define UDP_BPRED_BPU_H

#include <cstdint>
#include <memory>

#include "bpred/btb.h"
#include "bpred/ibtb.h"
#include "bpred/loop_predictor.h"
#include "bpred/ras.h"
#include "bpred/statistical_corrector.h"
#include "bpred/tage.h"

namespace udp {

/** Aggregate configuration of the whole BPU. */
struct BpuConfig
{
    TageConfig tage;
    LoopPredictorConfig loop;
    ScConfig sc;
    BtbConfig btb;        ///< 8K entries (Table II)
    IbtbConfig ibtb;      ///< ~2K entries (Table II)
    unsigned rasEntries = 64;
    /** Insert taken unconditional CTIs into the global history. */
    bool unconditionalHistory = true;
};

/** Snapshot of all speculative BPU state for one in-flight branch. */
struct BpuCheckpoint
{
    TageHistState tage;
    RasCheckpoint ras;
    std::uint64_t hist64 = 0;
};

/** Full record of one conditional direction prediction. */
struct CondPredRecord
{
    TagePrediction tage;
    LoopPrediction loop;
    ScPrediction sc;
    bool taken = false;       ///< final decision
    Confidence conf = Confidence::Low;
};

/** BPU statistics. */
struct BpuStats
{
    std::uint64_t condPredictions = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t confHigh = 0;
    std::uint64_t confMed = 0;
    std::uint64_t confLow = 0;
    std::uint64_t indirectPredictions = 0;
    std::uint64_t returnPredictions = 0;
};

/** The branch prediction unit. */
class Bpu
{
  public:
    explicit Bpu(const BpuConfig& cfg);

    /**
     * Predicts the conditional branch at @p pc and speculatively inserts
     * the predicted outcome into the history. Checkpoint *before* calling.
     */
    CondPredRecord predictCond(Addr pc);

    /** Predicts an indirect target (kInvalidAddr when unknown). */
    IbtbPrediction predictIndirect(Addr pc);

    /** Predicts a return target (RAS pop). */
    Addr predictReturn() { ++stats_.returnPredictions; return ras_.pop(); }

    /** Notes a call: pushes the return address. */
    void pushReturn(Addr ret) { ras_.push(ret); }

    /**
     * Inserts an unconditional taken CTI into the history (no-op unless
     * configured). Call for jumps/calls/returns/indirects on the
     * speculative path.
     */
    void notifyUnconditional(Addr pc);

    /** Captures all speculative state (history + RAS). */
    BpuCheckpoint checkpoint() const;

    /**
     * Restores to @p ck (state from just before the recovering branch was
     * predicted), then re-inserts the branch's resolved outcome.
     * @param is_cond the recovering instruction is a conditional branch
     * @param taken its resolved direction (conditional) — unconditional
     *        CTIs re-insert a taken bit when configured
     */
    void recoverTo(const BpuCheckpoint& ck, Addr pc, bool is_cond, bool taken);

    /** Trains the direction predictors at retirement. */
    void trainCond(Addr pc, const CondPredRecord& rec, bool taken);

    /** Trains the indirect predictor at retirement. */
    void trainIndirect(Addr pc, const IbtbPrediction& rec, Addr actual);

    Btb& btb() { return btb_; }
    const Btb& btb() const { return btb_; }
    Ibtb& ibtb() { return ibtb_; }
    Ras& ras() { return ras_; }

    /** Packed recent global history (bit 0 = newest). */
    std::uint64_t history64() const { return hist64; }

    const BpuStats& stats() const { return stats_; }
    void clearStats() { stats_ = BpuStats(); }

    std::uint64_t storageBits() const;

  private:
    void pushHistory(bool taken, Addr pc);

    BpuConfig cfg;
    Tage tage_;
    LoopPredictor loop_;
    StatisticalCorrector sc_;
    Btb btb_;
    Ibtb ibtb_;
    Ras ras_;
    std::uint64_t hist64 = 0;
    BpuStats stats_;
};

} // namespace udp

#endif // UDP_BPRED_BPU_H

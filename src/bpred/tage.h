/**
 * @file
 * TAGE conditional branch predictor (the TAGE component of TAGE-SC-L [52]),
 * with per-prediction confidence (High/Med/Low) — the signal UDP's off-path
 * confidence counter consumes.
 */

#ifndef UDP_BPRED_TAGE_H
#define UDP_BPRED_TAGE_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/sat_counter.h"
#include "common/types.h"
#include "bpred/history.h"

namespace udp {

/** Prediction confidence exposed to UDP (paper Section IV-B). */
enum class Confidence : std::uint8_t { Low, Med, High };

/** Compile-time cap on the number of tagged tables. */
inline constexpr unsigned kMaxTageTables = 12;

/** Configuration of the TAGE predictor. */
struct TageConfig
{
    unsigned numTables = 10;     ///< tagged tables
    unsigned baseBits = 15;      ///< log2 bimodal entries
    unsigned tableBits = 11;     ///< log2 entries per tagged table
    unsigned tagBits = 11;
    unsigned ctrBits = 3;
    unsigned minHist = 8;
    unsigned maxHist = 640;
    unsigned usefulResetPeriod = 1 << 18; ///< updates between u-bit aging
};

/** Snapshot of all speculative history state (for recovery). */
struct TageHistState
{
    std::uint64_t ghistPos = 0;
    std::uint64_t pathHist = 0;
    std::array<FoldedHistory, kMaxTageTables> idxFold;
    std::array<FoldedHistory, kMaxTageTables> tagFold1;
    std::array<FoldedHistory, kMaxTageTables> tagFold2;
};

/** Per-prediction record, retained until update/squash. */
struct TagePrediction
{
    bool taken = false;          ///< final predicted direction
    Confidence conf = Confidence::Low;
    // Internals needed for a precise update:
    int provider = -1;           ///< providing tagged table, -1 = bimodal
    int alt = -1;                ///< alternate provider, -1 = bimodal
    bool providerPred = false;
    bool altPred = false;
    bool usedAlt = false;        ///< alt overrode a newly-allocated provider
    std::array<std::uint32_t, kMaxTageTables> index{};
    std::array<std::uint16_t, kMaxTageTables> tag{};
    std::uint32_t baseIndex = 0;
};

/**
 * The TAGE predictor. Speculative history is owned by the caller (Bpu) via
 * GlobalHistory; TAGE keeps the folded views and exposes snapshot/restore.
 */
class Tage
{
  public:
    explicit Tage(const TageConfig& cfg, std::uint64_t seed = 0x7a6e);

    /** Predicts the direction of the conditional branch at @p pc. */
    TagePrediction predict(Addr pc) const;

    /**
     * Speculatively inserts outcome @p taken into the history (call for
     * every predicted conditional branch, with the *predicted* direction).
     */
    void specUpdateHistory(bool taken, Addr pc);

    /** Captures all speculative history state. */
    TageHistState snapshot() const;

    /**
     * Restores state captured by snapshot(), then (optionally) re-inserts
     * the resolved outcome of the recovering branch.
     */
    void restore(const TageHistState& s);

    /**
     * Trains the predictor with the architectural outcome. @p pred must be
     * the record produced at prediction time for this branch instance.
     */
    void update(Addr pc, const TagePrediction& pred, bool taken);

    const TageConfig& config() const { return cfg; }

    /** Storage cost in bits (for the paper's hardware budget accounting). */
    std::uint64_t storageBits() const;

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        SignedSatCounter ctr;
        std::uint8_t useful = 0;
    };

    std::uint32_t tableIndex(Addr pc, unsigned t) const;
    std::uint16_t tableTag(Addr pc, unsigned t) const;
    std::uint32_t baseIndex(Addr pc) const;

    TageConfig cfg;
    std::vector<unsigned> histLen;
    std::vector<std::vector<Entry>> tables;
    std::vector<SatCounter> bimodal;

    GlobalHistory ghist;
    std::uint64_t pathHist = 0;
    std::array<FoldedHistory, kMaxTageTables> idxFold;
    std::array<FoldedHistory, kMaxTageTables> tagFold1;
    std::array<FoldedHistory, kMaxTageTables> tagFold2;

    SignedSatCounter useAltOnNa;
    std::uint64_t tick = 0;
    mutable std::uint64_t allocSeed;
};

} // namespace udp

#endif // UDP_BPRED_TAGE_H

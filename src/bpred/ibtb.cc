#include "bpred/ibtb.h"

#include <cassert>

#include "common/intmath.h"
#include "common/rng.h"

namespace udp {

Ibtb::Ibtb(const IbtbConfig& c) : cfg(c)
{
    assert(isPowerOf2(cfg.baseEntries));
    assert(isPowerOf2(cfg.taggedEntries));
    assert(cfg.numTagged <= 4);
    base.assign(cfg.baseEntries, kInvalidAddr);
    tagged.assign(cfg.numTagged,
                  std::vector<TaggedEntry>(cfg.taggedEntries));
}

std::uint32_t
Ibtb::taggedIndex(Addr pc, std::uint64_t hist, unsigned t) const
{
    std::uint64_t mask = cfg.histBits[t] >= 64
                             ? ~0ULL
                             : ((1ULL << cfg.histBits[t]) - 1);
    std::uint64_t h = hashCombine(pc >> 2, hist & mask, 0xb0b0 + t);
    return static_cast<std::uint32_t>(h & (cfg.taggedEntries - 1));
}

std::uint16_t
Ibtb::taggedTag(Addr pc, std::uint64_t hist, unsigned t) const
{
    std::uint64_t mask = cfg.histBits[t] >= 64
                             ? ~0ULL
                             : ((1ULL << cfg.histBits[t]) - 1);
    std::uint64_t h = hashCombine(pc >> 2, hist & mask, 0xc1c1 + t);
    return static_cast<std::uint16_t>((h >> 13) & ((1u << cfg.tagBits) - 1));
}

IbtbPrediction
Ibtb::predict(Addr pc, std::uint64_t hist) const
{
    ++stats_.lookups;
    IbtbPrediction p;
    p.baseIndex =
        static_cast<std::uint32_t>((pc >> 2) & (cfg.baseEntries - 1));

    for (unsigned t = 0; t < cfg.numTagged; ++t) {
        p.index[t] = taggedIndex(pc, hist, t);
        p.tag[t] = taggedTag(pc, hist, t);
    }
    // Longest-history match wins.
    for (int t = static_cast<int>(cfg.numTagged) - 1; t >= 0; --t) {
        const TaggedEntry& e = tagged[t][p.index[t]];
        if (e.valid && e.tag == p.tag[t]) {
            p.provider = t;
            p.target = e.target;
            return p;
        }
    }
    p.target = base[p.baseIndex];
    return p;
}

void
Ibtb::update(Addr pc, const IbtbPrediction& p, Addr actual)
{
    (void)pc;
    const bool correct = p.target == actual;
    if (!correct) {
        ++stats_.mispredicts;
    }

    if (p.provider >= 0) {
        TaggedEntry& e = tagged[p.provider][p.index[p.provider]];
        if (correct) {
            if (e.conf < 3) {
                ++e.conf;
            }
        } else {
            if (e.conf > 0) {
                --e.conf;
            } else {
                e.target = actual;
            }
        }
    }

    // Base table always tracks the latest target.
    base[p.baseIndex] = actual;

    // Allocate a longer-history entry on a misprediction.
    if (!correct) {
        for (unsigned t = p.provider < 0 ? 0 : p.provider + 1;
             t < cfg.numTagged; ++t) {
            TaggedEntry& e = tagged[t][p.index[t]];
            if (!e.valid || e.conf == 0) {
                e.valid = true;
                e.tag = p.tag[t];
                e.target = actual;
                e.conf = 1;
                break;
            }
            --e.conf;
        }
    }
}

std::uint64_t
Ibtb::storageBits() const
{
    std::uint64_t bits = std::uint64_t{cfg.baseEntries} * 32;
    bits += std::uint64_t{cfg.numTagged} * cfg.taggedEntries *
            (cfg.tagBits + 32 + 2 + 1);
    return bits;
}

} // namespace udp

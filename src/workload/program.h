/**
 * @file
 * The static program image: a flat array of synthetic instructions plus the
 * behaviour tables they reference. Shared (read-only) between the
 * architectural walker and the speculating frontend.
 */

#ifndef UDP_WORKLOAD_PROGRAM_H
#define UDP_WORKLOAD_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "workload/isa.h"
#include "workload/outcome.h"

namespace udp {

/**
 * An immutable synthetic program.
 *
 * Instruction i occupies [codeBase + 4i, codeBase + 4i + 4). All targets are
 * instruction indices into the same image. Construction goes through
 * ProgramBuilder; tests may also populate the fields directly via the
 * friend builder-style factory makeForTest().
 */
class Program
{
  public:
    /** Base virtual address of the code segment. */
    static constexpr Addr kCodeBase = 0x400000;
    /** Base virtual address of the data segment. */
    static constexpr Addr kDataBase = 0x10000000;

    Program() = default;

    const std::string& name() const { return name_; }
    std::size_t numInstrs() const { return instrs_.size(); }
    Addr codeBase() const { return kCodeBase; }
    /** Total static code size in bytes. */
    std::uint64_t codeBytes() const { return instrs_.size() * kInstrBytes; }

    /** Entry instruction index. */
    InstIdx entry() const { return entry_; }
    Addr entryPc() const { return pcOf(entry_); }

    Addr pcOf(InstIdx i) const { return kCodeBase + Addr{i} * kInstrBytes; }

    /** True when @p pc addresses an instruction in the image. */
    bool
    validPc(Addr pc) const
    {
        return pc >= kCodeBase && pc < kCodeBase + codeBytes() &&
               (pc - kCodeBase) % kInstrBytes == 0;
    }

    InstIdx
    indexOf(Addr pc) const
    {
        return static_cast<InstIdx>((pc - kCodeBase) / kInstrBytes);
    }

    const Instr& instrAt(InstIdx i) const { return instrs_[i]; }
    const Instr& instrAtPc(Addr pc) const { return instrs_[indexOf(pc)]; }

    const BranchBehavior&
    condBehavior(const Instr& in) const
    {
        return condBehaviors_[in.behavior];
    }

    const IndirectBehavior&
    indirectBehavior(const Instr& in) const
    {
        return indirectBehaviors_[in.behavior];
    }

    const MemPattern&
    memPattern(const Instr& in) const
    {
        return memPatterns_[in.behavior];
    }

    /** Resolves the @p k -th potential target of an indirect behaviour. */
    InstIdx
    indirectTarget(const IndirectBehavior& b, std::uint32_t k) const
    {
        return targetPool_[b.firstTarget + k];
    }

    std::size_t numCondBehaviors() const { return condBehaviors_.size(); }
    std::size_t numIndirectBehaviors() const { return indirectBehaviors_.size(); }
    std::size_t numMemPatterns() const { return memPatterns_.size(); }

    /** Count of static branch instructions (any kind). */
    std::uint64_t numStaticBranches() const;

    /** Test/builder factory: moves raw tables into a Program. */
    static Program
    assemble(std::string name, std::vector<Instr> instrs, InstIdx entry,
             std::vector<BranchBehavior> cond,
             std::vector<IndirectBehavior> indirect,
             std::vector<InstIdx> target_pool,
             std::vector<MemPattern> mem);

    /** Validates internal consistency; returns a diagnostic or "" if OK. */
    std::string validate() const;

  private:
    std::string name_;
    std::vector<Instr> instrs_;
    InstIdx entry_ = 0;
    std::vector<BranchBehavior> condBehaviors_;
    std::vector<IndirectBehavior> indirectBehaviors_;
    std::vector<InstIdx> targetPool_;
    std::vector<MemPattern> memPatterns_;
};

} // namespace udp

#endif // UDP_WORKLOAD_PROGRAM_H

/**
 * @file
 * Branch outcome and memory address models.
 *
 * Outcomes are pure functions of (behaviour, path history, instance count)
 * so they are reproducible from both the architectural walker (true path)
 * and the wrong-path resolution logic (which has no architectural state).
 */

#ifndef UDP_WORKLOAD_OUTCOME_H
#define UDP_WORKLOAD_OUTCOME_H

#include <cstdint>

#include "common/types.h"

namespace udp {

/** Predictability class of a conditional branch. */
enum class BranchClass : std::uint8_t {
    Biased,  ///< per-instance Bernoulli draw with takenProb (unpredictable beyond bias)
    Pattern, ///< deterministic function of recent global outcome history
    Loop,    ///< taken (trip-1) times then not-taken, repeating
};

/** Static behaviour of one conditional branch. */
struct BranchBehavior
{
    BranchClass cls = BranchClass::Biased;
    /** Probability of taken for Biased. */
    float takenProb = 0.5f;
    /** Probability the base outcome is flipped (unpredictable noise). */
    float noise = 0.0f;
    /** Number of recent history bits feeding a Pattern function. */
    std::uint8_t historyBits = 4;
    /** Loop trip count for Loop. */
    std::uint32_t trip = 2;
    /** Per-branch seed. */
    std::uint64_t seed = 0;
};

/** Static behaviour of one indirect branch. */
struct IndirectBehavior
{
    /** First entry in Program::targetPool. */
    std::uint32_t firstTarget = 0;
    /** Number of possible targets (>= 1). */
    std::uint16_t numTargets = 1;
    /** History bits that select the target; 0 = per-instance random. */
    std::uint8_t historyBits = 0;
    /** Probability of choosing a random target instead. */
    float noise = 0.0f;
    std::uint64_t seed = 0;
};

/** Address stream of one static load/store. */
struct MemPattern
{
    Addr base = 0;
    /** Region size in bytes (power of two preferred, not required). */
    std::uint64_t size = 4096;
    /** Access stride in bytes; 0 = pseudo-random within the region. */
    std::uint32_t stride = 0;
    std::uint64_t seed = 0;
};

/**
 * True-path outcome of a conditional branch instance.
 *
 * @param b behaviour
 * @param hist global conditional-outcome history (bit 0 = most recent)
 * @param count per-branch instance count (0 for the first execution)
 */
bool condOutcome(const BranchBehavior& b, std::uint64_t hist,
                 std::uint64_t count);

/**
 * Wrong-path outcome of a conditional branch instance: same distribution,
 * but derived only from speculative path state. Loop branches degrade to a
 * (trip-1)/trip biased draw.
 */
bool condOutcomeWrongPath(const BranchBehavior& b, std::uint64_t spec_hist,
                          std::uint64_t salt);

/**
 * True-path target selection for an indirect branch: returns an index in
 * [0, numTargets).
 */
std::uint32_t indirectChoice(const IndirectBehavior& b, std::uint64_t hist,
                             std::uint64_t count);

/** Wrong-path target selection (stateless analogue). */
std::uint32_t indirectChoiceWrongPath(const IndirectBehavior& b,
                                      std::uint64_t spec_hist,
                                      std::uint64_t salt);

/** Address of the @p count -th execution of a load/store pattern. */
Addr memAddress(const MemPattern& p, std::uint64_t count);

} // namespace udp

#endif // UDP_WORKLOAD_OUTCOME_H

/**
 * @file
 * The synthetic ISA used by the simulator.
 *
 * Instructions are fixed width (4 bytes). Each static instruction carries
 * everything the microarchitectural model needs: execution class and
 * latency, dependence distances (for the dataflow backend), control-flow
 * kind and target, and indices into the Program's behaviour tables that
 * define branch outcomes and load/store address streams.
 */

#ifndef UDP_WORKLOAD_ISA_H
#define UDP_WORKLOAD_ISA_H

#include <cstdint>

#include "common/types.h"

namespace udp {

/** Execution class of an instruction. */
enum class InstrType : std::uint8_t {
    Alu,    ///< integer/fp computation
    Load,   ///< memory read
    Store,  ///< memory write
    Branch, ///< any control-flow instruction
};

/** Control-flow kind; None for non-branches. */
enum class BranchKind : std::uint8_t {
    None,
    CondDirect,   ///< conditional, direct target
    Jump,         ///< unconditional direct
    IndirectJump, ///< unconditional, target from IndirectBehavior
    Call,         ///< direct call, pushes return address
    IndirectCall, ///< indirect call, pushes return address
    Return,       ///< pops return address
};

/** True for kinds that redirect control flow whenever executed. */
constexpr bool
isUnconditional(BranchKind k)
{
    return k != BranchKind::None && k != BranchKind::CondDirect;
}

/** True for kinds that push a return address. */
constexpr bool
isCall(BranchKind k)
{
    return k == BranchKind::Call || k == BranchKind::IndirectCall;
}

/** True for kinds whose target comes from an IndirectBehavior. */
constexpr bool
isIndirect(BranchKind k)
{
    return k == BranchKind::IndirectJump || k == BranchKind::IndirectCall;
}

/** Sentinel for "no behaviour/pattern table entry". */
inline constexpr std::uint32_t kNoBehavior = 0xffffffffu;

/**
 * One static instruction. Program stores these in a flat array; the pc of
 * instruction i is codeBase + i * kInstrBytes.
 */
struct Instr
{
    InstrType type = InstrType::Alu;
    BranchKind branch = BranchKind::None;
    /** Execution latency in cycles (ALU classes: 1..4). */
    std::uint8_t execLat = 1;
    /**
     * Dataflow: distances (in dynamic instructions) to up to two producer
     * instructions; 0 means no dependence through that slot.
     */
    std::uint8_t dep1 = 0;
    std::uint8_t dep2 = 0;
    /** Taken target as instruction index (direct branches/calls). */
    InstIdx target = 0;
    /**
     * Behaviour index: BranchBehavior for CondDirect, IndirectBehavior for
     * indirect kinds, MemPattern for Load/Store; kNoBehavior otherwise.
     */
    std::uint32_t behavior = kNoBehavior;
};

static_assert(sizeof(Instr) <= 16, "keep the static image compact");

} // namespace udp

#endif // UDP_WORKLOAD_ISA_H

#include "workload/outcome.h"

#include "common/rng.h"

namespace udp {

namespace {

/** Converts a hash to a uniform [0,1) double. */
double
frac(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Base (noise-free) outcome shared by true and wrong path. */
bool
baseOutcome(const BranchBehavior& b, std::uint64_t hist, std::uint64_t count)
{
    switch (b.cls) {
      case BranchClass::Biased:
        return frac(hashCombine(b.seed, count)) < b.takenProb;
      case BranchClass::Pattern: {
        std::uint64_t mask = b.historyBits >= 64
                                 ? ~0ULL
                                 : ((1ULL << b.historyBits) - 1);
        return (hashCombine(b.seed, hist & mask) & 1) != 0;
      }
      case BranchClass::Loop:
        return (count % b.trip) != (b.trip - 1);
    }
    return false;
}

bool
applyNoise(const BranchBehavior& b, bool base, std::uint64_t salt)
{
    if (b.noise <= 0.0f) {
        return base;
    }
    bool flip = frac(hashCombine(b.seed ^ 0xa5a5u, salt)) < b.noise;
    return flip ? !base : base;
}

} // namespace

bool
condOutcome(const BranchBehavior& b, std::uint64_t hist, std::uint64_t count)
{
    bool base = baseOutcome(b, hist, count);
    return applyNoise(b, base, count);
}

bool
condOutcomeWrongPath(const BranchBehavior& b, std::uint64_t spec_hist,
                     std::uint64_t salt)
{
    // No architectural instance count on the wrong path: substitute a salt
    // derived from the speculative context. Loop branches become biased.
    std::uint64_t pseudo_count = hashCombine(b.seed, spec_hist, salt);
    bool base;
    switch (b.cls) {
      case BranchClass::Biased:
        base = frac(hashCombine(b.seed, pseudo_count)) < b.takenProb;
        break;
      case BranchClass::Pattern: {
        std::uint64_t mask = b.historyBits >= 64
                                 ? ~0ULL
                                 : ((1ULL << b.historyBits) - 1);
        base = (hashCombine(b.seed, spec_hist & mask) & 1) != 0;
        break;
      }
      case BranchClass::Loop: {
        double p_taken = b.trip <= 1
                             ? 0.0
                             : static_cast<double>(b.trip - 1) / b.trip;
        base = frac(pseudo_count) < p_taken;
        break;
      }
      default:
        base = false;
    }
    return applyNoise(b, base, pseudo_count);
}

std::uint32_t
indirectChoice(const IndirectBehavior& b, std::uint64_t hist,
               std::uint64_t count)
{
    if (b.numTargets <= 1) {
        return 0;
    }
    std::uint64_t h;
    if (b.historyBits == 0) {
        h = hashCombine(b.seed, count);
    } else {
        std::uint64_t mask = (1ULL << b.historyBits) - 1;
        h = hashCombine(b.seed, hist & mask);
        if (b.noise > 0.0f &&
            frac(hashCombine(b.seed ^ 0x9191u, count)) < b.noise) {
            h = hashCombine(b.seed, count, hist);
        }
    }
    return static_cast<std::uint32_t>(h % b.numTargets);
}

std::uint32_t
indirectChoiceWrongPath(const IndirectBehavior& b, std::uint64_t spec_hist,
                        std::uint64_t salt)
{
    if (b.numTargets <= 1) {
        return 0;
    }
    std::uint64_t h;
    if (b.historyBits == 0) {
        h = hashCombine(b.seed, spec_hist, salt);
    } else {
        std::uint64_t mask = (1ULL << b.historyBits) - 1;
        h = hashCombine(b.seed, spec_hist & mask);
    }
    return static_cast<std::uint32_t>(h % b.numTargets);
}

Addr
memAddress(const MemPattern& p, std::uint64_t count)
{
    if (p.size == 0) {
        return p.base;
    }
    std::uint64_t off;
    if (p.stride != 0) {
        off = (count * p.stride) % p.size;
    } else {
        // Random 8-byte-aligned slot within the region.
        std::uint64_t slots = p.size / 8 ? p.size / 8 : 1;
        off = (hashCombine(p.seed, count) % slots) * 8;
    }
    return p.base + off;
}

} // namespace udp

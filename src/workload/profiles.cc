/**
 * @file
 * Calibrated profiles for the ten datacenter applications of the paper.
 *
 * The absolute trace content is proprietary; these profiles are tuned so
 * the *frontend characteristics* the paper's analysis keys on are
 * reproduced:
 *  - verilator: multi-MB streaming code, highly predictable branches, no
 *    reuse -> wants a very deep FTQ (paper: optimal 84-90).
 *  - xgboost:   sea of near-50/50 branches, tiny basic blocks, little
 *    reuse -> off-path prefetches are harmful, wants a shallow FTQ
 *    (paper: optimal 12-16) and benefits most from UDP.
 *  - clang/gcc: large footprints, decent predictability -> deep FTQ
 *    (paper: 54-60).
 *  - mysql/postgres/drupal/mongodb/tomcat/mediawiki: few-hundred-KB
 *    footprints, moderate predictability -> optimal FTQ 18-38.
 */

#include "workload/profile.h"

#include <stdexcept>

namespace udp {

namespace {

Profile
base(std::string name, std::uint64_t seed)
{
    Profile p;
    p.name = std::move(name);
    p.seed = seed;
    return p;
}

std::vector<Profile>
makeProfiles()
{
    std::vector<Profile> v;

    {   // mysql: OLTP engine, moderate footprint, decent locality.
        Profile p = base("mysql", 101);
        p.codeFootprintKB = 512;
        p.numHotFuncs = 12;
        p.hotWeight = 0.70;
        p.branchLoadDepFrac = 0.30;
        p.noise = 0.020;
        p.runLenMin = 4; p.runLenMax = 14;
        p.dataFootprintKB = 64 * 1024;
        p.strideFrac = 0.35;
        v.push_back(p);
    }
    {   // postgres: similar to mysql, slightly more predictable control flow.
        Profile p = base("postgres", 102);
        p.codeFootprintKB = 448;
        p.numHotFuncs = 14;
        p.hotWeight = 0.72;
        p.noise = 0.015;
        p.runLenMin = 4; p.runLenMax = 16;
        p.dataFootprintKB = 48 * 1024;
        p.strideFrac = 0.45;
        v.push_back(p);
    }
    {   // clang: very large code, long compilation phases, decent
        // predictability, weak reuse -> can run far ahead.
        Profile p = base("clang", 103);
        p.codeFootprintKB = 1536;
        p.numHotFuncs = 10;
        p.hotWeight = 0.35;
        p.noise = 0.012;
        p.runLenMin = 5; p.runLenMax = 18;
        p.funcSizeMinInstrs = 150; p.funcSizeMaxInstrs = 900;
        p.dataFootprintKB = 32 * 1024;
        v.push_back(p);
    }
    {   // gcc: like clang, slightly noisier.
        Profile p = base("gcc", 104);
        p.codeFootprintKB = 2048;
        p.numHotFuncs = 10;
        p.hotWeight = 0.30;
        p.noise = 0.015;
        p.runLenMin = 5; p.runLenMax = 18;
        p.funcSizeMinInstrs = 150; p.funcSizeMaxInstrs = 900;
        p.dataFootprintKB = 32 * 1024;
        v.push_back(p);
    }
    {   // drupal: PHP web serving, interpreter-ish dispatch, hot loops.
        Profile p = base("drupal", 105);
        p.codeFootprintKB = 384;
        p.numHotFuncs = 10;
        p.hotWeight = 0.75;
        p.noise = 0.030;
        p.switchFrac = 0.10;
        p.indirectNoise = 0.10;
        p.dataFootprintKB = 24 * 1024;
        v.push_back(p);
    }
    {   // verilator: generated RTL evaluation code; enormous straight-line
        // functions, near-perfectly biased branches, streamed once per
        // cycle of the simulated design (no reuse inside a pass).
        Profile p = base("verilator", 106);
        p.codeFootprintKB = 4096;
        p.numHotFuncs = 0;
        p.hotWeight = 0.0;
        p.noise = 0.002;
        p.biasedFrac = 0.75; p.patternFrac = 0.20; p.loopClassFrac = 0.05;
        p.biasLo = 0.985; p.biasHi = 0.999;
        p.branchLoadDepFrac = 0.05;
        p.runLenMin = 18; p.runLenMax = 60;
        p.diamondFrac = 0.55; p.loopFrac = 0.02; p.switchFrac = 0.01;
        p.callFrac = 0.42;
        p.funcSizeMinInstrs = 1500; p.funcSizeMaxInstrs = 6000;
        p.maxCallSitesPerFunc = 5;
        p.dataFootprintKB = 16 * 1024;
        p.strideFrac = 0.8;
        v.push_back(p);
    }
    {   // mongodb: document DB; frequent resteers keep FTQ occupancy low.
        Profile p = base("mongodb", 107);
        p.codeFootprintKB = 512;
        p.numHotFuncs = 12;
        p.hotWeight = 0.68;
        p.noise = 0.035;
        p.indirectNoise = 0.12;
        p.dataFootprintKB = 96 * 1024;
        p.strideFrac = 0.25;
        v.push_back(p);
    }
    {   // tomcat: JVM app server; JIT-ed code with virtual dispatch.
        Profile p = base("tomcat", 108);
        p.codeFootprintKB = 640;
        p.numHotFuncs = 16;
        p.hotWeight = 0.75;
        p.noise = 0.025;
        p.switchFrac = 0.08;
        p.indirectNoise = 0.08;
        p.dataFootprintKB = 48 * 1024;
        v.push_back(p);
    }
    {   // xgboost: MB-scale generated decision-tree code -- a sea of
        // near-50/50 branches with tiny basic blocks and almost no reuse.
        Profile p = base("xgboost", 109);
        p.codeFootprintKB = 2048;
        p.numHotFuncs = 4;
        p.hotWeight = 0.08;
        p.biasedFrac = 0.92; p.patternFrac = 0.06; p.loopClassFrac = 0.02;
        p.biasLo = 0.42; p.biasHi = 0.60;
        p.noise = 0.02;
        p.runLenMin = 2; p.runLenMax = 5;
        p.diamondFrac = 0.85; p.loopFrac = 0.02; p.switchFrac = 0.05;
        p.switchFanoutMin = 8; p.switchFanoutMax = 16;
        p.indirectLoadDepFrac = 0.90;
        p.callFrac = 0.10;
        p.funcSizeMinInstrs = 2000; p.funcSizeMaxInstrs = 6000;
        p.maxStructDepth = 7;
        p.branchLoadDepFrac = 0.95;
        p.maxCallSitesPerFunc = 3;
        p.dataFootprintKB = 128 * 1024;
        p.strideFrac = 0.2;
        v.push_back(p);
    }
    {   // mediawiki: PHP wiki serving; small hot region, noisy dispatch.
        Profile p = base("mediawiki", 110);
        p.codeFootprintKB = 448;
        p.numHotFuncs = 8;
        p.hotWeight = 0.80;
        p.noise = 0.030;
        p.switchFrac = 0.10;
        p.indirectNoise = 0.10;
        p.dataFootprintKB = 24 * 1024;
        v.push_back(p);
    }

    return v;
}

} // namespace

const std::vector<Profile>&
datacenterProfiles()
{
    static const std::vector<Profile> profiles = makeProfiles();
    return profiles;
}

const Profile&
profileByName(const std::string& name)
{
    for (const Profile& p : datacenterProfiles()) {
        if (p.name == name) {
            return p;
        }
    }
    throw std::out_of_range("unknown profile: " + name);
}

} // namespace udp

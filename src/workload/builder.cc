#include "workload/builder.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <stdexcept>

#include "common/intmath.h"

namespace udp {

ProgramBuilder::ProgramBuilder(const Profile& p)
    : prof(p), rng(p.seed)
{
}

Program
ProgramBuilder::build(const Profile& profile)
{
    ProgramBuilder b(profile);
    Program prog = b.run();
    std::string err = prog.validate();
    if (!err.empty()) {
        throw std::runtime_error("generated program invalid: " + err);
    }
    return prog;
}

std::uint32_t
ProgramBuilder::makeCondBehavior(bool is_loop_backedge, std::uint32_t trip)
{
    BranchBehavior b;
    b.seed = rng.next();
    b.noise = static_cast<float>(prof.noise);
    if (is_loop_backedge) {
        b.cls = BranchClass::Loop;
        b.trip = std::max<std::uint32_t>(2, trip);
        // Back-edges are still slightly noisy but far more predictable.
        b.noise = static_cast<float>(prof.noise * 0.25);
    } else {
        double total = prof.biasedFrac + prof.patternFrac + prof.loopClassFrac;
        double u = rng.uniform() * (total > 0 ? total : 1.0);
        if (u < prof.biasedFrac) {
            b.cls = BranchClass::Biased;
            double mag = rng.uniform() * (prof.biasHi - prof.biasLo)
                         + prof.biasLo;
            // Half the branches are biased taken, half biased not-taken.
            b.takenProb = static_cast<float>(rng.chance(0.5) ? mag : 1.0 - mag);
        } else if (u < prof.biasedFrac + prof.patternFrac) {
            b.cls = BranchClass::Pattern;
            b.historyBits = static_cast<std::uint8_t>(
                rng.range(prof.patternBitsMin, prof.patternBitsMax));
        } else {
            b.cls = BranchClass::Loop;
            b.trip = static_cast<std::uint32_t>(
                rng.range(prof.loopTripMin, prof.loopTripMax));
        }
    }
    condBehaviors.push_back(b);
    return static_cast<std::uint32_t>(condBehaviors.size() - 1);
}

std::uint32_t
ProgramBuilder::makeMemPattern(bool strided)
{
    MemPattern p;
    p.seed = rng.next();
    std::uint64_t footprint = std::uint64_t{prof.dataFootprintKB} * 1024;
    // Window sizes between 4KB and 64KB, placed within the data footprint.
    std::uint64_t win = std::min<std::uint64_t>(
        footprint, 4096ULL << rng.range(0, 4));
    std::uint64_t max_base_off = footprint > win ? footprint - win : 0;
    p.base = Program::kDataBase +
             (max_base_off ? alignDown(rng.below(max_base_off + 1), 64) : 0);
    p.size = win;
    if (strided) {
        static const std::uint32_t strides[] = {8, 8, 16, 64, 64, 128};
        p.stride = strides[rng.below(std::size(strides))];
    } else {
        p.stride = 0;
    }
    memPatterns.push_back(p);
    return static_cast<std::uint32_t>(memPatterns.size() - 1);
}

void
ProgramBuilder::emitSimple()
{
    Instr in;
    double u = rng.uniform();
    if (u < prof.loadFrac + prof.storeFrac) {
        in.type = u < prof.loadFrac ? InstrType::Load : InstrType::Store;
        // Patterns come from a bounded shared pool: data locality in real
        // applications comes from many instructions touching the same hot
        // structures, not from per-instruction private regions.
        if (memPatterns.size() < prof.memPatternPool) {
            in.behavior = makeMemPattern(rng.chance(prof.strideFrac));
        } else {
            in.behavior = static_cast<std::uint32_t>(
                rng.below(memPatterns.size()));
        }
    } else {
        in.type = InstrType::Alu;
        // Latency classes: mostly 1-cycle, some 3 (mul) and 4 (fp).
        double lu = rng.uniform();
        in.execLat = lu < 0.8 ? 1 : (lu < 0.95 ? 3 : 4);
    }
    if (rng.chance(prof.depChance1)) {
        in.dep1 = static_cast<std::uint8_t>(rng.range(1, prof.maxDepDist));
    }
    if (rng.chance(prof.depChance2)) {
        in.dep2 = static_cast<std::uint8_t>(rng.range(1, prof.maxDepDist));
    }
    instrs.push_back(in);
}

void
ProgramBuilder::emitLoadForDep()
{
    Instr ld;
    ld.type = InstrType::Load;
    if (memPatterns.size() < prof.memPatternPool) {
        ld.behavior = makeMemPattern(rng.chance(prof.strideFrac));
    } else {
        ld.behavior =
            static_cast<std::uint32_t>(rng.below(memPatterns.size()));
    }
    instrs.push_back(ld);
}

InstIdx
ProgramBuilder::emitBranch(BranchKind kind)
{
    Instr in;
    in.type = InstrType::Branch;
    in.branch = kind;
    instrs.push_back(in);
    return static_cast<InstIdx>(instrs.size() - 1);
}

void
ProgramBuilder::genRun(std::uint32_t max_len)
{
    std::uint32_t len = static_cast<std::uint32_t>(
        rng.range(prof.runLenMin, prof.runLenMax));
    len = std::min(len, std::max<std::uint32_t>(1, max_len));
    for (std::uint32_t i = 0; i < len; ++i) {
        emitSimple();
    }
}

void
ProgramBuilder::genDiamond(std::uint32_t budget, unsigned depth)
{
    // Optionally make the branch condition depend on a fresh load (the
    // compare-feature-and-branch idiom): resolution then waits for the
    // dcache, stretching the wrong-path window after a misprediction.
    bool load_dep = rng.chance(prof.branchLoadDepFrac);
    if (load_dep) {
        emitLoadForDep();
    }

    // cond (taken -> ELSE) / then-block / jump MERGE / ELSE / MERGE
    InstIdx cond = emitBranch(BranchKind::CondDirect);
    instrs[cond].behavior = makeCondBehavior(false, 0);
    if (load_dep) {
        instrs[cond].dep1 = 1;
    }

    std::uint32_t half = budget / 2;
    genBody(half, depth + 1);
    InstIdx jmp = emitBranch(BranchKind::Jump);

    InstIdx else_start = static_cast<InstIdx>(instrs.size());
    instrs[cond].target = else_start;
    genBody(budget - half, depth + 1);

    InstIdx merge = static_cast<InstIdx>(instrs.size());
    instrs[jmp].target = merge;
    // Code after the merge point follows from the caller's continued body.
}

void
ProgramBuilder::genLoop(std::uint32_t budget, unsigned depth)
{
    // Loop bodies are flat straight-line runs: large-footprint datacenter
    // code spends its time streaming across functions, not spinning in
    // deep loop nests (nesting would collapse the dynamic footprint).
    (void)depth;
    InstIdx head = static_cast<InstIdx>(instrs.size());
    std::uint32_t body = std::max<std::uint32_t>(prof.runLenMin,
                                                 std::min(budget, 48u));
    for (std::uint32_t i = 0; i < body; ++i) {
        emitSimple();
    }
    std::uint32_t trip = static_cast<std::uint32_t>(
        rng.range(prof.loopTripMin, prof.loopTripMax));
    InstIdx back = emitBranch(BranchKind::CondDirect);
    instrs[back].behavior = makeCondBehavior(true, trip);
    instrs[back].target = head;
}

void
ProgramBuilder::genSwitch(std::uint32_t budget, unsigned depth)
{
    std::uint32_t fanout = static_cast<std::uint32_t>(
        rng.range(prof.switchFanoutMin, prof.switchFanoutMax));

    bool load_dep = rng.chance(prof.indirectLoadDepFrac);
    if (load_dep) {
        emitLoadForDep();
    }
    InstIdx sw = emitBranch(BranchKind::IndirectJump);
    if (load_dep) {
        instrs[sw].dep1 = 1;
    }

    std::vector<InstIdx> case_entries;
    std::vector<InstIdx> exit_jumps;
    std::uint32_t per_case = std::max<std::uint32_t>(4, budget / fanout);
    for (std::uint32_t c = 0; c < fanout; ++c) {
        case_entries.push_back(static_cast<InstIdx>(instrs.size()));
        genBody(per_case, depth + 1);
        exit_jumps.push_back(emitBranch(BranchKind::Jump));
    }
    InstIdx merge = static_cast<InstIdx>(instrs.size());
    for (InstIdx j : exit_jumps) {
        instrs[j].target = merge;
    }

    IndirectBehavior b;
    b.seed = rng.next();
    b.firstTarget = static_cast<std::uint32_t>(targetPool.size());
    b.numTargets = static_cast<std::uint16_t>(fanout);
    b.historyBits = static_cast<std::uint8_t>(prof.indirectHistBits);
    b.noise = static_cast<float>(prof.indirectNoise);
    for (InstIdx t : case_entries) {
        targetPool.push_back(t);
    }
    indirectBehaviors.push_back(b);
    instrs[sw].behavior =
        static_cast<std::uint32_t>(indirectBehaviors.size() - 1);
}

void
ProgramBuilder::genCall()
{
    if (calleePool.empty() || callSitesEmitted >= prof.maxCallSitesPerFunc) {
        emitSimple();
        return;
    }
    ++callSitesEmitted;
    InstIdx callee = calleePool[rng.below(calleePool.size())];
    InstIdx call = emitBranch(BranchKind::Call);
    instrs[call].target = callee;
}

void
ProgramBuilder::genBody(std::uint32_t budget, unsigned depth)
{
    std::uint32_t start = static_cast<std::uint32_t>(instrs.size());
    while (instrs.size() - start < budget) {
        std::uint32_t remaining =
            budget - static_cast<std::uint32_t>(instrs.size() - start);
        if (remaining < prof.runLenMin + 2 || depth >= prof.maxStructDepth) {
            genRun(remaining);
            break;
        }
        double u = rng.uniform();
        double d = prof.diamondFrac;
        double l = d + prof.loopFrac;
        double s = l + prof.switchFrac;
        double c = s + prof.callFrac;
        if (u < d) {
            genRun(remaining / 4 + 1);
            genDiamond(std::min(remaining / 2, remaining - 4), depth);
        } else if (u < l) {
            genLoop(std::min<std::uint32_t>(remaining,
                                            rng.range(8, 48)),
                    depth);
        } else if (u < s) {
            genSwitch(std::min(remaining, remaining / 2 + 8), depth);
        } else if (u < c) {
            genRun(remaining / 4 + 1);
            genCall();
        } else {
            genRun(remaining);
        }
    }
}

InstIdx
ProgramBuilder::genFunction(std::uint32_t size_budget)
{
    InstIdx entry = static_cast<InstIdx>(instrs.size());
    callSitesEmitted = 0;
    genBody(size_budget, 0);
    emitBranch(BranchKind::Return);
    functions.push_back(entry);
    return entry;
}

Program
ProgramBuilder::run()
{
    const std::uint64_t total_instrs =
        std::uint64_t{prof.codeFootprintKB} * 1024 / kInstrBytes;

    // Reserve ~2% of the budget for the dispatcher.
    const std::uint64_t dispatcher_budget =
        std::max<std::uint64_t>(64, total_instrs / 50);
    const std::uint64_t func_budget = total_instrs - dispatcher_budget;

    instrs.reserve(total_instrs + 4096);

    // Generate functions leaf-level-first so call targets always exist.
    // Level-L functions only call deeper (> L) levels, which bounds the
    // dynamic call tree of one dispatcher iteration.
    const unsigned levels = std::max<std::uint32_t>(1, prof.callLevels);
    // Budget shares per level, deepest first (leaves get the most code).
    std::vector<double> share;
    double total_share = 0.0;
    for (unsigned l = 0; l < levels; ++l) {
        share.push_back(1.0 + 0.7 * l); // level 0 smallest
        total_share += share.back();
    }

    for (unsigned gen = 0; gen < levels; ++gen) {
        // gen 0 = deepest level (leaves), gen levels-1 = level 0.
        unsigned level = levels - 1 - gen;
        calleePool = functions; // everything deeper is callable
        std::size_t level_start = functions.size();
        std::uint64_t level_budget = static_cast<std::uint64_t>(
            func_budget * share[levels - 1 - level] / total_share);
        std::uint64_t level_end_instrs =
            std::min<std::uint64_t>(func_budget,
                                    instrs.size() + level_budget);
        do {
            std::uint32_t size = static_cast<std::uint32_t>(
                rng.range(prof.funcSizeMinInstrs, prof.funcSizeMaxInstrs));
            genFunction(size);
        } while (instrs.size() < level_end_instrs);
        if (level == 0) {
            level0.assign(functions.begin() +
                              static_cast<std::ptrdiff_t>(level_start),
                          functions.end());
        }
    }
    if (level0.empty()) {
        level0 = functions;
    }

    // Dispatcher: an infinite loop around an indirect call that selects a
    // function with hot/cold skew, plus some glue code.
    InstIdx dispatch_entry = static_cast<InstIdx>(instrs.size());

    genRun(8);

    // Build the skewed target pool: hot entries are replicated so that the
    // uniform selection of IndirectBehavior yields hotWeight probability of
    // landing on a hot function.
    std::vector<InstIdx> pool;
    std::uint32_t num_hot =
        std::min<std::uint32_t>(prof.numHotFuncs,
                                static_cast<std::uint32_t>(level0.size()));
    if (num_hot > 0 && prof.hotWeight > 0.0) {
        std::vector<InstIdx> hot;
        for (std::uint32_t i = 0; i < num_hot; ++i) {
            hot.push_back(level0[rng.below(level0.size())]);
        }
        // Pool size target ~512 entries: hotWeight of them hot.
        std::size_t pool_size = std::min<std::size_t>(
            512, std::max<std::size_t>(level0.size(), 64));
        std::size_t hot_slots =
            static_cast<std::size_t>(prof.hotWeight * pool_size);
        for (std::size_t i = 0; i < hot_slots; ++i) {
            pool.push_back(hot[i % hot.size()]);
        }
        while (pool.size() < pool_size) {
            pool.push_back(level0[rng.below(level0.size())]);
        }
    } else {
        pool = level0;
    }
    if (pool.empty()) {
        pool.push_back(dispatch_entry);
    }

    IndirectBehavior sel;
    sel.seed = rng.next();
    sel.firstTarget = static_cast<std::uint32_t>(targetPool.size());
    sel.numTargets = static_cast<std::uint16_t>(
        std::min<std::size_t>(pool.size(), 0xffff));
    sel.historyBits = 0; // per-instance selection: exercises the IBTB
    for (std::uint16_t i = 0; i < sel.numTargets; ++i) {
        targetPool.push_back(pool[i]);
    }
    indirectBehaviors.push_back(sel);

    emitLoadForDep();
    InstIdx icall = emitBranch(BranchKind::IndirectCall);
    instrs[icall].dep1 = 1;
    instrs[icall].behavior =
        static_cast<std::uint32_t>(indirectBehaviors.size() - 1);

    genRun(8);

    InstIdx loop_back = emitBranch(BranchKind::Jump);
    instrs[loop_back].target = dispatch_entry;

    return Program::assemble(prof.name, std::move(instrs), dispatch_entry,
                             std::move(condBehaviors),
                             std::move(indirectBehaviors),
                             std::move(targetPool), std::move(memPatterns));
}

} // namespace udp

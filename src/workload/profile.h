/**
 * @file
 * Workload profiles: the knobs that shape a synthetic program so it
 * reproduces the frontend characteristics of one of the paper's ten
 * datacenter applications (code footprint, branch predictability, BTB
 * pressure, reuse/hotness, data behaviour, ILP).
 */

#ifndef UDP_WORKLOAD_PROFILE_H
#define UDP_WORKLOAD_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace udp {

/** Generation parameters for one synthetic application. */
struct Profile
{
    std::string name = "custom";
    std::uint64_t seed = 1;

    // --- code structure -------------------------------------------------
    /** Approximate static code size. */
    std::uint32_t codeFootprintKB = 256;
    std::uint32_t funcSizeMinInstrs = 80;
    std::uint32_t funcSizeMaxInstrs = 600;
    /** Straight-line run length between control-flow constructs. */
    std::uint32_t runLenMin = 4;
    std::uint32_t runLenMax = 16;
    /** Structure mix inside a function body (need not sum to 1). */
    double diamondFrac = 0.45;
    double loopFrac = 0.08;
    double switchFrac = 0.05;
    double callFrac = 0.35;
    std::uint32_t switchFanoutMin = 3;
    std::uint32_t switchFanoutMax = 12;
    std::uint32_t maxStructDepth = 3;
    /** Call-graph depth levels below the dispatcher (bounds the dynamic
     *  call-tree size: level-L functions only call deeper levels). */
    std::uint32_t callLevels = 4;
    /** Cap on static call sites per function (bounds tree branching). */
    std::uint32_t maxCallSitesPerFunc = 3;

    // --- hotness / instruction reuse -------------------------------------
    /** Number of dispatcher targets considered hot. */
    std::uint32_t numHotFuncs = 8;
    /** Probability the top-level dispatcher picks a hot function. */
    double hotWeight = 0.8;

    // --- conditional branch predictability --------------------------------
    double biasedFrac = 0.40;
    double patternFrac = 0.45;
    double loopClassFrac = 0.15;
    /** Taken-probability magnitude range for Biased branches. */
    double biasLo = 0.85;
    double biasHi = 0.99;
    /** Outcome flip probability: the direct driver of mispredictions. */
    double noise = 0.02;
    std::uint32_t patternBitsMin = 2;
    std::uint32_t patternBitsMax = 8;
    std::uint32_t loopTripMin = 3;
    std::uint32_t loopTripMax = 16;

    // --- indirect branches -------------------------------------------------
    double indirectNoise = 0.05;
    std::uint32_t indirectHistBits = 8;

    // --- data side ----------------------------------------------------------
    std::uint32_t dataFootprintKB = 8192;
    /** Number of distinct load/store address patterns shared by all
     *  memory instructions (controls data locality / dcache pressure). */
    std::uint32_t memPatternPool = 48;
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    /** Fraction of loads with a regular stride (stream-prefetchable). */
    double strideFrac = 0.6;

    /** Fraction of diamond branches that depend on an immediately
     *  preceding load (feature compares etc.): lengthens branch
     *  resolution and thus wrong-path excursions. */
    double branchLoadDepFrac = 0.2;
    /** Same for indirect jumps/calls (data-driven dispatch): a
     *  mispredicted target then strands the frontend in disjoint code
     *  for a whole load latency. */
    double indirectLoadDepFrac = 0.3;

    // --- instruction-level parallelism ---------------------------------------
    double depChance1 = 0.7;
    double depChance2 = 0.3;
    std::uint32_t maxDepDist = 12;
};

/**
 * The ten datacenter application profiles evaluated in the paper
 * (Table I / Section III-A), calibrated to this repo's synthetic
 * generator. Order matches the paper's figures.
 */
const std::vector<Profile>& datacenterProfiles();

/** Lookup by name; throws std::out_of_range for unknown names. */
const Profile& profileByName(const std::string& name);

} // namespace udp

#endif // UDP_WORKLOAD_PROFILE_H

#include "workload/serialize.h"
#include <type_traits>

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace udp {

namespace {

constexpr std::uint32_t kMagic = 0x55445031; // "UDP1"
constexpr std::uint32_t kVersion = 2;

template <typename T>
void
writePod(std::ostream& os, const T& v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream& is)
{
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!is) {
        throw std::runtime_error("program image truncated");
    }
    return v;
}

template <typename T>
void
writeVec(std::ostream& os, const std::vector<T>& v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    writePod<std::uint64_t>(os, v.size());
    if (!v.empty()) {
        os.write(reinterpret_cast<const char*>(v.data()),
                 static_cast<std::streamsize>(v.size() * sizeof(T)));
    }
}

template <typename T>
std::vector<T>
readVec(std::istream& is, std::uint64_t max_elems)
{
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = readPod<std::uint64_t>(is);
    if (n > max_elems) {
        throw std::runtime_error("program image field too large");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n) {
        is.read(reinterpret_cast<char*>(v.data()),
                static_cast<std::streamsize>(n * sizeof(T)));
        if (!is) {
            throw std::runtime_error("program image truncated");
        }
    }
    return v;
}

void
writeString(std::ostream& os, const std::string& s)
{
    writePod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream& is)
{
    std::uint32_t n = readPod<std::uint32_t>(is);
    if (n > 4096) {
        throw std::runtime_error("program name too long");
    }
    std::string s(n, '\0');
    is.read(s.data(), n);
    if (!is) {
        throw std::runtime_error("program image truncated");
    }
    return s;
}

} // namespace

void
saveProgram(const Program& prog, std::ostream& os)
{
    writePod(os, kMagic);
    writePod(os, kVersion);
    writeString(os, prog.name());
    writePod<std::uint32_t>(os, prog.entry());

    // Flatten the tables through the public accessors.
    std::vector<Instr> instrs;
    instrs.reserve(prog.numInstrs());
    for (InstIdx i = 0; i < prog.numInstrs(); ++i) {
        instrs.push_back(prog.instrAt(i));
    }
    writeVec(os, instrs);

    std::vector<BranchBehavior> cond;
    for (std::size_t i = 0; i < prog.numCondBehaviors(); ++i) {
        Instr probe;
        probe.behavior = static_cast<std::uint32_t>(i);
        cond.push_back(prog.condBehavior(probe));
    }
    writeVec(os, cond);

    std::vector<IndirectBehavior> ind;
    std::vector<InstIdx> pool;
    for (std::size_t i = 0; i < prog.numIndirectBehaviors(); ++i) {
        Instr probe;
        probe.behavior = static_cast<std::uint32_t>(i);
        IndirectBehavior b = prog.indirectBehavior(probe);
        // Rebase the target-pool slice while flattening.
        std::uint32_t new_first = static_cast<std::uint32_t>(pool.size());
        for (std::uint32_t k = 0; k < b.numTargets; ++k) {
            pool.push_back(prog.indirectTarget(b, k));
        }
        b.firstTarget = new_first;
        ind.push_back(b);
    }
    writeVec(os, ind);
    writeVec(os, pool);

    std::vector<MemPattern> mem;
    for (std::size_t i = 0; i < prog.numMemPatterns(); ++i) {
        Instr probe;
        probe.behavior = static_cast<std::uint32_t>(i);
        mem.push_back(prog.memPattern(probe));
    }
    writeVec(os, mem);

    if (!os) {
        throw std::runtime_error("failed to write program image");
    }
}

Program
loadProgram(std::istream& is)
{
    if (readPod<std::uint32_t>(is) != kMagic) {
        throw std::runtime_error("not a udp program image (bad magic)");
    }
    if (readPod<std::uint32_t>(is) != kVersion) {
        throw std::runtime_error("unsupported program image version");
    }
    std::string name = readString(is);
    InstIdx entry = readPod<std::uint32_t>(is);

    constexpr std::uint64_t kMax = 1ULL << 28;
    auto instrs = readVec<Instr>(is, kMax);
    auto cond = readVec<BranchBehavior>(is, kMax);
    auto ind = readVec<IndirectBehavior>(is, kMax);
    auto pool = readVec<InstIdx>(is, kMax);
    auto mem = readVec<MemPattern>(is, kMax);

    Program prog = Program::assemble(std::move(name), std::move(instrs),
                                     entry, std::move(cond), std::move(ind),
                                     std::move(pool), std::move(mem));
    std::string err = prog.validate();
    if (!err.empty()) {
        throw std::runtime_error("loaded program invalid: " + err);
    }
    return prog;
}

void
saveProgramFile(const Program& prog, const std::string& path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        throw std::runtime_error("cannot open for writing: " + path);
    }
    saveProgram(prog, os);
}

Program
loadProgramFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        throw std::runtime_error("cannot open for reading: " + path);
    }
    return loadProgram(is);
}

} // namespace udp

/**
 * @file
 * The architectural (true-path) walker: functionally executes a Program one
 * instruction at a time, producing the ground-truth dynamic stream the
 * backend retires and against which the speculating frontend is scored.
 */

#ifndef UDP_WORKLOAD_WALKER_H
#define UDP_WORKLOAD_WALKER_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "workload/program.h"

namespace udp {

/** One architecturally executed instruction instance. */
struct ArchInstr
{
    InstIdx idx = 0;
    Addr pc = kInvalidAddr;
    /** Address of the next architectural instruction. */
    Addr nextPc = kInvalidAddr;
    /** Conditional branches only: true outcome. */
    bool taken = false;
    /** Branches only: true target pc when taken (== nextPc if taken). */
    Addr takenTarget = kInvalidAddr;
    /** Loads/stores only: effective address. */
    Addr memAddr = kInvalidAddr;
};

/**
 * Steps through a Program along the architecturally correct path.
 *
 * Keeps the global conditional-outcome history, per-static-instruction
 * instance counts (driving loop trip counts and memory strides) and the
 * call stack. When execution falls off the call stack (return with an empty
 * stack) it restarts at the program entry, modelling a steady-state region
 * that loops forever.
 */
class Walker
{
  public:
    explicit Walker(const Program& prog);

    /** Executes and returns the next architectural instruction. */
    ArchInstr step();

    /** Current (next-to-execute) pc. */
    Addr pc() const { return program.pcOf(cur); }

    /** Global conditional outcome history (bit 0 = most recent). */
    std::uint64_t history() const { return hist; }

    /** Number of instructions stepped so far. */
    std::uint64_t numSteps() const { return steps; }

    /** Current call-stack depth. */
    std::size_t callDepth() const { return callStack.size(); }

  private:
    const Program& program;
    InstIdx cur;
    std::uint64_t hist = 0;
    std::uint64_t steps = 0;
    std::vector<std::uint32_t> counts;
    std::vector<InstIdx> callStack;
};

} // namespace udp

#endif // UDP_WORKLOAD_WALKER_H

#include "workload/program.h"

#include <sstream>

namespace udp {

std::uint64_t
Program::numStaticBranches() const
{
    std::uint64_t n = 0;
    for (const auto& in : instrs_) {
        if (in.branch != BranchKind::None) {
            ++n;
        }
    }
    return n;
}

Program
Program::assemble(std::string name, std::vector<Instr> instrs, InstIdx entry,
                  std::vector<BranchBehavior> cond,
                  std::vector<IndirectBehavior> indirect,
                  std::vector<InstIdx> target_pool, std::vector<MemPattern> mem)
{
    Program p;
    p.name_ = std::move(name);
    p.instrs_ = std::move(instrs);
    p.entry_ = entry;
    p.condBehaviors_ = std::move(cond);
    p.indirectBehaviors_ = std::move(indirect);
    p.targetPool_ = std::move(target_pool);
    p.memPatterns_ = std::move(mem);
    return p;
}

std::string
Program::validate() const
{
    std::ostringstream err;
    if (instrs_.empty()) {
        return "empty program";
    }
    if (entry_ >= instrs_.size()) {
        return "entry out of range";
    }
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
        const Instr& in = instrs_[i];
        const bool is_branch = in.branch != BranchKind::None;
        if (is_branch != (in.type == InstrType::Branch)) {
            err << "instr " << i << ": branch kind/type mismatch";
            return err.str();
        }
        switch (in.branch) {
          case BranchKind::CondDirect:
            if (in.behavior >= condBehaviors_.size()) {
                err << "instr " << i << ": cond behavior out of range";
                return err.str();
            }
            [[fallthrough]];
          case BranchKind::Jump:
          case BranchKind::Call:
            if (in.target >= instrs_.size()) {
                err << "instr " << i << ": target out of range";
                return err.str();
            }
            break;
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall: {
            if (in.behavior >= indirectBehaviors_.size()) {
                err << "instr " << i << ": indirect behavior out of range";
                return err.str();
            }
            const IndirectBehavior& b = indirectBehaviors_[in.behavior];
            if (b.numTargets == 0 ||
                std::size_t{b.firstTarget} + b.numTargets > targetPool_.size()) {
                err << "instr " << i << ": indirect target pool out of range";
                return err.str();
            }
            for (std::uint32_t k = 0; k < b.numTargets; ++k) {
                if (targetPool_[b.firstTarget + k] >= instrs_.size()) {
                    err << "instr " << i << ": pooled target out of range";
                    return err.str();
                }
            }
            break;
          }
          case BranchKind::Return:
          case BranchKind::None:
            break;
        }
        if ((in.type == InstrType::Load || in.type == InstrType::Store) &&
            in.behavior >= memPatterns_.size()) {
            err << "instr " << i << ": mem pattern out of range";
            return err.str();
        }
    }
    return "";
}

} // namespace udp

/**
 * @file
 * Binary serialization of Programs: save a generated workload to disk and
 * reload it exactly (the moral equivalent of the paper's shareable trace
 * artifacts — a saved Program plus the deterministic outcome models fully
 * determines the dynamic instruction stream).
 */

#ifndef UDP_WORKLOAD_SERIALIZE_H
#define UDP_WORKLOAD_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "workload/program.h"

namespace udp {

/** Writes @p prog to @p os; throws std::runtime_error on stream failure. */
void saveProgram(const Program& prog, std::ostream& os);

/** Convenience: saves to a file path. */
void saveProgramFile(const Program& prog, const std::string& path);

/**
 * Reads a Program previously written by saveProgram. Validates the magic,
 * version and internal consistency; throws std::runtime_error on any
 * mismatch or corruption.
 */
Program loadProgram(std::istream& is);

/** Convenience: loads from a file path. */
Program loadProgramFile(const std::string& path);

} // namespace udp

#endif // UDP_WORKLOAD_SERIALIZE_H

/**
 * @file
 * Indexable window over the architectural instruction stream.
 *
 * The frontend compares its speculative path against this stream to tag
 * fetched instructions on/off path (ground truth for statistics and for
 * resolving on-path branches); the backend retires against it. Entries are
 * produced lazily by the Walker and discarded once retired.
 */

#ifndef UDP_WORKLOAD_TRUE_STREAM_H
#define UDP_WORKLOAD_TRUE_STREAM_H

#include <cassert>
#include <cstdint>
#include <deque>

#include "workload/walker.h"

namespace udp {

/** Sliding window of ArchInstr indexed by absolute stream position. */
class TrueStream
{
  public:
    explicit TrueStream(const Program& prog) : walker(prog) {}

    /** The instruction at absolute position @p i (extends on demand). */
    const ArchInstr&
    at(std::uint64_t i)
    {
        assert(i >= base && "position already retired");
        while (base + buf.size() <= i) {
            buf.push_back(walker.step());
        }
        return buf[static_cast<std::size_t>(i - base)];
    }

    /** Discards entries below absolute position @p i. */
    void
    retireBelow(std::uint64_t i)
    {
        while (base < i && !buf.empty()) {
            buf.pop_front();
            ++base;
        }
    }

    std::uint64_t firstLive() const { return base; }
    std::size_t windowSize() const { return buf.size(); }

  private:
    Walker walker;
    std::deque<ArchInstr> buf;
    std::uint64_t base = 0;
};

} // namespace udp

#endif // UDP_WORKLOAD_TRUE_STREAM_H

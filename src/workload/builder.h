/**
 * @file
 * ProgramBuilder: generates a synthetic Program from a Profile.
 *
 * The builder emits real structured code — straight-line runs, if/else
 * diamonds (creating the merge points that make off-path prefetches
 * useful), natural loops, indirect switches and a call graph — laid out
 * contiguously in the synthetic address space, topped by a dispatcher
 * function that loops forever selecting callees with a configurable
 * hot/cold skew.
 */

#ifndef UDP_WORKLOAD_BUILDER_H
#define UDP_WORKLOAD_BUILDER_H

#include <vector>

#include "common/rng.h"
#include "workload/profile.h"
#include "workload/program.h"

namespace udp {

/** Builds Programs from Profiles. Stateless between build() calls. */
class ProgramBuilder
{
  public:
    /** Generates a validated Program for @p profile. */
    static Program build(const Profile& profile);

  private:
    explicit ProgramBuilder(const Profile& p);

    Program run();

    /** Emits one function body; returns its entry index. */
    InstIdx genFunction(std::uint32_t size_budget);

    /** Emits structured body items until the budget is consumed. */
    void genBody(std::uint32_t budget, unsigned depth);

    void genRun(std::uint32_t max_len);
    void genDiamond(std::uint32_t budget, unsigned depth);
    void genLoop(std::uint32_t budget, unsigned depth);
    void genSwitch(std::uint32_t budget, unsigned depth);
    void genCall();

    /** Emits one non-branch instruction. */
    void emitSimple();
    /** Emits a load that the immediately following branch depends on. */
    void emitLoadForDep();
    /** Emits a branch instruction; returns its index for target patching. */
    InstIdx emitBranch(BranchKind kind);

    std::uint32_t makeCondBehavior(bool is_loop_backedge, std::uint32_t trip);
    std::uint32_t makeMemPattern(bool strided);

    const Profile& prof;
    Rng rng;
    std::vector<Instr> instrs;
    std::vector<BranchBehavior> condBehaviors;
    std::vector<IndirectBehavior> indirectBehaviors;
    std::vector<InstIdx> targetPool;
    std::vector<MemPattern> memPatterns;
    std::vector<InstIdx> functions; ///< entry points generated so far
    /** Functions callable from the level currently being generated
     *  (entries of all deeper levels). */
    std::vector<InstIdx> calleePool;
    /** Entries of the most shallow (level 0) functions. */
    std::vector<InstIdx> level0;
    /** Call sites emitted in the function under construction. */
    std::uint32_t callSitesEmitted = 0;
};

} // namespace udp

#endif // UDP_WORKLOAD_BUILDER_H

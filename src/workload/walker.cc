#include "workload/walker.h"

#include <cassert>

namespace udp {

namespace {
/** Bound on modelled call depth; deeper calls behave like jumps. */
constexpr std::size_t kMaxCallDepth = 128;
} // namespace

Walker::Walker(const Program& prog)
    : program(prog), cur(prog.entry()), counts(prog.numInstrs(), 0)
{
    callStack.reserve(kMaxCallDepth);
}

ArchInstr
Walker::step()
{
    const Instr& in = program.instrAt(cur);
    ArchInstr out;
    out.idx = cur;
    out.pc = program.pcOf(cur);

    const std::uint32_t count = counts[cur]++;
    InstIdx next = cur + 1;
    if (next >= program.numInstrs()) {
        next = program.entry();
    }

    switch (in.branch) {
      case BranchKind::None:
        if (in.type == InstrType::Load || in.type == InstrType::Store) {
            out.memAddr = memAddress(program.memPattern(in), count);
        }
        break;
      case BranchKind::CondDirect: {
        const BranchBehavior& b = program.condBehavior(in);
        out.taken = condOutcome(b, hist, count);
        out.takenTarget = program.pcOf(in.target);
        hist = (hist << 1) | (out.taken ? 1 : 0);
        if (out.taken) {
            next = in.target;
        }
        break;
      }
      case BranchKind::Jump:
        out.taken = true;
        out.takenTarget = program.pcOf(in.target);
        next = in.target;
        break;
      case BranchKind::Call:
        out.taken = true;
        out.takenTarget = program.pcOf(in.target);
        if (callStack.size() < kMaxCallDepth) {
            callStack.push_back(cur + 1 < program.numInstrs()
                                    ? cur + 1
                                    : program.entry());
        }
        next = in.target;
        break;
      case BranchKind::IndirectJump:
      case BranchKind::IndirectCall: {
        const IndirectBehavior& b = program.indirectBehavior(in);
        std::uint32_t choice = indirectChoice(b, hist, count);
        InstIdx tgt = program.indirectTarget(b, choice);
        out.taken = true;
        out.takenTarget = program.pcOf(tgt);
        if (in.branch == BranchKind::IndirectCall &&
            callStack.size() < kMaxCallDepth) {
            callStack.push_back(cur + 1 < program.numInstrs()
                                    ? cur + 1
                                    : program.entry());
        }
        next = tgt;
        break;
      }
      case BranchKind::Return:
        out.taken = true;
        if (!callStack.empty()) {
            next = callStack.back();
            callStack.pop_back();
        } else {
            next = program.entry();
        }
        out.takenTarget = program.pcOf(next);
        break;
    }

    out.nextPc = program.pcOf(next);
    cur = next;
    ++steps;
    return out;
}

} // namespace udp

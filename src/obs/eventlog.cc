#include "obs/eventlog.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "stats/sink.h"

namespace udp::obs {

namespace {

double
monotonicSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
wallMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::string
fieldValueJson(const EventLog::Field& f)
{
    switch (f.type) {
    case EventLog::Field::Type::Str:
        return "\"" + jsonEscape(f.str) + "\"";
    case EventLog::Field::Type::U64: return std::to_string(f.u64);
    case EventLog::Field::Type::I64: return std::to_string(f.i64);
    case EventLog::Field::Type::F64: return formatNumber(f.f64);
    }
    return "null";
}

std::string
fieldValueHuman(const EventLog::Field& f)
{
    switch (f.type) {
    case EventLog::Field::Type::Str: return f.str;
    case EventLog::Field::Type::U64: return std::to_string(f.u64);
    case EventLog::Field::Type::I64: return std::to_string(f.i64);
    case EventLog::Field::Type::F64: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3g", f.f64);
        return buf;
    }
    }
    return "";
}

} // namespace

const char*
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    }
    return "?";
}

EventLog&
EventLog::global()
{
    static EventLog* log = [] {
        auto* l = new EventLog();
        if (const char* path = std::getenv("UDP_EVENT_LOG");
            path != nullptr && *path != '\0') {
            l->openSink(path);
        }
        if (const char* lvl = std::getenv("UDP_LOG_LEVEL");
            lvl != nullptr && *lvl != '\0') {
            if (std::strcmp(lvl, "debug") == 0) {
                l->setStderrLevel(LogLevel::Debug);
            } else if (std::strcmp(lvl, "info") == 0) {
                l->setStderrLevel(LogLevel::Info);
            } else if (std::strcmp(lvl, "warn") == 0) {
                l->setStderrLevel(LogLevel::Warn);
            } else if (std::strcmp(lvl, "error") == 0) {
                l->setStderrLevel(LogLevel::Error);
            }
        }
        return l;
    }();
    return *log;
}

void
EventLog::setStderrLevel(LogLevel level)
{
    std::lock_guard<std::mutex> lk(mtx_);
    stderrLevel_ = level;
}

void
EventLog::setSinkLevel(LogLevel level)
{
    std::lock_guard<std::mutex> lk(mtx_);
    sinkLevel_ = level;
}

bool
EventLog::openSink(const std::string& path)
{
    std::lock_guard<std::mutex> lk(mtx_);
    if (sink_.is_open()) {
        sink_.close();
    }
    sink_.open(path, std::ios::out | std::ios::app);
    return sink_.is_open();
}

void
EventLog::closeSink()
{
    std::lock_guard<std::mutex> lk(mtx_);
    if (sink_.is_open()) {
        sink_.close();
    }
}

void
EventLog::flushRingLocked()
{
    if (!sink_.is_open()) {
        return;
    }
    for (RingEntry& e : ring_) {
        if (!e.sunk) {
            sink_ << e.jsonLine << '\n';
            e.sunk = true;
        }
    }
    sink_.flush();
}

void
EventLog::emit(LogLevel level, const std::string& source,
               const std::string& event, const std::vector<Field>& fields,
               double rateLimitSec, bool force)
{
    std::lock_guard<std::mutex> lk(mtx_);

    if (rateLimitSec > 0.0 && !force) {
        std::string key = source + "/" + event;
        double now = monotonicSec();
        auto it = lastEmit_.find(key);
        if (it != lastEmit_.end() && now - it->second < rateLimitSec) {
            ++rateDrops_;
            return;
        }
        lastEmit_[key] = now;
    } else if (rateLimitSec > 0.0) {
        // Forced emission still arms the window so the next unforced
        // repeat is throttled against it.
        lastEmit_[source + "/" + event] = monotonicSec();
    }

    // JSONL record: fixed header keys, then the caller's fields in order.
    std::string json = "{\"ts_ms\":" + std::to_string(wallMs()) +
                       ",\"level\":\"" + logLevelName(level) +
                       "\",\"source\":\"" + jsonEscape(source) +
                       "\",\"event\":\"" + jsonEscape(event) + "\"";
    for (const Field& f : fields) {
        json += ",\"" + jsonEscape(f.key) + "\":" + fieldValueJson(f);
    }
    json += "}";

    bool sunk = false;
    if (sink_.is_open() && level >= sinkLevel_) {
        sink_ << json << '\n';
        sink_.flush();
        sunk = true;
    }

    ring_.push_back(RingEntry{json, level, sunk});
    if (ring_.size() > kRingCapacity) {
        ring_.pop_front();
    }
    if (level == LogLevel::Error) {
        flushRingLocked();
    }

    if (level >= stderrLevel_) {
        // Assemble the whole human line, then hand it to stderr as ONE
        // write: short single writes are atomic on POSIX pipes/terminals,
        // so parallel workers sharing the fd never interleave mid-line.
        std::string line = "[";
        line += source;
        line += "] ";
        if (level == LogLevel::Warn) {
            line += "warning: ";
        } else if (level == LogLevel::Error) {
            line += "error: ";
        }
        line += event;
        for (const Field& f : fields) {
            line += " ";
            line += f.key;
            line += "=";
            line += fieldValueHuman(f);
        }
        line += "\n";
        std::fwrite(line.data(), 1, line.size(), stderr);
        std::fflush(stderr);
    }
}

std::vector<std::string>
EventLog::recentLines() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    std::vector<std::string> out;
    out.reserve(ring_.size());
    for (const RingEntry& e : ring_) {
        out.push_back(e.jsonLine);
    }
    return out;
}

std::uint64_t
EventLog::rateLimitedDrops() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return rateDrops_;
}

} // namespace udp::obs

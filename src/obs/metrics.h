/**
 * @file
 * Process-wide metrics registry (docs/OBSERVABILITY.md).
 *
 * One registry per process holds named counters, gauges and log2
 * histograms shared by the simulator, the sweep engine, the distributed
 * coordinator/worker and the bench binaries. Registration (name lookup)
 * takes a mutex once per call site; the returned reference is stable for
 * the registry's lifetime, so hot paths cache it and every subsequent
 * increment is a single relaxed atomic RMW — no locks, safe from any
 * thread.
 *
 * Snapshots flatten everything into sorted (name, value) pairs: counters
 * and gauges by name, histograms as derived ".count"/".sum"/".p50"/
 * ".p99" keys. The coordinator embeds a snapshot in its STATUS JSON so
 * udp_top can show fleet-side rates without extra plumbing.
 */

#ifndef UDP_OBS_METRICS_H
#define UDP_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace udp::obs {

/** Monotonic event count. Increments are lock-free (relaxed atomics). */
class Counter
{
  public:
    void add(std::uint64_t d = 1)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-write-wins instantaneous value (queue depths, worker counts). */
class Gauge
{
  public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Power-of-two bucketed histogram of non-negative integer samples
 * (latencies in ms/us, sizes, attempt counts). Bucket b holds values in
 * [2^(b-1), 2^b); value 0 has its own bucket. observe() is two relaxed
 * atomic RMWs — concurrent observers never lose counts.
 */
class Log2Histogram
{
  public:
    /** Bucket 0 = value 0; buckets 1..64 = bit_width(value). */
    static constexpr std::size_t kBuckets = 65;

    void observe(std::uint64_t v)
    {
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    std::uint64_t count() const;
    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    std::uint64_t bucketCount(std::size_t b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    /**
     * Value at percentile @p p in [0, 100]: the inclusive upper bound of
     * the bucket holding the rank-ceil(p/100 * count) sample (so p=0 is
     * the smallest observed bucket, p=100 the largest). 0 when empty.
     */
    std::uint64_t percentile(double p) const;

    static std::size_t bucketOf(std::uint64_t v)
    {
        std::size_t b = 0;
        while (v != 0) {
            ++b;
            v >>= 1;
        }
        return b;
    }

    /** Inclusive upper bound of bucket @p b. */
    static std::uint64_t bucketUpper(std::size_t b)
    {
        if (b == 0) {
            return 0;
        }
        if (b >= 64) {
            return ~0ull;
        }
        return (1ull << b) - 1;
    }

  private:
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * The named-metric registry. counter()/gauge()/histogram() find or
 * create the metric under a mutex and return a reference that stays
 * valid for the registry's lifetime; concurrent callers racing to
 * register the same name get the same object.
 */
class Registry
{
  public:
    /** The process-wide registry. */
    static Registry& global();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Log2Histogram& histogram(const std::string& name);

    /**
     * Flattened snapshot, sorted by key. Counters/gauges appear under
     * their name; each histogram contributes "<name>.count",
     * "<name>.sum", "<name>.p50" and "<name>.p99".
     */
    std::vector<std::pair<std::string, std::int64_t>> snapshot() const;

    /** snapshot() as one stable-order JSON object. */
    std::string snapshotJson() const;

  private:
    mutable std::mutex mtx_;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::unordered_map<std::string, std::unique_ptr<Log2Histogram>> hists_;
};

/** Shorthands against the global registry. */
inline Counter&
counter(const std::string& name)
{
    return Registry::global().counter(name);
}

inline Gauge&
gauge(const std::string& name)
{
    return Registry::global().gauge(name);
}

inline Log2Histogram&
histogram(const std::string& name)
{
    return Registry::global().histogram(name);
}

} // namespace udp::obs

#endif // UDP_OBS_METRICS_H

/**
 * @file
 * Leveled structured event log (docs/OBSERVABILITY.md).
 *
 * Replaces the ad-hoc fprintf(stderr, ...) scattered through the sweep
 * engine, the distributed coordinator/worker and procexec with one
 * process-wide writer that renders each event twice:
 *
 *  - a human line on stderr ("[sweepd] progress done=5 total=50 ..."),
 *    assembled completely and emitted as ONE write so concurrent workers
 *    sharing a terminal never interleave mid-line;
 *  - a schema-stable JSONL record ({"ts_ms":...,"level":"info",
 *    "source":...,"event":..., <fields>}) to an optional file sink
 *    (UDP_EVENT_LOG=<path> or EventLog::openSink).
 *
 * Every emitted event also lands in a bounded in-memory ring. When an
 * Error-level event fires, the ring — including Debug events that were
 * below the sink threshold — is flushed to the sink first, so the file
 * always holds the context that led up to a failure.
 *
 * Rate limiting is per (source, event) key: Event::every(sec) drops
 * repeats inside the window (progress ticks); Event::force() bypasses it
 * (the final 100% line).
 */

#ifndef UDP_OBS_EVENTLOG_H
#define UDP_OBS_EVENTLOG_H

#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace udp::obs {

enum class LogLevel : std::uint8_t
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

const char* logLevelName(LogLevel level);

class EventLog
{
  public:
    /** The process-wide log. First use applies UDP_EVENT_LOG and
     *  UDP_LOG_LEVEL from the environment. */
    static EventLog& global();

    /** Minimum level echoed to stderr (default Info). */
    void setStderrLevel(LogLevel level);

    /** Minimum level written to the file sink (default Info; ring flush
     *  on error ignores this so pre-error Debug context survives). */
    void setSinkLevel(LogLevel level);

    /** Opens (appends to) @p path as the JSONL sink; returns success. */
    bool openSink(const std::string& path);
    void closeSink();

    struct Field
    {
        enum class Type : std::uint8_t
        {
            Str,
            U64,
            I64,
            F64,
        };
        std::string key;
        Type type = Type::Str;
        std::string str;
        std::uint64_t u64 = 0;
        std::int64_t i64 = 0;
        double f64 = 0.0;
    };

    /**
     * Emits one event. @p rateLimitSec > 0 drops the event when the same
     * (source, event) pair fired less than that many seconds ago, unless
     * @p force. Thread-safe; one mutex serializes formatting and both
     * writers.
     */
    void emit(LogLevel level, const std::string& source,
              const std::string& event, const std::vector<Field>& fields,
              double rateLimitSec = 0.0, bool force = false);

    /** Copy of the ring's JSON lines, oldest first (tests, diagnostics). */
    std::vector<std::string> recentLines() const;

    /** Events dropped by rate limiting since process start. */
    std::uint64_t rateLimitedDrops() const;

  private:
    struct RingEntry
    {
        std::string jsonLine;
        LogLevel level;
        bool sunk; ///< already written to the file sink
    };

    void flushRingLocked();

    static constexpr std::size_t kRingCapacity = 256;

    mutable std::mutex mtx_;
    std::ofstream sink_;
    std::deque<RingEntry> ring_;
    std::unordered_map<std::string, double> lastEmit_; ///< key -> monotonic s
    LogLevel stderrLevel_ = LogLevel::Info;
    LogLevel sinkLevel_ = LogLevel::Info;
    std::uint64_t rateDrops_ = 0;
};

/**
 * Fluent event builder:
 *
 *   obs::Event(obs::LogLevel::Info, "sweep", "progress")
 *       .u64("done", done).u64("total", total).f64("eta_sec", eta)
 *       .every(0.25)
 *       .emit();
 */
class Event
{
  public:
    Event(LogLevel level, std::string source, std::string event)
        : level_(level), source_(std::move(source)), event_(std::move(event))
    {
    }

    Event& str(const std::string& key, std::string value)
    {
        EventLog::Field f;
        f.key = key;
        f.type = EventLog::Field::Type::Str;
        f.str = std::move(value);
        fields_.push_back(std::move(f));
        return *this;
    }

    Event& u64(const std::string& key, std::uint64_t value)
    {
        EventLog::Field f;
        f.key = key;
        f.type = EventLog::Field::Type::U64;
        f.u64 = value;
        fields_.push_back(std::move(f));
        return *this;
    }

    Event& i64(const std::string& key, std::int64_t value)
    {
        EventLog::Field f;
        f.key = key;
        f.type = EventLog::Field::Type::I64;
        f.i64 = value;
        fields_.push_back(std::move(f));
        return *this;
    }

    Event& f64(const std::string& key, double value)
    {
        EventLog::Field f;
        f.key = key;
        f.type = EventLog::Field::Type::F64;
        f.f64 = value;
        fields_.push_back(std::move(f));
        return *this;
    }

    /** Rate-limit repeats of this (source, event) to one per @p sec. */
    Event& every(double sec)
    {
        rateLimitSec_ = sec;
        return *this;
    }

    /** Bypass the rate limit for this emission (final progress line). */
    Event& force()
    {
        force_ = true;
        return *this;
    }

    void emit()
    {
        EventLog::global().emit(level_, source_, event_, fields_,
                                rateLimitSec_, force_);
    }

  private:
    LogLevel level_;
    std::string source_;
    std::string event_;
    std::vector<EventLog::Field> fields_;
    double rateLimitSec_ = 0.0;
    bool force_ = false;
};

} // namespace udp::obs

#endif // UDP_OBS_EVENTLOG_H

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace udp::obs {

std::uint64_t
Log2Histogram::count() const
{
    std::uint64_t n = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        n += buckets_[b].load(std::memory_order_relaxed);
    }
    return n;
}

std::uint64_t
Log2Histogram::percentile(double p) const
{
    std::uint64_t counts[kBuckets];
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        counts[b] = buckets_[b].load(std::memory_order_relaxed);
        total += counts[b];
    }
    if (total == 0) {
        return 0;
    }
    if (p < 0.0) {
        p = 0.0;
    }
    if (p > 100.0) {
        p = 100.0;
    }
    // Rank of the sample at percentile p, 1-based; p=0 maps to rank 1 so
    // it lands in the smallest non-empty bucket.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    if (rank == 0) {
        rank = 1;
    }
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += counts[b];
        if (seen >= rank) {
            return bucketUpper(b);
        }
    }
    return bucketUpper(kBuckets - 1);
}

Registry&
Registry::global()
{
    static Registry r;
    return r;
}

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto& slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge&
Registry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto& slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Log2Histogram&
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto& slot = hists_[name];
    if (!slot) {
        slot = std::make_unique<Log2Histogram>();
    }
    return *slot;
}

std::vector<std::pair<std::string, std::int64_t>>
Registry::snapshot() const
{
    std::vector<std::pair<std::string, std::int64_t>> out;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        out.reserve(counters_.size() + gauges_.size() + hists_.size() * 4);
        for (const auto& [name, c] : counters_) {
            out.emplace_back(name, static_cast<std::int64_t>(c->value()));
        }
        for (const auto& [name, g] : gauges_) {
            out.emplace_back(name, g->value());
        }
        for (const auto& [name, h] : hists_) {
            out.emplace_back(name + ".count",
                             static_cast<std::int64_t>(h->count()));
            out.emplace_back(name + ".sum",
                             static_cast<std::int64_t>(h->sum()));
            out.emplace_back(name + ".p50",
                             static_cast<std::int64_t>(h->percentile(50)));
            out.emplace_back(name + ".p99",
                             static_cast<std::int64_t>(h->percentile(99)));
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
Registry::snapshotJson() const
{
    std::string out = "{";
    bool first = true;
    for (const auto& [name, value] : snapshot()) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "\"";
        out += name; // metric names are code-chosen identifiers, no escapes
        out += "\":";
        out += std::to_string(value);
    }
    out += "}";
    return out;
}

} // namespace udp::obs

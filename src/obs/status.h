/**
 * @file
 * Live sweep status surface (docs/OBSERVABILITY.md §status).
 *
 * One JSON document describes a running (or just-finished) distributed
 * sweep: totals, ETA, a per-job state string and per-worker health rows.
 * The coordinator serves it over the TCP wire protocol (OpStatus) and
 * mirrors it to "<queue-dir>/status.json" for the shared-filesystem
 * transport; tools/udp_top.cc consumes either to render the dashboard.
 *
 * The schema is append-only: new keys may be added, existing keys keep
 * their names and meaning so scripted `udp_top --once --json` consumers
 * don't break across versions.
 */

#ifndef UDP_OBS_STATUS_H
#define UDP_OBS_STATUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace udp::obs {

/** Health counters for one worker, as seen by the coordinator. */
struct WorkerStatusRow
{
    std::string name;
    std::uint64_t activeLeases = 0;
    std::uint64_t claims = 0;      ///< leases ever granted to this worker
    std::uint64_t completed = 0;   ///< successful results pushed
    std::uint64_t failed = 0;      ///< failed results pushed
    std::uint64_t retries = 0;     ///< claims that were re-attempts (>= 2)
    std::uint64_t stragglers = 0;  ///< duplicate speculative grants received
    std::uint64_t renewals = 0;    ///< lease heartbeats
    std::uint64_t expirations = 0; ///< leases lost to TTL expiry
    double lastSeenSec = -1.0;     ///< seconds since last contact, <0 unknown
};

/** Per-job lifecycle states for SweepStatus::jobStates. */
inline constexpr char kJobPending = 'P';
inline constexpr char kJobLeased = 'L';
inline constexpr char kJobDone = 'D';
inline constexpr char kJobFailed = 'F';

/** One live snapshot of a distributed sweep. */
struct SweepStatus
{
    std::string name;      ///< sweep/coordinator name ("" when unset)
    std::string transport; ///< "tcp" or "fs"
    std::uint64_t tsMs = 0;
    std::uint64_t total = 0;
    std::uint64_t done = 0; ///< successes only (mirrors runner accounting)
    std::uint64_t failed = 0;
    std::uint64_t resumed = 0; ///< finals absorbed from a prior manifest
    std::uint64_t pending = 0;
    std::uint64_t leased = 0;
    double elapsedSec = 0.0;
    double etaSec = -1.0; ///< <0 when not yet estimable
    /** One char per job index: P/L/D/F (kJob* above). */
    std::string jobStates;
    std::vector<WorkerStatusRow> workers;
    /** Coordinator-process metrics snapshot (Registry::snapshotJson),
     *  "{}" when absent. Opaque to the parser: kept as raw JSON. */
    std::string metricsJson = "{}";

    std::uint64_t finals() const { return done + failed; }
};

/** Single-line JSON rendering of @p s (the wire/file format). */
std::string sweepStatusToJson(const SweepStatus& s);

/** Parses sweepStatusToJson output. Returns false on malformed input. */
bool sweepStatusFromJson(const std::string& json, SweepStatus* out);

} // namespace udp::obs

#endif // UDP_OBS_STATUS_H

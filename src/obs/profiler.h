/**
 * @file
 * Cycle-loop self-profiler (docs/OBSERVABILITY.md §profiler).
 *
 * Attributes the simulator's *own* wall-clock — where does a simulated
 * cycle's host time go? — to coarse pipeline phases: icache/memory,
 * backend, fetch, branch prediction, prefetcher, other. This is the
 * measurement layer ROADMAP item 1 needs before optimizing the loop:
 * every perf PR can show where time moved, not just how much.
 *
 * Design: a phase-SWITCHING timer, not nested scoped timers. Cpu::cycle()
 * calls phase(p) at each section boundary; the elapsed time since the
 * previous switch is charged to the phase being *left*. One steady_clock
 * read per switch (~7 reads/cycle when enabled), and every nanosecond
 * between beginCycle() and endCycle() lands in exactly one phase — so
 * per-phase attribution sums to the measured loop time by construction.
 *
 * Compiled in unconditionally; gated at runtime by a raw-pointer null
 * check in Cpu::cycle() exactly like Telemetry, so the disabled cost is
 * one predictable branch per call site. Results ride on the Report as a
 * shared_ptr side-channel (outside the serialized stat schema), keeping
 * all artifacts byte-identical whether profiling is on or off.
 */

#ifndef UDP_OBS_PROFILER_H
#define UDP_OBS_PROFILER_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace udp {

namespace obs {

/** Wall-time attribution buckets for one simulated cycle. */
enum class ProfPhase : std::uint8_t
{
    Icache = 0,  ///< MemSystem::tick (caches, MSHRs, fill buffers)
    Backend,     ///< Backend::tick + resteer handling + dispatch
    Fetch,       ///< FetchStage::tick (fetch + decode pipe)
    Bpred,       ///< DecoupledFrontend::tick (BPU-driven FTQ fill)
    Prefetch,    ///< FdipEngine::tick + UDP/UFTQ maintenance
    Other,       ///< fault hooks, telemetry, watchdog, loop remainder
};

inline constexpr std::size_t kNumProfPhases = 6;

const char* profPhaseName(ProfPhase p);

/** One profiler reporting interval (ProfileConfig::intervalCycles). */
struct ProfileIntervalRow
{
    Cycle cycleStart = 0;
    Cycle cycleEnd = 0;
    double phaseSec[kNumProfPhases] = {};
    double totalSec() const;
};

/** End-of-window profile attached to Report::profile. */
struct ProfileSnapshot
{
    double phaseSec[kNumProfPhases] = {};
    double totalSec = 0.0; ///< sum of phaseSec (the attributed loop time)
    std::uint64_t cycles = 0;
    std::vector<ProfileIntervalRow> intervals;

    /** Fraction of attributed time in @p p (0 when nothing measured). */
    double phaseFrac(ProfPhase p) const;
};

class CycleProfiler
{
  public:
    explicit CycleProfiler(Cycle intervalCycles)
        : intervalCycles_(intervalCycles != 0 ? intervalCycles : 100000)
    {
    }

    /** Starts a cycle: the clock starts ticking against Other. */
    void beginCycle(Cycle now)
    {
        nowCycle_ = now;
        if (cycles_ == 0 && intervals_.empty()) {
            windowStartCycle_ = now;
            intervalStartCycle_ = now;
        }
        last_ = Clock::now();
        cur_ = ProfPhase::Other;
        inCycle_ = true;
    }

    /** Charges time since the last switch to the current phase, then
     *  switches to @p p. */
    void phase(ProfPhase p)
    {
        Clock::time_point t = Clock::now();
        acc_[static_cast<std::size_t>(cur_)] +=
            std::chrono::duration<double>(t - last_).count();
        last_ = t;
        cur_ = p;
    }

    /** Ends the cycle: charges the trailing segment to the phase that is
     *  still open and closes the interval when due. */
    void endCycle()
    {
        phase(ProfPhase::Other);
        inCycle_ = false;
        ++cycles_;
        if (nowCycle_ - intervalStartCycle_ + 1 >= intervalCycles_) {
            closeInterval();
        }
    }

    /** Resets the measurement window (Cpu::clearStats). */
    void clearStats();

    /** Copy of the window so far; a trailing partial interval is closed
     *  into the copy without perturbing live state. */
    std::shared_ptr<const ProfileSnapshot> snapshot() const;

    std::uint64_t cycles() const { return cycles_; }

  private:
    using Clock = std::chrono::steady_clock;

    void closeInterval();

    Cycle intervalCycles_;
    Clock::time_point last_{};
    ProfPhase cur_ = ProfPhase::Other;
    bool inCycle_ = false;
    double acc_[kNumProfPhases] = {};   ///< current (open) interval
    double total_[kNumProfPhases] = {}; ///< whole window
    Cycle windowStartCycle_ = 0;
    Cycle intervalStartCycle_ = 0;
    Cycle nowCycle_ = 0;
    std::uint64_t cycles_ = 0;
    std::vector<ProfileIntervalRow> intervals_;
};

} // namespace obs

/** Simulator self-profiling knobs (SimConfig::profile). */
struct ProfileConfig
{
    bool enabled = false;
    /** Cycles per reporting interval (Chrome-trace counter cadence). */
    Cycle intervalCycles = 100000;
};

} // namespace udp

#endif // UDP_OBS_PROFILER_H

#include "obs/profiler.h"

#include <cstring>

namespace udp::obs {

const char*
profPhaseName(ProfPhase p)
{
    switch (p) {
    case ProfPhase::Icache: return "icache";
    case ProfPhase::Backend: return "backend";
    case ProfPhase::Fetch: return "fetch";
    case ProfPhase::Bpred: return "bpred";
    case ProfPhase::Prefetch: return "prefetch";
    case ProfPhase::Other: return "other";
    }
    return "?";
}

double
ProfileIntervalRow::totalSec() const
{
    double t = 0.0;
    for (double s : phaseSec) {
        t += s;
    }
    return t;
}

double
ProfileSnapshot::phaseFrac(ProfPhase p) const
{
    if (totalSec <= 0.0) {
        return 0.0;
    }
    return phaseSec[static_cast<std::size_t>(p)] / totalSec;
}

void
CycleProfiler::closeInterval()
{
    ProfileIntervalRow row;
    row.cycleStart = intervalStartCycle_;
    row.cycleEnd = nowCycle_;
    for (std::size_t i = 0; i < kNumProfPhases; ++i) {
        row.phaseSec[i] = acc_[i];
        total_[i] += acc_[i];
        acc_[i] = 0.0;
    }
    intervals_.push_back(row);
    intervalStartCycle_ = nowCycle_ + 1;
}

void
CycleProfiler::clearStats()
{
    std::memset(acc_, 0, sizeof(acc_));
    std::memset(total_, 0, sizeof(total_));
    intervals_.clear();
    cycles_ = 0;
    windowStartCycle_ = nowCycle_;
    intervalStartCycle_ = nowCycle_;
}

std::shared_ptr<const ProfileSnapshot>
CycleProfiler::snapshot() const
{
    auto snap = std::make_shared<ProfileSnapshot>();
    snap->cycles = cycles_;
    snap->intervals = intervals_;
    for (std::size_t i = 0; i < kNumProfPhases; ++i) {
        snap->phaseSec[i] = total_[i];
    }
    // Fold the open interval into the copy so the snapshot covers the
    // whole window even when it doesn't end on an interval boundary.
    double open = 0.0;
    for (double s : acc_) {
        open += s;
    }
    if (open > 0.0) {
        ProfileIntervalRow row;
        row.cycleStart = intervalStartCycle_;
        row.cycleEnd = nowCycle_;
        for (std::size_t i = 0; i < kNumProfPhases; ++i) {
            row.phaseSec[i] = acc_[i];
            snap->phaseSec[i] += acc_[i];
        }
        snap->intervals.push_back(row);
    }
    for (double s : snap->phaseSec) {
        snap->totalSec += s;
    }
    return snap;
}

} // namespace udp::obs

#include "obs/status.h"

#include <charconv>
#include <cstddef>

#include "stats/sink.h"

namespace udp::obs {

namespace {

// Minimal JSON scanning for our own writer's output: enough structure
// awareness (strings, nesting) to slice values out of one flat object
// with one nested array and one nested object.

/** Advances past the string whose opening quote is at s[pos]. */
bool
skipString(const std::string& s, std::size_t* pos)
{
    if (*pos >= s.size() || s[*pos] != '"') {
        return false;
    }
    ++*pos;
    while (*pos < s.size() && s[*pos] != '"') {
        if (s[*pos] == '\\') {
            ++*pos;
        }
        ++*pos;
    }
    if (*pos >= s.size()) {
        return false;
    }
    ++*pos;
    return true;
}

/**
 * Returns the [start, end) span of the value for @p key inside the
 * object spanning [from, to) of @p s, or false when absent. The span of
 * a container value includes its brackets.
 */
bool
valueSpan(const std::string& s, std::size_t from, std::size_t to,
          const std::string& key, std::size_t* start, std::size_t* end)
{
    const std::string needle = "\"" + key + "\":";
    int depth = 0;
    std::size_t pos = from;
    while (pos < to) {
        char c = s[pos];
        if (c == '"') {
            // Only match keys at depth 1 (direct members of the object).
            if (depth == 1 && s.compare(pos, needle.size(), needle) == 0) {
                std::size_t v = pos + needle.size();
                std::size_t e = v;
                if (v < to && (s[v] == '{' || s[v] == '[')) {
                    char open = s[v];
                    char close = open == '{' ? '}' : ']';
                    int d = 0;
                    e = v;
                    while (e < to) {
                        if (s[e] == '"') {
                            if (!skipString(s, &e)) {
                                return false;
                            }
                            continue;
                        }
                        if (s[e] == open) {
                            ++d;
                        } else if (s[e] == close && --d == 0) {
                            ++e;
                            break;
                        }
                        ++e;
                    }
                } else if (v < to && s[v] == '"') {
                    e = v;
                    if (!skipString(s, &e)) {
                        return false;
                    }
                } else {
                    while (e < to && s[e] != ',' && s[e] != '}' &&
                           s[e] != ']') {
                        ++e;
                    }
                }
                *start = v;
                *end = e;
                return true;
            }
            if (!skipString(s, &pos)) {
                return false;
            }
            continue;
        }
        if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
        }
        ++pos;
    }
    return false;
}

bool
getString(const std::string& s, std::size_t from, std::size_t to,
          const std::string& key, std::string* out)
{
    std::size_t v = 0;
    std::size_t e = 0;
    if (!valueSpan(s, from, to, key, &v, &e) || e - v < 2 || s[v] != '"') {
        return false;
    }
    return jsonUnescape(s.substr(v + 1, e - v - 2), out);
}

bool
getU64(const std::string& s, std::size_t from, std::size_t to,
       const std::string& key, std::uint64_t* out)
{
    std::size_t v = 0;
    std::size_t e = 0;
    if (!valueSpan(s, from, to, key, &v, &e)) {
        return false;
    }
    auto res = std::from_chars(s.data() + v, s.data() + e, *out);
    return res.ec == std::errc{} && res.ptr == s.data() + e;
}

bool
getF64(const std::string& s, std::size_t from, std::size_t to,
       const std::string& key, double* out)
{
    std::size_t v = 0;
    std::size_t e = 0;
    if (!valueSpan(s, from, to, key, &v, &e)) {
        return false;
    }
    auto res = std::from_chars(s.data() + v, s.data() + e, *out);
    return res.ec == std::errc{} && res.ptr == s.data() + e;
}

std::string
workerRowJson(const WorkerStatusRow& w)
{
    return "{\"name\":\"" + jsonEscape(w.name) +
           "\",\"active\":" + std::to_string(w.activeLeases) +
           ",\"claims\":" + std::to_string(w.claims) +
           ",\"completed\":" + std::to_string(w.completed) +
           ",\"failed\":" + std::to_string(w.failed) +
           ",\"retries\":" + std::to_string(w.retries) +
           ",\"stragglers\":" + std::to_string(w.stragglers) +
           ",\"renewals\":" + std::to_string(w.renewals) +
           ",\"expirations\":" + std::to_string(w.expirations) +
           ",\"last_seen_sec\":" + formatNumber(w.lastSeenSec) + "}";
}

bool
parseWorkerRow(const std::string& s, std::size_t from, std::size_t to,
               WorkerStatusRow* w)
{
    if (!getString(s, from, to, "name", &w->name)) {
        return false;
    }
    bool ok = getU64(s, from, to, "active", &w->activeLeases);
    ok = getU64(s, from, to, "claims", &w->claims) && ok;
    ok = getU64(s, from, to, "completed", &w->completed) && ok;
    ok = getU64(s, from, to, "failed", &w->failed) && ok;
    ok = getU64(s, from, to, "retries", &w->retries) && ok;
    ok = getU64(s, from, to, "stragglers", &w->stragglers) && ok;
    ok = getU64(s, from, to, "renewals", &w->renewals) && ok;
    ok = getU64(s, from, to, "expirations", &w->expirations) && ok;
    ok = getF64(s, from, to, "last_seen_sec", &w->lastSeenSec) && ok;
    return ok;
}

} // namespace

std::string
sweepStatusToJson(const SweepStatus& s)
{
    std::string out = "{\"status\":\"sweep\",\"name\":\"" +
                      jsonEscape(s.name) + "\",\"transport\":\"" +
                      jsonEscape(s.transport) +
                      "\",\"ts_ms\":" + std::to_string(s.tsMs) +
                      ",\"total\":" + std::to_string(s.total) +
                      ",\"done\":" + std::to_string(s.done) +
                      ",\"failed\":" + std::to_string(s.failed) +
                      ",\"resumed\":" + std::to_string(s.resumed) +
                      ",\"pending\":" + std::to_string(s.pending) +
                      ",\"leased\":" + std::to_string(s.leased) +
                      ",\"elapsed_sec\":" + formatNumber(s.elapsedSec) +
                      ",\"eta_sec\":" + formatNumber(s.etaSec) +
                      ",\"job_states\":\"" + jsonEscape(s.jobStates) +
                      "\",\"workers\":[";
    for (std::size_t i = 0; i < s.workers.size(); ++i) {
        if (i != 0) {
            out += ",";
        }
        out += workerRowJson(s.workers[i]);
    }
    out += "],\"metrics\":";
    out += s.metricsJson.empty() ? "{}" : s.metricsJson;
    out += "}";
    return out;
}

bool
sweepStatusFromJson(const std::string& json, SweepStatus* out)
{
    SweepStatus s;
    std::size_t from = 0;
    std::size_t to = json.size();
    std::string kind;
    if (!getString(json, from, to, "status", &kind) || kind != "sweep") {
        return false;
    }
    if (!getString(json, from, to, "name", &s.name) ||
        !getString(json, from, to, "transport", &s.transport) ||
        !getU64(json, from, to, "ts_ms", &s.tsMs) ||
        !getU64(json, from, to, "total", &s.total) ||
        !getU64(json, from, to, "done", &s.done) ||
        !getU64(json, from, to, "failed", &s.failed) ||
        !getU64(json, from, to, "resumed", &s.resumed) ||
        !getU64(json, from, to, "pending", &s.pending) ||
        !getU64(json, from, to, "leased", &s.leased) ||
        !getF64(json, from, to, "elapsed_sec", &s.elapsedSec) ||
        !getF64(json, from, to, "eta_sec", &s.etaSec) ||
        !getString(json, from, to, "job_states", &s.jobStates)) {
        return false;
    }
    std::size_t wv = 0;
    std::size_t we = 0;
    if (!valueSpan(json, from, to, "workers", &wv, &we) || json[wv] != '[') {
        return false;
    }
    // Walk the array: each element is one object at depth 1 inside it.
    std::size_t pos = wv + 1;
    while (pos < we) {
        if (json[pos] == '{') {
            std::size_t objEnd = pos;
            int d = 0;
            while (objEnd < we) {
                if (json[objEnd] == '"') {
                    if (!skipString(json, &objEnd)) {
                        return false;
                    }
                    continue;
                }
                if (json[objEnd] == '{') {
                    ++d;
                } else if (json[objEnd] == '}' && --d == 0) {
                    ++objEnd;
                    break;
                }
                ++objEnd;
            }
            WorkerStatusRow w;
            if (!parseWorkerRow(json, pos, objEnd, &w)) {
                return false;
            }
            s.workers.push_back(std::move(w));
            pos = objEnd;
        } else {
            ++pos;
        }
    }
    std::size_t mv = 0;
    std::size_t me = 0;
    if (valueSpan(json, from, to, "metrics", &mv, &me)) {
        s.metricsJson = json.substr(mv, me - mv);
    } else {
        s.metricsJson = "{}";
    }
    *out = std::move(s);
    return true;
}

} // namespace udp::obs

/**
 * @file
 * Miss status holding registers / fill buffer. For the icache this is the
 * structure whose demand hits define prefetch *untimeliness* in the paper
 * (a demand access merging with an in-flight prefetch means the prefetch
 * was useful but late).
 */

#ifndef UDP_CACHE_MSHR_H
#define UDP_CACHE_MSHR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace udp {

/** One outstanding miss. */
struct MshrEntry
{
    bool valid = false;
    Addr line = kInvalidAddr;
    Cycle ready = kInvalidCycle;
    /** Cycle the miss was allocated (age reporting / leak detection). */
    Cycle allocatedAt = 0;
    /** Installed by a prefetch (vs a demand miss). */
    bool isPrefetch = false;
    /** A demand access merged with this entry while in flight. */
    bool demandMerged = false;
    /** Ground truth: the merging demand access was on the correct path. */
    bool onPathDemandMerged = false;
};

/** Statistics. */
struct MshrStats
{
    std::uint64_t allocations = 0;
    std::uint64_t demandMerges = 0;
    std::uint64_t fullRejects = 0;
};

/** Fixed-size MSHR file keyed by line address. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned num_entries) : entries(num_entries) {}

    /** Finds the outstanding entry for @p line, nullptr when absent. */
    MshrEntry* find(Addr line);
    const MshrEntry* find(Addr line) const;

    /**
     * Allocates an entry; returns nullptr when the file is full (caller
     * must stall or drop). @p now stamps the entry's allocation cycle.
     */
    MshrEntry* allocate(Addr line, Cycle ready, bool is_prefetch,
                        Cycle now = 0);

    /**
     * Invokes @p cb (signature void(const MshrEntry&)) for every entry
     * whose fill has arrived by @p now, then frees it.
     */
    template <typename F>
    void
    drainReady(Cycle now, F&& cb)
    {
        for (MshrEntry& e : entries) {
            if (e.valid && e.ready <= now) {
                cb(const_cast<const MshrEntry&>(e));
                e.valid = false;
            }
        }
    }

    /** Drops all in-flight entries (pipeline-reset situations in tests). */
    void clear();

    unsigned numFree() const;
    unsigned capacity() const { return static_cast<unsigned>(entries.size()); }
    bool full() const { return numFree() == 0; }

    const MshrStats& stats() const { return stats_; }
    void clearStats() { stats_ = MshrStats(); }

    /** Records a demand merge on @p e (statistics + flags). */
    void noteDemandMerge(MshrEntry& e, bool on_path);

    /**
     * Invariant check (sim/invariants.h): duplicate outstanding lines and
     * leaked entries (an entry whose fill never drains — ready sentinel or
     * ready in the past at end-of-cycle @p now). Returns the first
     * violation found, or an empty string.
     */
    std::string checkInvariants(Cycle now) const;

    /** One-line-per-entry occupancy dump for diagnostic reports. */
    std::string dumpState(Cycle now) const;

    /** Fault-injection hook (sim/faultinject.h): the @p nth valid entry
     *  in file order, nullptr when fewer are outstanding. */
    MshrEntry* validEntryForFault(unsigned nth);

  private:
    std::vector<MshrEntry> entries;
    MshrStats stats_;
};

} // namespace udp

#endif // UDP_CACHE_MSHR_H

/**
 * @file
 * The memory hierarchy of the simulated system (Table II): L1I with a fill
 * buffer (MSHR), L1D with a stream prefetcher, unified L2, shared LLC and
 * bandwidth-limited DRAM. Instruction-side demand fetches, FDIP prefetches
 * and data-side accesses all flow through here; per-line prefetch bits and
 * MSHR merge flags provide the utility/timeliness signals UFTQ and UDP
 * consume.
 */

#ifndef UDP_CACHE_MEMSYS_H
#define UDP_CACHE_MEMSYS_H

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "cache/mshr.h"
#include "cache/stream_prefetcher.h"
#include "common/types.h"
#include "stats/telemetry.h"

namespace udp {

/** Where an instruction demand access was satisfied. */
enum class IFetchWhere : std::uint8_t {
    L1,    ///< icache hit
    Mshr,  ///< merged with an in-flight fill (untimely prefetch or miss)
    Miss,  ///< new outstanding miss allocated
    Stall, ///< MSHR full: retry next cycle
};

/** Result of an instruction demand access. */
struct IFetchResult
{
    IFetchWhere where = IFetchWhere::L1;
    /** Absolute cycle at which the fetch block is available. */
    Cycle ready = 0;
    /** The access consumed a line installed by a prefetch (timely hit). */
    bool hitPrefetchedLine = false;
};

/** Outcome of an instruction prefetch request. */
enum class IPrefStatus : std::uint8_t {
    AlreadyPresent, ///< line already in the icache
    InFlight,       ///< already outstanding in the fill buffer
    Issued,         ///< new prefetch issued
    DemotedL2,      ///< fill buffer busy: prefetched into L2/LLC instead
    NoMshr,         ///< dropped entirely
};

/** Configuration (defaults = Table II). */
struct MemSysConfig
{
    std::uint64_t l1iSize = 32 * 1024;
    unsigned l1iAssoc = 8;
    Cycle l1iLat = 3;
    unsigned l1iMshrs = 16;
    /** Fill-buffer entries prefetches may occupy (the rest are reserved
     *  for demand misses, which always have priority). */
    unsigned l1iMshrsForPrefetch = 16;
    /** When the fill buffer is busy, demote prefetches into L2/LLC
     *  instead of dropping them. */
    bool l1iPrefetchDemoteL2 = true;

    std::uint64_t l1dSize = 48 * 1024;
    unsigned l1dAssoc = 12;
    Cycle l1dLat = 4;

    std::uint64_t l2Size = 512 * 1024;
    unsigned l2Assoc = 8;
    Cycle l2Lat = 13;

    std::uint64_t llcSize = 2 * 1024 * 1024;
    unsigned llcAssoc = 16;
    Cycle llcLat = 36;

    Cycle memLat = 150;
    /** DRAM occupancy per line (DDR4-2400, 1 channel, 3 GHz core). */
    Cycle memCyclesPerLine = 10;

    /** Every instruction access hits L1I (the Fig. 1 oracle). */
    bool perfectIcache = false;
    /** Enable the data-side stream prefetcher. */
    bool dataStreamPrefetcher = true;
    StreamPrefetcherConfig streamCfg;
};

/** Aggregated statistics across the hierarchy. */
struct MemSysStats
{
    // Instruction side.
    std::uint64_t ifetchAccesses = 0;
    std::uint64_t ifetchL1Hits = 0;
    std::uint64_t ifetchMshrHits = 0;
    std::uint64_t ifetchMisses = 0;
    std::uint64_t ifetchStalls = 0;
    /** Demand L1I hits on lines still carrying the prefetch bit. */
    std::uint64_t ifetchTimelyPrefetchHits = 0;
    /** Demand fetches that merged with an in-flight *prefetch* (hardware
     *  view: the prefetch was useful but untimely). */
    std::uint64_t pfMshrMergesHw = 0;
    /** Same, but the merging demand access was on the correct path. */
    std::uint64_t pfMshrMergesTrue = 0;

    std::uint64_t iprefIssued = 0;
    std::uint64_t iprefAlreadyPresent = 0;
    std::uint64_t iprefInFlight = 0;
    std::uint64_t iprefDemotedL2 = 0;
    std::uint64_t iprefNoMshr = 0;

    // Data side.
    std::uint64_t dloads = 0;
    std::uint64_t dloadL1Hits = 0;
    std::uint64_t dstores = 0;

    // Traffic.
    std::uint64_t memReads = 0;
};

/** The full memory hierarchy. */
class MemSystem
{
  public:
    explicit MemSystem(const MemSysConfig& cfg);

    /**
     * Advances fill completion: drains ready MSHR entries into the icache.
     * Call once per cycle before fetch.
     */
    void tick(Cycle now);

    /**
     * Instruction demand access for the line containing @p pc.
     * @param on_path ground-truth tag of the fetching block (stats only).
     */
    IFetchResult ifetch(Addr pc, Cycle now, bool on_path);

    /** FDIP/EIP prefetch of the line containing @p addr into L1I.
     *  @p src attributes the request in the telemetry lifecycle tracker. */
    IPrefStatus iprefetch(Addr addr, Cycle now,
                          PfSource src = PfSource::Fdip);

    /** True when the line containing @p addr is resident in L1I. */
    bool icacheContains(Addr addr) const;

    /** True when the line is outstanding in the fill buffer. */
    bool icacheLineInFlight(Addr addr) const;

    /** Data load: returns the completion cycle. */
    Cycle dload(Addr addr, Cycle now, bool on_path);

    /** Data store (fire and forget into the store buffer). */
    void dstore(Addr addr, Cycle now);

    const MemSysStats& stats() const { return stats_; }
    const CacheStats& l1iStats() const { return l1i.stats(); }
    const MshrStats& l1iMshrStats() const { return l1iMshr.stats(); }

    /** Clears all statistics (not cache content) — start of measurement. */
    void clearStats();

    SetAssocCache& icache() { return l1i; }
    const SetAssocCache& icache() const { return l1i; }
    MshrFile& fillBuffer() { return l1iMshr; }
    const MshrFile& fillBuffer() const { return l1iMshr; }

    /** Invariant check (sim/invariants.h): fill-buffer consistency.
     *  Returns the first violation found, or an empty string. */
    std::string checkInvariants(Cycle now) const
    {
        return l1iMshr.checkInvariants(now);
    }

    /** Fill-buffer occupancy dump for diagnostic reports. */
    std::string dumpState(Cycle now) const
    {
        return l1iMshr.dumpState(now);
    }

    const MemSysConfig& config() const { return cfg; }

    /** Telemetry attachment (null = disabled, zero-cost hooks). */
    void setTelemetry(Telemetry* t) { telem_ = t; }

  private:
    /** Looks up L2/LLC/DRAM; returns the fill latency beyond L1. */
    Cycle lowerHierarchyLatency(Addr line, Cycle now, bool instruction);

    MemSysConfig cfg;
    SetAssocCache l1i;
    SetAssocCache l1d;
    SetAssocCache l2;
    SetAssocCache llc;
    MshrFile l1iMshr;
    StreamPrefetcher streamPf;
    std::vector<Addr> streamOut;

    /** Simple in-flight tracker for data lines (line -> completion). */
    struct DInflight
    {
        Addr line;
        Cycle ready;
    };
    std::vector<DInflight> dInflight;

    Cycle dramNextFree = 0;
    MemSysStats stats_;
    Telemetry* telem_ = nullptr;
};

} // namespace udp

#endif // UDP_CACHE_MEMSYS_H

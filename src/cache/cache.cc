#include "cache/cache.h"

#include <cassert>

#include "common/intmath.h"

namespace udp {

SetAssocCache::SetAssocCache(const CacheConfig& c) : cfg(c)
{
    assert(cfg.assoc >= 1);
    numSets_ = cfg.sizeBytes / (std::uint64_t{kLineBytes} * cfg.assoc);
    assert(numSets_ >= 1 && isPowerOf2(numSets_));
    ways.resize(numSets_ * cfg.assoc);
}

std::size_t
SetAssocCache::setOf(Addr line) const
{
    return static_cast<std::size_t>((line / kLineBytes) & (numSets_ - 1));
}

Addr
SetAssocCache::tagOf(Addr line) const
{
    return (line / kLineBytes) / numSets_;
}

SetAssocCache::Way*
SetAssocCache::findWay(Addr addr)
{
    Addr line = lineAddr(addr);
    std::size_t base = setOf(line) * cfg.assoc;
    Addr tag = tagOf(line);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Way& way = ways[base + w];
        if (way.valid && way.tag == tag) {
            return &way;
        }
    }
    return nullptr;
}

const SetAssocCache::Way*
SetAssocCache::findWay(Addr addr) const
{
    return const_cast<SetAssocCache*>(this)->findWay(addr);
}

bool
SetAssocCache::contains(Addr addr) const
{
    return findWay(addr) != nullptr;
}

bool
SetAssocCache::demandAccess(Addr addr, bool on_path)
{
    ++stats_.demandAccesses;
    Way* way = findWay(addr);
    if (!way) {
        ++stats_.demandMisses;
        return false;
    }
    ++stats_.demandHits;
    way->lru = ++lruClock;
    if (way->prefetch) {
        ++stats_.prefetchHits;
        way->prefetch = false;
    }
    if (way->prefetchTrue && on_path) {
        ++stats_.prefetchHitsTrue;
        way->prefetchTrue = false;
    }
    return true;
}

void
SetAssocCache::touch(Addr addr)
{
    if (Way* way = findWay(addr)) {
        way->lru = ++lruClock;
    }
}

CacheInsertResult
SetAssocCache::insert(Addr addr, bool is_prefetch)
{
    CacheInsertResult res;
    Addr line = lineAddr(addr);

    if (Way* way = findWay(line)) {
        // Already present: refresh, don't re-mark a demand-touched line.
        way->lru = ++lruClock;
        return res;
    }

    std::size_t base = setOf(line) * cfg.assoc;
    Way* victim = nullptr;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Way& way = ways[base + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lru < victim->lru) {
            victim = &way;
        }
    }
    assert(victim);

    if (victim->valid) {
        res.evicted = true;
        res.victimLine = (victim->tag * numSets_ + setOf(line)) * kLineBytes;
        res.victimPrefetchUnused = victim->prefetch;
        ++stats_.evictions;
        if (victim->prefetch) {
            ++stats_.prefetchUnused;
        }
        if (victim->prefetchTrue) {
            ++stats_.prefetchUnusedTrue;
        }
    }

    victim->valid = true;
    victim->tag = tagOf(line);
    victim->prefetch = is_prefetch;
    victim->prefetchTrue = is_prefetch;
    victim->lru = ++lruClock;
    ++stats_.inserts;
    return res;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    if (Way* way = findWay(addr)) {
        way->valid = false;
        way->prefetch = false;
        way->prefetchTrue = false;
        return true;
    }
    return false;
}

bool
SetAssocCache::prefetchBit(Addr addr) const
{
    const Way* way = findWay(addr);
    return way && way->prefetch;
}

void
SetAssocCache::flush()
{
    for (Way& way : ways) {
        way.valid = false;
        way.prefetch = false;
        way.prefetchTrue = false;
    }
}

} // namespace udp

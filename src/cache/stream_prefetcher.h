/**
 * @file
 * Simple hardware stream prefetcher for the data side (Table II: "Data
 * Prefetcher: Stream"). Detects ascending/descending line streams on L1D
 * misses and prefetches a configurable depth ahead.
 */

#ifndef UDP_CACHE_STREAM_PREFETCHER_H
#define UDP_CACHE_STREAM_PREFETCHER_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace udp {

/** Configuration. */
struct StreamPrefetcherConfig
{
    unsigned numStreams = 16;
    unsigned trainThreshold = 2; ///< consecutive hits before prefetching
    unsigned depth = 4;          ///< lines prefetched ahead
};

/** Statistics. */
struct StreamPrefetcherStats
{
    std::uint64_t trainings = 0;
    std::uint64_t prefetchesIssued = 0;
};

/**
 * Stream detector. The owner feeds it demand line addresses and receives
 * lines to prefetch via the out-parameter of observe().
 */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(const StreamPrefetcherConfig& cfg);

    /**
     * Observes a demand access to @p line; appends prefetch candidates to
     * @p out.
     */
    void observe(Addr line, std::vector<Addr>& out);

    const StreamPrefetcherStats& stats() const { return stats_; }
    void clearStats() { stats_ = StreamPrefetcherStats(); }

  private:
    struct Stream
    {
        bool valid = false;
        Addr lastLine = 0;
        int direction = 1;
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
    };

    StreamPrefetcherConfig cfg;
    std::vector<Stream> streams;
    std::uint64_t useClock = 0;
    StreamPrefetcherStats stats_;
};

} // namespace udp

#endif // UDP_CACHE_STREAM_PREFETCHER_H

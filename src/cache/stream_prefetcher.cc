#include "cache/stream_prefetcher.h"

namespace udp {

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherConfig& c)
    : cfg(c), streams(c.numStreams)
{
}

void
StreamPrefetcher::observe(Addr line, std::vector<Addr>& out)
{
    ++useClock;

    // Match against an existing stream (next line in either direction).
    for (Stream& s : streams) {
        if (!s.valid) {
            continue;
        }
        Addr expected_up = s.lastLine + kLineBytes;
        Addr expected_down = s.lastLine - kLineBytes;
        if ((s.direction > 0 && line == expected_up) ||
            (s.direction < 0 && line == expected_down)) {
            s.lastLine = line;
            s.lastUse = useClock;
            if (s.confidence < cfg.trainThreshold) {
                ++s.confidence;
                ++stats_.trainings;
            }
            if (s.confidence >= cfg.trainThreshold) {
                for (unsigned d = 1; d <= cfg.depth; ++d) {
                    Addr target = s.direction > 0
                                      ? line + Addr{d} * kLineBytes
                                      : line - Addr{d} * kLineBytes;
                    out.push_back(target);
                    ++stats_.prefetchesIssued;
                }
            }
            return;
        }
        // Direction learning on the second access of a fresh stream.
        if (s.confidence == 0 &&
            (line == expected_up || line == expected_down)) {
            s.direction = line == expected_up ? 1 : -1;
            s.lastLine = line;
            s.lastUse = useClock;
            s.confidence = 1;
            ++stats_.trainings;
            return;
        }
    }

    // Allocate a new stream over the LRU slot.
    Stream* victim = &streams[0];
    for (Stream& s : streams) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lastUse < victim->lastUse) {
            victim = &s;
        }
    }
    victim->valid = true;
    victim->lastLine = line;
    victim->direction = 1;
    victim->confidence = 0;
    victim->lastUse = useClock;
}

} // namespace udp

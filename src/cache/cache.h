/**
 * @file
 * Generic set-associative cache with true-LRU replacement and a per-line
 * prefetch bit (set when a prefetched line is installed, cleared on the
 * first demand hit) — the substrate for the paper's utility accounting.
 */

#ifndef UDP_CACHE_CACHE_H
#define UDP_CACHE_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace udp {

/** Cache geometry. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    // Line size is global (kLineBytes).
};

/** Counters exported by each cache. */
struct CacheStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    /** Demand hits that consumed a line still carrying the prefetch bit. */
    std::uint64_t prefetchHits = 0;
    /** Prefetched lines evicted without any demand hit. */
    std::uint64_t prefetchUnused = 0;
    /** Ground truth: prefetched lines first hit by an ON-PATH demand. */
    std::uint64_t prefetchHitsTrue = 0;
    /** Ground truth: prefetched lines evicted without any on-path hit. */
    std::uint64_t prefetchUnusedTrue = 0;
};

/** Result of an insert. */
struct CacheInsertResult
{
    bool evicted = false;
    Addr victimLine = kInvalidAddr;
    /** Victim was a prefetched line never hit by demand (useless). */
    bool victimPrefetchUnused = false;
};

/**
 * Set-associative, fully tagged, true-LRU cache over line addresses.
 * The number of sets must be a power of two; associativity is arbitrary
 * (supports the paper's 40 KiB = 64 sets x 10 ways icache variant).
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig& cfg);

    /** Geometry introspection. */
    unsigned assoc() const { return cfg.assoc; }
    std::size_t numSets() const { return numSets_; }
    std::uint64_t sizeBytes() const
    {
        return std::uint64_t{numSets_} * cfg.assoc * kLineBytes;
    }

    /** True when the line containing @p addr is present (no side effects). */
    bool contains(Addr addr) const;

    /**
     * Demand access: on a hit, touches LRU and clears/accounts the prefetch
     * bit. @p on_path is the ground-truth tag of the accessor (drives the
     * oracle utility counters only, never hardware behaviour).
     * Returns hit/miss.
     */
    bool demandAccess(Addr addr, bool on_path = true);

    /** Touch for LRU purposes without demand accounting (e.g. FDIP probe). */
    void touch(Addr addr);

    /**
     * Installs the line containing @p addr. @p is_prefetch sets the
     * prefetch bit. Replaces LRU; reports the victim.
     */
    CacheInsertResult insert(Addr addr, bool is_prefetch);

    /** Removes the line if present; returns true when it was. */
    bool invalidate(Addr addr);

    /** Prefetch bit of a resident line (false when absent). */
    bool prefetchBit(Addr addr) const;

    const CacheStats& stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats(); }

    /** Drops all lines (not the stats). */
    void flush();

  private:
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        bool prefetch = false;
        /** Oracle bit: prefetched and not yet consumed by on-path demand. */
        bool prefetchTrue = false;
        std::uint64_t lru = 0;
    };

    std::size_t setOf(Addr line) const;
    Addr tagOf(Addr line) const;
    Way* findWay(Addr line);
    const Way* findWay(Addr line) const;

    CacheConfig cfg;
    std::size_t numSets_;
    std::vector<Way> ways;
    std::uint64_t lruClock = 0;
    CacheStats stats_;
};

} // namespace udp

#endif // UDP_CACHE_CACHE_H

#include "cache/mshr.h"

#include <cstdio>

namespace udp {

MshrEntry*
MshrFile::find(Addr line)
{
    for (MshrEntry& e : entries) {
        if (e.valid && e.line == line) {
            return &e;
        }
    }
    return nullptr;
}

const MshrEntry*
MshrFile::find(Addr line) const
{
    return const_cast<MshrFile*>(this)->find(line);
}

MshrEntry*
MshrFile::allocate(Addr line, Cycle ready, bool is_prefetch, Cycle now)
{
    for (MshrEntry& e : entries) {
        if (!e.valid) {
            e.valid = true;
            e.line = line;
            e.ready = ready;
            e.allocatedAt = now;
            e.isPrefetch = is_prefetch;
            e.demandMerged = false;
            e.onPathDemandMerged = false;
            ++stats_.allocations;
            return &e;
        }
    }
    ++stats_.fullRejects;
    return nullptr;
}

void
MshrFile::clear()
{
    for (MshrEntry& e : entries) {
        e.valid = false;
    }
}

unsigned
MshrFile::numFree() const
{
    unsigned free = 0;
    for (const MshrEntry& e : entries) {
        if (!e.valid) {
            ++free;
        }
    }
    return free;
}

void
MshrFile::noteDemandMerge(MshrEntry& e, bool on_path)
{
    e.demandMerged = true;
    e.onPathDemandMerged = e.onPathDemandMerged || on_path;
    ++stats_.demandMerges;
}

std::string
MshrFile::checkInvariants(Cycle now) const
{
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const MshrEntry& a = entries[i];
        if (!a.valid) {
            continue;
        }
        for (std::size_t j = i + 1; j < entries.size(); ++j) {
            const MshrEntry& b = entries[j];
            if (b.valid && b.line == a.line) {
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "duplicate outstanding line 0x%llx "
                              "(entries %zu and %zu)",
                              static_cast<unsigned long long>(a.line), i,
                              j);
                return buf;
            }
        }
        // A fill either has a real completion cycle in the future or it
        // has leaked: drainReady() frees every entry with ready <= now at
        // the start of each cycle, and the sentinel never drains at all.
        if (a.ready == kInvalidCycle || a.ready <= now) {
            char buf[160];
            std::snprintf(
                buf, sizeof(buf),
                "leaked entry %zu: line 0x%llx ready=%llu never drained "
                "(allocated cycle %llu, age %llu)",
                i, static_cast<unsigned long long>(a.line),
                static_cast<unsigned long long>(a.ready),
                static_cast<unsigned long long>(a.allocatedAt),
                static_cast<unsigned long long>(now - a.allocatedAt));
            return buf;
        }
    }
    return "";
}

std::string
MshrFile::dumpState(Cycle now) const
{
    Cycle oldest_age = 0;
    unsigned used = 0;
    for (const MshrEntry& e : entries) {
        if (e.valid) {
            ++used;
            if (now - e.allocatedAt > oldest_age) {
                oldest_age = now - e.allocatedAt;
            }
        }
    }
    char head[96];
    std::snprintf(head, sizeof(head),
                  "[mshr] occupancy=%u/%u oldest_age=%llu\n", used,
                  capacity(), static_cast<unsigned long long>(oldest_age));
    std::string out = head;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const MshrEntry& e = entries[i];
        if (!e.valid) {
            continue;
        }
        char row[160];
        std::snprintf(row, sizeof(row),
                      "  [%zu] line=0x%llx ready=%llu alloc=%llu pf=%d "
                      "merged=%d\n",
                      i, static_cast<unsigned long long>(e.line),
                      static_cast<unsigned long long>(e.ready),
                      static_cast<unsigned long long>(e.allocatedAt),
                      e.isPrefetch ? 1 : 0, e.demandMerged ? 1 : 0);
        out += row;
    }
    return out;
}

MshrEntry*
MshrFile::validEntryForFault(unsigned nth)
{
    unsigned seen = 0;
    for (MshrEntry& e : entries) {
        if (e.valid && seen++ == nth) {
            return &e;
        }
    }
    return nullptr;
}

} // namespace udp

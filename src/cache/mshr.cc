#include "cache/mshr.h"

namespace udp {

MshrEntry*
MshrFile::find(Addr line)
{
    for (MshrEntry& e : entries) {
        if (e.valid && e.line == line) {
            return &e;
        }
    }
    return nullptr;
}

const MshrEntry*
MshrFile::find(Addr line) const
{
    return const_cast<MshrFile*>(this)->find(line);
}

MshrEntry*
MshrFile::allocate(Addr line, Cycle ready, bool is_prefetch)
{
    for (MshrEntry& e : entries) {
        if (!e.valid) {
            e.valid = true;
            e.line = line;
            e.ready = ready;
            e.isPrefetch = is_prefetch;
            e.demandMerged = false;
            e.onPathDemandMerged = false;
            ++stats_.allocations;
            return &e;
        }
    }
    ++stats_.fullRejects;
    return nullptr;
}

void
MshrFile::clear()
{
    for (MshrEntry& e : entries) {
        e.valid = false;
    }
}

unsigned
MshrFile::numFree() const
{
    unsigned free = 0;
    for (const MshrEntry& e : entries) {
        if (!e.valid) {
            ++free;
        }
    }
    return free;
}

void
MshrFile::noteDemandMerge(MshrEntry& e, bool on_path)
{
    e.demandMerged = true;
    e.onPathDemandMerged = e.onPathDemandMerged || on_path;
    ++stats_.demandMerges;
}

} // namespace udp

#include "cache/memsys.h"

#include <algorithm>

namespace udp {

namespace {

CacheConfig
cacheCfg(const char* name, std::uint64_t size, unsigned assoc)
{
    CacheConfig c;
    c.name = name;
    c.sizeBytes = size;
    c.assoc = assoc;
    return c;
}

} // namespace

MemSystem::MemSystem(const MemSysConfig& c)
    : cfg(c),
      l1i(cacheCfg("l1i", c.l1iSize, c.l1iAssoc)),
      l1d(cacheCfg("l1d", c.l1dSize, c.l1dAssoc)),
      l2(cacheCfg("l2", c.l2Size, c.l2Assoc)),
      llc(cacheCfg("llc", c.llcSize, c.llcAssoc)),
      l1iMshr(c.l1iMshrs),
      streamPf(c.streamCfg)
{
    streamOut.reserve(16);
}

Cycle
MemSystem::lowerHierarchyLatency(Addr line, Cycle now, bool instruction)
{
    (void)instruction;
    if (l2.demandAccess(line)) {
        return cfg.l2Lat;
    }
    if (llc.demandAccess(line)) {
        l2.insert(line, false);
        return cfg.l2Lat + cfg.llcLat;
    }
    // DRAM: latency plus single-channel bandwidth occupancy.
    ++stats_.memReads;
    Cycle start = std::max(now + cfg.l2Lat + cfg.llcLat, dramNextFree);
    dramNextFree = start + cfg.memCyclesPerLine;
    Cycle done_delta = (start - now) + cfg.memLat;
    llc.insert(line, false);
    l2.insert(line, false);
    return done_delta;
}

void
MemSystem::tick(Cycle now)
{
    l1iMshr.drainReady(now, [&](const MshrEntry& e) {
        // A prefetched line that a demand access merged with was consumed
        // before installation -> it lands without the (unused) prefetch bit.
        bool still_prefetch = e.isPrefetch && !e.demandMerged;
        // Oracle bit: consumed by on-path demand while in flight?
        CacheInsertResult ins = l1i.insert(e.line, still_prefetch);
        if (telem_) {
            if (ins.victimPrefetchUnused) {
                telem_->onPrefetchEvicted(ins.victimLine);
            }
            if (still_prefetch) {
                telem_->onPrefetchFill(e.line, ins.evicted);
            }
        }
        if (e.isPrefetch && e.demandMerged && !e.onPathDemandMerged) {
            // Hardware saw a merge, but it was wrong-path-only: from the
            // oracle's perspective this prefetch is still unproven; since
            // the line now looks like a demand line, account it here.
            // (Kept as a statistic-neutral case: the line was at least
            // fetched for an executed-wrong-path demand.)
        }
    });

    // Garbage-collect completed data in-flight entries.
    if (!dInflight.empty()) {
        dInflight.erase(std::remove_if(dInflight.begin(), dInflight.end(),
                                       [now](const DInflight& d) {
                                           return d.ready <= now;
                                       }),
                        dInflight.end());
    }
}

IFetchResult
MemSystem::ifetch(Addr pc, Cycle now, bool on_path)
{
    ++stats_.ifetchAccesses;
    IFetchResult res;
    Addr line = lineAddr(pc);

    if (cfg.perfectIcache) {
        ++stats_.ifetchL1Hits;
        res.where = IFetchWhere::L1;
        res.ready = now + cfg.l1iLat;
        return res;
    }

    bool was_prefetched = l1i.prefetchBit(line);
    if (l1i.demandAccess(line, on_path)) {
        ++stats_.ifetchL1Hits;
        if (was_prefetched) {
            ++stats_.ifetchTimelyPrefetchHits;
            if (telem_) {
                telem_->onPrefetchFirstUse(line);
            }
        }
        res.where = IFetchWhere::L1;
        res.ready = now + cfg.l1iLat;
        res.hitPrefetchedLine = was_prefetched;
        return res;
    }

    if (MshrEntry* e = l1iMshr.find(line)) {
        // Demand merges with the outstanding fill (untimely prefetch).
        if (e->isPrefetch) {
            if (!e->demandMerged) {
                ++stats_.pfMshrMergesHw;
                if (telem_) {
                    telem_->onPrefetchLateMerge(
                        line, e->ready > now ? e->ready - now : 0);
                }
            }
            if (on_path && !e->onPathDemandMerged) {
                ++stats_.pfMshrMergesTrue;
            }
        }
        l1iMshr.noteDemandMerge(*e, on_path);
        ++stats_.ifetchMshrHits;
        res.where = IFetchWhere::Mshr;
        res.ready = std::max(e->ready, now + cfg.l1iLat);
        return res;
    }

    // True demand miss: allocate and go down the hierarchy.
    Cycle fill_delta = lowerHierarchyLatency(line, now, true);
    MshrEntry* e = l1iMshr.allocate(line, now + cfg.l1iLat + fill_delta,
                                    /*is_prefetch=*/false, now);
    if (!e) {
        ++stats_.ifetchStalls;
        res.where = IFetchWhere::Stall;
        res.ready = now + 1;
        return res;
    }
    e->demandMerged = true;
    e->onPathDemandMerged = on_path;
    ++stats_.ifetchMisses;
    res.where = IFetchWhere::Miss;
    res.ready = e->ready;
    return res;
}

IPrefStatus
MemSystem::iprefetch(Addr addr, Cycle now, PfSource src)
{
    Addr line = lineAddr(addr);
    if (cfg.perfectIcache || l1i.contains(line)) {
        ++stats_.iprefAlreadyPresent;
        return IPrefStatus::AlreadyPresent;
    }
    if (l1iMshr.find(line)) {
        ++stats_.iprefInFlight;
        return IPrefStatus::InFlight;
    }
    // When the fill buffer has no prefetch headroom, demote the prefetch
    // into L2/LLC: it still pulls the line closer (and consumes memory
    // bandwidth) without occupying an L1I MSHR demand misses may need.
    if (l1iMshr.capacity() - l1iMshr.numFree() >= cfg.l1iMshrsForPrefetch) {
        if (!cfg.l1iPrefetchDemoteL2) {
            ++stats_.iprefNoMshr;
            return IPrefStatus::NoMshr;
        }
        lowerHierarchyLatency(line, now, true);
        ++stats_.iprefDemotedL2;
        return IPrefStatus::DemotedL2;
    }
    Cycle fill_delta = lowerHierarchyLatency(line, now, true);
    MshrEntry* e =
        l1iMshr.allocate(line, now + cfg.l1iLat + fill_delta, true, now);
    if (!e) {
        if (!cfg.l1iPrefetchDemoteL2) {
            ++stats_.iprefNoMshr;
            return IPrefStatus::NoMshr;
        }
        lowerHierarchyLatency(line, now, true);
        ++stats_.iprefDemotedL2;
        return IPrefStatus::DemotedL2;
    }
    ++stats_.iprefIssued;
    if (telem_) {
        telem_->onPrefetchIssued(line, src);
    }
    return IPrefStatus::Issued;
}

bool
MemSystem::icacheContains(Addr addr) const
{
    return cfg.perfectIcache || l1i.contains(lineAddr(addr));
}

bool
MemSystem::icacheLineInFlight(Addr addr) const
{
    return l1iMshr.find(lineAddr(addr)) != nullptr;
}

Cycle
MemSystem::dload(Addr addr, Cycle now, bool on_path)
{
    ++stats_.dloads;
    Addr line = lineAddr(addr);

    bool was_prefetched = l1d.prefetchBit(line);
    if (l1d.demandAccess(line, on_path)) {
        ++stats_.dloadL1Hits;
        if (was_prefetched && telem_) {
            telem_->onPrefetchFirstUse(line);
        }
        return now + cfg.l1dLat;
    }

    // Merge with an in-flight data line if one exists.
    for (const DInflight& d : dInflight) {
        if (d.line == line) {
            return std::max(d.ready, now + cfg.l1dLat);
        }
    }

    Cycle fill_delta = lowerHierarchyLatency(line, now, false);
    Cycle ready = now + cfg.l1dLat + fill_delta;
    CacheInsertResult ins = l1d.insert(line, false);
    if (telem_ && ins.victimPrefetchUnused) {
        telem_->onPrefetchEvicted(ins.victimLine);
    }
    dInflight.push_back(DInflight{line, ready});

    // Train the stream prefetcher on demand misses.
    if (cfg.dataStreamPrefetcher) {
        streamOut.clear();
        streamPf.observe(line, streamOut);
        for (Addr pf : streamOut) {
            if (!l1d.contains(pf)) {
                // Prefetch fills are modelled as immediate L2-side
                // installs; latency hiding happens via presence.
                lowerHierarchyLatency(pf, now, false);
                CacheInsertResult pins = l1d.insert(pf, true);
                if (telem_) {
                    if (pins.victimPrefetchUnused) {
                        telem_->onPrefetchEvicted(pins.victimLine);
                    }
                    // Immediate-fill model: issue and fill coincide.
                    telem_->onPrefetchIssued(pf, PfSource::Stream);
                    telem_->onPrefetchFill(pf, pins.evicted);
                }
            }
        }
    }
    return ready;
}

void
MemSystem::dstore(Addr addr, Cycle now)
{
    (void)now;
    ++stats_.dstores;
    Addr line = lineAddr(addr);
    if (!l1d.contains(line)) {
        // Write-allocate without stalling the pipeline (store buffer).
        CacheInsertResult ins = l1d.insert(line, false);
        if (telem_ && ins.victimPrefetchUnused) {
            telem_->onPrefetchEvicted(ins.victimLine);
        }
    } else {
        l1d.touch(line);
    }
}

void
MemSystem::clearStats()
{
    stats_ = MemSysStats();
    l1i.clearStats();
    l1d.clearStats();
    l2.clearStats();
    llc.clearStats();
    l1iMshr.clearStats();
    streamPf.clearStats();
}

} // namespace udp

/**
 * @file
 * UDP's useful-set: the learned set of off-path prefetch candidates worth
 * emitting. Three Bloom filters hold 1-, 2- and 4-line super-blocks; an
 * 8-entry coalescing buffer merges monotonically consecutive learned lines
 * into super-blocks before insertion (4x storage saving, Section IV-B).
 * Supports an infinite-storage oracle mode for the Fig. 13 upper bound.
 */

#ifndef UDP_CORE_USEFUL_SET_H
#define UDP_CORE_USEFUL_SET_H

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "common/types.h"
#include "core/bloom.h"

namespace udp {

class Telemetry;

/** Configuration (defaults = the paper's 8KB budget). */
struct UsefulSetConfig
{
    std::size_t bits1 = 16 * 1024; ///< 1-line filter (16k bits)
    std::size_t bits2 = 1024;      ///< 2-line super-block filter
    std::size_t bits4 = 1024;      ///< 4-line super-block filter
    unsigned numHashes = 6;
    unsigned coalesceBufferSize = 8;
    /** Clear when a filter is full and unuseful ratio reaches this. */
    double clearUnusefulRatio = 0.75;
    /** Minimum emitted prefetches per clear-evaluation epoch. */
    std::uint64_t minEmittedForClear = 512;
    /** Oracle mode: unbounded exact set, never cleared. */
    bool infiniteStorage = false;
};

/** Statistics. */
struct UsefulSetStats
{
    std::uint64_t learns = 0;
    std::uint64_t inserts1 = 0;
    std::uint64_t inserts2 = 0;
    std::uint64_t inserts4 = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t clears = 0;
};

/** The learned useful-prefetch set. */
class UsefulSet
{
  public:
    explicit UsefulSet(const UsefulSetConfig& cfg);

    /** Learns that @p line was a useful (retirement-verified) candidate. */
    void learn(Addr line);

    /**
     * Queries a candidate line. Returns the matched span in lines
     * (4, 2 or 1) or 0 when absent. The caller should prefetch the whole
     * matched super-block.
     */
    unsigned lookup(Addr line);

    /** Aligned base address of the span matched by lookup(). */
    static Addr
    spanBase(Addr line, unsigned span)
    {
        return line & ~((Addr{span} * kLineBytes) - 1);
    }

    /** Feedback for the clearing policy. */
    void noteEmitted() { ++epochEmitted; }
    void noteUnuseful(std::uint64_t n) { epochUnuseful += n; }

    /** Evaluates the clear policy; call periodically. */
    void maybeClear();

    /** Total storage budget in bits (paper: ~8KB total with metadata). */
    std::uint64_t storageBits() const;

    const UsefulSetStats& stats() const { return stats_; }
    void clearStats() { stats_ = UsefulSetStats(); }

    /** Telemetry attachment (null = disabled). */
    void setTelemetry(Telemetry* t) { telem_ = t; }

  private:
    void insertEvicted(Addr line);

    UsefulSetConfig cfg;
    BloomFilter f1;
    BloomFilter f2;
    BloomFilter f4;
    std::deque<Addr> recent; ///< coalescing buffer (newest at back)
    std::unordered_set<Addr> infinite;
    std::uint64_t epochEmitted = 0;
    std::uint64_t epochUnuseful = 0;
    UsefulSetStats stats_;
    Telemetry* telem_ = nullptr;
};

} // namespace udp

#endif // UDP_CORE_USEFUL_SET_H

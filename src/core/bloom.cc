#include "core/bloom.h"

#include <cassert>

#include "common/rng.h"

namespace udp {

BloomFilter::BloomFilter(std::size_t num_bits, unsigned num_hashes)
    : bits(num_bits), k(num_hashes), words((num_bits + 63) / 64, 0)
{
    assert(bits >= 64);
    assert(k >= 1 && k <= 16);
}

std::size_t
BloomFilter::bitIndex(std::uint64_t key, unsigned i) const
{
    std::uint64_t h1 = mix64(key);
    std::uint64_t h2 = mix64(key ^ 0x517cc1b727220a95ULL) | 1;
    return static_cast<std::size_t>((h1 + std::uint64_t{i} * h2) % bits);
}

void
BloomFilter::insert(std::uint64_t key)
{
    for (unsigned i = 0; i < k; ++i) {
        std::size_t b = bitIndex(key, i);
        words[b >> 6] |= std::uint64_t{1} << (b & 63);
    }
    ++inserted;
}

bool
BloomFilter::contains(std::uint64_t key) const
{
    for (unsigned i = 0; i < k; ++i) {
        std::size_t b = bitIndex(key, i);
        if (!(words[b >> 6] & (std::uint64_t{1} << (b & 63)))) {
            return false;
        }
    }
    return true;
}

void
BloomFilter::clear()
{
    std::fill(words.begin(), words.end(), 0);
    inserted = 0;
}

std::uint64_t
BloomFilter::capacityElements() const
{
    // ~1% false positives with k=6 needs ~9.57 bits per element.
    return static_cast<std::uint64_t>(static_cast<double>(bits) / 9.57);
}

double
BloomFilter::fillRatio() const
{
    std::uint64_t set = 0;
    for (std::uint64_t w : words) {
        set += static_cast<std::uint64_t>(__builtin_popcountll(w));
    }
    return static_cast<double>(set) / static_cast<double>(bits);
}

} // namespace udp

#include "core/useful_set.h"

#include <algorithm>

#include "stats/telemetry.h"

namespace udp {

UsefulSet::UsefulSet(const UsefulSetConfig& c)
    : cfg(c), f1(c.bits1, c.numHashes), f2(c.bits2, c.numHashes),
      f4(c.bits4, c.numHashes)
{
}

void
UsefulSet::learn(Addr line)
{
    ++stats_.learns;
    line = lineAddr(line);

    if (cfg.infiniteStorage) {
        infinite.insert(line);
        return;
    }

    // Deduplicate within the coalescing buffer.
    if (std::find(recent.begin(), recent.end(), line) != recent.end()) {
        return;
    }
    recent.push_back(line);
    if (recent.size() > cfg.coalesceBufferSize) {
        Addr evicted = recent.front();
        recent.pop_front();
        insertEvicted(evicted);
    }
}

void
UsefulSet::insertEvicted(Addr line)
{
    auto in_recent = [&](Addr l) {
        return std::find(recent.begin(), recent.end(), l) != recent.end();
    };

    // Already covered by a previously inserted super-block?
    Addr base4 = spanBase(line, 4);
    Addr base2 = spanBase(line, 2);
    if (f4.contains(base4) || f2.contains(base2)) {
        return;
    }

    // Try to form a 4-line super-block anchored at the aligned base: the
    // evicted line must be the base and its three successors must be
    // pending in the buffer (monotonically increasing addresses).
    if (line == base4 && in_recent(line + kLineBytes) &&
        in_recent(line + 2 * kLineBytes) && in_recent(line + 3 * kLineBytes)) {
        f4.insert(base4);
        ++stats_.inserts4;
        // The partners stay in the buffer; covered-checks skip them later.
        return;
    }

    // Try a 2-line super-block.
    if (line == base2 && in_recent(line + kLineBytes)) {
        f2.insert(base2);
        ++stats_.inserts2;
        return;
    }

    f1.insert(line);
    ++stats_.inserts1;
}

unsigned
UsefulSet::lookup(Addr line)
{
    line = lineAddr(line);

    if (cfg.infiniteStorage) {
        bool hit = infinite.count(line) != 0;
        ++(hit ? stats_.hits : stats_.misses);
        return hit ? 1 : 0;
    }

    if (f4.contains(spanBase(line, 4))) {
        ++stats_.hits;
        return 4;
    }
    if (f2.contains(spanBase(line, 2))) {
        ++stats_.hits;
        return 2;
    }
    if (f1.contains(line)) {
        ++stats_.hits;
        return 1;
    }
    ++stats_.misses;
    return 0;
}

void
UsefulSet::maybeClear()
{
    if (cfg.infiniteStorage) {
        return;
    }
    if (epochEmitted < cfg.minEmittedForClear) {
        return;
    }
    bool any_full = f1.full() || f2.full() || f4.full();
    double unuseful_ratio =
        static_cast<double>(epochUnuseful) / static_cast<double>(epochEmitted);
    if (any_full && unuseful_ratio >= cfg.clearUnusefulRatio) {
        f1.clear();
        f2.clear();
        f4.clear();
        recent.clear();
        ++stats_.clears;
        if (telem_) {
            telem_->onUsefulSetClear();
        }
    }
    epochEmitted = 0;
    epochUnuseful = 0;
}

std::uint64_t
UsefulSet::storageBits() const
{
    // Filters + coalescing buffer (8 x ~40-bit line addresses).
    return f1.sizeBits() + f2.sizeBits() + f4.sizeBits() +
           cfg.coalesceBufferSize * 40;
}

} // namespace udp

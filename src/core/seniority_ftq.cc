#include "core/seniority_ftq.h"

#include <cstdio>

namespace udp {

SeniorityFtq::SeniorityFtq(const SeniorityFtqConfig& c) : cfg(c)
{
    lines.reserve(cfg.capacity * 2);
}

void
SeniorityFtq::insert(Addr line, std::uint64_t dyn_id)
{
    line = lineAddr(line);
    // Deduplicate: consecutive blocks in the same line (and re-fetches of
    // the same region) must not flood the small FIFO.
    if (lines.find(line) != lines.end()) {
        return;
    }
    if (fifo.size() >= cfg.capacity) {
        const Slot& old = fifo.front();
        auto it = lines.find(old.line);
        if (it != lines.end() && --it->second == 0) {
            lines.erase(it);
        }
        fifo.pop_front();
        ++stats_.capacityEvictions;
    }
    fifo.push_back(Slot{line, dyn_id});
    ++lines[line];
    ++stats_.inserts;
}

bool
SeniorityFtq::matchAndRemove(Addr line)
{
    line = lineAddr(line);
    auto it = lines.find(line);
    if (it == lines.end()) {
        return false;
    }
    ++stats_.matches;
    // Remove one matching slot (oldest first).
    for (auto s = fifo.begin(); s != fifo.end(); ++s) {
        if (s->line == line) {
            fifo.erase(s);
            break;
        }
    }
    if (--it->second == 0) {
        lines.erase(it);
    }
    return true;
}

void
SeniorityFtq::onFlush(std::uint64_t squash_after_dyn_id)
{
    if (cfg.flushPolicy == SftqFlushPolicy::Keep) {
        return;
    }
    while (!fifo.empty() && fifo.back().dynId > squash_after_dyn_id) {
        auto it = lines.find(fifo.back().line);
        if (it != lines.end() && --it->second == 0) {
            lines.erase(it);
        }
        fifo.pop_back();
        ++stats_.flushDrops;
    }
}

std::string
SeniorityFtq::checkInvariants() const
{
    char buf[128];
    if (fifo.size() > cfg.capacity) {
        std::snprintf(buf, sizeof(buf), "size %zu exceeds capacity %u",
                      fifo.size(), cfg.capacity);
        return buf;
    }
    std::size_t refs = 0;
    for (const auto& [line, count] : lines) {
        (void)line;
        refs += count;
    }
    if (refs != fifo.size()) {
        std::snprintf(buf, sizeof(buf),
                      "line index holds %zu refs for %zu FIFO slots", refs,
                      fifo.size());
        return buf;
    }
    return "";
}

} // namespace udp

/**
 * @file
 * Translation-unit anchor for the header-only OffPathConfidence.
 */

#include "core/confidence.h"

namespace udp {

static_assert(sizeof(OffPathConfidence) <= 128,
              "confidence estimator must stay a small hardware structure");

} // namespace udp

/**
 * @file
 * UFTQ: application-specific dynamic FTQ sizing (paper Section IV-A).
 * Monitors the utility (AUR) and timeliness (ATR) of emitted prefetches in
 * 1000-prefetch epochs and adapts the FTQ depth. Three variants:
 *  - UFTQ-AUR:      utility-only feedback
 *  - UFTQ-ATR:      timeliness-only feedback
 *  - UFTQ-ATR-AUR:  finds QD_AUR then QD_ATR and combines them with the
 *    paper's regression polynomial; always-on to follow phase changes.
 *
 * Hardware cost modelled by the paper: four 10-bit counters + two 32-bit
 * fixed-point ratio registers + a small state machine.
 */

#ifndef UDP_CORE_UFTQ_H
#define UDP_CORE_UFTQ_H

#include <cstdint>
#include <string>

#include "cache/memsys.h"
#include "frontend/ftq.h"

namespace udp {

/** UFTQ variant. */
enum class UftqMode : std::uint8_t { Off, Aur, Atr, AtrAur };

/** Configuration. */
struct UftqConfig
{
    UftqMode mode = UftqMode::Off;
    /** Target utility ratio. The paper trains this globally on its
     *  simulator (0.65); retrained on this simulator's Table III geomean
     *  (see EXPERIMENTS.md). */
    double aur = 0.78;
    /** Target timeliness ratio (paper: 0.75; retrained likewise). */
    double atr = 0.92;
    /** Hold depth when a measurement is within this band of its target
     *  (suppresses oscillation around the converged depth). */
    double deadband = 0.04;
    /** Prefetches per measurement epoch. */
    std::uint64_t epochPrefetches = 1000;
    /** Depth adjustment per epoch. */
    unsigned step = 8;
    unsigned minDepth = 8;
    unsigned initialDepth = 32;
    /** Search epochs per phase in ATR-AUR mode. */
    unsigned searchEpochs = 8;
    /** Epochs the combined depth is held before re-searching. */
    unsigned holdEpochs = 32;
};

/** Statistics. */
struct UftqStats
{
    std::uint64_t epochs = 0;
    std::uint64_t increases = 0;
    std::uint64_t decreases = 0;
    std::uint64_t applies = 0; ///< polynomial applications (ATR-AUR)
    double lastUtility = 0.0;
    double lastTimeliness = 0.0;
    unsigned lastQdAur = 0;
    unsigned lastQdAtr = 0;
};

/** The UFTQ controller; owns the FTQ's dynamic capacity. */
class UftqController
{
  public:
    UftqController(Ftq& ftq, const UftqConfig& cfg);

    /**
     * Feeds the controller the current cumulative hardware counters; call
     * once per cycle. Epoch boundaries are detected internally from the
     * emitted-prefetch count.
     */
    void tick(const MemSysStats& mem, const CacheStats& l1i);

    /** The paper's regression polynomial combining QD_AUR and QD_ATR. */
    static double combine(double qd_aur, double qd_atr);

    unsigned currentDepth() const { return depth; }

    /** Invariant check (sim/invariants.h): the commanded depth stays in
     *  [minDepth, physical] and agrees with the FTQ's dynamic capacity.
     *  Returns the first violation, or "". */
    std::string checkInvariants() const;

    const UftqStats& stats() const { return stats_; }

    /** Telemetry attachment (null = disabled). */
    void setTelemetry(Telemetry* t) { telem_ = t; }

    /** Resets statistics and counter snapshots (measurement start). */
    void
    clearStats()
    {
        stats_ = UftqStats();
        lastEmitted = 0;
        lastUsefulHw = 0;
        lastUnusedHw = 0;
        lastL1Hits = 0;
        lastMshrHits = 0;
    }

  private:
    enum class Phase : std::uint8_t { SearchAur, SearchAtr, Hold };

    /** One epoch step of a single-metric rule; returns the new depth. */
    unsigned ruleStep(double measured, double target, bool timeliness_rule);

    void applyDepth(unsigned d);

    Ftq& ftq;
    UftqConfig cfg;
    unsigned depth;
    Telemetry* telem_ = nullptr;

    // Counter snapshots at the last epoch boundary.
    std::uint64_t lastEmitted = 0;
    std::uint64_t lastUsefulHw = 0;
    std::uint64_t lastUnusedHw = 0;
    std::uint64_t lastL1Hits = 0;
    std::uint64_t lastMshrHits = 0;

    // ATR-AUR state machine.
    Phase phase = Phase::SearchAur;
    unsigned phaseEpochs = 0;
    unsigned qdAur = 0;
    unsigned qdAtr = 0;

    UftqStats stats_;
};

} // namespace udp

#endif // UDP_CORE_UFTQ_H

/**
 * @file
 * UDP: Utility-Driven instruction Prefetching (the paper's primary
 * contribution). Composes the off-path confidence estimator, the
 * Seniority-FTQ and the Bloom-filter useful-set into the filter FDIP
 * consults before emitting an assumed-off-path prefetch.
 */

#ifndef UDP_CORE_UDP_ENGINE_H
#define UDP_CORE_UDP_ENGINE_H

#include <cstdint>

#include "common/types.h"
#include "core/confidence.h"
#include "core/seniority_ftq.h"
#include "core/useful_set.h"
#include "frontend/ftq.h"

namespace udp {

/** Aggregate UDP configuration (defaults = the paper's 8KB design). */
struct UdpConfig
{
    ConfidenceConfig confidence;
    UsefulSetConfig usefulSet;
    SeniorityFtqConfig seniority;
};

/** FDIP's query result for one candidate. */
struct UdpDecision
{
    bool emit = true;
    /** Matched super-block span in lines (1 when not filtered). */
    unsigned span = 1;
    /** Base address of the span to prefetch. */
    Addr base = kInvalidAddr;
};

/** UDP statistics. */
struct UdpStats
{
    std::uint64_t candidatesOnPathAssumed = 0;
    std::uint64_t candidatesOffPathAssumed = 0;
    std::uint64_t emittedFiltered = 0; ///< off-path-assumed, set hit
    std::uint64_t droppedFiltered = 0; ///< off-path-assumed, set miss
    std::uint64_t retireMatches = 0;
};

/** The UDP engine. */
class UdpEngine
{
  public:
    explicit UdpEngine(const UdpConfig& cfg);

    // --- frontend-side hooks -------------------------------------------
    void onCondPredicted(Confidence c) { conf.onCondPredicted(c); }
    void onBtbMissTaken();
    void onResteer() { conf.reset(); }
    bool assumedOffPath() const { return conf.assumedOffPath(); }

    // --- FDIP-side -------------------------------------------------------
    /**
     * Evaluates a prefetch candidate (a block in the FTQ whose line is not
     * resident). Uses the assumption tag captured when the block was
     * built. On-path-assumed candidates always emit.
     */
    UdpDecision evaluate(const FtqEntry& entry, Addr line);

    /** A prefetch for a candidate was actually emitted. */
    void noteEmitted() { set.noteEmitted(); }

    /** @p n prefetched lines were evicted unused (clear-policy feedback). */
    void noteUnuseful(std::uint64_t n) { set.noteUnuseful(n); }

    // --- fetch/backend-side ----------------------------------------------
    /** A block left the FTQ after consumption by the fetch engine. */
    void onBlockConsumed(const FtqEntry& entry);

    /** The backend retired the (on-path) instruction at @p pc. */
    void onRetire(Addr pc);

    /** Pipeline flush at @p squash_after_dyn_id. */
    void onFlush(std::uint64_t squash_after_dyn_id);

    /** Periodic upkeep (clear policy evaluation). */
    void maintain() { set.maybeClear(); }

    /** Total storage budget in bits (paper: 8KB). */
    std::uint64_t storageBits() const;

    /** Invariant check (sim/invariants.h): Seniority-FTQ consistency.
     *  Returns the first violation, or "". */
    std::string checkInvariants() const { return sftq.checkInvariants(); }

    /** Seniority-FTQ occupancy (diagnostic dumps). */
    std::size_t seniorityOccupancy() const { return sftq.size(); }

    const UdpStats& stats() const { return stats_; }
    const UsefulSetStats& usefulSetStats() const { return set.stats(); }
    const SeniorityFtqStats& seniorityStats() const { return sftq.stats(); }
    const ConfidenceStats& confidenceStats() const { return conf.stats(); }
    void clearStats();

    /** Telemetry attachment (null = disabled); forwarded to the
     *  useful-set so filter clears surface as trace events. */
    void setTelemetry(Telemetry* t) { set.setTelemetry(t); }

  private:
    UdpConfig cfg;
    OffPathConfidence conf;
    UsefulSet set;
    SeniorityFtq sftq;
    UdpStats stats_;
};

} // namespace udp

#endif // UDP_CORE_UDP_ENGINE_H

/**
 * @file
 * The Seniority-FTQ (paper Section IV-B): holds off-path prefetch
 * candidate blocks after they leave the FTQ so that a later retirement of
 * an instruction in the same cache line proves the candidate useful
 * (merge-point reconvergence). Much smaller than the ROB: block-granular
 * and only candidate blocks.
 */

#ifndef UDP_CORE_SENIORITY_FTQ_H
#define UDP_CORE_SENIORITY_FTQ_H

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "common/types.h"

namespace udp {

/** Behaviour on pipeline flush. */
enum class SftqFlushPolicy : std::uint8_t {
    /**
     * Keep entries across flushes: off-path candidates survive the
     * recovery so post-recovery retirements can match them (the mechanism
     * that makes off-path learning work; default).
     */
    Keep,
    /** Literal reading of the paper: drop entries younger than the flush
     *  point (ablation). */
    DropYounger,
};

/** Configuration. */
struct SeniorityFtqConfig
{
    unsigned capacity = 128;
    SftqFlushPolicy flushPolicy = SftqFlushPolicy::Keep;
};

/** Statistics. */
struct SeniorityFtqStats
{
    std::uint64_t inserts = 0;
    std::uint64_t matches = 0;
    std::uint64_t capacityEvictions = 0;
    std::uint64_t flushDrops = 0;
};

/** FIFO of off-path candidate blocks with O(1) line matching. */
class SeniorityFtq
{
  public:
    explicit SeniorityFtq(const SeniorityFtqConfig& cfg);

    /** Inserts a candidate block @p line tagged with its dynamic id. */
    void insert(Addr line, std::uint64_t dyn_id);

    /**
     * Retirement check: does @p line match a held candidate? On a match
     * the candidate is consumed (removed) and true is returned.
     */
    bool matchAndRemove(Addr line);

    /** Pipeline flush at @p squash_after_dyn_id (policy-dependent). */
    void onFlush(std::uint64_t squash_after_dyn_id);

    std::size_t size() const { return fifo.size(); }

    const SeniorityFtqStats& stats() const { return stats_; }
    void clearStats() { stats_ = SeniorityFtqStats(); }

    /** Invariant check (sim/invariants.h): capacity bound and agreement
     *  between the FIFO and its line-refcount index. Returns the first
     *  violation, or "". */
    std::string checkInvariants() const;

  private:
    struct Slot
    {
        Addr line;
        std::uint64_t dynId;
    };

    void erase(Addr line);

    SeniorityFtqConfig cfg;
    std::deque<Slot> fifo;
    std::unordered_map<Addr, unsigned> lines; ///< line -> refcount
    SeniorityFtqStats stats_;
};

} // namespace udp

#endif // UDP_CORE_SENIORITY_FTQ_H

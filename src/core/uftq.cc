#include "core/uftq.h"

#include <algorithm>
#include <cstdio>

#include "stats/stats.h"

namespace udp {

UftqController::UftqController(Ftq& q, const UftqConfig& c)
    : ftq(q), cfg(c), depth(c.initialDepth)
{
    applyDepth(depth);
}

double
UftqController::combine(double a, double t)
{
    // FTQ = -0.34*QD_AUR + 0.64*QD_ATR + 0.008*QD_AUR^2 + 0.01*QD_ATR^2
    //       - 0.008*QD_AUR*QD_ATR     (paper Section IV-A)
    return -0.34 * a + 0.64 * t + 0.008 * a * a + 0.01 * t * t -
           0.008 * a * t;
}

void
UftqController::applyDepth(unsigned d)
{
    unsigned prev = depth;
    depth = std::clamp<unsigned>(d, cfg.minDepth,
                                 static_cast<unsigned>(
                                     ftq.physicalCapacity()));
    ftq.setCapacity(depth);
    if (telem_ && depth != prev) {
        telem_->onFtqDepthChange(depth);
    }
}

unsigned
UftqController::ruleStep(double measured, double target, bool timeliness_rule)
{
    // Utility rule: ratio above target -> prefetches are paying off, run
    // further ahead; below target -> too much pollution, back off.
    // Timeliness rule: ratio below target -> prefetches are late, deepen
    // the FTQ; above target -> shallower is safe.
    if (measured > target - cfg.deadband && measured < target + cfg.deadband) {
        return depth; // converged: hold
    }
    bool grow = timeliness_rule ? measured < target : measured > target;
    if (grow) {
        ++stats_.increases;
        return depth + cfg.step;
    }
    ++stats_.decreases;
    return depth > cfg.step ? depth - cfg.step : cfg.minDepth;
}

void
UftqController::tick(const MemSysStats& mem, const CacheStats& l1i)
{
    if (cfg.mode == UftqMode::Off) {
        return;
    }

    std::uint64_t emitted = mem.iprefIssued;
    if (emitted - lastEmitted < cfg.epochPrefetches) {
        return;
    }

    // Epoch boundary: compute the two ratios over this epoch.
    std::uint64_t useful_hw =
        l1i.prefetchHits + mem.pfMshrMergesHw; // demand-consumed prefetches
    std::uint64_t unused_hw = l1i.prefetchUnused;
    // Timeliness is measured over prefetched lines only: resident (timely)
    // vs fill-buffer merge (untimely).
    std::uint64_t l1_hits = mem.ifetchTimelyPrefetchHits;
    std::uint64_t mshr_hits = mem.pfMshrMergesHw;

    double d_useful = static_cast<double>(useful_hw - lastUsefulHw);
    double d_unused = static_cast<double>(unused_hw - lastUnusedHw);
    double d_l1 = static_cast<double>(l1_hits - lastL1Hits);
    double d_mshr = static_cast<double>(mshr_hits - lastMshrHits);

    double utility = ratio(d_useful, d_useful + d_unused);
    double timeliness = ratio(d_l1, d_l1 + d_mshr);

    lastEmitted = emitted;
    lastUsefulHw = useful_hw;
    lastUnusedHw = unused_hw;
    lastL1Hits = l1_hits;
    lastMshrHits = mshr_hits;

    ++stats_.epochs;
    stats_.lastUtility = utility;
    stats_.lastTimeliness = timeliness;

    switch (cfg.mode) {
      case UftqMode::Aur:
        applyDepth(ruleStep(utility, cfg.aur, false));
        break;
      case UftqMode::Atr:
        applyDepth(ruleStep(timeliness, cfg.atr, true));
        break;
      case UftqMode::AtrAur:
        switch (phase) {
          case Phase::SearchAur:
            applyDepth(ruleStep(utility, cfg.aur, false));
            if (++phaseEpochs >= cfg.searchEpochs) {
                qdAur = depth;
                stats_.lastQdAur = qdAur;
                phase = Phase::SearchAtr;
                phaseEpochs = 0;
            }
            break;
          case Phase::SearchAtr:
            applyDepth(ruleStep(timeliness, cfg.atr, true));
            if (++phaseEpochs >= cfg.searchEpochs) {
                qdAtr = depth;
                stats_.lastQdAtr = qdAtr;
                double combined = combine(qdAur, qdAtr);
                applyDepth(static_cast<unsigned>(
                    std::max(combined, 1.0)));
                ++stats_.applies;
                phase = Phase::Hold;
                phaseEpochs = 0;
            }
            break;
          case Phase::Hold:
            if (++phaseEpochs >= cfg.holdEpochs) {
                phase = Phase::SearchAur;
                phaseEpochs = 0;
            }
            break;
        }
        break;
      case UftqMode::Off:
        break;
    }
}

std::string
UftqController::checkInvariants() const
{
    char buf[128];
    if (depth < cfg.minDepth || depth > ftq.physicalCapacity()) {
        std::snprintf(buf, sizeof(buf),
                      "commanded depth %u outside [%u, %zu]", depth,
                      cfg.minDepth, ftq.physicalCapacity());
        return buf;
    }
    if (depth != ftq.capacity()) {
        std::snprintf(buf, sizeof(buf),
                      "commanded depth %u disagrees with FTQ capacity %zu",
                      depth, ftq.capacity());
        return buf;
    }
    return "";
}

} // namespace udp

/**
 * @file
 * UDP's off-path confidence estimator (paper Section IV-B): accumulates
 * TAGE prediction confidence (+2 low / +1 medium / +0 high) since the last
 * recovery; past a threshold the frontend is assumed to be off-path and
 * FDIP switches from unconditional emission to useful-set-filtered
 * emission. A predicted-taken branch that missed the BTB immediately
 * forces the off-path assumption.
 */

#ifndef UDP_CORE_CONFIDENCE_H
#define UDP_CORE_CONFIDENCE_H

#include <cstdint>

#include "bpred/tage.h"

namespace udp {

/** Configuration. */
struct ConfidenceConfig
{
    unsigned threshold = 8;
    unsigned lowWeight = 2;
    unsigned medWeight = 1;
    unsigned highWeight = 0;
    /** Counter bump after a decode-corrected (BTB-miss) taken branch. */
    unsigned btbMissBump = 6;
    unsigned counterMax = 255;
};

/** Statistics. */
struct ConfidenceStats
{
    std::uint64_t predictionsSeen = 0;
    std::uint64_t btbMissEvents = 0;
    std::uint64_t resets = 0;
    std::uint64_t cyclesAssumedOffPath = 0; ///< sampled by the owner
};

/** The saturating off-path confidence counter. */
class OffPathConfidence
{
  public:
    explicit OffPathConfidence(const ConfidenceConfig& cfg) : cfg_(cfg) {}

    /** A conditional direction was predicted with confidence @p c. */
    void
    onCondPredicted(Confidence c)
    {
        ++stats_.predictionsSeen;
        unsigned w = c == Confidence::Low
                         ? cfg_.lowWeight
                         : (c == Confidence::Med ? cfg_.medWeight
                                                 : cfg_.highWeight);
        bump(w);
    }

    /** Decode detected a predicted-taken branch missing from the BTB. */
    void
    onBtbMissTaken()
    {
        ++stats_.btbMissEvents;
        bump(cfg_.btbMissBump);
    }

    /** Branch recovery / resteer: back on a (believed) correct path. */
    void
    reset()
    {
        ++stats_.resets;
        counter = 0;
    }

    bool assumedOffPath() const { return counter >= cfg_.threshold; }
    unsigned value() const { return counter; }

    ConfidenceStats& stats() { return stats_; }
    const ConfidenceStats& stats() const { return stats_; }
    void clearStats() { stats_ = ConfidenceStats(); }

  private:
    void
    bump(unsigned w)
    {
        counter = counter + w > cfg_.counterMax ? cfg_.counterMax
                                                : counter + w;
    }

    ConfidenceConfig cfg_;
    unsigned counter = 0;
    ConfidenceStats stats_;
};

} // namespace udp

#endif // UDP_CORE_CONFIDENCE_H

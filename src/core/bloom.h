/**
 * @file
 * Banked Bloom filter used by UDP's useful-set (paper Section IV-B: three
 * filters of 16k/1k/1k bits, 6 hash functions, ~1% false-positive rate).
 */

#ifndef UDP_CORE_BLOOM_H
#define UDP_CORE_BLOOM_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace udp {

/**
 * A classic Bloom filter over 64-bit keys with k hash functions derived by
 * double hashing. Tracks the number of insertions so the owner can detect
 * "full" (insertions >= nominal capacity for the configured FP rate).
 */
class BloomFilter
{
  public:
    /**
     * @param num_bits filter size in bits (power of two recommended)
     * @param num_hashes k (6 per the paper's Open Bloom Filter parameters)
     */
    explicit BloomFilter(std::size_t num_bits, unsigned num_hashes = 6);

    void insert(std::uint64_t key);
    bool contains(std::uint64_t key) const;
    void clear();

    std::uint64_t insertions() const { return inserted; }
    std::size_t sizeBits() const { return bits; }

    /**
     * Nominal element capacity at ~1% FP with k=6 (~9.57 bits/element).
     */
    std::uint64_t capacityElements() const;

    /** Inserted at or beyond nominal capacity. */
    bool full() const { return inserted >= capacityElements(); }

    /** Fraction of set bits (diagnostics/tests). */
    double fillRatio() const;

  private:
    std::size_t bitIndex(std::uint64_t key, unsigned i) const;

    std::size_t bits;
    unsigned k;
    std::vector<std::uint64_t> words;
    std::uint64_t inserted = 0;
};

} // namespace udp

#endif // UDP_CORE_BLOOM_H

#include "core/udp_engine.h"

namespace udp {

UdpEngine::UdpEngine(const UdpConfig& c)
    : cfg(c), conf(c.confidence), set(c.usefulSet), sftq(c.seniority)
{
}

void
UdpEngine::onBtbMissTaken()
{
    // A BTB resteer resets the epoch, but the corrected path inherits the
    // uncertainty of a cold branch: reset then bump (Section IV-B).
    conf.reset();
    conf.onBtbMissTaken();
}

UdpDecision
UdpEngine::evaluate(const FtqEntry& entry, Addr line)
{
    UdpDecision d;
    d.base = lineAddr(line);

    if (!entry.assumedOffPath) {
        ++stats_.candidatesOnPathAssumed;
        return d; // believed on-path: always emit (always useful)
    }

    ++stats_.candidatesOffPathAssumed;
    // Track the candidate in the Seniority-FTQ right away: recovery
    // flushes the FTQ, and flushed off-path candidates are precisely the
    // ones a post-recovery retirement can prove useful. Entries are
    // tagged with the block's first dynamic-instruction id so the
    // DropYounger flush policy can compare against squash points.
    std::uint64_t dyn_id =
        entry.numInstrs > 0 ? entry.instrs[0].dynId : entry.id;
    sftq.insert(lineAddr(line), dyn_id);

    unsigned span = set.lookup(line);
    if (span == 0) {
        ++stats_.droppedFiltered;
        d.emit = false;
        return d;
    }
    ++stats_.emittedFiltered;
    d.span = span;
    d.base = UsefulSet::spanBase(lineAddr(line), span);
    return d;
}

void
UdpEngine::onBlockConsumed(const FtqEntry& entry)
{
    // Candidates are inserted at FDIP-evaluation time (see evaluate());
    // consumption needs no extra action but is kept as an explicit event
    // for the DropYounger flush-policy ablation.
    (void)entry;
}

void
UdpEngine::onRetire(Addr pc)
{
    if (sftq.matchAndRemove(lineAddr(pc))) {
        ++stats_.retireMatches;
        set.learn(lineAddr(pc));
    }
}

void
UdpEngine::onFlush(std::uint64_t squash_after_dyn_id)
{
    conf.reset();
    sftq.onFlush(squash_after_dyn_id);
}

std::uint64_t
UdpEngine::storageBits() const
{
    // Useful set + seniority FTQ (~64 x 40-bit lines) + counter.
    return set.storageBits() + cfg.seniority.capacity * 40 + 8;
}

void
UdpEngine::clearStats()
{
    stats_ = UdpStats();
    set.clearStats();
    sftq.clearStats();
    conf.clearStats();
}

} // namespace udp

#include "prefetch/eip.h"

#include <cassert>

#include "common/intmath.h"
#include "common/rng.h"

namespace udp {

Eip::Eip(MemSystem& m, const EipConfig& c)
    : mem(m), cfg(c), table(std::size_t{c.numSets} * c.assoc),
      history(c.historyLen)
{
    assert(isPowerOf2(cfg.numSets));
    for (Entry& e : table) {
        e.dsts.reserve(cfg.dstsPerEntry);
    }
}

Eip::Entry*
Eip::findEntry(Addr src)
{
    std::size_t set = (src / kLineBytes) & (cfg.numSets - 1);
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry& e = table[set * cfg.assoc + w];
        if (e.valid && e.src == src) {
            e.lru = ++lruClock;
            return &e;
        }
    }
    return nullptr;
}

Eip::Entry&
Eip::allocEntry(Addr src)
{
    std::size_t set = (src / kLineBytes) & (cfg.numSets - 1);
    Entry* victim = nullptr;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry& e = table[set * cfg.assoc + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lru < victim->lru) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->src = src;
    victim->dsts.clear();
    victim->lru = ++lruClock;
    return *victim;
}

void
Eip::onAccess(Addr line, bool hit, Cycle now)
{
    line = lineAddr(line);

    // Trigger: does this access entangle future lines?
    if (Entry* e = findEntry(line)) {
        ++stats_.triggers;
        for (Addr dst : e->dsts) {
            if (mem.iprefetch(dst, now, PfSource::Eip) ==
                IPrefStatus::Issued) {
                ++stats_.prefetchesIssued;
            }
        }
    }

    // Train on a miss: find the source accessed ~latencyTarget earlier.
    if (!hit) {
        ++stats_.trainings;
        Addr best_src = kInvalidAddr;
        Cycle best_err = kInvalidCycle;
        for (const HistorySlot& h : history) {
            if (h.line == 0 || h.line == line || h.when >= now) {
                continue;
            }
            Cycle age = now - h.when;
            Cycle err = age > cfg.latencyTarget ? age - cfg.latencyTarget
                                                : cfg.latencyTarget - age;
            if (err < best_err) {
                best_err = err;
                best_src = h.line;
            }
        }
        if (best_src != kInvalidAddr) {
            Entry* e = findEntry(best_src);
            if (!e) {
                e = &allocEntry(best_src);
            }
            bool known = false;
            for (Addr d : e->dsts) {
                if (d == line) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                if (e->dsts.size() >= cfg.dstsPerEntry) {
                    e->dsts.erase(e->dsts.begin());
                }
                e->dsts.push_back(line);
                ++stats_.entanglings;
            }
        }
    }

    // Record the access in the history ring.
    history[histHead] = HistorySlot{line, now};
    histHead = (histHead + 1) % history.size();
}

std::uint64_t
Eip::storageBits() const
{
    // Per entry: src tag (~26b line address) + 2 compressed dsts (~30b
    // each) + lru (3b); plus the history ring.
    std::uint64_t per_entry = 26 + cfg.dstsPerEntry * 30 + 3;
    return std::uint64_t{cfg.numSets} * cfg.assoc * per_entry +
           cfg.historyLen * (26 + 16);
}

} // namespace udp

/**
 * @file
 * EIP: a reimplementation of the Entangling Instruction Prefetcher [49]
 * at the paper's ISO-storage budget (8KB), used as a Fig. 13 baseline.
 *
 * On an icache miss for line D, EIP searches its access history for a
 * "source" line S that was fetched roughly one memory latency earlier and
 * entangles (S -> D); later accesses to S prefetch D. As the paper notes,
 * EIP (1) is metadata-starved at 8KB and (2) trains on *all* icache
 * accesses, including the wrong path — both modelled here.
 */

#ifndef UDP_PREFETCH_EIP_H
#define UDP_PREFETCH_EIP_H

#include <cstdint>
#include <vector>

#include "cache/memsys.h"
#include "common/types.h"

namespace udp {

/** Configuration (defaults ~8KB of metadata). */
struct EipConfig
{
    unsigned numSets = 128;
    unsigned assoc = 4;
    unsigned dstsPerEntry = 2;
    unsigned historyLen = 64;
    /** Desired prefetch lead time (≈ LLC/DRAM latency). */
    Cycle latencyTarget = 120;
};

/** Statistics. */
struct EipStats
{
    std::uint64_t trainings = 0;
    std::uint64_t entanglings = 0;
    std::uint64_t triggers = 0;
    std::uint64_t prefetchesIssued = 0;
};

/** The entangling prefetcher. */
class Eip
{
  public:
    Eip(MemSystem& mem, const EipConfig& cfg);

    /**
     * Observes an icache access (demand fetch of @p line, hit or miss) —
     * EIP is wrong-path-oblivious, so the caller reports every access.
     */
    void onAccess(Addr line, bool hit, Cycle now);

    /** Metadata budget in bits. */
    std::uint64_t storageBits() const;

    const EipStats& stats() const { return stats_; }
    void clearStats() { stats_ = EipStats(); }

  private:
    struct Entry
    {
        bool valid = false;
        Addr src = 0;
        std::vector<Addr> dsts;
        std::uint64_t lru = 0;
    };

    struct HistorySlot
    {
        Addr line = 0;
        Cycle when = 0;
    };

    Entry* findEntry(Addr src);
    Entry& allocEntry(Addr src);

    MemSystem& mem;
    EipConfig cfg;
    std::vector<Entry> table; ///< numSets * assoc
    std::vector<HistorySlot> history;
    std::size_t histHead = 0;
    std::uint64_t lruClock = 0;
    EipStats stats_;
};

} // namespace udp

#endif // UDP_PREFETCH_EIP_H
